#!/bin/bash
# Regenerates every figure/table of the paper plus the extension benches.
# BENCH_THREADS=N reruns the figure sweeps with N worker threads (default 1,
# the paper's serial setup; groups are identical at every thread count — see
# util/thread_pool.hpp). The thread-sweep bench always runs its own 1/2/4/8
# ladder on the Fig. 3 workload.
set -u
cd /root/repo
out=/root/repo/bench_output.txt
threads="${BENCH_THREADS:-1}"
: > "$out"
for b in bench_fig2_users_sweep bench_fig3_roles_sweep bench_similar_sweep \
         bench_real_org; do
  echo "############ $b (threads=$threads) ############" >> "$out"
  ./build/bench/$b --threads "$threads" >> "$out" 2>&1
  echo "" >> "$out"
done
for b in bench_thread_sweep bench_density_sweep bench_convergence bench_ablation \
         bench_micro; do
  echo "############ $b ############" >> "$out"
  ./build/bench/$b >> "$out" 2>&1
  echo "" >> "$out"
done
# Machine-readable per-phase timings + work stats (Fig. 3 workload):
# BENCH_pipeline.json is the artifact CI archives per commit.
echo "############ bench_pipeline (threads=$threads) ############" >> "$out"
./build/bench/bench_pipeline --threads "$threads" --out /root/repo/BENCH_pipeline.json \
  >> "$out" 2>&1
echo "" >> "$out"
# Steady-state engine vs batch audit after small deltas: BENCH_reaudit.json
# is the second JSON artifact CI archives per commit.
echo "############ bench_reaudit (threads=$threads) ############" >> "$out"
./build/bench/bench_reaudit --threads "$threads" --out /root/repo/BENCH_reaudit.json \
  >> "$out" 2>&1
echo "" >> "$out"
# Durable-store checkpoint/recover vs cold replay: BENCH_recovery.json is
# the third JSON artifact CI archives per commit.
echo "############ bench_recovery (threads=$threads) ############" >> "$out"
./build/bench/bench_recovery --threads "$threads" --out /root/repo/BENCH_recovery.json \
  >> "$out" 2>&1
echo "" >> "$out"
# Long-horizon churn through the durable engine (findings drift, verify
# work, checkpoint/recovery cost over simulated years): BENCH_churn.json is
# the fourth JSON artifact CI archives per commit. Small default scale here
# (--quick: 2k employees, 2 years); pass --employees/--years to bench_churn
# directly for the paper-scale 60k-employee run.
echo "############ bench_churn (threads=$threads) ############" >> "$out"
./build/bench/bench_churn --quick --threads "$threads" --out /root/repo/BENCH_churn.json \
  >> "$out" 2>&1
echo "" >> "$out"
# SIMD kernel dispatch: batched verify kernels vs scalar single-pair, per
# dispatch target the host supports. BENCH_kernels.json is the fifth JSON
# artifact CI archives per commit; its "capability" field says which ISAs
# this run could actually exercise.
echo "############ bench_kernels ############" >> "$out"
./build/bench/bench_kernels --out /root/repo/BENCH_kernels.json >> "$out" 2>&1
echo "" >> "$out"
# Sharded-engine scale sweep (Fig. 2 workload at 1M-10M users, shuffled vs
# id-local role orderings, per-shard work counters): BENCH_shard.json is the
# sixth JSON artifact CI archives per commit. --quick keeps it to the sweep
# endpoints; drop it for the full 1M/2M/5M/10M x {1,2,4,8}-shard ladder.
echo "############ bench_shard (threads=$threads) ############" >> "$out"
./build/bench/bench_shard --quick --threads "$threads" --out /root/repo/BENCH_shard.json \
  >> "$out" 2>&1
echo "" >> "$out"
# Writer/reader split under closed-loop reader fleets: read-latency
# percentiles vs offered load, writer stall time, versions/sec.
# BENCH_serving.json is the seventh JSON artifact CI archives per commit;
# the bench fails unless reads completed during an in-flight reaudit
# (the non-blocking-readers property). --quick keeps the fleet ladder to
# {1,2} readers; drop it for {1,2,4} at the full scale.
echo "############ bench_serving ############" >> "$out"
./build/bench/bench_serving --quick --out /root/repo/BENCH_serving.json >> "$out" 2>&1
echo "" >> "$out"
# Role mining vs the duplicate-merge baseline on org / Fig. 3-scale / churn /
# planted workloads: BENCH_mining.json is the eighth JSON artifact CI
# archives per commit. The bench exits non-zero unless every plan verifies,
# mining beats the baseline, and planted recovery stays within its bound.
# --quick trims the Fig. 3 ladder and the churn/planted scale.
echo "############ bench_mining (threads=$threads) ############" >> "$out"
./build/bench/bench_mining --quick --threads "$threads" --out /root/repo/BENCH_mining.json \
  >> "$out" 2>&1
echo "" >> "$out"
echo "ALL BENCHES DONE" >> "$out"
