#!/bin/bash
# Regenerates every figure/table of the paper plus the extension benches.
set -u
cd /root/repo
out=/root/repo/bench_output.txt
: > "$out"
for b in bench_fig2_users_sweep bench_fig3_roles_sweep bench_similar_sweep \
         bench_real_org bench_convergence bench_ablation bench_micro; do
  echo "############ $b ############" >> "$out"
  ./build/bench/$b >> "$out" 2>&1
  echo "" >> "$out"
done
echo "ALL BENCHES DONE" >> "$out"
