// org_audit: generate a synthetic large organization (the §IV-B analog),
// run the full detection framework, and print the paper-style findings
// table plus a machine-readable JSON report.
//
// Usage:
//   org_audit [--paper-scale] [--threshold N] [--json FILE] [--save-csv DIR]
//
//   --paper-scale   use the ~90k-user / ~350k-permission / ~60k-role profile
//                   (defaults to the 1:100 "small" profile)
//   --threshold N   similarity threshold for type-5 detection (default 1)
//   --json FILE     also write the full report as JSON
//   --save-csv DIR  export the generated dataset as CSV (assignments.csv,
//                   grants.csv, entities.csv) for use with other tools
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/framework.hpp"
#include "core/stats.hpp"
#include "gen/org_simulator.hpp"
#include "io/csv.hpp"
#include "io/json_writer.hpp"
#include "util/timer.hpp"

using namespace rolediet;

int main(int argc, char** argv) {
  bool paper_scale = false;
  std::size_t threshold = 1;
  std::string json_path;
  std::string csv_dir;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--paper-scale") == 0) {
      paper_scale = true;
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      try {
        std::size_t pos = 0;
        threshold = static_cast<std::size_t>(std::stoull(argv[++i], &pos));
        if (pos != std::strlen(argv[i]) || argv[i][0] == '-') throw std::invalid_argument("");
      } catch (const std::exception&) {
        std::fprintf(stderr, "bad --threshold '%s': expected a non-negative integer\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--save-csv") == 0 && i + 1 < argc) {
      csv_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--paper-scale] [--threshold N] [--json FILE] [--save-csv DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  const gen::OrgProfile profile =
      paper_scale ? gen::OrgProfile::paper_scale() : gen::OrgProfile::small();
  std::printf("generating %s organization (%zu roles)...\n",
              paper_scale ? "paper-scale" : "small", profile.total_roles());
  util::Stopwatch gen_watch;
  const gen::OrgDataset org = gen::generate_org(profile);
  std::printf("generated in %s: %zu users, %zu roles, %zu permissions\n",
              util::format_duration(gen_watch.seconds()).c_str(), org.dataset.num_users(),
              org.dataset.num_roles(), org.dataset.num_permissions());

  std::fputs(core::compute_stats(org.dataset).to_text().c_str(), stdout);

  core::AuditOptions options;
  options.method = core::Method::kRoleDiet;
  options.similarity_threshold = threshold;
  const core::AuditReport report = core::audit(org.dataset, options);
  std::fputs(report.to_text().c_str(), stdout);

  // Planted-vs-detected comparison, the org simulator's ground truth.
  std::printf("\nplanted ground truth vs detected:\n");
  std::printf("  %-28s %10s %10s\n", "finding", "planted", "detected");
  auto row = [](const char* name, std::size_t planted, std::size_t detected) {
    std::printf("  %-28s %10zu %10zu%s\n", name, planted, detected,
                planted == detected ? "" : "  (+coincidental)");
  };
  row("standalone users", org.truth.standalone_users,
      report.structural.standalone_users.size());
  row("standalone permissions", org.truth.standalone_permissions,
      report.structural.standalone_permissions.size());
  row("roles without users", org.truth.roles_without_users,
      report.structural.roles_without_users.size());
  row("roles without permissions", org.truth.roles_without_permissions,
      report.structural.roles_without_permissions.size());
  row("single-user roles", org.truth.single_user_roles,
      report.structural.single_user_roles.size());
  row("single-permission roles", org.truth.single_permission_roles,
      report.structural.single_permission_roles.size());
  row("roles w/ same users", org.truth.roles_in_same_user_groups,
      report.same_user_groups.roles_in_groups());
  row("roles w/ same permissions", org.truth.roles_in_same_permission_groups,
      report.same_permission_groups.roles_in_groups());

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << io::report_to_json(report, org.dataset);
    std::printf("\nJSON report written to %s\n", json_path.c_str());
  }
  if (!csv_dir.empty()) {
    io::save_dataset(org.dataset, csv_dir);
    std::printf("dataset exported to %s/{entities,assignments,grants}.csv\n", csv_dir.c_str());
  }
  return 0;
}
