// periodic_cleanup: the production workflow the paper sketches in §III-C —
// a scheduled job that uses the fast approximate detector, accumulates its
// findings across runs, and converges to the exact result over time.
//
// Each invocation:
//   1. loads the dataset (CSV directory) and the accumulated grouping state,
//   2. runs one approximate (HNSW) same-users detection pass,
//   3. unions the fresh findings into the state and saves it back,
//   4. reports cumulative recall against the exact grouping so operators can
//      see convergence (in a real deployment the exact pass would be a rare
//      audit, not an every-run computation).
//
// Usage:  periodic_cleanup DATA_DIR STATE_FILE [RUNS]
//         periodic_cleanup --demo [RUNS]     (generate data + temp state)
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/methods/approx.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/periodic.hpp"
#include "gen/org_simulator.hpp"
#include "io/csv.hpp"
#include "io/groups_io.hpp"

using namespace rolediet;

int main(int argc, char** argv) {
  core::RbacDataset dataset;
  std::filesystem::path state_file;
  std::size_t runs = 5;

  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    dataset = gen::generate_org(gen::OrgProfile::small()).dataset;
    state_file = std::filesystem::temp_directory_path() / "rolediet_periodic_state.csv";
    std::filesystem::remove(state_file);
    if (argc >= 3) runs = std::strtoul(argv[2], nullptr, 10);
  } else if (argc >= 3) {
    dataset = io::load_dataset(argv[1]);
    state_file = argv[2];
    if (argc >= 4) runs = std::strtoul(argv[3], nullptr, 10);
  } else {
    std::fprintf(stderr, "usage: %s DATA_DIR STATE_FILE [RUNS]\n       %s --demo [RUNS]\n",
                 argv[0], argv[0]);
    return 2;
  }

  // Exact grouping, for the convergence report only.
  const core::methods::RoleDietGroupFinder exact;
  const core::RoleGroups truth = exact.find_same(dataset.ruam());
  std::printf("dataset: %zu roles; exact same-users grouping: %zu groups / %zu roles\n",
              dataset.num_roles(), truth.group_count(), truth.roles_in_groups());

  core::PeriodicAccumulator acc(dataset.num_roles());
  if (std::filesystem::exists(state_file)) {
    acc.absorb(io::load_groups(dataset, state_file));
    std::printf("resumed state: %zu groups already accumulated\n",
                acc.current().group_count());
  }

  for (std::size_t run = 0; run < runs; ++run) {
    core::methods::HnswGroupFinder::Options options;
    options.query_ef = 16;  // cheap narrow-beam pass; the whole point is to
    options.index.ef_search = 16;  // amortize recall across periodic runs
    options.index.ef_construction = 60;
    options.index.seed = acc.runs_absorbed() * 7919 + 3;
    const core::methods::HnswGroupFinder approx(options);

    acc.absorb(approx.find_same(dataset.ruam()));
    io::save_groups(acc.current(), dataset, state_file);

    std::printf("run %zu: cumulative %zu groups / %zu roles, recall %.1f%%\n",
                acc.runs_absorbed(), acc.current().group_count(),
                acc.current().roles_in_groups(),
                100.0 * core::pairwise_recall(truth, acc.current()));
    if (core::pairwise_recall(truth, acc.current()) >= 1.0) {
      std::printf("converged to the exact grouping; state saved to %s\n",
                  state_file.string().c_str());
      return 0;
    }
  }
  std::printf("state saved to %s; next scheduled run will continue converging\n",
              state_file.string().c_str());
  return 0;
}
