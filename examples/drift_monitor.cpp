// drift_monitor: watch RBAC inefficiencies accumulate in a living org and
// see the role diet reset them — the paper's §I motivation as a runnable
// demonstration.
//
// Simulates years of manual IAM administration (hires, departures,
// transfers, role cloning, shadow roles) against the incremental auditor,
// printing the inefficiency counts at regular checkpoints; then applies
// remediation + consolidation and prints the post-diet state.
//
// Usage: drift_monitor [EVENTS] [CHECKPOINTS] [SEED]
#include <cstdio>
#include <cstdlib>

#include "core/consolidation.hpp"
#include "core/framework.hpp"
#include "core/remediation.hpp"
#include "gen/evolution.hpp"

using namespace rolediet;

namespace {

void print_checkpoint(std::size_t events, const core::IncrementalAuditor& auditor) {
  const core::StructuralFindings f = auditor.structural();
  std::printf("%8zu | %6zu | %6zu %6zu | %6zu %6zu | %6zu %6zu | %6zu %6zu\n", events,
              auditor.num_roles(), f.standalone_users.size(), f.standalone_permissions.size(),
              f.roles_without_users.size(), f.roles_without_permissions.size(),
              f.single_user_roles.size(), f.single_permission_roles.size(),
              auditor.same_user_groups().roles_in_groups(),
              auditor.same_permission_groups().roles_in_groups());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t events = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3'000;
  const std::size_t checkpoints = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  const std::uint64_t seed = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2026;

  core::IncrementalAuditor auditor;
  gen::OrgEvolution evolution(auditor, seed);

  std::printf("simulating %zu administrative events (seed %llu)\n\n", events,
              static_cast<unsigned long long>(seed));
  std::printf("%8s | %6s | %13s | %13s | %13s | %13s\n", "events", "roles", "standalone u/p",
              "no-users/perm", "single u/p", "dup u/p roles");
  print_checkpoint(0, auditor);
  for (std::size_t c = 0; c < checkpoints; ++c) {
    evolution.run(events / checkpoints);
    print_checkpoint(evolution.events_applied(), auditor);
  }

  // The diet: remediation (types 1-3) then duplicate consolidation (type 4).
  const core::RbacDataset decayed = auditor.snapshot();
  const core::AuditReport report = core::audit(decayed, {.detect_similar = false});
  core::RemediationPolicy policy;
  policy.remove_standalone_users = true;
  policy.remove_standalone_permissions = true;
  const core::RemediationPlan plan = core::plan_remediation(decayed, report, policy);
  core::RbacDataset cleaned = core::apply_remediation(decayed, plan);
  const bool remediation_ok = core::verify_remediation(decayed, cleaned, plan);

  core::ConsolidationStats stats;
  cleaned = core::consolidate_duplicates(cleaned, &stats);

  std::printf("\nafter the diet: %zu -> %zu roles "
              "(remediation removed %zu, consolidation %zu+%zu); safety checks: %s\n",
              decayed.num_roles(), cleaned.num_roles(), plan.roles_removed(),
              stats.removed_same_users, stats.removed_same_permissions,
              remediation_ok ? "passed" : "FAILED");

  core::IncrementalAuditor fresh(cleaned);
  std::printf("post-diet findings:\n");
  std::printf("%8s | %6s | %13s | %13s | %13s | %13s\n", "events", "roles", "standalone u/p",
              "no-users/perm", "single u/p", "dup u/p roles");
  print_checkpoint(evolution.events_applied(), fresh);
  return remediation_ok ? 0 : 1;
}
