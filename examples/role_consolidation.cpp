// role_consolidation: the operational "role diet" workflow against CSV data.
//
// Reads an RBAC dataset from a directory of CSV files (the format every IAM
// platform can export: role,user assignment pairs and role,permission grant
// pairs), merges duplicate roles in two equivalence-preserving phases, proves
// that no user gained or lost a permission, and writes the slimmed dataset
// back out.
//
// Usage:
//   role_consolidation INPUT_DIR OUTPUT_DIR
//   role_consolidation --demo OUTPUT_DIR     (generate a demo org first)
#include <cstdio>
#include <cstring>

#include "core/consolidation.hpp"
#include "core/framework.hpp"
#include "gen/org_simulator.hpp"
#include "io/csv.hpp"
#include "util/timer.hpp"

using namespace rolediet;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s INPUT_DIR OUTPUT_DIR\n       %s --demo OUTPUT_DIR\n",
                 argv[0], argv[0]);
    return 2;
  }

  core::RbacDataset dataset;
  if (std::strcmp(argv[1], "--demo") == 0) {
    std::printf("generating demo organization...\n");
    dataset = gen::generate_org(gen::OrgProfile::small()).dataset;
  } else {
    try {
      dataset = io::load_dataset(argv[1]);
    } catch (const io::CsvError& e) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1], e.what());
      return 1;
    }
  }
  std::printf("loaded: %zu users, %zu roles, %zu permissions, %zu+%zu edges\n",
              dataset.num_users(), dataset.num_roles(), dataset.num_permissions(),
              dataset.ruam().nnz(), dataset.rpam().nnz());

  // Show what the diet will act on before changing anything (findings are
  // advisory; this tool is the explicit "apply" step).
  const core::AuditReport before = core::audit(dataset, {.detect_similar = false});
  std::printf("duplicate-role findings: %zu same-users groups, %zu same-permissions groups "
              "(up to %zu roles removable)\n",
              before.same_user_groups.group_count(),
              before.same_permission_groups.group_count(), before.reducible_roles());

  util::Stopwatch watch;
  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(dataset, &stats);
  const bool safe = core::verify_equivalence(dataset, slim);
  std::printf("consolidated in %s: %zu -> %zu roles "
              "(%zu same-users merges, %zu same-permissions merges, -%.1f%%)\n",
              util::format_duration(watch.seconds()).c_str(), stats.roles_before,
              stats.roles_after, stats.removed_same_users, stats.removed_same_permissions,
              stats.reduction_ratio() * 100.0);
  std::printf("equivalence check (every user keeps the exact same permissions): %s\n",
              safe ? "PASSED" : "FAILED");
  if (!safe) return 1;  // never publish a dataset that failed verification

  io::save_dataset(slim, argv[2]);
  std::printf("consolidated dataset written to %s\n", argv[2]);
  return 0;
}
