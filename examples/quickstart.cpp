// Quickstart: build the paper's Fig. 1 example by hand, audit it, and run
// the role diet. Demonstrates the core public API in ~60 lines:
//
//   RbacDataset        -- the tripartite users/roles/permissions graph
//   audit()            -- one-call detection of all five inefficiency types
//   consolidate_duplicates() -- the actual "diet": merge duplicate roles
//   verify_equivalence()     -- prove nobody gained or lost a permission
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/consolidation.hpp"
#include "core/framework.hpp"

using namespace rolediet;

int main() {
  // The paper's Fig. 1: four users, five roles, six permissions, with every
  // inefficiency class represented.
  core::RbacDataset org;
  const core::Id u01 = org.add_user("U01");
  const core::Id u02 = org.add_user("U02");
  const core::Id u03 = org.add_user("U03");
  const core::Id u04 = org.add_user("U04");
  org.add_permission("P01");  // never granted -> standalone node
  const core::Id p02 = org.add_permission("P02");
  const core::Id p03 = org.add_permission("P03");
  const core::Id p04 = org.add_permission("P04");
  const core::Id p05 = org.add_permission("P05");
  const core::Id p06 = org.add_permission("P06");

  const core::Id r01 = org.add_role("R01");  // single user (maybe the CEO!)
  const core::Id r02 = org.add_role("R02");  // users but no permissions
  const core::Id r03 = org.add_role("R03");  // permissions but no users
  const core::Id r04 = org.add_role("R04");  // same users as R02
  const core::Id r05 = org.add_role("R05");  // same permissions as R04

  org.assign_user(r01, u01);
  org.grant_permission(r01, p02);
  org.assign_user(r02, u02);
  org.assign_user(r02, u03);
  org.grant_permission(r03, p03);
  org.grant_permission(r03, p06);
  org.assign_user(r04, u02);
  org.assign_user(r04, u03);
  org.grant_permission(r04, p04);
  org.grant_permission(r04, p05);
  org.assign_user(r05, u04);
  org.grant_permission(r05, p04);
  org.grant_permission(r05, p05);

  // Detect every inefficiency type with the paper's custom algorithm.
  const core::AuditReport report = core::audit(org);
  std::fputs(report.to_text().c_str(), stdout);

  // Apply the diet: merge roles sharing the same users, then roles sharing
  // the same permissions, and prove the merge changed nobody's access.
  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(org, &stats);
  std::printf("\nrole diet: %zu -> %zu roles (-%.0f%%), access preserved: %s\n",
              stats.roles_before, stats.roles_after, stats.reduction_ratio() * 100.0,
              core::verify_equivalence(org, slim) ? "yes" : "NO (bug!)");

  std::printf("surviving roles:");
  for (std::size_t r = 0; r < slim.num_roles(); ++r)
    std::printf(" %s", slim.role_name(static_cast<core::Id>(r)).c_str());
  std::printf("\n");
  return 0;
}
