// method_shootout: run all three detection methods (§III-C) on the same
// synthetic workload and compare wall time and recall — a miniature,
// interactive version of the paper's Fig. 2/3 experiments.
//
// Usage:
//   method_shootout [ROLES] [USERS] [THRESHOLD]
//
// Defaults: 2000 roles, 1000 users, threshold 0 (same-set detection).
// Ground truth comes from the generator's planted clusters, so recall is
// exact, not estimated.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/group_finder.hpp"
#include "gen/matrix_generator.hpp"
#include "util/timer.hpp"

using namespace rolediet;

namespace {

/// Fraction of planted-group role slots the method recovered.
double recall_vs(const core::RoleGroups& truth, const core::RoleGroups& found) {
  if (truth.roles_in_groups() == 0) return 1.0;
  std::size_t hit = 0;
  // A planted role counts as found when some detected group contains it
  // together with at least one other member of its planted group.
  for (const auto& planted : truth.groups) {
    for (std::size_t role : planted) {
      for (const auto& group : found.groups) {
        const bool has_role = std::binary_search(group.begin(), group.end(), role);
        if (!has_role) continue;
        for (std::size_t partner : planted) {
          if (partner != role && std::binary_search(group.begin(), group.end(), partner)) {
            ++hit;
            goto next_role;
          }
        }
      }
    next_role:;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(truth.roles_in_groups());
}

}  // namespace

int main(int argc, char** argv) {
  gen::MatrixGenParams params;
  params.roles = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  params.cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1000;
  const std::size_t threshold = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 0;
  params.clustered_fraction = 0.2;  // the paper's setting
  params.max_cluster_size = 10;
  params.perturb_bits = threshold;  // plant clusters detectable at the threshold
  params.seed = 42;

  std::printf("workload: %zu roles x %zu users, 20%% clustered, threshold %zu\n",
              params.roles, params.cols, threshold);
  const gen::GeneratedMatrix workload = gen::generate_matrix(params);
  std::printf("planted: %zu clusters / %zu roles\n\n", workload.planted.group_count(),
              workload.planted.roles_in_groups());

  std::printf("%-14s %12s %10s %10s %8s\n", "method", "time", "groups", "roles", "recall");
  for (core::Method method :
       {core::Method::kRoleDiet, core::Method::kExactDbscan, core::Method::kApproxHnsw}) {
    const std::unique_ptr<core::GroupFinder> finder = core::make_group_finder(method);
    util::Stopwatch watch;
    const core::RoleGroups found = threshold == 0
                                       ? finder->find_same(workload.matrix)
                                       : finder->find_similar(workload.matrix, threshold);
    const double seconds = watch.seconds();
    std::printf("%-14s %12s %10zu %10zu %7.1f%%\n", std::string(finder->name()).c_str(),
                util::format_duration(seconds).c_str(), found.group_count(),
                found.roles_in_groups(), 100.0 * recall_vs(workload.planted, found));
  }
  std::printf("\nExact methods recover 100%% of planted roles; HNSW may trade recall for\n"
              "speed at scale (the paper re-runs the cleanup periodically to converge).\n");
  return 0;
}
