// Ablation benches for the design choices DESIGN.md calls out:
//
//   A1  find_same strategy: row-hash digesting vs the paper's literal
//       co-occurrence indicator (both exact; how much does hashing buy?)
//   A2  representation: sparse CSR -> dense conversion cost vs the dense
//       distance-kernel speedup (§III-B's memory/time trade-off)
//   A3  DBSCAN region-query parallelism: threads 1/2/4/8
//   A4  HNSW beam width: recall vs time as ef grows (why query_ef = 128)
#include <cstring>
#include <thread>
#include <memory>

#include "bench_common.hpp"
#include "cluster/dbscan.hpp"
#include "cluster/hnsw.hpp"
#include "core/methods/approx.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/minhash_lsh.hpp"
#include "core/methods/method_common.hpp"
#include "linalg/convert.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);
  const std::size_t big_roles = config.quick ? 2000 : 8000;

  gen::MatrixGenParams params;
  params.roles = big_roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 77;
  const gen::GeneratedMatrix workload = gen::generate_matrix(params);
  std::printf("=== Ablations (%zu roles x %zu users, %zu runs per cell) ===\n\n",
              params.roles, params.cols, config.runs);

  // ---- A1: same-strategy -----------------------------------------------
  {
    std::printf("[A1] find_same strategy (both exact, identical output):\n");
    const core::methods::RoleDietGroupFinder by_hash{};
    const core::methods::RoleDietGroupFinder by_matrix{
        {.same_strategy = core::methods::RoleDietGroupFinder::SameStrategy::kCooccurrenceMatrix}};
    const Cell hash_cell =
        time_cell(config.runs, [&] { (void)by_hash.find_same(workload.matrix); });
    const Cell matrix_cell =
        time_cell(config.runs, [&] { (void)by_matrix.find_same(workload.matrix); });
    std::printf("  row-hash digest:          %s\n", hash_cell.to_string().c_str());
    std::printf("  co-occurrence indicator:  %s\n", matrix_cell.to_string().c_str());
    std::printf("  -> hashing avoids all pairwise co-occurrence work for the\n"
                "     identical-roles case (x%.1f here).\n\n",
                matrix_cell.stats.mean_s / std::max(hash_cell.stats.mean_s, 1e-9));
  }

  // ---- A2: sparse vs dense ----------------------------------------------
  {
    std::printf("[A2] representation (%zu x %zu, %.2f%% density):\n", workload.matrix.rows(),
                workload.matrix.cols(),
                100.0 * static_cast<double>(workload.matrix.nnz()) /
                    (static_cast<double>(workload.matrix.rows()) *
                     static_cast<double>(workload.matrix.cols())));
    const Cell densify = time_cell(config.runs, [&] { (void)linalg::to_dense(workload.matrix); });
    const linalg::BitMatrix dense = linalg::to_dense(workload.matrix);
    // Distance kernel comparison over a fixed pair sample.
    const std::size_t pairs = 2'000'000;
    const Cell sparse_kernel = time_cell(config.runs, [&] {
      std::size_t sink = 0;
      for (std::size_t i = 0; i < pairs; ++i) {
        const std::size_t a = (i * 2654435761u) % workload.matrix.rows();
        const std::size_t b = (i * 40503u + 7) % workload.matrix.rows();
        sink += workload.matrix.row_hamming(a, b);
      }
      if (sink == 0xDEAD) std::puts("");  // keep the loop alive
    });
    const Cell dense_kernel = time_cell(config.runs, [&] {
      std::size_t sink = 0;
      for (std::size_t i = 0; i < pairs; ++i) {
        const std::size_t a = (i * 2654435761u) % dense.rows();
        const std::size_t b = (i * 40503u + 7) % dense.rows();
        sink += dense.row_hamming(a, b);
      }
      if (sink == 0xDEAD) std::puts("");
    });
    std::printf("  csr -> dense conversion:  %s\n", densify.to_string().c_str());
    std::printf("  2M hamming pairs, sparse: %s\n", sparse_kernel.to_string().c_str());
    std::printf("  2M hamming pairs, dense:  %s\n", dense_kernel.to_string().c_str());
    std::printf("  -> densify when doing quadratic work (DBSCAN), stay sparse for the\n"
                "     co-occurrence sweep (it touches only nonzeros).\n\n");
  }

  // ---- A3: DBSCAN threads -------------------------------------------------
  {
    std::printf("[A3] DBSCAN region-query threads (eps = 0, min_pts = 2; "
                "hardware threads: %u):\n",
                std::thread::hardware_concurrency());
    const auto selected = core::methods::nonempty_rows(workload.matrix);
    const linalg::BitMatrix dense = core::methods::densify_rows(workload.matrix, selected);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      cluster::DbscanParams dparams;
      dparams.eps = 0;
      dparams.min_pts = 2;
      dparams.threads = threads;
      const Cell cell = time_cell(config.runs, [&] { (void)cluster::dbscan(dense, dparams); });
      std::printf("  threads = %zu:  %s\n", threads, cell.to_string().c_str());
    }
    std::printf("  -> the quadratic distance phase parallelizes; the expansion phase is\n"
                "     sequential, bounding the speedup. (No speedup is observable when\n"
                "     the host exposes a single hardware thread.)\n\n");
  }

  // ---- A5: brute-force vs inverted-index DBSCAN ---------------------------
  {
    std::printf("[A5] DBSCAN region strategy vs role-diet (find_same):\n");
    const auto selected = core::methods::nonempty_rows(workload.matrix);
    const linalg::BitMatrix dense = core::methods::densify_rows(workload.matrix, selected);

    cluster::DbscanResult last;
    const Cell brute = time_cell(config.runs, [&] {
      last = cluster::dbscan(dense, {.eps = 0, .min_pts = 2});
    });
    std::printf("  brute-force regions:      %s  (%zu dist evals)\n",
                brute.to_string().c_str(), last.distance_evaluations);
    const Cell indexed = time_cell(config.runs, [&] {
      last = cluster::dbscan(dense, {.eps = 0, .min_pts = 2,
                                     .region_strategy = cluster::RegionStrategy::kInvertedIndex});
    });
    std::printf("  inverted-index regions:   %s  (%zu dist evals)\n",
                indexed.to_string().c_str(), last.distance_evaluations);
    const core::methods::RoleDietGroupFinder ours;
    const Cell diet = time_cell(config.runs, [&] { (void)ours.find_same(workload.matrix); });
    std::printf("  role-diet (hash):         %s\n", diet.to_string().c_str());
    std::printf("  -> indexing rescues DBSCAN from quadratic scans, but it still runs a\n"
                "     co-occurrence sweep per *query* (twice per point through expansion);\n"
                "     the role-diet method visits each pair once — or, with hashing, no\n"
                "     pair at all. Its advantage is algorithmic, not implementation.\n\n");
  }

  // ---- A6: approximate baselines head-to-head -----------------------------
  {
    std::printf("[A6] approximate baselines (find_same; recall vs planted truth):\n");
    const core::methods::HnswGroupFinder hnsw;
    const core::methods::MinHashGroupFinder minhash;
    auto recall_of = [&](const core::RoleGroups& found) {
      return workload.planted.roles_in_groups() == 0
                 ? 1.0
                 : static_cast<double>(found.roles_in_groups()) /
                       static_cast<double>(workload.planted.roles_in_groups());
    };
    core::RoleGroups found;
    const Cell hnsw_cell =
        time_cell(config.runs, [&] { found = hnsw.find_same(workload.matrix); });
    std::printf("  hnsw (graph index):       %s  recall %5.1f%%\n",
                hnsw_cell.to_string().c_str(), 100.0 * recall_of(found));
    const Cell mh_cell =
        time_cell(config.runs, [&] { found = minhash.find_same(workload.matrix); });
    std::printf("  minhash-lsh (signatures): %s  recall %5.1f%%\n",
                mh_cell.to_string().c_str(), 100.0 * recall_of(found));
    std::printf("  -> for pure duplicate detection the signature method is both faster\n"
                "     and deterministic (identical sets always collide in every band);\n"
                "     HNSW generalizes to arbitrary-radius queries, which LSH does not.\n\n");
  }

  // ---- A4: HNSW beam width --------------------------------------------
  {
    std::printf("[A4] HNSW beam width (find_same, recall vs planted ground truth):\n");
    for (std::size_t ef : {16u, 32u, 64u, 128u, 256u}) {
      core::methods::HnswGroupFinder::Options options;
      options.query_ef = ef;
      options.index.ef_search = ef;
      const core::methods::HnswGroupFinder finder(options);
      core::RoleGroups found;
      const Cell cell = time_cell(config.runs, [&] { found = finder.find_same(workload.matrix); });
      const double recall = workload.planted.roles_in_groups() == 0
                                ? 1.0
                                : static_cast<double>(found.roles_in_groups()) /
                                      static_cast<double>(workload.planted.roles_in_groups());
      std::printf("  ef = %3zu:  %s  recall %5.1f%%\n", ef, cell.to_string().c_str(),
                  100.0 * recall);
    }
    std::printf("  -> recall saturates around ef = 128 on RBAC-shaped data; narrower beams\n"
                "     miss whole duplicate groups, which is the approximation the paper\n"
                "     tolerates via periodic re-runs.\n");
  }
  return 0;
}
