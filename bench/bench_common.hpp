// Shared harness for the paper-reproduction benchmarks.
//
// Every figure/table binary follows the paper's measurement protocol
// (§IV-A): run each configuration `runs` times (default 5), report mean and
// sample standard deviation of wall time. Output is a plain-text table on
// stdout — one row per sweep point, one column per method — so the series
// can be diffed against the paper's figures directly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/group_finder.hpp"
#include "gen/matrix_generator.hpp"
#include "util/timer.hpp"

namespace rolediet::bench {

/// Command-line knobs shared by the sweep benches.
struct BenchConfig {
  std::size_t runs = 5;     ///< repetitions per configuration (paper: 5)
  bool quick = false;       ///< --quick: fewer sweep points / runs for smoke tests
  /// --threads: worker threads for every timed finder, under the library-wide
  /// knob convention in util/thread_pool.hpp (1 = sequential, the paper's
  /// setup; 0 = all cores). Groups stay identical at every value, so the
  /// figures can be regenerated at 1/2/N threads and compared point-by-point.
  std::size_t threads = 1;
  /// --shards: 0 = the paper's single-engine cells; N >= 1 re-times every
  /// cell through the range-partitioned core::ShardedEngine instead (findings
  /// identical for every method except approx-hnsw — see sweep_common.hpp).
  std::size_t shards = 0;

  static BenchConfig parse(int argc, char** argv) {
    BenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.quick = true;
        config.runs = 2;
      } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
        config.runs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        config.shards = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--runs N] [--threads N] [--shards N]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }

  /// Finder options carrying the harness-wide thread knob.
  [[nodiscard]] core::GroupFinderOptions finder_options() const {
    core::GroupFinderOptions options;
    options.threads = threads;
    return options;
  }
};

/// One measured cell: mean +- stdev seconds over `runs` repetitions.
struct Cell {
  util::RunStats stats;

  [[nodiscard]] std::string to_string() const {
    char buf[64];
    if (stats.mean_s >= 1.0) {
      std::snprintf(buf, sizeof(buf), "%8.2f +-%5.2f s ", stats.mean_s, stats.stdev_s);
    } else {
      std::snprintf(buf, sizeof(buf), "%8.2f +-%5.2f ms", stats.mean_s * 1e3,
                    stats.stdev_s * 1e3);
    }
    return buf;
  }
};

/// Times `body` (already bound to a configuration) `runs` times. The
/// generator part of a configuration is *excluded* from the timing: callers
/// generate the workload once outside and pass a closure that only runs the
/// detection.
template <typename Body>
[[nodiscard]] Cell time_cell(std::size_t runs, Body&& body) {
  return {util::time_runs(runs, [&](std::size_t) { body(); })};
}

/// The three methods in the order the paper's figures list them.
inline const std::vector<core::Method>& all_methods() {
  static const std::vector<core::Method> methods{
      core::Method::kExactDbscan, core::Method::kApproxHnsw, core::Method::kRoleDiet};
  return methods;
}

/// Prints the standard sweep-table header.
inline void print_header(const char* sweep_column) {
  std::printf("%-10s", sweep_column);
  for (core::Method method : all_methods()) {
    std::printf(" | %-19s", std::string(core::to_string(method)).c_str());
  }
  std::printf("\n");
  for (int i = 0; i < 10 + 3 * 22; ++i) std::fputc('-', stdout);
  std::printf("\n");
}

}  // namespace rolediet::bench
