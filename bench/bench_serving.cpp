// Serving bench: closed-loop reader fleets against the writer/reader split
// (BENCH_serving.json).
//
// The AuditService claim is that reads never wait on the writer: a reaudit
// that takes hundreds of milliseconds publishes a fresh immutable version at
// the end, and every read in between answers from the previous version in
// microseconds. This bench drives a fixed delta trace through the writer
// while closed-loop reader fleets of increasing size hammer begin_read() +
// group_of(), recording per-read latency. For each fleet size it reports
// p50/p99 read latency and read throughput next to the writer's stall time
// (reaudit + checkpoint seconds) and versions/sec.
//
// Proof obligation (exit 1 if unmet): at least one read must start AND
// complete while a reaudit is demonstrably in flight — a dedicated prober
// thread waits for reaudit_in_flight(), runs a full read, and re-checks the
// flag afterwards. A blocking design (readers behind the writer's lock)
// cannot pass this on any machine; snapshot isolation passes it even on one
// core, because the writer thread is *inside* reaudit() while the prober
// runs.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "gen/matrix_generator.hpp"
#include "io/json_writer.hpp"
#include "service/audit_service.hpp"
#include "util/latch.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace rolediet;

namespace fs = std::filesystem;

namespace {

struct ServingConfig {
  std::size_t roles = 2000;
  std::size_t batches = 48;
  std::size_t batch_size = 24;
  std::size_t reaudit_every = 2;
  std::vector<std::size_t> fleets{1, 2, 4};
  std::string out_path = "BENCH_serving.json";

  static ServingConfig parse(int argc, char** argv) {
    ServingConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.roles = 600;
        config.batches = 24;
        config.fleets = {1, 2};
      } else if (std::strcmp(argv[i], "--roles") == 0 && i + 1 < argc) {
        config.roles = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
        config.batches = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--roles N] [--batches N] [--out F]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// Fig. 3 shape (§IV-A), same generator seeds as bench_pipeline/bench_reaudit.
core::RbacDataset fig3_dataset(std::size_t roles) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 3000 + roles;
  const linalg::CsrMatrix ruam = gen::generate_matrix(params).matrix;
  params.seed = 7000 + roles;
  const linalg::CsrMatrix rpam = gen::generate_matrix(params).matrix;

  core::RbacDataset dataset;
  dataset.add_users(ruam.cols());
  dataset.add_permissions(rpam.cols());
  dataset.add_roles(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    for (std::uint32_t u : ruam.row(r)) dataset.assign_user(static_cast<core::Id>(r), u);
    for (std::uint32_t p : rpam.row(r)) dataset.grant_permission(static_cast<core::Id>(r), p);
  }
  return dataset;
}

/// Effective name-based mutation trace (bench_recovery's recipe).
std::vector<core::Mutation> build_trace(const core::RbacDataset& base, std::size_t count,
                                        util::Xoshiro256& rng) {
  std::vector<std::pair<core::Id, core::Id>> user_edges, perm_edges;
  for (std::size_t r = 0; r < base.num_roles(); ++r) {
    for (std::uint32_t u : base.ruam().row(r))
      user_edges.emplace_back(static_cast<core::Id>(r), u);
    for (std::uint32_t p : base.rpam().row(r))
      perm_edges.emplace_back(static_cast<core::Id>(r), p);
  }
  const auto users = static_cast<core::Id>(base.num_users());
  const auto perms = static_cast<core::Id>(base.num_permissions());
  const auto roles = static_cast<core::Id>(base.num_roles());

  core::AuditEngine scratch(base, {});
  std::vector<core::Mutation> trace;
  while (trace.size() < count) {
    const std::uint64_t before = scratch.version();
    core::RbacDelta one;
    switch (trace.size() % 4) {
      case 0: {
        const auto& [r, u] = user_edges[rng.bounded(user_edges.size())];
        one.revoke_user(base.role_name(r), base.user_name(u));
        break;
      }
      case 1:
        one.assign_user(base.role_name(static_cast<core::Id>(rng.bounded(roles))),
                        base.user_name(static_cast<core::Id>(rng.bounded(users))));
        break;
      case 2: {
        const auto& [r, p] = perm_edges[rng.bounded(perm_edges.size())];
        one.revoke_permission(base.role_name(r), base.permission_name(p));
        break;
      }
      default:
        one.grant_permission(base.role_name(static_cast<core::Id>(rng.bounded(roles))),
                             base.permission_name(static_cast<core::Id>(rng.bounded(perms))));
        break;
    }
    scratch.apply(one);
    if (scratch.version() != before) trace.push_back(std::move(one.mutations.front()));
  }
  return trace;
}

/// Nearest-rank percentile of a sorted sample (index ceil(p*n) - 1).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

struct LoadPoint {
  std::size_t readers = 0;
  std::uint64_t reads = 0;
  std::uint64_t reads_during_reaudit = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double reads_per_sec = 0.0;
  double writer_seconds = 0.0;
  double writer_stall_seconds = 0.0;
  std::uint64_t versions_published = 0;
  double versions_per_sec = 0.0;
};

LoadPoint run_load_point(const fs::path& dir, const core::RbacDataset& dataset,
                         const std::vector<core::Mutation>& trace, const ServingConfig& config,
                         std::size_t readers) {
  core::AuditOptions options;  // role-diet defaults: the cheap exact method
  service::ServiceOptions service_options;
  service_options.reaudit_every = config.reaudit_every;
  service_options.checkpoint_every = 0;  // measure serving, not checkpoint I/O
  service_options.max_readers = readers + 1;  // fleet + prober
  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;  // measure CPU, not the disk

  service::AuditService svc(dir, dataset, options, service_options, store_options);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> during{0};
  util::Latch start_line(readers + 2);  // fleet + prober + writer(main)

  // Closed-loop fleet: each reader issues the next request the moment the
  // previous one completes — offered load == fleet size.
  std::vector<std::vector<double>> latencies(readers);
  std::vector<std::thread> fleet;
  fleet.reserve(readers);
  for (std::size_t t = 0; t < readers; ++t) {
    fleet.emplace_back([&, t] {
      util::Xoshiro256 rng(0xF1EE7 + t);
      start_line.arrive_and_wait();
      while (!done.load(std::memory_order_acquire)) {
        util::Stopwatch watch;
        const service::ReadSession session = svc.begin_read();
        const auto role =
            static_cast<core::Id>(rng.bounded(session.version().dataset->num_roles()));
        (void)session.group_of(session.version().dataset->role_name(role));
        latencies[t].push_back(watch.seconds());
      }
    });
  }

  // Prober: a full read that starts and ends inside one reaudit window is
  // the non-blocking proof; the fleet alone could in principle always land
  // between reaudits on one core.
  std::thread prober([&] {
    util::Xoshiro256 rng(0x9120BE);
    start_line.arrive_and_wait();
    while (!done.load(std::memory_order_acquire)) {
      if (!svc.reaudit_in_flight()) {
        std::this_thread::yield();
        continue;
      }
      const service::ReadSession session = svc.begin_read();
      const auto role =
          static_cast<core::Id>(rng.bounded(session.version().dataset->num_roles()));
      (void)session.group_of(session.version().dataset->role_name(role));
      if (svc.reaudit_in_flight()) during.fetch_add(1, std::memory_order_relaxed);
    }
  });

  start_line.arrive_and_wait();
  util::Stopwatch writer_watch;
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < config.batches; ++b) {
    core::RbacDelta delta;
    for (std::size_t m = 0; m < config.batch_size && cursor < trace.size(); ++m)
      delta.mutations.push_back(trace[cursor++]);
    if (!svc.submit(std::move(delta))) break;
  }
  svc.stop();
  const double writer_seconds = writer_watch.seconds();
  done.store(true, std::memory_order_release);
  for (std::thread& t : fleet) t.join();
  prober.join();
  if (svc.writer_error()) std::rethrow_exception(svc.writer_error());

  std::vector<double> all;
  for (const auto& sample : latencies) all.insert(all.end(), sample.begin(), sample.end());
  std::sort(all.begin(), all.end());

  LoadPoint point;
  point.readers = readers;
  point.reads = all.size();
  point.reads_during_reaudit = during.load();
  point.p50_us = percentile(all, 0.50) * 1e6;
  point.p99_us = percentile(all, 0.99) * 1e6;
  point.reads_per_sec =
      writer_seconds > 0.0 ? static_cast<double>(all.size()) / writer_seconds : 0.0;
  point.writer_seconds = writer_seconds;
  point.writer_stall_seconds = svc.stats().writer_stall_seconds.load();
  point.versions_published = svc.stats().versions_published.load();
  point.versions_per_sec =
      writer_seconds > 0.0 ? static_cast<double>(point.versions_published) / writer_seconds
                           : 0.0;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const ServingConfig config = ServingConfig::parse(argc, argv);

  std::printf("=== serving bench: snapshot-isolated reads vs offered load ===\n");
  std::printf("roles=%zu batches=%zu x %zu mutations, reaudit every %zu -> %s\n\n", config.roles,
              config.batches, config.batch_size, config.reaudit_every, config.out_path.c_str());

  const core::RbacDataset dataset = fig3_dataset(config.roles);
  util::Xoshiro256 rng(0x5E12E + config.roles);
  const std::vector<core::Mutation> trace =
      build_trace(dataset, config.batches * config.batch_size, rng);

  const fs::path root =
      fs::temp_directory_path() / ("rolediet_bench_serving_" + std::to_string(::getpid()));
  fs::remove_all(root);

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("serving");
  w.key("workload");
  w.begin_object();
  w.key("figure");
  w.value("fig3");
  w.key("roles");
  w.value(static_cast<std::uint64_t>(config.roles));
  w.key("batches");
  w.value(static_cast<std::uint64_t>(config.batches));
  w.key("batch_size");
  w.value(static_cast<std::uint64_t>(config.batch_size));
  w.key("reaudit_every");
  w.value(static_cast<std::uint64_t>(config.reaudit_every));
  w.end_object();
  w.key("load_points");
  w.begin_array();

  std::uint64_t total_during = 0;
  for (std::size_t readers : config.fleets) {
    const LoadPoint point = run_load_point(root / ("readers-" + std::to_string(readers)),
                                           dataset, trace, config, readers);
    total_during += point.reads_during_reaudit;

    w.begin_object();
    w.key("readers");
    w.value(static_cast<std::uint64_t>(point.readers));
    w.key("reads");
    w.value(point.reads);
    w.key("reads_during_reaudit");
    w.value(point.reads_during_reaudit);
    w.key("read_latency_p50_us");
    w.value(point.p50_us);
    w.key("read_latency_p99_us");
    w.value(point.p99_us);
    w.key("reads_per_sec");
    w.value(point.reads_per_sec);
    w.key("writer_seconds");
    w.value(point.writer_seconds);
    w.key("writer_stall_seconds");
    w.value(point.writer_stall_seconds);
    w.key("versions_published");
    w.value(point.versions_published);
    w.key("versions_per_sec");
    w.value(point.versions_per_sec);
    w.end_object();

    std::printf("readers=%zu  reads=%8llu  p50 %8.1f us  p99 %8.1f us  %9.0f reads/s"
                "  versions/s %6.2f  stall %6.3f s  during-reaudit %llu\n",
                point.readers, static_cast<unsigned long long>(point.reads), point.p50_us,
                point.p99_us, point.reads_per_sec, point.versions_per_sec,
                point.writer_stall_seconds,
                static_cast<unsigned long long>(point.reads_during_reaudit));
    std::fflush(stdout);
  }

  // The non-blocking proof: some read completed while a reaudit was in
  // flight. See the prober comment — a lock-coupled design cannot pass.
  const bool ok = total_during > 0;
  if (!ok)
    std::fprintf(stderr, "PROOF FAILED: no read completed during an in-flight reaudit\n");

  w.end_array();
  w.key("reads_during_reaudit_total");
  w.value(total_during);
  w.key("ok");
  w.value(ok);
  w.end_object();

  fs::remove_all(root);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return ok ? 0 : 1;
}
