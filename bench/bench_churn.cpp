// Long-horizon churn bench: a multi-year org lifecycle streamed through the
// durable EngineStore (BENCH_churn.json).
//
// gen/churn emits one mutation batch per simulated day — steady hiring and
// attrition, quarterly reorg bursts, tenant onboarding waves, permission
// sprawl, an annual layoff — starting from an empty dataset. This bench
// replays the full stream through an EngineStore and records the operational
// cost curves the steady-state engine exists to flatten:
//
//   * findings drift: inefficiency counts at every re-audit boundary, the
//     paper's "accumulate over time" premise as a data series;
//   * verify work: re-audit wall time, dirty-frontier size, and similar-phase
//     pairs evaluated per delta re-audit vs a cold batch audit of the same
//     state at each year end;
//   * durability cost: checkpoint wall time and snapshot bytes per quarter,
//     plus recovery (open a copy of the store) wall time per year end.
//
// For exact methods the engine findings are asserted identical to the cold
// batch audit before anything is recorded, so the bench doubles as a
// long-horizon end-to-end check at a scale the unit suite cannot afford.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "gen/churn.hpp"
#include "io/json_writer.hpp"
#include "store/engine_store.hpp"
#include "util/timer.hpp"

using namespace rolediet;

namespace {

core::Method parse_method(const char* name) {
  if (std::strcmp(name, "role-diet") == 0) return core::Method::kRoleDiet;
  if (std::strcmp(name, "exact-dbscan") == 0) return core::Method::kExactDbscan;
  if (std::strcmp(name, "approx-hnsw") == 0) return core::Method::kApproxHnsw;
  if (std::strcmp(name, "approx-minhash") == 0) return core::Method::kApproxMinhash;
  std::fprintf(stderr, "unknown method '%s'\n", name);
  std::exit(2);
}

struct ChurnBenchConfig {
  std::size_t employees = 60'000;
  std::size_t years = 3;
  std::uint64_t seed = 1;
  std::size_t reaudit_days = 30;
  std::size_t checkpoint_days = 91;
  std::size_t threads = 1;
  core::Method method = core::Method::kRoleDiet;
  std::string out_path = "BENCH_churn.json";
  std::filesystem::path store_dir;  // empty -> <tmp>/bench_churn_store

  static ChurnBenchConfig parse(int argc, char** argv) {
    ChurnBenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.employees = 2'000;
        config.years = 2;
      } else if (std::strcmp(argv[i], "--employees") == 0 && i + 1 < argc) {
        config.employees = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--years") == 0 && i + 1 < argc) {
        config.years = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        config.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--reaudit-days") == 0 && i + 1 < argc) {
        config.reaudit_days = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--checkpoint-days") == 0 && i + 1 < argc) {
        config.checkpoint_days =
            static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--method") == 0 && i + 1 < argc) {
        config.method = parse_method(argv[++i]);
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) {
        config.store_dir = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--employees N] [--years N] [--seed N]\n"
                     "          [--reaudit-days N] [--checkpoint-days N] [--threads N]\n"
                     "          [--method M] [--out F] [--dir STORE_DIR]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    if (config.years == 0) config.years = 1;
    if (config.reaudit_days == 0) config.reaudit_days = 1;
    if (config.checkpoint_days == 0) config.checkpoint_days = 1;
    if (config.store_dir.empty())
      config.store_dir = std::filesystem::temp_directory_path() / "bench_churn_store";
    return config;
  }
};

struct YearMark {
  std::size_t day = 0;
  std::uint64_t records = 0;
  double engine_seconds = 0.0;
  std::size_t engine_pairs = 0;
  double batch_seconds = 0.0;
  std::size_t batch_pairs = 0;
  double recovery_seconds = 0.0;
  std::uint64_t recovery_replayed = 0;
};

struct CheckpointMark {
  std::size_t day = 0;
  std::uint64_t records = 0;
  double seconds = 0.0;
  std::uintmax_t snapshot_bytes = 0;
  std::uintmax_t store_bytes = 0;
};

std::size_t similar_pairs(const core::AuditReport& r) {
  return r.similar_users_work.pairs_evaluated + r.similar_permissions_work.pairs_evaluated;
}

/// Findings-only rendering (timings, counters, and live-engine bookkeeping
/// stripped) for the engine-vs-batch identity assertion.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    t->seconds = 0.0;
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  report.engine_version = 0;
  report.options = core::AuditOptions{};
  return report.to_text();
}

void write_findings(io::JsonWriter& w, const core::AuditReport& report) {
  w.key("findings");
  w.begin_object();
  w.key("standalone_users");
  w.value(report.structural.standalone_users.size());
  w.key("standalone_roles");
  w.value(report.structural.standalone_roles.size());
  w.key("standalone_permissions");
  w.value(report.structural.standalone_permissions.size());
  w.key("roles_without_users");
  w.value(report.structural.roles_without_users.size());
  w.key("roles_without_permissions");
  w.value(report.structural.roles_without_permissions.size());
  w.key("single_user_roles");
  w.value(report.structural.single_user_roles.size());
  w.key("single_permission_roles");
  w.value(report.structural.single_permission_roles.size());
  w.key("same_user_groups");
  w.value(report.same_user_groups.groups.size());
  w.key("same_permission_groups");
  w.value(report.same_permission_groups.groups.size());
  w.key("similar_user_groups");
  w.value(report.similar_user_groups.groups.size());
  w.key("similar_permission_groups");
  w.value(report.similar_permission_groups.groups.size());
  w.end_object();
}

std::uintmax_t directory_bytes(const std::filesystem::path& dir) {
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) total += entry.file_size(ec);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const ChurnBenchConfig config = ChurnBenchConfig::parse(argc, argv);

  gen::ChurnConfig churn;
  churn.seed = config.seed;
  churn.initial_employees = config.employees;
  churn.years = config.years;

  core::AuditOptions options;
  options.method = config.method;
  options.threads = config.threads;

  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;  // measure CPU, not the disk

  std::printf("=== churn bench: %zu employees over %zu years through a durable store ===\n",
              config.employees, config.years);
  std::printf("method=%s threads=%zu reaudit every %zu days, checkpoint every %zu days "
              "-> %s\n\n",
              std::string(core::to_string(config.method)).c_str(), config.threads,
              config.reaudit_days, config.checkpoint_days, config.out_path.c_str());

  std::filesystem::remove_all(config.store_dir);
  const std::filesystem::path recover_dir = config.store_dir.string() + ".recover";
  store::EngineStore durable =
      store::EngineStore::create(config.store_dir, core::RbacDataset{}, options, store_options);

  gen::ChurnSimulator sim(churn);

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("churn");
  w.key("workload");
  w.begin_object();
  w.key("employees");
  w.value(static_cast<std::uint64_t>(config.employees));
  w.key("years");
  w.value(static_cast<std::uint64_t>(config.years));
  w.key("seed");
  w.value(config.seed);
  w.key("reaudit_days");
  w.value(static_cast<std::uint64_t>(config.reaudit_days));
  w.key("checkpoint_days");
  w.value(static_cast<std::uint64_t>(config.checkpoint_days));
  w.end_object();
  w.key("method");
  w.value(core::to_string(config.method));
  w.key("threads");
  w.value(static_cast<std::uint64_t>(config.threads));

  bool ok = true;
  double apply_seconds = 0.0;
  std::vector<YearMark> year_marks;
  std::vector<CheckpointMark> checkpoints;

  w.key("reaudits");
  w.begin_array();

  while (!sim.done()) {
    const std::size_t day = sim.day();
    const gen::ChurnPhase phase = sim.phase_of(day);
    const core::RbacDelta delta = sim.next_day();
    if (!delta.empty()) {
      util::Stopwatch apply_watch;
      durable.apply(delta);
      apply_seconds += apply_watch.seconds();
    }
    const bool last = sim.done();

    const bool year_boundary = day > 0 && day % churn.days_per_year == 0;
    if (day % config.reaudit_days == 0 || last || year_boundary ||
        phase == gen::ChurnPhase::kLayoff) {
      const std::size_t dirty = durable.engine().dirty_roles();
      util::Stopwatch watch;
      const core::AuditReport report = durable.engine().reaudit();
      const double seconds = watch.seconds();

      w.begin_object();
      w.key("day");
      w.value(static_cast<std::uint64_t>(day));
      w.key("phase");
      w.value(gen::to_string(phase));
      w.key("records");
      w.value(durable.records());
      w.key("users");
      w.value(report.num_users);
      w.key("roles");
      w.value(report.num_roles);
      w.key("dirty_roles");
      w.value(dirty);
      w.key("reaudit_seconds");
      w.value(seconds);
      w.key("similar_pairs_evaluated");
      w.value(similar_pairs(report));
      write_findings(w, report);
      w.end_object();

      if (day % (10 * config.reaudit_days) == 0 || last) {
        std::printf("day %5zu (%-15s) %8llu records, %5zu dirty, re-audit %7.3f ms, "
                    "%zu/%zu standalone u/p, %zu+%zu dup/similar groups\n",
                    day, std::string(gen::to_string(phase)).c_str(),
                    static_cast<unsigned long long>(durable.records()), dirty,
                    seconds * 1e3, report.structural.standalone_users.size(),
                    report.structural.standalone_permissions.size(),
                    report.same_user_groups.groups.size() +
                        report.same_permission_groups.groups.size(),
                    report.similar_user_groups.groups.size() +
                        report.similar_permission_groups.groups.size());
        std::fflush(stdout);
      }

      // Year mark: cold batch audit + recovery cost against the same state.
      if (year_boundary || last) {
        util::Stopwatch batch_watch;
        const core::AuditReport batch = core::audit(durable.engine().snapshot(), options);
        const double batch_seconds = batch_watch.seconds();

        if (config.method != core::Method::kApproxHnsw &&
            findings_text(report) != findings_text(batch)) {
          std::fprintf(stderr, "FINDINGS MISMATCH: engine vs batch at day %zu\n", day);
          ok = false;
        }

        // Recovery cost: open a copy of the store (the live WAL handle stays
        // untouched); the copy itself is outside the timed region.
        std::filesystem::remove_all(recover_dir);
        std::filesystem::copy(config.store_dir, recover_dir);
        util::Stopwatch recover_watch;
        const store::EngineStore recovered =
            store::EngineStore::open(recover_dir, options, store_options);
        const double recover_seconds = recover_watch.seconds();

        year_marks.push_back({day, durable.records(), seconds, similar_pairs(report),
                              batch_seconds, similar_pairs(batch), recover_seconds,
                              recovered.recovery().replayed_records});
        std::printf("  year mark day %zu: engine %7.3f ms vs batch %8.3f ms, "
                    "recovery %7.3f ms (%llu records replayed)\n",
                    day, seconds * 1e3, batch_seconds * 1e3, recover_seconds * 1e3,
                    static_cast<unsigned long long>(recovered.recovery().replayed_records));
        std::fflush(stdout);
        std::filesystem::remove_all(recover_dir);
      }
    }

    if (day > 0 && (day % config.checkpoint_days == 0 || last)) {
      util::Stopwatch ckpt_watch;
      const std::filesystem::path snap = durable.checkpoint();
      const double ckpt_seconds = ckpt_watch.seconds();
      checkpoints.push_back({day, durable.records(), ckpt_seconds,
                             std::filesystem::file_size(snap),
                             directory_bytes(config.store_dir)});
    }
  }
  w.end_array();

  w.key("year_marks");
  w.begin_array();
  for (const YearMark& m : year_marks) {
    w.begin_object();
    w.key("day");
    w.value(static_cast<std::uint64_t>(m.day));
    w.key("records");
    w.value(m.records);
    w.key("engine_reaudit_seconds");
    w.value(m.engine_seconds);
    w.key("engine_similar_pairs");
    w.value(m.engine_pairs);
    w.key("batch_audit_seconds");
    w.value(m.batch_seconds);
    w.key("batch_similar_pairs");
    w.value(m.batch_pairs);
    w.key("recovery_seconds");
    w.value(m.recovery_seconds);
    w.key("recovery_replayed_records");
    w.value(m.recovery_replayed);
    w.end_object();
  }
  w.end_array();

  w.key("checkpoints");
  w.begin_array();
  for (const CheckpointMark& m : checkpoints) {
    w.begin_object();
    w.key("day");
    w.value(static_cast<std::uint64_t>(m.day));
    w.key("records");
    w.value(m.records);
    w.key("checkpoint_seconds");
    w.value(m.seconds);
    w.key("snapshot_bytes");
    w.value(static_cast<std::uint64_t>(m.snapshot_bytes));
    w.key("store_bytes");
    w.value(static_cast<std::uint64_t>(m.store_bytes));
    w.end_object();
  }
  w.end_array();

  const gen::ChurnStats& stats = sim.stats();
  w.key("stream");
  w.begin_object();
  w.key("days");
  w.value(stats.days);
  w.key("mutations");
  w.value(stats.mutations);
  w.key("hires");
  w.value(stats.hires);
  w.key("departures");
  w.value(stats.departures);
  w.key("transfers");
  w.value(stats.transfers);
  w.key("provisions");
  w.value(stats.provisions);
  w.key("decommissions");
  w.value(stats.decommissions);
  w.key("role_clones");
  w.value(stats.role_clones);
  w.key("role_forks");
  w.value(stats.role_forks);
  w.key("shadow_roles");
  w.value(stats.shadow_roles);
  w.key("tenants_onboarded");
  w.value(stats.tenants_onboarded);
  w.key("layoff_days");
  w.value(stats.layoff_days);
  w.key("apply_seconds_total");
  w.value(apply_seconds);
  w.end_object();
  w.key("findings_identical");
  w.value(ok);
  w.end_object();

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("\n%zu mutations over %zu days (apply total %.3f s)\nwrote %s\n",
              stats.mutations, stats.days, apply_seconds, config.out_path.c_str());
  std::filesystem::remove_all(config.store_dir);
  return ok ? 0 : 1;
}
