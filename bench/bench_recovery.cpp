// Durable-store recovery bench: checkpoint cost and recover-from-snapshot vs
// cold WAL replay on the Fig. 3 workload (BENCH_recovery.json).
//
// The store's value claim is that a checkpoint makes restart cheap: after a
// 1% delta, open()-from-snapshot restores the cached pair verdicts and the
// follow-up re-audit does verify work proportional to the dirty frontier,
// while a cold start (fresh engine + full journal replay + batch audit)
// re-derives everything. Per method this bench records the snapshot size,
// checkpoint latency, recovery wall time, and the similar-phase verify
// counters of both paths, asserting strictly less recovered work for every
// cache-carrying method (HNSW rebuilds by design and is exempt) and
// byte-identical findings for all of them before anything is written.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "io/json_writer.hpp"
#include "store/engine_store.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

// Fig. 3 dataset builder shared with bench_reaudit (same shape and seeds).
#include "gen/matrix_generator.hpp"

using namespace rolediet;

namespace fs = std::filesystem;

namespace {

struct RecoveryConfig {
  std::size_t roles = 2000;
  std::size_t threads = 1;
  double fraction = 0.01;  ///< delta size between checkpoint and crash
  std::string out_path = "BENCH_recovery.json";

  static RecoveryConfig parse(int argc, char** argv) {
    RecoveryConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.roles = 600;
      } else if (std::strcmp(argv[i], "--roles") == 0 && i + 1 < argc) {
        config.roles = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--roles N] [--threads N] [--out F]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// Fig. 3 shape (§IV-A), same generator seeds as bench_pipeline/bench_reaudit.
core::RbacDataset fig3_dataset(std::size_t roles) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 3000 + roles;
  const linalg::CsrMatrix ruam = gen::generate_matrix(params).matrix;
  params.seed = 7000 + roles;
  const linalg::CsrMatrix rpam = gen::generate_matrix(params).matrix;

  core::RbacDataset dataset;
  dataset.add_users(ruam.cols());
  dataset.add_permissions(rpam.cols());
  dataset.add_roles(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    for (std::uint32_t u : ruam.row(r)) dataset.assign_user(static_cast<core::Id>(r), u);
    for (std::uint32_t p : rpam.row(r)) dataset.grant_permission(static_cast<core::Id>(r), p);
  }
  return dataset;
}

/// Builds a name-based mutation trace of `count` *effective* single
/// mutations (alternating revocations of existing edges and fresh
/// additions), validated against a scratch engine so no-ops don't count.
std::vector<core::Mutation> build_trace(const core::RbacDataset& base, std::size_t count,
                                        util::Xoshiro256& rng) {
  std::vector<std::pair<core::Id, core::Id>> user_edges, perm_edges;
  for (std::size_t r = 0; r < base.num_roles(); ++r) {
    for (std::uint32_t u : base.ruam().row(r))
      user_edges.emplace_back(static_cast<core::Id>(r), u);
    for (std::uint32_t p : base.rpam().row(r))
      perm_edges.emplace_back(static_cast<core::Id>(r), p);
  }
  const auto users = static_cast<core::Id>(base.num_users());
  const auto perms = static_cast<core::Id>(base.num_permissions());
  const auto roles = static_cast<core::Id>(base.num_roles());

  core::AuditEngine scratch(base, {});
  std::vector<core::Mutation> trace;
  while (trace.size() < count) {
    const std::uint64_t before = scratch.version();
    core::RbacDelta one;
    switch (trace.size() % 4) {
      case 0: {
        const auto& [r, u] = user_edges[rng.bounded(user_edges.size())];
        one.revoke_user(base.role_name(r), base.user_name(u));
        break;
      }
      case 1:
        one.assign_user(base.role_name(static_cast<core::Id>(rng.bounded(roles))),
                        base.user_name(static_cast<core::Id>(rng.bounded(users))));
        break;
      case 2: {
        const auto& [r, p] = perm_edges[rng.bounded(perm_edges.size())];
        one.revoke_permission(base.role_name(r), base.permission_name(p));
        break;
      }
      default:
        one.grant_permission(base.role_name(static_cast<core::Id>(rng.bounded(roles))),
                             base.permission_name(static_cast<core::Id>(rng.bounded(perms))));
        break;
    }
    scratch.apply(one);
    if (scratch.version() != before) trace.push_back(std::move(one.mutations.front()));
  }
  return trace;
}

std::size_t similar_pairs(const core::AuditReport& r) {
  return r.similar_users_work.pairs_evaluated + r.similar_permissions_work.pairs_evaluated;
}

/// Findings-only rendering for the identity assertion. Unlike bench_reaudit,
/// the engine version stays: the recovered engine must land on exactly the
/// cold engine's version (same effective mutation count).
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

}  // namespace

int main(int argc, char** argv) {
  const RecoveryConfig config = RecoveryConfig::parse(argc, argv);

  std::printf("=== recovery bench: checkpoint + recover vs cold replay (Fig. 3 workload) ===\n");
  std::printf("roles=%zu users=1000 threads=%zu delta=%.1f%% -> %s\n\n", config.roles,
              config.threads, config.fraction * 100.0, config.out_path.c_str());

  const core::RbacDataset dataset = fig3_dataset(config.roles);
  const std::size_t total_edges = dataset.ruam().nnz() + dataset.rpam().nnz();
  const auto mutations =
      static_cast<std::size_t>(static_cast<double>(total_edges) * config.fraction);
  util::Xoshiro256 rng(0x5707E + config.roles);
  const std::vector<core::Mutation> trace =
      build_trace(dataset, mutations == 0 ? 1 : mutations, rng);

  const fs::path root =
      fs::temp_directory_path() / ("rolediet_bench_recovery_" + std::to_string(::getpid()));
  fs::remove_all(root);

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("recovery");
  w.key("workload");
  w.begin_object();
  w.key("figure");
  w.value("fig3");
  w.key("roles");
  w.value(static_cast<std::uint64_t>(config.roles));
  w.key("users");
  w.value(std::uint64_t{1000});
  w.key("permissions");
  w.value(std::uint64_t{1000});
  w.key("edges");
  w.value(total_edges);
  w.key("delta_fraction");
  w.value(config.fraction);
  w.key("delta_mutations");
  w.value(trace.size());
  w.end_object();
  w.key("threads");
  w.value(static_cast<std::uint64_t>(config.threads));
  w.key("methods");
  w.begin_array();

  bool ok = true;
  const std::vector<core::Method> methods{core::Method::kExactDbscan, core::Method::kApproxHnsw,
                                          core::Method::kApproxMinhash, core::Method::kRoleDiet};
  for (core::Method method : methods) {
    core::AuditOptions options;
    options.method = method;
    options.threads = config.threads;
    const fs::path dir = root / std::string(core::to_string(method));

    store::StoreOptions store_options;
    store_options.fsync = store::FsyncPolicy::kNone;  // measure CPU, not the disk

    // Build the store, warm the engine, and checkpoint: the snapshot carries
    // the warm pass's cached pair verdicts with an empty dirty frontier.
    std::uintmax_t snapshot_bytes = 0;
    double checkpoint_seconds = 0.0;
    {
      store::EngineStore store =
          store::EngineStore::create(dir, dataset, options, store_options);
      (void)store.engine().reaudit();
      util::Stopwatch checkpoint_watch;
      const fs::path snapshot = store.checkpoint();
      checkpoint_seconds = checkpoint_watch.seconds();
      snapshot_bytes = fs::file_size(snapshot);

      // The 1% delta lands in the WAL after the checkpoint, then the
      // process "crashes" (store closed without another checkpoint).
      for (const core::Mutation& m : trace) {
        core::RbacDelta one;
        one.mutations.push_back(m);
        store.apply(one);
      }
    }

    // Warm restart: recover from the snapshot + WAL tail, then re-audit.
    util::Stopwatch open_watch;
    store::EngineStore recovered = store::EngineStore::open(dir, options, store_options);
    const double open_seconds = open_watch.seconds();
    util::Stopwatch reaudit_watch;
    const core::AuditReport warm = recovered.engine().reaudit();
    const double reaudit_seconds = reaudit_watch.seconds();

    // Cold restart: no snapshot — fresh engine, full journal, batch audit.
    util::Stopwatch cold_watch;
    core::AuditEngine cold(dataset, options);
    core::RbacDelta all;
    all.mutations = trace;
    cold.apply(all);
    const core::AuditReport batch = cold.reaudit();
    const double cold_seconds = cold_watch.seconds();

    if (findings_text(warm) != findings_text(batch)) {
      std::fprintf(stderr, "FINDINGS MISMATCH: method %s\n",
                   std::string(core::to_string(method)).c_str());
      ok = false;
    }
    // The store's headline claim: recovery re-verifies only the frontier.
    const bool strictly_less = similar_pairs(warm) < similar_pairs(batch);
    if (method != core::Method::kApproxHnsw && !strictly_less) {
      std::fprintf(stderr, "NO WORK SAVED: method %s recovered %zu pairs vs cold %zu\n",
                   std::string(core::to_string(method)).c_str(), similar_pairs(warm),
                   similar_pairs(batch));
      ok = false;
    }

    w.begin_object();
    w.key("method");
    w.value(core::to_string(method));
    w.key("snapshot_bytes");
    w.value(static_cast<std::uint64_t>(snapshot_bytes));
    w.key("checkpoint_seconds");
    w.value(checkpoint_seconds);
    w.key("replayed_records");
    w.value(recovered.recovery().replayed_records);
    w.key("recover");
    w.begin_object();
    w.key("open_seconds");
    w.value(open_seconds);
    w.key("reaudit_seconds");
    w.value(reaudit_seconds);
    w.key("similar_pairs_evaluated");
    w.value(similar_pairs(warm));
    w.end_object();
    w.key("cold");
    w.begin_object();
    w.key("seconds");
    w.value(cold_seconds);
    w.key("similar_pairs_evaluated");
    w.value(similar_pairs(batch));
    w.end_object();
    w.key("pairs_ratio");
    const std::size_t cold_pairs = similar_pairs(batch);
    w.value(cold_pairs == 0
                ? 0.0
                : static_cast<double>(similar_pairs(warm)) / static_cast<double>(cold_pairs));
    w.end_object();

    std::printf("%-14s snapshot %8ju B, checkpoint %7.3f s: recover %7.3f s / %9zu pairs"
                "  vs  cold %7.3f s / %9zu pairs\n",
                std::string(core::to_string(method)).c_str(),
                static_cast<std::uintmax_t>(snapshot_bytes), checkpoint_seconds,
                open_seconds + reaudit_seconds, similar_pairs(warm), cold_seconds,
                similar_pairs(batch));
    std::fflush(stdout);
  }

  w.end_array();
  w.key("ok");
  w.value(ok);
  w.end_object();

  fs::remove_all(root);

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return ok ? 0 : 1;
}
