// Steady-state re-audit bench: batch audit() vs AuditEngine::reaudit() after
// small mutation deltas on the Fig. 3 workload (BENCH_reaudit.json).
//
// The engine's value claim is that a delta re-audit does work proportional to
// the dirty frontier, not the dataset: after a <= 1% delta it must evaluate
// strictly fewer similar-phase pairs than the batch run re-deriving
// everything. This bench measures exactly that — per method and per delta
// size (0.1% / 1% / 10% of edges, half revocations half new edges), it
// records wall time and the verify-work counters for both paths, and CI
// archives the JSON so the incremental advantage is a tracked data series.
// For every exact method the findings of both paths are asserted identical
// before anything is recorded (the bench doubles as an end-to-end check).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/framework.hpp"
#include "io/json_writer.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace rolediet;
using namespace rolediet::bench;

namespace {

struct ReauditConfig {
  std::size_t roles = 2000;
  std::size_t threads = 1;
  std::string out_path = "BENCH_reaudit.json";
  std::vector<double> fractions{0.001, 0.01, 0.10};

  static ReauditConfig parse(int argc, char** argv) {
    ReauditConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.roles = 600;
        config.fractions = {0.01, 0.10};
      } else if (std::strcmp(argv[i], "--roles") == 0 && i + 1 < argc) {
        config.roles = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--roles N] [--threads N] [--out F]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// Fig. 3 shape (§IV-A), same generator seeds as bench_pipeline.
core::RbacDataset fig3_dataset(std::size_t roles) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 3000 + roles;
  const linalg::CsrMatrix ruam = gen::generate_matrix(params).matrix;
  params.seed = 7000 + roles;
  const linalg::CsrMatrix rpam = gen::generate_matrix(params).matrix;

  core::RbacDataset dataset;
  dataset.add_users(ruam.cols());
  dataset.add_permissions(rpam.cols());
  dataset.add_roles(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    for (std::uint32_t u : ruam.row(r)) dataset.assign_user(static_cast<core::Id>(r), u);
    for (std::uint32_t p : rpam.row(r)) dataset.grant_permission(static_cast<core::Id>(r), p);
  }
  return dataset;
}

/// Applies `count` effective mutations: alternating revocations of existing
/// edges and additions of new ones, split evenly across both matrices.
void mutate(core::AuditEngine& engine, const core::RbacDataset& base, std::size_t count,
            util::Xoshiro256& rng) {
  // Edge pools for revocations, drawn from the *base* dataset (the engine's
  // current state is a superset minus earlier revokes; misses just retry).
  std::vector<std::pair<core::Id, core::Id>> user_edges, perm_edges;
  for (std::size_t r = 0; r < base.num_roles(); ++r) {
    for (std::uint32_t u : base.ruam().row(r))
      user_edges.emplace_back(static_cast<core::Id>(r), u);
    for (std::uint32_t p : base.rpam().row(r))
      perm_edges.emplace_back(static_cast<core::Id>(r), p);
  }
  const auto users = static_cast<core::Id>(base.num_users());
  const auto perms = static_cast<core::Id>(base.num_permissions());
  const auto roles = static_cast<core::Id>(base.num_roles());
  std::size_t applied = 0;
  while (applied < count) {
    const std::size_t op = applied % 4;
    bool effective = false;
    switch (op) {
      case 0: {
        const auto& [r, u] = user_edges[rng.bounded(user_edges.size())];
        effective = engine.revoke_user(r, u);
        break;
      }
      case 1:
        effective = engine.assign_user(static_cast<core::Id>(rng.bounded(roles)),
                                       static_cast<core::Id>(rng.bounded(users)));
        break;
      case 2: {
        const auto& [r, p] = perm_edges[rng.bounded(perm_edges.size())];
        effective = engine.revoke_permission(r, p);
        break;
      }
      default:
        effective = engine.grant_permission(static_cast<core::Id>(rng.bounded(roles)),
                                            static_cast<core::Id>(rng.bounded(perms)));
        break;
    }
    if (effective) ++applied;
  }
}

std::size_t similar_pairs(const core::AuditReport& r) {
  return r.similar_users_work.pairs_evaluated + r.similar_permissions_work.pairs_evaluated;
}
std::size_t similar_matched(const core::AuditReport& r) {
  return r.similar_users_work.pairs_matched + r.similar_permissions_work.pairs_matched;
}

/// Findings-only rendering (timings, counters, and options stripped) for the
/// exact-method identity assertion.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    t->seconds = 0.0;
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  // The live engine's version differs from the fresh batch engine's; the
  // dataset digest must agree, so it stays in the compared text.
  report.engine_version = 0;
  report.options = core::AuditOptions{};
  return report.to_text();
}

void write_side(io::JsonWriter& w, const char* name, double seconds,
                const core::AuditReport& report) {
  w.key(name);
  w.begin_object();
  w.key("seconds");
  w.value(seconds);
  w.key("similar_pairs_evaluated");
  w.value(similar_pairs(report));
  w.key("similar_pairs_matched");
  w.value(similar_matched(report));
  w.key("same_pairs_evaluated");
  w.value(report.same_users_work.pairs_evaluated +
          report.same_permissions_work.pairs_evaluated);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const ReauditConfig config = ReauditConfig::parse(argc, argv);

  std::printf("=== reaudit bench: batch audit vs engine delta re-audit (Fig. 3 workload) ===\n");
  std::printf("roles=%zu users=1000 threads=%zu -> %s\n\n", config.roles, config.threads,
              config.out_path.c_str());

  const core::RbacDataset dataset = fig3_dataset(config.roles);
  const std::size_t total_edges = dataset.ruam().nnz() + dataset.rpam().nnz();

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("reaudit");
  w.key("workload");
  w.begin_object();
  w.key("figure");
  w.value("fig3");
  w.key("roles");
  w.value(static_cast<std::uint64_t>(config.roles));
  w.key("users");
  w.value(std::uint64_t{1000});
  w.key("permissions");
  w.value(std::uint64_t{1000});
  w.key("edges");
  w.value(total_edges);
  w.end_object();
  w.key("threads");
  w.value(static_cast<std::uint64_t>(config.threads));
  w.key("methods");
  w.begin_array();

  bool ok = true;
  const std::vector<core::Method> methods{core::Method::kExactDbscan, core::Method::kApproxHnsw,
                                          core::Method::kApproxMinhash, core::Method::kRoleDiet};
  for (core::Method method : methods) {
    core::AuditOptions options;
    options.method = method;
    options.threads = config.threads;

    w.begin_object();
    w.key("method");
    w.value(core::to_string(method));
    w.key("deltas");
    w.begin_array();

    for (double fraction : config.fractions) {
      const auto target =
          static_cast<std::size_t>(static_cast<double>(total_edges) * fraction);
      const std::size_t mutations = target == 0 ? 1 : target;

      // Fresh engine per (method, fraction): one warm full pass seeds the
      // artifacts, then the timed delta pass re-audits the mutated frontier.
      core::AuditEngine engine(dataset, options);
      util::Stopwatch full_watch;
      core::AuditReport warm = engine.reaudit();
      const double full_seconds = full_watch.seconds();

      util::Xoshiro256 rng(0x2EAD17 + static_cast<std::uint64_t>(fraction * 1e6));
      mutate(engine, dataset, mutations, rng);
      const std::size_t dirty = engine.dirty_roles();

      util::Stopwatch delta_watch;
      const core::AuditReport live = engine.reaudit();
      const double delta_seconds = delta_watch.seconds();

      util::Stopwatch batch_watch;
      const core::AuditReport batch = core::audit(engine.snapshot(), options);
      const double batch_seconds = batch_watch.seconds();

      if (method != core::Method::kApproxHnsw &&
          findings_text(live) != findings_text(batch)) {
        std::fprintf(stderr, "FINDINGS MISMATCH: method %s fraction %g\n",
                     std::string(core::to_string(method)).c_str(), fraction);
        ok = false;
      }

      w.begin_object();
      w.key("fraction");
      w.value(fraction);
      w.key("mutations");
      w.value(mutations);
      w.key("dirty_roles");
      w.value(dirty);
      w.key("full_audit_seconds");
      w.value(full_seconds);
      write_side(w, "batch", batch_seconds, batch);
      write_side(w, "engine", delta_seconds, live);
      w.key("pairs_ratio");
      const std::size_t bp = similar_pairs(batch);
      w.value(bp == 0 ? 0.0
                      : static_cast<double>(similar_pairs(live)) / static_cast<double>(bp));
      w.end_object();

      std::printf("%-14s delta %5.1f%% (%6zu mutations, %5zu dirty): "
                  "batch %8.3f s / %9zu pairs  vs  engine %8.3f s / %9zu pairs\n",
                  std::string(core::to_string(method)).c_str(), fraction * 100.0, mutations,
                  dirty, batch_seconds, similar_pairs(batch), delta_seconds,
                  similar_pairs(live));
      std::fflush(stdout);
      (void)warm;
    }
    w.end_array();
    w.end_object();
  }

  w.end_array();
  w.key("findings_identical");
  w.value(ok);
  w.end_object();

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return ok ? 0 : 1;
}
