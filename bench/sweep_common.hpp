// Shared Fig. 2-family sweep harness: duration vs USER COUNT on the paper's
// clustered-duplicate workload (§IV-A: 1,000 roles fixed, cluster proportion
// 0.2, at most 10 identical roles per cluster).
//
// Two binaries drive it: bench_fig2_users_sweep reproduces the paper's
// 1k-10k figure (and with --shards N re-times every cell through the
// range-partitioned ShardedEngine), while bench_shard pushes the same
// workload to 1M-10M users across a shard-count ladder and records the
// per-shard work counters (BENCH_shard.json). Sharing the workload builder
// and cell timer keeps the two series directly comparable.
#pragma once

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "core/sharded_engine.hpp"

namespace rolediet::bench {

/// Fig. 2 workload for one sweep point, seeded by the user count so every
/// binary sees the same matrix at the same point. The row-norm range
/// defaults to the figure's; bench_shard widens it (denser roles make the
/// similar phase's shard-local pair volume realistic at 1M+ users).
inline gen::GeneratedMatrix fig2_matrix(std::size_t users, std::size_t roles = 1000,
                                        std::size_t min_row_norm = 1,
                                        std::size_t max_row_norm = 16) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = users;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.min_row_norm = min_row_norm;
  params.max_row_norm = max_row_norm;
  params.seed = 1000 + users;
  return gen::generate_matrix(params);
}

/// The generated RUAM wrapped as a dataset for the engine-based cells. The
/// RPAM is left empty — this sweep family measures the users axis only.
inline core::RbacDataset dataset_from_ruam(const linalg::CsrMatrix& ruam) {
  core::RbacDataset dataset;
  dataset.add_users(ruam.cols());
  dataset.add_roles(ruam.rows());
  for (std::size_t r = 0; r < ruam.rows(); ++r) {
    for (std::uint32_t u : ruam.row(r)) dataset.assign_user(static_cast<core::Id>(r), u);
  }
  return dataset;
}

/// One timed sharded-audit cell: full reaudit wall time plus the work
/// counters of the last run's similar phase.
struct ShardCell {
  Cell cell;
  core::ShardWorkSnapshot work;
  std::size_t same_groups = 0;
  std::size_t same_roles_in_groups = 0;
  std::size_t similar_groups = 0;
};

/// Times `runs` full reaudits of `dataset` split into `shards` shards.
/// Engine construction (partitioning) is excluded, like workload generation.
inline ShardCell time_sharded_audit(const core::RbacDataset& dataset, std::size_t shards,
                                    const core::AuditOptions& options, std::size_t runs) {
  ShardCell out;
  core::ShardedEngine engine(dataset, shards, options);
  core::AuditReport report;
  out.cell = time_cell(runs, [&] { report = engine.reaudit(); });
  out.work = engine.last_shard_work();
  out.same_groups = report.same_user_groups.group_count();
  out.same_roles_in_groups = report.same_user_groups.roles_in_groups();
  out.similar_groups = report.similar_user_groups.group_count();
  return out;
}

}  // namespace rolediet::bench
