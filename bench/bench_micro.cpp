// Micro-benchmarks (google-benchmark) for the inner kernels every detection
// method runs on: packed Hamming distance, row digesting, CSR set
// operations, transpose, densification, union-find, and HNSW queries.
#include <benchmark/benchmark.h>

#include "cluster/hnsw.hpp"
#include "cluster/union_find.hpp"
#include "gen/matrix_generator.hpp"
#include "linalg/convert.hpp"
#include "util/prng.hpp"

namespace {

using namespace rolediet;

linalg::BitMatrix random_dense(std::size_t rows, std::size_t cols, std::size_t norm,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  linalg::BitMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < norm; ++k) m.set(r, rng.bounded(cols));
  }
  return m;
}

void BM_HammingWords(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const linalg::BitMatrix m = random_dense(2, cols, cols / 16, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.row_hamming(0, 1));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.words_per_row() * 16));
}
BENCHMARK(BM_HammingWords)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_HammingBoundedEarlyExit(benchmark::State& state) {
  // Rows differ heavily, so the bounded kernel exits after ~1 word.
  const auto cols = static_cast<std::size_t>(state.range(0));
  linalg::BitMatrix m(2, cols);
  for (std::size_t c = 0; c < cols; c += 2) m.set(0, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.row_hamming_bounded(0, 1, 1));
  }
}
BENCHMARK(BM_HammingBoundedEarlyExit)->Arg(8192)->Arg(65536);

void BM_RowHash(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const linalg::BitMatrix m = random_dense(1, cols, cols / 16, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.row_hash(0));
  }
}
BENCHMARK(BM_RowHash)->Arg(1024)->Arg(8192);

void BM_CsrIntersection(benchmark::State& state) {
  const auto norm = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(3);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::uint32_t r = 0; r < 2; ++r) {
    for (std::size_t p : rng.sample_indices(100'000, norm))
      pairs.emplace_back(r, static_cast<std::uint32_t>(p));
  }
  const auto m = linalg::CsrMatrix::from_pairs(2, 100'000, std::move(pairs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.row_intersection(0, 1));
  }
}
BENCHMARK(BM_CsrIntersection)->Arg(16)->Arg(256)->Arg(4096);

void BM_CsrTranspose(benchmark::State& state) {
  const gen::GeneratedMatrix g = gen::generate_matrix(
      {.roles = static_cast<std::size_t>(state.range(0)), .cols = 1000, .seed = 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.matrix.transpose());
  }
}
BENCHMARK(BM_CsrTranspose)->Arg(1000)->Arg(10'000);

void BM_Densify(benchmark::State& state) {
  const gen::GeneratedMatrix g = gen::generate_matrix(
      {.roles = static_cast<std::size_t>(state.range(0)), .cols = 1000, .seed = 5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::to_dense(g.matrix));
  }
}
BENCHMARK(BM_Densify)->Arg(1000)->Arg(10'000);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(6);
  for (auto _ : state) {
    cluster::UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i) uf.unite(rng.bounded(n), rng.bounded(n));
    benchmark::DoNotOptimize(uf.groups(2));
  }
}
BENCHMARK(BM_UnionFind)->Arg(10'000)->Arg(100'000);

void BM_HnswBuild(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const linalg::BitMatrix m = random_dense(rows, 1024, 12, 7);
  for (auto _ : state) {
    cluster::HnswIndex index(m, {});
    index.add_all();
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_HnswBuild)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_HnswQuery(benchmark::State& state) {
  const linalg::BitMatrix m = random_dense(5000, 1024, 12, 8);
  cluster::HnswIndex index(m, {});
  index.add_all();
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.search(q, 10));
    q = (q + 1) % m.rows();
  }
}
BENCHMARK(BM_HnswQuery);

void BM_DbscanRegionQueryEquivalentScan(benchmark::State& state) {
  // The cost of one brute-force region query: n bounded distances.
  const auto rows = static_cast<std::size_t>(state.range(0));
  const linalg::BitMatrix m = random_dense(rows, 1024, 12, 9);
  for (auto _ : state) {
    std::size_t within = 0;
    for (std::size_t j = 0; j < m.rows(); ++j) {
      within += (m.row_hamming_bounded(0, j, 0) == 0);
    }
    benchmark::DoNotOptimize(within);
  }
}
BENCHMARK(BM_DbscanRegionQueryEquivalentScan)->Arg(1000)->Arg(10'000);

}  // namespace

BENCHMARK_MAIN();
