// Type-5 (similar roles) sweep: the Fig. 3 protocol applied to the paper's
// fifth inefficiency — roles sharing all but `t` users — with t = 1, the
// setting used for the real-data numbers in §IV-B.
//
// Workload: clusters planted with one perturbed bit per member, so they are
// recoverable only by similarity search, not by exact duplicate detection.
// DBSCAN runs with eps = 1; HNSW range-searches with radius 1; the role-diet
// method uses the sparse co-occurrence identity hamming = |Ri|+|Rj|-2g.
#include "bench_common.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);
  constexpr std::size_t kThreshold = 1;

  std::printf("=== Similar-roles sweep: duration vs role count "
              "(users = 1000, threshold t = 1) ===\n");
  std::printf("runs per cell: %zu\n\n", config.runs);
  print_header("roles");

  std::vector<std::size_t> role_counts;
  for (std::size_t r = 1000; r <= 10'000; r += 1000) role_counts.push_back(r);
  if (config.quick) role_counts = {1000, 4000, 10'000};

  for (std::size_t roles : role_counts) {
    gen::MatrixGenParams params;
    params.roles = roles;
    params.cols = 1000;
    params.clustered_fraction = 0.2;
    params.max_cluster_size = 10;
    params.perturb_bits = kThreshold;
    params.seed = 5000 + roles;
    const gen::GeneratedMatrix workload = gen::generate_matrix(params);

    std::printf("%-10zu", roles);
    for (core::Method method : all_methods()) {
      const auto finder = core::make_group_finder(method, config.finder_options());
      core::RoleGroups sink;
      const Cell cell = time_cell(
          config.runs, [&] { sink = finder->find_similar(workload.matrix, kThreshold); });
      std::printf(" | %s", cell.to_string().c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: same ordering as Fig. 3; similarity search costs the\n"
              "role-diet method a sparse co-occurrence sweep instead of a hash pass,\n"
              "but it remains far below both baselines.\n");
  return 0;
}
