// Figure 2 reproduction: detection time vs NUMBER OF USERS.
//
// Paper setup (§IV-A): 1,000 roles fixed; users swept 1,000 -> 10,000;
// cluster proportion 0.2; at most 10 identical roles per cluster; each
// configuration run 5 times (mean +- stdev); task = find roles sharing the
// SAME users.
//
// Expected shape (paper): all three methods are nearly flat in the user
// count; HNSW is slowest (index construction dominates at 1,000 rows);
// exact DBSCAN is much faster; the custom role-diet algorithm is fastest.
#include "bench_common.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);

  std::printf("=== Fig. 2: duration vs user count (roles = 1000, same-users detection) ===\n");
  std::printf("runs per cell: %zu\n\n", config.runs);
  print_header("users");

  std::vector<std::size_t> user_counts;
  for (std::size_t u = 1000; u <= 10'000; u += 1000) user_counts.push_back(u);
  if (config.quick) user_counts = {1000, 5000, 10'000};

  for (std::size_t users : user_counts) {
    gen::MatrixGenParams params;
    params.roles = 1000;
    params.cols = users;
    params.clustered_fraction = 0.2;
    params.max_cluster_size = 10;
    params.seed = 1000 + users;
    const gen::GeneratedMatrix workload = gen::generate_matrix(params);

    std::printf("%-10zu", users);
    for (core::Method method : all_methods()) {
      const auto finder = core::make_group_finder(method, config.finder_options());
      core::RoleGroups sink;
      const Cell cell =
          time_cell(config.runs, [&] { sink = finder->find_same(workload.matrix); });
      std::printf(" | %s", cell.to_string().c_str());
      if (sink.roles_in_groups() < workload.planted.roles_in_groups() &&
          method != core::Method::kApproxHnsw) {
        std::printf("(!)");  // exact methods must recover every planted role
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: ~flat in users; hnsw slowest (index build), role-diet fastest.\n");
  return 0;
}
