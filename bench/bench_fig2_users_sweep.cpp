// Figure 2 reproduction: detection time vs NUMBER OF USERS.
//
// Paper setup (§IV-A): 1,000 roles fixed; users swept 1,000 -> 10,000;
// cluster proportion 0.2; at most 10 identical roles per cluster; each
// configuration run 5 times (mean +- stdev); task = find roles sharing the
// SAME users.
//
// Expected shape (paper): all three methods are nearly flat in the user
// count; HNSW is slowest (index construction dominates at 1,000 rows);
// exact DBSCAN is much faster; the custom role-diet algorithm is fastest.
//
// --shards N re-times every cell through the range-partitioned
// core::ShardedEngine on the same workload (shared with bench_shard via
// sweep_common.hpp); bench_shard extends this sweep to 1M-10M users.
#include "sweep_common.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);

  std::printf("=== Fig. 2: duration vs user count (roles = 1000, same-users detection) ===\n");
  std::printf("runs per cell: %zu", config.runs);
  if (config.shards > 0) std::printf(", sharded engine: %zu shards", config.shards);
  std::printf("\n\n");
  print_header("users");

  std::vector<std::size_t> user_counts;
  for (std::size_t u = 1000; u <= 10'000; u += 1000) user_counts.push_back(u);
  if (config.quick) user_counts = {1000, 5000, 10'000};

  for (std::size_t users : user_counts) {
    const gen::GeneratedMatrix workload = fig2_matrix(users);
    const core::RbacDataset dataset =
        config.shards > 0 ? dataset_from_ruam(workload.matrix) : core::RbacDataset{};

    std::printf("%-10zu", users);
    for (core::Method method : all_methods()) {
      std::size_t recovered = 0;
      Cell cell;
      if (config.shards > 0) {
        core::AuditOptions options;
        options.method = method;
        options.threads = config.threads;
        options.detect_similar = false;  // same-users detection, as in the figure
        const ShardCell sharded =
            time_sharded_audit(dataset, config.shards, options, config.runs);
        cell = sharded.cell;
        recovered = sharded.same_roles_in_groups;
      } else {
        const auto finder = core::make_group_finder(method, config.finder_options());
        core::RoleGroups sink;
        cell = time_cell(config.runs, [&] { sink = finder->find_same(workload.matrix); });
        recovered = sink.roles_in_groups();
      }
      std::printf(" | %s", cell.to_string().c_str());
      if (recovered < workload.planted.roles_in_groups() &&
          method != core::Method::kApproxHnsw) {
        std::printf("(!)");  // exact methods must recover every planted role
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: ~flat in users; hnsw slowest (index build), role-diet fastest.\n");
  return 0;
}
