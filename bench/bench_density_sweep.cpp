// Density sweep: dense vs sparse row-kernel backend (linalg/row_store.hpp).
//
// The backend selector's whole premise is that the winning representation is
// a function of matrix density: below ~1% the CSR merge kernels touch only
// the stored indices while the packed kernels stream whole rows of mostly
// zeros; at high density the word-parallel popcounts win back. This bench
// sweeps density across a fixed shape, times DBSCAN's brute-force
// find_similar (the pairwise-kernel-dominated hot path) on both forced
// backends, and reports the bytes each backend streams — computed
// analytically as pairs_evaluated x 2 x mean row payload (row_bytes), not
// with hot-path counters. Both backends must produce identical groups; the
// bench aborts if they ever disagree.
#include <cstdio>

#include "bench_common.hpp"
#include "core/methods/exact.hpp"
#include "core/methods/method_common.hpp"
#include "linalg/row_store.hpp"

using namespace rolediet;
using namespace rolediet::bench;

namespace {

struct BackendRun {
  Cell cell;
  double mebibytes = 0.0;
  core::RoleGroups groups;
};

BackendRun run_backend(const BenchConfig& config, const linalg::CsrMatrix& m,
                       linalg::RowBackend backend) {
  const core::methods::DbscanGroupFinder finder(
      {.threads = config.threads, .backend = backend});
  BackendRun out;
  out.cell = time_cell(config.runs, [&] { out.groups = finder.find_similar(m, 1); });
  // Mean payload one kernel evaluation streams per row: a full packed row
  // (dense) or the stored indices (sparse), averaged over the non-empty rows
  // DBSCAN actually clusters.
  const auto selected = core::methods::nonempty_rows(m);
  double row_payload = 0.0;
  if (backend == linalg::RowBackend::kDense) {
    row_payload =
        static_cast<double>(util::words_for_bits(m.cols())) * sizeof(std::uint64_t);
  } else if (!selected.empty()) {
    row_payload = static_cast<double>(m.nnz()) * sizeof(std::uint32_t) /
                  static_cast<double>(selected.size());
  }
  const core::FinderWorkStats work = finder.last_work();
  out.mebibytes =
      static_cast<double>(work.pairs_evaluated) * 2.0 * row_payload / (1024.0 * 1024.0);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);
  const std::size_t roles = config.quick ? 800 : 2500;
  const std::size_t cols = config.quick ? 600 : 2000;
  const std::vector<double> densities =
      config.quick ? std::vector<double>{0.005, 0.05}
                   : std::vector<double>{0.002, 0.005, 0.01, 0.02, 0.05, 0.10};

  std::printf("=== Backend density sweep (%zu roles x %zu cols, DBSCAN find_similar t=1, "
              "%zu runs per cell) ===\n",
              roles, cols, config.runs);
  std::printf("auto threshold: sparse below %.1f%% density\n\n",
              100.0 * linalg::kSparseDensityThreshold);
  std::printf("%-9s | %-8s | %-32s | %-32s | %s\n", "density", "auto", "dense backend",
              "sparse backend", "sparse/dense");
  std::printf("%-9s | %-8s | %-20s %10s | %-20s %10s | %s\n", "", "", "time", "MiB", "time",
              "MiB", "speedup");
  for (int i = 0; i < 120; ++i) std::fputc('-', stdout);
  std::printf("\n");

  for (double target : densities) {
    gen::MatrixGenParams params;
    params.roles = roles;
    params.cols = cols;
    params.clustered_fraction = 0.2;
    params.max_cluster_size = 10;
    const auto norm = static_cast<std::size_t>(target * static_cast<double>(cols));
    params.min_row_norm = std::max<std::size_t>(1, norm);
    params.max_row_norm = std::max<std::size_t>(1, norm);
    params.perturb_bits = 1;
    params.seed = 4242 + static_cast<std::uint64_t>(target * 1e6);
    const linalg::CsrMatrix m = gen::generate_matrix(params).matrix;
    const double density = static_cast<double>(m.nnz()) /
                           (static_cast<double>(m.rows()) * static_cast<double>(m.cols()));

    const BackendRun dense = run_backend(config, m, linalg::RowBackend::kDense);
    const BackendRun sparse = run_backend(config, m, linalg::RowBackend::kSparse);
    if (dense.groups != sparse.groups) {
      std::fprintf(stderr, "BACKEND MISMATCH at density %.4f — groups differ\n", density);
      return 1;
    }
    const linalg::RowBackend chosen =
        linalg::choose_backend(linalg::RowBackend::kAuto, m.rows(), m.cols(), m.nnz());
    std::printf("%8.3f%% | %-8s | %-20s %9.1f | %-20s %9.1f | x%.2f\n", 100.0 * density,
                linalg::to_string(chosen).c_str(), dense.cell.to_string().c_str(),
                dense.mebibytes, sparse.cell.to_string().c_str(), sparse.mebibytes,
                dense.cell.stats.mean_s / std::max(sparse.cell.stats.mean_s, 1e-9));
  }
  std::printf("\n-> the crossover sits near the auto threshold: sparse streams ~8*d*cols\n"
              "   bytes per pair against cols/4 for the packed rows, so it wins exactly\n"
              "   where real RBAC matrices live (<1%% density) and loses once rows fill in.\n");
  return 0;
}
