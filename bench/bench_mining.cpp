// Role-mining bench: mined role reduction vs the duplicate-merge baseline
// (BENCH_mining.json).
//
// The paper's duplicate-role findings translate into roughly a 10% role-count
// reduction when the detected groups are merged (Fig. 3 workloads; the
// paper_reference_ratio field). This bench runs the full mining pipeline —
// maximal-biclique candidates, constrained greedy cover, portfolio
// scalarization, equivalence-verified migration — against that baseline on:
//
//   * org workloads (gen/org_simulator, the paper's organization shape);
//   * Fig. 3-scale synthetic datasets (1,000 users, role count swept as in
//     the paper's Fig. 3, RUAM and RPAM drawn from the same clustered
//     generator);
//   * a multi-year churn lifecycle final state (gen/churn replayed through
//     an AuditEngine);
//   * a planted decomposition, where recovery must land within the
//     documented slack (gen/planted: K true roles + one role per noise user).
//
// Exit gates (non-zero exit): every mined plan must pass
// core::verify_equivalence, mining must never keep more roles than the
// duplicate-merge baseline, and planted recovery must stay within
// recoverable_bound().
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/consolidation.hpp"
#include "core/engine.hpp"
#include "gen/churn.hpp"
#include "gen/matrix_generator.hpp"
#include "gen/org_simulator.hpp"
#include "gen/planted.hpp"
#include "io/json_writer.hpp"
#include "io/journal.hpp"
#include "mining/miner.hpp"
#include "util/timer.hpp"

using namespace rolediet;

namespace {

constexpr double kPaperReferenceRatio = 0.10;

struct MiningBenchConfig {
  bool quick = false;
  std::size_t threads = 1;
  std::uint64_t seed = 1;
  std::string out_path = "BENCH_mining.json";

  static MiningBenchConfig parse(int argc, char** argv) {
    MiningBenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.quick = true;
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        config.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--threads N] [--seed N] [--out F]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// Fig. 3-scale dataset: RUAM and RPAM both drawn from the paper's clustered
/// role-matrix generator (1,000 users / 1,000 permissions, `roles` roles).
core::RbacDataset fig3_dataset(std::size_t roles, std::uint64_t seed) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  const auto to_rows = [&](std::uint64_t s) {
    params.seed = s;
    return gen::generate_matrix(params).matrix;
  };
  const linalg::CsrMatrix ruam = to_rows(seed);
  const linalg::CsrMatrix rpam = to_rows(seed + 7919);

  core::RbacDataset dataset;
  dataset.add_users(1000);
  dataset.add_permissions(1000);
  for (std::size_t r = 0; r < roles; ++r) {
    const core::Id role = dataset.add_role("R" + std::to_string(r));
    for (const std::uint32_t user : ruam.row(r)) dataset.assign_user(role, user);
    for (const std::uint32_t perm : rpam.row(r)) dataset.grant_permission(role, perm);
  }
  return dataset;
}

/// Final dataset of a simulated multi-year org lifecycle.
core::RbacDataset churn_dataset(std::size_t employees, std::size_t years, std::uint64_t seed) {
  gen::ChurnConfig config;
  config.seed = seed;
  config.initial_employees = employees;
  config.years = years;
  std::stringstream journal;
  (void)gen::write_churn_journal(journal, config);
  core::AuditEngine engine{core::RbacDataset{}};
  engine.apply(io::read_journal(journal));
  return engine.snapshot();
}

struct WorkloadResult {
  std::string name;
  std::size_t users = 0;
  std::size_t roles = 0;
  std::size_t permissions = 0;
  core::ConsolidationStats baseline;
  double baseline_seconds = 0.0;
  mining::MiningPlan plan;
  bool verified = false;
  bool mined_at_least_baseline = false;
};

WorkloadResult run_workload(const std::string& name, const core::RbacDataset& dataset,
                            const mining::MiningOptions& options) {
  WorkloadResult result;
  result.name = name;
  result.users = dataset.num_users();
  result.roles = dataset.num_roles();
  result.permissions = dataset.num_permissions();

  util::Stopwatch watch;
  (void)core::consolidate_duplicates(dataset, &result.baseline);
  result.baseline_seconds = watch.seconds();

  const mining::MiningOutcome outcome = mining::mine(dataset, options);
  result.plan = outcome.plan;
  result.verified = outcome.verified;
  result.mined_at_least_baseline =
      outcome.plan.stats.roles_after <= result.baseline.roles_after;

  std::printf("%-14s %6zu roles -> baseline %6zu (%5.1f%%), mined %6zu (%5.1f%%) "
              "[paper ~%2.0f%%] %s\n",
              name.c_str(), result.roles, result.baseline.roles_after,
              result.baseline.reduction_ratio() * 100.0, outcome.plan.stats.roles_after,
              outcome.plan.stats.role_reduction() * 100.0, kPaperReferenceRatio * 100.0,
              result.verified ? "verified" : "VERIFY FAILED");
  std::printf("               edges %zu -> %zu, %zu candidates (pool %zu), "
              "enumerate %.3f s + select %.3f s + verify %.3f s\n",
              outcome.plan.stats.edges_before(), outcome.plan.stats.edges_after(),
              outcome.plan.stats.candidates, outcome.plan.stats.candidate_pool,
              outcome.plan.stats.enumerate_seconds, outcome.plan.stats.select_seconds,
              outcome.plan.stats.verify_seconds);
  std::fflush(stdout);
  return result;
}

void write_workload(io::JsonWriter& w, const WorkloadResult& r) {
  const mining::MiningStats& s = r.plan.stats;
  w.begin_object();
  w.key("name");
  w.value(r.name);
  w.key("users");
  w.value(r.users);
  w.key("roles");
  w.value(r.roles);
  w.key("permissions");
  w.value(r.permissions);
  w.key("baseline");
  w.begin_object();
  w.key("roles_after");
  w.value(r.baseline.roles_after);
  w.key("role_reduction");
  w.value(r.baseline.reduction_ratio());
  w.key("seconds");
  w.value(r.baseline_seconds);
  w.end_object();
  w.key("mined");
  w.begin_object();
  w.key("roles_after");
  w.value(s.roles_after);
  w.key("role_reduction");
  w.value(s.role_reduction());
  w.key("assignments_before");
  w.value(s.assignments_before);
  w.key("assignments_after");
  w.value(s.assignments_after);
  w.key("grants_before");
  w.value(s.grants_before);
  w.key("grants_after");
  w.value(s.grants_after);
  w.key("user_classes");
  w.value(s.user_classes);
  w.key("candidates");
  w.value(s.candidates);
  w.key("candidate_pool");
  w.value(s.candidate_pool);
  w.key("enumeration_truncated");
  w.value(s.enumeration_truncated);
  w.key("portfolio_plans");
  w.value(s.portfolio_plans);
  w.key("used_duplicate_merge_fallback");
  w.value(s.used_duplicate_merge_fallback);
  w.key("enumerate_seconds");
  w.value(s.enumerate_seconds);
  w.key("select_seconds");
  w.value(s.select_seconds);
  w.key("verify_seconds");
  w.value(s.verify_seconds);
  w.key("verified");
  w.value(r.verified);
  w.end_object();
  w.key("mined_at_least_baseline");
  w.value(r.mined_at_least_baseline);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const MiningBenchConfig config = MiningBenchConfig::parse(argc, argv);

  mining::MiningOptions options;
  options.threads = config.threads;

  std::printf("=== mining bench: mined reduction vs duplicate-merge baseline "
              "(paper reference ~%.0f%%) ===\n",
              kPaperReferenceRatio * 100.0);
  std::printf("threads=%zu%s -> %s\n\n", config.threads, config.quick ? " (quick)" : "",
              config.out_path.c_str());

  std::vector<WorkloadResult> results;

  // Org workload: the paper's organization shape.
  results.push_back(run_workload(
      "org-small", gen::generate_org(gen::OrgProfile::small(config.seed + 6)).dataset,
      options));

  // Constrained variant on the same org: caps bound the decomposition shape;
  // the plan must still verify (reduction may shrink — that is the point).
  {
    mining::MiningOptions capped = options;
    capped.max_perms_per_role = 16;
    capped.max_roles_per_user = 12;
    results.push_back(run_workload(
        "org-small-caps", gen::generate_org(gen::OrgProfile::small(config.seed + 6)).dataset,
        capped));
    // The caps gate correctness, not reduction vs the baseline (the baseline
    // merges without caps), so that flag is not an exit gate here.
    results.back().mined_at_least_baseline = true;
  }

  // Fig. 3-scale ladder: 1,000 users, role count swept as in the paper.
  std::vector<std::size_t> fig3_roles = {1000, 4000, 10'000};
  if (config.quick) fig3_roles = {1000, 4000};
  for (const std::size_t roles : fig3_roles) {
    results.push_back(run_workload("fig3-" + std::to_string(roles),
                                   fig3_dataset(roles, config.seed + 3000 + roles), options));
  }

  // Churn lifecycle final state.
  const std::size_t employees = config.quick ? 2'000 : 10'000;
  const std::size_t years = config.quick ? 2 : 3;
  results.push_back(run_workload("churn-" + std::to_string(employees),
                                 churn_dataset(employees, years, config.seed + 17), options));

  // Planted decomposition: recovery within the documented slack is a gate.
  gen::PlantedParams planted_params;
  planted_params.roles = 40;
  planted_params.users = config.quick ? 1'000 : 4'000;
  planted_params.perms_per_role = 8;
  planted_params.roles_per_user = 4;
  planted_params.noise_users = 40;
  planted_params.duplicates_per_role = 6;
  planted_params.seed = config.seed + 23;
  const gen::PlantedDataset planted = gen::generate_planted(planted_params);
  results.push_back(run_workload("planted", planted.dataset, options));
  const WorkloadResult& planted_result = results.back();
  const bool planted_within_bound =
      planted_result.plan.stats.roles_after <= planted.recoverable_bound();
  std::printf("               planted recovery: %zu roles vs bound %zu (%zu true + %zu "
              "noise) %s\n",
              planted_result.plan.stats.roles_after, planted.recoverable_bound(),
              planted.planted_roles, planted.noise_roles,
              planted_within_bound ? "within bound" : "BOUND EXCEEDED");

  bool ok = planted_within_bound;
  for (const WorkloadResult& r : results) {
    if (!r.verified || !r.mined_at_least_baseline) ok = false;
  }

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("mining");
  w.key("quick");
  w.value(config.quick);
  w.key("threads");
  w.value(static_cast<std::uint64_t>(config.threads));
  w.key("seed");
  w.value(config.seed);
  w.key("paper_reference_ratio");
  w.value(kPaperReferenceRatio);
  w.key("workloads");
  w.begin_array();
  for (const WorkloadResult& r : results) write_workload(w, r);
  w.end_array();
  w.key("planted");
  w.begin_object();
  w.key("true_roles");
  w.value(planted.planted_roles);
  w.key("noise_roles");
  w.value(planted.noise_roles);
  w.key("recoverable_bound");
  w.value(planted.recoverable_bound());
  w.key("recovered_roles");
  w.value(planted_result.plan.stats.roles_after);
  w.key("within_bound");
  w.value(planted_within_bound);
  w.end_object();
  w.key("ok");
  w.value(ok);
  w.end_object();

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  if (!ok) std::fprintf(stderr, "GATE FAILED: see workload lines above\n");
  return ok ? 0 : 1;
}
