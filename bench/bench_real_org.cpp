// §IV-B reproduction: inefficiency detection on the (simulated) real
// organization — ~90,000 users, ~350,000 permissions, ~60,000 roles.
//
// The paper reports, for a >60,000-employee org:
//   - ~500 standalone users; ~180,000 standalone permissions (half of all);
//   - ~12,000 roles without users; ~1,000 roles without permissions;
//   - ~4,000 single-user roles; ~21,000 single-permission roles;
//   - 8,000 roles sharing the same users; 2,000 sharing the same
//     permissions -> ~10% of all roles removable by consolidation;
//   - 6,000 roles sharing all but one user; 4,000 sharing all but one
//     permission;
//   - the role-diet method processed the data in ~2 minutes, while both
//     baselines were HALTED after 24 hours.
//
// This bench regenerates each of those rows on the synthetic analog. The
// baselines are not run on the full matrix (that is the point of the
// experiment); instead their cost is measured on role-subsampled matrices
// and extrapolated by log-log slope to the full role count, then compared
// against a time budget.
#include <cmath>
#include <cstring>

#include "bench_common.hpp"
#include "core/consolidation.hpp"
#include "core/framework.hpp"
#include "core/methods/approx.hpp"
#include "core/methods/exact.hpp"
#include "gen/org_simulator.hpp"

using namespace rolediet;
using namespace rolediet::bench;

namespace {

/// Evenly subsamples `keep` rows of a matrix (preserving column width).
linalg::CsrMatrix subsample_rows(const linalg::CsrMatrix& m, std::size_t keep) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  const double stride = static_cast<double>(m.rows()) / static_cast<double>(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    const auto src = static_cast<std::size_t>(static_cast<double>(i) * stride);
    for (std::uint32_t c : m.row(src)) pairs.emplace_back(static_cast<std::uint32_t>(i), c);
  }
  return linalg::CsrMatrix::from_pairs(keep, m.cols(), std::move(pairs));
}

/// Roles that appear in `all` but not in `subset` — e.g. "similar but not
/// identical", the way §IV-B reports the type-5 rows.
std::size_t roles_only_in(const core::RoleGroups& all, const core::RoleGroups& subset) {
  std::vector<bool> in_subset;
  for (const auto& group : subset.groups) {
    for (std::size_t role : group) {
      if (role >= in_subset.size()) in_subset.resize(role + 1, false);
      in_subset[role] = true;
    }
  }
  std::size_t count = 0;
  for (const auto& group : all.groups) {
    for (std::size_t role : group) {
      if (role >= in_subset.size() || !in_subset[role]) ++count;
    }
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double budget_s = 300.0;
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc)
      budget_s = std::strtod(argv[++i], nullptr);
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    else {
      std::fprintf(stderr, "usage: %s [--quick] [--budget SECONDS] [--threads N]\n", argv[0]);
      return 2;
    }
  }

  const gen::OrgProfile profile =
      quick ? gen::OrgProfile::small() : gen::OrgProfile::paper_scale();
  std::printf("=== Real-organization experiment (synthetic analog, seed %llu) ===\n",
              static_cast<unsigned long long>(profile.seed));
  util::Stopwatch gen_watch;
  const gen::OrgDataset org = gen::generate_org(profile);
  std::printf("generated in %s: %zu users, %zu roles, %zu permissions "
              "(%zu assignments, %zu grants)\n\n",
              util::format_duration(gen_watch.seconds()).c_str(), org.dataset.num_users(),
              org.dataset.num_roles(), org.dataset.num_permissions(),
              org.dataset.ruam().nnz(), org.dataset.rpam().nnz());

  // ---- the paper's findings table, via the role-diet method ---------------
  util::Stopwatch audit_watch;
  const core::AuditReport report =
      core::audit(org.dataset, {.method = core::Method::kRoleDiet, .threads = threads});
  const double audit_s = audit_watch.seconds();

  const std::size_t similar_users_only =
      roles_only_in(report.similar_user_groups, report.same_user_groups);
  const std::size_t similar_perms_only =
      roles_only_in(report.similar_permission_groups, report.same_permission_groups);

  std::printf("%-44s %12s %14s\n", "finding (paper order)", "paper", "measured");
  auto row = [&](const char* name, const char* paper, std::size_t measured) {
    std::printf("%-44s %12s %14zu\n", name, paper, measured);
  };
  const bool paper_scale = !quick;
  row("standalone users", paper_scale ? "~500" : "(scaled)",
      report.structural.standalone_users.size());
  row("standalone permissions", paper_scale ? "~180,000" : "(scaled)",
      report.structural.standalone_permissions.size());
  row("roles without users", paper_scale ? "~12,000" : "(scaled)",
      report.structural.roles_without_users.size());
  row("roles without permissions", paper_scale ? "~1,000" : "(scaled)",
      report.structural.roles_without_permissions.size());
  row("single-user roles", paper_scale ? "~4,000" : "(scaled)",
      report.structural.single_user_roles.size());
  row("single-permission roles", paper_scale ? "~21,000" : "(scaled)",
      report.structural.single_permission_roles.size());
  row("roles sharing the same users", paper_scale ? "~8,000" : "(scaled)",
      report.same_user_groups.roles_in_groups());
  row("roles sharing the same permissions", paper_scale ? "~2,000" : "(scaled)",
      report.same_permission_groups.roles_in_groups());
  row("roles sharing all but one user", paper_scale ? "~6,000" : "(scaled)",
      similar_users_only);
  row("roles sharing all but one permission", paper_scale ? "~4,000" : "(scaled)",
      similar_perms_only);

  // ---- consolidation: the ~10% headline -----------------------------------
  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(org.dataset, &stats);
  const bool safe = core::verify_equivalence(org.dataset, slim);
  std::printf("\nconsolidating type-4 groups: %zu -> %zu roles (-%.1f%%, paper: ~10%%), "
              "equivalence %s\n",
              stats.roles_before, stats.roles_after, stats.reduction_ratio() * 100.0,
              safe ? "verified" : "FAILED");

  std::printf("\nrole-diet full audit time: %s (paper: ~2 minutes on an M1 laptop "
              "in Python)\n",
              util::format_duration(audit_s).c_str());

  // ---- baseline feasibility (the paper's 24-hour halt) ---------------------
  std::printf("\nbaseline feasibility on the full RUAM (%zu roles), budget %.0f s:\n",
              org.dataset.num_roles(), budget_s);
  for (core::Method method : {core::Method::kExactDbscan, core::Method::kApproxHnsw}) {
    // HNSW probe sizes are smaller: its per-row constant on 90k-column dense
    // vectors is large enough that 4,000-role probes alone take minutes.
    const std::vector<std::size_t> probes =
        quick ? std::vector<std::size_t>{200, 400, 800}
        : method == core::Method::kApproxHnsw ? std::vector<std::size_t>{500, 1000, 2000}
                                              : std::vector<std::size_t>{1000, 2000, 4000};
    const auto finder = core::make_group_finder(method, {.threads = threads});
    std::vector<double> log_n;
    std::vector<double> log_t;
    std::printf("  %-14s probes:", std::string(core::to_string(method)).c_str());
    for (std::size_t n : probes) {
      const linalg::CsrMatrix sub = subsample_rows(org.dataset.ruam(), n);
      util::Stopwatch watch;
      (void)finder->find_same(sub);
      const double seconds = watch.seconds();
      std::printf(" %zu roles=%s", n, util::format_duration(seconds).c_str());
      log_n.push_back(std::log(static_cast<double>(n)));
      log_t.push_back(std::log(std::max(seconds, 1e-6)));
    }
    // Least-squares slope in log-log space -> t ~ c * n^k.
    const std::size_t m = log_n.size();
    double sx = 0;
    double sy = 0;
    double sxx = 0;
    double sxy = 0;
    for (std::size_t i = 0; i < m; ++i) {
      sx += log_n[i];
      sy += log_t[i];
      sxx += log_n[i] * log_n[i];
      sxy += log_n[i] * log_t[i];
    }
    const double k = (static_cast<double>(m) * sxy - sx * sy) /
                     (static_cast<double>(m) * sxx - sx * sx);
    const double log_c = (sy - k * sx) / static_cast<double>(m);
    const double est_full =
        std::exp(log_c + k * std::log(static_cast<double>(org.dataset.num_roles())));
    std::printf("\n  %-14s fitted t ~ n^%.2f; estimated full-matrix time: %s -> %s\n",
                "", k, util::format_duration(est_full).c_str(),
                est_full > budget_s ? "HALTED (exceeds budget, as in the paper)"
                                    : "within budget");
  }
  std::printf("\n(the paper halted both baselines after 24 h on the real data; the\n"
              " role-diet method finished in minutes — same qualitative outcome here.)\n");
  return 0;
}
