// Kernel dispatch bench: batched SIMD verify kernels vs the scalar
// one-pair-at-a-time baseline, per dispatch target this host can run,
// written as machine-readable JSON (BENCH_kernels.json).
//
// Every target computes identical integers (the linalg/kernels contract), so
// the only thing that can differ between rows of this bench is throughput.
// The JSON records the host's capability string — a scalar-only CI runner
// explains itself instead of silently benching scalar against scalar — and,
// per (target, op, width), the speedup of the batched dispatched kernel over
// the scalar single-pair loop the verify stage used to run.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/json_writer.hpp"
#include "linalg/kernels/kernels.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

using namespace rolediet;
using namespace rolediet::bench;
namespace kernels = linalg::kernels;

namespace {

struct KernelBenchConfig {
  std::size_t runs = 5;
  std::size_t rows = 4096;  ///< candidate rows scored per pass
  std::size_t reps = 32;    ///< passes per timed run
  std::string out_path = "BENCH_kernels.json";
  std::vector<std::size_t> widths = {8, 32, 129};  ///< words per row (129 = ragged tail)

  static KernelBenchConfig parse(int argc, char** argv) {
    KernelBenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.runs = 2;
        config.rows = 1024;
        config.reps = 8;
        config.widths = {8, 33};
      } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
        config.runs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
        config.rows = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--runs N] [--rows N] [--out F]\n", argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// The verify stage's batch granularity (core/methods/method_common.hpp).
constexpr std::size_t kBlock = 256;

/// Random packed matrix: rows * words uint64 words, dense layout.
std::vector<std::uint64_t> random_words(std::size_t rows, std::size_t words,
                                        std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> data(rows * words);
  for (std::uint64_t& word : data) word = rng();
  return data;
}

enum class Op { kHamming, kHammingBounded, kIntersection };

const char* to_string(Op op) {
  switch (op) {
    case Op::kHamming: return "hamming";
    case Op::kHammingBounded: return "hamming_bounded";
    case Op::kIntersection: return "intersection";
  }
  return "?";
}

/// One pass, single-pair loop: score the query against every row through the
/// one-pair function pointers — the shape the verify stage had before
/// batching. Returns a checksum so the loop cannot be optimized away.
std::size_t pass_single(const kernels::KernelOps& ops, Op op, const std::uint64_t* q,
                        const std::uint64_t* rows, std::size_t n_rows, std::size_t words,
                        std::size_t limit) {
  std::size_t sum = 0;
  for (std::size_t r = 0; r < n_rows; ++r) {
    const std::uint64_t* row = rows + r * words;
    switch (op) {
      case Op::kHamming: sum += ops.hamming(q, row, words); break;
      case Op::kHammingBounded: sum += ops.hamming_bounded(q, row, words, limit); break;
      case Op::kIntersection: sum += ops.intersection(q, row, words); break;
    }
  }
  return sum;
}

/// One pass, batched: score the query against every row in kBlock-row tiles
/// through the block entry points — the shape the verify stage runs now.
std::size_t pass_block(const kernels::KernelOps& ops, Op op, const std::uint64_t* q,
                       const std::uint64_t* rows, std::size_t n_rows, std::size_t words,
                       std::size_t limit, std::size_t* scratch) {
  std::size_t sum = 0;
  for (std::size_t first = 0; first < n_rows; first += kBlock) {
    const std::size_t count = std::min(kBlock, n_rows - first);
    const std::uint64_t* tile = rows + first * words;
    switch (op) {
      case Op::kHamming: ops.hamming_block(q, tile, words, count, words, scratch); break;
      case Op::kHammingBounded:
        ops.hamming_bounded_block(q, tile, words, count, words, limit, scratch);
        break;
      case Op::kIntersection:
        ops.intersection_block(q, tile, words, count, words, scratch);
        break;
    }
    for (std::size_t k = 0; k < count; ++k) sum += scratch[k];
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const KernelBenchConfig config = KernelBenchConfig::parse(argc, argv);

  std::vector<kernels::KernelIsa> targets{kernels::KernelIsa::kScalar};
  for (kernels::KernelIsa isa : {kernels::KernelIsa::kAvx2, kernels::KernelIsa::kAvx512,
                                 kernels::KernelIsa::kNeon}) {
    if (kernels::isa_supported(isa)) targets.push_back(isa);
  }

  const std::string capability = kernels::capability_string();
  std::printf("=== kernel bench: batched dispatch vs scalar single-pair ===\n");
  std::printf("capability: %s  (active: %s)\n", capability.c_str(),
              std::string(kernels::to_string(kernels::active_isa())).c_str());
  std::printf("rows=%zu reps=%zu runs=%zu -> %s\n\n", config.rows, config.reps, config.runs,
              config.out_path.c_str());

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("kernels");
  w.key("capability");
  w.value(capability);
  w.key("rows");
  w.value(static_cast<std::uint64_t>(config.rows));
  w.key("reps");
  w.value(static_cast<std::uint64_t>(config.reps));
  w.key("runs");
  w.value(static_cast<std::uint64_t>(config.runs));
  w.key("block");
  w.value(static_cast<std::uint64_t>(kBlock));
  w.key("results");
  w.begin_array();

  volatile std::size_t sink = 0;  // keeps checksums alive
  bool any_block_speedup = false;
  const kernels::KernelOps& scalar = kernels::scalar_ops();

  for (std::size_t words : config.widths) {
    const std::vector<std::uint64_t> matrix =
        random_words(config.rows, words, 0xBE7C * words + 11);
    const std::vector<std::uint64_t> query = random_words(1, words, 0x9D * words + 5);
    // A mid-range limit: roughly half the expected distance, so the bounded
    // kernels exercise both the early exit and full scans.
    const std::size_t limit = words * 64 / 4;
    std::vector<std::size_t> scratch(kBlock);

    std::printf("-- %zu words/row (%zu bits) --\n", words, words * 64);
    std::printf("%-8s %-16s %14s %14s %9s\n", "target", "op", "single", "block",
                "x scalar");

    // The regression baseline: scalar ops through the single-pair loop.
    std::vector<double> scalar_single_s(3, 0.0);
    for (Op op : {Op::kHamming, Op::kHammingBounded, Op::kIntersection}) {
      const util::RunStats stats = util::time_runs(config.runs, [&](std::size_t) {
        for (std::size_t rep = 0; rep < config.reps; ++rep)
          sink = sink + pass_single(scalar, op, query.data(), matrix.data(), config.rows,
                                    words, limit);
      });
      scalar_single_s[static_cast<std::size_t>(op)] = stats.mean_s;
    }

    for (kernels::KernelIsa isa : targets) {
      const kernels::KernelOps& ops = kernels::ops_for(isa);
      for (Op op : {Op::kHamming, Op::kHammingBounded, Op::kIntersection}) {
        const util::RunStats single = util::time_runs(config.runs, [&](std::size_t) {
          for (std::size_t rep = 0; rep < config.reps; ++rep)
            sink = sink + pass_single(ops, op, query.data(), matrix.data(), config.rows,
                                      words, limit);
        });
        const util::RunStats block = util::time_runs(config.runs, [&](std::size_t) {
          for (std::size_t rep = 0; rep < config.reps; ++rep)
            sink = sink + pass_block(ops, op, query.data(), matrix.data(), config.rows,
                                     words, limit, scratch.data());
        });
        const double pairs =
            static_cast<double>(config.rows) * static_cast<double>(config.reps);
        const double baseline = scalar_single_s[static_cast<std::size_t>(op)];
        const double speedup = block.mean_s > 0.0 ? baseline / block.mean_s : 0.0;
        if (isa != kernels::KernelIsa::kScalar && speedup > 1.0) any_block_speedup = true;

        w.begin_object();
        w.key("target");
        w.value(kernels::to_string(isa));
        w.key("op");
        w.value(to_string(op));
        w.key("words");
        w.value(static_cast<std::uint64_t>(words));
        w.key("single_seconds");
        w.value(single.mean_s);
        w.key("block_seconds");
        w.value(block.mean_s);
        w.key("mpairs_per_s_single");
        w.value(single.mean_s > 0.0 ? pairs / single.mean_s / 1e6 : 0.0);
        w.key("mpairs_per_s_block");
        w.value(block.mean_s > 0.0 ? pairs / block.mean_s / 1e6 : 0.0);
        w.key("speedup_vs_scalar_single");
        w.value(speedup);
        w.end_object();

        std::printf("%-8s %-16s %11.1f Mp/s %11.1f Mp/s %8.2fx\n",
                    std::string(kernels::to_string(isa)).c_str(), to_string(op),
                    single.mean_s > 0.0 ? pairs / single.mean_s / 1e6 : 0.0,
                    block.mean_s > 0.0 ? pairs / block.mean_s / 1e6 : 0.0, speedup);
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }

  w.end_array();
  w.key("batched_dispatch_beats_scalar_single");
  w.value(any_block_speedup);
  w.end_object();

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("batched dispatched kernel beats scalar single-pair: %s\n",
              any_block_speedup ? "yes" : "no (see capability above)");
  std::printf("wrote %s\n", config.out_path.c_str());
  return 0;
}
