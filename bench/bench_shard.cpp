// Sharded-engine scale sweep: the Fig. 2 workload pushed to 1M-10M users
// across a shard-count ladder (BENCH_shard.json).
//
// The sharded similar pipeline's claim is that almost all candidate work
// stays shard-local: only compact signatures (band digests / hashed column
// buckets) travel between shards, and the cross-shard candidate set they
// gather is small against the shard-local pair volume. This bench measures
// exactly that — per user count, role ordering, method, and shard count it
// records the full reaudit wall time plus the per-shard work counters
// (core::ShardSimilarStats), and CI archives the JSON so the local/cross
// work split is a tracked data series.
//
// Each sweep point runs two role orderings: "shuffled" (the generator's
// order — duplicates scattered, so every matched pair crosses shards with
// probability 1 - 1/S, the adversarial bound) and "id-local" (cluster
// members renumbered adjacent — the id-locality real role sprawl has, which
// range partitioning turns into shard-local work).
//
// Findings identity is asserted before anything is recorded: at every cell
// the sharded report's findings must equal the unsharded AuditEngine's
// (work counters and timings excluded — sharding legitimately changes how
// much candidate work exists; that delta is the thing measured here).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "io/json_writer.hpp"
#include "sweep_common.hpp"

using namespace rolediet;
using namespace rolediet::bench;

namespace {

struct ShardBenchConfig {
  std::size_t runs = 3;
  std::size_t threads = 1;
  std::size_t threshold = 2;  // hamming; exercises the verify kernels
  std::size_t roles = 2000;
  std::string out_path = "BENCH_shard.json";
  std::vector<std::size_t> user_counts{1'000'000, 2'000'000, 5'000'000, 10'000'000};
  std::vector<std::size_t> shard_counts{1, 2, 4, 8};

  static ShardBenchConfig parse(int argc, char** argv) {
    ShardBenchConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.runs = 2;
        config.user_counts = {1'000'000, 10'000'000};
        config.shard_counts = {1, 4};
      } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
        config.runs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
        config.threshold = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--roles") == 0 && i + 1 < argc) {
        config.roles = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--runs N] [--threads N] [--threshold T] "
                     "[--roles N] [--out F]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// Renumbers rows so planted cluster members occupy adjacent ids — the
/// "duplicates created in id-adjacent bursts" shape real role sprawl has and
/// range partitioning exploits (cluster pairs stay in one shard). The
/// generator's shuffled order is the adversarial opposite: every duplicate
/// pair lands cross-shard with probability 1 - 1/S.
linalg::CsrMatrix cluster_adjacent(const gen::GeneratedMatrix& workload) {
  std::vector<std::size_t> order;
  order.reserve(workload.matrix.rows());
  std::vector<char> placed(workload.matrix.rows(), 0);
  for (const auto& group : workload.planted.groups) {
    for (const std::size_t r : group) {
      order.push_back(r);
      placed[r] = 1;
    }
  }
  for (std::size_t r = 0; r < workload.matrix.rows(); ++r) {
    if (!placed[r]) order.push_back(r);
  }
  std::vector<std::size_t> row_ptr{0};
  std::vector<std::uint32_t> cols;
  for (const std::size_t r : order) {
    const auto row = workload.matrix.row(r);
    cols.insert(cols.end(), row.begin(), row.end());
    row_ptr.push_back(cols.size());
  }
  return linalg::CsrMatrix::from_csr(workload.matrix.cols(), std::move(row_ptr),
                                     std::move(cols));
}

/// Findings-only rendering for the sharded/unsharded identity assertion
/// (same stripping as tests/sharded_engine_test.cpp).
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

}  // namespace

int main(int argc, char** argv) {
  const ShardBenchConfig config = ShardBenchConfig::parse(argc, argv);

  std::printf("=== shard sweep: full audit vs user count and shard count ===\n");
  std::printf("roles=%zu threshold=%zu threads=%zu runs=%zu -> %s\n\n", config.roles,
              config.threshold, config.threads, config.runs, config.out_path.c_str());

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("shard");
  w.key("roles");
  w.value(static_cast<std::uint64_t>(config.roles));
  w.key("similarity_threshold");
  w.value(static_cast<std::uint64_t>(config.threshold));
  w.key("threads");
  w.value(static_cast<std::uint64_t>(config.threads));
  w.key("sweep");
  w.begin_array();

  bool ok = true;
  const std::vector<core::Method> methods{core::Method::kRoleDiet,
                                          core::Method::kApproxMinhash};
  for (std::size_t users : config.user_counts) {
    // Denser rows than the 1k-10k figure (norms 8-64): at 1M+ users the
    // shard-local pair volume should dwarf the cross-shard candidate set.
    const gen::GeneratedMatrix workload =
        fig2_matrix(users, config.roles, /*min_row_norm=*/8, /*max_row_norm=*/64);
    const linalg::CsrMatrix id_local = cluster_adjacent(workload);

    w.begin_object();
    w.key("users");
    w.value(static_cast<std::uint64_t>(users));
    w.key("edges");
    w.value(workload.matrix.nnz());
    w.key("orderings");
    w.begin_array();

    struct Ordering {
      const char* name;
      const linalg::CsrMatrix* matrix;
    };
    for (const Ordering& ordering : {Ordering{"shuffled", &workload.matrix},
                                     Ordering{"id-local", &id_local}}) {
      const core::RbacDataset dataset = dataset_from_ruam(*ordering.matrix);
      std::printf("users=%zu (%zu edges, %s role order)\n", users, dataset.ruam().nnz(),
                  ordering.name);

      w.begin_object();
      w.key("ordering");
      w.value(ordering.name);
      w.key("methods");
      w.begin_array();

      for (core::Method method : methods) {
        core::AuditOptions options;
        options.method = method;
        options.threads = config.threads;
        options.similarity_threshold = config.threshold;

        // Unsharded reference findings for the identity assertion.
        core::AuditEngine reference(dataset, options);
        const std::string expected = findings_text(reference.reaudit());

        w.begin_object();
        w.key("method");
        w.value(core::to_string(method));
        w.key("cells");
        w.begin_array();

        for (std::size_t shards : config.shard_counts) {
          const ShardCell cell = time_sharded_audit(dataset, shards, options, config.runs);
          core::ShardedEngine check(dataset, shards, options);
          const bool match = findings_text(check.reaudit()) == expected;
          ok = ok && match;

          std::uint64_t local_total = 0;
          for (std::uint64_t pairs : cell.work.users.local_pairs_evaluated)
            local_total += pairs;
          const core::ShardSimilarStats& stats = cell.work.users;
          std::printf(
              "  %-15s S=%zu  %s  local=%llu exchanged=%llu cross=%llu/%llu tiny=%llu%s\n",
              std::string(core::to_string(method)).c_str(), shards,
              cell.cell.to_string().c_str(), static_cast<unsigned long long>(local_total),
              static_cast<unsigned long long>(stats.exchanged_signatures),
              static_cast<unsigned long long>(stats.cross_matched),
              static_cast<unsigned long long>(stats.cross_candidates),
              static_cast<unsigned long long>(stats.tiny_pairs),
              match ? "" : "  FINDINGS MISMATCH");
          std::fflush(stdout);

          w.begin_object();
          w.key("shards");
          w.value(static_cast<std::uint64_t>(shards));
          w.key("seconds_mean");
          w.value(cell.cell.stats.mean_s);
          w.key("seconds_stdev");
          w.value(cell.cell.stats.stdev_s);
          w.key("same_groups");
          w.value(static_cast<std::uint64_t>(cell.same_groups));
          w.key("similar_groups");
          w.value(static_cast<std::uint64_t>(cell.similar_groups));
          w.key("local_pairs_per_shard");
          w.begin_array();
          for (std::uint64_t pairs : stats.local_pairs_evaluated) w.value(pairs);
          w.end_array();
          w.key("local_pairs_total");
          w.value(local_total);
          w.key("exchanged_signatures");
          w.value(stats.exchanged_signatures);
          w.key("cross_candidates");
          w.value(stats.cross_candidates);
          w.key("cross_matched");
          w.value(stats.cross_matched);
          w.key("tiny_pairs");
          w.value(stats.tiny_pairs);
          w.key("findings_match");
          w.value(match);
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("all_findings_match");
  w.value(ok);
  w.end_object();

  std::ofstream out(config.out_path, std::ios::trunc);
  out << w.str() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FINDINGS MISMATCH: sharded report diverged from unsharded\n");
    return 1;
  }
  return 0;
}
