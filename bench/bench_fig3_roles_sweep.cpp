// Figure 3 reproduction: detection time vs NUMBER OF ROLES.
//
// Paper setup (§IV-A): 1,000 users fixed; roles swept 1,000 -> 10,000;
// cluster proportion 0.2; at most 10 identical roles per cluster; 5 runs per
// cell; task = find roles sharing the SAME users.
//
// Expected shape (paper): all methods grow with the role count; exact DBSCAN
// grows fastest (quadratic region queries) and is overtaken by HNSW at some
// crossover (paper: ~7,000 roles on their Python stack); the role-diet
// algorithm stays orders of magnitude below both (2.27 s vs 496 s / 328 s at
// 10,000 roles in the paper).
#include "bench_common.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);

  std::printf("=== Fig. 3: duration vs role count (users = 1000, same-users detection) ===\n");
  std::printf("runs per cell: %zu\n\n", config.runs);
  print_header("roles");

  std::vector<std::size_t> role_counts;
  for (std::size_t r = 1000; r <= 10'000; r += 1000) role_counts.push_back(r);
  if (config.quick) role_counts = {1000, 4000, 10'000};

  for (std::size_t roles : role_counts) {
    gen::MatrixGenParams params;
    params.roles = roles;
    params.cols = 1000;
    params.clustered_fraction = 0.2;
    params.max_cluster_size = 10;
    params.seed = 3000 + roles;
    const gen::GeneratedMatrix workload = gen::generate_matrix(params);

    std::printf("%-10zu", roles);
    for (core::Method method : all_methods()) {
      const auto finder = core::make_group_finder(method, config.finder_options());
      core::RoleGroups sink;
      const Cell cell =
          time_cell(config.runs, [&] { sink = finder->find_same(workload.matrix); });
      std::printf(" | %s", cell.to_string().c_str());
      if (sink.roles_in_groups() < workload.planted.roles_in_groups() &&
          method != core::Method::kApproxHnsw) {
        std::printf("(!)");
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: all grow with roles; dbscan grows fastest (quadratic);\n"
              "role-diet stays orders of magnitude below both baselines.\n");
  return 0;
}
