// Pipeline observability bench: phase timings + finder work stats on the
// Fig. 3 workload, written as machine-readable JSON (BENCH_pipeline.json).
//
// Unlike the figure benches (human-diffable text tables), this one exists so
// CI can archive one JSON artifact per commit and regressions in either wall
// time or work volume (pairs evaluated / matched per phase) are visible as a
// data series. Work counters are deterministic across thread counts and
// backends (see methods/method_common.hpp), so only the seconds fields should
// move between commits on the same machine.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/framework.hpp"
#include "io/json_writer.hpp"
#include "util/timer.hpp"

using namespace rolediet;
using namespace rolediet::bench;

namespace {

struct PipelineConfig {
  std::size_t runs = 3;
  std::size_t roles = 2000;
  std::size_t threads = 1;
  std::string out_path = "BENCH_pipeline.json";

  static PipelineConfig parse(int argc, char** argv) {
    PipelineConfig config;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        config.runs = 1;
        config.roles = 800;
      } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
        config.runs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--roles") == 0 && i + 1 < argc) {
        config.roles = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        config.threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        config.out_path = argv[++i];
      } else {
        std::fprintf(stderr, "usage: %s [--quick] [--runs N] [--roles N] [--threads N] [--out F]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return config;
  }
};

/// Fig. 3 shape (§IV-A): 1,000 users/permissions, cluster proportion 0.2, at
/// most 10 identical roles per cluster. RUAM and RPAM use different seeds so
/// the four audit phases see distinct inputs.
core::RbacDataset fig3_dataset(std::size_t roles) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 3000 + roles;
  const linalg::CsrMatrix ruam = gen::generate_matrix(params).matrix;
  params.seed = 7000 + roles;
  const linalg::CsrMatrix rpam = gen::generate_matrix(params).matrix;

  core::RbacDataset dataset;
  dataset.add_users(ruam.cols());
  dataset.add_permissions(rpam.cols());
  dataset.add_roles(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    for (std::uint32_t u : ruam.row(r)) dataset.assign_user(static_cast<core::Id>(r), u);
    for (std::uint32_t p : rpam.row(r)) dataset.grant_permission(static_cast<core::Id>(r), p);
  }
  return dataset;
}

void write_phase(io::JsonWriter& w, const char* name, double mean_seconds,
                 const core::PhaseTiming& timing, const core::FinderWorkStats& work) {
  w.key(name);
  w.begin_object();
  w.key("seconds");
  w.value(mean_seconds);
  w.key("timed_out");
  w.value(timing.timed_out);
  w.key("work");
  w.begin_object();
  w.key("rows_processed");
  w.value(work.rows_processed);
  w.key("pairs_evaluated");
  w.value(work.pairs_evaluated);
  w.key("pairs_matched");
  w.value(work.pairs_matched);
  w.key("merges");
  w.value(work.merges);
  w.key("merge_conflicts");
  w.value(work.merge_conflicts);
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const PipelineConfig config = PipelineConfig::parse(argc, argv);

  std::printf("=== pipeline bench: per-phase timings + work stats (Fig. 3 workload) ===\n");
  std::printf("roles=%zu users=1000 threads=%zu runs=%zu -> %s\n\n", config.roles, config.threads,
              config.runs, config.out_path.c_str());

  const core::RbacDataset dataset = fig3_dataset(config.roles);

  const std::vector<core::Method> methods{core::Method::kExactDbscan, core::Method::kApproxHnsw,
                                          core::Method::kApproxMinhash, core::Method::kRoleDiet};

  io::JsonWriter w;
  w.begin_object();
  w.key("bench");
  w.value("pipeline");
  w.key("workload");
  w.begin_object();
  w.key("figure");
  w.value("fig3");
  w.key("roles");
  w.value(static_cast<std::uint64_t>(config.roles));
  w.key("users");
  w.value(std::uint64_t{1000});
  w.key("permissions");
  w.value(std::uint64_t{1000});
  w.end_object();
  w.key("threads");
  w.value(static_cast<std::uint64_t>(config.threads));
  w.key("runs");
  w.value(static_cast<std::uint64_t>(config.runs));
  w.key("methods");
  w.begin_array();

  for (core::Method method : methods) {
    core::AuditOptions options;
    options.method = method;
    options.threads = config.threads;

    // Mean phase seconds over `runs` repetitions; work stats are taken from
    // the last run (they are identical across runs by the determinism
    // contract).
    core::AuditReport report;
    double structural = 0.0, same_users = 0.0, same_perms = 0.0;
    double similar_users = 0.0, similar_perms = 0.0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      report = core::audit(dataset, options);
      structural += report.structural_time.seconds;
      same_users += report.same_users_time.seconds;
      same_perms += report.same_permissions_time.seconds;
      similar_users += report.similar_users_time.seconds;
      similar_perms += report.similar_permissions_time.seconds;
    }
    const double norm = 1.0 / static_cast<double>(config.runs);

    w.begin_object();
    w.key("method");
    w.value(report.method_name);
    w.key("phases");
    w.begin_object();
    w.key("structural");
    w.begin_object();
    w.key("seconds");
    w.value(structural * norm);
    w.key("timed_out");
    w.value(report.structural_time.timed_out);
    w.end_object();
    write_phase(w, "same_users", same_users * norm, report.same_users_time,
                report.same_users_work);
    write_phase(w, "same_permissions", same_perms * norm, report.same_permissions_time,
                report.same_permissions_work);
    write_phase(w, "similar_users", similar_users * norm, report.similar_users_time,
                report.similar_users_work);
    write_phase(w, "similar_permissions", similar_perms * norm, report.similar_permissions_time,
                report.similar_permissions_work);
    w.end_object();
    w.key("total_seconds");
    w.value((structural + same_users + same_perms + similar_users + similar_perms) * norm);
    w.end_object();

    std::printf("%-14s total %7.3f s  (same-users %.3f s, %zu pairs evaluated / %zu matched)\n",
                report.method_name.c_str(),
                (structural + same_users + same_perms + similar_users + similar_perms) * norm,
                same_users * norm, report.same_users_work.pairs_evaluated,
                report.same_users_work.pairs_matched);
    std::fflush(stdout);
  }

  w.end_array();
  w.end_object();

  std::ofstream out(config.out_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", config.out_path.c_str());
    return 1;
  }
  out << w.str() << "\n";
  std::printf("\nwrote %s\n", config.out_path.c_str());
  return 0;
}
