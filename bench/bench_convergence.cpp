// Convergence experiment (extension): quantifies the paper's claim that the
// approximate method's misses are tolerable because "the algorithm can be
// run periodically, enabling the results to converge gradually to the
// optimal solution over time" (§IV-A).
//
// Protocol: a 4,000 x 1,000 matrix with the paper's cluster parameters;
// ground truth = exact role-diet grouping; HNSW runs repeatedly with a fresh
// index seed per run (modelling periodic re-index jobs) at several beam
// widths; after each run the findings are unioned into the accumulated
// grouping and pair-level recall against ground truth is reported.
//
// Expected: per-run recall is flat (each run misses a similar fraction);
// cumulative recall increases monotonically and approaches 1.0 within a few
// runs — faster for wider beams. Precision stays exactly 1.0 throughout
// (distances are exact, so no run can over-merge).
#include "bench_common.hpp"
#include "core/methods/approx.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/periodic.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);
  const std::size_t roles = config.quick ? 1000 : 4000;
  const std::size_t total_runs = config.quick ? 5 : 8;

  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 31337;
  const gen::GeneratedMatrix workload = gen::generate_matrix(params);

  const core::methods::RoleDietGroupFinder exact;
  const core::RoleGroups truth = exact.find_same(workload.matrix);
  std::printf("=== Convergence of periodic approximate runs "
              "(%zu roles x %zu users, %zu true groups / %zu roles) ===\n\n",
              roles, params.cols, truth.group_count(), truth.roles_in_groups());

  for (std::size_t ef : {8u, 16u, 32u}) {
    std::printf("beam width ef = %zu:\n", ef);
    std::printf("  %-5s %14s %18s %12s\n", "run", "run recall", "cumulative recall",
                "precision");
    core::PeriodicAccumulator acc(workload.matrix.rows());
    for (std::size_t run = 0; run < total_runs; ++run) {
      core::methods::HnswGroupFinder::Options options;
      options.query_ef = ef;
      options.index.ef_search = ef;
      options.index.ef_construction = 60;
      options.index.seed = run * 7919 + 3;  // fresh graph each periodic job
      const core::methods::HnswGroupFinder approx(options);
      const core::RoleGroups found = approx.find_same(workload.matrix);
      const double run_recall = core::pairwise_recall(truth, found);
      acc.absorb(found);
      const double cumulative = core::pairwise_recall(truth, acc.current());
      const double precision = core::pairwise_precision(truth, acc.current());
      std::printf("  %-5zu %13.1f%% %17.1f%% %11.2f\n", run + 1, 100.0 * run_recall,
                  100.0 * cumulative, precision);
      if (cumulative >= 1.0) {
        std::printf("  -> converged to the exact grouping after %zu runs\n", run + 1);
        break;
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("expected shape: cumulative recall rises monotonically toward 100%%;\n"
              "wider beams converge in fewer periodic runs; precision is always 1.\n");
  return 0;
}
