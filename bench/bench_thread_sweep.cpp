// Thread-count sweep over the parallelized hot paths.
//
// Workload: the Fig. 3 end point (1,000 users, 10,000 roles, cluster
// proportion 0.2, at most 10 identical roles per cluster) — the largest
// synthetic configuration the paper reports. Three stages are timed at
// 1/2/4/8 worker threads:
//
//   - role-diet similar-set pass (the co-occurrence sweep, t = 2) — the
//     dominant cost of a full audit and the headline speedup;
//   - MinHash/LSH index construction (signatures + band buckets);
//   - batched HNSW index construction (add_all_parallel, batch = 64).
//
// Every stage is deterministic in the thread count: before timing, the
// harness verifies that each thread count reproduces the threads=1 groups
// byte-for-byte, and that threads=1 matches the default serial finder.
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "cluster/hnsw.hpp"
#include "cluster/minhash.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/method_common.hpp"
#include "linalg/bit_matrix.hpp"

using namespace rolediet;
using namespace rolediet::bench;

int main(int argc, char** argv) {
  const BenchConfig config = BenchConfig::parse(argc, argv);
  const std::size_t roles = config.quick ? 2000 : 10'000;
  const std::size_t threshold = 2;

  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 1000;
  params.clustered_fraction = 0.2;
  params.max_cluster_size = 10;
  params.seed = 3000 + roles;  // same seed rule as the Fig. 3 sweep
  const gen::GeneratedMatrix workload = gen::generate_matrix(params);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== Thread sweep on the Fig. 3 workload (%zu roles x %zu users) ===\n",
              roles, params.cols);
  std::printf("runs per cell: %zu; similar-set threshold t = %zu; hardware cores: %u\n",
              config.runs, threshold, hw);
  if (hw < 2) {
    std::printf("NOTE: fewer than 2 hardware cores — wall-clock speedup is bounded by the\n"
                "core count, so expect a flat ladder here (and slowdown from\n"
                "oversubscription at high thread counts). The determinism gate below is\n"
                "unaffected.\n");
  }
  std::printf("\n");

  // Determinism gate: the parallel paths must reproduce the serial groups.
  const core::RoleGroups serial_groups =
      core::methods::RoleDietGroupFinder().find_similar(workload.matrix, threshold);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::methods::RoleDietGroupFinder::Options options;
    options.threads = threads;
    const core::RoleGroups groups =
        core::methods::RoleDietGroupFinder(options).find_similar(workload.matrix, threshold);
    if (!(groups == serial_groups)) {
      std::fprintf(stderr, "FAIL: groups differ at threads=%zu\n", threads);
      return 1;
    }
  }
  std::printf("determinism: similar-set groups identical at threads = 1, 2, 4, 8\n\n");

  const std::vector<std::size_t> selected = core::methods::nonempty_rows(workload.matrix);
  const linalg::BitMatrix dense = core::methods::densify_rows(workload.matrix, selected);

  std::printf("%-10s | %-22s | %-22s | %-22s\n", "threads", "role-diet similar t=2",
              "minhash build", "hnsw batched build");
  for (int i = 0; i < 10 + 3 * 25; ++i) std::fputc('-', stdout);
  std::printf("\n");

  double base_similar = 0.0;
  double base_minhash = 0.0;
  double base_hnsw = 0.0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    core::methods::RoleDietGroupFinder::Options options;
    options.threads = threads;
    const core::methods::RoleDietGroupFinder finder(options);
    const Cell similar = time_cell(
        config.runs, [&] { (void)finder.find_similar(workload.matrix, threshold); });

    cluster::MinHashParams lsh;
    lsh.threads = threads;
    const Cell minhash = time_cell(config.runs, [&] {
      cluster::MinHashLsh index(workload.matrix, lsh);
      (void)index;
    });

    const Cell hnsw = time_cell(config.runs, [&] {
      cluster::HnswIndex index(dense, cluster::HnswParams{});
      index.add_all_parallel(threads, 64);
    });

    if (threads == 1) {
      base_similar = similar.stats.mean_s;
      base_minhash = minhash.stats.mean_s;
      base_hnsw = hnsw.stats.mean_s;
    }
    auto speedup = [&](double base, double mean) { return mean > 0.0 ? base / mean : 0.0; };
    std::printf("%-10zu | %s x%4.2f | %s x%4.2f | %s x%4.2f\n", threads,
                similar.to_string().c_str(), speedup(base_similar, similar.stats.mean_s),
                minhash.to_string().c_str(), speedup(base_minhash, minhash.stats.mean_s),
                hnsw.to_string().c_str(), speedup(base_hnsw, hnsw.stats.mean_s));
    std::fflush(stdout);
  }
  std::printf("\nspeedups are vs threads=1 of the same column; groups/indexes are\n"
              "byte-identical at every thread count (see util/thread_pool.hpp).\n");
  return 0;
}
