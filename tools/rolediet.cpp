// rolediet — the command-line entry point. All logic lives in cli::run()
// (src/cli/cli.cpp) so the tool is fully exercised by tests/cli_test.cpp.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return rolediet::cli::run(args, std::cout, std::cerr);
}
