// Tests for merge planning, application, and the equivalence guarantee.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/consolidation.hpp"
#include "core/methods/cooccurrence.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

TEST(Consolidation, PlanPicksSmallestIdAsSurvivor) {
  RbacDataset d;
  d.add_roles(5);
  RoleGroups groups;
  groups.groups = {{1, 3, 4}};
  const ConsolidationPlan plan = plan_consolidation(d, groups, MergeKind::kSameUsers);
  ASSERT_EQ(plan.merges.size(), 1u);
  EXPECT_EQ(plan.merges[0].survivor, 1u);
  EXPECT_EQ(plan.merges[0].absorbed, (std::vector<Id>{3, 4}));
  EXPECT_EQ(plan.roles_removed(), 2u);
}

TEST(Consolidation, PlanRejectsBadGroups) {
  RbacDataset d;
  d.add_roles(3);
  RoleGroups undersized;
  undersized.groups = {{1}};
  EXPECT_THROW(plan_consolidation(d, undersized, MergeKind::kSameUsers), std::invalid_argument);

  RoleGroups out_of_range;
  out_of_range.groups = {{1, 9}};
  EXPECT_THROW(plan_consolidation(d, out_of_range, MergeKind::kSameUsers), std::out_of_range);

  RoleGroups overlapping;
  overlapping.groups = {{0, 1}, {1, 2}};
  EXPECT_THROW(plan_consolidation(d, overlapping, MergeKind::kSameUsers), std::invalid_argument);
}

TEST(Consolidation, ApplyMergesSameUserRoles) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  // R02 (1) and R04 (3) share users. Merge them.
  RoleGroups groups;
  groups.groups = {{1, 3}};
  const ConsolidationPlan plan = plan_consolidation(d, groups, MergeKind::kSameUsers);
  const RbacDataset merged = apply_consolidation(d, plan);

  EXPECT_EQ(merged.num_roles(), 4u);
  EXPECT_EQ(merged.num_users(), d.num_users());
  EXPECT_EQ(merged.num_permissions(), d.num_permissions());
  EXPECT_EQ(merged.find_role("R04"), std::nullopt);  // absorbed
  ASSERT_TRUE(merged.find_role("R02").has_value());

  // Survivor carries the union: R02 had no perms, R04 had {P04, P05}.
  const Id survivor = *merged.find_role("R02");
  EXPECT_EQ(merged.permissions_of_role(survivor).size(), 2u);

  EXPECT_TRUE(verify_equivalence(d, merged));
}

TEST(Consolidation, ApplyMergesSamePermissionRoles) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  // R04 (3) and R05 (4) share permissions {P04, P05}.
  RoleGroups groups;
  groups.groups = {{3, 4}};
  const ConsolidationPlan plan = plan_consolidation(d, groups, MergeKind::kSamePermissions);
  const RbacDataset merged = apply_consolidation(d, plan);

  EXPECT_EQ(merged.num_roles(), 4u);
  // Survivor R04 now carries R05's user too.
  const Id survivor = *merged.find_role("R04");
  EXPECT_EQ(merged.users_of_role(survivor).size(), 3u);
  EXPECT_TRUE(verify_equivalence(d, merged));
}

TEST(Consolidation, ApplyValidatesPlan) {
  RbacDataset d;
  d.add_roles(3);
  ConsolidationPlan plan;
  plan.merges = {{.survivor = 0, .absorbed = {0}}};
  EXPECT_THROW(apply_consolidation(d, plan), std::invalid_argument);

  plan.merges = {{.survivor = 0, .absorbed = {1}}, {.survivor = 2, .absorbed = {1}}};
  EXPECT_THROW(apply_consolidation(d, plan), std::invalid_argument);

  plan.merges = {{.survivor = 0, .absorbed = {1}}, {.survivor = 1, .absorbed = {2}}};
  EXPECT_THROW(apply_consolidation(d, plan), std::invalid_argument);  // survivor absorbed

  plan.merges = {{.survivor = 5, .absorbed = {1}}};
  EXPECT_THROW(apply_consolidation(d, plan), std::out_of_range);
}

TEST(Consolidation, EmptyPlanIsIdentity) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const RbacDataset same = apply_consolidation(d, {});
  EXPECT_EQ(same.num_roles(), d.num_roles());
  EXPECT_TRUE(verify_equivalence(d, same));
}

TEST(Consolidation, TwoPhaseDietOnFigure1) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  ConsolidationStats stats;
  const RbacDataset slim = consolidate_duplicates(d, &stats);

  EXPECT_EQ(stats.roles_before, 5u);
  EXPECT_EQ(stats.removed_same_users, 1u);  // R04 into R02
  // After phase 1, the merged R02 has perms {P04, P05} — the same set as
  // R05, so phase 2 merges them as well.
  EXPECT_EQ(stats.removed_same_permissions, 1u);
  EXPECT_EQ(stats.roles_after, 3u);
  EXPECT_DOUBLE_EQ(stats.reduction_ratio(), 2.0 / 5.0);
  EXPECT_TRUE(verify_equivalence(d, slim));
}

TEST(Consolidation, DietIsIdempotent) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const RbacDataset once = consolidate_duplicates(d);
  ConsolidationStats again;
  const RbacDataset twice = consolidate_duplicates(once, &again);
  EXPECT_EQ(again.roles_before, again.roles_after);
  EXPECT_EQ(twice.num_roles(), once.num_roles());
}

TEST(Consolidation, VerifyEquivalenceDetectsChanges) {
  const RbacDataset d = rolediet::testing::figure1_dataset();

  RbacDataset tampered = d;
  tampered.grant_permission(*tampered.find_role("R01"), *tampered.find_permission("P03"));
  EXPECT_FALSE(verify_equivalence(d, tampered));

  RbacDataset shrunk = d;
  // A fresh user changes the user universe.
  shrunk.add_user("new-hire");
  EXPECT_FALSE(verify_equivalence(d, shrunk));
}

TEST(Consolidation, LargerSyntheticDietPreservesAccess) {
  // 30 base roles, 3 duplicate-user clones each of the first 5, plus 3
  // duplicate-permission clones of the next 5.
  RbacDataset d;
  d.add_users(60);
  d.add_permissions(80);
  for (int r = 0; r < 30; ++r) {
    const Id role = d.add_role("base" + std::to_string(r));
    for (int k = 0; k < 4; ++k) {
      d.assign_user(role, static_cast<Id>((r * 7 + k * 3) % 60));
      d.grant_permission(role, static_cast<Id>((r * 11 + k * 5) % 80));
    }
  }
  for (int r = 0; r < 5; ++r) {
    const Id clone = d.add_role("uclone" + std::to_string(r));
    // Copy the user list before assigning: assign_user invalidates the
    // compiled matrix the span points into.
    const auto span = d.users_of_role(static_cast<Id>(r));
    const std::vector<Id> users(span.begin(), span.end());
    for (Id u : users) d.assign_user(clone, u);
    d.grant_permission(clone, static_cast<Id>(70 + r));
  }
  for (int r = 5; r < 10; ++r) {
    const Id clone = d.add_role("pclone" + std::to_string(r));
    std::vector<Id> perms(d.permissions_of_role(static_cast<Id>(r)).begin(),
                          d.permissions_of_role(static_cast<Id>(r)).end());
    for (Id p : perms) d.grant_permission(clone, p);
    d.assign_user(clone, static_cast<Id>(55 + (r - 5)));
  }

  ConsolidationStats stats;
  const RbacDataset slim = consolidate_duplicates(d, &stats);
  EXPECT_GE(stats.removed_same_users, 5u);
  EXPECT_GE(stats.removed_same_permissions, 5u);
  EXPECT_TRUE(verify_equivalence(d, slim));
}

}  // namespace
}  // namespace rolediet::core
