// Byte-granular fault injection for the durable engine store.
//
// Builds a store under FsyncPolicy::kNone (one WAL record per apply()),
// drives a mutation trace with a mid-trace reaudit + checkpoint (so the
// snapshot carries pair caches and a dirty frontier), then truncates a copy
// of the store at EVERY record boundary of the tail segment, plus mid-record
// and mid-header offsets. Each truncated copy must recover to an engine
// whose reaudit() findings are byte-identical to a from-scratch engine on
// the surviving committed prefix — across every method, similarity mode,
// row backend, and thread count.
//
// kApproxHnsw's live incremental graph is the engine's documented
// exception; recovery sidesteps it by rebuild-marking the artifacts and
// re-running the batch pass, so byte-identity holds here too.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "store/engine_store.hpp"
#include "store/wal.hpp"
#include "test_helpers.hpp"

namespace rolediet::store {
namespace {

namespace fs = std::filesystem;

using rolediet::testing::ScopedTempDir;

/// Findings rendering with only non-deterministic fields (wall-clock
/// timings, per-thread work-split counters) zeroed. Engine version and
/// dataset digest stay: recovery must land on the same logical state, so
/// both must match the reference exactly.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

/// Base dataset: the Fig. 1 example plus extra roles so similar-pair caches
/// have something to cache at threshold 2 / Jaccard 0.3.
core::RbacDataset base_dataset() {
  core::RbacDataset d = rolediet::testing::figure1_dataset();
  const core::Id u02 = 1, u03 = 2, u04 = 3;
  const core::Id p04 = 3, p05 = 4, p06 = 5;
  const core::Id r06 = d.add_role("R06");
  const core::Id r07 = d.add_role("R07");
  d.assign_user(r06, u02);  // near-duplicate of R02's user set {U02, U03}
  d.assign_user(r06, u03);
  d.assign_user(r06, u04);
  d.grant_permission(r07, p04);  // near-duplicate of R04's perms {P04, P05}
  d.grant_permission(r07, p05);
  d.grant_permission(r07, p06);
  return d;
}

/// The single-mutation trace. Mixed kinds so replay exercises every code
/// path; several no-ops (re-adds, revokes of absent edges) so record count
/// and engine version deliberately diverge.
std::vector<core::Mutation> build_trace() {
  core::RbacDelta d;
  d.add_user("U05")
      .add_role("R08")
      .assign_user("R08", "U05")
      .assign_user("R08", "U01")
      .grant_permission("R08", "P02")
      .add_user("U05")  // no-op: already interned
      .revoke_user("R02", "U03")
      .grant_permission("R02", "P06")
      .assign_user("R06", "U05")
      .revoke_user("R03", "U01")  // no-op: no such edge
      .grant_permission("R03", "P01")
      .revoke_permission("R05", "P04")
      .add_permission("P07")
      .grant_permission("R08", "P07")
      .assign_user("R07", "U02")
      .revoke_user("R06", "U04")
      .grant_permission("R06", "P03")
      .add_role("R09")
      .assign_user("R09", "U02")
      .assign_user("R09", "U03")
      .grant_permission("R09", "P05")
      .revoke_permission("R09", "P01")  // no-op: never granted
      .revoke_user("R08", "U01")
      .grant_permission("R07", "P02");
  return std::move(d.mutations);
}

/// Record index at which the mid-trace reaudit + checkpoint happens. The
/// post-checkpoint WAL tail (the truncation target) holds the rest.
constexpr std::size_t kCheckpointAt = 10;

struct FaultCase {
  core::Method method;
  core::SimilarityMode mode;
  linalg::RowBackend backend;
  std::size_t threads;
};

std::string case_name(const ::testing::TestParamInfo<FaultCase>& info) {
  const FaultCase& c = info.param;
  std::string name;
  switch (c.method) {
    case core::Method::kExactDbscan: name = "Exact"; break;
    case core::Method::kApproxHnsw: name = "Hnsw"; break;
    case core::Method::kApproxMinhash: name = "Minhash"; break;
    case core::Method::kRoleDiet: name = "RoleDiet"; break;
  }
  name += c.mode == core::SimilarityMode::kHamming ? "Hamming" : "Jaccard";
  name += c.backend == linalg::RowBackend::kDense ? "Dense" : "Sparse";
  name += "T" + std::to_string(c.threads);
  return name;
}

std::vector<FaultCase> all_cases() {
  std::vector<FaultCase> cases;
  for (core::Method method : {core::Method::kExactDbscan, core::Method::kApproxHnsw,
                              core::Method::kApproxMinhash, core::Method::kRoleDiet}) {
    for (core::SimilarityMode mode :
         {core::SimilarityMode::kHamming, core::SimilarityMode::kJaccard}) {
      for (linalg::RowBackend backend : {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          cases.push_back({method, mode, backend, threads});
        }
      }
    }
  }
  return cases;
}

core::AuditOptions options_for(const FaultCase& c) {
  core::AuditOptions options;
  options.method = c.method;
  options.detect_similar = true;
  options.similarity_mode = c.mode;
  options.similarity_threshold = 2;
  options.jaccard_dissimilarity = 0.3;
  options.threads = c.threads;
  options.backend = c.backend;
  return options;
}

/// A record boundary in the tail WAL segment: byte offset just past the
/// record, and the global record count committed at that offset.
struct Boundary {
  std::uint64_t offset = 0;
  std::uint64_t record_end = 0;
};

class StoreFaultInjectionTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(StoreFaultInjectionTest, EveryTruncationRecoversTheCommittedPrefix) {
  const core::AuditOptions options = options_for(GetParam());
  const core::RbacDataset base = base_dataset();
  const std::vector<core::Mutation> trace = build_trace();

  // ---- build the pristine store ------------------------------------------
  ScopedTempDir root("fault");
  const fs::path pristine = root.file("pristine");
  StoreOptions store_options;
  store_options.fsync = FsyncPolicy::kNone;  // speed; crashes are simulated
  {
    EngineStore store = EngineStore::create(pristine, base, options, store_options);
    for (std::size_t i = 0; i < trace.size(); ++i) {
      core::RbacDelta one;
      one.mutations.push_back(trace[i]);
      store.apply(one);
      if (i + 1 == kCheckpointAt) {
        (void)store.engine().reaudit();  // populate the pair caches...
        (void)store.checkpoint();        // ...and bake them into the snapshot
      }
    }
  }

  // ---- enumerate tail-segment record boundaries --------------------------
  const std::vector<fs::path> segments = list_wal_segments(pristine);
  ASSERT_FALSE(segments.empty());
  const fs::path tail = segments.back();
  std::vector<Boundary> boundaries;
  {
    WalSegmentReader reader(tail);
    ASSERT_EQ(reader.start_record(), kCheckpointAt) << "checkpoint must have rotated the log";
    boundaries.push_back({reader.offset(), reader.start_record()});
    std::string payload;
    while (reader.next(payload)) boundaries.push_back({reader.offset(), reader.record_index()});
  }
  const std::uint64_t tail_size = fs::file_size(tail);
  ASSERT_EQ(boundaries.back().offset, tail_size) << "trace must end on a record boundary";
  ASSERT_GT(boundaries.size(), 2u) << "need several records in the tail segment";
  const std::uint64_t header_end = boundaries.front().offset;

  // Truncation points: every record boundary, one byte past each boundary
  // (torn frame header), each record's midpoint (torn payload), and two
  // points inside the segment header (torn header -> segment dropped).
  std::vector<std::uint64_t> cuts;
  cuts.push_back(0);
  cuts.push_back(header_end / 2);
  for (std::size_t i = 0; i < boundaries.size(); ++i) {
    cuts.push_back(boundaries[i].offset);
    if (boundaries[i].offset + 1 < tail_size) cuts.push_back(boundaries[i].offset + 1);
    if (i + 1 < boundaries.size())
      cuts.push_back((boundaries[i].offset + boundaries[i + 1].offset) / 2);
  }

  for (std::uint64_t cut : cuts) {
    SCOPED_TRACE("truncate tail segment to " + std::to_string(cut) + " bytes");

    // ---- wound a copy of the store ---------------------------------------
    const fs::path wounded = root.file("cut-" + std::to_string(cut));
    fs::copy(pristine, wounded, fs::copy_options::recursive);
    fs::resize_file(wounded / tail.filename(), cut);

    // The committed prefix this cut preserves: a cut inside the segment
    // header drops the whole tail segment; otherwise the last boundary at
    // or before the cut survives.
    std::uint64_t committed = boundaries.front().record_end;
    for (const Boundary& b : boundaries)
      if (b.offset <= cut) committed = b.record_end;

    // ---- recover and compare against a from-scratch engine ---------------
    EngineStore recovered = EngineStore::open(wounded, options, store_options);
    EXPECT_EQ(recovered.recovery().total_records, committed);
    EXPECT_EQ(recovered.recovery().dropped_torn_segment, cut < header_end);

    // The reference is a fresh engine over the committed prefix; its first
    // reaudit() is the deterministic batch pass. The recovered engine's
    // delta pass must match it by the engine's byte-identity contract — and
    // for kApproxHnsw (whose live graph is the contract's one exception)
    // recovery rebuild-marks the artifacts, so it runs the same batch pass.
    core::AuditEngine reference(base, options);
    core::RbacDelta prefix;
    prefix.mutations.assign(trace.begin(),
                            trace.begin() + static_cast<std::ptrdiff_t>(committed));
    reference.apply(prefix);

    EXPECT_EQ(findings_text(recovered.engine().reaudit()), findings_text(reference.reaudit()));

    // The recovered store must also still be writable: append + checkpoint.
    core::RbacDelta more;
    more.add_user("post-crash-user").assign_user("R01", "post-crash-user");
    recovered.apply(more);
    EXPECT_EQ(recovered.records(), committed + more.size());
    (void)recovered.checkpoint();
    fs::remove_all(wounded);
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, StoreFaultInjectionTest, ::testing::ValuesIn(all_cases()),
                         case_name);

}  // namespace
}  // namespace rolediet::store
