// Integration tests of the audit framework over full datasets.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

TEST(Framework, Figure1FullAudit) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const AuditReport report = audit(d);

  EXPECT_EQ(report.num_users, 4u);
  EXPECT_EQ(report.num_roles, 5u);
  EXPECT_EQ(report.num_permissions, 6u);
  EXPECT_EQ(report.method_name, "role-diet");

  EXPECT_EQ(report.structural.standalone_permissions, (std::vector<Id>{0}));
  EXPECT_EQ(report.structural.roles_without_users, (std::vector<Id>{2}));
  EXPECT_EQ(report.structural.roles_without_permissions, (std::vector<Id>{1}));
  EXPECT_EQ(report.structural.single_user_roles, (std::vector<Id>{0, 4}));

  ASSERT_EQ(report.same_user_groups.group_count(), 1u);
  EXPECT_EQ(report.same_user_groups.groups[0], (std::vector<std::size_t>{1, 3}));
  ASSERT_EQ(report.same_permission_groups.group_count(), 1u);
  EXPECT_EQ(report.same_permission_groups.groups[0], (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(report.reducible_roles(), 2u);

  // t = 1 similar groups include the same-set groups (distance 0 <= 1).
  EXPECT_GE(report.similar_user_groups.roles_in_groups(), 2u);
}

TEST(Framework, AllMethodsAgreeOnFigure1) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const AuditReport base = audit(d, {.method = Method::kRoleDiet});
  for (Method method : {Method::kExactDbscan, Method::kApproxHnsw}) {
    const AuditReport other = audit(d, {.method = method});
    EXPECT_EQ(other.same_user_groups, base.same_user_groups) << to_string(method);
    EXPECT_EQ(other.same_permission_groups, base.same_permission_groups) << to_string(method);
    EXPECT_EQ(other.similar_user_groups, base.similar_user_groups) << to_string(method);
  }
}

TEST(Framework, DisableSimilarSkipsPhases) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const AuditReport report = audit(d, {.detect_similar = false});
  EXPECT_TRUE(report.similar_user_groups.groups.empty());
  EXPECT_TRUE(report.similar_permission_groups.groups.empty());
  EXPECT_FALSE(report.similar_users_time.timed_out);
  EXPECT_EQ(report.similar_users_time.seconds, 0.0);
}

TEST(Framework, TimeBudgetSkipsLaterPhases) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  AuditOptions options;
  options.time_budget_s = 1e-9;  // exhausted immediately after structural
  const AuditReport report = audit(d, options);
  EXPECT_TRUE(report.same_users_time.timed_out);
  EXPECT_TRUE(report.similar_permissions_time.timed_out);
  EXPECT_TRUE(report.same_user_groups.groups.empty());
  // Structural detection always runs.
  EXPECT_EQ(report.structural.standalone_permissions.size(), 1u);
}

TEST(Framework, SimilarityThresholdPropagates) {
  RbacDataset d;
  d.add_users(10);
  d.add_permissions(4);
  const Id r0 = d.add_role("a");
  const Id r1 = d.add_role("b");
  for (Id u : {0u, 1u, 2u}) d.assign_user(r0, u);
  for (Id u : {0u, 1u, 3u, 4u}) d.assign_user(r1, u);  // distance 3
  d.grant_permission(r0, 0);
  d.grant_permission(r1, 1);

  const AuditReport at1 = audit(d, {.similarity_threshold = 1});
  EXPECT_TRUE(at1.similar_user_groups.groups.empty());
  const AuditReport at3 = audit(d, {.similarity_threshold = 3});
  EXPECT_EQ(at3.similar_user_groups.group_count(), 1u);
  EXPECT_EQ(at3.similarity_threshold, 3u);
}

TEST(Framework, JaccardModeUsesRelativeThreshold) {
  // Two 10-user roles overlapping in 9 (jaccard distance ~0.18, hamming 2)
  // and two 2-user roles overlapping in 1 (jaccard ~0.67, hamming 2).
  RbacDataset d;
  d.add_users(40);
  d.add_permissions(2);
  const Id big_a = d.add_role("big_a");
  const Id big_b = d.add_role("big_b");
  for (Id u = 0; u < 10; ++u) d.assign_user(big_a, u);
  for (Id u = 0; u < 9; ++u) d.assign_user(big_b, u);
  d.assign_user(big_b, 20);
  const Id small_a = d.add_role("small_a");
  const Id small_b = d.add_role("small_b");
  d.assign_user(small_a, 30);
  d.assign_user(small_a, 31);
  d.assign_user(small_b, 31);
  d.assign_user(small_b, 32);
  for (Id r = 0; r < 4; ++r) d.grant_permission(r, r % 2);

  AuditOptions options;
  options.similarity_mode = SimilarityMode::kJaccard;
  options.jaccard_dissimilarity = 0.25;
  const AuditReport report = audit(d, options);
  ASSERT_EQ(report.similar_user_groups.group_count(), 1u);
  EXPECT_EQ(report.similar_user_groups.groups[0],
            (std::vector<std::size_t>{big_a, big_b}));
  EXPECT_EQ(report.similarity_mode, SimilarityMode::kJaccard);

  // Hamming mode with t = 2 cannot tell the two pairs apart.
  const AuditReport hamming = audit(d, {.similarity_threshold = 2});
  EXPECT_EQ(hamming.similar_user_groups.group_count(), 2u);

  // Report text carries the jaccard label.
  EXPECT_NE(report.to_text().find("j<=0.25"), std::string::npos);
}

TEST(Framework, EmptyDatasetAudit) {
  const RbacDataset d;
  const AuditReport report = audit(d);
  EXPECT_EQ(report.num_roles, 0u);
  EXPECT_EQ(report.reducible_roles(), 0u);
  EXPECT_TRUE(report.same_user_groups.groups.empty());
}

TEST(Framework, ReportTextContainsHeadlines) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const std::string text = audit(d).to_text();
  EXPECT_NE(text.find("method: role-diet"), std::string::npos);
  EXPECT_NE(text.find("standalone permissions:  1"), std::string::npos);
  EXPECT_NE(text.find("same-users groups:       1 groups / 2 roles"), std::string::npos);
  EXPECT_NE(text.find("would remove 2 of 5 roles"), std::string::npos);
}

TEST(Framework, DistinctEdgeCountsAreDeduplicated) {
  RbacDataset d;
  const Id r = d.add_role("r");
  const Id u = d.add_user("u");
  d.assign_user(r, u);
  d.assign_user(r, u);
  const AuditReport report = audit(d);
  EXPECT_EQ(report.num_user_assignments, 1u);
}

}  // namespace
}  // namespace rolediet::core
