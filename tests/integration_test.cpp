// End-to-end integration tests: generated org -> CSV -> reload -> audit ->
// consolidate -> verify, i.e. the full pipeline a deployment would run.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "core/consolidation.hpp"
#include "core/framework.hpp"
#include "gen/org_simulator.hpp"
#include "io/csv.hpp"
#include "io/json_writer.hpp"

namespace rolediet {
namespace {

namespace fs = std::filesystem;

class ScopedDir {
 public:
  ScopedDir() {
    dir_ = fs::temp_directory_path() / ("rolediet_integ_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  ~ScopedDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

TEST(Integration, OrgCsvRoundTripPreservesAudit) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  ScopedDir dir;
  io::save_dataset(org.dataset, dir.path());
  const core::RbacDataset reloaded = io::load_dataset(dir.path());

  const core::AuditReport before = core::audit(org.dataset);
  const core::AuditReport after = core::audit(reloaded);
  EXPECT_EQ(before.structural.standalone_users.size(),
            after.structural.standalone_users.size());
  EXPECT_EQ(before.structural.standalone_permissions.size(),
            after.structural.standalone_permissions.size());
  EXPECT_EQ(before.same_user_groups.roles_in_groups(),
            after.same_user_groups.roles_in_groups());
  EXPECT_EQ(before.similar_permission_groups.roles_in_groups(),
            after.similar_permission_groups.roles_in_groups());
}

TEST(Integration, FullDietPipelineOnOrg) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small(99));
  const core::RbacDataset& d = org.dataset;

  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(d, &stats);

  // Every planted duplicate pair should collapse: one role per same-user
  // pair plus one per same-permission pair (phase-2 merges can only add).
  EXPECT_GE(stats.removed_same_users, org.truth.roles_in_same_user_groups / 2);
  EXPECT_GE(stats.removed_same_permissions, org.truth.roles_in_same_permission_groups / 2);
  EXPECT_TRUE(core::verify_equivalence(d, slim));

  // The diet leaves no same-user duplicates behind.
  const core::AuditReport post = core::audit(slim, {.detect_similar = false});
  EXPECT_EQ(post.same_user_groups.group_count(), 0u);
}

TEST(Integration, ReductionRatioIsPaperOrderOfMagnitude) {
  // The paper reports ~10% of roles removable via type-4 consolidation;
  // the small profile plants the same proportions.
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  core::ConsolidationStats stats;
  (void)core::consolidate_duplicates(org.dataset, &stats);
  EXPECT_GT(stats.reduction_ratio(), 0.05);
  EXPECT_LT(stats.reduction_ratio(), 0.20);
}

TEST(Integration, AuditReportSerializesForOrg) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  const core::AuditReport report = core::audit(org.dataset);
  const std::string json = io::report_to_json(report, org.dataset);
  EXPECT_NE(json.find("\"method\":\"role-diet\""), std::string::npos);
  EXPECT_NE(json.find("R_dupusers_0"), std::string::npos);
  const std::string text = report.to_text();
  EXPECT_NE(text.find("standalone users"), std::string::npos);
}

TEST(Integration, MethodsAgreeOnSmallOrg) {
  // Cross-method agreement on a realistic (not adversarial) dataset: the
  // exact methods must coincide; HNSW must find at least 95% of the roles.
  gen::OrgProfile tiny = gen::OrgProfile::small();
  tiny.healthy_roles = 60;
  tiny.roles_without_users = 20;
  tiny.single_permission_roles = 40;
  tiny.same_user_pairs = 20;
  tiny.same_permission_pairs = 10;
  tiny.similar_user_pairs = 10;
  tiny.similar_permission_pairs = 10;
  const gen::OrgDataset org = gen::generate_org(tiny);

  const core::AuditReport ours = core::audit(org.dataset, {.method = core::Method::kRoleDiet});
  const core::AuditReport exact =
      core::audit(org.dataset, {.method = core::Method::kExactDbscan});
  EXPECT_EQ(ours.same_user_groups, exact.same_user_groups);
  EXPECT_EQ(ours.same_permission_groups, exact.same_permission_groups);
  EXPECT_EQ(ours.similar_user_groups, exact.similar_user_groups);
  EXPECT_EQ(ours.similar_permission_groups, exact.similar_permission_groups);

  const core::AuditReport approx =
      core::audit(org.dataset, {.method = core::Method::kApproxHnsw});
  EXPECT_GE(approx.same_user_groups.roles_in_groups() * 100,
            ours.same_user_groups.roles_in_groups() * 80);
}

TEST(Integration, RepeatedAuditsAreStable) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small(5));
  const core::AuditReport a = core::audit(org.dataset);
  const core::AuditReport b = core::audit(org.dataset);
  EXPECT_EQ(a.same_user_groups, b.same_user_groups);
  EXPECT_EQ(a.similar_user_groups, b.similar_user_groups);
  EXPECT_EQ(a.structural.single_user_roles, b.structural.single_user_roles);
}

}  // namespace
}  // namespace rolediet
