// Parity and dispatch tests for the SIMD kernel layer (linalg/kernels).
//
// The layer's whole contract is "identical integers on every dispatch
// target", so the core of this suite is randomized scalar-vs-target parity
// over every kernel op, every host-available ISA, and word spans chosen to
// hit vector-width boundaries (1..40 words covers sub-lane, exact-lane, and
// tail cases for 2/4/8-word lanes). Tail-word semantics are exercised via
// util::tail_mask the way BitMatrix builds rows: bits past cols() are zero.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/bit_matrix.hpp"
#include "linalg/convert.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/row_store.hpp"
#include "util/bitops.hpp"

namespace {

using rolediet::linalg::BitMatrix;
using rolediet::linalg::RowStore;
namespace kernels = rolediet::linalg::kernels;
using kernels::KernelIsa;

/// Restores the entry active target (auto-resolution) when a test forces one.
struct ScopedKernelIsa {
  explicit ScopedKernelIsa(KernelIsa isa) { kernels::set_active_isa(isa); }
  ~ScopedKernelIsa() { kernels::set_active_isa(KernelIsa::kAuto); }
};

std::vector<KernelIsa> host_isas() {
  std::vector<KernelIsa> isas{KernelIsa::kScalar};
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512, KernelIsa::kNeon})
    if (kernels::isa_supported(isa)) isas.push_back(isa);
  return isas;
}

std::vector<std::uint64_t> random_words(std::mt19937_64& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng();
  return words;
}

// ---- Randomized scalar-vs-target parity over every op ----------------------

TEST(KernelParity, AllOpsMatchScalarOnEveryHostIsa) {
  const auto& ref = kernels::scalar_ops();
  std::mt19937_64 rng(0xC0FFEEULL);
  for (KernelIsa isa : host_isas()) {
    const auto& ops = kernels::ops_for(isa);
    for (std::size_t n = 1; n <= 40; ++n) {
      for (int rep = 0; rep < 8; ++rep) {
        auto a = random_words(rng, n);
        auto b = random_words(rng, n);
        // Some reps share a suffix or the whole span so equal/low-distance
        // branches get real coverage.
        if (rep % 3 == 0) std::copy(a.begin() + static_cast<long>(n / 2), a.end(),
                                    b.begin() + static_cast<long>(n / 2));
        if (rep % 5 == 0) b = a;

        EXPECT_EQ(ops.popcount(a.data(), n), ref.popcount(a.data(), n))
            << "popcount isa=" << kernels::to_string(isa) << " n=" << n;
        EXPECT_EQ(ops.hamming(a.data(), b.data(), n), ref.hamming(a.data(), b.data(), n))
            << "hamming isa=" << kernels::to_string(isa) << " n=" << n;
        EXPECT_EQ(ops.intersection(a.data(), b.data(), n),
                  ref.intersection(a.data(), b.data(), n))
            << "intersection isa=" << kernels::to_string(isa) << " n=" << n;
        EXPECT_EQ(ops.equal(a.data(), b.data(), n), ref.equal(a.data(), b.data(), n))
            << "equal isa=" << kernels::to_string(isa) << " n=" << n;

        // Bounded: exercise limits below, at, and above the true distance,
        // asserting exact integer equality (the limit + 1 contract), not
        // just verdict parity.
        const std::size_t d = ref.hamming(a.data(), b.data(), n);
        for (std::size_t limit :
             {std::size_t{0}, d / 2, d, d + 1, d + 17, std::size_t{64 * n}}) {
          EXPECT_EQ(ops.hamming_bounded(a.data(), b.data(), n, limit),
                    ref.hamming_bounded(a.data(), b.data(), n, limit))
              << "bounded isa=" << kernels::to_string(isa) << " n=" << n
              << " limit=" << limit;
        }
      }
    }
  }
}

TEST(KernelParity, BoundedContractExactValueOrLimitPlusOne) {
  std::mt19937_64 rng(42);
  for (KernelIsa isa : host_isas()) {
    const auto& ops = kernels::ops_for(isa);
    for (int rep = 0; rep < 32; ++rep) {
      const std::size_t n = 1 + rep % 19;
      auto a = random_words(rng, n);
      auto b = random_words(rng, n);
      const std::size_t d = kernels::scalar_ops().hamming(a.data(), b.data(), n);
      for (std::size_t limit = 0; limit <= d + 3; limit += 1 + limit / 2) {
        const std::size_t got = ops.hamming_bounded(a.data(), b.data(), n, limit);
        if (d <= limit) {
          EXPECT_EQ(got, d) << kernels::to_string(isa);
        } else {
          EXPECT_EQ(got, limit + 1) << kernels::to_string(isa);
        }
      }
    }
  }
}

// ---- Tail-word edge cases: rows whose last word is partially occupied ------

TEST(KernelParity, TailMaskedRowsAgreeAcrossIsas) {
  std::mt19937_64 rng(7);
  const auto& ref = kernels::scalar_ops();
  // Column counts straddling word boundaries: the tail word carries 1..63
  // live bits (or exactly fills), and bits past cols are zero — the BitMatrix
  // row invariant the whole-word kernels rely on.
  for (std::size_t cols : {1UL, 63UL, 64UL, 65UL, 127UL, 128UL, 129UL, 300UL, 511UL, 520UL}) {
    const std::size_t n = rolediet::util::words_for_bits(cols);
    const std::uint64_t mask = rolediet::util::tail_mask(cols);
    auto a = random_words(rng, n);
    auto b = random_words(rng, n);
    a.back() &= mask;
    b.back() &= mask;
    const std::size_t d = ref.hamming(a.data(), b.data(), n);
    for (KernelIsa isa : host_isas()) {
      const auto& ops = kernels::ops_for(isa);
      EXPECT_EQ(ops.popcount(a.data(), n), ref.popcount(a.data(), n)) << cols;
      EXPECT_EQ(ops.hamming(a.data(), b.data(), n), d) << cols;
      EXPECT_EQ(ops.intersection(a.data(), b.data(), n),
                ref.intersection(a.data(), b.data(), n))
          << cols;
      EXPECT_EQ(ops.equal(a.data(), b.data(), n), ref.equal(a.data(), b.data(), n)) << cols;
      EXPECT_EQ(ops.hamming_bounded(a.data(), b.data(), n, d), d) << cols;
      EXPECT_EQ(ops.hamming_bounded(a.data(), b.data(), n, d == 0 ? 0 : d - 1),
                ref.hamming_bounded(a.data(), b.data(), n, d == 0 ? 0 : d - 1))
          << cols;
    }
  }
}

// ---- Batch entry points: block results == single-pair results --------------

TEST(KernelParity, BlockKernelsMatchSinglePairOnEveryHostIsa) {
  std::mt19937_64 rng(99);
  for (KernelIsa isa : host_isas()) {
    const auto& ops = kernels::ops_for(isa);
    // Strides > n exercise padded layouts; counts around the 4-row register
    // block (1..9) exercise both the blocked body and the remainder loop.
    for (std::size_t n : {1UL, 3UL, 8UL, 13UL, 32UL}) {
      const std::size_t stride = n + (n % 3);
      for (std::size_t count = 1; count <= 9; ++count) {
        const auto q = random_words(rng, n);
        auto rows = random_words(rng, stride * count);
        std::vector<std::size_t> out(count, 0);

        ops.hamming_block(q.data(), rows.data(), stride, count, n, out.data());
        for (std::size_t r = 0; r < count; ++r)
          EXPECT_EQ(out[r], ops.hamming(q.data(), rows.data() + r * stride, n))
              << kernels::to_string(isa) << " n=" << n << " r=" << r;

        ops.intersection_block(q.data(), rows.data(), stride, count, n, out.data());
        for (std::size_t r = 0; r < count; ++r)
          EXPECT_EQ(out[r], ops.intersection(q.data(), rows.data() + r * stride, n))
              << kernels::to_string(isa) << " n=" << n << " r=" << r;

        const std::size_t limit = 16 * n;  // mixes exact and clamped rows
        ops.hamming_bounded_block(q.data(), rows.data(), stride, count, n, limit / 2,
                                  out.data());
        for (std::size_t r = 0; r < count; ++r)
          EXPECT_EQ(out[r],
                    ops.hamming_bounded(q.data(), rows.data() + r * stride, n, limit / 2))
              << kernels::to_string(isa) << " n=" << n << " r=" << r;
      }
    }
  }
}

// ---- Dispatch selection / override machinery -------------------------------

TEST(KernelDispatch, ParseRoundTripsEveryName) {
  for (KernelIsa isa : {KernelIsa::kAuto, KernelIsa::kScalar, KernelIsa::kAvx2,
                        KernelIsa::kAvx512, KernelIsa::kNeon}) {
    const auto parsed = kernels::parse_kernel_isa(kernels::to_string(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(kernels::parse_kernel_isa("sse9").has_value());
  EXPECT_FALSE(kernels::parse_kernel_isa("").has_value());
  EXPECT_FALSE(kernels::parse_kernel_isa("AVX2").has_value());  // names are lowercase
}

TEST(KernelDispatch, ActiveIsaNeverAutoAndIsSupported) {
  const KernelIsa isa = kernels::active_isa();
  EXPECT_NE(isa, KernelIsa::kAuto);
  EXPECT_TRUE(kernels::isa_supported(isa));
}

TEST(KernelDispatch, DetectPrefersWidestSupported) {
  const KernelIsa detected = kernels::detect_isa();
  EXPECT_TRUE(kernels::isa_supported(detected));
  // Detection must never leave a supported wider target on the table.
  if (kernels::isa_supported(KernelIsa::kAvx512)) {
    EXPECT_EQ(detected, KernelIsa::kAvx512);
  }
}

TEST(KernelDispatch, SetActiveIsaForcesAndRestores) {
  {
    ScopedKernelIsa forced(KernelIsa::kScalar);
    EXPECT_EQ(kernels::active_isa(), KernelIsa::kScalar);
    EXPECT_EQ(&kernels::active(), &kernels::scalar_ops());
  }
  EXPECT_EQ(kernels::active_isa(), kernels::detect_isa());
}

TEST(KernelDispatch, ForcingUnsupportedTargetThrows) {
  for (KernelIsa isa : {KernelIsa::kAvx2, KernelIsa::kAvx512, KernelIsa::kNeon}) {
    if (!kernels::isa_supported(isa)) {
      EXPECT_THROW(kernels::set_active_isa(isa), std::invalid_argument)
          << kernels::to_string(isa);
    }
  }
  // At least one x86/arm target is unsupported on any single host, so the
  // throw path is exercised everywhere: neon and avx2 can't both be runnable.
  EXPECT_FALSE(kernels::isa_supported(KernelIsa::kAvx2) &&
               kernels::isa_supported(KernelIsa::kNeon));
}

TEST(KernelDispatch, CapabilityStringListsScalarFirst) {
  const std::string caps = kernels::capability_string();
  EXPECT_EQ(caps.rfind("scalar", 0), 0U) << caps;
  for (KernelIsa isa : host_isas()) {
    EXPECT_NE(caps.find(std::string(kernels::to_string(isa))), std::string::npos) << caps;
  }
}

// ---- RowStore batch entry points against single-pair kernels ---------------

BitMatrix random_matrix(std::mt19937_64& rng, std::size_t rows, std::size_t cols,
                        double density) {
  BitMatrix m(rows, cols);
  std::bernoulli_distribution bit(density);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (bit(rng)) m.set(r, c);
  return m;
}

TEST(RowStoreBatch, BlockAndGatherMatchSinglePairOnEveryHostIsa) {
  std::mt19937_64 rng(123);
  const BitMatrix dense = random_matrix(rng, 37, 130, 0.3);
  const auto sparse = rolediet::linalg::to_sparse(dense);
  for (KernelIsa isa : host_isas()) {
    ScopedKernelIsa forced(isa);
    const RowStore backends[] = {RowStore(dense), RowStore(sparse)};
    for (const RowStore& store : backends) {
      const std::size_t q = 5;
      const std::size_t first = 9;
      const std::size_t count = 21;
      std::vector<std::size_t> out(count, 0);

      store.hamming_block(q, first, count, out.data());
      for (std::size_t k = 0; k < count; ++k)
        EXPECT_EQ(out[k], store.hamming(q, first + k)) << kernels::to_string(isa);

      store.intersection_block(q, first, count, out.data());
      for (std::size_t k = 0; k < count; ++k)
        EXPECT_EQ(out[k], store.intersection(q, first + k)) << kernels::to_string(isa);

      const std::size_t limit = 30;
      store.hamming_bounded_block(q, first, count, limit, out.data());
      for (std::size_t k = 0; k < count; ++k)
        EXPECT_EQ(out[k], store.hamming_bounded(q, first + k, limit))
            << kernels::to_string(isa);

      const std::vector<std::uint32_t> idx{0, 36, 7, 7, 18, 2};
      std::vector<std::size_t> gout(idx.size(), 0);
      store.hamming_bounded_gather(q, idx, limit, gout.data());
      for (std::size_t k = 0; k < idx.size(); ++k)
        EXPECT_EQ(gout[k], store.hamming_bounded(q, idx[k], limit)) << kernels::to_string(isa);

      store.intersection_gather(q, idx, gout.data());
      for (std::size_t k = 0; k < idx.size(); ++k)
        EXPECT_EQ(gout[k], store.intersection(q, idx[k])) << kernels::to_string(isa);

      // Zero-count block is a no-op, even at the end of the store.
      store.hamming_block(q, store.rows(), 0, out.data());
    }
  }
}

TEST(RowStoreBatch, BoundedValuesIdenticalAcrossBackends) {
  // The limit + 1 normalization means the *values*, not just verdicts, agree
  // between the dense kernels and the sparse merge loop.
  std::mt19937_64 rng(321);
  const BitMatrix dense = random_matrix(rng, 20, 130, 0.2);
  const auto sparse = rolediet::linalg::to_sparse(dense);
  const RowStore d(dense);
  const RowStore s(sparse);
  for (std::size_t a = 0; a < d.rows(); ++a) {
    for (std::size_t b = 0; b < d.rows(); ++b) {
      for (std::size_t limit : {0UL, 5UL, 20UL, 60UL, 200UL}) {
        EXPECT_EQ(d.hamming_bounded(a, b, limit), s.hamming_bounded(a, b, limit))
            << a << "," << b << " limit=" << limit;
      }
    }
  }
}

// The scalar table must be bit-for-bit the util/bitops.hpp path.
TEST(KernelScalar, MatchesUtilBitops) {
  std::mt19937_64 rng(777);
  const auto& ops = kernels::scalar_ops();
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rep % 9;
    const auto a = random_words(rng, n);
    const auto b = random_words(rng, n);
    const std::span<const std::uint64_t> sa(a);
    const std::span<const std::uint64_t> sb(b);
    EXPECT_EQ(ops.popcount(a.data(), n), rolediet::util::popcount_span(sa));
    EXPECT_EQ(ops.hamming(a.data(), b.data(), n), rolediet::util::hamming_words(sa, sb));
    EXPECT_EQ(ops.intersection(a.data(), b.data(), n),
              rolediet::util::intersection_words(sa, sb));
    EXPECT_EQ(ops.equal(a.data(), b.data(), n), rolediet::util::equal_words(sa, sb));
    for (std::size_t limit : {0UL, 3UL, 50UL, 600UL}) {
      EXPECT_EQ(ops.hamming_bounded(a.data(), b.data(), n, limit),
                rolediet::util::hamming_words_bounded(sa, sb, limit));
    }
  }
}

}  // namespace
