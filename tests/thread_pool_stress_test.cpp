// Stress and semantics tests for the threading layer:
//  - ThreadPool under concurrent submit()/parallel_for() from many caller
//    threads (including the shared default_pool());
//  - exception latching across overlapping waves: the first failure is
//    rethrown from wait_idle(), the pool survives and later waves run clean;
//  - the Parallelism knob convention (util/thread_pool.hpp): 1 = inline,
//    0 = shared default pool, N >= 2 = private pool of N;
//  - determinism: every parallelized finder returns byte-identical canonical
//    RoleGroups at threads = 1, 2, 8 on the same seeded workload.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/hnsw.hpp"
#include "core/methods/approx.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/exact.hpp"
#include "core/methods/minhash_lsh.hpp"
#include "core/methods/method_common.hpp"
#include "gen/matrix_generator.hpp"
#include "util/thread_pool.hpp"

namespace rolediet {
namespace {

using core::RoleGroups;

TEST(ThreadPoolStress, ConcurrentSubmittersFromManyThreads) {
  util::ThreadPool pool(4);
  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kTasksEach = 500;
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      for (std::size_t t = 0; t < kTasksEach; ++t) {
        pool.submit([&] { executed.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStress, ConcurrentParallelForCallersSeeEveryIndex) {
  util::ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kItems = 20'000;
  constexpr std::size_t kWaves = 3;
  std::vector<std::vector<std::uint32_t>> hits(kCallers,
                                               std::vector<std::uint32_t>(kItems, 0));
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (std::size_t wave = 0; wave < kWaves; ++wave) {
        pool.parallel_for(
            kItems,
            [&, c](std::size_t begin, std::size_t end) {
              for (std::size_t i = begin; i < end; ++i) ++hits[c][i];
            },
            /*grain=*/64);
      }
    });
  }
  for (auto& thread : callers) thread.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[c][i], kWaves) << "caller " << c << ", index " << i;
    }
  }
}

TEST(ThreadPoolStress, SharedDefaultPoolFromManyThreads) {
  constexpr std::size_t kCallers = 5;
  constexpr std::size_t kItems = 10'000;
  std::vector<std::atomic<std::size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      util::Parallelism par(0);  // knob 0 -> the shared default pool
      par.parallel_for(
          kItems,
          [&, c](std::size_t begin, std::size_t end) {
            sums[c].fetch_add(end - begin, std::memory_order_relaxed);
          },
          /*grain=*/128);
    });
  }
  for (auto& thread : callers) thread.join();
  for (std::size_t c = 0; c < kCallers; ++c) EXPECT_EQ(sums[c].load(), kItems);
}

TEST(ThreadPoolStress, ExceptionLatchedAcrossOverlappingWavesAndPoolSurvives) {
  util::ThreadPool pool(2);
  // Wave 1: a mix of throwing and healthy tasks; the healthy ones must all
  // run, and wait_idle() must surface (exactly) the first failure.
  std::atomic<std::size_t> healthy{0};
  for (int t = 0; t < 16; ++t) {
    if (t % 4 == 0) {
      pool.submit([] { throw std::runtime_error("wave-1 failure"); });
    } else {
      pool.submit([&] { healthy.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(healthy.load(), 12u);

  // Wave 2: the latch was consumed; a clean wave reports no error.
  for (int t = 0; t < 8; ++t) {
    pool.submit([&] { healthy.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(healthy.load(), 20u);

  // Wave 3: a throwing parallel_for body also latches, and the pool keeps
  // serving afterwards.
  EXPECT_THROW(pool.parallel_for(
                   4096, [](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::logic_error("wave-3 failure");
                   },
                   /*grain=*/64),
               std::logic_error);
  std::atomic<std::size_t> after{0};
  pool.parallel_for(
      4096, [&](std::size_t begin, std::size_t end) {
        after.fetch_add(end - begin, std::memory_order_relaxed);
      },
      /*grain=*/64);
  EXPECT_EQ(after.load(), 4096u);
}

TEST(ParallelismConvention, KnobResolvesAsDocumented) {
  const util::Parallelism sequential(1);
  EXPECT_FALSE(sequential.parallel());
  EXPECT_EQ(sequential.workers(), 1u);

  util::Parallelism shared(0);
  EXPECT_TRUE(shared.parallel());
  EXPECT_EQ(shared.workers(), util::default_pool().thread_count());

  util::Parallelism owned(3);
  EXPECT_TRUE(owned.parallel());
  EXPECT_EQ(owned.workers(), 3u);
}

TEST(ParallelismConvention, SequentialRunsInlineExactlyOnce) {
  util::Parallelism sequential(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  std::size_t covered = 0;
  sequential.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    ++calls;
    covered += end - begin;
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(covered, 100u);
  sequential.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1u) << "n = 0 must not invoke the body";
}

// ---- determinism: byte-identical groups at threads = 1, 2, 8 ---------------

linalg::CsrMatrix determinism_workload() {
  gen::MatrixGenParams params;
  params.roles = 400;
  params.cols = 250;
  params.clustered_fraction = 0.3;
  params.max_cluster_size = 8;
  params.perturb_bits = 1;
  params.ensure_unique_rows = false;
  params.seed = 0xDE7E12;
  return gen::generate_matrix(params).matrix;
}

/// Runs `compute(threads)` at 1/2/8 threads and requires identical groups.
template <typename Compute>
void expect_thread_invariant(const char* what, Compute&& compute) {
  const RoleGroups baseline = compute(std::size_t{1});
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(compute(threads), baseline) << what << " at threads=" << threads;
  }
}

TEST(FinderDeterminism, RoleDietInvariantUnderThreadCount) {
  const linalg::CsrMatrix m = determinism_workload();
  expect_thread_invariant("role-diet find_same (hash)", [&](std::size_t threads) {
    return core::methods::RoleDietGroupFinder({.threads = threads}).find_same(m);
  });
  expect_thread_invariant("role-diet find_same (matrix)", [&](std::size_t threads) {
    return core::methods::RoleDietGroupFinder(
               {.same_strategy =
                    core::methods::RoleDietGroupFinder::SameStrategy::kCooccurrenceMatrix,
                .threads = threads})
        .find_same(m);
  });
  expect_thread_invariant("role-diet find_similar t=2", [&](std::size_t threads) {
    return core::methods::RoleDietGroupFinder({.threads = threads}).find_similar(m, 2);
  });
  expect_thread_invariant("role-diet find_similar_jaccard", [&](std::size_t threads) {
    return core::methods::RoleDietGroupFinder({.threads = threads})
        .find_similar_jaccard(m, 250'000);
  });
}

TEST(FinderDeterminism, DbscanInvariantUnderThreadCount) {
  const linalg::CsrMatrix m = determinism_workload();
  expect_thread_invariant("dbscan find_same", [&](std::size_t threads) {
    return core::methods::DbscanGroupFinder({.threads = threads}).find_same(m);
  });
  expect_thread_invariant("dbscan find_similar t=1", [&](std::size_t threads) {
    return core::methods::DbscanGroupFinder({.threads = threads}).find_similar(m, 1);
  });
}

TEST(FinderDeterminism, MinHashInvariantUnderThreadCount) {
  const linalg::CsrMatrix m = determinism_workload();
  expect_thread_invariant("minhash find_same", [&](std::size_t threads) {
    core::methods::MinHashGroupFinder::Options options;
    options.lsh.threads = threads;
    return core::methods::MinHashGroupFinder(options).find_same(m);
  });
  expect_thread_invariant("minhash find_similar t=1", [&](std::size_t threads) {
    core::methods::MinHashGroupFinder::Options options;
    options.lsh.threads = threads;
    return core::methods::MinHashGroupFinder(options).find_similar(m, 1);
  });
}

TEST(FinderDeterminism, HnswInvariantUnderThreadCount) {
  const linalg::CsrMatrix m = determinism_workload();
  // Serial index build (the default): only the query fan-out parallelizes,
  // and its unions are order-independent.
  expect_thread_invariant("hnsw serial-build find_similar t=1", [&](std::size_t threads) {
    core::methods::HnswGroupFinder::Options options;
    options.threads = threads;
    return core::methods::HnswGroupFinder(options).find_similar(m, 1);
  });
  // Batched build: deterministic in (seed, batch_size), never in threads.
  expect_thread_invariant("hnsw batched-build find_similar t=1", [&](std::size_t threads) {
    core::methods::HnswGroupFinder::Options options;
    options.threads = threads;
    options.build_batch = 64;
    return core::methods::HnswGroupFinder(options).find_similar(m, 1);
  });
}

TEST(FinderDeterminism, BatchedHnswIndexIsIdenticalAcrossThreadCounts) {
  const linalg::CsrMatrix m = determinism_workload();
  const std::vector<std::size_t> selected = core::methods::nonempty_rows(m);
  const linalg::BitMatrix dense = core::methods::densify_rows(m, selected);

  auto build = [&](std::size_t threads) {
    auto index = std::make_unique<cluster::HnswIndex>(dense, cluster::HnswParams{});
    index->add_all_parallel(threads, 32);
    return index;
  };
  const auto baseline = build(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto index = build(threads);
    ASSERT_EQ(index->size(), baseline->size());
    EXPECT_EQ(index->max_level(), baseline->max_level());
    EXPECT_EQ(index->entry_id(), baseline->entry_id());
    for (std::size_t id = 0; id < dense.rows(); ++id) {
      for (int layer = 0; layer <= baseline->max_level(); ++layer) {
        EXPECT_EQ(index->neighbors_of(id, layer), baseline->neighbors_of(id, layer))
            << "node " << id << ", layer " << layer << ", threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace rolediet
