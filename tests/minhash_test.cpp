// Tests for the MinHash/LSH substrate and its group finder.
//
// MinHash lives outside the generic group-finder contract suite on purpose:
// its find_similar recall on *low-Jaccard* pairs is probabilistic by design
// (the S-curve), so expectations here are either deterministic guarantees
// (duplicates, verification exactness) or statistical checks with fixed
// seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/minhash.hpp"
#include "core/framework.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/minhash_lsh.hpp"
#include "core/periodic.hpp"
#include "gen/matrix_generator.hpp"
#include "test_helpers.hpp"

namespace rolediet {
namespace {

using rolediet::testing::csr_from_rows;

// ------------------------------------------------------------- signatures ---

TEST(MinHash, IdenticalSetsHaveIdenticalSignatures) {
  const auto m = csr_from_rows(100, {{1, 5, 9}, {1, 5, 9}, {2, 6}});
  const cluster::MinHashLsh index(m, {});
  EXPECT_DOUBLE_EQ(index.estimate_similarity(0, 1), 1.0);
  EXPECT_LT(index.estimate_similarity(0, 2), 1.0);
}

TEST(MinHash, SimilarityEstimateTracksJaccard) {
  // Two sets with Jaccard similarity 0.5 (overlap 10 of union 20); the
  // 128-slot estimate should land near 0.5.
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
  for (std::uint32_t i = 0; i < 15; ++i) a.push_back(i);
  for (std::uint32_t i = 5; i < 20; ++i) b.push_back(i);
  const auto m = csr_from_rows(30, {a, b});
  const cluster::MinHashLsh index(m, {});
  EXPECT_NEAR(index.estimate_similarity(0, 1), 10.0 / 20.0, 0.15);
}

TEST(MinHash, DisjointSetsEstimateNearZero) {
  const auto m = csr_from_rows(100, {{1, 2, 3, 4, 5}, {50, 51, 52, 53, 54}});
  const cluster::MinHashLsh index(m, {});
  EXPECT_LT(index.estimate_similarity(0, 1), 0.1);
}

TEST(MinHash, EmptyRowSimilaritySemantics) {
  // Empty rows carry the all-sentinel signature, so two empty sets estimate
  // as identical (J(∅, ∅) = 1 by the usual convention) while empty vs
  // non-empty shares no slot: each real element hashes below the sentinel in
  // every one of the 128 slots.
  const auto m = csr_from_rows(50, {{}, {}, {1, 2, 3}});
  const cluster::MinHashLsh index(m, {});
  EXPECT_DOUBLE_EQ(index.estimate_similarity(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(index.estimate_similarity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(index.estimate_similarity(2, 1), 0.0);
  // Empty rows still never become candidates — that invariant is what keeps
  // the sentinel signature from grouping every empty role together.
  for (const auto& [a, b] : index.candidate_pairs()) {
    EXPECT_GE(a, 2u);
    EXPECT_GE(b, 2u);
  }
}

TEST(MinHash, DuplicatesAreAlwaysCandidates) {
  const auto m = csr_from_rows(100, {{1, 5, 9}, {2, 6}, {1, 5, 9}, {40}});
  const cluster::MinHashLsh index(m, {});
  const auto pairs = index.candidate_pairs();
  EXPECT_NE(std::find(pairs.begin(), pairs.end(), std::make_pair(std::size_t{0}, std::size_t{2})),
            pairs.end());
}

TEST(MinHash, EmptyRowsNeverCandidates) {
  const auto m = csr_from_rows(10, {{}, {}, {1, 2}, {1, 2}});
  const cluster::MinHashLsh index(m, {});
  for (const auto& [a, b] : index.candidate_pairs()) {
    EXPECT_NE(a, 0u);
    EXPECT_NE(a, 1u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(b, 1u);
  }
}

TEST(MinHash, CandidatePairsUniqueAndOrdered) {
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 300, .cols = 200, .seed = 9});
  const cluster::MinHashLsh index(g.matrix, {});
  const auto pairs = index.candidate_pairs();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_LT(pairs[i].first, pairs[i].second);
    if (i > 0) {
      EXPECT_LT(pairs[i - 1], pairs[i]);
    }
  }
}

TEST(MinHash, DeterministicInSeed) {
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 200, .cols = 150, .seed = 4});
  const cluster::MinHashLsh a(g.matrix, {.seed = 5});
  const cluster::MinHashLsh b(g.matrix, {.seed = 5});
  EXPECT_EQ(a.candidate_pairs(), b.candidate_pairs());
  const cluster::MinHashLsh c(g.matrix, {.seed = 6});
  // Different hash families produce different candidate sets (usually).
  EXPECT_NE(a.candidate_pairs(), c.candidate_pairs());
}

// ------------------------------------------------------------ group finder ---

// ------------------------------------------------------------- band index ---
//
// MinHashBandIndex must share MinHashLsh's hash family exactly: a fully
// updated band index and a batch LSH build over the same rows and params
// produce the same candidate pair set, for any seed. core/engine.hpp's
// incremental minhash path is sound only because of this equivalence.

TEST(MinHashBandIndex, MatchesBatchLshCandidates) {
  for (std::uint64_t seed : {1234ull, 7ull, 0xFEEDull}) {
    gen::MatrixGenParams params;
    params.roles = 150;
    params.cols = 96;
    params.perturb_bits = 1;
    params.ensure_unique_rows = false;
    params.seed = 0xBA2D + seed;
    const linalg::CsrMatrix m = gen::generate_matrix(params).matrix;
    const linalg::RowStore store(m);

    cluster::MinHashParams mh;
    mh.seed = seed;
    const cluster::MinHashLsh batch(store, mh);
    cluster::MinHashBandIndex live(mh);
    for (std::size_t r = 0; r < m.rows(); ++r) live.update_row(store, r);

    EXPECT_EQ(live.candidate_pairs(), batch.candidate_pairs()) << "seed " << seed;
  }
}

TEST(MinHashBandIndex, UpdateRowTracksMutations) {
  const auto before = csr_from_rows(100, {{1, 5, 9}, {1, 5, 9}, {2, 6}, {}});
  const auto after = csr_from_rows(100, {{1, 5, 9}, {2, 6}, {2, 6}, {1, 5, 9}});
  cluster::MinHashParams mh;
  cluster::MinHashBandIndex live(mh);
  {
    const linalg::RowStore store(before);
    for (std::size_t r = 0; r < before.rows(); ++r) live.update_row(store, r);
  }
  EXPECT_EQ(live.partners(0), std::vector<std::uint32_t>{1});
  EXPECT_TRUE(live.partners(3).empty());  // empty rows are unbanded

  // Mutate rows 1..3 and re-sign only those; the index must now agree with a
  // from-scratch batch build of the new contents.
  const linalg::RowStore store(after);
  for (std::size_t r = 1; r < after.rows(); ++r) live.update_row(store, r);
  EXPECT_EQ(live.partners(0), std::vector<std::uint32_t>{3});
  EXPECT_EQ(live.partners(1), std::vector<std::uint32_t>{2});
  EXPECT_EQ(live.candidate_pairs(), cluster::MinHashLsh(store, mh).candidate_pairs());
}

TEST(MinHashBandIndex, RemoveRowDropsAllCandidacy) {
  const auto m = csr_from_rows(50, {{1, 2}, {1, 2}, {1, 2}});
  cluster::MinHashBandIndex live({});
  const linalg::RowStore store(m);
  for (std::size_t r = 0; r < m.rows(); ++r) live.update_row(store, r);
  ASSERT_EQ(live.candidate_pairs().size(), 3u);  // all three pairs
  live.remove_row(1);
  const auto pairs = live.candidate_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::size_t, std::size_t>{0, 2}));
  live.remove_row(1);  // idempotent
  EXPECT_EQ(live.candidate_pairs().size(), 1u);
}

TEST(MinHashFinder, FindSameIsExactOnPlantedDuplicates) {
  // Deterministic guarantee: identical signatures -> always candidates ->
  // exact verification. Must match the role-diet grouping exactly.
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 800, .cols = 400, .seed = 21});
  const core::methods::MinHashGroupFinder minhash;
  const core::methods::RoleDietGroupFinder exact;
  EXPECT_EQ(minhash.find_same(g.matrix), exact.find_same(g.matrix));
}

TEST(MinHashFinder, FindSameOnFigure1) {
  const auto d = rolediet::testing::figure1_dataset();
  const core::methods::MinHashGroupFinder finder;
  const core::RoleGroups by_users = finder.find_same(d.ruam());
  ASSERT_EQ(by_users.group_count(), 1u);
  EXPECT_EQ(by_users.groups[0], (std::vector<std::size_t>{1, 3}));
}

TEST(MinHashFinder, VerificationGivesPerfectPrecision) {
  const gen::GeneratedMatrix g = gen::generate_matrix(
      {.roles = 500, .cols = 300, .perturb_bits = 1, .seed = 33});
  const core::methods::MinHashGroupFinder minhash;
  const core::methods::RoleDietGroupFinder exact;
  const core::RoleGroups truth = exact.find_similar(g.matrix, 1);
  const core::RoleGroups found = minhash.find_similar(g.matrix, 1);
  EXPECT_DOUBLE_EQ(core::pairwise_precision(truth, found), 1.0);
  // Perturbed clusters have high overlap, so recall should be strong here.
  EXPECT_GT(core::pairwise_recall(truth, found), 0.8);
}

TEST(MinHashFinder, TinyDisjointPairsCovered) {
  // {1} vs {2} at t = 2: zero overlap, invisible to LSH, caught by the
  // norm-sorted pass.
  const auto m = csr_from_rows(20, {{1}, {2}, {10, 11, 12, 13}});
  const core::methods::MinHashGroupFinder finder;
  const core::RoleGroups groups = finder.find_similar(m, 2);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST(MinHashFinder, JaccardModeFindsHighOverlapPairs) {
  // 90% overlap pair: well above the default banding threshold (~0.42).
  std::vector<std::uint32_t> a;
  std::vector<std::uint32_t> b;
  for (std::uint32_t i = 0; i < 10; ++i) a.push_back(i);
  for (std::uint32_t i = 0; i < 9; ++i) b.push_back(i);
  b.push_back(30);
  const auto m = csr_from_rows(40, {a, b, {20, 21}});
  const core::methods::MinHashGroupFinder finder;
  const core::RoleGroups groups = finder.find_similar_jaccard(m, 200'000);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST(MinHashFinder, AuditFactoryIntegration) {
  const auto d = rolediet::testing::figure1_dataset();
  const core::AuditReport report = core::audit(d, {.method = core::Method::kApproxMinhash});
  EXPECT_EQ(report.method_name, "approx-minhash");
  EXPECT_EQ(report.same_user_groups.group_count(), 1u);
  EXPECT_EQ(report.same_permission_groups.group_count(), 1u);
}

TEST(MinHashFinder, BandingCurveSanity) {
  // With b bands of r rows, P(candidate) = 1 - (1 - s^r)^b. At the default
  // (32, 4) a similarity-0.8 pair is found with p ~ 1 - (1-0.41)^32 ~ 1.
  // Generate 40 planted pairs at ~0.8 overlap and expect near-total recall.
  std::vector<std::vector<std::uint32_t>> rows;
  util::Xoshiro256 rng(55);
  for (int p = 0; p < 40; ++p) {
    std::vector<std::uint32_t> base;
    for (int k = 0; k < 10; ++k) base.push_back(static_cast<std::uint32_t>(rng.bounded(5000)));
    std::sort(base.begin(), base.end());
    base.erase(std::unique(base.begin(), base.end()), base.end());
    std::vector<std::uint32_t> twin = base;
    twin.back() = static_cast<std::uint32_t>(5000 + p);  // ~0.8 Jaccard
    rows.push_back(base);
    rows.push_back(twin);
  }
  const auto m = csr_from_rows(6000, rows);
  const cluster::MinHashLsh index(m, {});
  const auto pairs = index.candidate_pairs();
  std::size_t found = 0;
  for (std::size_t p = 0; p < 40; ++p) {
    if (std::find(pairs.begin(), pairs.end(), std::make_pair(2 * p, 2 * p + 1)) != pairs.end())
      ++found;
  }
  EXPECT_GE(found, 36u) << "banding recall collapsed: " << found << "/40";
}

}  // namespace
}  // namespace rolediet
