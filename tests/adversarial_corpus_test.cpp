// Adversarial stress corpus: every gen/adversarial scenario through every
// detection method, backend, and thread count.
//
// The corpus is built to break specific layers: similarity walls straddle
// the Hamming/Jaccard grouping thresholds, hub permissions crowd candidate
// generation, clone chains maximize transitive-merge depth, hostile names
// attack CSV/journal/WAL framing, and standalone storms drive the empty-row
// paths. For each scenario the suite asserts (a) every method/backend/thread
// configuration agrees with the serial dense reference for that method,
// (b) replaying the dataset as a mutation delta through a fresh AuditEngine
// is byte-identical to the cold batch audit (kApproxHnsw exempt per its
// contract), and (c) the scenario's planted structure is detected exactly
// (exact methods pin group membership; serialization round-trips pin the
// hostile names).
//
// Case names end in T1/T8 so the sanitizer jobs can select thread counts
// with --gtest_filter.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "gen/adversarial.hpp"
#include "io/csv.hpp"
#include "io/journal.hpp"
#include "store/engine_store.hpp"
#include "test_helpers.hpp"

namespace rolediet {
namespace {

using gen::AdversarialParams;
using gen::AdversarialScenario;
using rolediet::testing::ScopedTempDir;

AdversarialParams small_params() {
  AdversarialParams params;
  params.scale = 24;
  params.similarity_threshold = 2;
  params.jaccard_dissimilarity = 0.3;
  return params;
}

/// Findings rendering blind to wall-clock fields, work counters, the echoed
/// options, and the engine version — what must agree across configurations.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  report.engine_version = 0;
  report.options = core::AuditOptions{};
  return report.to_text();
}

/// Role id of the unique role with this name.
core::Id role_id(const core::RbacDataset& d, const std::string& name) {
  for (std::size_t r = 0; r < d.num_roles(); ++r) {
    if (d.role_name(static_cast<core::Id>(r)) == name) return static_cast<core::Id>(r);
  }
  ADD_FAILURE() << "no role named " << name;
  return 0;
}

/// Group index of each role in a RoleGroups partition (nullopt: ungrouped).
std::optional<std::size_t> group_of(const core::RoleGroups& groups, core::Id role) {
  for (std::size_t g = 0; g < groups.groups.size(); ++g) {
    for (std::size_t member : groups.groups[g]) {
      if (member == role) return g;
    }
  }
  return std::nullopt;
}

struct CorpusCase {
  core::Method method;
  linalg::RowBackend backend;
  std::size_t threads;
};

std::string case_name(const ::testing::TestParamInfo<CorpusCase>& info) {
  const CorpusCase& c = info.param;
  std::string name;
  switch (c.method) {
    case core::Method::kExactDbscan: name = "Exact"; break;
    case core::Method::kApproxHnsw: name = "Hnsw"; break;
    case core::Method::kApproxMinhash: name = "Minhash"; break;
    case core::Method::kRoleDiet: name = "RoleDiet"; break;
  }
  name += c.backend == linalg::RowBackend::kDense ? "Dense" : "Sparse";
  name += "T" + std::to_string(c.threads);
  return name;
}

std::vector<CorpusCase> all_cases() {
  std::vector<CorpusCase> cases;
  for (core::Method method : {core::Method::kExactDbscan, core::Method::kApproxHnsw,
                              core::Method::kApproxMinhash, core::Method::kRoleDiet}) {
    for (linalg::RowBackend backend : {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        cases.push_back({method, backend, threads});
      }
    }
  }
  return cases;
}

core::AuditOptions options_for(const CorpusCase& c) {
  core::AuditOptions options;
  options.method = c.method;
  options.detect_similar = true;
  options.similarity_threshold = small_params().similarity_threshold;
  options.threads = c.threads;
  options.backend = c.backend;
  return options;
}

class AdversarialCorpusTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(AdversarialCorpusTest, EveryScenarioAuditsConsistentlyAndReplaysThroughTheEngine) {
  const core::AuditOptions options = options_for(GetParam());
  for (AdversarialScenario scenario : gen::kAllAdversarialScenarios) {
    SCOPED_TRACE(std::string(gen::to_string(scenario)));
    const core::RbacDataset dataset = gen::make_adversarial(scenario, small_params());
    const core::AuditReport batch = core::audit(dataset, options);

    // (a) This configuration agrees with the serial dense reference of the
    // same method — thread count and row backend never change findings.
    core::AuditOptions reference_options = options;
    reference_options.threads = 1;
    reference_options.backend = linalg::RowBackend::kDense;
    EXPECT_EQ(findings_text(batch), findings_text(core::audit(dataset, reference_options)));

    // (b) Replaying the dataset as a from-empty mutation delta through the
    // engine lands on the identical findings (and the identical dataset
    // digest, proving the replay reconstructed the same ids).
    if (options.method != core::Method::kApproxHnsw) {
      core::AuditEngine engine(core::RbacDataset{}, options);
      engine.apply(gen::dataset_as_delta(dataset));
      EXPECT_EQ(findings_text(engine.reaudit()), findings_text(batch));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, AdversarialCorpusTest, ::testing::ValuesIn(all_cases()),
                         case_name);

// ---------------------------------------------------------------------------
// Scenario contracts, pinned with the exact methods.

core::AuditOptions exact_options(core::Method method = core::Method::kRoleDiet) {
  core::AuditOptions options;
  options.method = method;
  options.detect_similar = true;
  options.similarity_threshold = small_params().similarity_threshold;
  return options;
}

TEST(SimilarityWallTest, HammingBandsGroupExactlyBelowAndAtTheThreshold) {
  const AdversarialParams params = small_params();
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kSimilarityWall, params);
  for (core::Method method : {core::Method::kRoleDiet, core::Method::kExactDbscan}) {
    SCOPED_TRACE(std::string(core::to_string(method)));
    const core::AuditReport report = core::audit(dataset, exact_options(method));
    for (std::size_t i = 0; i < params.scale; ++i) {
      const char* const band = i % 3 == 0 ? "lo" : i % 3 == 1 ? "at" : "hi";
      const std::string stem = "wall-h" + std::string(band) + "-" + std::to_string(i);
      SCOPED_TRACE(stem);
      const auto a = group_of(report.similar_user_groups, role_id(dataset, stem + "-a"));
      const auto b = group_of(report.similar_user_groups, role_id(dataset, stem + "-b"));
      if (i % 3 == 2) {
        // Distance t+1: above the wall, and no transitive bridge exists.
        EXPECT_FALSE(a.has_value());
        EXPECT_FALSE(b.has_value());
      } else {
        ASSERT_TRUE(a.has_value());
        EXPECT_EQ(a, b);
      }
    }
  }
}

TEST(SimilarityWallTest, JaccardBandsGroupExactlyBelowAndAtTheWall) {
  const AdversarialParams params = small_params();
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kSimilarityWall, params);
  core::AuditOptions options = exact_options();
  options.similarity_mode = core::SimilarityMode::kJaccard;
  options.jaccard_dissimilarity = params.jaccard_dissimilarity;
  const core::AuditReport report = core::audit(dataset, options);
  for (std::size_t i = 0; i < params.scale; ++i) {
    const char* const band = i % 3 == 0 ? "lo" : i % 3 == 1 ? "at" : "hi";
    const std::string stem = "wall-j" + std::string(band) + "-" + std::to_string(i);
    SCOPED_TRACE(stem);
    const auto a = group_of(report.similar_user_groups, role_id(dataset, stem + "-a"));
    const auto b = group_of(report.similar_user_groups, role_id(dataset, stem + "-b"));
    if (i % 3 == 2) {
      EXPECT_FALSE(a.has_value());
      EXPECT_FALSE(b.has_value());
    } else {
      ASSERT_TRUE(a.has_value());
      EXPECT_EQ(a, b);
    }
  }
}

TEST(CloneChainsTest, EachChainIsOneTransitiveGroupDespiteDistantEndpoints) {
  const AdversarialParams params = small_params();
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kCloneChains, params);
  const std::size_t chains = std::max<std::size_t>(1, params.scale / 16);
  const std::size_t length = std::max<std::size_t>(3, params.scale / 4);
  for (core::Method method : {core::Method::kRoleDiet, core::Method::kExactDbscan}) {
    SCOPED_TRACE(std::string(core::to_string(method)));
    core::AuditOptions options = exact_options(method);
    options.similarity_threshold = 1;  // consecutive links differ by one user
    const core::AuditReport report = core::audit(dataset, options);
    // No two chain links are identical, so the user axis has no duplicates.
    EXPECT_TRUE(report.same_user_groups.groups.empty());
    for (std::size_t c = 0; c < chains; ++c) {
      std::optional<std::size_t> expected;
      for (std::size_t k = 0; k < length; ++k) {
        const std::string name = "chain" + std::to_string(c) + "-" + std::to_string(k);
        const auto g = group_of(report.similar_user_groups, role_id(dataset, name));
        ASSERT_TRUE(g.has_value()) << name;
        if (k == 0) {
          expected = g;
        } else {
          EXPECT_EQ(g, expected) << name;
        }
      }
    }
  }
}

TEST(HostileNamesTest, PlantedFindingsSurviveTheHostileNames) {
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kHostileNames, small_params());
  core::AuditOptions options = exact_options();
  options.similarity_threshold = 1;
  const core::AuditReport report = core::audit(dataset, options);

  const auto dup_a = group_of(report.same_user_groups, role_id(dataset, "dup\"a\",role"));
  const auto dup_b = group_of(report.same_user_groups, role_id(dataset, "dup\nb,role"));
  ASSERT_TRUE(dup_a.has_value());
  EXPECT_EQ(dup_a, dup_b);

  const auto sim_a = group_of(report.similar_user_groups, role_id(dataset, "sim🧨a"));
  const auto sim_b = group_of(report.similar_user_groups, role_id(dataset, "sim🧨b"));
  ASSERT_TRUE(sim_a.has_value());
  EXPECT_EQ(sim_a, sim_b);
}

TEST(HostileNamesTest, CsvAndJournalSerializationRoundTrip) {
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kHostileNames, small_params());

  // Dataset CSV round-trip: every hostile name survives save/load verbatim.
  ScopedTempDir root("hostile");
  io::save_dataset(dataset, root.file("csv"));
  const core::RbacDataset loaded = io::load_dataset(root.file("csv"));
  ASSERT_EQ(loaded.num_users(), dataset.num_users());
  ASSERT_EQ(loaded.num_roles(), dataset.num_roles());
  ASSERT_EQ(loaded.num_permissions(), dataset.num_permissions());
  for (std::size_t u = 0; u < dataset.num_users(); ++u)
    EXPECT_EQ(loaded.user_name(static_cast<core::Id>(u)),
              dataset.user_name(static_cast<core::Id>(u)));
  for (std::size_t r = 0; r < dataset.num_roles(); ++r)
    EXPECT_EQ(loaded.role_name(static_cast<core::Id>(r)),
              dataset.role_name(static_cast<core::Id>(r)));

  // Journal round-trip: the from-empty delta reads back mutation-for-
  // mutation, quotes, CR/LF, emoji, tag look-alikes and all.
  const core::RbacDelta delta = gen::dataset_as_delta(dataset);
  std::ostringstream out;
  io::write_journal(out, delta);
  std::istringstream in(out.str());
  const core::RbacDelta parsed = io::read_journal(in);
  EXPECT_EQ(parsed, delta);
}

TEST(HostileNamesTest, ReplaysThroughTheDurableStoreAndRecovers) {
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kHostileNames, small_params());
  const core::AuditOptions options = exact_options();
  ScopedTempDir root("hostile_store");
  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;

  std::string live_findings;
  {
    store::EngineStore durable = store::EngineStore::create(root.file("store"),
                                                            core::RbacDataset{}, options,
                                                            store_options);
    durable.apply(gen::dataset_as_delta(dataset));
    (void)durable.checkpoint();  // hostile names through the snapshot writer
    live_findings = findings_text(durable.engine().reaudit());
  }
  store::EngineStore recovered =
      store::EngineStore::open(root.file("store"), options, store_options);
  EXPECT_EQ(findings_text(recovered.engine().reaudit()), live_findings);
  EXPECT_EQ(findings_text(recovered.engine().reaudit()),
            findings_text(core::audit(dataset, options)));
}

TEST(HubPermissionsTest, HubsTouchMostRolesAndFindingsStayBackendInvariant) {
  const AdversarialParams params = small_params();
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kHubPermissions, params);
  const std::size_t roles = dataset.num_roles();
  ASSERT_EQ(roles, params.scale * 2);

  // The hub property itself: each hub permission is granted to >50% of all
  // roles (the crowded-candidate stress the scenario exists to create).
  for (std::size_t h = 0; h < 4; ++h) {
    const core::Id hub = h;  // hub perms are interned first
    ASSERT_EQ(dataset.permission_name(hub), "hub-perm" + std::to_string(h));
    std::size_t granted = 0;
    for (std::size_t r = 0; r < roles; ++r) {
      for (std::uint32_t p : dataset.rpam().row(r)) {
        if (p == hub) ++granted;
      }
    }
    EXPECT_GT(granted * 2, roles) << "hub-perm" << h;
  }

  const core::AuditReport dense = core::audit(dataset, exact_options());
  core::AuditOptions sparse_options = exact_options();
  sparse_options.backend = linalg::RowBackend::kSparse;
  sparse_options.threads = 8;
  EXPECT_EQ(findings_text(dense), findings_text(core::audit(dataset, sparse_options)));
}

TEST(StandaloneStormTest, StructuralCountsMatchTheGeneratorContract) {
  const AdversarialParams params = small_params();
  const core::RbacDataset dataset =
      gen::make_adversarial(AdversarialScenario::kStandaloneStorm, params);
  const core::AuditReport report = core::audit(dataset, exact_options());
  const std::size_t s = params.scale;
  EXPECT_EQ(report.structural.standalone_users.size(), s);
  EXPECT_EQ(report.structural.standalone_permissions.size(), s);
  EXPECT_EQ(report.structural.standalone_roles.size(), s);
  EXPECT_EQ(report.structural.roles_without_permissions.size(), s / 2);
  EXPECT_EQ(report.structural.roles_without_users.size(), s / 2);
  // Every single* role has exactly one user and one permission; users-only /
  // perms-only roles can coincidentally have one edge too, hence >=.
  EXPECT_GE(report.structural.single_user_roles.size(), s / 4);
  EXPECT_GE(report.structural.single_permission_roles.size(), s / 4);
}

}  // namespace
}  // namespace rolediet
