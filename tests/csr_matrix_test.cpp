// Unit tests for the sparse CSR matrix and dense<->sparse conversions.
#include <gtest/gtest.h>

#include <stdexcept>

#include "linalg/convert.hpp"
#include "linalg/csr_matrix.hpp"

namespace rolediet::linalg {
namespace {

CsrMatrix sample() {
  // 4x6:
  //   row 0: {1, 3, 5}
  //   row 1: {}               (empty role)
  //   row 2: {1, 3, 5}        (duplicate of row 0)
  //   row 3: {0, 1}
  return CsrMatrix::from_pairs(
      4, 6, {{0, 3}, {0, 1}, {0, 5}, {2, 5}, {2, 1}, {2, 3}, {3, 0}, {3, 1}});
}

TEST(CsrMatrix, DefaultIsEmpty) {
  const CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(CsrMatrix, FromPairsSortsWithinRows) {
  const CsrMatrix m = sample();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 6u);
  EXPECT_EQ(m.nnz(), 8u);
  const auto r0 = m.row(0);
  ASSERT_EQ(r0.size(), 3u);
  EXPECT_EQ(r0[0], 1u);
  EXPECT_EQ(r0[1], 3u);
  EXPECT_EQ(r0[2], 5u);
  EXPECT_EQ(m.row_size(1), 0u);
}

TEST(CsrMatrix, FromPairsCollapsesDuplicates) {
  const CsrMatrix m = CsrMatrix::from_pairs(1, 4, {{0, 2}, {0, 2}, {0, 2}, {0, 1}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.row_size(0), 2u);
}

TEST(CsrMatrix, FromPairsRejectsOutOfRange) {
  EXPECT_THROW(CsrMatrix::from_pairs(2, 2, {{2, 0}}), std::out_of_range);
  EXPECT_THROW(CsrMatrix::from_pairs(2, 2, {{0, 2}}), std::out_of_range);
}

TEST(CsrMatrix, Get) {
  const CsrMatrix m = sample();
  EXPECT_TRUE(m.get(0, 3));
  EXPECT_FALSE(m.get(0, 2));
  EXPECT_FALSE(m.get(1, 0));
  EXPECT_TRUE(m.get(3, 0));
}

TEST(CsrMatrix, RowIntersection) {
  const CsrMatrix m = sample();
  EXPECT_EQ(m.row_intersection(0, 2), 3u);  // identical rows
  EXPECT_EQ(m.row_intersection(0, 3), 1u);  // share column 1
  EXPECT_EQ(m.row_intersection(0, 1), 0u);  // empty row
}

TEST(CsrMatrix, RowHammingViaSetIdentity) {
  const CsrMatrix m = sample();
  EXPECT_EQ(m.row_hamming(0, 2), 0u);
  EXPECT_EQ(m.row_hamming(0, 3), 3u + 2u - 2u);  // |A|+|B|-2g = 3
  EXPECT_EQ(m.row_hamming(0, 1), 3u);            // vs empty row
}

TEST(CsrMatrix, RowsEqual) {
  const CsrMatrix m = sample();
  EXPECT_TRUE(m.rows_equal(0, 2));
  EXPECT_FALSE(m.rows_equal(0, 3));
  EXPECT_TRUE(m.rows_equal(1, 1));
}

TEST(CsrMatrix, RowHashMatchesEquality) {
  const CsrMatrix m = sample();
  EXPECT_EQ(m.row_hash(0), m.row_hash(2));
  EXPECT_NE(m.row_hash(0), m.row_hash(3));
}

TEST(CsrMatrix, ColumnSums) {
  const CsrMatrix m = sample();
  const auto sums = m.column_sums();
  EXPECT_EQ(sums, (std::vector<std::size_t>{1, 3, 0, 2, 0, 2}));
}

TEST(CsrMatrix, RowSums) {
  const CsrMatrix m = sample();
  EXPECT_EQ(m.row_sums(), (std::vector<std::size_t>{3, 0, 3, 2}));
}

TEST(CsrMatrix, TransposeShapeAndContent) {
  const CsrMatrix m = sample();
  const CsrMatrix t = m.transpose();
  EXPECT_EQ(t.rows(), 6u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.nnz(), m.nnz());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(m.get(r, c), t.get(c, r)) << "(" << r << ", " << c << ")";
    }
  }
}

TEST(CsrMatrix, TransposeRowsAreSorted) {
  const CsrMatrix t = sample().transpose();
  for (std::size_t r = 0; r < t.rows(); ++r) {
    const auto row = t.row(r);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST(CsrMatrix, DoubleTransposeIsIdentity) {
  const CsrMatrix m = sample();
  EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(CsrMatrix, EmptyMatrixTranspose) {
  const CsrMatrix m(3, 5);
  const CsrMatrix t = m.transpose();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.nnz(), 0u);
}

// ---------------------------------------------------------- conversions ---

TEST(Convert, DenseRoundTrip) {
  const CsrMatrix m = sample();
  const BitMatrix dense = to_dense(m);
  EXPECT_EQ(dense.rows(), m.rows());
  EXPECT_EQ(dense.cols(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(dense.get(r, c), m.get(r, c));
    }
  }
  EXPECT_EQ(to_sparse(dense), m);
}

TEST(Convert, WideMatrixRoundTrip) {
  // Columns spanning several words exercise the bit packing.
  CsrMatrix m = CsrMatrix::from_pairs(2, 300, {{0, 0}, {0, 63}, {0, 64}, {0, 299}, {1, 128}});
  const BitMatrix dense = to_dense(m);
  EXPECT_TRUE(dense.get(0, 299));
  EXPECT_TRUE(dense.get(1, 128));
  EXPECT_EQ(dense.row_popcount(0), 4u);
  EXPECT_EQ(to_sparse(dense), m);
}

TEST(Convert, EmptyMatrices) {
  const CsrMatrix m(0, 0);
  EXPECT_EQ(to_dense(m).rows(), 0u);
  const BitMatrix dense(4, 10);
  const CsrMatrix sparse = to_sparse(dense);
  EXPECT_EQ(sparse.rows(), 4u);
  EXPECT_EQ(sparse.nnz(), 0u);
}

}  // namespace
}  // namespace rolediet::linalg
