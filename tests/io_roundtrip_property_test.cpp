// Round-trip property tests for the CSV and binary dataset formats over
// hostile entity names (commas, quotes, CR/LF, empty, UTF-8), plus the
// record reader and strict-parser rejections and a golden-bytes check that
// the binary format is little-endian on disk.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/churn.hpp"
#include "io/binary.hpp"
#include "io/csv.hpp"
#include "io/groups_io.hpp"
#include "io/journal.hpp"
#include "test_helpers.hpp"

namespace rolediet::io {
namespace {

namespace fs = std::filesystem;

/// Shared RAII temp dir (test_helpers.hpp), tagged for this suite.
class TempDir : public testing::ScopedTempDir {
 public:
  TempDir() : ScopedTempDir("rt") {}
};

/// Names that stress every quoting path: separators, quotes, line breaks in
/// all flavours, emptiness, whitespace, and multi-byte UTF-8.
const std::vector<std::string>& hostile_names() {
  static const std::vector<std::string> names = {
      "plain",
      "comma, inside",
      "say \"hi\"",
      "\"leading quote",
      "multi\nline",
      "crlf\r\nline",
      "bare\rcarriage",
      "",
      "  padded  ",
      ",",
      "\n",
      "\"",
      "na\xC3\xAFve \xE5\x90\x8D\xE5\x89\x8D \xF0\x9F\x9A\x80",
  };
  return names;
}

/// Dataset using every hostile name as a user, role, and permission, with a
/// ring of edges so the matrices are non-trivial.
core::RbacDataset hostile_dataset() {
  core::RbacDataset d;
  const auto& names = hostile_names();
  for (const std::string& n : names) d.add_user("u:" + n);
  for (const std::string& n : names) d.add_role("r:" + n);
  for (const std::string& n : names) d.add_permission("p:" + n);
  // Truly empty names (the prefixed list above never produces one).
  d.add_user("");
  d.add_role("");
  d.add_permission("");
  const auto count = static_cast<core::Id>(names.size());
  for (core::Id i = 0; i < count; ++i) {
    d.assign_user(i, (i + 1) % count);
    d.grant_permission(i, (i * 3 + 2) % count);
  }
  return d;
}

void expect_same_dataset(const core::RbacDataset& loaded, const core::RbacDataset& original) {
  ASSERT_EQ(loaded.num_users(), original.num_users());
  ASSERT_EQ(loaded.num_roles(), original.num_roles());
  ASSERT_EQ(loaded.num_permissions(), original.num_permissions());
  for (std::size_t i = 0; i < original.num_users(); ++i)
    EXPECT_EQ(loaded.user_name(static_cast<core::Id>(i)),
              original.user_name(static_cast<core::Id>(i)));
  for (std::size_t i = 0; i < original.num_roles(); ++i)
    EXPECT_EQ(loaded.role_name(static_cast<core::Id>(i)),
              original.role_name(static_cast<core::Id>(i)));
  for (std::size_t i = 0; i < original.num_permissions(); ++i)
    EXPECT_EQ(loaded.permission_name(static_cast<core::Id>(i)),
              original.permission_name(static_cast<core::Id>(i)));
  EXPECT_EQ(loaded.ruam(), original.ruam());
  EXPECT_EQ(loaded.rpam(), original.rpam());
}

// ------------------------------------------------------------- round trips ---

TEST(RoundTrip, CsvSurvivesHostileNames) {
  const core::RbacDataset original = hostile_dataset();
  TempDir dir;
  save_dataset(original, dir.path());
  expect_same_dataset(load_dataset(dir.path()), original);
}

TEST(RoundTrip, BinarySurvivesHostileNames) {
  const core::RbacDataset original = hostile_dataset();
  TempDir dir;
  save_dataset_binary(original, dir.path() / "data.rdb");
  expect_same_dataset(load_dataset_binary(dir.path() / "data.rdb"), original);
}

TEST(RoundTrip, CsvThenBinaryThenCsvIsStable) {
  const core::RbacDataset original = hostile_dataset();
  TempDir dir;
  save_dataset(original, dir.path() / "csv1");
  const core::RbacDataset a = load_dataset(dir.path() / "csv1");
  save_dataset_binary(a, dir.path() / "data.rdb");
  const core::RbacDataset b = load_dataset_binary(dir.path() / "data.rdb");
  save_dataset(b, dir.path() / "csv2");
  expect_same_dataset(load_dataset(dir.path() / "csv2"), original);
}

TEST(RoundTrip, GroupsWithEmbeddedNewlinesInRoleNames) {
  core::RbacDataset d;
  d.add_role("multi\nline role");
  d.add_role("second\r\nrole");
  d.add_role("plain");
  core::RoleGroups groups;
  groups.groups = {{0, 1}};
  groups.normalize();
  TempDir dir;
  save_groups(groups, d, dir.path() / "state.csv");
  EXPECT_EQ(load_groups(d, dir.path() / "state.csv"), groups);
}

// ------------------------------------------------------------ record reader ---

TEST(ReadCsvRecord, JoinsQuotedMultiLineRecords) {
  std::istringstream in("a,b\n\"x\ny\",z\nlast\n");
  std::string record;
  std::size_t lines = 0;

  ASSERT_TRUE(read_csv_record(in, record, lines));
  EXPECT_EQ(record, "a,b");
  EXPECT_EQ(lines, 1u);

  ASSERT_TRUE(read_csv_record(in, record, lines));
  EXPECT_EQ(record, "\"x\ny\",z");
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(parse_csv_line(record), (std::vector<std::string>{"x\ny", "z"}));

  ASSERT_TRUE(read_csv_record(in, record, lines));
  EXPECT_EQ(record, "last");
  EXPECT_FALSE(read_csv_record(in, record, lines));
}

TEST(ReadCsvRecord, EscapedQuotesDoNotOpenContinuation) {
  std::istringstream in("\"say \"\"hi\"\"\",x\nnext\n");
  std::string record;
  std::size_t lines = 0;
  ASSERT_TRUE(read_csv_record(in, record, lines));
  EXPECT_EQ(lines, 1u);
  EXPECT_EQ(parse_csv_line(record), (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(ReadCsvRecord, UnterminatedQuoteAtEofIsReportedByParser) {
  std::istringstream in("\"open\nstill open");
  std::string record;
  std::size_t lines = 0;
  ASSERT_TRUE(read_csv_record(in, record, lines));
  EXPECT_EQ(lines, 2u);  // consumed everything hunting for the close quote
  EXPECT_THROW(parse_csv_line(record), CsvError);
}

// ------------------------------------------------------------ strict parser ---

TEST(CsvStrict, QuoteOpeningMidFieldRejected) {
  EXPECT_THROW(parse_csv_line("a\"b,c"), CsvError);
  EXPECT_THROW(parse_csv_line("x,mid\"dle"), CsvError);
  try {
    parse_csv_line("a\"b");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find("mid-field"), std::string::npos) << e.what();
  }
}

TEST(CsvStrict, ContentAfterClosingQuoteRejected) {
  EXPECT_THROW(parse_csv_line("\"a\"b"), CsvError);
  EXPECT_THROW(parse_csv_line("\"a\" ,b"), CsvError);
  // A comma or end-of-record right after the close quote stays legal.
  EXPECT_EQ(parse_csv_line("\"a\",b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parse_csv_line("\"a\"\r"), (std::vector<std::string>{"a"}));
}

// ---------------------------------------------------------- journal streams ---

/// Compact churn calendar whose shape varies with the seed, so the property
/// runs cover different phase mixes (and always at least one layoff,
/// onboarding wave, and reorg window).
gen::ChurnConfig stream_config(std::uint64_t seed) {
  gen::ChurnConfig config;
  config.seed = seed;
  config.initial_employees = 30 + seed % 50;
  config.years = 1 + seed % 2;
  config.days_per_year = 60 + (seed % 3) * 30;
  config.daily_hire_rate = 0.005;
  config.daily_attrition_rate = 0.004;
  config.daily_transfer_rate = 0.005;
  config.daily_sprawl_rate = 0.02;
  config.reorg_burst_days = 5;
  config.reorg_intensity = 0.1;
  config.onboarding_wave_fraction = 0.08;
  config.layoff_fraction = 0.1;
  return config;
}

TEST(JournalStream, GeneratedChurnStreamsRoundTripAcrossSeeds) {
  for (std::uint64_t seed : {1ULL, 42ULL, 1337ULL, 0xDEADBEEFULL, 7'777'777ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const gen::ChurnConfig config = stream_config(seed);

    std::ostringstream out;
    const gen::ChurnStats stats = gen::write_churn_journal(out, config);

    // Reference stream: an independent simulator run with the same config.
    gen::ChurnSimulator sim(config);
    std::vector<core::Mutation> expected;
    while (!sim.done()) {
      core::RbacDelta day = sim.next_day();
      for (core::Mutation& m : day.mutations) expected.push_back(std::move(m));
    }
    ASSERT_EQ(stats.mutations, expected.size());
    ASSERT_GT(expected.size(), 0u);

    std::istringstream in(out.str());
    JournalReader reader(in);
    core::Mutation mutation;
    std::size_t index = 0;
    while (reader.next(mutation)) {
      ASSERT_LT(index, expected.size());
      ASSERT_EQ(mutation, expected[index]) << "record " << index + 1;
      ++index;
    }
    EXPECT_EQ(index, expected.size());
    // Churn names never contain line breaks, so records == physical lines.
    EXPECT_EQ(reader.line(), expected.size());
  }
}

TEST(JournalStream, MalformedRecordMidStreamReportsItsOneBasedLine) {
  // Serialize a real churn stream, then wound one record at a known line.
  std::ostringstream out;
  (void)gen::write_churn_journal(out, stream_config(3));
  std::vector<std::string> lines;
  {
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 20u);

  const std::vector<std::string> wounds{
      "frobnicate,role0,emp0",  // unknown tag
      "assign-user,role0",      // missing field
      "add-user,a,b,c",         // excess fields
      "\"torn quote,x",         // unterminated quote
  };
  for (std::size_t w = 0; w < wounds.size(); ++w) {
    SCOPED_TRACE(wounds[w]);
    const std::size_t at = 10 + w * 3;  // 0-based index -> 1-based line at+1
    std::string text;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      text += i == at ? wounds[w] : lines[i];
      text += '\n';
    }
    std::istringstream in(text);
    JournalReader reader(in);
    core::Mutation mutation;
    for (std::size_t i = 0; i < at; ++i) ASSERT_TRUE(reader.next(mutation)) << "record " << i;
    try {
      reader.next(mutation);
      FAIL() << "expected CsvError at line " << at + 1;
    } catch (const CsvError& e) {
      EXPECT_NE(std::string(e.what()).find("journal line " + std::to_string(at + 1)),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(JournalStream, LineNumbersCountPhysicalLinesThroughMultiLineNames) {
  // A quoted name spanning three physical lines shifts every later line
  // number; the reader must report the *physical* line of the bad record.
  core::RbacDelta delta;
  delta.add_user("multi\nline\nuser").assign_user("role", "multi\nline\nuser");
  std::ostringstream out;
  write_journal(out, delta);
  std::string text = out.str();
  text += "bogus-tag,x\n";  // physical line 7: 3 + 3 + 1

  std::istringstream in(text);
  JournalReader reader(in);
  core::Mutation mutation;
  ASSERT_TRUE(reader.next(mutation));
  EXPECT_EQ(reader.line(), 3u);
  ASSERT_TRUE(reader.next(mutation));
  EXPECT_EQ(reader.line(), 6u);
  try {
    reader.next(mutation);
    FAIL() << "expected CsvError at line 7";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find("journal line 7"), std::string::npos) << e.what();
  }
}

// --------------------------------------------------------- binary endianness ---

std::vector<unsigned char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  return {bytes.begin(), bytes.end()};
}

TEST(BinaryFormat, GoldenBytesAreLittleEndian) {
  core::RbacDataset d;
  d.add_user("u");
  TempDir dir;
  save_dataset_binary(d, dir.path() / "one.rdb");
  const std::vector<unsigned char> bytes = slurp(dir.path() / "one.rdb");
  // Layout: magic(8) + 5 x u64 counts + str("u") as u32 len + byte + digest.
  ASSERT_EQ(bytes.size(), 8u + 5 * 8 + 4 + 1 + 8);
  // users = 1: low byte first, the rest zero.
  EXPECT_EQ(bytes[8], 1u);
  for (std::size_t i = 9; i < 48; ++i) EXPECT_EQ(bytes[i], 0u) << "offset " << i;
  // name length u32 = 1, then the byte 'u'.
  EXPECT_EQ(bytes[48], 1u);
  EXPECT_EQ(bytes[49], 0u);
  EXPECT_EQ(bytes[50], 0u);
  EXPECT_EQ(bytes[51], 0u);
  EXPECT_EQ(bytes[52], static_cast<unsigned char>('u'));
  // Trailing digest: FNV-1a over the payload (everything after the magic),
  // stored little-endian. Recomputing it here pins both properties — the
  // checksum covers the *serialized* bytes and the digest encoding is LE.
  std::uint64_t fnv = 0xCBF29CE484222325ULL;
  for (std::size_t i = 8; i < bytes.size() - 8; ++i) {
    fnv ^= bytes[i];
    fnv *= 0x100000001B3ULL;
  }
  std::uint64_t stored = 0;
  for (std::size_t i = 0; i < 8; ++i)
    stored |= static_cast<std::uint64_t>(bytes[bytes.size() - 8 + i]) << (8 * i);
  EXPECT_EQ(stored, fnv);
}

TEST(BinaryFormat, KnownLittleEndianFileLoads) {
  // A file assembled byte by byte (no host integers involved): one role
  // named "r", one user named "x", one assignment edge (0, 0).
  std::vector<unsigned char> bytes = {'R', 'D', 'I', 'E', 'T', '1', '\n', '\0'};
  auto put_u64 = [&](std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) bytes.push_back(static_cast<unsigned char>(v >> (8 * i)));
  };
  auto put_u32 = [&](std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) bytes.push_back(static_cast<unsigned char>(v >> (8 * i)));
  };
  put_u64(1);  // users
  put_u64(1);  // roles
  put_u64(0);  // permissions
  put_u64(1);  // assignments
  put_u64(0);  // grants
  put_u32(1);
  bytes.push_back('x');  // user name
  put_u32(1);
  bytes.push_back('r');  // role name
  put_u32(0);            // edge: role 0,
  put_u32(0);            //       user 0
  std::uint64_t fnv = 0xCBF29CE484222325ULL;
  for (std::size_t i = 8; i < bytes.size(); ++i) {
    fnv ^= bytes[i];
    fnv *= 0x100000001B3ULL;
  }
  for (std::size_t i = 0; i < 8; ++i) bytes.push_back(static_cast<unsigned char>(fnv >> (8 * i)));

  TempDir dir;
  {
    std::ofstream out(dir.path() / "golden.rdb", std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  const core::RbacDataset d = load_dataset_binary(dir.path() / "golden.rdb");
  EXPECT_EQ(d.num_users(), 1u);
  EXPECT_EQ(d.num_roles(), 1u);
  EXPECT_EQ(d.user_name(0), "x");
  EXPECT_EQ(d.role_name(0), "r");
  EXPECT_EQ(d.ruam().nnz(), 1u);
}

}  // namespace
}  // namespace rolediet::io
