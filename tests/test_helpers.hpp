// Shared fixtures for the rolediet test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "linalg/csr_matrix.hpp"

namespace rolediet::testing {

/// The paper's Fig. 1 worked example: users U01-U04, roles R01-R05,
/// permissions P01-P06, with every inefficiency the figure calls out:
///   - P01 is a standalone permission;
///   - R02 has users but no permissions; R03 has permissions but no users;
///   - R01 and R05 are single-user roles (R01 is also single-permission);
///   - R02 and R04 share the same user set {U02, U03};
///   - R04 and R05 share the same permission set {P04, P05}.
/// The resulting RUAM co-occurrence matrix matches the paper's table:
/// diagonal (1, 2, 0, 2, 1) and g(R02, R04) = 2.
inline core::RbacDataset figure1_dataset() {
  core::RbacDataset d;
  const core::Id u01 = d.add_user("U01");
  const core::Id u02 = d.add_user("U02");
  const core::Id u03 = d.add_user("U03");
  const core::Id u04 = d.add_user("U04");
  d.add_permission("P01");  // standalone
  const core::Id p02 = d.add_permission("P02");
  const core::Id p03 = d.add_permission("P03");
  const core::Id p04 = d.add_permission("P04");
  const core::Id p05 = d.add_permission("P05");
  const core::Id p06 = d.add_permission("P06");
  const core::Id r01 = d.add_role("R01");
  const core::Id r02 = d.add_role("R02");
  const core::Id r03 = d.add_role("R03");
  const core::Id r04 = d.add_role("R04");
  const core::Id r05 = d.add_role("R05");

  d.assign_user(r01, u01);
  d.grant_permission(r01, p02);

  d.assign_user(r02, u02);
  d.assign_user(r02, u03);

  d.grant_permission(r03, p03);
  d.grant_permission(r03, p06);

  d.assign_user(r04, u02);
  d.assign_user(r04, u03);
  d.grant_permission(r04, p04);
  d.grant_permission(r04, p05);

  d.assign_user(r05, u04);
  d.grant_permission(r05, p04);
  d.grant_permission(r05, p05);
  return d;
}

/// Builds a CSR matrix from explicit rows of column indices.
inline linalg::CsrMatrix csr_from_rows(std::size_t cols,
                                       const std::vector<std::vector<std::uint32_t>>& rows) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::uint32_t c : rows[r]) pairs.emplace_back(static_cast<std::uint32_t>(r), c);
  }
  return linalg::CsrMatrix::from_pairs(rows.size(), cols, std::move(pairs));
}

}  // namespace rolediet::testing
