// Shared fixtures for the rolediet test suite.
#pragma once

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "core/model.hpp"
#include "linalg/csr_matrix.hpp"

namespace rolediet::testing {

/// RAII temp directory: a unique path under the system temp dir (tagged per
/// suite, unique per process and instance), recursively removed on
/// destruction. Every test that touches the filesystem goes through this so
/// parallel ctest runs never collide and failures never leak directories.
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& tag = "test") {
    static std::atomic<int> counter{0};
    dir_ = std::filesystem::temp_directory_path() /
           ("rolediet_" + tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(dir_);
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return dir_; }

  /// An entry inside the directory.
  [[nodiscard]] std::filesystem::path file(const std::string& name) const { return dir_ / name; }

  /// String form for CLI-style call sites.
  [[nodiscard]] std::string str(const std::string& sub = "") const {
    return sub.empty() ? dir_.string() : (dir_ / sub).string();
  }

 private:
  std::filesystem::path dir_;
};

/// The paper's Fig. 1 worked example: users U01-U04, roles R01-R05,
/// permissions P01-P06, with every inefficiency the figure calls out:
///   - P01 is a standalone permission;
///   - R02 has users but no permissions; R03 has permissions but no users;
///   - R01 and R05 are single-user roles (R01 is also single-permission);
///   - R02 and R04 share the same user set {U02, U03};
///   - R04 and R05 share the same permission set {P04, P05}.
/// The resulting RUAM co-occurrence matrix matches the paper's table:
/// diagonal (1, 2, 0, 2, 1) and g(R02, R04) = 2.
inline core::RbacDataset figure1_dataset() {
  core::RbacDataset d;
  const core::Id u01 = d.add_user("U01");
  const core::Id u02 = d.add_user("U02");
  const core::Id u03 = d.add_user("U03");
  const core::Id u04 = d.add_user("U04");
  d.add_permission("P01");  // standalone
  const core::Id p02 = d.add_permission("P02");
  const core::Id p03 = d.add_permission("P03");
  const core::Id p04 = d.add_permission("P04");
  const core::Id p05 = d.add_permission("P05");
  const core::Id p06 = d.add_permission("P06");
  const core::Id r01 = d.add_role("R01");
  const core::Id r02 = d.add_role("R02");
  const core::Id r03 = d.add_role("R03");
  const core::Id r04 = d.add_role("R04");
  const core::Id r05 = d.add_role("R05");

  d.assign_user(r01, u01);
  d.grant_permission(r01, p02);

  d.assign_user(r02, u02);
  d.assign_user(r02, u03);

  d.grant_permission(r03, p03);
  d.grant_permission(r03, p06);

  d.assign_user(r04, u02);
  d.assign_user(r04, u03);
  d.grant_permission(r04, p04);
  d.grant_permission(r04, p05);

  d.assign_user(r05, u04);
  d.grant_permission(r05, p04);
  d.grant_permission(r05, p05);
  return d;
}

/// Builds a CSR matrix from explicit rows of column indices.
inline linalg::CsrMatrix csr_from_rows(std::size_t cols,
                                       const std::vector<std::vector<std::uint32_t>>& rows) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::uint32_t c : rows[r]) pairs.emplace_back(static_cast<std::uint32_t>(r), c);
  }
  return linalg::CsrMatrix::from_pairs(rows.size(), cols, std::move(pairs));
}

}  // namespace rolediet::testing
