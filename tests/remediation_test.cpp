// Tests for the remediation planner: safe cleanup of taxonomy types 1-3,
// including the paper's future-work item (single-assignment role merging).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/remediation.hpp"
#include "gen/org_simulator.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

/// Dataset exercising every remediation action:
///   ghost (user), unused (permission) -> standalone entities
///   R_empty -> standalone role; R_orphan (perms only); R_useless (users only)
///   A1, A2, A3 -> single-permission roles all granting "shared_perm"
///   B1, B2 -> single-user roles of "bob"
///   C -> a healthy role that must survive untouched
RbacDataset remediation_fixture() {
  RbacDataset d;
  const Id alice = d.add_user("alice");
  const Id bob = d.add_user("bob");
  const Id carol = d.add_user("carol");
  d.add_user("ghost");
  const Id shared = d.add_permission("shared_perm");
  const Id p1 = d.add_permission("p1");
  const Id p2 = d.add_permission("p2");
  const Id p3 = d.add_permission("p3");
  d.add_permission("unused");

  d.add_role("R_empty");
  const Id orphan = d.add_role("R_orphan");
  d.grant_permission(orphan, p3);
  const Id useless = d.add_role("R_useless");
  d.assign_user(useless, carol);

  const Id a1 = d.add_role("A1");
  d.assign_user(a1, alice);
  d.assign_user(a1, bob);
  d.grant_permission(a1, shared);
  const Id a2 = d.add_role("A2");
  d.assign_user(a2, carol);
  d.grant_permission(a2, shared);
  const Id a3 = d.add_role("A3");
  d.assign_user(a3, alice);
  d.grant_permission(a3, shared);

  const Id b1 = d.add_role("B1");
  d.assign_user(b1, bob);
  d.grant_permission(b1, p1);
  d.grant_permission(b1, p2);
  const Id b2 = d.add_role("B2");
  d.assign_user(b2, bob);
  d.grant_permission(b2, p3);

  const Id c = d.add_role("C");
  d.assign_user(c, alice);
  d.assign_user(c, carol);
  d.grant_permission(c, p1);
  d.grant_permission(c, p2);
  return d;
}

TEST(Remediation, PlanCoversAllSafeActions) {
  const RbacDataset d = remediation_fixture();
  const AuditReport report = audit(d, {.detect_similar = false});
  const RemediationPlan plan = plan_remediation(d, report);

  // Default policy: roles removed, entities kept.
  EXPECT_EQ(plan.remove_roles.size(), 3u);  // R_empty, R_orphan, R_useless
  EXPECT_TRUE(plan.remove_users.empty());
  EXPECT_TRUE(plan.remove_permissions.empty());

  ASSERT_EQ(plan.merge_by_permission.size(), 1u);
  EXPECT_EQ(d.permission_name(plan.merge_by_permission[0].pivot), "shared_perm");
  EXPECT_EQ(d.role_name(plan.merge_by_permission[0].survivor), "A1");
  EXPECT_EQ(plan.merge_by_permission[0].absorbed.size(), 2u);

  ASSERT_EQ(plan.merge_by_user.size(), 1u);
  EXPECT_EQ(d.user_name(plan.merge_by_user[0].pivot), "bob");
  EXPECT_EQ(d.role_name(plan.merge_by_user[0].survivor), "B1");
  EXPECT_EQ(plan.merge_by_user[0].absorbed.size(), 1u);

  EXPECT_EQ(plan.roles_removed(), 3u + 2u + 1u);
}

TEST(Remediation, ApplyPreservesEffectiveAccess) {
  const RbacDataset d = remediation_fixture();
  const AuditReport report = audit(d, {.detect_similar = false});
  const RemediationPlan plan = plan_remediation(d, report);
  const RbacDataset slim = apply_remediation(d, plan);

  EXPECT_EQ(slim.num_roles(), d.num_roles() - plan.roles_removed());
  EXPECT_TRUE(verify_remediation(d, slim, plan));

  // Merged single-permission role: A1 survives with users alice+bob+carol.
  const Id a1 = *slim.find_role("A1");
  EXPECT_EQ(slim.users_of_role(a1).size(), 3u);
  EXPECT_EQ(slim.permissions_of_role(a1).size(), 1u);
  EXPECT_EQ(slim.find_role("A2"), std::nullopt);
  EXPECT_EQ(slim.find_role("A3"), std::nullopt);

  // Merged single-user role: B1 survives granting p1+p2+p3 to bob.
  const Id b1 = *slim.find_role("B1");
  EXPECT_EQ(slim.users_of_role(b1).size(), 1u);
  EXPECT_EQ(slim.permissions_of_role(b1).size(), 3u);

  // Healthy role untouched.
  const Id c = *slim.find_role("C");
  EXPECT_EQ(slim.users_of_role(c).size(), 2u);
  EXPECT_EQ(slim.permissions_of_role(c).size(), 2u);
}

TEST(Remediation, EntityRemovalIsOptIn) {
  const RbacDataset d = remediation_fixture();
  const AuditReport report = audit(d, {.detect_similar = false});

  RemediationPolicy policy;
  policy.remove_standalone_users = true;
  policy.remove_standalone_permissions = true;
  const RemediationPlan plan = plan_remediation(d, report, policy);
  EXPECT_EQ(plan.remove_users.size(), 1u);
  EXPECT_EQ(plan.remove_permissions.size(), 1u);

  const RbacDataset slim = apply_remediation(d, plan);
  EXPECT_EQ(slim.find_user("ghost"), std::nullopt);
  EXPECT_EQ(slim.find_permission("unused"), std::nullopt);
  EXPECT_TRUE(verify_remediation(d, slim, plan));
}

TEST(Remediation, DisabledActionsStayOut) {
  const RbacDataset d = remediation_fixture();
  const AuditReport report = audit(d, {.detect_similar = false});

  RemediationPolicy policy;
  policy.remove_standalone_roles = false;
  policy.remove_roles_without_users = false;
  policy.remove_roles_without_permissions = false;
  policy.merge_single_permission_roles = false;
  policy.merge_single_user_roles = false;
  const RemediationPlan plan = plan_remediation(d, report, policy);
  EXPECT_EQ(plan.roles_removed(), 0u);

  const RbacDataset same = apply_remediation(d, plan);
  EXPECT_EQ(same.num_roles(), d.num_roles());
  EXPECT_TRUE(verify_remediation(d, same, plan));
}

TEST(Remediation, MergeGroupsExcludeRemovedRoles) {
  // A role that is both single-permission and without-users must be removed,
  // not merged: give the orphan role a single permission that A-roles share.
  RbacDataset d;
  const Id u = d.add_user("u");
  const Id p = d.add_permission("p");
  const Id orphan = d.add_role("orphan_single_perm");
  d.grant_permission(orphan, p);  // no users -> type 2 AND single-permission
  const Id live = d.add_role("live1");
  d.assign_user(live, u);
  d.grant_permission(live, p);
  const Id live2 = d.add_role("live2");
  d.assign_user(live2, u);
  d.grant_permission(live2, p);

  const AuditReport report = audit(d, {.detect_similar = false});
  const RemediationPlan plan = plan_remediation(d, report);
  EXPECT_EQ(plan.remove_roles, (std::vector<Id>{orphan}));
  ASSERT_EQ(plan.merge_by_permission.size(), 1u);
  // Only the two live roles merge; the orphan is removed instead.
  EXPECT_EQ(plan.merge_by_permission[0].survivor, live);
  EXPECT_EQ(plan.merge_by_permission[0].absorbed, (std::vector<Id>{live2}));

  const RbacDataset slim = apply_remediation(d, plan);
  EXPECT_EQ(slim.num_roles(), 1u);
  EXPECT_TRUE(verify_remediation(d, slim, plan));
}

TEST(Remediation, SinglePermissionPriorityOverSingleUser) {
  // A role with exactly one user AND one permission qualifies for both axis
  // merges; it must be consumed exactly once (permission axis wins).
  RbacDataset d;
  const Id u1 = d.add_user("u1");
  const Id u2 = d.add_user("u2");
  const Id p1 = d.add_permission("p1");
  const Id p2 = d.add_permission("p2");
  const Id both = d.add_role("both_single");
  d.assign_user(both, u1);
  d.grant_permission(both, p1);
  const Id perm_peer = d.add_role("perm_peer");  // single-perm p1, two users
  d.assign_user(perm_peer, u1);
  d.assign_user(perm_peer, u2);
  d.grant_permission(perm_peer, p1);
  const Id user_peer = d.add_role("user_peer");  // single-user u1, two perms
  d.assign_user(user_peer, u1);
  d.grant_permission(user_peer, p1);
  d.grant_permission(user_peer, p2);

  const AuditReport report = audit(d, {.detect_similar = false});
  const RemediationPlan plan = plan_remediation(d, report);
  ASSERT_EQ(plan.merge_by_permission.size(), 1u);
  EXPECT_EQ(plan.merge_by_permission[0].survivor, both);
  EXPECT_EQ(plan.merge_by_permission[0].absorbed, (std::vector<Id>{perm_peer}));
  // user_peer has no un-consumed partner left on the user axis.
  EXPECT_TRUE(plan.merge_by_user.empty());

  const RbacDataset slim = apply_remediation(d, plan);
  EXPECT_TRUE(verify_remediation(d, slim, plan));
}

TEST(Remediation, ApplyValidatesPlan) {
  const RbacDataset d = remediation_fixture();
  RemediationPlan bogus;
  bogus.remove_roles = {static_cast<Id>(d.num_roles() + 5)};
  EXPECT_THROW(apply_remediation(d, bogus), std::out_of_range);

  RemediationPlan twice;
  twice.merge_by_permission = {{.pivot = 0, .survivor = 3, .absorbed = {4}},
                               {.pivot = 1, .survivor = 5, .absorbed = {4}}};
  EXPECT_THROW(apply_remediation(d, twice), std::invalid_argument);

  RemediationPlan dead_survivor;
  dead_survivor.remove_roles = {3};
  dead_survivor.merge_by_permission = {{.pivot = 0, .survivor = 3, .absorbed = {4}}};
  EXPECT_THROW(apply_remediation(d, dead_survivor), std::invalid_argument);
}

TEST(Remediation, VerifyCatchesUnplannedChanges) {
  const RbacDataset d = remediation_fixture();
  const AuditReport report = audit(d, {.detect_similar = false});
  const RemediationPlan plan = plan_remediation(d, report);

  // Tampered "after": grant an extra permission to a surviving role.
  RbacDataset tampered = apply_remediation(d, plan);
  tampered.grant_permission(*tampered.find_role("C"), *tampered.find_permission("p3"));
  EXPECT_FALSE(verify_remediation(d, tampered, plan));

  // Unplanned user removal.
  RemediationPlan stealth = plan;
  RbacDataset over_removed = apply_remediation(d, plan);
  // Simulate an unplanned removal by verifying the legit result against a
  // plan that claims no user removals but an extra missing user.
  stealth.remove_users = {*d.find_user("alice")};
  EXPECT_FALSE(verify_remediation(d, over_removed, stealth));
}

TEST(Remediation, PlanTextListsActions) {
  const RbacDataset d = remediation_fixture();
  const AuditReport report = audit(d, {.detect_similar = false});
  const RemediationPlan plan = plan_remediation(d, report);
  const std::string text = plan.to_text(d);
  EXPECT_NE(text.find("remove 3 roles"), std::string::npos);
  EXPECT_NE(text.find("shared_perm"), std::string::npos);
  EXPECT_NE(text.find("bob"), std::string::npos);
  EXPECT_NE(text.find("total roles removed: 6"), std::string::npos);
}

TEST(Remediation, FullPipelineOnGeneratedOrg) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  const AuditReport report = audit(org.dataset, {.detect_similar = false});

  RemediationPolicy policy;
  policy.remove_standalone_users = true;
  policy.remove_standalone_permissions = true;
  const RemediationPlan plan = plan_remediation(org.dataset, report, policy);

  // All planted one-sided/standalone roles are removed.
  EXPECT_EQ(plan.remove_roles.size(), org.truth.standalone_roles +
                                          org.truth.roles_without_users +
                                          org.truth.roles_without_permissions);
  EXPECT_EQ(plan.remove_users.size(), org.truth.standalone_users);
  EXPECT_EQ(plan.remove_permissions.size(), org.truth.standalone_permissions);

  const RbacDataset slim = apply_remediation(org.dataset, plan);
  EXPECT_TRUE(verify_remediation(org.dataset, slim, plan));

  // Remediation leaves no roles-without-users behind.
  const AuditReport post = audit(slim, {.detect_similar = false});
  EXPECT_TRUE(post.structural.roles_without_users.empty());
  EXPECT_TRUE(post.structural.roles_without_permissions.empty());
  EXPECT_TRUE(post.structural.standalone_roles.empty());
}

}  // namespace
}  // namespace rolediet::core
