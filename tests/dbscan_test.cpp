// Unit tests for the DBSCAN substrate: classic core/border/noise behaviour
// plus the paper's parameterization (min_pts = 2, Hamming, eps = 0 or t).
#include <gtest/gtest.h>

#include "cluster/dbscan.hpp"

#include <stdexcept>

#include "util/prng.hpp"

namespace rolediet::cluster {
namespace {

/// Builds a matrix whose rows are the given column-index sets.
linalg::BitMatrix points_from_rows(std::size_t cols,
                                   const std::vector<std::vector<std::size_t>>& rows) {
  linalg::BitMatrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c : rows[r]) m.set(r, c);
  }
  return m;
}

TEST(Dbscan, EmptyInput) {
  const linalg::BitMatrix m(0, 10);
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_TRUE(result.labels.empty());
  EXPECT_EQ(result.n_clusters, 0u);
}

TEST(Dbscan, AllDistinctPointsAreNoiseAtEpsZero) {
  const auto m = points_from_rows(100, {{1}, {2}, {3}, {4}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 0u);
  for (auto label : result.labels) EXPECT_EQ(label, DbscanResult::kNoise);
}

TEST(Dbscan, IdenticalRowsClusterAtEpsZero) {
  const auto m = points_from_rows(100, {{1, 5}, {2}, {1, 5}, {7, 9}, {1, 5}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 1u);
  const auto clusters = result.clusters();
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(result.labels[1], DbscanResult::kNoise);
  EXPECT_EQ(result.labels[3], DbscanResult::kNoise);
}

TEST(Dbscan, TwoSeparateClusters) {
  const auto m = points_from_rows(100, {{1, 2}, {1, 2}, {50, 60}, {50, 60}, {99}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 2u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[2], result.labels[3]);
  EXPECT_NE(result.labels[0], result.labels[2]);
  EXPECT_EQ(result.labels[4], DbscanResult::kNoise);
}

TEST(Dbscan, ChainExpansionAtPositiveEps) {
  // Rows at Hamming distance 2 from their neighbors: {1},{2},{3} chain.
  // With eps = 2, min_pts = 2 all three are density-connected.
  const auto m = points_from_rows(10, {{1}, {2}, {3}, {8}});
  const DbscanResult result = dbscan(m, {.eps = 2, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 1u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[1], result.labels[2]);
  // {8} is at distance 2 from {3}... it is actually within eps of {3}.
  // Re-check: all single-bit rows are pairwise at distance 2, so all join.
  EXPECT_EQ(result.labels[3], result.labels[0]);
}

TEST(Dbscan, EpsOneGroupsOffByOneRows) {
  // {1,2} vs {1,2,3}: distance 1. {7} unrelated (distance 3 resp. 4).
  const auto m = points_from_rows(10, {{1, 2}, {1, 2, 3}, {7}});
  const DbscanResult result = dbscan(m, {.eps = 1, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 1u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[2], DbscanResult::kNoise);
}

TEST(Dbscan, MinPtsThreeRequiresTriple) {
  // A pair of identical rows is NOT enough when min_pts = 3.
  const auto m = points_from_rows(10, {{1}, {1}, {5}, {5}, {5}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 3});
  EXPECT_EQ(result.n_clusters, 1u);
  EXPECT_EQ(result.labels[0], DbscanResult::kNoise);
  EXPECT_EQ(result.labels[1], DbscanResult::kNoise);
  EXPECT_EQ(result.labels[2], result.labels[3]);
  EXPECT_EQ(result.labels[3], result.labels[4]);
}

TEST(Dbscan, BorderPointJoinsFirstReachingCluster) {
  // Classic border case: B is within eps of core A-side and core C-side
  // would need B, but with min_pts = 3: {0,1},{1},{1,2} — row 1 is within
  // eps=1 of both neighbors; rows 0 and 2 have neighborhoods of size 2 only,
  // so only row 1 can be core (neighborhood = all three).
  const auto m = points_from_rows(10, {{0, 1}, {1}, {1, 2}});
  const DbscanResult result = dbscan(m, {.eps = 1, .min_pts = 3});
  EXPECT_EQ(result.n_clusters, 1u);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[1], result.labels[2]);
}

TEST(Dbscan, DeterministicLabels) {
  const auto m = points_from_rows(50, {{1, 2}, {30}, {1, 2}, {40, 41}, {40, 41}});
  const DbscanResult a = dbscan(m, {.eps = 0, .min_pts = 2});
  const DbscanResult b = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_EQ(a.labels, b.labels);
  // First cluster seeded from the lowest index.
  EXPECT_EQ(a.labels[0], 0);
  EXPECT_EQ(a.labels[3], 1);
}

TEST(Dbscan, ParallelMatchesSequential) {
  // 200 rows, several duplicate groups.
  std::vector<std::vector<std::size_t>> rows;
  for (std::size_t i = 0; i < 200; ++i) {
    rows.push_back({i % 37, (i % 37) + 40});  // 37 distinct contents
  }
  const auto m = points_from_rows(100, rows);
  const DbscanResult seq = dbscan(m, {.eps = 0, .min_pts = 2, .threads = 1});
  const DbscanResult par = dbscan(m, {.eps = 0, .min_pts = 2, .threads = 4});
  EXPECT_EQ(seq.labels, par.labels);
  EXPECT_EQ(seq.n_clusters, par.n_clusters);
}

TEST(Dbscan, ClustersAccessorMatchesLabels) {
  const auto m = points_from_rows(10, {{1}, {1}, {2}, {2}, {3}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  const auto clusters = result.clusters();
  ASSERT_EQ(clusters.size(), result.n_clusters);
  for (std::size_t g = 0; g < clusters.size(); ++g) {
    for (std::size_t member : clusters[g]) {
      EXPECT_EQ(result.labels[member], static_cast<std::int32_t>(g));
    }
  }
}

TEST(Dbscan, InvertedIndexMatchesBruteForce) {
  // Random-ish structured rows including duplicates, near-duplicates, empty
  // rows, and tiny disjoint rows — the corners the index must handle.
  const auto m = points_from_rows(
      60, {{1, 2, 3}, {1, 2, 3}, {1, 2, 4}, {}, {}, {7}, {8}, {20, 21, 22, 23}, {20, 21}});
  for (std::size_t eps : {0u, 1u, 2u, 3u}) {
    const DbscanResult brute = dbscan(m, {.eps = eps, .min_pts = 2});
    const DbscanResult indexed =
        dbscan(m, {.eps = eps, .min_pts = 2,
                   .region_strategy = RegionStrategy::kInvertedIndex});
    EXPECT_EQ(brute.labels, indexed.labels) << "eps = " << eps;
  }
}

TEST(Dbscan, InvertedIndexLargerRandomAgreement) {
  util::Xoshiro256 rng(77);
  std::vector<std::vector<std::size_t>> rows;
  for (int i = 0; i < 400; ++i) {
    std::vector<std::size_t> row;
    const std::size_t norm = rng.bounded(6);  // includes empty rows
    for (std::size_t k = 0; k < norm; ++k) row.push_back(rng.bounded(120));
    rows.push_back(row);
    if (i % 5 == 0) rows.push_back(row);  // plant duplicates
  }
  const auto m = points_from_rows(120, rows);
  for (std::size_t eps : {0u, 1u, 2u}) {
    const DbscanResult brute = dbscan(m, {.eps = eps, .min_pts = 2});
    const DbscanResult indexed =
        dbscan(m, {.eps = eps, .min_pts = 2,
                   .region_strategy = RegionStrategy::kInvertedIndex});
    EXPECT_EQ(brute.labels, indexed.labels) << "eps = " << eps;
    // And the index must do less distance work on sparse data.
    EXPECT_LT(indexed.distance_evaluations, brute.distance_evaluations);
  }
}

TEST(Dbscan, InvertedIndexRejectsJaccard) {
  const auto m = points_from_rows(10, {{1}, {2}});
  EXPECT_THROW(dbscan(m, {.eps = 1, .min_pts = 2, .metric = MetricKind::kJaccard,
                          .region_strategy = RegionStrategy::kInvertedIndex}),
               std::invalid_argument);
}

TEST(Dbscan, SingleRowIsNoise) {
  const auto m = points_from_rows(10, {{1, 2, 3}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 0u);
  EXPECT_EQ(result.labels[0], DbscanResult::kNoise);
}

TEST(Dbscan, AllRowsIdentical) {
  const auto m = points_from_rows(10, {{4, 5}, {4, 5}, {4, 5}, {4, 5}});
  const DbscanResult result = dbscan(m, {.eps = 0, .min_pts = 2});
  EXPECT_EQ(result.n_clusters, 1u);
  EXPECT_EQ(result.clusters()[0].size(), 4u);
}

}  // namespace
}  // namespace rolediet::cluster
