// Tests for the synthetic organization generator (§IV-B substitution).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/framework.hpp"
#include "gen/org_simulator.hpp"

namespace rolediet::gen {
namespace {

TEST(OrgSimulator, SmallProfileShape) {
  const OrgProfile profile = OrgProfile::small();
  const OrgDataset org = generate_org(profile);
  EXPECT_EQ(org.dataset.num_users(), profile.connected_users + profile.standalone_users);
  EXPECT_EQ(org.dataset.num_permissions(),
            profile.connected_permissions + profile.standalone_permissions);
  EXPECT_EQ(org.dataset.num_roles(), profile.total_roles());
}

TEST(OrgSimulator, DeterministicInSeed) {
  const OrgDataset a = generate_org(OrgProfile::small(42));
  const OrgDataset b = generate_org(OrgProfile::small(42));
  EXPECT_EQ(a.dataset.ruam(), b.dataset.ruam());
  EXPECT_EQ(a.dataset.rpam(), b.dataset.rpam());
  const OrgDataset c = generate_org(OrgProfile::small(43));
  EXPECT_NE(c.dataset.ruam(), a.dataset.ruam());
}

TEST(OrgSimulator, AuditRecoversPlantedStructuralCounts) {
  const OrgDataset org = generate_org(OrgProfile::small());
  const core::AuditReport report = core::audit(org.dataset, {.detect_similar = false});

  EXPECT_EQ(report.structural.standalone_users.size(), org.truth.standalone_users);
  EXPECT_EQ(report.structural.standalone_permissions.size(), org.truth.standalone_permissions);
  EXPECT_EQ(report.structural.standalone_roles.size(), org.truth.standalone_roles);
  EXPECT_EQ(report.structural.roles_without_users.size(), org.truth.roles_without_users);
  EXPECT_EQ(report.structural.roles_without_permissions.size(),
            org.truth.roles_without_permissions);
  EXPECT_EQ(report.structural.single_user_roles.size(), org.truth.single_user_roles);
  EXPECT_EQ(report.structural.single_permission_roles.size(),
            org.truth.single_permission_roles);
}

TEST(OrgSimulator, AuditRecoversPlantedDuplicateGroups) {
  const OrgDataset org = generate_org(OrgProfile::small());
  const core::AuditReport report = core::audit(org.dataset);

  EXPECT_EQ(report.same_user_groups.roles_in_groups(), org.truth.roles_in_same_user_groups);
  EXPECT_EQ(report.same_permission_groups.roles_in_groups(),
            org.truth.roles_in_same_permission_groups);

  // At t = 1 the similar groups contain both the planted similar pairs and
  // the planted duplicate pairs (distance 0 <= 1).
  EXPECT_EQ(report.similar_user_groups.roles_in_groups(),
            org.truth.roles_in_similar_user_groups + org.truth.roles_in_same_user_groups);
  EXPECT_EQ(
      report.similar_permission_groups.roles_in_groups(),
      org.truth.roles_in_similar_permission_groups + org.truth.roles_in_same_permission_groups);
}

TEST(OrgSimulator, PlantedPairsHaveExpectedDistances) {
  const OrgDataset org = generate_org(OrgProfile::small());
  const auto& d = org.dataset;
  // R_dupusers_0 duplicates R_healthy_0's user set exactly.
  const auto base_users = d.users_of_role(*d.find_role("R_healthy_0"));
  const auto dup_users = d.users_of_role(*d.find_role("R_dupusers_0"));
  EXPECT_TRUE(std::equal(base_users.begin(), base_users.end(), dup_users.begin(),
                         dup_users.end()));
  // Similar-user bases follow the dup-user and dup-perm slices of the
  // healthy pool.
  const OrgProfile p = OrgProfile::small();
  const std::size_t sim_base_index = p.same_user_pairs + p.same_permission_pairs;
  const core::Id sim_base =
      *d.find_role("R_healthy_" + std::to_string(sim_base_index));
  const core::Id variant = *d.find_role("R_simusers_0");
  EXPECT_EQ(d.ruam().row_hamming(sim_base, variant), 1u);
}

TEST(OrgSimulator, ValidationRejectsImpossibleProfiles) {
  OrgProfile p = OrgProfile::small();
  p.single_user_roles = p.connected_users + 1;
  EXPECT_THROW(generate_org(p), std::invalid_argument);

  p = OrgProfile::small();
  p.healthy_roles = 1;  // cannot host the pair bases
  EXPECT_THROW(generate_org(p), std::invalid_argument);

  p = OrgProfile::small();
  p.departments = 0;
  EXPECT_THROW(generate_org(p), std::invalid_argument);

  p = OrgProfile::small();
  p.min_users_per_role = 3;  // variants could collapse next to single-user roles
  EXPECT_THROW(generate_org(p), std::invalid_argument);

  p = OrgProfile::small();
  p.departments = 1'000'000;  // department pools too small
  EXPECT_THROW(generate_org(p), std::invalid_argument);
}

TEST(OrgSimulator, RoleNamesEncodePlantedClass) {
  const OrgDataset org = generate_org(OrgProfile::small());
  EXPECT_TRUE(org.dataset.find_role("R_healthy_0").has_value());
  EXPECT_TRUE(org.dataset.find_role("R_nousers_0").has_value());
  EXPECT_TRUE(org.dataset.find_role("R_oneperm_0").has_value());
  EXPECT_TRUE(org.dataset.find_role("R_dupusers_0").has_value());
  EXPECT_TRUE(org.dataset.find_role("R_simperms_0").has_value());
}

TEST(OrgSimulator, PaperScaleProfileIsSelfConsistent) {
  const OrgProfile p = OrgProfile::paper_scale();
  EXPECT_EQ(p.connected_users + p.standalone_users, 90'000u);
  EXPECT_EQ(p.connected_permissions + p.standalone_permissions, 350'000u);
  // ~60k roles total (paper reports "around 50,000"; same order of magnitude).
  EXPECT_GE(p.total_roles(), 50'000u);
  EXPECT_LE(p.total_roles(), 65'000u);
}

}  // namespace
}  // namespace rolediet::gen
