// AuditService tests: snapshot isolation under concurrent readers/writers,
// admission control, deadlines, and the checkpoint-from-published-version
// regression.
//
// The central property (stress suite): every answer a ReadSession serves is
// byte-identical to a fresh batch core::audit() of the session's pinned
// dataset — whatever the writer is doing concurrently. That is the
// engine-contract identity (reaudit == batch audit of snapshot) lifted
// through the publication seam; it holds for every method except
// approx-hnsw (whose maintained graph is history-dependent by design), so
// the stress runs the exact default method.
//
// The *T8* cases are the multithreaded ones; CI runs exactly those under
// ThreadSanitizer (.github/workflows/ci.yml), which is what turns "no data
// races by construction" from a design claim into a checked one.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/digest.hpp"
#include "core/engine.hpp"
#include "core/framework.hpp"
#include "gen/matrix_generator.hpp"
#include "service/audit_service.hpp"
#include "store/engine_store.hpp"
#include "store/snapshot.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace rolediet {
namespace {

using testing::ScopedTempDir;

/// Small generated dataset; `dense` controls row density (both shapes keep
/// the fresh batch audit well under a millisecond, so readers can afford to
/// re-audit every pinned version from scratch).
core::RbacDataset small_dataset(bool dense) {
  gen::MatrixGenParams params;
  params.roles = dense ? 40 : 60;
  params.cols = dense ? 50 : 400;
  params.clustered_fraction = dense ? 0.5 : 0.2;
  params.max_cluster_size = 6;
  params.seed = dense ? 101 : 202;
  const linalg::CsrMatrix ruam = gen::generate_matrix(params).matrix;
  params.seed = dense ? 303 : 404;
  const linalg::CsrMatrix rpam = gen::generate_matrix(params).matrix;

  core::RbacDataset dataset;
  dataset.add_users(ruam.cols());
  dataset.add_permissions(rpam.cols());
  dataset.add_roles(params.roles);
  for (std::size_t r = 0; r < params.roles; ++r) {
    for (std::uint32_t u : ruam.row(r)) dataset.assign_user(static_cast<core::Id>(r), u);
    for (std::uint32_t p : rpam.row(r)) dataset.grant_permission(static_cast<core::Id>(r), p);
  }
  return dataset;
}

/// Effective name-based mutation trace (the bench_recovery recipe): each
/// entry changes state for sure, validated against a scratch engine.
std::vector<core::Mutation> build_trace(const core::RbacDataset& base, std::size_t count,
                                        std::uint64_t seed) {
  std::vector<std::pair<core::Id, core::Id>> user_edges, perm_edges;
  for (std::size_t r = 0; r < base.num_roles(); ++r) {
    for (std::uint32_t u : base.ruam().row(r))
      user_edges.emplace_back(static_cast<core::Id>(r), u);
    for (std::uint32_t p : base.rpam().row(r))
      perm_edges.emplace_back(static_cast<core::Id>(r), p);
  }
  const auto users = static_cast<core::Id>(base.num_users());
  const auto perms = static_cast<core::Id>(base.num_permissions());
  const auto roles = static_cast<core::Id>(base.num_roles());

  util::Xoshiro256 rng(seed);
  core::AuditEngine scratch(base, {});
  std::vector<core::Mutation> trace;
  while (trace.size() < count) {
    const std::uint64_t before = scratch.version();
    core::RbacDelta one;
    switch (trace.size() % 4) {
      case 0: {
        const auto& [r, u] = user_edges[rng.bounded(user_edges.size())];
        one.revoke_user(base.role_name(r), base.user_name(u));
        break;
      }
      case 1:
        one.assign_user(base.role_name(static_cast<core::Id>(rng.bounded(roles))),
                        base.user_name(static_cast<core::Id>(rng.bounded(users))));
        break;
      case 2: {
        const auto& [r, p] = perm_edges[rng.bounded(perm_edges.size())];
        one.revoke_permission(base.role_name(r), base.permission_name(p));
        break;
      }
      default:
        one.grant_permission(base.role_name(static_cast<core::Id>(rng.bounded(roles))),
                             base.permission_name(static_cast<core::Id>(rng.bounded(perms))));
        break;
    }
    scratch.apply(one);
    if (scratch.version() != before) trace.push_back(std::move(one.mutations.front()));
  }
  return trace;
}

/// Byte-identity of everything the version claims about its dataset: the
/// findings blocks, the shape, and the content digest. Timings and work
/// counters are excluded — the engine's steady-state type-4/5 counting
/// legitimately differs from the batch pipeline's (engine contract).
void expect_version_matches_fresh_audit(const core::EngineVersion& version) {
  ASSERT_NE(version.dataset, nullptr);
  const core::AuditReport fresh = core::audit(*version.dataset, version.report.options);
  const core::AuditReport& served = version.report;

  EXPECT_EQ(served.structural, fresh.structural);
  EXPECT_EQ(served.same_user_groups, fresh.same_user_groups);
  EXPECT_EQ(served.same_permission_groups, fresh.same_permission_groups);
  EXPECT_EQ(served.similar_user_groups, fresh.similar_user_groups);
  EXPECT_EQ(served.similar_permission_groups, fresh.similar_permission_groups);
  EXPECT_EQ(served.num_users, fresh.num_users);
  EXPECT_EQ(served.num_roles, fresh.num_roles);
  EXPECT_EQ(served.num_permissions, fresh.num_permissions);
  EXPECT_EQ(served.num_user_assignments, fresh.num_user_assignments);
  EXPECT_EQ(served.num_permission_grants, fresh.num_permission_grants);
  EXPECT_EQ(served.dataset_digest, fresh.dataset_digest);
  EXPECT_EQ(served.dataset_digest, core::dataset_content_digest(*version.dataset));
}

/// The stress harness: `readers` concurrent reader threads re-audit every
/// pinned version from scratch while the writer drains a mutation trace
/// through reaudits and checkpoints.
void run_stress(std::size_t readers, bool dense, std::size_t shards) {
  const core::RbacDataset dataset = small_dataset(dense);
  const std::vector<core::Mutation> trace = build_trace(dataset, 60, 42 + shards);

  ScopedTempDir dir("service_stress");
  core::AuditOptions options;  // role-diet (exact) — the identity holds
  service::ServiceOptions service_options;
  service_options.shards = shards;
  service_options.reaudit_every = 2;
  service_options.checkpoint_every = 2;
  service_options.max_readers = readers + 1;
  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;

  service::AuditService svc(dir.path(), dataset, options, service_options, store_options);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> fleet;
  fleet.reserve(readers);
  for (std::size_t t = 0; t < readers; ++t) {
    fleet.emplace_back([&] {
      std::uint64_t last_audits = 0;
      while (!done.load(std::memory_order_acquire)) {
        const service::ReadSession session = svc.begin_read();
        const core::EngineVersion& version = session.version();
        // Publication is monotone per reader: a later pin never goes back.
        EXPECT_GE(version.audits, last_audits);
        last_audits = version.audits;
        expect_version_matches_fresh_audit(version);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::size_t cursor = 0;
  while (cursor < trace.size()) {
    core::RbacDelta delta;
    for (std::size_t m = 0; m < 5 && cursor < trace.size(); ++m)
      delta.mutations.push_back(trace[cursor++]);
    ASSERT_TRUE(svc.submit(std::move(delta)));
  }
  svc.stop();
  done.store(true, std::memory_order_release);
  for (std::thread& t : fleet) t.join();

  ASSERT_EQ(svc.writer_error(), nullptr);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(svc.stats().batches_applied.load(), (trace.size() + 4) / 5);
  EXPECT_EQ(svc.stats().mutations_applied.load(), trace.size());
  // Baseline + one per reaudit_every batches + the final drain pass.
  EXPECT_GE(svc.stats().versions_published.load(), 2u);
  EXPECT_GE(svc.stats().checkpoints.load(), 1u);

  // The final published version reflects the entire trace.
  const auto last = svc.current_version();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->version, trace.size());
  expect_version_matches_fresh_audit(*last);
}

// {1,8} reader threads x dense/sparse x flat/sharded. The T8-suffixed cases
// are the ones CI runs under TSan.
TEST(ServiceStress, FlatDenseSingleReader) { run_stress(1, true, 0); }
TEST(ServiceStress, FlatSparseSingleReader) { run_stress(1, false, 0); }
TEST(ServiceStress, ShardedDenseSingleReader) { run_stress(1, true, 3); }
TEST(ServiceStress, ShardedSparseSingleReader) { run_stress(1, false, 3); }
TEST(ServiceStress, FlatDenseReadersT8) { run_stress(8, true, 0); }
TEST(ServiceStress, FlatSparseReadersT8) { run_stress(8, false, 0); }
TEST(ServiceStress, ShardedDenseReadersT8) { run_stress(8, true, 3); }
TEST(ServiceStress, ShardedSparseReadersT8) { run_stress(8, false, 3); }

// ---- admission control -----------------------------------------------------

TEST(ServiceAdmission, RejectsBeyondMaxReaders) {
  const core::RbacDataset dataset = small_dataset(true);
  ScopedTempDir dir("service_admission");
  service::ServiceOptions service_options;
  service_options.max_readers = 1;
  service::AuditService svc(dir.path(), dataset, {}, service_options);

  {
    const service::ReadSession session = svc.begin_read();
    EXPECT_THROW((void)svc.begin_read(), service::Overloaded);
    EXPECT_EQ(svc.stats().reads_rejected.load(), 1u);
    (void)session.report();  // the admitted session keeps working
  }
  // Slot released on session destruction: admission recovers.
  const service::ReadSession session = svc.begin_read();
  EXPECT_GE(session.version().audits, 1u);
  EXPECT_EQ(svc.stats().reads_admitted.load(), 2u);
}

TEST(ServiceAdmission, TrySubmitRejectsWhenQueueFull) {
  const core::RbacDataset dataset = small_dataset(true);
  ScopedTempDir dir("service_queue");
  service::ServiceOptions service_options;
  service_options.max_queue = 1;
  service_options.reaudit_every = 1000;  // keep the writer from draining instantly
  service::AuditService svc(dir.path(), dataset, {}, service_options);

  // The writer races the producer, so "queue full" cannot be forced
  // deterministically from outside — but over enough try_submits against a
  // capacity-1 queue either every one is admitted (writer kept up) or some
  // throw Overloaded; both are clean outcomes, and nothing blocks.
  std::size_t admitted = 0;
  std::size_t rejected = 0;
  for (int i = 0; i < 200; ++i) {
    core::RbacDelta delta;
    delta.add_user("try-user-" + std::to_string(i));
    try {
      if (svc.try_submit(std::move(delta))) ++admitted;
    } catch (const service::Overloaded&) {
      ++rejected;
    }
  }
  EXPECT_EQ(admitted + rejected, 200u);
  svc.stop();
  ASSERT_EQ(svc.writer_error(), nullptr);
  EXPECT_EQ(svc.stats().batches_applied.load(), admitted);
  // Stopped service: blocking and non-blocking submits both report closure.
  core::RbacDelta late;
  late.add_user("too-late");
  EXPECT_FALSE(svc.submit(late));
  EXPECT_FALSE(svc.try_submit(late));
}

// ---- deadlines -------------------------------------------------------------

TEST(ServiceDeadline, ExpiredSessionThrowsOnEveryAccessor) {
  const core::RbacDataset dataset = small_dataset(true);
  ScopedTempDir dir("service_deadline");
  service::AuditService svc(dir.path(), dataset, {}, {});

  const service::ReadSession session = svc.begin_read(1e-9);
  while (session.remaining_seconds() > 0.0) {
  }  // a nanosecond
  EXPECT_THROW((void)session.report(), service::DeadlineExpired);
  EXPECT_THROW((void)session.findings(), service::DeadlineExpired);
  EXPECT_THROW((void)session.group_of("R0"), service::DeadlineExpired);
  EXPECT_THROW((void)session.version(), service::DeadlineExpired);

  // An unlimited session on the same service is unaffected.
  const service::ReadSession ok = svc.begin_read();
  EXPECT_NO_THROW((void)ok.report());
}

// ---- reader API ------------------------------------------------------------

TEST(ServiceReads, GroupOfAnswersFromPinnedVersionOnly) {
  // Two roles with identical user/permission sets, plus one unrelated role.
  core::RbacDataset dataset;
  const core::Id u0 = dataset.add_user("u0");
  const core::Id u1 = dataset.add_user("u1");
  const core::Id p0 = dataset.add_permission("p0");
  const core::Id twin_a = dataset.add_role("twin-a");
  const core::Id twin_b = dataset.add_role("twin-b");
  const core::Id other = dataset.add_role("other");
  for (core::Id r : {twin_a, twin_b}) {
    dataset.assign_user(r, u0);
    dataset.assign_user(r, u1);
    dataset.grant_permission(r, p0);
  }
  dataset.assign_user(other, u0);

  ScopedTempDir dir("service_reads");
  core::AuditOptions options;
  options.detect_similar = false;
  service::AuditService svc(dir.path(), dataset, options, {});

  const service::ReadSession session = svc.begin_read();
  const service::RoleMembership membership = session.group_of("twin-a");
  ASSERT_TRUE(membership.known);
  ASSERT_EQ(membership.same_users.size(), 1u);
  EXPECT_EQ(membership.same_users.front(), "twin-b");
  ASSERT_EQ(membership.same_permissions.size(), 1u);
  EXPECT_EQ(membership.same_permissions.front(), "twin-b");
  EXPECT_FALSE(session.group_of("never-seen").known);

  // A role interned *after* the pin is invisible to this session even once a
  // newer version is published — that is what snapshot isolation means.
  core::RbacDelta delta;
  delta.add_role("late-role");
  ASSERT_TRUE(svc.submit(std::move(delta)));
  svc.stop();
  ASSERT_EQ(svc.writer_error(), nullptr);
  EXPECT_FALSE(session.group_of("late-role").known);
  EXPECT_TRUE(svc.begin_read().group_of("late-role").known);

  const service::Findings findings = session.findings();
  EXPECT_EQ(&findings.structural, &session.report().structural);
}

// ---- checkpoint-from-published regression ----------------------------------

// The bug this guards against: checkpointing the *live* engine at the
// current WAL position while a delta batch is in flight bakes a
// half-applied state into an image claiming the full log prefix. The store
// must snapshot the last *published* version at its publish-time position
// instead, and recovery must replay the tail batch on top.
TEST(ServiceCheckpoint, SnapshotCarriesPublishedVersionNotLiveWriter) {
  const core::RbacDataset dataset = small_dataset(true);
  const std::vector<core::Mutation> trace = build_trace(dataset, 10, 7);
  ScopedTempDir dir("service_ckpt");
  core::AuditOptions options;
  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;

  core::RbacDelta batch_a, batch_b;
  for (std::size_t i = 0; i < 5; ++i) batch_a.mutations.push_back(trace[i]);
  for (std::size_t i = 5; i < 10; ++i) batch_b.mutations.push_back(trace[i]);

  std::uint64_t published_digest = 0;
  std::uint64_t live_digest = 0;
  {
    store::EngineStore store =
        store::EngineStore::create(dir.path(), dataset, options, store_options);
    store.apply(batch_a);
    (void)store.reaudit();  // publishes the A-only state at 5 WAL records
    EXPECT_EQ(store.published_records(), batch_a.size());
    store.apply(batch_b);  // in flight past the published version

    published_digest = core::dataset_content_digest(*store.engine().published()->dataset);
    live_digest = core::dataset_content_digest(store.engine().state());
    ASSERT_NE(published_digest, live_digest);  // B really moved the state

    const std::filesystem::path snapshot_path = store.checkpoint();
    const store::EngineSnapshot snapshot = store::SnapshotReader(snapshot_path).read();
    // The image is the published state at its publish-time position — not
    // the live A+B state at the current position.
    EXPECT_EQ(snapshot.wal_records, batch_a.size());
    EXPECT_EQ(core::dataset_content_digest(snapshot.dataset), published_digest);
    EXPECT_EQ(snapshot.engine.version, batch_a.size());
  }

  // Recovery lands on the full committed state: snapshot A + replayed B.
  store::EngineStore recovered = store::EngineStore::open(dir.path(), options, store_options);
  EXPECT_EQ(recovered.recovery().snapshot_records, batch_a.size());
  EXPECT_EQ(recovered.recovery().replayed_records, batch_b.size());
  EXPECT_EQ(core::dataset_content_digest(recovered.engine().state()), live_digest);
}

// Before any reaudit there is no published version; checkpoint falls back to
// capturing the live engine (the single-threaded bootstrap path).
TEST(ServiceCheckpoint, FallsBackToLiveCaptureBeforeFirstPublish) {
  const core::RbacDataset dataset = small_dataset(true);
  const std::vector<core::Mutation> trace = build_trace(dataset, 4, 9);
  ScopedTempDir dir("service_ckpt_boot");
  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;

  store::EngineStore store =
      store::EngineStore::create(dir.path(), dataset, {}, store_options);
  core::RbacDelta delta;
  delta.mutations = trace;
  store.apply(delta);
  const store::EngineSnapshot snapshot =
      store::SnapshotReader(store.checkpoint()).read();
  EXPECT_EQ(snapshot.wal_records, trace.size());
  EXPECT_EQ(core::dataset_content_digest(snapshot.dataset),
            core::dataset_content_digest(store.engine().state()));
}

}  // namespace
}  // namespace rolediet
