// Unit tests for the HNSW approximate nearest-neighbor substrate.
#include <gtest/gtest.h>

#include <stdexcept>

#include "cluster/hnsw.hpp"
#include "util/prng.hpp"

namespace rolediet::cluster {
namespace {

linalg::BitMatrix points_from_rows(std::size_t cols,
                                   const std::vector<std::vector<std::size_t>>& rows) {
  linalg::BitMatrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c : rows[r]) m.set(r, c);
  }
  return m;
}

TEST(Hnsw, EmptyIndexSearchReturnsNothing) {
  const linalg::BitMatrix m(3, 10);
  const HnswIndex index(m, {});
  EXPECT_TRUE(index.search(0, 5).empty());
  EXPECT_TRUE(index.range_search(0, 3).empty());
}

TEST(Hnsw, SingleElement) {
  const auto m = points_from_rows(10, {{1, 2}});
  HnswIndex index(m, {});
  index.add(0);
  const auto hits = index.search(0, 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[0].dist, 0u);
}

TEST(Hnsw, RejectsDuplicateAddAndBadIds) {
  const auto m = points_from_rows(10, {{1}, {2}});
  HnswIndex index(m, {});
  index.add(0);
  EXPECT_THROW(index.add(0), std::invalid_argument);
  EXPECT_THROW(index.add(7), std::out_of_range);
  EXPECT_THROW(index.search(9, 1), std::out_of_range);
  EXPECT_THROW(index.range_search(9, 1), std::out_of_range);
}

TEST(Hnsw, RejectsTooSmallM) {
  const auto m = points_from_rows(10, {{1}});
  EXPECT_THROW(HnswIndex(m, {.m = 1}), std::invalid_argument);
}

TEST(Hnsw, NearestFirstOrdering) {
  const auto m = points_from_rows(50, {{1, 2, 3}, {1, 2, 3, 4}, {1, 2}, {30, 31, 32}});
  HnswIndex index(m, {});
  index.add_all();
  const auto hits = index.search(0, 4);
  ASSERT_GE(hits.size(), 3u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[0].dist, 0u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i].dist, hits[i - 1].dist);
  }
}

TEST(Hnsw, ExactDistancesReported) {
  const auto m = points_from_rows(20, {{1, 2}, {1, 2, 5}, {8, 9}});
  HnswIndex index(m, {});
  index.add_all();
  for (const auto& hit : index.search(0, 3)) {
    EXPECT_EQ(hit.dist, util::hamming_words(m.row(0), m.row(hit.id)));
  }
}

TEST(Hnsw, RangeSearchFiltersRadius) {
  const auto m = points_from_rows(20, {{1, 2}, {1, 2}, {1, 2, 3}, {10, 11, 12}});
  HnswIndex index(m, {});
  index.add_all();
  const auto within0 = index.range_search(0, 0);
  for (const auto& hit : within0) EXPECT_EQ(hit.dist, 0u);
  // Duplicates of row 0 are rows {0, 1}.
  ASSERT_EQ(within0.size(), 2u);

  const auto within1 = index.range_search(0, 1);
  EXPECT_EQ(within1.size(), 3u);  // + row 2 at distance 1

  for (const auto& hit : index.range_search(0, 2)) {
    EXPECT_NE(hit.id, 3u);  // row 3 is far away
  }
}

TEST(Hnsw, SearchVectorExternalQuery) {
  const auto m = points_from_rows(64, {{3, 4}, {10, 11}});
  HnswIndex index(m, {});
  index.add_all();
  linalg::BitMatrix query(1, 64);
  query.set(0, 3);
  query.set(0, 4);
  const auto hits = index.search_vector(query.row(0), 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 0u);
  EXPECT_EQ(hits[0].dist, 0u);
}

TEST(Hnsw, DeterministicForFixedSeed) {
  util::Xoshiro256 rng(5);
  std::vector<std::vector<std::size_t>> rows;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::size_t> row;
    for (int b = 0; b < 8; ++b) row.push_back(rng.bounded(512));
    rows.push_back(row);
  }
  const auto m = points_from_rows(512, rows);
  HnswIndex a(m, {.seed = 99});
  HnswIndex b(m, {.seed = 99});
  a.add_all();
  b.add_all();
  for (std::size_t q = 0; q < 20; ++q) {
    EXPECT_EQ(a.search(q, 5), b.search(q, 5));
  }
}

TEST(Hnsw, HighRecallOnPlantedDuplicates) {
  // 500 random rows + 50 planted duplicate pairs; recall of the duplicate
  // partner under range_search(0) should be near-perfect at default ef.
  util::Xoshiro256 rng(17);
  std::vector<std::vector<std::size_t>> rows;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::size_t> row;
    for (int b = 0; b < 10; ++b) row.push_back(rng.bounded(1024));
    rows.push_back(row);
  }
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (int i = 0; i < 50; ++i) {
    pairs.emplace_back(static_cast<std::size_t>(i * 10), rows.size());
    rows.push_back(rows[static_cast<std::size_t>(i * 10)]);
  }
  const auto m = points_from_rows(1024, rows);
  HnswIndex index(m, {});
  index.add_all();

  std::size_t found = 0;
  for (const auto& [a, b] : pairs) {
    for (const auto& hit : index.range_search(a, 0)) {
      if (hit.id == b) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 45u) << "recall collapsed: " << found << "/50";
}

TEST(Hnsw, LayerZeroStaysFullyReachable) {
  // Regression for the spanning-tree anchors: department-clustered binary
  // data with many norm-1 hub rows used to erode the in-links of non-hub
  // nodes until whole regions became unreachable from the entry point
  // (observed 94/200 orphaned nodes, duplicate recall 5%). Every node must
  // stay reachable via directed layer-0 links.
  util::Xoshiro256 rng(99);
  linalg::BitMatrix m(240, 900);
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t dept = i % 8;
    if (i % 5 == 4) {
      m.set(i, dept * 100 + rng.bounded(100));  // norm-1 hub row
      continue;
    }
    const std::size_t norm = 4 + rng.bounded(9);
    for (std::size_t k = 0; k < norm; ++k) m.set(i, dept * 100 + rng.bounded(100));
  }
  for (std::size_t i = 200; i < 240; ++i) {  // exact duplicates of earlier rows
    const std::size_t src = (i - 200) * 4;
    for (std::size_t c = 0; c < 900; ++c) m.set(i, c, m.get(src, c));
  }

  HnswIndex index(m, {});
  index.add_all();

  std::vector<bool> seen(m.rows(), false);
  std::vector<std::size_t> queue{*index.entry_id()};
  seen[queue.front()] = true;
  std::size_t reached = 0;
  while (!queue.empty()) {
    const std::size_t node = queue.back();
    queue.pop_back();
    ++reached;
    for (std::size_t nb : index.neighbors_of(node, 0)) {
      if (!seen[nb]) {
        seen[nb] = true;
        queue.push_back(nb);
      }
    }
  }
  EXPECT_EQ(reached, m.rows()) << "layer-0 graph is directionally disconnected";

  // And the practical consequence: every planted duplicate is found.
  std::size_t found = 0;
  for (std::size_t i = 200; i < 240; ++i) {
    for (const auto& hit : index.range_search(i, 0, /*min_ef=*/500)) {
      if (hit.id == (i - 200) * 4) {
        ++found;
        break;
      }
    }
  }
  EXPECT_EQ(found, 40u);
}

// ------------------------------------------------ steady-state maintenance -

TEST(Hnsw, RemoveTombstonesPointButKeepsRouting) {
  const auto m = points_from_rows(20, {{1, 2}, {1, 2}, {1, 2, 3}, {10, 11}});
  HnswIndex index(m, {});
  index.add_all();
  ASSERT_EQ(index.range_search(0, 0).size(), 2u);

  index.remove(1);
  EXPECT_FALSE(index.contains(1));
  EXPECT_TRUE(index.contains(0));
  // Tombstoned rows disappear from every result set...
  for (const auto& hit : index.range_search(0, 1)) EXPECT_NE(hit.id, 1u);
  for (const auto& hit : index.search(0, 4)) EXPECT_NE(hit.id, 1u);
  // ...but size() still counts the node (it keeps routing as a waypoint).
  EXPECT_EQ(index.size(), 4u);
  // remove is idempotent.
  index.remove(1);
  EXPECT_FALSE(index.contains(1));
}

TEST(Hnsw, RemoveAndReinsertUnindexedIdThrows) {
  const auto m = points_from_rows(10, {{1}, {2}});
  HnswIndex index(m, {});
  index.add(0);
  EXPECT_THROW(index.remove(1), std::out_of_range);
  EXPECT_THROW(index.remove(9), std::out_of_range);
  EXPECT_THROW(index.reinsert(1), std::out_of_range);
}

TEST(Hnsw, ReinsertRestoresSearchability) {
  const auto m = points_from_rows(20, {{1, 2}, {1, 2}, {1, 2, 3}, {10, 11}});
  HnswIndex index(m, {});
  index.add_all();
  index.remove(1);
  index.reinsert(1);
  EXPECT_TRUE(index.contains(1));
  bool found = false;
  for (const auto& hit : index.range_search(0, 0)) found |= (hit.id == 1u);
  EXPECT_TRUE(found);
}

TEST(Hnsw, ReinsertAfterRowMutationFindsNewNeighbors) {
  // The engine's mutated-row path: the index views a matrix whose row
  // contents changed in place; reinsert() re-runs the insertion descent so
  // the node links toward its *new* neighborhood.
  util::Xoshiro256 rng(41);
  linalg::BitMatrix m(200, 512);
  for (std::size_t i = 0; i < 200; ++i) {
    for (int b = 0; b < 6; ++b) m.set(i, rng.bounded(512));
  }
  HnswIndex index(m, {});
  index.add_all();

  // Move row 7 to be an exact duplicate of row 100 (previously unrelated).
  index.remove(7);
  for (std::size_t c = 0; c < 512; ++c) m.set(7, c, m.get(100, c));
  index.reinsert(7);

  bool found = false;
  for (const auto& hit : index.range_search(100, 0, /*min_ef=*/200)) found |= (hit.id == 7u);
  EXPECT_TRUE(found) << "reinserted duplicate not reachable from its new neighborhood";
}

TEST(Hnsw, TombstonesDoNotDisconnectLayerZero) {
  // Removing a batch of hub-ish nodes must not orphan live regions: the
  // tombstones keep their links and continue to route.
  util::Xoshiro256 rng(77);
  std::vector<std::vector<std::size_t>> rows;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::size_t> row;
    for (int b = 0; b < 8; ++b) row.push_back(rng.bounded(1024));
    rows.push_back(row);
  }
  // Plant duplicates so range_search(·, 0) has guaranteed answers.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (int i = 0; i < 30; ++i) {
    pairs.emplace_back(static_cast<std::size_t>(i * 7), rows.size());
    rows.push_back(rows[static_cast<std::size_t>(i * 7)]);
  }
  const auto m = points_from_rows(1024, rows);
  HnswIndex index(m, {});
  index.add_all();
  for (std::size_t id = 1; id < 300; id += 3) {
    if (id % 7 != 0) index.remove(id);  // keep the planted-pair anchors live
  }
  std::size_t found = 0;
  for (const auto& [a, b] : pairs) {
    for (const auto& hit : index.range_search(a, 0, /*min_ef=*/300)) {
      if (hit.id == b) {
        ++found;
        break;
      }
    }
  }
  EXPECT_GE(found, 28u) << "tombstones degraded recall: " << found << "/30";
}

TEST(Hnsw, MaxLevelGrowsWithSize) {
  util::Xoshiro256 rng(23);
  std::vector<std::vector<std::size_t>> rows;
  for (int i = 0; i < 2'000; ++i) rows.push_back({rng.bounded(4096), rng.bounded(4096)});
  const auto m = points_from_rows(4096, rows);
  HnswIndex index(m, {});
  index.add_all();
  EXPECT_EQ(index.size(), 2'000u);
  EXPECT_GE(index.max_level(), 1);
}

}  // namespace
}  // namespace rolediet::cluster
