// Role-mining subsystem tests: UPA class construction, exact maximal-biclique
// enumeration against brute force on hand-built bipartite graphs, constraint
// caps (enforcement and infeasibility), the bi-objective weight knob's
// monotonicity guarantee, planted-decomposition recovery within the
// documented slack, determinism across thread counts and backends, and
// equivalence verification on churn and adversarial corpora.
//
// Determinism case names end in T1/T2/T8 so the sanitizer jobs can select
// thread counts with --gtest_filter.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/consolidation.hpp"
#include "core/engine.hpp"
#include "gen/adversarial.hpp"
#include "gen/churn.hpp"
#include "gen/org_simulator.hpp"
#include "gen/planted.hpp"
#include "io/journal.hpp"
#include "mining/biclique.hpp"
#include "mining/miner.hpp"
#include "mining/upa.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace rolediet::mining {
namespace {

/// Dataset whose effective UPA is exactly `rows`: user i holds a personal
/// role granting rows[i]. Permission ids are the row values.
core::RbacDataset dataset_from_rows(std::size_t num_permissions,
                                    const std::vector<std::vector<core::Id>>& rows) {
  core::RbacDataset d;
  d.add_users(rows.size());
  d.add_permissions(num_permissions);
  for (std::size_t u = 0; u < rows.size(); ++u) {
    const core::Id role = d.add_role("r-" + std::to_string(u));
    d.assign_user(role, static_cast<core::Id>(u));
    for (const core::Id perm : rows[u]) d.grant_permission(role, perm);
  }
  return d;
}

/// Reference enumeration: every distinct non-empty intersection of a
/// non-empty subset of the class rows (the definition the semilattice
/// fixpoint in mining/biclique.cpp must reproduce exactly).
std::set<std::vector<core::Id>> brute_force_closed_sets(const UpaClasses& upa) {
  const std::size_t n = upa.num_classes();
  EXPECT_LE(n, 20u) << "brute force is exponential in the class count";
  std::vector<std::vector<core::Id>> rows(n);
  for (std::size_t cls = 0; cls < n; ++cls) {
    const auto row = upa.rows.row(cls);
    rows[cls].assign(row.begin(), row.end());
  }
  std::set<std::vector<core::Id>> closed;
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::vector<core::Id> inter;
    bool first = true;
    for (std::size_t cls = 0; cls < n; ++cls) {
      if ((mask & (std::size_t{1} << cls)) == 0) continue;
      if (first) {
        inter = rows[cls];
        first = false;
        continue;
      }
      std::vector<core::Id> next;
      std::set_intersection(inter.begin(), inter.end(), rows[cls].begin(), rows[cls].end(),
                            std::back_inserter(next));
      inter = std::move(next);
      if (inter.empty()) break;
    }
    if (!inter.empty()) closed.insert(std::move(inter));
  }
  return closed;
}

/// Canonical rendering of a plan's decomposition (role order is part of the
/// determinism contract, so the fingerprint keeps it).
std::string plan_fingerprint(const MiningPlan& plan) {
  std::ostringstream out;
  for (const MinedRole& role : plan.roles) {
    out << role.name << "|p:";
    for (const core::Id perm : role.permissions) out << perm << ",";
    out << "|u:";
    for (const core::Id user : role.users) out << user << ",";
    out << "\n";
  }
  return out.str();
}

/// Largest role count held by any single user in the plan.
std::size_t max_roles_per_user(const MiningPlan& plan) {
  std::map<core::Id, std::size_t> counts;
  for (const MinedRole& role : plan.roles) {
    for (const core::Id user : role.users) ++counts[user];
  }
  std::size_t max = 0;
  for (const auto& [user, count] : counts) max = std::max(max, count);
  return max;
}

std::size_t max_perms_per_role(const MiningPlan& plan) {
  std::size_t max = 0;
  for (const MinedRole& role : plan.roles) max = std::max(max, role.permissions.size());
  return max;
}

void expect_unique_role_names(const MiningPlan& plan) {
  std::set<std::string> names;
  for (const MinedRole& role : plan.roles) {
    EXPECT_TRUE(names.insert(role.name).second) << "duplicate role name: " << role.name;
  }
}

// ---- UPA classes -----------------------------------------------------------

TEST(UpaClasses, Figure1CollapsesUsersIntoWeightedClasses) {
  // Fig. 1 effective rows: U01 -> {P02}; U02, U03 -> {P04, P05} (R02 grants
  // nothing); U04 -> {P04, P05} via R05. Two classes, ordered by smallest
  // member user id.
  const UpaClasses upa = build_upa_classes(rolediet::testing::figure1_dataset());
  ASSERT_EQ(upa.num_classes(), 2u);
  EXPECT_EQ(upa.num_users, 4u);
  EXPECT_EQ(upa.covered_users, 4u);
  EXPECT_EQ(upa.num_permissions, 6u);
  EXPECT_EQ(upa.cells, 1u * 1 + 3u * 2);
  EXPECT_EQ(upa.weight(0), 1u);
  EXPECT_EQ(upa.weight(1), 3u);
  EXPECT_EQ(upa.members[0], (std::vector<core::Id>{0}));
  EXPECT_EQ(upa.members[1], (std::vector<core::Id>{1, 2, 3}));
  const auto row0 = upa.rows.row(0);
  const auto row1 = upa.rows.row(1);
  EXPECT_EQ(std::vector<core::Id>(row0.begin(), row0.end()), (std::vector<core::Id>{1}));
  EXPECT_EQ(std::vector<core::Id>(row1.begin(), row1.end()), (std::vector<core::Id>{3, 4}));
}

// ---- maximal-biclique enumeration ------------------------------------------

TEST(BicliqueEnumeration, MatchesBruteForceOnHandBuiltGraphs) {
  const std::vector<std::pair<std::size_t, std::vector<std::vector<core::Id>>>> graphs = {
      // chain of overlapping rows
      {6, {{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}},
      // nested and crossing sets
      {4, {{0, 1, 2, 3}, {0, 1}, {2, 3}, {0, 2}}},
      // pairwise-disjoint blocks: no intersections at all
      {6, {{0, 1}, {2, 3}, {4, 5}}},
      // crown: every pair of a triangle
      {3, {{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}}},
      // duplicate rows collapse into one class first
      {5, {{0, 1, 2}, {0, 1, 2}, {1, 2, 3}, {2, 3, 4}}},
  };
  for (const auto& [num_perms, rows] : graphs) {
    const UpaClasses upa = build_upa_classes(dataset_from_rows(num_perms, rows));
    BicliqueOptions options;
    options.max_candidates = 0;  // unlimited
    const CandidateSet candidates = enumerate_closed_sets(upa, options);
    EXPECT_FALSE(candidates.truncated);
    EXPECT_EQ(candidates.num_seeds, upa.num_classes());
    const std::set<std::vector<core::Id>> expected = brute_force_closed_sets(upa);
    const std::set<std::vector<core::Id>> actual(candidates.permission_sets.begin(),
                                                 candidates.permission_sets.end());
    EXPECT_EQ(actual.size(), candidates.permission_sets.size()) << "duplicate candidate emitted";
    EXPECT_EQ(actual, expected);
  }
}

TEST(BicliqueEnumeration, MatchesBruteForceOnSeededRandomGraph) {
  util::Xoshiro256 rng(42);
  std::vector<std::vector<core::Id>> rows(10);
  for (auto& row : rows) {
    std::set<core::Id> perms;
    const std::size_t size = 1 + rng.bounded(5);
    while (perms.size() < size) perms.insert(static_cast<core::Id>(rng.bounded(12)));
    row.assign(perms.begin(), perms.end());
  }
  const UpaClasses upa = build_upa_classes(dataset_from_rows(12, rows));
  BicliqueOptions options;
  options.max_candidates = 0;
  const CandidateSet candidates = enumerate_closed_sets(upa, options);
  EXPECT_FALSE(candidates.truncated);
  const std::set<std::vector<core::Id>> actual(candidates.permission_sets.begin(),
                                               candidates.permission_sets.end());
  EXPECT_EQ(actual, brute_force_closed_sets(upa));
}

TEST(BicliqueEnumeration, CandidateCapTruncatesToGenuineClosedSets) {
  const std::vector<std::vector<core::Id>> rows = {{1, 2, 3}, {2, 3, 4}, {3, 4, 5}, {1, 3, 5}};
  const UpaClasses upa = build_upa_classes(dataset_from_rows(6, rows));
  const std::set<std::vector<core::Id>> all = brute_force_closed_sets(upa);

  BicliqueOptions capped;
  capped.max_candidates = upa.num_classes() + 1;
  const CandidateSet candidates = enumerate_closed_sets(upa, capped);
  EXPECT_TRUE(candidates.truncated);
  EXPECT_LE(candidates.permission_sets.size(), capped.max_candidates);
  // Truncation costs completeness only: everything emitted is still closed.
  for (const std::vector<core::Id>& set : candidates.permission_sets) {
    EXPECT_TRUE(all.contains(set));
  }
}

// ---- planted recovery ------------------------------------------------------

TEST(Mining, RecoversPlantedDecompositionExactly) {
  gen::PlantedParams params;
  params.roles = 12;
  params.users = 240;
  params.perms_per_role = 6;
  params.roles_per_user = 3;
  params.noise_users = 0;
  params.duplicates_per_role = 4;
  params.seed = 3;
  const gen::PlantedDataset planted = gen::generate_planted(params);
  EXPECT_EQ(planted.dataset.num_roles(), 48u);

  const MiningOutcome outcome = mine(planted.dataset, MiningOptions{});
  EXPECT_TRUE(outcome.verified);
  EXPECT_FALSE(outcome.plan.stats.enumeration_truncated);
  // Disjoint blocks with one exclusive seed user each: no equivalent
  // decomposition has fewer than K roles, and the miner must not need more.
  EXPECT_EQ(outcome.plan.stats.roles_after, params.roles);
  expect_unique_role_names(outcome.plan);
}

TEST(Mining, PlantedRecoveryStaysWithinDocumentedSlack) {
  gen::PlantedParams params;
  params.roles = 20;
  params.users = 400;
  params.perms_per_role = 8;
  params.roles_per_user = 3;
  params.noise_users = 15;
  params.duplicates_per_role = 4;
  params.seed = 5;
  const gen::PlantedDataset planted = gen::generate_planted(params);
  EXPECT_EQ(planted.recoverable_bound(), 35u);

  const MiningOutcome outcome = mine(planted.dataset, MiningOptions{});
  EXPECT_TRUE(outcome.verified);
  EXPECT_FALSE(outcome.plan.stats.enumeration_truncated);
  EXPECT_LE(outcome.plan.stats.roles_after, planted.recoverable_bound());
  EXPECT_GE(outcome.plan.stats.roles_after, params.roles);
}

// ---- reduction vs the duplicate-merge baseline -----------------------------

TEST(Mining, BeatsDuplicateMergeBaselineOnOrgWorkload) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  core::ConsolidationStats baseline;
  (void)core::consolidate_duplicates(org.dataset, &baseline);

  const MiningOutcome outcome = mine(org.dataset, MiningOptions{});
  EXPECT_TRUE(outcome.verified);
  EXPECT_LE(outcome.plan.stats.roles_after, baseline.roles_after);
  // The paper's duplicate-merge findings hover around a 10% role reduction;
  // mining the same workload must do at least that well.
  EXPECT_GE(outcome.plan.stats.role_reduction(), 0.10);
  expect_unique_role_names(outcome.plan);
}

// ---- constraint caps -------------------------------------------------------

TEST(Mining, CapsAreEnforced) {
  gen::PlantedParams params;
  params.roles = 10;
  params.users = 150;
  params.perms_per_role = 6;
  params.roles_per_user = 3;
  params.noise_users = 5;
  params.duplicates_per_role = 3;
  params.seed = 11;
  const gen::PlantedDataset planted = gen::generate_planted(params);

  MiningOptions options;
  options.max_perms_per_role = 4;
  options.max_roles_per_user = 8;
  const MiningOutcome outcome = mine(planted.dataset, options);
  EXPECT_TRUE(outcome.verified);
  EXPECT_LE(max_perms_per_role(outcome.plan), options.max_perms_per_role);
  EXPECT_LE(max_roles_per_user(outcome.plan), options.max_roles_per_user);
}

TEST(Mining, InfeasibleCapsThrow) {
  // One user with 9 permissions: 2-permission roles need ceil(9/2) = 5 of
  // them, but only 3 are allowed per user.
  const core::RbacDataset dataset =
      dataset_from_rows(9, {{0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1}});
  MiningOptions options;
  options.max_perms_per_role = 2;
  options.max_roles_per_user = 3;
  EXPECT_THROW((void)plan_mining(dataset, options), std::invalid_argument);
  options.max_roles_per_user = 5;
  EXPECT_TRUE(mine(dataset, options).verified);
}

TEST(Mining, InvalidWeightsThrow) {
  const core::RbacDataset dataset = rolediet::testing::figure1_dataset();
  MiningOptions options;
  options.role_weight = -1.0;
  EXPECT_THROW((void)plan_mining(dataset, options), std::invalid_argument);
  options.role_weight = 0.0;
  options.edge_weight = 0.0;
  EXPECT_THROW((void)plan_mining(dataset, options), std::invalid_argument);
}

// ---- bi-objective weights --------------------------------------------------

TEST(Mining, EdgeWeightKnobIsMonotone) {
  // The plan is the scalarized argmin over a fixed portfolio of greedy
  // passes, so raising edge_weight can never increase the edge count (and,
  // symmetrically, never decrease the role count). The ladder here includes
  // the regime changes observed in development.
  gen::PlantedParams params;
  params.roles = 14;
  params.users = 200;
  params.perms_per_role = 6;
  params.roles_per_user = 3;
  params.noise_users = 6;
  params.duplicates_per_role = 2;
  params.seed = 9;
  const core::RbacDataset planted = gen::generate_planted(params).dataset;
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());

  for (const core::RbacDataset* dataset : {&planted, &org.dataset}) {
    std::size_t previous_edges = 0;
    std::size_t previous_roles = 0;
    bool first = true;
    for (const double weight : {0.0, 0.05, 0.25, 1.0, 4.0, 16.0}) {
      MiningOptions options;
      options.edge_weight = weight;
      const MiningPlan plan = plan_mining(*dataset, options);
      if (!first) {
        EXPECT_LE(plan.stats.edges_after(), previous_edges) << "edge_weight " << weight;
        EXPECT_GE(plan.stats.roles_after, previous_roles) << "edge_weight " << weight;
      }
      previous_edges = plan.stats.edges_after();
      previous_roles = plan.stats.roles_after;
      first = false;
    }
  }
}

// ---- determinism across threads and backends -------------------------------

struct DeterminismCase {
  linalg::RowBackend backend;
  std::size_t threads;
};

std::string determinism_case_name(const ::testing::TestParamInfo<DeterminismCase>& info) {
  const DeterminismCase& c = info.param;
  return std::string(c.backend == linalg::RowBackend::kDense ? "Dense" : "Sparse") + "T" +
         std::to_string(c.threads);
}

class MiningDeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(MiningDeterminismTest, PlanIsIdenticalToSerialSparseReference) {
  gen::PlantedParams params;
  params.roles = 16;
  params.users = 300;
  params.perms_per_role = 6;
  params.roles_per_user = 3;
  params.noise_users = 8;
  params.duplicates_per_role = 3;
  params.seed = 13;
  const core::RbacDataset dataset = gen::generate_planted(params).dataset;

  MiningOptions reference_options;
  reference_options.backend = linalg::RowBackend::kSparse;
  reference_options.threads = 1;
  reference_options.max_perms_per_role = 5;
  reference_options.edge_weight = 0.25;
  const MiningPlan reference = plan_mining(dataset, reference_options);

  MiningOptions options = reference_options;
  options.backend = GetParam().backend;
  options.threads = GetParam().threads;
  const MiningPlan plan = plan_mining(dataset, options);
  EXPECT_EQ(plan_fingerprint(plan), plan_fingerprint(reference));
  EXPECT_EQ(plan.stats.candidate_pool, reference.stats.candidate_pool);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, MiningDeterminismTest,
    ::testing::Values(DeterminismCase{linalg::RowBackend::kDense, 1},
                      DeterminismCase{linalg::RowBackend::kDense, 2},
                      DeterminismCase{linalg::RowBackend::kDense, 8},
                      DeterminismCase{linalg::RowBackend::kSparse, 1},
                      DeterminismCase{linalg::RowBackend::kSparse, 2},
                      DeterminismCase{linalg::RowBackend::kSparse, 8}),
    determinism_case_name);

// ---- operational corpora ---------------------------------------------------

TEST(Mining, ChurnLifecycleDatasetMinesEquivalently) {
  // The compact churn calendar from churn_replay_test: every lifecycle phase
  // in a few thousand mutations.
  gen::ChurnConfig config;
  config.seed = 17;
  config.initial_employees = 80;
  config.years = 3;
  config.days_per_year = 120;
  config.daily_hire_rate = 0.004;
  config.daily_attrition_rate = 0.003;
  config.daily_transfer_rate = 0.004;
  config.daily_sprawl_rate = 0.01;
  config.reorg_burst_days = 6;
  config.reorg_intensity = 0.05;
  config.onboarding_wave_fraction = 0.05;
  config.layoff_fraction = 0.1;

  std::stringstream journal;
  (void)gen::write_churn_journal(journal, config);
  core::AuditEngine engine{core::RbacDataset{}};
  engine.apply(io::read_journal(journal));
  const core::RbacDataset dataset = engine.snapshot();
  ASSERT_GT(dataset.num_users(), 0u);

  MiningOptions options;
  options.threads = 4;
  const MiningOutcome outcome = mine(dataset, options);
  EXPECT_TRUE(outcome.verified);
  EXPECT_LE(outcome.plan.stats.roles_after, outcome.plan.stats.roles_before);
  expect_unique_role_names(outcome.plan);

  options.max_roles_per_user = 12;
  const MiningOutcome capped = mine(dataset, options);
  EXPECT_TRUE(capped.verified);
  EXPECT_LE(max_roles_per_user(capped.plan), options.max_roles_per_user);
}

TEST(Mining, AdversarialCorporaMineEquivalently) {
  gen::AdversarialParams params;
  params.scale = 24;
  params.similarity_threshold = 2;
  params.jaccard_dissimilarity = 0.3;
  for (const gen::AdversarialScenario scenario : gen::kAllAdversarialScenarios) {
    const core::RbacDataset dataset = gen::make_adversarial(scenario, params);
    const MiningOutcome outcome = mine(dataset, MiningOptions{});
    EXPECT_TRUE(outcome.verified) << gen::to_string(scenario);
    expect_unique_role_names(outcome.plan);
  }
}

}  // namespace
}  // namespace rolediet::mining
