// Durable sharded store suite: churn-replay recovery, mid-stream
// checkpoints, and crash cuts across the S+1 WAL streams.
//
// The recovery contract mirrors EngineStore's, batch-atomically: opening a
// sharded store yields an engine byte-identical (findings, version, digest)
// to a from-scratch engine that applied the committed batch prefix — where
// "committed" means the batch's coordinator commit marker AND every shard
// record it claims survived. Truncating any stream's tail can only roll the
// store back to an earlier batch boundary, never to a torn mid-batch state.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "core/sharded_engine.hpp"
#include "gen/churn.hpp"
#include "store/sharded_store.hpp"
#include "test_helpers.hpp"

namespace rolediet {
namespace {

namespace fs = std::filesystem;

using rolediet::testing::ScopedTempDir;
using store::ShardedEngineStore;
using store::StoreOptions;

std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

gen::ChurnConfig compact_config(std::uint64_t seed) {
  gen::ChurnConfig config;
  config.seed = seed;
  config.initial_employees = 60;
  config.years = 1;
  config.days_per_year = 90;
  config.daily_hire_rate = 0.004;
  config.daily_attrition_rate = 0.003;
  config.daily_transfer_rate = 0.004;
  config.daily_sprawl_rate = 0.01;
  config.reorg_burst_days = 6;
  config.reorg_intensity = 0.05;
  config.onboarding_wave_fraction = 0.05;
  config.layoff_fraction = 0.1;
  return config;
}

core::AuditOptions default_options() {
  core::AuditOptions options;
  options.method = core::Method::kRoleDiet;
  options.similarity_threshold = 1;
  return options;
}

/// Churn stream day-by-day through a 3-shard store with checkpoints
/// mid-stream; at every boundary a copy of the directory is recovered and
/// compared against a from-scratch unsharded engine that applied the same
/// history — which pins recovery correctness AND the sharded/unsharded
/// findings contract in one assertion.
TEST(ShardedStoreChurn, RecoveryMatchesReplayAtEveryCheckpointBoundary) {
  const core::AuditOptions options = default_options();
  StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;
  constexpr std::size_t kShards = 3;
  constexpr std::size_t kCheckpointDays = 30;

  ScopedTempDir root("shardedstore");
  const fs::path store_dir = root.file("store");
  ShardedEngineStore durable = ShardedEngineStore::create(store_dir, core::RbacDataset{},
                                                          kShards, options, store_options);

  gen::ChurnSimulator sim(compact_config(/*seed=*/17));
  core::RbacDelta history;
  std::size_t boundaries = 0;
  while (!sim.done()) {
    const std::size_t day = sim.day();
    const core::RbacDelta delta = sim.next_day();
    history.mutations.insert(history.mutations.end(), delta.mutations.begin(),
                             delta.mutations.end());
    if (!delta.empty()) durable.apply(delta);

    const bool boundary = day % kCheckpointDays == 0 || sim.done();
    if (!boundary) continue;
    SCOPED_TRACE("day " + std::to_string(day) + ", " + std::to_string(history.size()) +
                 " mutations");

    const fs::path copy = root.file("recover-" + std::to_string(day));
    fs::copy(store_dir, copy, fs::copy_options::recursive);
    ShardedEngineStore recovered = ShardedEngineStore::open(copy, options, store_options);
    EXPECT_EQ(recovered.records(), durable.records());
    EXPECT_EQ(recovered.num_shards(), kShards);

    core::AuditEngine from_scratch(core::RbacDataset{}, options);
    from_scratch.apply(history);
    EXPECT_EQ(findings_text(recovered.engine().reaudit()),
              findings_text(from_scratch.reaudit()));
    fs::remove_all(copy);

    // Mid-stream checkpoint: the next boundary recovers bodies + WAL tail.
    (void)durable.checkpoint();
    ++boundaries;
  }
  EXPECT_GE(boundaries, 3u);
  EXPECT_GT(durable.checkpoint_id(), 2u);
}

/// Applies `batches[0..n)` to a fresh unsharded engine for prefix reports.
std::string prefix_findings(const std::vector<core::RbacDelta>& batches, std::size_t n,
                            const core::AuditOptions& options) {
  core::AuditEngine engine(core::RbacDataset{}, options);
  for (std::size_t i = 0; i < n; ++i) engine.apply(batches[i]);
  return findings_text(engine.reaudit());
}

std::vector<core::RbacDelta> small_batches() {
  std::vector<core::RbacDelta> batches;
  gen::ChurnSimulator sim(compact_config(/*seed=*/5));
  while (!sim.done() && batches.size() < 12) {
    core::RbacDelta delta = sim.next_day();
    if (!delta.empty()) batches.push_back(std::move(delta));
  }
  return batches;
}

/// The last WAL segment of one stream, by starting record index.
fs::path last_segment(const fs::path& stream_dir) {
  const std::vector<fs::path> segments = store::list_wal_segments(stream_dir);
  EXPECT_FALSE(segments.empty()) << stream_dir;
  return segments.back();
}

/// Truncating the tail of any stream — coordinator or shard — must roll the
/// store back to a committed batch boundary: the recovered findings equal a
/// from-scratch engine that applied the first (checkpointed + replayed
/// commits) batches, at every byte-granularity cut depth.
TEST(ShardedStoreFaults, TailCutsRollBackToBatchBoundaries) {
  const core::AuditOptions options = default_options();
  StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;
  constexpr std::size_t kShards = 3;
  const std::vector<core::RbacDelta> batches = small_batches();
  ASSERT_GE(batches.size(), 8u);
  const std::size_t checkpoint_after = 4;  // batches baked into the bodies

  ScopedTempDir root("shardfault");
  const fs::path store_dir = root.file("store");
  {
    ShardedEngineStore durable = ShardedEngineStore::create(store_dir, core::RbacDataset{},
                                                            kShards, options, store_options);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      durable.apply(batches[i]);
      if (i + 1 == checkpoint_after) (void)durable.checkpoint();
    }
  }

  const std::vector<fs::path> streams = {store_dir / "coord", store_dir / "shard-000",
                                         store_dir / "shard-001", store_dir / "shard-002"};
  for (const fs::path& stream : streams) {
    const fs::path segment = last_segment(stream);
    const std::uintmax_t size = fs::file_size(segment);
    // Cut progressively deeper tails off this stream's last segment.
    for (std::uintmax_t cut = 7; cut < size; cut += 53) {
      SCOPED_TRACE(stream.filename().string() + " cut " + std::to_string(cut) + " of " +
                   std::to_string(size));
      const fs::path copy = root.file("cut");
      fs::copy(store_dir, copy, fs::copy_options::recursive);
      fs::resize_file(copy / stream.filename() / segment.filename(), size - cut);

      ShardedEngineStore recovered = ShardedEngineStore::open(copy, options, store_options);
      const std::size_t surviving =
          checkpoint_after + recovered.recovery().commits_applied;
      ASSERT_LE(surviving, batches.size());
      EXPECT_EQ(findings_text(recovered.engine().reaudit()),
                prefix_findings(batches, surviving, options));

      // The reopened store accepts new batches and survives another open.
      recovered.apply(batches.back());
      EXPECT_NO_THROW((void)ShardedEngineStore::open(copy, options, store_options));
      fs::remove_all(copy);
    }
  }
}

TEST(ShardedStoreLayout, CreateOpenValidationAndDetection) {
  const core::AuditOptions options = default_options();
  ScopedTempDir root("shardlayout");
  const fs::path dir = root.file("store");

  EXPECT_FALSE(ShardedEngineStore::is_sharded_store(dir));
  EXPECT_THROW((void)ShardedEngineStore::open(dir, options), store::StoreError);
  EXPECT_THROW(
      (void)ShardedEngineStore::create(dir, core::RbacDataset{}, 0, options),
      store::StoreError);

  {
    ShardedEngineStore created =
        ShardedEngineStore::create(dir, testing::figure1_dataset(), 2, options);
    EXPECT_EQ(created.num_shards(), 2u);
    EXPECT_EQ(created.checkpoint_id(), 0u);
  }
  EXPECT_TRUE(ShardedEngineStore::is_sharded_store(dir));
  EXPECT_TRUE(fs::is_regular_file(dir / "MANIFEST"));
  EXPECT_TRUE(fs::is_directory(dir / "coord"));
  EXPECT_TRUE(fs::is_directory(dir / "shard-001"));

  // A second create on a live store must refuse.
  EXPECT_THROW(
      (void)ShardedEngineStore::create(dir, core::RbacDataset{}, 2, options),
      store::StoreError);

  // A flipped byte in a shard body fails the open with a checksum error.
  {
    const fs::path copy = root.file("corrupt");
    fs::copy(dir, copy, fs::copy_options::recursive);
    fs::path body;
    for (const auto& entry : fs::directory_iterator(copy / "shard-000")) {
      if (entry.path().extension() == ".rdbody") body = entry.path();
    }
    ASSERT_FALSE(body.empty());
    std::fstream f(body, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(60);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(60);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
    f.close();
    EXPECT_THROW((void)ShardedEngineStore::open(copy, options), store::StoreError);
  }
}

TEST(ShardedStoreCheckpoint, PrunesSupersededGenerationsAndResumesAppends) {
  const core::AuditOptions options = default_options();
  ScopedTempDir root("shardckpt");
  const fs::path dir = root.file("store");
  const std::vector<core::RbacDelta> batches = small_batches();
  ASSERT_GE(batches.size(), 4u);

  {
    ShardedEngineStore durable =
        ShardedEngineStore::create(dir, testing::figure1_dataset(), 2, options);
    durable.apply(batches[0]);
    EXPECT_EQ(durable.checkpoint(), 1u);
    durable.apply(batches[1]);
    EXPECT_EQ(durable.checkpoint(), 2u);
    durable.apply(batches[2]);
  }

  // Only generation 2 survives pruning, in every lineage.
  std::size_t names_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".rdnames") ++names_files;
  }
  EXPECT_EQ(names_files, 1u);
  for (const std::string shard : {"shard-000", "shard-001"}) {
    std::size_t bodies = 0;
    for (const auto& entry : fs::directory_iterator(dir / shard)) {
      if (entry.path().extension() == ".rdbody") ++bodies;
    }
    EXPECT_EQ(bodies, 1u) << shard;
  }

  // Reopen: bodies + the unpruned tail batch; rows served through the mmap.
  ShardedEngineStore reopened = ShardedEngineStore::open(dir, options);
  EXPECT_EQ(reopened.checkpoint_id(), 2u);
  EXPECT_EQ(reopened.recovery().commits_applied, 1u);
  core::AuditEngine reference(testing::figure1_dataset(), options);
  for (std::size_t i = 0; i < 3; ++i) reference.apply(batches[i]);
  EXPECT_EQ(findings_text(reopened.engine().reaudit()), findings_text(reference.reaudit()));

  // Appends resume on the surviving segments and survive one more cycle.
  reopened.apply(batches[3]);
  EXPECT_EQ(reopened.checkpoint(), 3u);
}

}  // namespace
}  // namespace rolediet
