// Unit tests for the dense packed bit matrix.
#include <gtest/gtest.h>

#include "linalg/bit_matrix.hpp"

namespace rolediet::linalg {
namespace {

TEST(BitMatrix, DefaultIsEmpty) {
  const BitMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(BitMatrix, ConstructedZeroed) {
  const BitMatrix m(3, 70);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 70u);
  EXPECT_EQ(m.words_per_row(), 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 70; ++c) EXPECT_FALSE(m.get(r, c));
  }
}

TEST(BitMatrix, SetAndGetAcrossWordBoundary) {
  BitMatrix m(2, 130);
  m.set(0, 0);
  m.set(0, 63);
  m.set(0, 64);
  m.set(1, 129);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(0, 63));
  EXPECT_TRUE(m.get(0, 64));
  EXPECT_TRUE(m.get(1, 129));
  EXPECT_FALSE(m.get(1, 0));
  EXPECT_FALSE(m.get(0, 129));
}

TEST(BitMatrix, ClearBit) {
  BitMatrix m(1, 10);
  m.set(0, 5);
  EXPECT_TRUE(m.get(0, 5));
  m.set(0, 5, false);
  EXPECT_FALSE(m.get(0, 5));
}

TEST(BitMatrix, RowPopcount) {
  BitMatrix m(2, 200);
  for (std::size_t c = 0; c < 200; c += 3) m.set(0, c);
  EXPECT_EQ(m.row_popcount(0), 67u);
  EXPECT_EQ(m.row_popcount(1), 0u);
}

TEST(BitMatrix, RowHammingAndEquality) {
  BitMatrix m(3, 100);
  m.set(0, 10);
  m.set(0, 90);
  m.set(1, 10);
  m.set(1, 90);
  m.set(2, 10);
  m.set(2, 91);
  EXPECT_EQ(m.row_hamming(0, 1), 0u);
  EXPECT_TRUE(m.rows_equal(0, 1));
  EXPECT_EQ(m.row_hamming(0, 2), 2u);
  EXPECT_FALSE(m.rows_equal(0, 2));
}

TEST(BitMatrix, RowHammingBounded) {
  BitMatrix m(2, 256);
  for (std::size_t c = 0; c < 256; c += 2) m.set(0, c);
  // Row 1 empty: true distance 128; bounded at 5 must exceed 5.
  EXPECT_GT(m.row_hamming_bounded(0, 1, 5), 5u);
  EXPECT_EQ(m.row_hamming_bounded(0, 0, 5), 0u);
}

TEST(BitMatrix, RowIntersection) {
  BitMatrix m(2, 64);
  m.set(0, 1);
  m.set(0, 2);
  m.set(0, 3);
  m.set(1, 2);
  m.set(1, 3);
  m.set(1, 4);
  EXPECT_EQ(m.row_intersection(0, 1), 2u);
}

TEST(BitMatrix, RowHashEqualRowsMatch) {
  BitMatrix m(3, 500);
  for (std::size_t c : {7u, 77u, 477u}) {
    m.set(0, c);
    m.set(1, c);
  }
  m.set(2, 7);
  EXPECT_EQ(m.row_hash(0), m.row_hash(1));
  EXPECT_NE(m.row_hash(0), m.row_hash(2));
}

TEST(BitMatrix, ColumnSums) {
  BitMatrix m(3, 70);
  m.set(0, 0);
  m.set(1, 0);
  m.set(2, 0);
  m.set(1, 69);
  const auto sums = m.column_sums();
  ASSERT_EQ(sums.size(), 70u);
  EXPECT_EQ(sums[0], 3u);
  EXPECT_EQ(sums[69], 1u);
  EXPECT_EQ(sums[35], 0u);
}

TEST(BitMatrix, RowSums) {
  BitMatrix m(2, 10);
  m.set(0, 1);
  m.set(0, 2);
  const auto sums = m.row_sums();
  EXPECT_EQ(sums, (std::vector<std::size_t>{2, 0}));
}

TEST(BitMatrix, ClearResetsAllBits) {
  BitMatrix m(2, 64);
  m.set(0, 3);
  m.set(1, 60);
  m.clear();
  EXPECT_EQ(m.row_popcount(0), 0u);
  EXPECT_EQ(m.row_popcount(1), 0u);
}

TEST(BitMatrix, EqualityOperator) {
  BitMatrix a(2, 10);
  BitMatrix b(2, 10);
  EXPECT_EQ(a, b);
  a.set(0, 5);
  EXPECT_NE(a, b);
  b.set(0, 5);
  EXPECT_EQ(a, b);
}

TEST(BitMatrix, RowMutBulkWrite) {
  BitMatrix m(1, 64);
  auto words = m.row_mut(0);
  words[0] = 0xFF;
  EXPECT_EQ(m.row_popcount(0), 8u);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(0, 7));
  EXPECT_FALSE(m.get(0, 8));
}

}  // namespace
}  // namespace rolediet::linalg
