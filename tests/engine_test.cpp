// Steady-state AuditEngine contract tests (core/engine.hpp).
//
// The load-bearing property is the byte-identity contract: for every method
// except approx-hnsw, reaudit() after a mutation batch reports exactly what a
// fresh batch audit() of snapshot() reports — same groups, same structural
// findings, same shape — at every thread count, row backend, and similarity
// mode. The fuzz suite drives ~50 seeded mutation traces through the engine
// and checks the contract after every batch; the work *counters* are allowed
// to differ (the whole point is that the delta path does less work), so the
// canonical rendering zeroes them along with wall-clock timings.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "core/methods/exact.hpp"
#include "io/csv.hpp"
#include "io/journal.hpp"
#include "util/prng.hpp"

namespace rolediet {
namespace {

using core::AuditEngine;
using core::AuditOptions;
using core::AuditReport;
using core::Method;
using core::Mutation;
using core::MutationKind;
using core::RbacDelta;

/// Renders a report keeping only what the byte-identity contract covers:
/// findings and dataset shape. Timings, work counters, and the options echo
/// (identical here anyway) are reset.
std::string canonical_text(AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    t->seconds = 0.0;
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  // The live engine's version counter differs from a fresh batch engine's
  // (which starts at 0); the dataset digest must NOT differ, so it stays —
  // it is part of what the identity contract covers.
  report.engine_version = 0;
  report.options = AuditOptions{};
  return report.to_text();
}

/// Small random starting dataset: R roles with random user/permission sets,
/// including some duplicate rows so type 4/5 findings exist from the start.
core::RbacDataset seed_dataset(util::Xoshiro256& rng) {
  core::RbacDataset d;
  const std::size_t users = 24 + rng.bounded(16);
  const std::size_t perms = 24 + rng.bounded(16);
  const std::size_t roles = 30 + rng.bounded(25);
  for (std::size_t u = 0; u < users; ++u) d.add_user("U" + std::to_string(u));
  for (std::size_t p = 0; p < perms; ++p) d.add_permission("P" + std::to_string(p));
  for (std::size_t r = 0; r < roles; ++r) d.add_role("R" + std::to_string(r));
  for (std::size_t r = 0; r < roles; ++r) {
    if (r % 7 == 6) continue;  // leave some roles empty (type-2 material)
    const std::size_t src = (r % 5 == 4) ? r - 1 : r;  // every 5th duplicates its neighbor
    util::Xoshiro256 content(0xD00D + src * 7919);
    const std::size_t nu = 1 + content.bounded(6);
    for (std::size_t k = 0; k < nu; ++k)
      d.assign_user(static_cast<core::Id>(r), static_cast<core::Id>(content.bounded(users)));
    const std::size_t np = 1 + content.bounded(6);
    for (std::size_t k = 0; k < np; ++k)
      d.grant_permission(static_cast<core::Id>(r), static_cast<core::Id>(content.bounded(perms)));
  }
  return d;
}

/// One random mutation batch, by name — the journal-shaped surface
/// AuditEngine::apply() consumes. Entity counts grow as add-* mutations
/// land, so later batches can reference the new names.
RbacDelta random_batch(util::Xoshiro256& rng, std::size_t& users, std::size_t& roles,
                       std::size_t& perms, std::size_t size) {
  RbacDelta delta;
  auto user = [&] { return "U" + std::to_string(rng.bounded(users)); };
  auto role = [&] { return "R" + std::to_string(rng.bounded(roles)); };
  auto perm = [&] { return "P" + std::to_string(rng.bounded(perms)); };
  for (std::size_t i = 0; i < size; ++i) {
    switch (rng.bounded(20)) {
      case 0:
        delta.add_user("U" + std::to_string(users++));
        break;
      case 1:
        delta.add_role("R" + std::to_string(roles++));
        break;
      case 2:
        delta.add_permission("P" + std::to_string(perms++));
        break;
      case 3:
      case 4:
      case 5:
      case 6:
        delta.revoke_user(role(), user());
        break;
      case 7:
      case 8:
      case 9:
        delta.revoke_permission(role(), perm());
        break;
      case 10:
      case 11:
      case 12:
      case 13:
        delta.grant_permission(role(), perm());
        break;
      default:
        delta.assign_user(role(), user());
        break;
    }
  }
  return delta;
}

struct FuzzConfig {
  std::size_t threads;
  linalg::RowBackend backend;
};
constexpr FuzzConfig kConfigs[] = {
    {1, linalg::RowBackend::kDense},
    {2, linalg::RowBackend::kSparse},
    {8, linalg::RowBackend::kDense},
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, ReauditMatchesBatchAuditOfSnapshotAfterEveryBatch) {
  const std::uint64_t seed = GetParam();
  const FuzzConfig cfg = kConfigs[seed % 3];

  AuditOptions options;
  options.threads = cfg.threads;
  options.backend = cfg.backend;
  if (seed % 2 == 1) {
    options.similarity_mode = core::SimilarityMode::kJaccard;
    options.jaccard_dissimilarity = 0.25;
  } else {
    options.similarity_threshold = 1 + (seed / 2) % 2;  // t in {1, 2}
  }
  if (seed % 11 == 10) options.detect_similar = false;

  for (Method method : {Method::kRoleDiet, Method::kExactDbscan, Method::kApproxMinhash}) {
    options.method = method;
    util::Xoshiro256 rng(0xE191E + seed * 131);
    const core::RbacDataset start = seed_dataset(rng);
    std::size_t users = start.num_users();
    std::size_t roles = start.num_roles();
    std::size_t perms = start.num_permissions();

    AuditEngine engine(start, options);
    for (std::size_t batch = 0; batch < 4; ++batch) {
      engine.apply(random_batch(rng, users, roles, perms, 12 + rng.bounded(10)));
      const AuditReport live = engine.reaudit();
      const AuditReport fresh = core::audit(engine.snapshot(), options);
      ASSERT_EQ(canonical_text(live), canonical_text(fresh))
          << "method " << core::to_string(method) << ", seed " << seed << ", batch " << batch;
    }
    EXPECT_EQ(engine.audits(), 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range<std::uint64_t>(0, 50));

// HNSW is approximate by design: the maintained graph differs from a
// from-scratch build, so type-5 groups may differ. The engine still promises
// exactness everywhere else, and every type-5 pair it reports is exactly
// verified — so each reported group must sit inside one *exact* similarity
// component.
TEST(EngineHnsw, StructuralAndType4ExactAndType5Sound) {
  AuditOptions options;
  options.method = Method::kApproxHnsw;
  options.threads = 2;
  util::Xoshiro256 rng(0x415A);
  const core::RbacDataset start = seed_dataset(rng);
  std::size_t users = start.num_users();
  std::size_t roles = start.num_roles();
  std::size_t perms = start.num_permissions();

  AuditEngine engine(start, options);
  for (std::size_t batch = 0; batch < 5; ++batch) {
    engine.apply(random_batch(rng, users, roles, perms, 15));
    const AuditReport live = engine.reaudit();
    const core::RbacDataset snap = engine.snapshot();
    const AuditReport fresh = core::audit(snap, options);

    // Types 1-4 are exact even on the HNSW path.
    EXPECT_EQ(live.structural.standalone_roles, fresh.structural.standalone_roles);
    EXPECT_EQ(live.structural.roles_without_users, fresh.structural.roles_without_users);
    EXPECT_EQ(live.structural.single_user_roles, fresh.structural.single_user_roles);
    EXPECT_EQ(live.same_user_groups, fresh.same_user_groups);
    EXPECT_EQ(live.same_permission_groups, fresh.same_permission_groups);

    // Type 5: every engine group refines an exact-similarity component.
    const core::methods::DbscanGroupFinder exact;
    for (const auto& [groups, matrix] :
         {std::pair{&live.similar_user_groups, &snap.ruam()},
          std::pair{&live.similar_permission_groups, &snap.rpam()}}) {
      const core::RoleGroups reference =
          exact.find_similar(*matrix, options.similarity_threshold);
      // component id per role under the exact reference (SIZE_MAX = none).
      std::vector<std::size_t> component(matrix->rows(), SIZE_MAX);
      for (std::size_t g = 0; g < reference.groups.size(); ++g) {
        for (std::size_t role : reference.groups[g]) component[role] = g;
      }
      for (const auto& group : groups->groups) {
        ASSERT_GE(group.size(), 2u);
        const std::size_t expect = component[group.front()];
        ASSERT_NE(expect, SIZE_MAX) << "engine grouped a role no exact group contains";
        for (std::size_t role : group) {
          EXPECT_EQ(component[role], expect)
              << "engine group spans two exact components (unverified pair)";
        }
      }
    }
  }
}

// ------------------------------------------------------------ delta logic ---

TEST(Engine, VersionCountsEffectiveMutationsOnly) {
  core::RbacDataset d;
  d.add_user("u");
  d.add_role("r");
  AuditEngine engine(d);
  EXPECT_EQ(engine.version(), 0u);

  RbacDelta delta;
  delta.add_user("u").add_role("r");  // both already exist
  engine.apply(delta);
  EXPECT_EQ(engine.version(), 0u);

  RbacDelta effective;
  effective.assign_user("r", "u").assign_user("r", "u");  // second is a no-op
  engine.apply(effective);
  EXPECT_EQ(engine.version(), 1u);

  RbacDelta revoke;
  revoke.revoke_user("r", "u").revoke_user("r", "ghost").revoke_user("nope", "u");
  engine.apply(revoke);  // unknown names are no-ops, not interned
  EXPECT_EQ(engine.version(), 2u);
  EXPECT_EQ(engine.state().num_users(), 1u);
  EXPECT_EQ(engine.state().num_roles(), 1u);
}

TEST(Engine, DirtyFrontierClearsAfterReaudit) {
  core::RbacDataset d;
  d.add_user("u0");
  d.add_user("u1");
  d.add_role("r0");
  d.add_role("r1");
  d.assign_user(0, 0);
  d.assign_user(1, 0);
  AuditEngine engine(d);
  (void)engine.reaudit();
  EXPECT_EQ(engine.dirty_roles(), 0u);

  RbacDelta delta;
  delta.assign_user("r0", "u1");
  engine.apply(delta);
  EXPECT_EQ(engine.dirty_roles(), 1u);
  (void)engine.reaudit();
  EXPECT_EQ(engine.dirty_roles(), 0u);
}

TEST(Engine, DegenerateThresholdsStayBatchExact) {
  // t = 0 (hamming) and jaccard 0 / 1 take the finders' shortcut paths and
  // are recomputed in full each pass — the contract must hold regardless.
  util::Xoshiro256 rng(0xDE9E);
  const core::RbacDataset start = seed_dataset(rng);
  std::size_t users = start.num_users();
  std::size_t roles = start.num_roles();
  std::size_t perms = start.num_permissions();

  std::vector<AuditOptions> variants;
  AuditOptions hamming0;
  hamming0.similarity_threshold = 0;
  variants.push_back(hamming0);
  for (double j : {0.0, 1.0}) {
    AuditOptions opt;
    opt.similarity_mode = core::SimilarityMode::kJaccard;
    opt.jaccard_dissimilarity = j;
    variants.push_back(opt);
  }
  for (const AuditOptions& options : variants) {
    util::Xoshiro256 trace(0xF00 + static_cast<std::uint64_t>(options.jaccard_dissimilarity));
    std::size_t u = users, r = roles, p = perms;
    AuditEngine engine(start, options);
    for (std::size_t batch = 0; batch < 3; ++batch) {
      engine.apply(random_batch(trace, u, r, p, 10));
      ASSERT_EQ(canonical_text(engine.reaudit()),
                canonical_text(core::audit(engine.snapshot(), options)));
    }
  }
}

TEST(Engine, BudgetInterruptionInvalidatesAndRecovers) {
  // A budget that kills every phase must not poison the caches: lifting it
  // has the next reaudit() fall back to full passes and re-converge on the
  // batch answer.
  util::Xoshiro256 rng(0xB0D9);
  const core::RbacDataset start = seed_dataset(rng);
  std::size_t users = start.num_users();
  std::size_t roles = start.num_roles();
  std::size_t perms = start.num_permissions();

  AuditOptions options;
  AuditEngine engine(start, options);
  (void)engine.reaudit();  // seed the artifacts

  engine.apply(random_batch(rng, users, roles, perms, 10));
  engine.set_time_budget(1e-12);
  const AuditReport starved = engine.reaudit();
  EXPECT_TRUE(starved.similar_users_time.timed_out ||
              starved.similar_permissions_time.timed_out ||
              starved.same_users_time.timed_out || starved.same_permissions_time.timed_out);

  engine.set_time_budget(0.0);
  engine.apply(random_batch(rng, users, roles, perms, 10));
  EXPECT_EQ(canonical_text(engine.reaudit()),
            canonical_text(core::audit(engine.snapshot(), options)));

  EXPECT_THROW(engine.set_time_budget(-1.0), std::invalid_argument);
}

TEST(Engine, AuditWrapperEqualsFirstReaudit) {
  util::Xoshiro256 rng(0x0A0D);
  const core::RbacDataset d = seed_dataset(rng);
  AuditOptions options;
  options.threads = 2;
  AuditEngine engine(d, options);
  EXPECT_EQ(canonical_text(engine.reaudit()), canonical_text(core::audit(d, options)));
}

TEST(Engine, RejectsInvalidOptions) {
  core::RbacDataset d;
  AuditOptions bad;
  bad.jaccard_dissimilarity = 1.5;
  EXPECT_THROW(AuditEngine(d, bad), std::invalid_argument);
  bad = AuditOptions{};
  bad.time_budget_s = -1.0;
  EXPECT_THROW(AuditEngine(d, bad), std::invalid_argument);
}

// ---------------------------------------------------------------- journal ---

TEST(Journal, RoundTripsHostileNames) {
  RbacDelta delta;
  delta.add_user("plain")
      .add_role("has,comma")
      .add_permission("has\"quote\"")
      .assign_user("has,comma", "line\nbreak")
      .revoke_user("r", "\"")
      .grant_permission("trailing space ", "\ttab")
      .revoke_permission("", "empty-role-name");

  std::ostringstream out;
  io::write_journal(out, delta);
  std::istringstream in(out.str());
  EXPECT_EQ(io::read_journal(in), delta);
}

TEST(Journal, FileRoundTripAndReplayEquivalence) {
  const auto path =
      std::filesystem::temp_directory_path() / "rolediet_journal_test.csv";
  RbacDelta delta;
  delta.add_role("admins").assign_user("admins", "alice").assign_user("admins", "bob");
  delta.grant_permission("admins", "s3:Get").revoke_user("admins", "bob");
  io::save_journal(path, delta);
  EXPECT_EQ(io::load_journal(path), delta);
  std::filesystem::remove(path);

  // Applying the journal reproduces applying the delta.
  core::RbacDataset d;
  AuditEngine a(d), b(d);
  a.apply(delta);
  std::ostringstream out;
  io::write_journal(out, delta);
  std::istringstream in(out.str());
  b.apply(io::read_journal(in));
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(canonical_text(a.reaudit()), canonical_text(b.reaudit()));
}

TEST(Journal, BlankRecordsSkippedAndErrorsCarryLineNumbers) {
  std::istringstream ok("\nadd-user,alice\n\n\nassign-user,r,alice\n");
  const RbacDelta parsed = io::read_journal(ok);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.mutations[0].kind, MutationKind::kAddUser);
  EXPECT_EQ(parsed.mutations[1].kind, MutationKind::kAssignUser);

  auto expect_error = [](const std::string& text, const std::string& needle) {
    std::istringstream in(text);
    try {
      (void)io::read_journal(in);
      FAIL() << "expected CsvError for: " << text;
    } catch (const io::CsvError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("add-user,a\nfrobnicate,b\n", "line 2");
  expect_error("frobnicate,b\n", "unknown mutation tag");
  expect_error("assign-user,only-role\n", "takes 2 field(s)");
  expect_error("add-user,a,b\n", "takes 1 field(s)");
}

TEST(Journal, StreamingReaderReportsLines) {
  std::istringstream in("add-user,a\n\nadd-role,\"multi\nline\"\n");
  io::JournalReader reader(in);
  Mutation m;
  ASSERT_TRUE(reader.next(m));
  EXPECT_EQ(m.entity, "a");
  ASSERT_TRUE(reader.next(m));
  EXPECT_EQ(m.kind, MutationKind::kAddRole);
  EXPECT_EQ(m.entity, "multi\nline");
  EXPECT_EQ(reader.line(), 4u);  // quoted record spans physical lines 3-4
  EXPECT_FALSE(reader.next(m));
}

}  // namespace
}  // namespace rolediet
