// Unit tests for the disjoint-set forest.
#include <gtest/gtest.h>

#include "cluster/union_find.hpp"

namespace rolediet::cluster {
namespace {

TEST(UnionFind, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, UniteConnects) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_EQ(uf.set_size(0), 2u);
  EXPECT_FALSE(uf.unite(0, 1));  // already united
}

TEST(UnionFind, TransitiveUnions) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  EXPECT_FALSE(uf.connected(0, 3));
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_FALSE(uf.connected(0, 5));
}

TEST(UnionFind, GroupsFiltersByMinSize) {
  UnionFind uf(7);
  uf.unite(1, 3);
  uf.unite(3, 5);
  uf.unite(2, 6);
  const auto pairs_and_triples = uf.groups(2);
  ASSERT_EQ(pairs_and_triples.size(), 2u);
  EXPECT_EQ(pairs_and_triples[0], (std::vector<std::size_t>{1, 3, 5}));
  EXPECT_EQ(pairs_and_triples[1], (std::vector<std::size_t>{2, 6}));

  const auto triples_only = uf.groups(3);
  ASSERT_EQ(triples_only.size(), 1u);
  EXPECT_EQ(triples_only[0], (std::vector<std::size_t>{1, 3, 5}));
}

TEST(UnionFind, GroupsOrderedBySmallestMember) {
  UnionFind uf(10);
  uf.unite(8, 9);
  uf.unite(0, 7);
  const auto groups = uf.groups(2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].front(), 0u);
  EXPECT_EQ(groups[1].front(), 8u);
}

TEST(UnionFind, GroupsMinSizeOneIncludesSingletons) {
  UnionFind uf(3);
  uf.unite(0, 2);
  const auto groups = uf.groups(1);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{1}));
}

TEST(UnionFind, LargeChainCollapses) {
  constexpr std::size_t kN = 10'000;
  UnionFind uf(kN);
  for (std::size_t i = 1; i < kN; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.set_size(0), kN);
  EXPECT_TRUE(uf.connected(0, kN - 1));
  const auto groups = uf.groups(2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), kN);
}

TEST(UnionFind, SelfUnionIsNoop) {
  UnionFind uf(2);
  EXPECT_FALSE(uf.unite(1, 1));
  EXPECT_EQ(uf.set_size(1), 1u);
}

}  // namespace
}  // namespace rolediet::cluster
