// Differential test harness: every finder, serial and parallel, against the
// exact DBSCAN reference on ~50 seeded generator workloads.
//
// The contract under test is the one DESIGN.md commits to and the parallel
// rewrite must preserve:
//  - same-set detection is EXACT for every method (identical canonical
//    groups), including both role-diet strategies and MinHash (identical
//    sets always share every band);
//  - similar-set detection by the co-occurrence sweep matches DBSCAN at
//    eps = t for matching thresholds;
//  - every `threads` value produces byte-identical groups (the knob
//    convention in util/thread_pool.hpp) — compared here at 1 vs 4.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/exact.hpp"
#include "core/methods/minhash_lsh.hpp"
#include "gen/matrix_generator.hpp"

namespace rolediet {
namespace {

using core::GroupFinderOptions;
using core::Method;
using core::RoleGroups;
using core::methods::DbscanGroupFinder;
using core::methods::MinHashGroupFinder;
using core::methods::RoleDietGroupFinder;

/// One generator workload per seed, with the shape knobs varied by the seed
/// so the 50 workloads cover dense/sparse rows, heavy/light clustering, and
/// near-duplicate perturbations.
linalg::CsrMatrix workload(std::uint64_t seed) {
  gen::MatrixGenParams params;
  params.roles = 120 + (seed % 5) * 40;           // 120 .. 280
  params.cols = 80 + (seed % 3) * 40;             // 80 .. 160
  params.clustered_fraction = 0.15 + 0.05 * static_cast<double>(seed % 4);
  params.max_cluster_size = 4 + seed % 7;
  params.min_row_norm = 1 + seed % 2;
  params.max_row_norm = 8 + seed % 9;
  params.perturb_bits = seed % 3;                  // 0 = duplicates only
  params.ensure_unique_rows = false;               // allow cross-cluster collisions
  params.seed = 0xD1FFu + seed;
  return gen::generate_matrix(params).matrix;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, SameSetGroupsIdenticalAcrossAllFinders) {
  const linalg::CsrMatrix m = workload(GetParam());
  const RoleGroups reference = DbscanGroupFinder().find_same(m);

  // Role-diet, both strategies, serial and at 4 threads.
  for (auto strategy : {RoleDietGroupFinder::SameStrategy::kRowHash,
                        RoleDietGroupFinder::SameStrategy::kCooccurrenceMatrix}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const RoleDietGroupFinder finder({.same_strategy = strategy, .threads = threads});
      EXPECT_EQ(finder.find_same(m), reference)
          << "strategy " << static_cast<int>(strategy) << ", threads " << threads;
    }
  }
  // DBSCAN's own parallel region queries.
  EXPECT_EQ(DbscanGroupFinder({.threads = 4}).find_same(m), reference);
  // MinHash: recall 1 on identical sets, candidates verified exactly.
  EXPECT_EQ(MinHashGroupFinder().find_same(m), reference);
  // The factory wires the knob the same way.
  GroupFinderOptions options;
  options.threads = 4;
  for (Method method : {Method::kRoleDiet, Method::kExactDbscan, Method::kApproxMinhash}) {
    EXPECT_EQ(core::make_group_finder(method, options)->find_same(m), reference)
        << "factory method " << static_cast<int>(method);
  }
}

TEST_P(Differential, SimilarSetSweepMatchesDbscanAtMatchingThresholds) {
  const linalg::CsrMatrix m = workload(GetParam() ^ 0x51A17u);
  for (std::size_t t : {std::size_t{1}, std::size_t{2}}) {
    const RoleGroups reference = DbscanGroupFinder().find_similar(m, t);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      EXPECT_EQ(RoleDietGroupFinder({.threads = threads}).find_similar(m, t), reference)
          << "t=" << t << ", threads=" << threads;
      EXPECT_EQ(DbscanGroupFinder({.threads = threads}).find_similar(m, t), reference)
          << "dbscan t=" << t << ", threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rolediet
