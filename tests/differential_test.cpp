// Differential test harness: every finder, serial and parallel, against the
// exact DBSCAN reference on ~50 seeded generator workloads.
//
// The contract under test is the one DESIGN.md commits to and the parallel
// rewrite must preserve:
//  - same-set detection is EXACT for every method (identical canonical
//    groups), including both role-diet strategies and MinHash (identical
//    sets always share every band);
//  - similar-set detection by the co-occurrence sweep matches DBSCAN at
//    eps = t for matching thresholds;
//  - every `threads` value produces byte-identical groups (the knob
//    convention in util/thread_pool.hpp) — compared here at 1 vs 4.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/exact.hpp"
#include "core/methods/minhash_lsh.hpp"
#include "gen/matrix_generator.hpp"
#include "linalg/kernels/kernels.hpp"

namespace rolediet {
namespace {

using core::GroupFinderOptions;
using core::Method;
using core::RoleGroups;
using core::methods::DbscanGroupFinder;
using core::methods::MinHashGroupFinder;
using core::methods::RoleDietGroupFinder;

/// One generator workload per seed, with the shape knobs varied by the seed
/// so the 50 workloads cover dense/sparse rows, heavy/light clustering, and
/// near-duplicate perturbations.
linalg::CsrMatrix workload(std::uint64_t seed) {
  gen::MatrixGenParams params;
  params.roles = 120 + (seed % 5) * 40;           // 120 .. 280
  params.cols = 80 + (seed % 3) * 40;             // 80 .. 160
  params.clustered_fraction = 0.15 + 0.05 * static_cast<double>(seed % 4);
  params.max_cluster_size = 4 + seed % 7;
  params.min_row_norm = 1 + seed % 2;
  params.max_row_norm = 8 + seed % 9;
  params.perturb_bits = seed % 3;                  // 0 = duplicates only
  params.ensure_unique_rows = false;               // allow cross-cluster collisions
  params.seed = 0xD1FFu + seed;
  return gen::generate_matrix(params).matrix;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, SameSetGroupsIdenticalAcrossAllFinders) {
  const linalg::CsrMatrix m = workload(GetParam());
  const RoleGroups reference = DbscanGroupFinder().find_same(m);

  // Role-diet, both strategies, serial and at 4 threads.
  for (auto strategy : {RoleDietGroupFinder::SameStrategy::kRowHash,
                        RoleDietGroupFinder::SameStrategy::kCooccurrenceMatrix}) {
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const RoleDietGroupFinder finder({.same_strategy = strategy, .threads = threads});
      EXPECT_EQ(finder.find_same(m), reference)
          << "strategy " << static_cast<int>(strategy) << ", threads " << threads;
    }
  }
  // DBSCAN's own parallel region queries.
  EXPECT_EQ(DbscanGroupFinder({.threads = 4}).find_same(m), reference);
  // MinHash: recall 1 on identical sets, candidates verified exactly.
  EXPECT_EQ(MinHashGroupFinder().find_same(m), reference);
  // The factory wires the knob the same way.
  GroupFinderOptions options;
  options.threads = 4;
  for (Method method : {Method::kRoleDiet, Method::kExactDbscan, Method::kApproxMinhash}) {
    EXPECT_EQ(core::make_group_finder(method, options)->find_same(m), reference)
        << "factory method " << static_cast<int>(method);
  }
}

TEST_P(Differential, SimilarSetSweepMatchesDbscanAtMatchingThresholds) {
  const linalg::CsrMatrix m = workload(GetParam() ^ 0x51A17u);
  for (std::size_t t : {std::size_t{1}, std::size_t{2}}) {
    const RoleGroups reference = DbscanGroupFinder().find_similar(m, t);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      EXPECT_EQ(RoleDietGroupFinder({.threads = threads}).find_similar(m, t), reference)
          << "t=" << t << ", threads=" << threads;
      EXPECT_EQ(DbscanGroupFinder({.threads = threads}).find_similar(m, t), reference)
          << "dbscan t=" << t << ", threads=" << threads;
    }
  }
}

// ------------------------------------------------- backend equivalence ------
//
// The RowStore contract (linalg/row_store.hpp): the dense and sparse kernel
// backends compute identical integers, so groups, audit reports, and
// FinderWorkStats are byte-identical whichever backend runs.

void expect_work_eq(const core::FinderWorkStats& a, const core::FinderWorkStats& b,
                    const std::string& where) {
  EXPECT_EQ(a.rows_processed, b.rows_processed) << where;
  EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated) << where;
  EXPECT_EQ(a.pairs_matched, b.pairs_matched) << where;
  EXPECT_EQ(a.merges, b.merges) << where;
  EXPECT_EQ(a.merge_conflicts, b.merge_conflicts) << where;
}

/// Renders a report with every timing zeroed and the options echo reset, so
/// two runs that only differ in wall clock or in the (intentionally varied)
/// threads/backend knobs compare byte-identical.
std::string text_without_timings(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    t->seconds = 0.0;
  }
  report.options = core::AuditOptions{};
  return report.to_text();
}

/// Wraps a pair of assignment matrices as a dataset so audit() can run on a
/// generator workload (roles row-aligned across both matrices).
core::RbacDataset dataset_from(const linalg::CsrMatrix& ruam, const linalg::CsrMatrix& rpam) {
  core::RbacDataset d;
  for (std::size_t u = 0; u < ruam.cols(); ++u) d.add_user("U" + std::to_string(u));
  for (std::size_t p = 0; p < rpam.cols(); ++p) d.add_permission("P" + std::to_string(p));
  for (std::size_t r = 0; r < ruam.rows(); ++r) d.add_role("R" + std::to_string(r));
  for (std::size_t r = 0; r < ruam.rows(); ++r)
    for (std::uint32_t u : ruam.row(r)) d.assign_user(static_cast<core::Id>(r), u);
  for (std::size_t r = 0; r < rpam.rows(); ++r)
    for (std::uint32_t p : rpam.row(r)) d.grant_permission(static_cast<core::Id>(r), p);
  return d;
}

TEST_P(Differential, BackendsProduceIdenticalGroupsAndCounters) {
  const linalg::CsrMatrix m = workload(GetParam() ^ 0xBACEDu);
  for (Method method : {Method::kExactDbscan, Method::kApproxHnsw, Method::kApproxMinhash}) {
    GroupFinderOptions dense_opts;
    dense_opts.backend = linalg::RowBackend::kDense;
    GroupFinderOptions sparse_opts;
    sparse_opts.backend = linalg::RowBackend::kSparse;
    const auto dense = core::make_group_finder(method, dense_opts);
    const auto sparse = core::make_group_finder(method, sparse_opts);
    const std::string where = "method " + std::string(core::to_string(method));

    EXPECT_EQ(dense->find_same(m), sparse->find_same(m)) << where;
    expect_work_eq(dense->last_work(), sparse->last_work(), where + " find_same");

    EXPECT_EQ(dense->find_similar(m, 1), sparse->find_similar(m, 1)) << where;
    expect_work_eq(dense->last_work(), sparse->last_work(), where + " find_similar");

    EXPECT_EQ(dense->find_similar_jaccard(m, 200'000), sparse->find_similar_jaccard(m, 200'000))
        << where;
    expect_work_eq(dense->last_work(), sparse->last_work(), where + " jaccard");
  }
}

TEST_P(Differential, AuditReportsIdenticalAcrossBackends) {
  // seed + 5 keeps (seed % 5), so both matrices have the same role count.
  const std::uint64_t seed = GetParam();
  const core::RbacDataset dataset = dataset_from(workload(seed), workload(seed + 5));
  for (Method method : {Method::kExactDbscan, Method::kApproxHnsw, Method::kApproxMinhash,
                        Method::kRoleDiet}) {
    core::AuditOptions dense_opts;
    dense_opts.method = method;
    dense_opts.backend = linalg::RowBackend::kDense;
    core::AuditOptions sparse_opts;
    sparse_opts.method = method;
    sparse_opts.backend = linalg::RowBackend::kSparse;
    const core::AuditReport dense = core::audit(dataset, dense_opts);
    const core::AuditReport sparse = core::audit(dataset, sparse_opts);
    const std::string where = "method " + std::string(core::to_string(method));

    EXPECT_EQ(text_without_timings(dense), text_without_timings(sparse)) << where;
    expect_work_eq(dense.same_users_work, sparse.same_users_work, where + " same-users");
    expect_work_eq(dense.same_permissions_work, sparse.same_permissions_work,
                   where + " same-perms");
    expect_work_eq(dense.similar_users_work, sparse.similar_users_work, where + " similar-users");
    expect_work_eq(dense.similar_permissions_work, sparse.similar_permissions_work,
                   where + " similar-perms");
  }
}

TEST_P(Differential, AuditReportsIdenticalAcrossThreadCountsAndBackends) {
  // The pipeline determinism contract (methods/method_common.hpp): the
  // verified-pair set and every work counter are sums over domain items,
  // independent of how the pipeline chunks the domain across threads — so
  // with no time budget, groups, reports, and FinderWorkStats are
  // byte-identical for every threads value and either kernel backend.
  const std::uint64_t seed = GetParam() ^ 0x7EADu;
  // seed + 5 keeps (seed % 5), so both matrices have the same role count.
  const core::RbacDataset dataset = dataset_from(workload(seed), workload(seed + 5));
  for (Method method : {Method::kExactDbscan, Method::kApproxHnsw, Method::kApproxMinhash,
                        Method::kRoleDiet}) {
    core::AuditOptions ref_opts;
    ref_opts.method = method;
    ref_opts.threads = 1;
    ref_opts.backend = linalg::RowBackend::kDense;
    const core::AuditReport reference = core::audit(dataset, ref_opts);
    const std::string ref_text = text_without_timings(reference);

    for (linalg::RowBackend backend : {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        core::AuditOptions opts;
        opts.method = method;
        opts.threads = threads;
        opts.backend = backend;
        const core::AuditReport report = core::audit(dataset, opts);
        const std::string where = "method " + std::string(core::to_string(method)) +
                                  ", backend " + std::to_string(static_cast<int>(backend)) +
                                  ", threads " + std::to_string(threads);

        EXPECT_EQ(text_without_timings(report), ref_text) << where;
        expect_work_eq(report.same_users_work, reference.same_users_work, where + " same-users");
        expect_work_eq(report.same_permissions_work, reference.same_permissions_work,
                       where + " same-perms");
        expect_work_eq(report.similar_users_work, reference.similar_users_work,
                       where + " similar-users");
        expect_work_eq(report.similar_permissions_work, reference.similar_permissions_work,
                       where + " similar-perms");
      }
    }
  }
}

TEST_P(Differential, JaccardAuditReportsIdenticalAcrossThreadCountsAndBackends) {
  // Same determinism contract as above, under the relative (Jaccard) type-5
  // mode: the scaled-integer threshold comparison (cluster/metric.hpp) is
  // exact, so every method stays byte-identical across the threads knob and
  // both kernel backends in this mode too.
  const std::uint64_t seed = GetParam() ^ 0x1ACCAu;
  // seed + 5 keeps (seed % 5), so both matrices have the same role count.
  const core::RbacDataset dataset = dataset_from(workload(seed), workload(seed + 5));
  for (Method method : {Method::kExactDbscan, Method::kApproxHnsw, Method::kApproxMinhash,
                        Method::kRoleDiet}) {
    core::AuditOptions ref_opts;
    ref_opts.method = method;
    ref_opts.similarity_mode = core::SimilarityMode::kJaccard;
    ref_opts.jaccard_dissimilarity = 0.2;
    ref_opts.threads = 1;
    ref_opts.backend = linalg::RowBackend::kDense;
    const core::AuditReport reference = core::audit(dataset, ref_opts);
    const std::string ref_text = text_without_timings(reference);

    for (linalg::RowBackend backend : {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        core::AuditOptions opts = ref_opts;
        opts.threads = threads;
        opts.backend = backend;
        const core::AuditReport report = core::audit(dataset, opts);
        const std::string where = "jaccard method " + std::string(core::to_string(method)) +
                                  ", backend " + std::to_string(static_cast<int>(backend)) +
                                  ", threads " + std::to_string(threads);

        EXPECT_EQ(text_without_timings(report), ref_text) << where;
        expect_work_eq(report.similar_users_work, reference.similar_users_work,
                       where + " similar-users");
        expect_work_eq(report.similar_permissions_work, reference.similar_permissions_work,
                       where + " similar-perms");
      }
    }
  }
}

TEST_P(Differential, ReportsIdenticalAcrossKernelDispatchTargets) {
  // The kernel-layer contract (linalg/kernels/kernels.hpp): every dispatch
  // target — scalar, and whichever of avx2/avx512/neon this host supports —
  // computes identical integers for all five kernel ops, so groups, reports,
  // and FinderWorkStats are byte-identical whichever target the batched
  // verify stage runs on, on either backend, at any thread count. The
  // reference is the forced-scalar run: the target a host with no wide SIMD
  // (or ROLEDIET_KERNEL=scalar, the CI leg) always resolves to.
  namespace kernels = linalg::kernels;
  std::vector<kernels::KernelIsa> targets{kernels::KernelIsa::kScalar};
  for (kernels::KernelIsa isa : {kernels::KernelIsa::kAvx2, kernels::KernelIsa::kAvx512,
                                 kernels::KernelIsa::kNeon}) {
    if (kernels::isa_supported(isa)) targets.push_back(isa);
  }

  const std::uint64_t seed = GetParam() ^ 0x51D0u;
  // seed + 5 keeps (seed % 5), so both matrices have the same role count.
  const core::RbacDataset dataset = dataset_from(workload(seed), workload(seed + 5));
  for (Method method : {Method::kExactDbscan, Method::kApproxHnsw, Method::kApproxMinhash,
                        Method::kRoleDiet}) {
    kernels::set_active_isa(kernels::KernelIsa::kScalar);
    core::AuditOptions ref_opts;
    ref_opts.method = method;
    ref_opts.threads = 1;
    ref_opts.backend = linalg::RowBackend::kDense;
    const core::AuditReport reference = core::audit(dataset, ref_opts);
    const std::string ref_text = text_without_timings(reference);

    for (kernels::KernelIsa isa : targets) {
      kernels::set_active_isa(isa);
      for (linalg::RowBackend backend :
           {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
        for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
          core::AuditOptions opts;
          opts.method = method;
          opts.threads = threads;
          opts.backend = backend;
          const core::AuditReport report = core::audit(dataset, opts);
          const std::string where = "method " + std::string(core::to_string(method)) +
                                    ", kernel " + std::string(kernels::to_string(isa)) +
                                    ", backend " + std::to_string(static_cast<int>(backend)) +
                                    ", threads " + std::to_string(threads);

          EXPECT_EQ(text_without_timings(report), ref_text) << where;
          expect_work_eq(report.same_users_work, reference.same_users_work,
                         where + " same-users");
          expect_work_eq(report.same_permissions_work, reference.same_permissions_work,
                         where + " same-perms");
          expect_work_eq(report.similar_users_work, reference.similar_users_work,
                         where + " similar-users");
          expect_work_eq(report.similar_permissions_work, reference.similar_permissions_work,
                         where + " similar-perms");
        }
      }
    }
    kernels::set_active_isa(kernels::KernelIsa::kAuto);  // restore detection
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential, ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace rolediet
