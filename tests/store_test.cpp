// Tests for the durable engine store: WAL framing/rotation/retention,
// snapshot round-trips and atomicity, EngineStore checkpoint/recover, and
// the hostile-name end-to-end property (journal -> WAL -> snapshot ->
// recover round-trips byte-identically).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/digest.hpp"
#include "core/engine.hpp"
#include "io/journal.hpp"
#include "store/engine_store.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "test_helpers.hpp"

namespace rolediet::store {
namespace {

namespace fs = std::filesystem;

using rolediet::testing::ScopedTempDir;
using rolediet::testing::figure1_dataset;

/// Findings-only rendering: timings and work counters zeroed, everything
/// else (groups, counts, engine version, dataset digest) kept byte-exact.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

core::RbacDelta sample_delta() {
  core::RbacDelta delta;
  delta.add_role("R06")
      .assign_user("R06", "U01")
      .assign_user("R06", "U05")
      .grant_permission("R06", "P02")
      .revoke_user("R02", "U03")
      .grant_permission("R02", "P06");
  return delta;
}

// ---- WAL ------------------------------------------------------------------

TEST(Wal, SegmentNameRoundTrips) {
  EXPECT_EQ(wal_segment_name(0), "wal-00000000000000000000.log");
  EXPECT_EQ(wal_segment_start(fs::path(wal_segment_name(42))), 42u);
  EXPECT_EQ(wal_segment_start(fs::path(wal_segment_name(0))), 0u);
  EXPECT_FALSE(wal_segment_start(fs::path("snap-00000000000000000000.rdsnap")));
  EXPECT_FALSE(wal_segment_start(fs::path("wal-abc.log")));
  EXPECT_FALSE(wal_segment_start(fs::path("wal-0000000000000000000x.log")));
}

TEST(Wal, AppendedRecordsReadBackInOrder) {
  ScopedTempDir dir("wal");
  const core::RbacDelta delta = sample_delta();
  {
    Wal wal(dir.path(), FsyncPolicy::kEveryBatch, 1 << 20);
    wal.start(0, std::nullopt, 0);
    wal.append_batch(delta);
    EXPECT_EQ(wal.next_record(), delta.size());
  }
  WalSegmentReader reader(dir.file(wal_segment_name(0)));
  EXPECT_EQ(reader.start_record(), 0u);
  std::string payload;
  std::size_t i = 0;
  while (reader.next(payload)) {
    ASSERT_LT(i, delta.size());
    EXPECT_EQ(io::parse_journal_record(payload), delta.mutations[i]);
    ++i;
  }
  EXPECT_EQ(i, delta.size());
  EXPECT_EQ(reader.record_index(), delta.size());
}

TEST(Wal, RotationKeepsSegmentsContiguous) {
  ScopedTempDir dir("wal");
  Wal wal(dir.path(), FsyncPolicy::kNone, 64);  // tiny threshold: rotate often
  wal.start(0, std::nullopt, 0);
  core::RbacDelta delta;
  for (int i = 0; i < 20; ++i) delta.add_user("user-" + std::to_string(i));
  wal.append_batch(delta);

  const std::vector<fs::path> segments = list_wal_segments(dir.path());
  ASSERT_GT(segments.size(), 1u) << "tiny threshold should have rotated";
  std::uint64_t expected = 0;
  std::size_t records = 0;
  for (const fs::path& seg : segments) {
    WalSegmentReader reader(seg);
    EXPECT_EQ(reader.start_record(), expected);
    std::string payload;
    while (reader.next(payload)) ++records;
    expected = reader.record_index();
  }
  EXPECT_EQ(records, delta.size());
}

TEST(Wal, EveryFsyncPolicyCommitsRecords) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kEveryRecord, FsyncPolicy::kEveryBatch, FsyncPolicy::kNone}) {
    ScopedTempDir dir("wal");
    Wal wal(dir.path(), policy, 1 << 20);
    wal.start(0, std::nullopt, 0);
    wal.append(core::Mutation{core::MutationKind::kAddUser, "", "alice"});
    wal.append_batch(sample_delta());
    WalSegmentReader reader(dir.file(wal_segment_name(0)));
    std::string payload;
    std::size_t records = 0;
    while (reader.next(payload)) ++records;
    EXPECT_EQ(records, 1 + sample_delta().size()) << to_string(policy);
  }
}

TEST(Wal, TornTailReportsLastGoodBoundary) {
  ScopedTempDir dir("wal");
  {
    Wal wal(dir.path(), FsyncPolicy::kNone, 1 << 20);
    wal.start(0, std::nullopt, 0);
    wal.append_batch(sample_delta());
  }
  const fs::path seg = dir.file(wal_segment_name(0));
  // Chop one byte: the final record becomes torn; all earlier ones survive.
  fs::resize_file(seg, fs::file_size(seg) - 1);
  WalSegmentReader reader(seg);
  std::string payload;
  std::size_t records = 0;
  std::uint64_t boundary = reader.offset();
  try {
    while (reader.next(payload)) {
      ++records;
      boundary = reader.offset();
    }
    FAIL() << "expected WalTornTail";
  } catch (const WalTornTail&) {
    EXPECT_EQ(records, sample_delta().size() - 1);
    EXPECT_EQ(reader.offset(), boundary);
  }
}

TEST(Wal, TornHeaderThrowsDedicatedError) {
  ScopedTempDir dir("wal");
  const fs::path seg = dir.file(wal_segment_name(0));
  std::ofstream(seg, std::ios::binary) << "RDWAL";  // shorter than the header
  EXPECT_THROW(WalSegmentReader{seg}, WalTornHeader);
}

TEST(Wal, WrongMagicOrVersionIsNotTorn) {
  ScopedTempDir dir("wal");
  const fs::path seg = dir.file(wal_segment_name(0));
  std::ofstream(seg, std::ios::binary) << "NOTAWAL!" << std::string(12, '\0');
  try {
    WalSegmentReader reader(seg);
    FAIL() << "expected WalError";
  } catch (const WalTornHeader&) {
    FAIL() << "bad magic must be a hard error, not a torn header";
  } catch (const WalError&) {
  }
}

TEST(Wal, PruneBelowKeepsCoveringSegments) {
  ScopedTempDir dir("wal");
  Wal wal(dir.path(), FsyncPolicy::kNone, 1 << 20);
  wal.start(0, std::nullopt, 0);
  core::RbacDelta delta;
  for (int i = 0; i < 3; ++i) delta.add_user("u" + std::to_string(i));
  wal.append_batch(delta);  // records 0..2
  wal.rotate();             // segment at 3
  wal.append_batch(delta);  // no-op replays still produce records 3..5
  wal.rotate();             // segment at 6

  ASSERT_EQ(list_wal_segments(dir.path()).size(), 3u);
  wal.prune_below(2);  // segment [0,3) still holds record 2
  EXPECT_EQ(list_wal_segments(dir.path()).size(), 3u);
  wal.prune_below(3);  // segment [0,3) fully covered now
  const auto remaining = list_wal_segments(dir.path());
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(*wal_segment_start(remaining.front()), 3u);
}

// ---- snapshots ------------------------------------------------------------

TEST(Snapshot, RoundTripsEngineState) {
  ScopedTempDir dir("snap");
  core::AuditOptions options;
  options.similarity_threshold = 2;
  core::AuditEngine engine(figure1_dataset(), options);
  (void)engine.reaudit();        // populate pair caches
  engine.apply(sample_delta());  // leave a dirty frontier

  const EngineSnapshot snapshot = capture_snapshot(engine, 17);
  const fs::path path = SnapshotWriter(dir.path()).write(snapshot);
  EXPECT_EQ(path.filename().string(), snapshot_name(17));
  EXPECT_FALSE(fs::exists(path.string() + ".tmp")) << "tmp file must not survive";

  const EngineSnapshot loaded = SnapshotReader(path).read();
  EXPECT_EQ(loaded.wal_records, 17u);
  EXPECT_EQ(loaded.fingerprint, snapshot.fingerprint);
  EXPECT_EQ(core::dataset_content_digest(loaded.dataset),
            core::dataset_content_digest(engine.state()));
  EXPECT_EQ(loaded.engine.version, engine.version());
  EXPECT_EQ(loaded.engine.audits, engine.audits());
  EXPECT_TRUE(loaded.engine.audited_once);
  EXPECT_EQ(loaded.engine.users.dirty, snapshot.engine.users.dirty);
  EXPECT_EQ(loaded.engine.users.similar_valid, snapshot.engine.users.similar_valid);
  EXPECT_EQ(loaded.engine.users.similar_pairs, snapshot.engine.users.similar_pairs);
  EXPECT_EQ(loaded.engine.perms.similar_pairs, snapshot.engine.perms.similar_pairs);
}

TEST(Snapshot, FlippedByteIsRejected) {
  ScopedTempDir dir("snap");
  core::AuditEngine engine(figure1_dataset(), {});
  const fs::path path = SnapshotWriter(dir.path()).write(capture_snapshot(engine, 0));

  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
  char byte = 0;
  file.read(&byte, 1);
  file.seekp(-1, std::ios::cur);
  byte = static_cast<char>(byte ^ 0x40);
  file.write(&byte, 1);
  file.close();

  EXPECT_THROW((void)SnapshotReader(path).read(), std::exception);
}

TEST(Snapshot, ListingIgnoresTmpLeftovers) {
  ScopedTempDir dir("snap");
  core::AuditEngine engine(figure1_dataset(), {});
  SnapshotWriter writer(dir.path());
  (void)writer.write(capture_snapshot(engine, 0));
  (void)writer.write(capture_snapshot(engine, 5));
  // A crash mid-checkpoint leaves a stale tmp; it must never be picked up.
  std::ofstream(dir.file(snapshot_name(9) + ".tmp"), std::ios::binary) << "garbage";

  const std::vector<fs::path> snaps = list_snapshots(dir.path());
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(*snapshot_records(snaps.back()), 5u);
}

// ---- EngineStore ----------------------------------------------------------

TEST(EngineStore, CreateRefusesExistingStore) {
  ScopedTempDir dir("store");
  const core::RbacDataset dataset = figure1_dataset();
  (void)EngineStore::create(dir.path(), dataset, {});
  EXPECT_THROW((void)EngineStore::create(dir.path(), dataset, {}), StoreError);
}

TEST(EngineStore, RecoversExactEngineAfterCleanShutdown) {
  ScopedTempDir dir("store");
  const core::RbacDataset base = figure1_dataset();
  core::AuditOptions options;
  options.similarity_threshold = 2;

  {
    EngineStore store = EngineStore::create(dir.path(), base, options);
    (void)store.engine().reaudit();
    store.apply(sample_delta());
    EXPECT_EQ(store.records(), sample_delta().size());
  }  // no checkpoint: recovery must replay the whole WAL

  EngineStore reopened = EngineStore::open(dir.path(), options);
  EXPECT_EQ(reopened.recovery().snapshot_records, 0u);
  EXPECT_EQ(reopened.recovery().replayed_records, sample_delta().size());
  EXPECT_EQ(reopened.recovery().total_records, sample_delta().size());
  EXPECT_FALSE(reopened.recovery().used_fallback_snapshot);

  core::AuditEngine reference(base, options);
  reference.apply(sample_delta());
  EXPECT_EQ(findings_text(reopened.engine().reaudit()), findings_text(reference.reaudit()));
}

TEST(EngineStore, CheckpointCollapsesTheLog) {
  ScopedTempDir dir("store");
  const core::RbacDataset base = figure1_dataset();

  EngineStore store = EngineStore::create(dir.path(), base, {});
  (void)store.engine().reaudit();
  store.apply(sample_delta());
  const fs::path snap = store.checkpoint();
  EXPECT_TRUE(fs::exists(snap));

  EngineStore reopened = EngineStore::open(dir.path(), {});
  EXPECT_EQ(reopened.recovery().snapshot_records, sample_delta().size());
  EXPECT_EQ(reopened.recovery().replayed_records, 0u) << "checkpoint made replay unnecessary";

  core::AuditEngine reference(base, {});
  reference.apply(sample_delta());
  EXPECT_EQ(findings_text(reopened.engine().reaudit()), findings_text(reference.reaudit()));
}

TEST(EngineStore, RetentionKeepsTwoSnapshotsAndTheirWal) {
  ScopedTempDir dir("store");
  EngineStore store = EngineStore::create(dir.path(), figure1_dataset(), {});
  for (int round = 0; round < 5; ++round) {
    core::RbacDelta delta;
    delta.add_user("extra-" + std::to_string(round));
    delta.assign_user("R01", "extra-" + std::to_string(round));
    store.apply(delta);
    (void)store.checkpoint();
  }
  const std::vector<fs::path> snaps = list_snapshots(dir.path());
  ASSERT_EQ(snaps.size(), 2u);
  // Every surviving segment must be >= the oldest kept snapshot's position.
  const std::uint64_t oldest = *snapshot_records(snaps.front());
  for (const fs::path& seg : list_wal_segments(dir.path()))
    EXPECT_GE(*wal_segment_start(seg), oldest);
  // And the older snapshot must still be able to recover (fallback path).
  fs::remove(snaps.back());
  EngineStore reopened = EngineStore::open(dir.path(), {});
  EXPECT_EQ(reopened.recovery().snapshot_records, oldest);
  EXPECT_GT(reopened.recovery().replayed_records, 0u);
}

TEST(EngineStore, CorruptNewestSnapshotFallsBackAndMatches) {
  ScopedTempDir dir("store");
  const core::RbacDataset base = figure1_dataset();
  core::RbacDelta all;

  EngineStore store = EngineStore::create(dir.path(), base, {});
  for (int round = 0; round < 2; ++round) {
    core::RbacDelta delta;
    delta.add_role("X" + std::to_string(round));
    delta.assign_user("X" + std::to_string(round), "U01");
    all.mutations.insert(all.mutations.end(), delta.mutations.begin(), delta.mutations.end());
    store.apply(delta);
    (void)store.checkpoint();
  }
  const std::vector<fs::path> snaps = list_snapshots(dir.path());
  ASSERT_EQ(snaps.size(), 2u);
  // Corrupt the newest snapshot in place (truncate it mid-body).
  fs::resize_file(snaps.back(), fs::file_size(snaps.back()) / 2);

  EngineStore reopened = EngineStore::open(dir.path(), {});
  EXPECT_TRUE(reopened.recovery().used_fallback_snapshot);
  EXPECT_EQ(reopened.recovery().total_records, all.size());

  core::AuditEngine reference(base, {});
  reference.apply(all);
  EXPECT_EQ(findings_text(reopened.engine().reaudit()), findings_text(reference.reaudit()));
}

TEST(EngineStore, CrashDuringCheckpointLeavesStoreReadable) {
  ScopedTempDir dir("store");
  EngineStore store = EngineStore::create(dir.path(), figure1_dataset(), {});
  store.apply(sample_delta());
  // Simulate a crash mid-checkpoint: the snapshot bytes exist only as .tmp.
  std::ofstream(dir.file(snapshot_name(sample_delta().size()) + ".tmp"), std::ios::binary)
      << "half-written snapshot";

  EngineStore reopened = EngineStore::open(dir.path(), {});
  EXPECT_EQ(reopened.recovery().snapshot_records, 0u);
  EXPECT_EQ(reopened.recovery().replayed_records, sample_delta().size());
}

TEST(EngineStore, OptionChangeDropsCachesButKeepsFindingsRight) {
  ScopedTempDir dir("store");
  const core::RbacDataset base = figure1_dataset();
  core::AuditOptions original;
  original.similarity_threshold = 1;
  {
    EngineStore store = EngineStore::create(dir.path(), base, original);
    (void)store.engine().reaudit();
    store.apply(sample_delta());
    (void)store.checkpoint();
  }
  core::AuditOptions changed = original;
  changed.similarity_threshold = 3;  // different question: caches are stale
  EngineStore reopened = EngineStore::open(dir.path(), changed);
  EXPECT_TRUE(reopened.recovery().caches_dropped);

  core::AuditEngine reference(base, changed);
  reference.apply(sample_delta());
  EXPECT_EQ(findings_text(reopened.engine().reaudit()), findings_text(reference.reaudit()));
}

TEST(EngineStore, ReportCarriesStoreProvenance) {
  ScopedTempDir dir("store");
  EngineStore store = EngineStore::create(dir.path(), figure1_dataset(), {});
  store.apply(sample_delta());
  const core::AuditReport report = store.engine().reaudit();
  EXPECT_EQ(report.engine_version, store.engine().version());
  EXPECT_EQ(report.dataset_digest, core::dataset_content_digest(store.engine().state()));
  EXPECT_NE(report.to_text().find("dataset digest"), std::string::npos);
}

// The digest must not depend on which representation holds the state.
TEST(EngineStore, DigestAgreesAcrossRepresentations) {
  const core::RbacDataset dataset = figure1_dataset();
  core::AuditEngine engine(dataset, {});
  EXPECT_EQ(core::dataset_content_digest(dataset), core::dataset_content_digest(engine.state()));
  engine.apply(sample_delta());
  EXPECT_EQ(core::dataset_content_digest(engine.snapshot()),
            core::dataset_content_digest(engine.state()));
  EXPECT_NE(core::dataset_content_digest(dataset), core::dataset_content_digest(engine.state()));
}

// ---- hostile names end to end ---------------------------------------------

/// Names that stress every quoting layer the store stacks: CSV journal
/// payloads inside CRC-framed WAL records, and length-prefixed bytes in the
/// snapshot's interning tables.
const std::vector<std::string>& hostile_names() {
  static const std::vector<std::string> names{
      "plain",
      "comma,inside",
      "quote\"inside",
      "\"fully quoted\"",
      "cr\rlf\nboth\r\n",
      "trailing space ",
      " leading space",
      "unicode: naïve café 役割 🔐",
      "semi;colon",
      "tab\tinside",
  };
  return names;
}

TEST(EngineStore, HostileNamesSurviveJournalWalSnapshotRecover) {
  ScopedTempDir dir("store");
  core::RbacDataset base;
  base.add_user("seed-user");
  base.add_role("seed-role");
  base.add_permission("seed-perm");

  // The trace exercises every mutation kind with every hostile name.
  core::RbacDelta before_checkpoint;
  core::RbacDelta after_checkpoint;
  for (std::size_t i = 0; i < hostile_names().size(); ++i) {
    const std::string& name = hostile_names()[i];
    const std::string role = "role-" + name;
    before_checkpoint.add_user(name).add_role(role).assign_user(role, name);
    after_checkpoint.grant_permission(role, "perm-" + name);
    if (i % 2 == 0) after_checkpoint.revoke_user(role, name);
  }

  // The delta must survive the journal text format itself (the WAL frames
  // exactly these payloads), not just in-memory application.
  for (const core::Mutation& m : before_checkpoint.mutations)
    EXPECT_EQ(io::parse_journal_record(io::format_journal_record(m)), m);

  {
    EngineStore store = EngineStore::create(dir.path(), base, {});
    store.apply(before_checkpoint);
    (void)store.checkpoint();  // hostile names through the snapshot path
    store.apply(after_checkpoint);  // ... and through WAL replay
  }

  EngineStore reopened = EngineStore::open(dir.path(), {});
  EXPECT_GT(reopened.recovery().replayed_records, 0u);
  core::AuditEngine reference(base, {});
  reference.apply(before_checkpoint);
  reference.apply(after_checkpoint);
  EXPECT_EQ(core::dataset_content_digest(reopened.engine().state()),
            core::dataset_content_digest(reference.state()));
  EXPECT_EQ(findings_text(reopened.engine().reaudit()), findings_text(reference.reaudit()));

  // Byte-identical dataset round-trip, name by name.
  const core::RbacDataset recovered = reopened.engine().snapshot();
  const core::RbacDataset expected = reference.snapshot();
  ASSERT_EQ(recovered.num_users(), expected.num_users());
  for (core::Id u = 0; u < static_cast<core::Id>(expected.num_users()); ++u)
    EXPECT_EQ(recovered.user_name(u), expected.user_name(u));
  ASSERT_EQ(recovered.num_roles(), expected.num_roles());
  for (core::Id r = 0; r < static_cast<core::Id>(expected.num_roles()); ++r)
    EXPECT_EQ(recovered.role_name(r), expected.role_name(r));
}

}  // namespace
}  // namespace rolediet::store
