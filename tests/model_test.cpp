// Unit tests for the RBAC dataset model.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/model.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

TEST(Model, InterningReturnsSameIdForSameName) {
  RbacDataset d;
  const Id a = d.add_user("alice");
  const Id b = d.add_user("bob");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.add_user("alice"), a);
  EXPECT_EQ(d.num_users(), 2u);
  EXPECT_EQ(d.user_name(a), "alice");
}

TEST(Model, SeparateIdSpaces) {
  RbacDataset d;
  const Id u = d.add_user("x");
  const Id r = d.add_role("x");
  const Id p = d.add_permission("x");
  EXPECT_EQ(u, 0u);
  EXPECT_EQ(r, 0u);
  EXPECT_EQ(p, 0u);
  EXPECT_EQ(d.num_users(), 1u);
  EXPECT_EQ(d.num_roles(), 1u);
  EXPECT_EQ(d.num_permissions(), 1u);
}

TEST(Model, FindByName) {
  RbacDataset d;
  d.add_role("admin");
  EXPECT_EQ(d.find_role("admin"), std::optional<Id>(0));
  EXPECT_EQ(d.find_role("nope"), std::nullopt);
  EXPECT_EQ(d.find_user("admin"), std::nullopt);
}

TEST(Model, BulkAdd) {
  RbacDataset d;
  const Id first = d.add_users(100, "emp");
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(d.num_users(), 100u);
  EXPECT_EQ(d.user_name(0), "emp0");
  EXPECT_EQ(d.user_name(99), "emp99");
  const Id second = d.add_users(10, "ext");
  EXPECT_EQ(second, 100u);
  EXPECT_EQ(d.user_name(100), "ext100");
}

TEST(Model, EdgeValidation) {
  RbacDataset d;
  const Id r = d.add_role("r");
  const Id u = d.add_user("u");
  const Id p = d.add_permission("p");
  d.assign_user(r, u);
  d.grant_permission(r, p);
  EXPECT_THROW(d.assign_user(r + 1, u), std::out_of_range);
  EXPECT_THROW(d.assign_user(r, u + 1), std::out_of_range);
  EXPECT_THROW(d.grant_permission(r, p + 1), std::out_of_range);
}

TEST(Model, MatricesReflectEdges) {
  const RbacDataset d = testing::figure1_dataset();
  const auto& ruam = d.ruam();
  const auto& rpam = d.rpam();
  EXPECT_EQ(ruam.rows(), 5u);
  EXPECT_EQ(ruam.cols(), 4u);
  EXPECT_EQ(rpam.rows(), 5u);
  EXPECT_EQ(rpam.cols(), 6u);

  // R04 (id 3) has users {U02, U03} = ids {1, 2}, perms {P04, P05} = {3, 4}.
  const auto users = d.users_of_role(3);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], 1u);
  EXPECT_EQ(users[1], 2u);
  const auto perms = d.permissions_of_role(3);
  ASSERT_EQ(perms.size(), 2u);
  EXPECT_EQ(perms[0], 3u);
  EXPECT_EQ(perms[1], 4u);
}

TEST(Model, DuplicateEdgesCollapseInMatrix) {
  RbacDataset d;
  const Id r = d.add_role("r");
  const Id u = d.add_user("u");
  d.assign_user(r, u);
  d.assign_user(r, u);
  d.assign_user(r, u);
  EXPECT_EQ(d.num_user_assignments(), 3u);  // raw edges kept
  EXPECT_EQ(d.ruam().nnz(), 1u);            // matrix is a set
}

TEST(Model, MatrixCacheInvalidatedByMutation) {
  RbacDataset d;
  const Id r = d.add_role("r");
  const Id u1 = d.add_user("u1");
  d.assign_user(r, u1);
  EXPECT_EQ(d.ruam().nnz(), 1u);
  const Id u2 = d.add_user("u2");
  d.assign_user(r, u2);
  EXPECT_EQ(d.ruam().nnz(), 2u);
  EXPECT_EQ(d.ruam().cols(), 2u);
}

TEST(Model, PermissionsOfUserUnionsRoles) {
  const RbacDataset d = testing::figure1_dataset();
  // U02 (id 1) is in R02 (no perms) and R04 (perms {P04, P05} = {3, 4}).
  EXPECT_EQ(d.permissions_of_user(1), (std::vector<Id>{3, 4}));
  // U01 (id 0) is in R01 only: perm {P02} = {1}.
  EXPECT_EQ(d.permissions_of_user(0), (std::vector<Id>{1}));
  EXPECT_THROW(d.permissions_of_user(99), std::out_of_range);
}

TEST(Model, PermissionsOfUserDeduplicatesAcrossRoles) {
  RbacDataset d;
  const Id u = d.add_user("u");
  const Id p = d.add_permission("p");
  const Id r1 = d.add_role("r1");
  const Id r2 = d.add_role("r2");
  d.assign_user(r1, u);
  d.assign_user(r2, u);
  d.grant_permission(r1, p);
  d.grant_permission(r2, p);
  EXPECT_EQ(d.permissions_of_user(u), (std::vector<Id>{p}));
}

TEST(Model, EmptyDatasetMatrices) {
  RbacDataset d;
  EXPECT_EQ(d.ruam().rows(), 0u);
  EXPECT_EQ(d.rpam().rows(), 0u);
}

TEST(Model, NodeKindNames) {
  EXPECT_EQ(to_string(NodeKind::kUser), "user");
  EXPECT_EQ(to_string(NodeKind::kRole), "role");
  EXPECT_EQ(to_string(NodeKind::kPermission), "permission");
}

}  // namespace
}  // namespace rolediet::core
