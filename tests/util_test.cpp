// Unit tests for the util layer: PRNG, bit ops, timing stats, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/bitops.hpp"
#include "util/bounded_queue.hpp"
#include "util/latch.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rolediet::util {
namespace {

// ---------------------------------------------------------------- bitops ---

TEST(Bitops, WordsForBits) {
  EXPECT_EQ(words_for_bits(0), 0u);
  EXPECT_EQ(words_for_bits(1), 1u);
  EXPECT_EQ(words_for_bits(64), 1u);
  EXPECT_EQ(words_for_bits(65), 2u);
  EXPECT_EQ(words_for_bits(128), 2u);
  EXPECT_EQ(words_for_bits(129), 3u);
}

TEST(Bitops, PopcountSpan) {
  const std::vector<std::uint64_t> words{0xFULL, 0x0ULL, ~0ULL};
  EXPECT_EQ(popcount_span(words), 4u + 0u + 64u);
  EXPECT_EQ(popcount_span(std::span<const std::uint64_t>{}), 0u);
}

TEST(Bitops, HammingWords) {
  const std::vector<std::uint64_t> a{0b1010, 0xFF};
  const std::vector<std::uint64_t> b{0b0110, 0xF0};
  EXPECT_EQ(hamming_words(a, b), 2u + 4u);
  EXPECT_EQ(hamming_words(a, a), 0u);
}

TEST(Bitops, HammingBoundedExitsEarlyButNeverUnderLimit) {
  const std::vector<std::uint64_t> a{~0ULL, ~0ULL, ~0ULL};
  const std::vector<std::uint64_t> b{0, 0, 0};
  // True distance 192; with limit 10 the function may return any value > 10.
  EXPECT_GT(hamming_words_bounded(a, b, 10), 10u);
  // Within the limit, the exact distance is returned.
  const std::vector<std::uint64_t> c{0b11, 0, 0};
  EXPECT_EQ(hamming_words_bounded(c, b, 10), 2u);
}

TEST(Bitops, IntersectionWords) {
  const std::vector<std::uint64_t> a{0b1110};
  const std::vector<std::uint64_t> b{0b0111};
  EXPECT_EQ(intersection_words(a, b), 2u);
}

TEST(Bitops, TailMask) {
  EXPECT_EQ(tail_mask(64), ~std::uint64_t{0});
  EXPECT_EQ(tail_mask(1), 1ULL);
  EXPECT_EQ(tail_mask(3), 0b111ULL);
  EXPECT_EQ(tail_mask(128), ~std::uint64_t{0});
}

// ------------------------------------------------------------------ prng ---

TEST(Prng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Prng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  // bound 1 must always be 0.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Prng, BoundedCoversAllResidues) {
  Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, RangeInclusive) {
  Xoshiro256 rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5'000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, BernoulliExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, SampleIndicesDistinctAndInRange) {
  Xoshiro256 rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = rng.sample_indices(100, 30);
    ASSERT_EQ(picks.size(), 30u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 30u);
    for (std::size_t p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(Prng, SampleIndicesFullDraw) {
  Xoshiro256 rng(23);
  auto picks = rng.sample_indices(10, 10);
  std::sort(picks.begin(), picks.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(picks[i], i);
}

TEST(Prng, ShuffleIsPermutation) {
  Xoshiro256 rng(29);
  std::vector<int> v(64);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, orig);  // 1/64! chance of false failure
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Prng, ExponentialPositiveWithPlausibleMean) {
  Xoshiro256 rng(31);
  double sum = 0.0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.05);  // mean = 1/lambda
}

TEST(Prng, Mix64Stateless) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

// ----------------------------------------------------------------- timer ---

TEST(RunStats, EmptySamples) {
  const RunStats stats = RunStats::from_samples({});
  EXPECT_EQ(stats.runs, 0u);
  EXPECT_EQ(stats.mean_s, 0.0);
  EXPECT_EQ(stats.stdev_s, 0.0);
}

TEST(RunStats, SingleSampleHasZeroStdev) {
  const RunStats stats = RunStats::from_samples({2.5});
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_s, 2.5);
  EXPECT_DOUBLE_EQ(stats.stdev_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.min_s, 2.5);
  EXPECT_DOUBLE_EQ(stats.max_s, 2.5);
}

TEST(RunStats, KnownMeanAndStdev) {
  const RunStats stats = RunStats::from_samples({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(stats.mean_s, 2.5);
  // Sample stdev of {1,2,3,4} = sqrt(5/3).
  EXPECT_NEAR(stats.stdev_s, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min_s, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_s, 4.0);
}

TEST(TimeRuns, RunsRequestedTimesAndPassesIndex) {
  std::vector<std::size_t> indices;
  const RunStats stats = time_runs(5, [&](std::size_t i) { indices.push_back(i); });
  EXPECT_EQ(stats.runs, 5u);
  EXPECT_EQ(indices, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_GE(stats.mean_s, 0.0);
}

TEST(Stopwatch, MeasuresElapsedMonotonically) {
  Stopwatch watch;
  const double t1 = watch.seconds();
  const double t2 = watch.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  watch.restart();
  EXPECT_LT(watch.seconds(), 1.0);
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_EQ(format_duration(2.5), "2.500 s");
  EXPECT_EQ(format_duration(0.0123), "12.300 ms");
  EXPECT_EQ(format_duration(0.000045), "45.0 us");
}

// ----------------------------------------------------------- thread pool ---

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> data(100, 0);  // < 2048 threshold -> inline, single chunk
  int calls = 0;
  pool.parallel_for(data.size(), [&](std::size_t begin, std::size_t end) {
    ++calls;
    for (std::size_t i = begin; i < end; ++i) data[i] = 1;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(std::count(data.begin(), data.end(), 1), 100);
}

TEST(ThreadPool, TaskExceptionRethrownFromWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // Pool remains usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultPoolSingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

// ---------------------------------------------------------------- Latch ----

TEST(Latch, ZeroCountIsImmediatelyReady) {
  Latch latch(0);
  EXPECT_TRUE(latch.try_wait());
  latch.wait();  // must not block
}

TEST(Latch, CountDownReleasesWaiters) {
  Latch latch(2);
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_FALSE(latch.try_wait());
  latch.count_down();
  EXPECT_TRUE(latch.try_wait());
  latch.wait();
}

TEST(Latch, CountDownBelowZeroThrows) {
  Latch latch(1);
  latch.count_down();
  EXPECT_THROW(latch.count_down(), std::logic_error);
}

TEST(Latch, ArriveAndWaitLinesUpThreadsT8) {
  constexpr std::size_t kThreads = 8;
  Latch latch(kThreads);
  std::atomic<std::size_t> arrived{0};
  std::atomic<std::size_t> released{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      arrived.fetch_add(1);
      latch.arrive_and_wait();
      // Every thread observes the full arrival count after release: nobody
      // got through before the last arrival.
      EXPECT_EQ(arrived.load(), kThreads);
      released.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), kThreads);
}

// --------------------------------------------------------- BoundedQueue ----

TEST(BoundedQueue, ZeroCapacityThrows) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueue, FifoOrderWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int{i}));
  EXPECT_FALSE(queue.try_push(99));  // full
  EXPECT_EQ(queue.size(), 4u);
  int value = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.try_pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.try_pop(value));  // empty
}

TEST(BoundedQueue, CloseDrainsThenReportsClosed) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(3));      // rejected after close
  EXPECT_FALSE(queue.try_push(3));  // ditto
  int value = 0;
  EXPECT_TRUE(queue.pop(value));  // close still drains what was accepted
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.pop(value));
  EXPECT_EQ(value, 2);
  EXPECT_FALSE(queue.pop(value));  // closed + empty
}

TEST(BoundedQueue, BlockedPopWakesOnPush) {
  BoundedQueue<int> queue(2);
  int value = 0;
  std::thread consumer([&] { EXPECT_TRUE(queue.pop(value)); });
  EXPECT_TRUE(queue.push(42));
  consumer.join();
  EXPECT_EQ(value, 42);
}

TEST(BoundedQueue, BlockedPushWakesOnPop) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::thread producer([&] { EXPECT_TRUE(queue.push(2)); });  // blocks: full
  int value = 0;
  EXPECT_TRUE(queue.pop(value));
  producer.join();
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.try_pop(value));
  EXPECT_EQ(value, 2);
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumerT8) {
  // 4 producers hammer a tiny queue while 4 consumers drain it; close() must
  // wake everyone and every accepted item must come out exactly once.
  BoundedQueue<std::size_t> queue(2);
  constexpr std::size_t kPerProducer = 200;
  std::atomic<std::size_t> produced{0};
  std::atomic<std::size_t> consumed{0};
  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        if (!queue.push(p * kPerProducer + i)) return;  // closed mid-run is fine
        produced.fetch_add(1);
      }
    });
  }
  for (std::size_t c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      std::size_t value = 0;
      while (queue.pop(value)) consumed.fetch_add(1);
    });
  }
  threads[0].join();  // let at least one producer finish before closing
  queue.close();
  for (std::size_t t = 1; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(consumed.load(), produced.load());
  EXPECT_TRUE(queue.closed());
}

}  // namespace
}  // namespace rolediet::util
