// Sharded-engine differential suite: the core::ShardedEngine contract is
// that for every method except kApproxHnsw the merged report's findings are
// byte-identical to the unsharded AuditEngine's at every shard count, thread
// count, row backend, and similarity mode. Work counters and timings are
// explicitly NOT part of the contract (sharding changes how much candidate
// work exists — that delta is what bench_shard measures), so the rendering
// helper zeroes them before comparing.
//
// The degenerate similar-phase configs ride along here because the sharded
// engine reproduces the batch finders' shortcut routing: Hamming t=0 and
// Jaccard dissimilarity 0 collapse to the equality partition, and a Jaccard
// ceiling (scaled threshold >= kJaccardScale) unions every non-empty row for
// the exhaustive methods while MinHash still only reaches band collisions.
//
// Case names end in T1/T8 so the TSan job can select the 8-thread runs with
// --gtest_filter=*T8*.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/metric.hpp"
#include "core/engine.hpp"
#include "core/framework.hpp"
#include "core/sharded_engine.hpp"
#include "gen/churn.hpp"
#include "gen/matrix_generator.hpp"
#include "test_helpers.hpp"

namespace rolediet {
namespace {

using core::AuditOptions;
using core::Method;
using core::ShardedEngine;

/// Seed-varied generator workload, the same shape family the unsharded
/// differential suite uses.
linalg::CsrMatrix workload(std::uint64_t seed) {
  gen::MatrixGenParams params;
  params.roles = 120 + (seed % 5) * 40;
  params.cols = 80 + (seed % 3) * 40;
  params.clustered_fraction = 0.15 + 0.05 * static_cast<double>(seed % 4);
  params.max_cluster_size = 4 + seed % 7;
  params.min_row_norm = 1 + seed % 2;
  params.max_row_norm = 8 + seed % 9;
  params.perturb_bits = seed % 3;
  params.ensure_unique_rows = false;
  params.seed = 0x5AADu + seed;
  return gen::generate_matrix(params).matrix;
}

core::RbacDataset dataset_from(const linalg::CsrMatrix& ruam, const linalg::CsrMatrix& rpam) {
  core::RbacDataset d;
  for (std::size_t u = 0; u < ruam.cols(); ++u) d.add_user("U" + std::to_string(u));
  for (std::size_t p = 0; p < rpam.cols(); ++p) d.add_permission("P" + std::to_string(p));
  for (std::size_t r = 0; r < ruam.rows(); ++r) d.add_role("R" + std::to_string(r));
  for (std::size_t r = 0; r < ruam.rows(); ++r)
    for (std::uint32_t u : ruam.row(r)) d.assign_user(static_cast<core::Id>(r), u);
  for (std::size_t r = 0; r < rpam.rows(); ++r)
    for (std::uint32_t p : rpam.row(r)) d.grant_permission(static_cast<core::Id>(r), p);
  return d;
}

/// Report text with wall-clock timings and work counters zeroed — the
/// byte-identity contract covers findings, entity counts, version, and the
/// dataset digest, not how much candidate work produced them.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

struct ShardCase {
  Method method;
  linalg::RowBackend backend;
  std::size_t threads;
  std::size_t shards;
};

std::string case_name(const ::testing::TestParamInfo<ShardCase>& info) {
  const ShardCase& c = info.param;
  std::string name;
  switch (c.method) {
    case Method::kExactDbscan: name = "Exact"; break;
    case Method::kApproxHnsw: name = "Hnsw"; break;
    case Method::kApproxMinhash: name = "Minhash"; break;
    case Method::kRoleDiet: name = "RoleDiet"; break;
  }
  name += c.backend == linalg::RowBackend::kDense ? "Dense" : "Sparse";
  name += "S" + std::to_string(c.shards);
  name += "T" + std::to_string(c.threads);
  return name;
}

std::vector<ShardCase> all_cases() {
  std::vector<ShardCase> cases;
  for (Method method : {Method::kRoleDiet, Method::kExactDbscan, Method::kApproxMinhash}) {
    for (linalg::RowBackend backend : {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
          cases.push_back({method, backend, threads, shards});
        }
      }
    }
  }
  return cases;
}

AuditOptions options_for(const ShardCase& c) {
  AuditOptions options;
  options.method = c.method;
  options.threads = c.threads;
  options.backend = c.backend;
  return options;
}

class ShardedDifferential : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardedDifferential, MergedHammingReportMatchesUnsharded) {
  for (std::uint64_t seed : {std::uint64_t{0}, std::uint64_t{3}, std::uint64_t{11}}) {
    const core::RbacDataset dataset = dataset_from(workload(seed), workload(seed + 5));
    for (std::size_t t : {std::size_t{1}, std::size_t{2}}) {
      AuditOptions options = options_for(GetParam());
      options.similarity_threshold = t;
      core::AuditEngine unsharded(dataset, options);
      ShardedEngine sharded(dataset, GetParam().shards, options);
      EXPECT_EQ(findings_text(sharded.reaudit()), findings_text(unsharded.reaudit()))
          << "seed " << seed << ", t=" << t;
    }
  }
}

TEST_P(ShardedDifferential, MergedJaccardReportMatchesUnsharded) {
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{7}}) {
    const core::RbacDataset dataset = dataset_from(workload(seed), workload(seed + 5));
    for (double dissimilarity : {0.2, 0.5}) {
      AuditOptions options = options_for(GetParam());
      options.similarity_mode = core::SimilarityMode::kJaccard;
      options.jaccard_dissimilarity = dissimilarity;
      core::AuditEngine unsharded(dataset, options);
      ShardedEngine sharded(dataset, GetParam().shards, options);
      EXPECT_EQ(findings_text(sharded.reaudit()), findings_text(unsharded.reaudit()))
          << "seed " << seed << ", dissimilarity " << dissimilarity;
    }
  }
}

// ------------------------------------------- degenerate similar-phase configs

class DegenerateSimilar : public ::testing::TestWithParam<ShardCase> {};

TEST_P(DegenerateSimilar, HammingZeroThresholdEqualsEqualityPartition) {
  const core::RbacDataset dataset = dataset_from(workload(2), workload(7));
  AuditOptions options = options_for(GetParam());
  options.similarity_threshold = 0;
  core::AuditEngine unsharded(dataset, options);
  const core::AuditReport reference = unsharded.reaudit();
  // t=0 means "identical sets": type 5 must collapse to type 4 exactly.
  EXPECT_EQ(reference.similar_user_groups, reference.same_user_groups);
  EXPECT_EQ(reference.similar_permission_groups, reference.same_permission_groups);

  ShardedEngine sharded(dataset, GetParam().shards, options);
  EXPECT_EQ(findings_text(sharded.reaudit()), findings_text(reference));
}

TEST_P(DegenerateSimilar, JaccardZeroDissimilarityEqualsEqualityPartition) {
  const core::RbacDataset dataset = dataset_from(workload(4), workload(9));
  AuditOptions options = options_for(GetParam());
  options.similarity_mode = core::SimilarityMode::kJaccard;
  options.jaccard_dissimilarity = 0.0;
  core::AuditEngine unsharded(dataset, options);
  const core::AuditReport reference = unsharded.reaudit();
  EXPECT_EQ(reference.similar_user_groups, reference.same_user_groups);
  EXPECT_EQ(reference.similar_permission_groups, reference.same_permission_groups);

  ShardedEngine sharded(dataset, GetParam().shards, options);
  EXPECT_EQ(findings_text(sharded.reaudit()), findings_text(reference));
}

TEST_P(DegenerateSimilar, JaccardCeilingMatchesUnsharded) {
  const core::RbacDataset dataset = dataset_from(workload(6), workload(11));
  AuditOptions options = options_for(GetParam());
  options.similarity_mode = core::SimilarityMode::kJaccard;
  options.jaccard_dissimilarity = 1.0;  // scaled threshold == kJaccardScale
  core::AuditEngine unsharded(dataset, options);
  const core::AuditReport reference = unsharded.reaudit();

  if (GetParam().method != Method::kApproxMinhash) {
    // At the ceiling every pair of non-empty rows is within threshold, so
    // the exhaustive methods produce one group holding every non-empty row.
    ASSERT_EQ(reference.similar_user_groups.group_count(), 1u);
    std::size_t nonempty = 0;
    for (core::Id r = 0; r < dataset.num_roles(); ++r) {
      if (!dataset.users_of_role(r).empty()) ++nonempty;
    }
    EXPECT_EQ(reference.similar_user_groups.roles_in_groups(), nonempty);
  }

  ShardedEngine sharded(dataset, GetParam().shards, options);
  EXPECT_EQ(findings_text(sharded.reaudit()), findings_text(reference));
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ShardedDifferential, ::testing::ValuesIn(all_cases()),
                         case_name);
INSTANTIATE_TEST_SUITE_P(AllConfigs, DegenerateSimilar, ::testing::ValuesIn(all_cases()),
                         case_name);

// ----------------------------------------------------- mutation equivalence

/// Both engines fed the same churn stream stay in lockstep: same ids, same
/// version counter, same findings at every boundary.
TEST(ShardedEngineChurn, StreamedMutationsStayInLockstepWithAuditEngine) {
  gen::ChurnConfig config;
  config.seed = 23;
  config.initial_employees = 60;
  config.years = 1;
  config.days_per_year = 90;
  config.daily_hire_rate = 0.004;
  config.daily_attrition_rate = 0.003;
  config.daily_transfer_rate = 0.004;
  config.daily_sprawl_rate = 0.01;

  AuditOptions options;
  options.method = Method::kRoleDiet;
  core::AuditEngine unsharded(core::RbacDataset{}, options);
  ShardedEngine sharded(core::RbacDataset{}, /*shards=*/3, options);

  gen::ChurnSimulator sim(config);
  while (!sim.done()) {
    const std::size_t day = sim.day();
    const core::RbacDelta delta = sim.next_day();
    unsharded.apply(delta);
    sharded.apply(delta);
    ASSERT_EQ(sharded.version(), unsharded.version()) << "day " << day;
    if (day % 30 == 0 || sim.done()) {
      ASSERT_EQ(findings_text(sharded.reaudit()), findings_text(unsharded.reaudit()))
          << "day " << day;
    }
  }
  EXPECT_GT(sharded.num_roles(), 0u);
}

// ----------------------------------------------------------- unit behaviors

TEST(ShardedEngineUnit, PartitionIsContiguousForInitialRolesRoundRobinAfter) {
  const core::RbacDataset dataset = testing::figure1_dataset();  // 5 roles
  ShardedEngine engine(dataset, /*shards=*/2);
  // Contiguous ranges: shard 0 owns [0, 2), shard 1 owns [2, 5).
  EXPECT_EQ(engine.owner_shard(0), 0u);
  EXPECT_EQ(engine.owner_shard(1), 0u);
  EXPECT_EQ(engine.owner_shard(2), 1u);
  EXPECT_EQ(engine.owner_shard(4), 1u);
  // Later roles round-robin from the first post-construction gid.
  const core::Id r5 = engine.add_role("R06");
  const core::Id r6 = engine.add_role("R07");
  EXPECT_EQ(engine.owner_shard(r5), 0u);
  EXPECT_EQ(engine.owner_shard(r6), 1u);
}

TEST(ShardedEngineUnit, MutatorSemanticsMatchAuditEngine) {
  ShardedEngine engine(testing::figure1_dataset(), /*shards=*/2);
  const std::uint64_t v0 = engine.version();

  // Re-adding an existing name is a no-op returning the existing id.
  EXPECT_EQ(engine.add_user("U01"), engine.find_user("U01").value());
  EXPECT_EQ(engine.version(), v0);

  // Effective edge mutation bumps the version once; repeating it does not.
  const core::Id role = engine.find_role("R01").value();
  const core::Id user = engine.find_user("U04").value();
  EXPECT_TRUE(engine.assign_user(role, user));
  EXPECT_EQ(engine.version(), v0 + 1);
  EXPECT_FALSE(engine.assign_user(role, user));
  EXPECT_EQ(engine.version(), v0 + 1);

  // Unknown ids throw; revoking a missing edge is a false no-op.
  EXPECT_THROW((void)engine.assign_user(999, user), std::out_of_range);
  EXPECT_THROW((void)engine.grant_permission(role, 999), std::out_of_range);
  EXPECT_FALSE(engine.revoke_user(engine.find_role("R03").value(), user));

  // snapshot() round-trips the mutated state: a sharded clone and an
  // unsharded engine built from the snapshot (both fresh at version 0)
  // report identically.
  const core::RbacDataset snap = engine.snapshot();
  ShardedEngine clone(snap, /*shards=*/2);
  core::AuditEngine unsharded(snap, AuditOptions{});
  EXPECT_EQ(findings_text(clone.reaudit()), findings_text(unsharded.reaudit()));
}

TEST(ShardedEngineUnit, ShardWorkCountersSeparateLocalFromCrossWork) {
  const core::RbacDataset dataset = dataset_from(workload(3), workload(8));
  AuditOptions options;
  options.method = Method::kRoleDiet;
  options.similarity_threshold = 2;
  ShardedEngine engine(dataset, /*shards=*/4, options);
  (void)engine.reaudit();
  const core::ShardWorkSnapshot& work = engine.last_shard_work();
  EXPECT_EQ(work.users.local_pairs_evaluated.size(), 4u);
  EXPECT_GT(work.users.exchanged_signatures, 0u);
  // Verified cross matches can never exceed the gathered candidates.
  EXPECT_LE(work.users.cross_matched, work.users.cross_candidates);
}

TEST(ShardedEngineUnit, ZeroShardsRejected) {
  EXPECT_THROW(ShardedEngine(testing::figure1_dataset(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace rolediet
