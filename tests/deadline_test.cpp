// ExecutionContext semantics and mid-phase cancellation.
//
// The contract under test (util/execution_context.hpp, group_finder.hpp):
//  - expired() trips on deadline or request_cancel() and latches
//    interrupted();
//  - a cancelled find_* run returns groups whose co-memberships are a subset
//    of the unbudgeted *exact* run's (only exactly-verified pairs are ever
//    united, so even an approximate finder's partial output never contains a
//    false pair), for every method and thread count — asserted here via
//    pairwise_precision(exact, partial) == 1, including with a concurrent
//    canceller thread (the TSan-relevant path);
//  - audit() under an exhausted budget still returns a well-formed report
//    with the affected phases marked timed_out;
//  - audit() validates AuditOptions up front.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "core/framework.hpp"
#include "core/periodic.hpp"
#include "gen/matrix_generator.hpp"
#include "io/json_writer.hpp"
#include "util/execution_context.hpp"

namespace rolediet {
namespace {

using core::Method;
using core::RoleGroups;
using util::ExecutionContext;

linalg::CsrMatrix workload(std::uint64_t seed, std::size_t roles = 400) {
  gen::MatrixGenParams params;
  params.roles = roles;
  params.cols = 200;
  params.clustered_fraction = 0.3;
  params.perturb_bits = 1;
  params.ensure_unique_rows = false;
  params.seed = 0xDEAD1234u + seed;
  return gen::generate_matrix(params).matrix;
}

core::RbacDataset dataset_from(const linalg::CsrMatrix& ruam, const linalg::CsrMatrix& rpam) {
  core::RbacDataset d;
  for (std::size_t u = 0; u < ruam.cols(); ++u) d.add_user("U" + std::to_string(u));
  for (std::size_t p = 0; p < rpam.cols(); ++p) d.add_permission("P" + std::to_string(p));
  for (std::size_t r = 0; r < ruam.rows(); ++r) d.add_role("R" + std::to_string(r));
  for (std::size_t r = 0; r < ruam.rows(); ++r)
    for (std::uint32_t u : ruam.row(r)) d.assign_user(static_cast<core::Id>(r), u);
  for (std::size_t r = 0; r < rpam.rows(); ++r)
    for (std::uint32_t p : rpam.row(r)) d.grant_permission(static_cast<core::Id>(r), p);
  return d;
}

const std::vector<Method> kAllMethods = {Method::kRoleDiet, Method::kExactDbscan,
                                         Method::kApproxHnsw, Method::kApproxMinhash};

// ---------------------------------------------- ExecutionContext basics ----

TEST(ExecutionContext, UnlimitedNeverExpires) {
  const ExecutionContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.expired());
  EXPECT_FALSE(ctx.interrupted());
  EXPECT_EQ(ctx.remaining_seconds(), std::numeric_limits<double>::infinity());
}

TEST(ExecutionContext, NonPositiveBudgetMeansUnlimited) {
  EXPECT_FALSE(ExecutionContext(0.0).has_deadline());
  EXPECT_FALSE(ExecutionContext(-1.0).has_deadline());
  EXPECT_TRUE(ExecutionContext(10.0).has_deadline());
}

TEST(ExecutionContext, DeadlineTripsAndLatchesInterrupted) {
  const ExecutionContext ctx(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_FALSE(ctx.interrupted()) << "interrupted() must latch via expired(), not by itself";
  EXPECT_TRUE(ctx.expired());
  EXPECT_TRUE(ctx.interrupted());
  EXPECT_LT(ctx.remaining_seconds(), 0.0);
}

TEST(ExecutionContext, RequestCancelTripsWithoutDeadline) {
  ExecutionContext ctx;
  EXPECT_FALSE(ctx.expired());
  ctx.request_cancel();
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_TRUE(ctx.expired());
  EXPECT_TRUE(ctx.interrupted());
}

// ------------------------------------------- partial-result subset rule ----

/// partial's co-memberships are a subset of the reference's: every pair
/// co-grouped in partial is co-grouped in the reference (pair-level precision
/// of partial wrt the reference). The reference is an unbudgeted *exact* run:
/// an approximate finder's cancelled run may stop with a differently-built
/// index than its own full run, but every pair it unites is exactly verified,
/// so it can never exceed the exact grouping.
void expect_subset(const RoleGroups& exact, const RoleGroups& partial, const std::string& where) {
  EXPECT_DOUBLE_EQ(core::pairwise_precision(exact, partial), 1.0) << where;
}

TEST(DeadlineCancellation, CancelledBeforeStartYieldsEmptyGroups) {
  const linalg::CsrMatrix m = workload(1);
  ExecutionContext ctx;
  ctx.request_cancel();
  for (Method method : kAllMethods) {
    const auto finder = core::make_group_finder(method);
    const std::string where = std::string(core::to_string(method));
    EXPECT_EQ(finder->find_same(m, ctx).group_count(), 0u) << where;
    EXPECT_EQ(finder->find_similar(m, 1, ctx).group_count(), 0u) << where;
  }
}

TEST(DeadlineCancellation, MidRunCancelYieldsSubsetOfFullGroups) {
  // The canceller races the finder; wherever the checkpoint lands, the
  // returned groups must be a co-membership subset of the full run's. Run
  // at 2 threads so the cancel is observed concurrently by pool workers —
  // this is the interleaving TSan vets.
  const linalg::CsrMatrix m = workload(2, /*roles=*/800);
  const auto exact = core::make_group_finder(Method::kExactDbscan);
  const RoleGroups exact_same = exact->find_same(m);
  const RoleGroups exact_similar = exact->find_similar(m, 1);

  core::GroupFinderOptions options;
  options.threads = 2;
  for (Method method : kAllMethods) {
    const auto finder = core::make_group_finder(method, options);
    for (int delay_us : {0, 50, 200, 1000}) {
      ExecutionContext ctx;
      std::thread canceller([&ctx, delay_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        ctx.request_cancel();
      });
      const RoleGroups partial = finder->find_same(m, ctx);
      canceller.join();
      expect_subset(exact_same, partial,
                    std::string(core::to_string(method)) + " delay " + std::to_string(delay_us));

      ExecutionContext ctx2;
      std::thread canceller2([&ctx2, delay_us] {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        ctx2.request_cancel();
      });
      const RoleGroups partial_similar = finder->find_similar(m, 1, ctx2);
      canceller2.join();
      expect_subset(exact_similar, partial_similar,
                    std::string(core::to_string(method)) + " similar delay " +
                        std::to_string(delay_us));
    }
  }
}

TEST(DeadlineCancellation, TightDeadlineYieldsSubsetOfFullGroups) {
  // Same property driven by the deadline instead of an external cancel.
  const linalg::CsrMatrix m = workload(3, /*roles=*/600);
  const RoleGroups exact_similar = core::make_group_finder(Method::kExactDbscan)->find_similar(m, 2);
  for (Method method : kAllMethods) {
    const auto finder = core::make_group_finder(method);
    for (double budget_s : {1e-9, 1e-4, 1e-3}) {
      const ExecutionContext ctx(budget_s);
      const RoleGroups partial = finder->find_similar(m, 2, ctx);
      expect_subset(exact_similar, partial, std::string(core::to_string(method)) + " budget " +
                                                std::to_string(budget_s));
    }
  }
}

// ------------------------------------------------------- audit() budget ----

TEST(AuditDeadline, ExhaustedBudgetProducesWellFormedReport) {
  const core::RbacDataset dataset = dataset_from(workload(4), workload(5));
  for (Method method : kAllMethods) {
    core::AuditOptions options;
    options.method = method;
    options.time_budget_s = 1e-9;  // expires before the first phase starts
    const core::AuditReport report = core::audit(dataset, options);
    const std::string where = std::string(core::to_string(method));

    EXPECT_TRUE(report.same_users_time.timed_out) << where;
    EXPECT_TRUE(report.same_permissions_time.timed_out) << where;
    EXPECT_TRUE(report.similar_users_time.timed_out) << where;
    EXPECT_TRUE(report.similar_permissions_time.timed_out) << where;
    // Structural findings are always present; the text and JSON renderers
    // must handle the truncated report.
    EXPECT_NE(report.to_text().find("time budget"), std::string::npos) << where;
    EXPECT_NE(io::report_to_json(report, dataset).find("\"timed_out\":true"), std::string::npos)
        << where;
  }
}

TEST(AuditDeadline, PartialAuditGroupsAreSubsetsOfUnbudgetedExactAudit) {
  const core::RbacDataset dataset = dataset_from(workload(6, 600), workload(7, 600));
  core::AuditOptions exact_options;
  exact_options.method = Method::kExactDbscan;
  const core::AuditReport exact = core::audit(dataset, exact_options);

  for (Method method : kAllMethods) {
    core::AuditOptions options;
    options.method = method;
    // A budget in the single-milliseconds range lands mid-phase on most
    // machines; wherever it lands, each phase's groups must be a subset of
    // the exact unbudgeted audit's (only verified pairs are ever united).
    options.time_budget_s = 0.004;
    const core::AuditReport partial = core::audit(dataset, options);
    const std::string where = std::string(core::to_string(method));
    expect_subset(exact.same_user_groups, partial.same_user_groups, where + " same-users");
    expect_subset(exact.same_permission_groups, partial.same_permission_groups,
                  where + " same-perms");
    expect_subset(exact.similar_user_groups, partial.similar_user_groups,
                  where + " similar-users");
    expect_subset(exact.similar_permission_groups, partial.similar_permission_groups,
                  where + " similar-perms");
    EXPECT_LE(partial.total_seconds(), exact.total_seconds() + 5.0)
        << where << ": budget-stopped audit must terminate promptly";
  }
}

// -------------------------------------------------- options validation ----

TEST(AuditValidation, RejectsOutOfRangeOptions) {
  const core::RbacDataset dataset = dataset_from(workload(8, 20), workload(9, 20));
  core::AuditOptions options;

  options.jaccard_dissimilarity = -0.1;
  EXPECT_THROW((void)core::audit(dataset, options), std::invalid_argument);
  options.jaccard_dissimilarity = 1.5;
  EXPECT_THROW((void)core::audit(dataset, options), std::invalid_argument);
  options.jaccard_dissimilarity = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)core::audit(dataset, options), std::invalid_argument);

  options = {};
  options.time_budget_s = -1.0;
  EXPECT_THROW((void)core::audit(dataset, options), std::invalid_argument);
  options.time_budget_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)core::audit(dataset, options), std::invalid_argument);

  options = {};  // defaults must pass
  EXPECT_NO_THROW((void)core::audit(dataset, options));
}

}  // namespace
}  // namespace rolediet
