// Tests for memory-footprint accounting and the work counters that quantify
// the paper's complexity arguments.
#include <gtest/gtest.h>

#include "cluster/dbscan.hpp"
#include "cluster/hnsw.hpp"
#include "gen/matrix_generator.hpp"
#include "linalg/convert.hpp"
#include "linalg/footprint.hpp"

namespace rolediet {
namespace {

TEST(Footprint, DenseBytesPackBits) {
  EXPECT_EQ(linalg::dense_bytes(1, 64), 8u);
  EXPECT_EQ(linalg::dense_bytes(1, 65), 16u);
  EXPECT_EQ(linalg::dense_bytes(10, 1000), 10u * 16u * 8u);
  EXPECT_EQ(linalg::dense_bytes(0, 1000), 0u);
}

TEST(Footprint, CsrBytes) {
  EXPECT_EQ(linalg::csr_bytes(4, 10), 5 * sizeof(std::size_t) + 10 * sizeof(std::uint32_t));
}

TEST(Footprint, SubMatricesBeatFullAdjacency) {
  // The paper's §III-B claim at its real-org scale: r*(u+p) << (r+u+p)^2.
  const auto f = linalg::representation_footprint(50'000, 90'000, 350'000, 750'000, 400'000);
  EXPECT_LT(f.sub_matrices_bytes, f.full_adjacency_bytes / 8);
  EXPECT_LT(f.sparse_bytes, f.sub_matrices_bytes / 100);
  // Concrete magnitudes (bit-packed): full ~30 GB, sub-matrices ~2.8 GB,
  // sparse ~5 MB.
  EXPECT_GT(f.full_adjacency_bytes, std::size_t{20} * 1024 * 1024 * 1024);
  EXPECT_LT(f.sub_matrices_bytes, std::size_t{4} * 1024 * 1024 * 1024);
  EXPECT_LT(f.sparse_bytes, std::size_t{16} * 1024 * 1024);
}

TEST(Footprint, LiveMatrixAccounting) {
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 100, .cols = 2000, .seed = 1});
  const linalg::BitMatrix dense = linalg::to_dense(g.matrix);
  EXPECT_EQ(linalg::memory_bytes(dense), 100u * 32u * 8u);  // 2000 bits -> 32 words
  EXPECT_EQ(linalg::memory_bytes(g.matrix),
            101 * sizeof(std::size_t) + g.matrix.nnz() * sizeof(std::uint32_t));
  // At realistic sparsity the CSR form is far smaller than the packed form;
  // for small dense-ish matrices the packed form can win (the trade-off
  // §III-B says to evaluate experimentally).
  EXPECT_LT(linalg::memory_bytes(g.matrix), linalg::memory_bytes(dense));
}

TEST(WorkCounters, DbscanIsQuadratic) {
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 300, .cols = 200, .seed = 2});
  const linalg::BitMatrix dense = linalg::to_dense(g.matrix);
  const cluster::DbscanResult result = cluster::dbscan(dense, {.eps = 0, .min_pts = 2});
  // Brute-force region queries: between n (every point visited once) and 2n
  // (cluster expansion re-queries members), each costing n distances.
  EXPECT_GE(result.region_queries, dense.rows());
  EXPECT_LE(result.region_queries, 2 * dense.rows());
  EXPECT_EQ(result.distance_evaluations, result.region_queries * dense.rows());
  EXPECT_GE(result.distance_evaluations, dense.rows() * dense.rows());
}

TEST(WorkCounters, DbscanParallelCountsAllQueries) {
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 200, .cols = 100, .seed = 3});
  const linalg::BitMatrix dense = linalg::to_dense(g.matrix);
  const cluster::DbscanResult par =
      cluster::dbscan(dense, {.eps = 0, .min_pts = 2, .threads = 4});
  // Parallel mode precomputes exactly one region query per point.
  EXPECT_EQ(par.region_queries, dense.rows());
}

TEST(WorkCounters, HnswBuildGrowsSubQuadratically) {
  // HNSW's large per-insert constant (beam + heuristic + shrink) means raw
  // eval counts beat brute force only at scale; the testable claim is the
  // GROWTH RATE: doubling n should far less than quadruple the distance
  // work. This is exactly why HNSW overtakes DBSCAN at the Fig. 3 crossover.
  auto build_evals = [](std::size_t rows) {
    const gen::GeneratedMatrix g =
        gen::generate_matrix({.roles = rows, .cols = 500, .seed = 4});
    const linalg::BitMatrix dense = linalg::to_dense(g.matrix);
    cluster::HnswIndex index(dense, {});
    index.add_all();
    return index.distance_evaluations();
  };
  const std::size_t at_1k = build_evals(1'000);
  const std::size_t at_2k = build_evals(2'000);
  EXPECT_GT(at_1k, 0u);
  const double growth = static_cast<double>(at_2k) / static_cast<double>(at_1k);
  EXPECT_LT(growth, 3.0) << "expected ~linear-ish growth, got x" << growth;
  EXPECT_GT(growth, 1.5);  // sanity: more points must cost more
}

TEST(WorkCounters, HnswQueriesAddWork) {
  const gen::GeneratedMatrix g = gen::generate_matrix({.roles = 500, .cols = 200, .seed = 5});
  const linalg::BitMatrix dense = linalg::to_dense(g.matrix);
  cluster::HnswIndex index(dense, {});
  index.add_all();
  const std::size_t build_evals = index.distance_evaluations();
  (void)index.search(0, 10);
  EXPECT_GT(index.distance_evaluations(), build_evals);
}

}  // namespace
}  // namespace rolediet
