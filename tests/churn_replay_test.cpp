// Long-horizon churn replay through the durable store.
//
// A compact three-simulated-year gen/churn stream (every phase of the
// calendar model: bootstrap, steady drift, quarterly reorg bursts, tenant
// onboarding waves, annual layoffs) is streamed day-by-day through an
// EngineStore, for every method x row backend x thread count. At every
// checkpoint boundary the suite pins the two contracts the operational
// pipeline stands on:
//
//   1. engine == batch: the delta re-audit of the live engine is
//      byte-identical to a cold core::audit() of the same state (kApproxHnsw
//      exempt per its documented contract — its maintained graph is
//      approximate);
//   2. recovery == replay: opening a copy of the store (newest snapshot +
//      the WAL tail written since) yields an engine whose findings are
//      byte-identical to a from-scratch engine that applied the same
//      committed prefix — for every method, including kApproxHnsw, because
//      recovery rebuild-marks the artifacts.
//
// Case names end in T1/T8 so the TSan job can select the 8-thread replays
// with --gtest_filter=*T8*.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "gen/churn.hpp"
#include "io/journal.hpp"
#include "store/engine_store.hpp"
#include "test_helpers.hpp"

namespace rolediet {
namespace {

namespace fs = std::filesystem;

using rolediet::testing::ScopedTempDir;

/// Compact calendar: three years of 120 days keeps every phase (30-day
/// quarters with reorg windows, two onboarding waves, a layoff day per year)
/// while the whole stream stays a few thousand mutations. Rates are scaled
/// up so an 80-employee org still churns visibly every day.
gen::ChurnConfig compact_config(std::uint64_t seed) {
  gen::ChurnConfig config;
  config.seed = seed;
  config.initial_employees = 80;
  config.years = 3;
  config.days_per_year = 120;
  config.daily_hire_rate = 0.004;
  config.daily_attrition_rate = 0.003;
  config.daily_transfer_rate = 0.004;
  config.daily_sprawl_rate = 0.01;
  config.reorg_burst_days = 6;
  config.reorg_intensity = 0.05;
  config.onboarding_wave_fraction = 0.05;
  config.layoff_fraction = 0.1;
  return config;
}

/// Findings rendering with only non-deterministic fields (wall-clock
/// timings, per-thread work-split counters) zeroed. Version and digest stay:
/// recovery must land on the same logical state.
std::string findings_text(core::AuditReport report) {
  for (core::PhaseTiming* t :
       {&report.structural_time, &report.same_users_time, &report.same_permissions_time,
        &report.similar_users_time, &report.similar_permissions_time}) {
    *t = core::PhaseTiming{};
  }
  for (core::FinderWorkStats* w : {&report.same_users_work, &report.same_permissions_work,
                                   &report.similar_users_work, &report.similar_permissions_work}) {
    *w = core::FinderWorkStats{};
  }
  return report.to_text();
}

/// Same, but additionally blind to the live engine's version (a one-shot
/// batch audit reports version 0 while the live engine counts mutations).
std::string findings_text_vs_batch(core::AuditReport report) {
  report.engine_version = 0;
  return findings_text(std::move(report));
}

struct ReplayCase {
  core::Method method;
  linalg::RowBackend backend;
  std::size_t threads;
};

std::string case_name(const ::testing::TestParamInfo<ReplayCase>& info) {
  const ReplayCase& c = info.param;
  std::string name;
  switch (c.method) {
    case core::Method::kExactDbscan: name = "Exact"; break;
    case core::Method::kApproxHnsw: name = "Hnsw"; break;
    case core::Method::kApproxMinhash: name = "Minhash"; break;
    case core::Method::kRoleDiet: name = "RoleDiet"; break;
  }
  name += c.backend == linalg::RowBackend::kDense ? "Dense" : "Sparse";
  name += "T" + std::to_string(c.threads);
  return name;
}

std::vector<ReplayCase> all_cases() {
  std::vector<ReplayCase> cases;
  for (core::Method method : {core::Method::kExactDbscan, core::Method::kApproxHnsw,
                              core::Method::kApproxMinhash, core::Method::kRoleDiet}) {
    for (linalg::RowBackend backend : {linalg::RowBackend::kDense, linalg::RowBackend::kSparse}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        cases.push_back({method, backend, threads});
      }
    }
  }
  return cases;
}

core::AuditOptions options_for(const ReplayCase& c) {
  core::AuditOptions options;
  options.method = c.method;
  options.detect_similar = true;
  options.similarity_threshold = 1;
  options.threads = c.threads;
  options.backend = c.backend;
  return options;
}

class ChurnReplayTest : public ::testing::TestWithParam<ReplayCase> {};

TEST_P(ChurnReplayTest, EngineMatchesBatchAndRecoveryMatchesReplayAtEveryCheckpoint) {
  const core::AuditOptions options = options_for(GetParam());
  const gen::ChurnConfig config = compact_config(/*seed=*/17);
  constexpr std::size_t kCheckpointDays = 30;

  ScopedTempDir root("churn");
  const fs::path store_dir = root.file("store");
  store::StoreOptions store_options;
  store_options.fsync = store::FsyncPolicy::kNone;

  store::EngineStore durable =
      store::EngineStore::create(store_dir, core::RbacDataset{}, options, store_options);

  gen::ChurnSimulator sim(config);
  core::RbacDelta history;  // every mutation emitted so far, in stream order
  std::size_t checkpoints_verified = 0;

  while (!sim.done()) {
    const std::size_t day = sim.day();
    const core::RbacDelta delta = sim.next_day();
    history.mutations.insert(history.mutations.end(), delta.mutations.begin(),
                             delta.mutations.end());
    if (!delta.empty()) durable.apply(delta);

    const bool boundary = day % kCheckpointDays == 0 || sim.done();
    if (!boundary) continue;
    SCOPED_TRACE("day " + std::to_string(day) + ", " + std::to_string(history.size()) +
                 " mutations");

    // Contract 2 first, while the WAL tail since the previous checkpoint is
    // still unpruned: recovery from (snapshot + tail) must match an engine
    // that replayed the whole stream from scratch.
    const fs::path copy = root.file("recover-" + std::to_string(day));
    fs::copy(store_dir, copy, fs::copy_options::recursive);
    store::EngineStore recovered = store::EngineStore::open(copy, options, store_options);
    EXPECT_EQ(recovered.records(), durable.records());

    core::AuditEngine from_scratch(core::RbacDataset{}, options);
    from_scratch.apply(history);
    EXPECT_EQ(findings_text(recovered.engine().reaudit()),
              findings_text(from_scratch.reaudit()));
    fs::remove_all(copy);

    // Contract 1: the live engine's delta re-audit vs a cold batch audit of
    // the identical dataset.
    const core::AuditReport live = durable.engine().reaudit();
    if (options.method != core::Method::kApproxHnsw) {
      const core::AuditReport batch = core::audit(durable.engine().snapshot(), options);
      EXPECT_EQ(findings_text_vs_batch(live), findings_text_vs_batch(batch));
    }

    (void)durable.checkpoint();
    ++checkpoints_verified;
  }

  // Three compact years, one boundary per 30-day checkpoint period plus the
  // bootstrap-day and final boundaries.
  EXPECT_GE(checkpoints_verified, 3 * (config.days_per_year / kCheckpointDays));
  EXPECT_GT(sim.stats().layoff_days, 0u);
  EXPECT_GT(sim.stats().tenants_onboarded, 0u);
  EXPECT_GT(sim.stats().role_clones + sim.stats().role_forks + sim.stats().shadow_roles, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ChurnReplayTest, ::testing::ValuesIn(all_cases()),
                         case_name);

/// The generated stream and the engine agree on what a journal means: tee
/// the same simulation to journal text, read it back record by record, and
/// the parsed mutations must equal the deltas the simulator emitted.
TEST(ChurnJournalTest, WrittenJournalParsesBackToTheEmittedStream) {
  const gen::ChurnConfig config = compact_config(/*seed=*/5);

  std::ostringstream journal;
  const gen::ChurnStats stats = gen::write_churn_journal(journal, config);

  gen::ChurnSimulator sim(config);
  core::RbacDelta expected;
  while (!sim.done()) {
    const core::RbacDelta delta = sim.next_day();
    expected.mutations.insert(expected.mutations.end(), delta.mutations.begin(),
                              delta.mutations.end());
  }
  ASSERT_EQ(stats.mutations, expected.size());

  std::istringstream in(journal.str());
  io::JournalReader reader(in);
  core::Mutation mutation;
  std::size_t index = 0;
  while (reader.next(mutation)) {
    ASSERT_LT(index, expected.size());
    EXPECT_EQ(mutation, expected.mutations[index]) << "record " << index + 1;
    ++index;
  }
  EXPECT_EQ(index, expected.size());
}

/// Identical seeds give identical streams; different seeds diverge.
TEST(ChurnJournalTest, StreamsAreSeedDeterministic) {
  std::ostringstream a, b, c;
  (void)gen::write_churn_journal(a, compact_config(9));
  (void)gen::write_churn_journal(b, compact_config(9));
  (void)gen::write_churn_journal(c, compact_config(10));
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str(), c.str());
}

/// The calendar covers every phase, and phase_of agrees with what next_day
/// is about to do (day 0 is the bootstrap).
TEST(ChurnCalendarTest, PhaseModelCoversEveryPhase) {
  const gen::ChurnConfig config = compact_config(3);
  gen::ChurnSimulator sim(config);
  ASSERT_EQ(sim.phase_of(0), gen::ChurnPhase::kBootstrap);

  std::size_t steady = 0, reorg = 0, onboarding = 0, layoff = 0;
  for (std::size_t day = 1; day < sim.days_total(); ++day) {
    switch (sim.phase_of(day)) {
      case gen::ChurnPhase::kBootstrap: FAIL() << "bootstrap after day 0"; break;
      case gen::ChurnPhase::kSteady: ++steady; break;
      case gen::ChurnPhase::kReorgBurst: ++reorg; break;
      case gen::ChurnPhase::kOnboardingWave: ++onboarding; break;
      case gen::ChurnPhase::kLayoff: ++layoff; break;
    }
  }
  EXPECT_GT(steady, 0u);
  EXPECT_GT(reorg, 0u);
  EXPECT_EQ(onboarding, config.years * config.onboarding_waves_per_year);
  EXPECT_EQ(layoff, config.years);
}

}  // namespace
}  // namespace rolediet
