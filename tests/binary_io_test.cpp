// Tests for the binary dataset format, including corruption injection.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gen/org_simulator.hpp"
#include "io/binary.hpp"
#include "test_helpers.hpp"

namespace rolediet::io {
namespace {

namespace fs = std::filesystem;

/// Shared RAII temp dir (test_helpers.hpp), tagged for this suite.
class BinDir : public testing::ScopedTempDir {
 public:
  BinDir() : ScopedTempDir("bin") {}
  using ScopedTempDir::file;
  [[nodiscard]] fs::path file() const { return file("data.rdb"); }
};

std::vector<char> slurp_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(BinaryIo, RoundTripFigure1) {
  const core::RbacDataset original = rolediet::testing::figure1_dataset();
  BinDir dir;
  save_dataset_binary(original, dir.file());
  const core::RbacDataset loaded = load_dataset_binary(dir.file());
  EXPECT_EQ(loaded.num_users(), original.num_users());
  EXPECT_EQ(loaded.num_roles(), original.num_roles());
  EXPECT_EQ(loaded.num_permissions(), original.num_permissions());
  EXPECT_EQ(loaded.ruam(), original.ruam());
  EXPECT_EQ(loaded.rpam(), original.rpam());
  EXPECT_EQ(loaded.role_name(3), "R04");
}

TEST(BinaryIo, RoundTripGeneratedOrg) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  BinDir dir;
  save_dataset_binary(org.dataset, dir.file());
  const core::RbacDataset loaded = load_dataset_binary(dir.file());
  EXPECT_EQ(loaded.ruam(), org.dataset.ruam());
  EXPECT_EQ(loaded.rpam(), org.dataset.rpam());
}

TEST(BinaryIo, EmptyDataset) {
  BinDir dir;
  save_dataset_binary(core::RbacDataset{}, dir.file());
  const core::RbacDataset loaded = load_dataset_binary(dir.file());
  EXPECT_EQ(loaded.num_roles(), 0u);
}

TEST(BinaryIo, DuplicateRawEdgesCollapseOnSave) {
  core::RbacDataset d;
  const core::Id role = d.add_role("r");
  const core::Id user = d.add_user("u");
  d.assign_user(role, user);
  d.assign_user(role, user);
  BinDir dir;
  save_dataset_binary(d, dir.file());
  EXPECT_EQ(load_dataset_binary(dir.file()).num_user_assignments(), 1u);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(load_dataset_binary("/nonexistent/rolediet.rdb"), BinaryError);
}

TEST(BinaryIo, WrongMagicRejected) {
  BinDir dir;
  write_bytes(dir.file(), {'N', 'O', 'P', 'E', '1', '2', '3', '4', 0, 0, 0, 0});
  EXPECT_THROW(load_dataset_binary(dir.file()), BinaryError);
}

TEST(BinaryIo, TruncationRejected) {
  const core::RbacDataset original = rolediet::testing::figure1_dataset();
  BinDir dir;
  save_dataset_binary(original, dir.file());
  std::vector<char> bytes = slurp_bytes(dir.file());
  // Cut at several points: header, names, edges, checksum.
  for (std::size_t keep : {10u, 40u, static_cast<unsigned>(bytes.size() - 3)}) {
    std::vector<char> cut(bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    write_bytes(dir.file("cut.rdb"), cut);
    EXPECT_THROW(load_dataset_binary(dir.file("cut.rdb")), BinaryError) << "keep=" << keep;
  }
}

TEST(BinaryIo, BitFlipCaughtByChecksum) {
  const core::RbacDataset original = rolediet::testing::figure1_dataset();
  BinDir dir;
  save_dataset_binary(original, dir.file());
  std::vector<char> bytes = slurp_bytes(dir.file());
  // Flip one payload byte near the middle (name/edge region).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_bytes(dir.file("flip.rdb"), bytes);
  EXPECT_THROW(load_dataset_binary(dir.file("flip.rdb")), BinaryError);
}

TEST(BinaryIo, CsvFileRejectedGracefully) {
  BinDir dir;
  {
    std::ofstream out(dir.file("fake.rdb"));
    out << "role,user\nadmin,alice\n";
  }
  EXPECT_THROW(load_dataset_binary(dir.file("fake.rdb")), BinaryError);
}

}  // namespace
}  // namespace rolediet::io
