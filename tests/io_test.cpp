// Tests for CSV dataset I/O and the JSON writer, including failure injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>
#include <filesystem>
#include <fstream>

#include "core/framework.hpp"
#include "io/csv.hpp"
#include "io/json_writer.hpp"
#include "io/groups_io.hpp"
#include "io/report_csv.hpp"
#include "test_helpers.hpp"

namespace rolediet::io {
namespace {

namespace fs = std::filesystem;

/// Shared RAII temp dir (test_helpers.hpp), tagged for this suite.
class TempDir : public testing::ScopedTempDir {
 public:
  TempDir() : ScopedTempDir("io") {}
};

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

// -------------------------------------------------------------- csv parse ---

TEST(CsvParse, SimpleFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(parse_csv_line("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(parse_csv_line(",x,"), (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvParse, QuotedFields) {
  EXPECT_EQ(parse_csv_line("\"a,b\",c"), (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(parse_csv_line("\"say \"\"hi\"\"\",x"),
            (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(CsvParse, CrlfTolerated) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"oops,b"), CsvError);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(escape_csv_field("plain"), "plain");
  EXPECT_EQ(escape_csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(escape_csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// --------------------------------------------------------------- dataset ---

TEST(CsvDataset, RoundTripFigure1) {
  const core::RbacDataset original = rolediet::testing::figure1_dataset();
  TempDir dir;
  save_dataset(original, dir.path());
  const core::RbacDataset loaded = load_dataset(dir.path());

  EXPECT_EQ(loaded.num_users(), original.num_users());
  EXPECT_EQ(loaded.num_roles(), original.num_roles());
  EXPECT_EQ(loaded.num_permissions(), original.num_permissions());
  EXPECT_EQ(loaded.ruam(), original.ruam());
  EXPECT_EQ(loaded.rpam(), original.rpam());
  // Standalone P01 survives the round trip via entities.csv.
  EXPECT_TRUE(loaded.find_permission("P01").has_value());
}

TEST(CsvDataset, NamesWithCommasRoundTrip) {
  core::RbacDataset d;
  const core::Id r = d.add_role("role, with comma");
  const core::Id u = d.add_user("user \"quoted\"");
  d.assign_user(r, u);
  TempDir dir;
  save_dataset(d, dir.path());
  const core::RbacDataset loaded = load_dataset(dir.path());
  EXPECT_TRUE(loaded.find_role("role, with comma").has_value());
  EXPECT_TRUE(loaded.find_user("user \"quoted\"").has_value());
  EXPECT_EQ(loaded.ruam().nnz(), 1u);
}

TEST(CsvDataset, LoadWithoutOptionalFiles) {
  TempDir dir;
  write_file(dir.path() / "assignments.csv", "role,user\nadmin,alice\n");
  const core::RbacDataset d = load_dataset(dir.path());
  EXPECT_EQ(d.num_roles(), 1u);
  EXPECT_EQ(d.num_users(), 1u);
  EXPECT_EQ(d.num_permissions(), 0u);
}

TEST(CsvDataset, EmptyDirectoryLoadsEmptyDataset) {
  TempDir dir;
  const core::RbacDataset d = load_dataset(dir.path());
  EXPECT_EQ(d.num_roles(), 0u);
}

TEST(CsvDataset, BadHeaderThrows) {
  TempDir dir;
  write_file(dir.path() / "assignments.csv", "user,role\nalice,admin\n");
  EXPECT_THROW(load_dataset(dir.path()), CsvError);
}

TEST(CsvDataset, WrongFieldCountThrowsWithLineNumber) {
  TempDir dir;
  write_file(dir.path() / "grants.csv", "role,permission\nadmin,read,extra\n");
  try {
    load_dataset(dir.path());
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos) << e.what();
  }
}

TEST(CsvDataset, UnknownEntityKindThrows) {
  TempDir dir;
  write_file(dir.path() / "entities.csv", "kind,name\ndragon,smaug\n");
  EXPECT_THROW(load_dataset(dir.path()), CsvError);
}

TEST(CsvDataset, DuplicateEdgesTolerated) {
  TempDir dir;
  write_file(dir.path() / "assignments.csv", "role,user\nr,u\nr,u\nr,u\n");
  const core::RbacDataset d = load_dataset(dir.path());
  EXPECT_EQ(d.ruam().nnz(), 1u);
}

TEST(CsvDataset, BlankLinesSkipped) {
  TempDir dir;
  write_file(dir.path() / "assignments.csv", "role,user\n\nr,u\n\n");
  EXPECT_EQ(load_dataset(dir.path()).ruam().nnz(), 1u);
}

// ------------------------------------------------------------------ json ---

TEST(JsonWriter, BasicDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name");
  w.value("role \"x\"\n");
  w.key("count");
  w.value(std::uint64_t{42});
  w.key("ratio");
  w.value(0.5);
  w.key("ok");
  w.value(true);
  w.key("missing");
  w.null();
  w.key("items");
  w.begin_array();
  w.value(std::int64_t{-1});
  w.value(std::int64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"role \\\"x\\\"\\n\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"missing\":null,\"items\":[-1,2]}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value("no key"), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("key in array"), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("dangling");
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed
  }
  {
    JsonWriter w;
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
}

TEST(JsonWriter, ControlCharactersEscaped) {
  JsonWriter w;
  w.begin_array();
  w.value(std::string_view("a\x01"
                           "b\tc"));
  w.end_array();
  EXPECT_EQ(w.str(), "[\"a\\u0001b\\tc\"]");
}

TEST(ReportCsv, OneRowPerFinding) {
  const core::RbacDataset d = rolediet::testing::figure1_dataset();
  const core::AuditReport report = core::audit(d);
  const std::string csv = report_to_csv(report, d);

  EXPECT_NE(csv.find("type,group,entity\n"), std::string::npos);
  EXPECT_NE(csv.find("standalone-permission,,P01\n"), std::string::npos);
  EXPECT_NE(csv.find("role-without-users,,R03\n"), std::string::npos);
  EXPECT_NE(csv.find("single-user-role,,R01\n"), std::string::npos);
  EXPECT_NE(csv.find("single-user-role,,R05\n"), std::string::npos);
  // Group findings: both members share group ordinal 0.
  EXPECT_NE(csv.find("same-user-roles,0,R02\n"), std::string::npos);
  EXPECT_NE(csv.find("same-user-roles,0,R04\n"), std::string::npos);
  EXPECT_NE(csv.find("same-permission-roles,0,R04\n"), std::string::npos);
  EXPECT_NE(csv.find("same-permission-roles,0,R05\n"), std::string::npos);
}

TEST(ReportCsv, EscapesAwkwardNames) {
  core::RbacDataset d;
  d.add_role("lonely, but quoted \"role\"");  // standalone role with a comma
  const core::AuditReport report = core::audit(d);
  const std::string csv = report_to_csv(report, d);
  EXPECT_NE(csv.find("standalone-role,,\"lonely, but quoted \"\"role\"\"\"\n"),
            std::string::npos);
}

TEST(ReportCsv, EmptyReportIsJustHeader) {
  const core::RbacDataset d;
  const std::string csv = report_to_csv(core::audit(d), d);
  EXPECT_EQ(csv, "type,group,entity\n");
}

// ---------------------------------------------------------- groups state ---

TEST(GroupsIo, RoundTrip) {
  const core::RbacDataset d = rolediet::testing::figure1_dataset();
  core::RoleGroups groups;
  groups.groups = {{1, 3}, {2, 4}};
  groups.normalize();
  TempDir dir;
  save_groups(groups, d, dir.path() / "state.csv");
  EXPECT_EQ(load_groups(d, dir.path() / "state.csv"), groups);
}

TEST(GroupsIo, SurvivesRoleIdReshuffle) {
  // Names are the durable key: a dataset with the same roles interned in a
  // different order must resolve to the corresponding new indices.
  const core::RbacDataset original = rolediet::testing::figure1_dataset();
  core::RoleGroups groups;
  groups.groups = {{1, 3}};  // R02, R04 in the original
  TempDir dir;
  save_groups(groups, original, dir.path() / "state.csv");

  core::RbacDataset reshuffled;
  for (const char* name : {"R05", "R04", "R03", "R02", "R01"}) reshuffled.add_role(name);
  const core::RoleGroups loaded = load_groups(reshuffled, dir.path() / "state.csv");
  ASSERT_EQ(loaded.group_count(), 1u);
  EXPECT_EQ(loaded.groups[0],
            (std::vector<std::size_t>{*reshuffled.find_role("R04"),
                                      *reshuffled.find_role("R02")}) )
      << "expected name-based resolution";
}

TEST(GroupsIo, UnknownRoleThrows) {
  const core::RbacDataset d = rolediet::testing::figure1_dataset();
  TempDir dir;
  write_file(dir.path() / "state.csv", "group,role\n0,R01\n0,R99\n");
  EXPECT_THROW(load_groups(d, dir.path() / "state.csv"), CsvError);
}

TEST(GroupsIo, BadHeaderOrOrdinalThrows) {
  const core::RbacDataset d = rolediet::testing::figure1_dataset();
  TempDir dir;
  write_file(dir.path() / "state.csv", "role,group\nR01,0\n");
  EXPECT_THROW(load_groups(d, dir.path() / "state.csv"), CsvError);
  write_file(dir.path() / "state2.csv", "group,role\nxyz,R01\n");
  EXPECT_THROW(load_groups(d, dir.path() / "state2.csv"), CsvError);
  EXPECT_THROW(load_groups(d, dir.path() / "missing.csv"), CsvError);
}

TEST(GroupsIo, SingletonGroupsDropped) {
  const core::RbacDataset d = rolediet::testing::figure1_dataset();
  TempDir dir;
  write_file(dir.path() / "state.csv", "group,role\n0,R01\n1,R02\n1,R03\n");
  const core::RoleGroups loaded = load_groups(d, dir.path() / "state.csv");
  ASSERT_EQ(loaded.group_count(), 1u);
  EXPECT_EQ(loaded.groups[0], (std::vector<std::size_t>{1, 2}));
}

TEST(ReportJson, ContainsExpectedStructure) {
  const core::RbacDataset d = rolediet::testing::figure1_dataset();
  const core::AuditReport report = core::audit(d);
  const std::string json = report_to_json(report, d);

  EXPECT_NE(json.find("\"method\":\"role-diet\""), std::string::npos);
  EXPECT_NE(json.find("\"roles\":5"), std::string::npos);
  // Same-user group of R02/R04 listed by role name.
  EXPECT_NE(json.find("[\"R02\",\"R04\"]"), std::string::npos);
  EXPECT_NE(json.find("[\"R04\",\"R05\"]"), std::string::npos);
  EXPECT_NE(json.find("\"reducible_roles\":2"), std::string::npos);
  EXPECT_NE(json.find("\"timed_out\":false"), std::string::npos);
}

}  // namespace
}  // namespace rolediet::io
