// Tests specific to the paper's custom algorithm: the two find_same
// strategies, the co-occurrence arithmetic, and the tiny-norm corner cases
// of the similar-role sweep.
#include <gtest/gtest.h>

#include "core/methods/cooccurrence.hpp"
#include "test_helpers.hpp"

namespace rolediet::core::methods {
namespace {

using rolediet::testing::csr_from_rows;

RoleDietGroupFinder hash_finder() { return RoleDietGroupFinder{}; }
RoleDietGroupFinder matrix_finder() {
  return RoleDietGroupFinder{
      {.same_strategy = RoleDietGroupFinder::SameStrategy::kCooccurrenceMatrix}};
}

TEST(RoleDiet, StrategiesAgreeOnFigure1) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  EXPECT_EQ(hash_finder().find_same(d.ruam()), matrix_finder().find_same(d.ruam()));
  EXPECT_EQ(hash_finder().find_same(d.rpam()), matrix_finder().find_same(d.rpam()));
}

TEST(RoleDiet, PaperIndicatorSemantics) {
  // The paper's worked co-occurrence matrix: |R01|=1, |R02|=2, |R03|=0,
  // |R04|=2, |R05|=1, g(R02,R04)=2 => only I(R02,R04)=1.
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const auto& ruam = d.ruam();
  EXPECT_EQ(ruam.row_size(0), 1u);
  EXPECT_EQ(ruam.row_size(1), 2u);
  EXPECT_EQ(ruam.row_size(2), 0u);
  EXPECT_EQ(ruam.row_size(3), 2u);
  EXPECT_EQ(ruam.row_size(4), 1u);
  EXPECT_EQ(ruam.row_intersection(1, 3), 2u);
  EXPECT_EQ(ruam.row_intersection(0, 1), 0u);

  const RoleGroups groups = matrix_finder().find_same(ruam);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{1, 3}));
}

TEST(RoleDiet, IndicatorRejectsSubsets) {
  // g = |Ri| but |Rj| > g: subset, not equal — indicator must be 0.
  const auto m = csr_from_rows(10, {{1, 2}, {1, 2, 3}});
  EXPECT_TRUE(matrix_finder().find_same(m).groups.empty());
  EXPECT_TRUE(hash_finder().find_same(m).groups.empty());
}

TEST(RoleDiet, StrategiesAgreeOnManyGroups) {
  // 60 rows in 12 planted groups of 5 + 40 distinct rows.
  std::vector<std::vector<std::uint32_t>> rows;
  for (std::uint32_t g = 0; g < 12; ++g) {
    for (int k = 0; k < 5; ++k) rows.push_back({g * 7, g * 7 + 1, g * 7 + 2});
  }
  for (std::uint32_t i = 0; i < 40; ++i) rows.push_back({100 + i, 200 + i});
  const auto m = csr_from_rows(300, rows);

  const RoleGroups by_hash = hash_finder().find_same(m);
  const RoleGroups by_matrix = matrix_finder().find_same(m);
  EXPECT_EQ(by_hash, by_matrix);
  EXPECT_EQ(by_hash.group_count(), 12u);
  EXPECT_EQ(by_hash.roles_in_groups(), 60u);
}

TEST(RoleDiet, SimilarHammingIdentity) {
  // d(Ri, Rj) = |Ri| + |Rj| - 2 g: {1,2,3} vs {2,3,4,5} -> 3 + 4 - 2*2 = 3.
  const auto m = csr_from_rows(10, {{1, 2, 3}, {2, 3, 4, 5}});
  EXPECT_EQ(m.row_hamming(0, 1), 3u);
  const RoleDietGroupFinder finder;
  EXPECT_TRUE(finder.find_similar(m, 2).groups.empty());
  EXPECT_EQ(finder.find_similar(m, 3).group_count(), 1u);
}

TEST(RoleDiet, SimilarTinyNormPassOnlyForDisjointRows) {
  // {1} and {2}: disjoint, d=2. {1} and {1,5}: share a column, d=1.
  const auto m = csr_from_rows(10, {{1}, {2}, {1, 5}});
  const RoleDietGroupFinder finder;

  const RoleGroups at1 = finder.find_similar(m, 1);
  ASSERT_EQ(at1.group_count(), 1u);
  EXPECT_EQ(at1.groups[0], (std::vector<std::size_t>{0, 2}));

  const RoleGroups at2 = finder.find_similar(m, 2);
  ASSERT_EQ(at2.group_count(), 1u);
  EXPECT_EQ(at2.groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RoleDiet, TinyNormSweepDoesNotOvermerge) {
  // Norm-1 + norm-2 disjoint rows: d = 3 > 2, must NOT group at t=2.
  const auto m = csr_from_rows(10, {{1}, {2, 3}});
  const RoleDietGroupFinder finder;
  EXPECT_TRUE(finder.find_similar(m, 2).groups.empty());
  EXPECT_EQ(finder.find_similar(m, 3).group_count(), 1u);
}

TEST(RoleDiet, SingleColumnMatrix) {
  // All non-empty rows in a 1-column matrix are identical {0}.
  const auto m = csr_from_rows(1, {{0}, {}, {0}, {0}});
  const RoleGroups groups = hash_finder().find_same(m);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 2, 3}));
}

TEST(RoleDiet, HighDegreeColumnCorrectness) {
  // One column shared by every row (a "global" user) plus one distinguishing
  // column per row pair: stresses the inverted-index sweep.
  std::vector<std::vector<std::uint32_t>> rows;
  for (std::uint32_t i = 0; i < 30; ++i) rows.push_back({0, 1 + i / 2});
  const auto m = csr_from_rows(40, rows);
  const RoleGroups groups = hash_finder().find_same(m);
  EXPECT_EQ(groups.group_count(), 15u);  // consecutive pairs
  EXPECT_EQ(groups.roles_in_groups(), 30u);
  EXPECT_EQ(groups, matrix_finder().find_same(m));
}

TEST(RoleDiet, DeterministicAcrossCalls) {
  const auto m = csr_from_rows(50, {{1, 2}, {1, 2}, {9}, {9}, {20, 21, 22}});
  const RoleDietGroupFinder finder;
  EXPECT_EQ(finder.find_same(m), finder.find_same(m));
  EXPECT_EQ(finder.find_similar(m, 1), finder.find_similar(m, 1));
}

}  // namespace
}  // namespace rolediet::core::methods
