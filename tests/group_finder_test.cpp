// Behavioural contract tests shared by all three group-finder methods,
// parameterized over the Method enum (TEST_P). The exact methods must return
// identical canonical groups on every case; HNSW is exact on these small
// inputs too (beam width >> input size), so all three are held to the same
// expectations here — large-scale recall differences are covered by the
// benchmarks.
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "core/group_finder.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

using rolediet::testing::csr_from_rows;

class GroupFinderContract : public ::testing::TestWithParam<Method> {
 protected:
  std::unique_ptr<GroupFinder> finder_ = make_group_finder(GetParam());
};

TEST_P(GroupFinderContract, NameMatchesMethod) {
  EXPECT_EQ(finder_->name(), to_string(GetParam()));
}

TEST_P(GroupFinderContract, EmptyMatrixYieldsNoGroups) {
  const auto m = csr_from_rows(10, {});
  EXPECT_TRUE(finder_->find_same(m).groups.empty());
  EXPECT_TRUE(finder_->find_similar(m, 1).groups.empty());
}

TEST_P(GroupFinderContract, AllRowsDistinct) {
  const auto m = csr_from_rows(20, {{1, 2}, {3, 4}, {5, 6, 7}});
  EXPECT_TRUE(finder_->find_same(m).groups.empty());
}

TEST_P(GroupFinderContract, OneDuplicatePair) {
  const auto m = csr_from_rows(20, {{1, 2}, {3, 4}, {1, 2}});
  const RoleGroups groups = finder_->find_same(m);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(groups.reducible_roles(), 1u);
}

TEST_P(GroupFinderContract, MultipleGroupsCanonicalOrder) {
  const auto m = csr_from_rows(30, {{9, 10}, {1}, {5, 6}, {1}, {5, 6}, {9, 10}, {5, 6}});
  const RoleGroups groups = finder_->find_same(m);
  ASSERT_EQ(groups.group_count(), 3u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 5}));
  EXPECT_EQ(groups.groups[1], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(groups.groups[2], (std::vector<std::size_t>{2, 4, 6}));
  EXPECT_EQ(groups.roles_in_groups(), 7u);
  EXPECT_EQ(groups.reducible_roles(), 4u);
}

TEST_P(GroupFinderContract, EmptyRowsNeverGrouped) {
  // Three empty roles + two duplicates: only the duplicates group.
  const auto m = csr_from_rows(10, {{}, {4, 5}, {}, {4, 5}, {}});
  const RoleGroups same = finder_->find_same(m);
  ASSERT_EQ(same.group_count(), 1u);
  EXPECT_EQ(same.groups[0], (std::vector<std::size_t>{1, 3}));
  // Same under similarity: empty roles are type-2 findings, not near-dupes.
  const RoleGroups similar = finder_->find_similar(m, 1);
  ASSERT_EQ(similar.group_count(), 1u);
  EXPECT_EQ(similar.groups[0], (std::vector<std::size_t>{1, 3}));
}

TEST_P(GroupFinderContract, SimilarThresholdOne) {
  // Rows 0 and 1 differ by exactly one column; row 2 is far away.
  const auto m = csr_from_rows(20, {{1, 2, 3}, {1, 2, 3, 4}, {10, 11, 12}});
  const RoleGroups groups = finder_->find_similar(m, 1);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST_P(GroupFinderContract, SimilarRespectsThresholdBoundary) {
  // Distance between rows is exactly 2 ({1,2} vs {1,3}).
  const auto m = csr_from_rows(20, {{1, 2}, {1, 3}});
  EXPECT_TRUE(finder_->find_similar(m, 1).groups.empty());
  const RoleGroups at2 = finder_->find_similar(m, 2);
  ASSERT_EQ(at2.group_count(), 1u);
  EXPECT_EQ(at2.groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST_P(GroupFinderContract, SimilarIsTransitivelyClosed) {
  // Chain: {1,2,3} -1- {1,2,3,4} -1- {1,2,4}; ends are at distance 2.
  const auto m = csr_from_rows(20, {{1, 2, 3}, {1, 2, 3, 4}, {1, 2, 4}});
  const RoleGroups groups = finder_->find_similar(m, 1);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST_P(GroupFinderContract, SimilarZeroEqualsSame) {
  const auto m = csr_from_rows(20, {{1, 2}, {1, 2}, {1, 2, 3}, {7}});
  EXPECT_EQ(finder_->find_similar(m, 0), finder_->find_same(m));
}

TEST_P(GroupFinderContract, DisjointTinyRolesGroupUnderLargeThreshold)
{
  // {1} vs {2}: no shared column, hamming = 2. Threshold 2 must group them —
  // the corner the sparse co-occurrence sweep alone would miss.
  const auto m = csr_from_rows(20, {{1}, {2}, {10, 11, 12, 13}});
  const RoleGroups groups = finder_->find_similar(m, 2);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST_P(GroupFinderContract, ThresholdLargerThanAllNorms) {
  // With a huge threshold every non-empty row groups together.
  const auto m = csr_from_rows(20, {{1}, {5, 6}, {9}, {}});
  const RoleGroups groups = finder_->find_similar(m, 100);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST_P(GroupFinderContract, Figure1SameUsersAndSamePermissions) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  // RUAM: R02 (1) and R04 (3) share users {U02, U03}.
  const RoleGroups by_users = finder_->find_same(d.ruam());
  ASSERT_EQ(by_users.group_count(), 1u);
  EXPECT_EQ(by_users.groups[0], (std::vector<std::size_t>{1, 3}));
  // RPAM: R04 (3) and R05 (4) share permissions {P04, P05}.
  const RoleGroups by_perms = finder_->find_same(d.rpam());
  ASSERT_EQ(by_perms.group_count(), 1u);
  EXPECT_EQ(by_perms.groups[0], (std::vector<std::size_t>{3, 4}));
}

TEST_P(GroupFinderContract, WideColumnsAcrossWordBoundaries) {
  // Duplicate rows whose columns straddle 64-bit word boundaries.
  const auto m = csr_from_rows(300, {{63, 64, 128, 299}, {1}, {63, 64, 128, 299}});
  const RoleGroups groups = finder_->find_same(m);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 2}));
}

TEST_P(GroupFinderContract, SubsetRowsAreNotSame) {
  // {1,2} is a strict subset of {1,2,3} — similar at t=1 but never "same".
  const auto m = csr_from_rows(10, {{1, 2}, {1, 2, 3}});
  EXPECT_TRUE(finder_->find_same(m).groups.empty());
}

TEST_P(GroupFinderContract, JaccardZeroEqualsSame) {
  const auto m = csr_from_rows(20, {{1, 2}, {1, 2}, {1, 2, 3}, {7}, {}});
  EXPECT_EQ(finder_->find_similar_jaccard(m, 0), finder_->find_same(m));
}

TEST_P(GroupFinderContract, JaccardThresholdBoundaryInclusive) {
  // {1..10} vs {1..9}: g = 9, union = 10 -> scaled distance exactly 100000.
  const auto m = csr_from_rows(20, {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, {1, 2, 3, 4, 5, 6, 7, 8, 9}});
  EXPECT_TRUE(finder_->find_similar_jaccard(m, 99'999).groups.empty());
  const RoleGroups at_boundary = finder_->find_similar_jaccard(m, 100'000);
  ASSERT_EQ(at_boundary.group_count(), 1u);
  EXPECT_EQ(at_boundary.groups[0], (std::vector<std::size_t>{0, 1}));
}

TEST_P(GroupFinderContract, JaccardIsRelativeWhereHammingIsAbsolute) {
  // Both pairs are at Hamming distance 2, but relative overlap differs:
  // rows 0/1 share 9 of 10 columns (scaled distance ~181819), rows 2/3 share
  // 1 of 3 (scaled distance ~666667).
  const auto m = csr_from_rows(40,
                               {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
                                {1, 2, 3, 4, 5, 6, 7, 8, 9, 11},
                                {20, 21},
                                {20, 22}});
  const RoleGroups groups = finder_->find_similar_jaccard(m, 200'000);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1}));
  // A Hamming threshold of 2 cannot make that distinction.
  const RoleGroups hamming = finder_->find_similar(m, 2);
  EXPECT_EQ(hamming.group_count(), 2u);
}

TEST_P(GroupFinderContract, JaccardCeilingGroupsAllNonEmptyRows) {
  const auto m = csr_from_rows(20, {{1}, {5, 6}, {}, {9}});
  const RoleGroups groups = finder_->find_similar_jaccard(m, 1'000'000);
  ASSERT_EQ(groups.group_count(), 1u);
  EXPECT_EQ(groups.groups[0], (std::vector<std::size_t>{0, 1, 3}));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, GroupFinderContract,
                         ::testing::Values(Method::kExactDbscan, Method::kApproxHnsw,
                                           Method::kRoleDiet),
                         [](const ::testing::TestParamInfo<Method>& info) {
                           switch (info.param) {
                             case Method::kExactDbscan: return "ExactDbscan";
                             case Method::kApproxHnsw: return "ApproxHnsw";
                             case Method::kRoleDiet: return "RoleDiet";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace rolediet::core
