// Unit tests for the linear-time structural detectors (taxonomy types 1-3),
// centered on the paper's Fig. 1 worked example.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

TEST(Detector, Figure1Example) {
  const RbacDataset d = testing::figure1_dataset();
  const StructuralFindings f = detect_structural(d);

  // P01 (id 0) is the standalone permission the figure highlights.
  EXPECT_EQ(f.standalone_permissions, (std::vector<Id>{0}));
  // All four users are assigned somewhere.
  EXPECT_TRUE(f.standalone_users.empty());
  EXPECT_TRUE(f.standalone_roles.empty());
  // R03 (id 2) has no users; R02 (id 1) has no permissions.
  EXPECT_EQ(f.roles_without_users, (std::vector<Id>{2}));
  EXPECT_EQ(f.roles_without_permissions, (std::vector<Id>{1}));
  // R01 (id 0) and R05 (id 4) are the single-user roles.
  EXPECT_EQ(f.single_user_roles, (std::vector<Id>{0, 4}));
  // R01 is also the only single-permission role.
  EXPECT_EQ(f.single_permission_roles, (std::vector<Id>{0}));
}

TEST(Detector, StandaloneRoleRequiresBothSidesEmpty) {
  RbacDataset d;
  d.add_role("empty");
  const Id connected = d.add_role("connected");
  const Id u = d.add_user("u");
  d.assign_user(connected, u);

  const StructuralFindings f = detect_structural(d);
  EXPECT_EQ(f.standalone_roles, (std::vector<Id>{0}));
  // The standalone role is NOT repeated in the type-2 lists.
  EXPECT_TRUE(f.roles_without_users.empty());
  EXPECT_EQ(f.roles_without_permissions, (std::vector<Id>{connected}));
}

TEST(Detector, StandaloneUsers) {
  RbacDataset d;
  const Id r = d.add_role("r");
  const Id active = d.add_user("active");
  d.add_user("ghost1");
  d.add_user("ghost2");
  d.assign_user(r, active);
  d.grant_permission(r, d.add_permission("p"));

  const StructuralFindings f = detect_structural(d);
  EXPECT_EQ(f.standalone_users, (std::vector<Id>{1, 2}));
}

TEST(Detector, SingleAssignmentIndependentOfOtherTypes) {
  // A role with one user and zero permissions is both single-user (type 3)
  // and without-permissions (type 2) — the paper notes type overlap.
  RbacDataset d;
  const Id r = d.add_role("r");
  d.assign_user(r, d.add_user("u"));

  const StructuralFindings f = detect_structural(d);
  EXPECT_EQ(f.single_user_roles, (std::vector<Id>{r}));
  EXPECT_EQ(f.roles_without_permissions, (std::vector<Id>{r}));
}

TEST(Detector, EmptyDataset) {
  const RbacDataset d;
  const StructuralFindings f = detect_structural(d);
  EXPECT_TRUE(f.standalone_users.empty());
  EXPECT_TRUE(f.standalone_roles.empty());
  EXPECT_TRUE(f.standalone_permissions.empty());
  EXPECT_TRUE(f.single_user_roles.empty());
}

TEST(Detector, ZeroColumns) {
  const auto m = testing::csr_from_rows(5, {{0, 2}, {2, 4}});
  EXPECT_EQ(zero_columns(m), (std::vector<Id>{1, 3}));
}

TEST(Detector, RowsWithSum) {
  const auto m = testing::csr_from_rows(5, {{0, 2}, {}, {4}, {1, 2, 3}});
  EXPECT_EQ(rows_with_sum(m, 0), (std::vector<Id>{1}));
  EXPECT_EQ(rows_with_sum(m, 1), (std::vector<Id>{2}));
  EXPECT_EQ(rows_with_sum(m, 2), (std::vector<Id>{0}));
  EXPECT_EQ(rows_with_sum(m, 3), (std::vector<Id>{3}));
  EXPECT_TRUE(rows_with_sum(m, 4).empty());
}

TEST(Detector, AllUsersStandaloneWhenNoEdges) {
  RbacDataset d;
  d.add_users(10);
  d.add_roles(3);
  d.add_permissions(5);
  const StructuralFindings f = detect_structural(d);
  EXPECT_EQ(f.standalone_users.size(), 10u);
  EXPECT_EQ(f.standalone_roles.size(), 3u);
  EXPECT_EQ(f.standalone_permissions.size(), 5u);
}

}  // namespace
}  // namespace rolediet::core
