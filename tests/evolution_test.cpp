// Tests for the org-evolution simulator: event semantics, determinism, and
// the paper's core premise that inefficiencies accumulate over time.
#include <gtest/gtest.h>

#include "core/consolidation.hpp"
#include "core/detector.hpp"
#include "core/framework.hpp"
#include "core/methods/cooccurrence.hpp"
#include "gen/evolution.hpp"

namespace rolediet::gen {
namespace {

std::size_t total_findings(const core::IncrementalAuditor& auditor) {
  const core::StructuralFindings f = auditor.structural();
  return f.standalone_users.size() + f.standalone_roles.size() +
         f.standalone_permissions.size() + f.roles_without_users.size() +
         f.roles_without_permissions.size() + auditor.same_user_groups().roles_in_groups() +
         auditor.same_permission_groups().roles_in_groups();
}

TEST(Evolution, SeedsHealthyOrg) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 1);
  EXPECT_EQ(auditor.num_users(), 200u);
  EXPECT_EQ(auditor.num_roles(), 60u);
  EXPECT_EQ(auditor.num_permissions(), 150u);
  // Every seeded role has both users and permissions.
  const core::StructuralFindings f = auditor.structural();
  EXPECT_TRUE(f.standalone_roles.empty());
  EXPECT_TRUE(f.roles_without_users.empty());
  EXPECT_TRUE(f.roles_without_permissions.empty());
}

TEST(Evolution, DeterministicHistories) {
  core::IncrementalAuditor a;
  core::IncrementalAuditor b;
  OrgEvolution ea(a, 42);
  OrgEvolution eb(b, 42);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(ea.step(), eb.step()) << "diverged at event " << i;
  }
  EXPECT_EQ(a.snapshot().ruam(), b.snapshot().ruam());
  EXPECT_EQ(a.snapshot().rpam(), b.snapshot().rpam());
}

TEST(Evolution, EventNames) {
  EXPECT_EQ(to_string(OrgEvent::kHire), "hire");
  EXPECT_EQ(to_string(OrgEvent::kShadowRole), "shadow-role");
  EXPECT_EQ(to_string(OrgEvent::kDecommission), "decommission");
}

TEST(Evolution, InefficienciesAccumulateOverTime) {
  // The paper's premise, measured: findings grow as the org churns.
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 7);
  const std::size_t at_start = total_findings(auditor);
  evolution.run(500);
  const std::size_t mid = total_findings(auditor);
  evolution.run(1'500);
  const std::size_t late = total_findings(auditor);
  EXPECT_GT(mid, at_start);
  EXPECT_GT(late, mid);
  EXPECT_EQ(evolution.events_applied(), 2'000u);
}

TEST(Evolution, DepartureCreatesStandaloneUser) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 3, /*initial_users=*/20, /*initial_roles=*/5,
                         /*initial_permissions=*/30,
                         // Force departures only.
                         EvolutionMix{.hire = 0, .departure = 1, .transfer = 0, .provision = 0,
                                      .decommission = 0, .clone_role = 0, .fork_role = 0,
                                      .shadow_role = 0});
  const std::size_t before = auditor.structural().standalone_users.size();
  evolution.run(5);
  EXPECT_GT(auditor.structural().standalone_users.size(), before);
}

TEST(Evolution, CloneCreatesDuplicateGroups) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 11, 50, 10, 40,
                         EvolutionMix{.hire = 0, .departure = 0, .transfer = 0, .provision = 0,
                                      .decommission = 0, .clone_role = 1, .fork_role = 0,
                                      .shadow_role = 0});
  evolution.run(20);
  EXPECT_GT(auditor.same_user_groups().roles_in_groups() +
                auditor.same_permission_groups().roles_in_groups(),
            0u);
}

TEST(Evolution, ForkCreatesSimilarPair) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 13, 50, 10, 40,
                         EvolutionMix{.hire = 0, .departure = 0, .transfer = 0, .provision = 0,
                                      .decommission = 0, .clone_role = 0, .fork_role = 1,
                                      .shadow_role = 0});
  evolution.run(10);
  const core::methods::RoleDietGroupFinder finder;
  const core::RoleGroups similar = finder.find_similar(auditor.snapshot().ruam(), 1);
  EXPECT_GT(similar.roles_in_groups(), 0u);
}

TEST(Evolution, TransferPreservesTotalAssignments) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 17, 40, 8, 30,
                         EvolutionMix{.hire = 0, .departure = 0, .transfer = 1, .provision = 0,
                                      .decommission = 0, .clone_role = 0, .fork_role = 0,
                                      .shadow_role = 0});
  const std::size_t before = auditor.snapshot().ruam().nnz();
  evolution.run(30);
  const std::size_t after = auditor.snapshot().ruam().nnz();
  // Transfers move one edge at a time; an edge can vanish when the target
  // role already holds the user, so nnz never grows.
  EXPECT_LE(after, before);
  EXPECT_GE(after + 30, before);
}

TEST(Evolution, DietResetsAccumulatedDuplicates) {
  // Churn, then run the diet: duplicate findings drop to zero while access
  // is preserved — the full lifecycle the library exists for.
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 23);
  evolution.run(1'000);
  const core::RbacDataset decayed = auditor.snapshot();
  const core::AuditReport before = core::audit(decayed, {.detect_similar = false});
  ASSERT_GT(before.reducible_roles(), 0u);

  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(decayed, &stats);
  EXPECT_TRUE(core::verify_equivalence(decayed, slim));
  const core::AuditReport after = core::audit(slim, {.detect_similar = false});
  EXPECT_EQ(after.same_user_groups.group_count(), 0u);
  EXPECT_LT(slim.num_roles(), decayed.num_roles());
}

// ------------------------------------------------------ event-mix edge cases ---

/// A mix with all weight on exactly one event.
EvolutionMix only(OrgEvent event) {
  EvolutionMix mix{.hire = 0, .departure = 0, .transfer = 0, .provision = 0,
                   .decommission = 0, .clone_role = 0, .fork_role = 0, .shadow_role = 0};
  switch (event) {
    case OrgEvent::kHire: mix.hire = 1; break;
    case OrgEvent::kDeparture: mix.departure = 1; break;
    case OrgEvent::kTransfer: mix.transfer = 1; break;
    case OrgEvent::kProvision: mix.provision = 1; break;
    case OrgEvent::kDecommission: mix.decommission = 1; break;
    case OrgEvent::kCloneRole: mix.clone_role = 1; break;
    case OrgEvent::kForkRole: mix.fork_role = 1; break;
    case OrgEvent::kShadowRole: mix.shadow_role = 1; break;
  }
  return mix;
}

TEST(EvolutionMixEdge, AllWeightOnOneEventRunsForEveryEvent) {
  // Each single-event mix must run without throwing on a healthy org; the
  // step either applies that event or falls back to kHire after retries.
  for (OrgEvent event :
       {OrgEvent::kHire, OrgEvent::kDeparture, OrgEvent::kTransfer, OrgEvent::kProvision,
        OrgEvent::kDecommission, OrgEvent::kCloneRole, OrgEvent::kForkRole,
        OrgEvent::kShadowRole}) {
    SCOPED_TRACE(std::string(to_string(event)));
    core::IncrementalAuditor auditor;
    OrgEvolution evolution(auditor, 29, 30, 8, 25, only(event));
    for (int i = 0; i < 50; ++i) {
      const OrgEvent ran = evolution.step();
      EXPECT_TRUE(ran == event || ran == OrgEvent::kHire)
          << "got " << to_string(ran) << " at step " << i;
    }
    EXPECT_EQ(evolution.events_applied(), 50u);
  }
}

TEST(EvolutionMixEdge, ZeroUserStartingOrgIsLegal) {
  // Regression: seeding roles used to draw user ids from an empty pool and
  // throw std::out_of_range. Roles must instead be seeded user-empty.
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 31, /*initial_users=*/0, /*initial_roles=*/10,
                         /*initial_permissions=*/20);
  EXPECT_EQ(auditor.num_users(), 0u);
  EXPECT_EQ(auditor.num_roles(), 10u);
  EXPECT_EQ(auditor.structural().roles_without_users.size(), 10u);
  evolution.run(100);  // and the org must be able to live on from there
  EXPECT_GT(auditor.num_users(), 0u);
}

TEST(EvolutionMixEdge, ZeroPermissionStartingOrgIsLegal) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 37, /*initial_users=*/20, /*initial_roles=*/10,
                         /*initial_permissions=*/0);
  EXPECT_EQ(auditor.num_permissions(), 0u);
  EXPECT_EQ(auditor.structural().roles_without_permissions.size(), 10u);
  evolution.run(100);
}

TEST(EvolutionMixEdge, ZeroRoleAndEmptyStartingOrgsAreLegal) {
  {
    core::IncrementalAuditor auditor;
    OrgEvolution evolution(auditor, 41, 20, /*initial_roles=*/0, 20);
    evolution.run(100);  // hires land unassigned until role events create roles
  }
  {
    core::IncrementalAuditor auditor;
    OrgEvolution evolution(auditor, 43, 0, 0, 0);
    evolution.run(100);
    EXPECT_GT(auditor.num_users(), 0u);  // fallback hires still grow the org
  }
}

TEST(EvolutionMixEdge, DepartureAndDecommissionOnNothingAssignableFallBackToHire) {
  // Documented semantics: precondition failures are silent no-ops, never a
  // throw; after the retries every step lands on the kHire fallback.
  {
    core::IncrementalAuditor auditor;
    OrgEvolution evolution(auditor, 47, 0, 0, 0, only(OrgEvent::kDeparture));
    for (int i = 0; i < 20; ++i) EXPECT_EQ(evolution.step(), OrgEvent::kHire);
  }
  {
    core::IncrementalAuditor auditor;
    OrgEvolution evolution(auditor, 53, 0, 0, 0, only(OrgEvent::kDecommission));
    for (int i = 0; i < 20; ++i) EXPECT_EQ(evolution.step(), OrgEvent::kHire);
  }
  // With entities present but nothing assigned/granted, same story.
  {
    core::IncrementalAuditor auditor;
    OrgEvolution evolution(auditor, 59, 10, /*initial_roles=*/0, 10,
                           only(OrgEvent::kDecommission));
    for (int i = 0; i < 20; ++i) EXPECT_EQ(evolution.step(), OrgEvent::kHire);
  }
}

TEST(EvolutionMixEdge, IdenticalSeedsAreDeterministicAcrossAuditThreadCounts) {
  // The simulator's determinism must be independent of how the resulting
  // dataset is audited: identical seeds give identical datasets, and those
  // datasets audit identically at 1, 2, and 8 threads.
  core::IncrementalAuditor a;
  core::IncrementalAuditor b;
  OrgEvolution ea(a, 61);
  OrgEvolution eb(b, 61);
  ea.run(400);
  eb.run(400);
  const core::RbacDataset da = a.snapshot();
  const core::RbacDataset db = b.snapshot();
  ASSERT_EQ(da.ruam(), db.ruam());
  ASSERT_EQ(da.rpam(), db.rpam());

  const core::AuditReport serial = core::audit(da, {.threads = 1});
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const core::AuditReport parallel = core::audit(db, {.threads = threads});
    EXPECT_EQ(parallel.same_user_groups, serial.same_user_groups) << threads << " threads";
    EXPECT_EQ(parallel.same_permission_groups, serial.same_permission_groups);
    EXPECT_EQ(parallel.similar_user_groups, serial.similar_user_groups);
    EXPECT_EQ(parallel.similar_permission_groups, serial.similar_permission_groups);
  }
}

}  // namespace
}  // namespace rolediet::gen
