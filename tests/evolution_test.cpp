// Tests for the org-evolution simulator: event semantics, determinism, and
// the paper's core premise that inefficiencies accumulate over time.
#include <gtest/gtest.h>

#include "core/consolidation.hpp"
#include "core/detector.hpp"
#include "core/framework.hpp"
#include "core/methods/cooccurrence.hpp"
#include "gen/evolution.hpp"

namespace rolediet::gen {
namespace {

std::size_t total_findings(const core::IncrementalAuditor& auditor) {
  const core::StructuralFindings f = auditor.structural();
  return f.standalone_users.size() + f.standalone_roles.size() +
         f.standalone_permissions.size() + f.roles_without_users.size() +
         f.roles_without_permissions.size() + auditor.same_user_groups().roles_in_groups() +
         auditor.same_permission_groups().roles_in_groups();
}

TEST(Evolution, SeedsHealthyOrg) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 1);
  EXPECT_EQ(auditor.num_users(), 200u);
  EXPECT_EQ(auditor.num_roles(), 60u);
  EXPECT_EQ(auditor.num_permissions(), 150u);
  // Every seeded role has both users and permissions.
  const core::StructuralFindings f = auditor.structural();
  EXPECT_TRUE(f.standalone_roles.empty());
  EXPECT_TRUE(f.roles_without_users.empty());
  EXPECT_TRUE(f.roles_without_permissions.empty());
}

TEST(Evolution, DeterministicHistories) {
  core::IncrementalAuditor a;
  core::IncrementalAuditor b;
  OrgEvolution ea(a, 42);
  OrgEvolution eb(b, 42);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(ea.step(), eb.step()) << "diverged at event " << i;
  }
  EXPECT_EQ(a.snapshot().ruam(), b.snapshot().ruam());
  EXPECT_EQ(a.snapshot().rpam(), b.snapshot().rpam());
}

TEST(Evolution, EventNames) {
  EXPECT_EQ(to_string(OrgEvent::kHire), "hire");
  EXPECT_EQ(to_string(OrgEvent::kShadowRole), "shadow-role");
  EXPECT_EQ(to_string(OrgEvent::kDecommission), "decommission");
}

TEST(Evolution, InefficienciesAccumulateOverTime) {
  // The paper's premise, measured: findings grow as the org churns.
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 7);
  const std::size_t at_start = total_findings(auditor);
  evolution.run(500);
  const std::size_t mid = total_findings(auditor);
  evolution.run(1'500);
  const std::size_t late = total_findings(auditor);
  EXPECT_GT(mid, at_start);
  EXPECT_GT(late, mid);
  EXPECT_EQ(evolution.events_applied(), 2'000u);
}

TEST(Evolution, DepartureCreatesStandaloneUser) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 3, /*initial_users=*/20, /*initial_roles=*/5,
                         /*initial_permissions=*/30,
                         // Force departures only.
                         EvolutionMix{.hire = 0, .departure = 1, .transfer = 0, .provision = 0,
                                      .decommission = 0, .clone_role = 0, .fork_role = 0,
                                      .shadow_role = 0});
  const std::size_t before = auditor.structural().standalone_users.size();
  evolution.run(5);
  EXPECT_GT(auditor.structural().standalone_users.size(), before);
}

TEST(Evolution, CloneCreatesDuplicateGroups) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 11, 50, 10, 40,
                         EvolutionMix{.hire = 0, .departure = 0, .transfer = 0, .provision = 0,
                                      .decommission = 0, .clone_role = 1, .fork_role = 0,
                                      .shadow_role = 0});
  evolution.run(20);
  EXPECT_GT(auditor.same_user_groups().roles_in_groups() +
                auditor.same_permission_groups().roles_in_groups(),
            0u);
}

TEST(Evolution, ForkCreatesSimilarPair) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 13, 50, 10, 40,
                         EvolutionMix{.hire = 0, .departure = 0, .transfer = 0, .provision = 0,
                                      .decommission = 0, .clone_role = 0, .fork_role = 1,
                                      .shadow_role = 0});
  evolution.run(10);
  const core::methods::RoleDietGroupFinder finder;
  const core::RoleGroups similar = finder.find_similar(auditor.snapshot().ruam(), 1);
  EXPECT_GT(similar.roles_in_groups(), 0u);
}

TEST(Evolution, TransferPreservesTotalAssignments) {
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 17, 40, 8, 30,
                         EvolutionMix{.hire = 0, .departure = 0, .transfer = 1, .provision = 0,
                                      .decommission = 0, .clone_role = 0, .fork_role = 0,
                                      .shadow_role = 0});
  const std::size_t before = auditor.snapshot().ruam().nnz();
  evolution.run(30);
  const std::size_t after = auditor.snapshot().ruam().nnz();
  // Transfers move one edge at a time; an edge can vanish when the target
  // role already holds the user, so nnz never grows.
  EXPECT_LE(after, before);
  EXPECT_GE(after + 30, before);
}

TEST(Evolution, DietResetsAccumulatedDuplicates) {
  // Churn, then run the diet: duplicate findings drop to zero while access
  // is preserved — the full lifecycle the library exists for.
  core::IncrementalAuditor auditor;
  OrgEvolution evolution(auditor, 23);
  evolution.run(1'000);
  const core::RbacDataset decayed = auditor.snapshot();
  const core::AuditReport before = core::audit(decayed, {.detect_similar = false});
  ASSERT_GT(before.reducible_roles(), 0u);

  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(decayed, &stats);
  EXPECT_TRUE(core::verify_equivalence(decayed, slim));
  const core::AuditReport after = core::audit(slim, {.detect_similar = false});
  EXPECT_EQ(after.same_user_groups.group_count(), 0u);
  EXPECT_LT(slim.num_roles(), decayed.num_roles());
}

}  // namespace
}  // namespace rolediet::gen
