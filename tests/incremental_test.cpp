// Tests for the incremental auditor, including the batch-equivalence
// property under randomized mutation sequences.
#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>

#include "core/detector.hpp"
#include "core/incremental.hpp"
#include "core/methods/cooccurrence.hpp"
#include "test_helpers.hpp"
#include "util/prng.hpp"

namespace rolediet::core {
namespace {

void expect_matches_batch(const IncrementalAuditor& live) {
  const RbacDataset snap = live.snapshot();
  const StructuralFindings batch = detect_structural(snap);
  const StructuralFindings incr = live.structural();
  EXPECT_EQ(incr.standalone_users, batch.standalone_users);
  EXPECT_EQ(incr.standalone_roles, batch.standalone_roles);
  EXPECT_EQ(incr.standalone_permissions, batch.standalone_permissions);
  EXPECT_EQ(incr.roles_without_users, batch.roles_without_users);
  EXPECT_EQ(incr.roles_without_permissions, batch.roles_without_permissions);
  EXPECT_EQ(incr.single_user_roles, batch.single_user_roles);
  EXPECT_EQ(incr.single_permission_roles, batch.single_permission_roles);

  const methods::RoleDietGroupFinder finder;
  EXPECT_EQ(live.same_user_groups(), finder.find_same(snap.ruam()));
  EXPECT_EQ(live.same_permission_groups(), finder.find_same(snap.rpam()));
}

TEST(Incremental, StartsFromSnapshot) {
  const IncrementalAuditor live(rolediet::testing::figure1_dataset());
  EXPECT_EQ(live.num_users(), 4u);
  EXPECT_EQ(live.num_roles(), 5u);
  EXPECT_EQ(live.num_permissions(), 6u);
  expect_matches_batch(live);
  // The figure's known findings survive the round trip into the auditor.
  ASSERT_EQ(live.same_user_groups().group_count(), 1u);
  EXPECT_EQ(live.same_user_groups().groups[0], (std::vector<std::size_t>{1, 3}));
}

TEST(Incremental, EdgeMutationsAreIdempotent) {
  IncrementalAuditor live;
  const Id r = live.add_role("r");
  const Id u = live.add_user("u");
  EXPECT_TRUE(live.assign_user(r, u));
  EXPECT_FALSE(live.assign_user(r, u));  // already present
  EXPECT_TRUE(live.revoke_user(r, u));
  EXPECT_FALSE(live.revoke_user(r, u));  // already absent
}

TEST(Incremental, DuplicateEntityNamesReturnExistingIds) {
  // add_* are interning operations: a name is a unique key, so re-adding it
  // returns the existing id and changes nothing. Journals (io/journal.hpp)
  // rely on this to replay idempotently.
  IncrementalAuditor live;
  const Id u = live.add_user("alice");
  const Id r = live.add_role("admins");
  const Id p = live.add_permission("s3:Get");
  EXPECT_EQ(live.add_user("alice"), u);
  EXPECT_EQ(live.add_role("admins"), r);
  EXPECT_EQ(live.add_permission("s3:Get"), p);
  EXPECT_EQ(live.num_users(), 1u);
  EXPECT_EQ(live.num_roles(), 1u);
  EXPECT_EQ(live.num_permissions(), 1u);

  // Edges attached before the duplicate add survive it.
  EXPECT_TRUE(live.assign_user(r, u));
  EXPECT_EQ(live.add_role("admins"), r);
  EXPECT_FALSE(live.assign_user(r, u));  // edge still present

  // Names are distinct keys per entity kind, not globally.
  const Id r2 = live.add_role("alice");
  EXPECT_NE(r2, r);
  EXPECT_EQ(live.num_roles(), 2u);
  EXPECT_EQ(live.num_users(), 1u);
}

TEST(Incremental, FindByNameMirrorsInterning) {
  IncrementalAuditor live;
  EXPECT_EQ(live.find_user("alice"), std::nullopt);
  const Id u = live.add_user("alice");
  const Id r = live.add_role("admins");
  const Id p = live.add_permission("s3:Get");
  EXPECT_EQ(live.find_user("alice"), std::optional<Id>{u});
  EXPECT_EQ(live.find_role("admins"), std::optional<Id>{r});
  EXPECT_EQ(live.find_permission("s3:Get"), std::optional<Id>{p});
  EXPECT_EQ(live.find_role("alice"), std::nullopt);  // per-kind namespaces
  EXPECT_EQ(live.find_permission("admins"), std::nullopt);
}

TEST(Incremental, RevokeBreaksDuplicateGroup) {
  IncrementalAuditor live(rolediet::testing::figure1_dataset());
  // R02 (1) and R04 (3) share users {U02, U03}; revoking U03 from R04
  // dissolves the group and makes R04 a single-user role.
  EXPECT_TRUE(live.revoke_user(3, 2));
  EXPECT_TRUE(live.same_user_groups().groups.empty());
  const StructuralFindings f = live.structural();
  EXPECT_EQ(f.single_user_roles, (std::vector<Id>{0, 3, 4}));
  expect_matches_batch(live);

  // Re-assigning restores the duplicate group.
  EXPECT_TRUE(live.assign_user(3, 2));
  ASSERT_EQ(live.same_user_groups().group_count(), 1u);
  expect_matches_batch(live);
}

TEST(Incremental, AssignCreatesNewDuplicateGroup) {
  IncrementalAuditor live(rolediet::testing::figure1_dataset());
  // Give R01 (users {U01}) a twin: new role with exactly {U01}.
  const Id twin = live.add_role("R06");
  EXPECT_TRUE(live.assign_user(twin, 0));
  const RoleGroups groups = live.same_user_groups();
  bool found = false;
  for (const auto& g : groups.groups) {
    if (g == std::vector<std::size_t>{0, twin}) found = true;
  }
  EXPECT_TRUE(found);
  expect_matches_batch(live);
}

TEST(Incremental, RevokingLastEdgeMakesRoleOneSided) {
  IncrementalAuditor live;
  const Id r = live.add_role("r");
  const Id u = live.add_user("u");
  const Id p = live.add_permission("p");
  live.assign_user(r, u);
  live.grant_permission(r, p);
  expect_matches_batch(live);

  live.revoke_permission(r, p);
  EXPECT_EQ(live.structural().roles_without_permissions, (std::vector<Id>{r}));
  live.revoke_user(r, u);
  EXPECT_EQ(live.structural().standalone_roles, (std::vector<Id>{r}));
  EXPECT_EQ(live.structural().standalone_users, (std::vector<Id>{u}));
  expect_matches_batch(live);
}

TEST(Incremental, UnknownIdsThrow) {
  IncrementalAuditor live;
  live.add_role("r");
  live.add_user("u");
  EXPECT_THROW(live.assign_user(5, 0), std::out_of_range);
  EXPECT_THROW(live.assign_user(0, 5), std::out_of_range);
  EXPECT_THROW(live.revoke_permission(0, 0), std::out_of_range);
}

TEST(Incremental, EmptyAuditorIsClean) {
  const IncrementalAuditor live;
  const StructuralFindings f = live.structural();
  EXPECT_TRUE(f.standalone_users.empty());
  EXPECT_TRUE(live.same_user_groups().groups.empty());
  EXPECT_EQ(live.snapshot().num_roles(), 0u);
}

class IncrementalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalProperty, RandomMutationsMatchBatchAudit) {
  util::Xoshiro256 rng(GetParam());
  IncrementalAuditor live;
  constexpr std::size_t kUsers = 30;
  constexpr std::size_t kRoles = 25;
  constexpr std::size_t kPerms = 20;
  for (std::size_t u = 0; u < kUsers; ++u) live.add_user("u" + std::to_string(u));
  for (std::size_t r = 0; r < kRoles; ++r) live.add_role("r" + std::to_string(r));
  for (std::size_t p = 0; p < kPerms; ++p) live.add_permission("p" + std::to_string(p));

  for (int step = 0; step < 400; ++step) {
    const Id role = static_cast<Id>(rng.bounded(kRoles));
    switch (rng.bounded(4)) {
      case 0: live.assign_user(role, static_cast<Id>(rng.bounded(kUsers))); break;
      case 1: live.revoke_user(role, static_cast<Id>(rng.bounded(kUsers))); break;
      case 2: live.grant_permission(role, static_cast<Id>(rng.bounded(kPerms))); break;
      case 3: live.revoke_permission(role, static_cast<Id>(rng.bounded(kPerms))); break;
    }
    // Verify the full contract at a sampled subset of steps (every check is
    // a complete batch audit; doing it 400x per seed would be wasteful).
    if (step % 80 == 79) expect_matches_batch(live);
  }
  expect_matches_batch(live);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(7u, 11u, 23u, 41u, 97u));

}  // namespace
}  // namespace rolediet::core
