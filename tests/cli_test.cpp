// End-to-end tests of the rolediet command-line tool (cli::run with captured
// streams and temp directories).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"
#include "io/csv.hpp"
#include "linalg/kernels/kernels.hpp"
#include "test_helpers.hpp"

namespace rolediet::cli {
namespace {

namespace fs = std::filesystem;

/// Shared RAII temp dir (test_helpers.hpp), tagged for this suite; path()
/// keeps this suite's string-typed accessor (cli::run takes strings).
class CliDir : public testing::ScopedTempDir {
 public:
  CliDir() : ScopedTempDir("cli") {}
  [[nodiscard]] std::string path(const std::string& sub = "") const { return str(sub); }
};

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run(args, out, err);
  return {code, out.str(), err.str()};
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Cli, NoArgsPrintsHelpAndFails) {
  const CliResult r = run_cli({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.out.find("usage: rolediet"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  for (const char* flag : {"help", "--help", "-h"}) {
    const CliResult r = run_cli({flag});
    EXPECT_EQ(r.code, 0) << flag;
    EXPECT_NE(r.out.find("subcommands:"), std::string::npos);
  }
}

TEST(Cli, UnknownSubcommand) {
  const CliResult r = run_cli({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown subcommand"), std::string::npos);
}

TEST(Cli, GenerateOrgThenAudit) {
  CliDir dir;
  const CliResult gen = run_cli({"generate", "org", "--seed", "11", dir.path("data")});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("generated org"), std::string::npos);

  const CliResult audit = run_cli({"audit", dir.path("data")});
  ASSERT_EQ(audit.code, 0) << audit.err;
  EXPECT_NE(audit.out.find("RBAC inefficiency audit (method: role-diet)"), std::string::npos);
  EXPECT_NE(audit.out.find("same-users groups"), std::string::npos);
}

TEST(Cli, AuditWritesJsonAndCsv) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"audit", "--json", dir.path("report.json"), "--csv",
                               dir.path("findings.csv"), dir.path("data")});
  ASSERT_EQ(r.code, 0) << r.err;
  const std::string json = slurp(dir.path("report.json"));
  EXPECT_NE(json.find("\"method\":\"role-diet\""), std::string::npos);
  // The reduction block surfaces the cleanup plan sizes next to the findings.
  EXPECT_NE(json.find("\"reduction\":"), std::string::npos);
  EXPECT_NE(json.find("\"consolidation\":"), std::string::npos);
  EXPECT_NE(json.find("\"remediation\":"), std::string::npos);
  EXPECT_NE(json.find("\"roles_removed\":"), std::string::npos);
  const std::string csv = slurp(dir.path("findings.csv"));
  EXPECT_NE(csv.find("same-user-roles,0,R02"), std::string::npos);
}

TEST(Cli, AuditMethodAndThresholdOptions) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult dbscan =
      run_cli({"audit", "--method", "exact-dbscan", "--threshold", "2", dir.path("data")});
  ASSERT_EQ(dbscan.code, 0) << dbscan.err;
  EXPECT_NE(dbscan.out.find("method: exact-dbscan"), std::string::npos);
  EXPECT_NE(dbscan.out.find("t=2"), std::string::npos);

  const CliResult jaccard = run_cli({"audit", "--jaccard", "0.5", dir.path("data")});
  ASSERT_EQ(jaccard.code, 0) << jaccard.err;
  EXPECT_NE(jaccard.out.find("j<=0.50"), std::string::npos);
}

TEST(Cli, AuditRejectsBadOptions) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  EXPECT_EQ(run_cli({"audit", "--method", "magic", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"audit", "--threshold", "banana", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"audit", "--jaccard", "1.5", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"audit"}).code, 2);
  EXPECT_EQ(run_cli({"audit", dir.path("data"), "extra"}).code, 2);
}

TEST(Cli, NumericOptionsRejectOverflowAndNonFinite) {
  // Regression: out-of-range integers used to escape std::stoull as an
  // uncaught std::out_of_range (process abort), and "nan"/"inf" sailed
  // through std::stod into range checks that NaN compares false against.
  // All of these must exit 2 with a clean usage error instead.
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const std::vector<std::vector<std::string>> bad = {
      {"audit", "--threads", "99999999999999999999", dir.path("data")},
      {"audit", "--threshold", "99999999999999999999", dir.path("data")},
      {"audit", "--budget", "nan", dir.path("data")},
      {"audit", "--budget", "inf", dir.path("data")},
      {"audit", "--budget", "1e999", dir.path("data")},
      {"audit", "--jaccard", "nan", dir.path("data")},
      {"audit", "--jaccard", "-inf", dir.path("data")},
      {"generate", "adversarial", "--jaccard", "nan", "similarity-wall", dir.path("adv")},
  };
  for (const auto& args : bad) {
    const CliResult r = run_cli(args);
    EXPECT_EQ(r.code, 2) << args[1] << " " << args[2];
    EXPECT_NE(r.err.find("usage error"), std::string::npos) << args[1] << " " << args[2];
  }
}

TEST(Cli, KernelFlagSelectsDispatchTarget) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));

  // Forcing the always-available scalar target works with the flag before or
  // after the subcommand, and the report is oblivious to the choice.
  const CliResult before = run_cli({"--kernel", "scalar", "audit", dir.path("data")});
  ASSERT_EQ(before.code, 0) << before.err;
  EXPECT_NE(before.out.find("RBAC inefficiency audit"), std::string::npos);
  EXPECT_EQ(before.out.find("scalar"), std::string::npos) << "report must not echo the kernel";

  const CliResult after = run_cli({"audit", "--kernel", "scalar", dir.path("data")});
  ASSERT_EQ(after.code, 0) << after.err;

  const CliResult bogus = run_cli({"--kernel", "sse9", "audit", dir.path("data")});
  EXPECT_EQ(bogus.code, 2);
  EXPECT_NE(bogus.err.find("unknown --kernel"), std::string::npos);

  // avx2 and neon are never both runnable, so at least one must be rejected
  // with the capability list — on every host this test runs on.
  std::size_t rejected = 0;
  for (const char* isa : {"avx2", "neon"}) {
    const CliResult r = run_cli({"--kernel", isa, "version"});
    if (r.code == 2) {
      ++rejected;
      EXPECT_NE(r.err.find("not supported on this CPU"), std::string::npos) << isa;
      EXPECT_NE(r.err.find("supported: scalar"), std::string::npos) << isa;
    }
  }
  EXPECT_GE(rejected, 1u);

  // The flag mutates process-wide dispatch state; put detection back for the
  // rest of the suite.
  linalg::kernels::set_active_isa(linalg::kernels::KernelIsa::kAuto);
}

TEST(Cli, VersionReportsKernelCapability) {
  const CliResult r = run_cli({"version"});
  ASSERT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("kernels: active "), std::string::npos);
  EXPECT_NE(r.out.find("supported: scalar"), std::string::npos);
}

TEST(Cli, AuditMissingDatasetFails) {
  const CliResult r = run_cli({"audit", "/nonexistent/rolediet/data"});
  EXPECT_EQ(r.code, 0);  // empty dir semantics: loads an empty dataset
  // Loading a file path that exists but is not a directory is also tolerated
  // (all three CSV files are optional); a hard I/O failure path is covered
  // by the diet test below writing to an unwritable location.
}

TEST(Cli, ReplayStreamsJournalAndReaudits) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  {
    std::ofstream journal(dir.path("journal.csv"));
    journal << "add-user,U05\n"
               "assign-user,R01,U05\n"
               "revoke-user,R04,U03\n"
               "grant-permission,R03,P02\n";
  }
  const CliResult r = run_cli({"replay", "--every", "2", "--json", dir.path("report.json"),
                               dir.path("data"), dir.path("journal.csv")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("replay: baseline audit"), std::string::npos);
  // 4 mutations at --every 2 -> two delta re-audits after the baseline.
  EXPECT_NE(r.out.find("replay: 2 mutations applied, version 2"), std::string::npos);
  EXPECT_NE(r.out.find("replay: 4 mutations applied, version 4"), std::string::npos);
  EXPECT_NE(r.out.find("replay: journal exhausted after 4 mutations (3 audits)"),
            std::string::npos);
  const std::string json = slurp(dir.path("report.json"));
  EXPECT_NE(json.find("\"options\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\":1"), std::string::npos);
}

TEST(Cli, ReplayRejectsBadArguments) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  EXPECT_EQ(run_cli({"replay", dir.path("data")}).code, 2);  // missing journal
  EXPECT_EQ(run_cli({"replay", "--every", "0", dir.path("data"), "j.csv"}).code, 2);
  EXPECT_EQ(run_cli({"replay", dir.path("data"), dir.path("nope.csv")}).code, 1);
}

TEST(Cli, DietDryRunWritesNothing) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"diet", "--dry-run", dir.path("data")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("remediation plan:"), std::string::npos);
  EXPECT_NE(r.out.find("dry run: no changes written"), std::string::npos);
  EXPECT_FALSE(fs::exists(dir.path("out")));
}

TEST(Cli, DietAppliesAndWrites) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"diet", dir.path("data"), dir.path("out")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("diet complete"), std::string::npos);
  ASSERT_TRUE(fs::exists(dir.path("out")));

  const core::RbacDataset slim = io::load_dataset(dir.path("out"));
  // Fig. 1: R02/R03 removed would be wrong — R02 HAS users. Remediation
  // removes R03 (no users) and R02 (no perms)? R02 has users but no perms ->
  // removed; R03 perms but no users -> removed; then consolidation merges
  // nothing further among survivors R01, R04, R05 (R04/R05 share perms ->
  // merged). Expect 2 roles left.
  EXPECT_EQ(slim.num_roles(), 2u);
  EXPECT_TRUE(slim.find_role("R01").has_value());
}

TEST(Cli, DietSkipFlags) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"diet", "--skip-remediation", "--skip-consolidation",
                               dir.path("data"), dir.path("out")});
  ASSERT_EQ(r.code, 0) << r.err;
  const core::RbacDataset same = io::load_dataset(dir.path("out"));
  EXPECT_EQ(same.num_roles(), 5u);
}

TEST(Cli, DietRemoveEntitiesFlag) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"diet", "--remove-standalone-entities", dir.path("data"),
                               dir.path("out")});
  ASSERT_EQ(r.code, 0) << r.err;
  const core::RbacDataset slim = io::load_dataset(dir.path("out"));
  EXPECT_EQ(slim.find_permission("P01"), std::nullopt);  // the standalone permission
}

TEST(Cli, MineWritesVerifiedPlanJsonAndMigratedDataset) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"mine", "--json", dir.path("plan.json"), dir.path("data"),
                               dir.path("out")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("role mining plan:"), std::string::npos);
  EXPECT_NE(r.out.find("equivalence verified"), std::string::npos);
  EXPECT_NE(r.out.find("migrated dataset written to"), std::string::npos);

  const std::string json = slurp(dir.path("plan.json"));
  EXPECT_NE(json.find("\"roles_before\":"), std::string::npos);
  EXPECT_NE(json.find("\"roles_after\":"), std::string::npos);
  EXPECT_NE(json.find("\"used_duplicate_merge_fallback\":"), std::string::npos);
  EXPECT_NE(json.find("\"verified\":true"), std::string::npos);

  // Users and permissions survive the migration verbatim; only roles change.
  const core::RbacDataset migrated = io::load_dataset(dir.path("out"));
  const core::RbacDataset original = rolediet::testing::figure1_dataset();
  EXPECT_EQ(migrated.num_users(), original.num_users());
  EXPECT_EQ(migrated.num_permissions(), original.num_permissions());
  EXPECT_LE(migrated.num_roles(), original.num_roles());
}

TEST(Cli, MineHonorsCostAndCapOptions) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"mine", "--mine-cost", "1:0.5", "--max-roles-per-user", "4",
                               "--max-perms-per-role", "8", dir.path("data")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("roles/user <= 4"), std::string::npos);
  EXPECT_NE(r.out.find("perms/role <= 8"), std::string::npos);
  EXPECT_NE(r.out.find("equivalence verified"), std::string::npos);
}

TEST(Cli, MineRejectsBadArguments) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  EXPECT_EQ(run_cli({"mine"}).code, 2);  // missing dataset directory
  EXPECT_EQ(run_cli({"mine", dir.path("data"), "out", "extra"}).code, 2);
  // --mine-cost must be W_ROLES:W_EDGES, both >= 0, not both zero.
  EXPECT_EQ(run_cli({"mine", "--mine-cost", "1", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"mine", "--mine-cost", "0:0", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"mine", "--mine-cost", "-1:1", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"mine", "--mine-cost", "nan:1", dir.path("data")}).code, 2);
  EXPECT_EQ(run_cli({"mine", "--budget", "-1", dir.path("data")}).code, 2);
}

TEST(Cli, MineInfeasibleCapsFailCleanly) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  // Fig. 1 has a user holding two effective permissions; one role of one
  // permission cannot cover it, so plan_mining throws and the CLI exits 1.
  const CliResult r = run_cli({"mine", "--max-roles-per-user", "1", "--max-perms-per-role",
                               "1", dir.path("data")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, GenerateMatrix) {
  CliDir dir;
  const CliResult r = run_cli({"generate", "matrix", "--roles", "200", "--users", "100",
                               "--seed", "3", dir.path("m")});
  ASSERT_EQ(r.code, 0) << r.err;
  const core::RbacDataset d = io::load_dataset(dir.path("m"));
  EXPECT_EQ(d.num_roles(), 200u);
  EXPECT_EQ(d.num_users(), 100u);
  EXPECT_GT(d.ruam().nnz(), 0u);
}

TEST(Cli, GenerateRejectsUnknownKind) {
  const CliResult r = run_cli({"generate", "chaos", "/tmp/x"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown kind"), std::string::npos);
}

TEST(Cli, CompareRunsAllMethods) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"compare", dir.path("data")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("role-diet"), std::string::npos);
  EXPECT_NE(r.out.find("exact-dbscan"), std::string::npos);
  EXPECT_NE(r.out.find("approx-hnsw"), std::string::npos);

  const CliResult similar = run_cli({"compare", "--threshold", "1", dir.path("data")});
  ASSERT_EQ(similar.code, 0) << similar.err;
  EXPECT_NE(similar.out.find("similar, t=1"), std::string::npos);
}

TEST(Cli, ConvertCsvToBinaryAndBack) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult to_bin = run_cli({"convert", dir.path("data"), dir.path("data.rdb")});
  ASSERT_EQ(to_bin.code, 0) << to_bin.err;
  EXPECT_NE(to_bin.out.find("to binary"), std::string::npos);
  ASSERT_TRUE(fs::is_regular_file(dir.path("data.rdb")));

  fs::create_directories(dir.path("back"));
  const CliResult to_csv = run_cli({"convert", dir.path("data.rdb"), dir.path("back")});
  ASSERT_EQ(to_csv.code, 0) << to_csv.err;
  const core::RbacDataset round = io::load_dataset(dir.path("back"));
  EXPECT_EQ(round.num_roles(), 5u);
  EXPECT_EQ(round.ruam(), rolediet::testing::figure1_dataset().ruam());
}

TEST(Cli, ConvertRejectsGarbageBinary) {
  CliDir dir;
  {
    std::ofstream out(dir.path("junk.rdb"));
    out << "not a dataset";
  }
  const CliResult r = run_cli({"convert", dir.path("junk.rdb"), dir.path("out.rdb")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, AuditWithMinhashMethod) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult r = run_cli({"audit", "--method", "approx-minhash", dir.path("data")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("method: approx-minhash"), std::string::npos);
}

TEST(Cli, VersionPrintsLibraryAndFormatVersions) {
  for (const char* flag : {"version", "--version", "-v"}) {
    const CliResult r = run_cli({flag});
    ASSERT_EQ(r.code, 0) << flag;
    EXPECT_NE(r.out.find("rolediet "), std::string::npos) << flag;
    EXPECT_NE(r.out.find("build)"), std::string::npos) << flag;
    EXPECT_NE(r.out.find("store formats: snapshot v"), std::string::npos) << flag;
    EXPECT_NE(r.out.find("wal v"), std::string::npos) << flag;
  }
}

TEST(Cli, CheckpointThenRecoverRoundTrips) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult init = run_cli({"checkpoint", dir.path("data"), dir.path("store")});
  ASSERT_EQ(init.code, 0) << init.err;
  EXPECT_NE(init.out.find("checkpoint: initialized store"), std::string::npos);
  EXPECT_NE(init.out.find("baseline snapshot snap-"), std::string::npos);

  // A second init of the same directory must refuse, not clobber.
  EXPECT_EQ(run_cli({"checkpoint", dir.path("data"), dir.path("store")}).code, 1);

  const CliResult rec = run_cli({"recover", "--json", dir.path("report.json"),
                                 dir.path("store")});
  ASSERT_EQ(rec.code, 0) << rec.err;
  EXPECT_NE(rec.out.find("recover: snapshot snap-"), std::string::npos);
  EXPECT_NE(rec.out.find("replayed 0 WAL records"), std::string::npos);
  EXPECT_NE(rec.out.find("dataset digest"), std::string::npos);
  EXPECT_NE(slurp(dir.path("report.json")).find("\"dataset_digest\""), std::string::npos);
}

TEST(Cli, ReplayWithStorePersistsAcrossRecover) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  {
    std::ofstream journal(dir.path("journal.csv"));
    journal << "add-user,U05\n"
               "assign-user,R01,U05\n"
               "revoke-user,R04,U03\n"
               "grant-permission,R03,P02\n";
  }
  const CliResult r = run_cli({"replay", "--every", "2", "--store", dir.path("store"),
                               "--checkpoint-every", "2", "--fsync", "none", dir.path("data"),
                               dir.path("journal.csv")});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("replay: checkpoint at 2 records"), std::string::npos);
  EXPECT_NE(r.out.find("replay: final checkpoint snap-"), std::string::npos);
  EXPECT_NE(r.out.find("(4 records)"), std::string::npos);

  // The store now recovers to the journal's end state with nothing to replay.
  const CliResult rec = run_cli({"recover", dir.path("store")});
  ASSERT_EQ(rec.code, 0) << rec.err;
  EXPECT_NE(rec.out.find("recover: snapshot snap-00000000000000000004"), std::string::npos);
  EXPECT_NE(rec.out.find("replayed 0 WAL records -> 4 committed records"), std::string::npos);
}

TEST(Cli, ShardedStoreRoundTripsThroughAutoDetectingRecover) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult init =
      run_cli({"checkpoint", "--shards", "2", dir.path("data"), dir.path("store")});
  ASSERT_EQ(init.code, 0) << init.err;
  EXPECT_NE(init.out.find("baseline generation 0 across 2 shards"), std::string::npos);
  EXPECT_TRUE(fs::is_regular_file(dir.path("store/MANIFEST")));

  // recover auto-detects the sharded layout from the MANIFEST.
  const CliResult rec = run_cli({"recover", dir.path("store")});
  ASSERT_EQ(rec.code, 0) << rec.err;
  EXPECT_NE(rec.out.find("recover: sharded checkpoint 0 across 2 shards"), std::string::npos);
  EXPECT_NE(rec.out.find("replayed 0 commits"), std::string::npos);
  EXPECT_NE(rec.out.find("dataset digest"), std::string::npos);

  // churn streams into a sharded store and recover replays it back.
  const CliResult churn = run_cli({"churn", "--shards", "3", "--employees", "20", "--years",
                                   "1", "--fsync", "none", dir.path("churnstore")});
  ASSERT_EQ(churn.code, 0) << churn.err;
  EXPECT_NE(churn.out.find("3 shards"), std::string::npos);
  EXPECT_NE(churn.out.find("churn: checkpoint generation"), std::string::npos);
  const CliResult rec2 = run_cli({"recover", dir.path("churnstore")});
  ASSERT_EQ(rec2.code, 0) << rec2.err;
  EXPECT_NE(rec2.out.find("recover: sharded checkpoint"), std::string::npos);
}

TEST(Cli, ShardedAuditMatchesUnshardedFindings) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  const CliResult unsharded = run_cli({"audit", dir.path("data")});
  const CliResult sharded = run_cli({"audit", "--shards", "2", dir.path("data")});
  ASSERT_EQ(unsharded.code, 0) << unsharded.err;
  ASSERT_EQ(sharded.code, 0) << sharded.err;
  // Finding lines are identical; timings and work counters legitimately
  // differ, so drop those before comparing.
  const auto strip = [](const std::string& text) {
    std::istringstream in(text);
    std::ostringstream kept;
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("finder work:") != std::string::npos ||
          line.find("total detection time") != std::string::npos) {
        continue;
      }
      const std::size_t open = line.find(" (");
      if (open != std::string::npos && line.find(" groups / ") != std::string::npos)
        line.resize(open);
      kept << line << "\n";
    }
    return kept.str();
  };
  EXPECT_EQ(strip(sharded.out), strip(unsharded.out));
  EXPECT_EQ(run_cli({"audit", "--shards", "0", dir.path("data")}).code, 2);
}

TEST(Cli, StoreCommandsRejectBadArguments) {
  CliDir dir;
  io::save_dataset(rolediet::testing::figure1_dataset(), dir.path("data"));
  EXPECT_EQ(run_cli({"checkpoint", dir.path("data")}).code, 2);  // missing store dir
  EXPECT_EQ(run_cli({"recover"}).code, 2);                       // missing store dir
  EXPECT_EQ(run_cli({"recover", dir.path("nostore")}).code, 1);  // no snapshot there
  EXPECT_EQ(run_cli({"replay", "--fsync", "sometimes", dir.path("data"), "j.csv"}).code, 2);
  // --checkpoint-every / --shards without --store make no sense.
  EXPECT_EQ(run_cli({"replay", "--checkpoint-every", "2", dir.path("data"), "j.csv"}).code, 2);
  EXPECT_EQ(run_cli({"replay", "--shards", "2", dir.path("data"), "j.csv"}).code, 2);
}

TEST(Cli, DeterministicGenerate) {
  CliDir dir;
  ASSERT_EQ(run_cli({"generate", "org", "--seed", "5", dir.path("a")}).code, 0);
  ASSERT_EQ(run_cli({"generate", "org", "--seed", "5", dir.path("b")}).code, 0);
  EXPECT_EQ(slurp(dir.path("a") + "/assignments.csv"), slurp(dir.path("b") + "/assignments.csv"));
  EXPECT_EQ(slurp(dir.path("a") + "/grants.csv"), slurp(dir.path("b") + "/grants.csv"));
}

}  // namespace
}  // namespace rolediet::cli
