// Property-based tests: randomized inputs with fixed seeds, checking the
// invariants DESIGN.md commits to:
//  - the role-diet method returns exactly the same canonical groups as
//    exact DBSCAN on every input (same + similar, several thresholds);
//  - every HNSW group is a subset of some exact group (distances are exact,
//    only recall can be lost);
//  - the Hamming set identity d = |Ri| + |Rj| - 2 g holds between the sparse
//    and dense kernels;
//  - duplicate-role consolidation preserves every user's permission set;
//  - generated matrices meet their postconditions.
#include <gtest/gtest.h>

#include "core/consolidation.hpp"
#include "core/framework.hpp"
#include "core/methods/minhash_lsh.hpp"
#include "core/remediation.hpp"
#include "io/csv.hpp"
#include "core/methods/approx.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/methods/exact.hpp"
#include "gen/matrix_generator.hpp"
#include "linalg/convert.hpp"
#include "util/prng.hpp"

namespace rolediet {
namespace {

using core::RoleGroups;
using core::methods::DbscanGroupFinder;
using core::methods::HnswGroupFinder;
using core::methods::RoleDietGroupFinder;

/// Random sparse matrix with planted duplicate and near-duplicate rows.
linalg::CsrMatrix random_matrix(std::uint64_t seed, std::size_t rows, std::size_t cols,
                                std::size_t max_norm) {
  util::Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  std::vector<std::vector<std::uint32_t>> contents(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const double roll = rng.uniform01();
    if (r > 0 && roll < 0.25) {
      // Exact duplicate of a random earlier row.
      contents[r] = contents[rng.bounded(r)];
    } else if (r > 0 && roll < 0.45) {
      // Near-duplicate: flip one position of an earlier row.
      contents[r] = contents[rng.bounded(r)];
      const auto pos = static_cast<std::uint32_t>(rng.bounded(cols));
      auto it = std::lower_bound(contents[r].begin(), contents[r].end(), pos);
      if (it != contents[r].end() && *it == pos) {
        contents[r].erase(it);
      } else {
        contents[r].insert(it, pos);
      }
    } else if (roll < 0.50) {
      // Leave the row empty (type-2 shape).
    } else {
      const std::size_t norm = 1 + rng.bounded(max_norm);
      for (std::size_t p : rng.sample_indices(cols, norm))
        contents[r].push_back(static_cast<std::uint32_t>(p));
      std::sort(contents[r].begin(), contents[r].end());
    }
    for (std::uint32_t c : contents[r]) entries.emplace_back(static_cast<std::uint32_t>(r), c);
  }
  return linalg::CsrMatrix::from_pairs(rows, cols, std::move(entries));
}

class RandomizedAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedAgreement, RoleDietMatchesDbscanOnSame) {
  const auto m = random_matrix(GetParam(), 120, 80, 6);
  const RoleDietGroupFinder ours;
  const DbscanGroupFinder exact;
  EXPECT_EQ(ours.find_same(m), exact.find_same(m));
}

TEST_P(RandomizedAgreement, BothSameStrategiesMatchDbscan) {
  const auto m = random_matrix(GetParam() ^ 0xABCDEF, 90, 60, 5);
  const RoleDietGroupFinder by_matrix{
      {.same_strategy = RoleDietGroupFinder::SameStrategy::kCooccurrenceMatrix}};
  const DbscanGroupFinder exact;
  EXPECT_EQ(by_matrix.find_same(m), exact.find_same(m));
}

TEST_P(RandomizedAgreement, RoleDietMatchesDbscanOnSimilar) {
  const auto m = random_matrix(GetParam() ^ 0x5555, 100, 70, 5);
  const RoleDietGroupFinder ours;
  const DbscanGroupFinder exact;
  for (std::size_t t : {0u, 1u, 2u, 3u}) {
    EXPECT_EQ(ours.find_similar(m, t), exact.find_similar(m, t)) << "threshold " << t;
  }
}

TEST_P(RandomizedAgreement, RoleDietMatchesDbscanOnJaccard) {
  const auto m = random_matrix(GetParam() ^ 0xBEEF, 100, 70, 6);
  const RoleDietGroupFinder ours;
  const DbscanGroupFinder exact;
  for (std::size_t scaled : {0u, 100'000u, 333'333u, 500'000u, 999'999u}) {
    EXPECT_EQ(ours.find_similar_jaccard(m, scaled), exact.find_similar_jaccard(m, scaled))
        << "scaled threshold " << scaled;
  }
}

TEST_P(RandomizedAgreement, HnswGroupsAreSubsetsOfExactGroups) {
  const auto m = random_matrix(GetParam() ^ 0x777, 150, 100, 6);
  const RoleDietGroupFinder ours;
  const HnswGroupFinder approx;
  for (std::size_t t : {0u, 1u}) {
    const RoleGroups truth = ours.find_similar(m, t);
    const RoleGroups found = approx.find_similar(m, t);
    // Map each role to its true group index.
    std::vector<std::ptrdiff_t> true_group(m.rows(), -1);
    for (std::size_t g = 0; g < truth.groups.size(); ++g) {
      for (std::size_t member : truth.groups[g])
        true_group[member] = static_cast<std::ptrdiff_t>(g);
    }
    for (const auto& group : found.groups) {
      ASSERT_GE(group.size(), 2u);
      const std::ptrdiff_t expected = true_group[group.front()];
      ASSERT_NE(expected, -1) << "HNSW grouped a role DBSCAN left ungrouped";
      for (std::size_t member : group) {
        EXPECT_EQ(true_group[member], expected)
            << "HNSW merged roles across true groups at t=" << t;
      }
    }
  }
}

TEST_P(RandomizedAgreement, ApproximateJaccardGroupsAreSubsets) {
  const auto m = random_matrix(GetParam() ^ 0x8888, 120, 80, 6);
  const RoleDietGroupFinder ours;
  for (std::size_t scaled : {0u, 250'000u}) {
    const RoleGroups truth = ours.find_similar_jaccard(m, scaled);
    std::vector<std::ptrdiff_t> true_group(m.rows(), -1);
    for (std::size_t g = 0; g < truth.groups.size(); ++g) {
      for (std::size_t member : truth.groups[g])
        true_group[member] = static_cast<std::ptrdiff_t>(g);
    }
    const HnswGroupFinder hnsw;
    const core::methods::MinHashGroupFinder minhash;
    for (const RoleGroups& found :
         {hnsw.find_similar_jaccard(m, scaled), minhash.find_similar_jaccard(m, scaled)}) {
      for (const auto& group : found.groups) {
        const std::ptrdiff_t expected = true_group[group.front()];
        ASSERT_NE(expected, -1);
        for (std::size_t member : group) {
          EXPECT_EQ(true_group[member], expected)
              << "approximate method merged across true jaccard groups";
        }
      }
    }
  }
}

TEST_P(RandomizedAgreement, HammingIdentitySparseVsDense) {
  const auto m = random_matrix(GetParam() ^ 0x9999, 60, 200, 10);
  const linalg::BitMatrix dense = linalg::to_dense(m);
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t a = rng.bounded(m.rows());
    const std::size_t b = rng.bounded(m.rows());
    const std::size_t g = m.row_intersection(a, b);
    EXPECT_EQ(m.row_hamming(a, b), m.row_size(a) + m.row_size(b) - 2 * g);
    EXPECT_EQ(m.row_hamming(a, b), dense.row_hamming(a, b));
    EXPECT_EQ(g, dense.row_intersection(a, b));
  }
}

TEST_P(RandomizedAgreement, ConsolidationPreservesUserPermissions) {
  util::Xoshiro256 rng(GetParam() ^ 0x1234);
  core::RbacDataset d;
  d.add_users(50);
  d.add_permissions(60);
  d.add_roles(80);
  for (core::Id r = 0; r < 80; ++r) {
    const std::size_t users = rng.bounded(6);
    const std::size_t perms = rng.bounded(6);
    for (std::size_t k = 0; k < users; ++k)
      d.assign_user(r, static_cast<core::Id>(rng.bounded(50)));
    for (std::size_t k = 0; k < perms; ++k)
      d.grant_permission(r, static_cast<core::Id>(rng.bounded(60)));
  }
  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(d, &stats);
  EXPECT_TRUE(core::verify_equivalence(d, slim));
  EXPECT_EQ(stats.roles_after + stats.removed_same_users + stats.removed_same_permissions,
            stats.roles_before);
}

TEST_P(RandomizedAgreement, RemediationThenConsolidationPreservesAccess) {
  // The full diet pipeline on random datasets: remediation (types 1-3,
  // including entity removal) followed by duplicate consolidation must keep
  // every surviving user's permission set intact through BOTH steps.
  util::Xoshiro256 rng(GetParam() ^ 0x4444);
  core::RbacDataset d;
  d.add_users(40);
  d.add_permissions(50);
  d.add_roles(70);
  for (core::Id r = 0; r < 70; ++r) {
    for (std::size_t k = rng.bounded(5); k > 0; --k)
      d.assign_user(r, static_cast<core::Id>(rng.bounded(40)));
    for (std::size_t k = rng.bounded(5); k > 0; --k)
      d.grant_permission(r, static_cast<core::Id>(rng.bounded(50)));
  }
  const core::AuditReport report = core::audit(d, {.detect_similar = false});
  core::RemediationPolicy policy;
  policy.remove_standalone_users = true;
  policy.remove_standalone_permissions = true;
  const core::RemediationPlan plan = core::plan_remediation(d, report, policy);
  const core::RbacDataset cleaned = core::apply_remediation(d, plan);
  ASSERT_TRUE(core::verify_remediation(d, cleaned, plan));

  core::ConsolidationStats stats;
  const core::RbacDataset slim = core::consolidate_duplicates(cleaned, &stats);
  EXPECT_TRUE(core::verify_equivalence(cleaned, slim));
  // Transitive check against the original, by name, for surviving users.
  for (std::size_t u = 0; u < slim.num_users(); ++u) {
    const core::Id after_id = static_cast<core::Id>(u);
    const auto before_id = d.find_user(slim.user_name(after_id));
    ASSERT_TRUE(before_id.has_value());
    std::vector<std::string> before_names;
    for (core::Id p : d.permissions_of_user(*before_id))
      before_names.push_back(d.permission_name(p));
    std::vector<std::string> after_names;
    for (core::Id p : slim.permissions_of_user(after_id))
      after_names.push_back(slim.permission_name(p));
    std::sort(before_names.begin(), before_names.end());
    std::sort(after_names.begin(), after_names.end());
    EXPECT_EQ(before_names, after_names) << "user " << slim.user_name(after_id);
  }
}

TEST_P(RandomizedAgreement, MinHashFindSameMatchesExact) {
  const auto m = random_matrix(GetParam() ^ 0x2222, 150, 90, 6);
  const core::methods::MinHashGroupFinder minhash;
  const RoleDietGroupFinder exact;
  // Identical sets always collide in every band: exact duplicate recall.
  EXPECT_EQ(minhash.find_same(m), exact.find_same(m));
}

TEST_P(RandomizedAgreement, CsvEscapeParseRoundTrip) {
  util::Xoshiro256 rng(GetParam() ^ 0x6666);
  const char alphabet[] = "abc,\"\n\t xyz'\\;|";
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::string> fields(1 + rng.bounded(4));
    for (auto& field : fields) {
      const std::size_t len = rng.bounded(12);
      for (std::size_t i = 0; i < len; ++i)
        field.push_back(alphabet[rng.bounded(sizeof(alphabet) - 1)]);
    }
    // Embedded newlines are the one thing the line-based reader cannot
    // carry; the writer never produces them in entity names either.
    for (auto& field : fields)
      std::replace(field.begin(), field.end(), '\n', ' ');
    std::string line;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i > 0) line.push_back(',');
      line += io::escape_csv_field(fields[i]);
    }
    EXPECT_EQ(io::parse_csv_line(line), fields) << "line: " << line;
  }
}

TEST_P(RandomizedAgreement, GeneratorPostconditions) {
  const gen::GeneratedMatrix g = gen::generate_matrix(
      {.roles = 300, .cols = 250, .min_row_norm = 2, .max_row_norm = 8, .seed = GetParam()});
  // Planted groups are non-overlapping and members share identical rows.
  std::vector<bool> used(g.matrix.rows(), false);
  for (const auto& group : g.planted.groups) {
    for (std::size_t member : group) {
      EXPECT_FALSE(used[member]);
      used[member] = true;
      EXPECT_TRUE(g.matrix.rows_equal(group.front(), member));
    }
  }
  // Detection recovers exactly the planted groups.
  const RoleDietGroupFinder finder;
  EXPECT_EQ(finder.find_same(g.matrix), g.planted);
}

TEST_P(RandomizedAgreement, ParallelGroupsFormPartitionAndSkipEmptyRows) {
  // Invariants of every parallelized finder path: group membership is a
  // partition (no role in two groups, every group has >= 2 members) and
  // roles with empty rows are never grouped (they are type-2 findings).
  const auto m = random_matrix(GetParam() ^ 0x9A37, 140, 90, 6);
  auto check_partition = [&](const RoleGroups& groups, const char* what) {
    std::vector<bool> seen(m.rows(), false);
    for (const auto& group : groups.groups) {
      EXPECT_GE(group.size(), 2u) << what;
      for (std::size_t member : group) {
        ASSERT_LT(member, m.rows()) << what;
        EXPECT_FALSE(seen[member]) << what << ": role " << member << " in two groups";
        seen[member] = true;
        EXPECT_GT(m.row_size(member), 0u) << what << ": empty role " << member << " grouped";
      }
    }
  };
  const RoleDietGroupFinder diet({.threads = 4});
  const DbscanGroupFinder dbscan({.threads = 4});
  core::methods::HnswGroupFinder::Options hnsw_options;
  hnsw_options.threads = 4;
  hnsw_options.build_batch = 32;
  const HnswGroupFinder hnsw(hnsw_options);
  core::methods::MinHashGroupFinder::Options minhash_options;
  minhash_options.lsh.threads = 4;
  const core::methods::MinHashGroupFinder minhash(minhash_options);

  check_partition(diet.find_same(m), "role-diet same");
  check_partition(diet.find_similar(m, 2), "role-diet similar");
  check_partition(diet.find_similar_jaccard(m, 250'000), "role-diet jaccard");
  check_partition(dbscan.find_similar(m, 2), "dbscan similar");
  check_partition(hnsw.find_similar(m, 1), "hnsw similar");
  check_partition(minhash.find_similar(m, 1), "minhash similar");
}

TEST_P(RandomizedAgreement, WorkCountersAreConsistentAndThreadInvariant) {
  const auto m = random_matrix(GetParam() ^ 0xC027, 130, 80, 6);
  auto check = [&](const core::GroupFinder& finder, const RoleGroups& groups,
                   const char* what) {
    const core::FinderWorkStats work = finder.last_work();
    EXPECT_LE(work.pairs_matched, work.pairs_evaluated) << what;
    EXPECT_LE(work.merges, work.pairs_matched) << what;
    EXPECT_EQ(work.merge_conflicts, work.pairs_matched - work.merges) << what;
    EXPECT_EQ(work.merges, groups.roles_in_groups() - groups.group_count()) << what;
  };
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const RoleDietGroupFinder diet({.threads = threads});
    check(diet, diet.find_same(m), "role-diet same");
    check(diet, diet.find_similar(m, 2), "role-diet similar");
    const DbscanGroupFinder dbscan({.threads = threads});
    check(dbscan, dbscan.find_similar(m, 1), "dbscan similar");
    const HnswGroupFinder hnsw;
    check(hnsw, hnsw.find_same(m), "hnsw same");
    const core::methods::MinHashGroupFinder minhash;
    check(minhash, minhash.find_similar(m, 1), "minhash similar");
  }
  // The counters themselves are deterministic: identical at 1 and 4 threads.
  const RoleDietGroupFinder serial({.threads = 1});
  const RoleDietGroupFinder parallel({.threads = 4});
  (void)serial.find_similar(m, 2);
  (void)parallel.find_similar(m, 2);
  const core::FinderWorkStats a = serial.last_work();
  const core::FinderWorkStats b = parallel.last_work();
  EXPECT_EQ(a.rows_processed, b.rows_processed);
  EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated);
  EXPECT_EQ(a.pairs_matched, b.pairs_matched);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.merge_conflicts, b.merge_conflicts);
}

TEST_P(RandomizedAgreement, WorkCountersNondecreasingInInputSize) {
  // random_matrix generates row r from the rows before it only, so
  // random_matrix(seed, k, ...) is exactly the first k rows of
  // random_matrix(seed, n, ...): the workloads nest, and every counter must
  // be non-decreasing along the chain.
  const std::uint64_t seed = GetParam() ^ 0x6202;
  core::FinderWorkStats prev_diet;
  core::FinderWorkStats prev_dbscan;
  for (std::size_t rows : {40u, 80u, 120u, 160u}) {
    const auto m = random_matrix(seed, rows, 70, 5);
    const RoleDietGroupFinder diet({.threads = 2});
    (void)diet.find_similar(m, 2);
    const core::FinderWorkStats diet_work = diet.last_work();
    EXPECT_GE(diet_work.rows_processed, prev_diet.rows_processed) << rows;
    EXPECT_GE(diet_work.pairs_evaluated, prev_diet.pairs_evaluated) << rows;
    EXPECT_GE(diet_work.pairs_matched, prev_diet.pairs_matched) << rows;
    prev_diet = diet_work;

    const DbscanGroupFinder dbscan({.threads = 2});
    (void)dbscan.find_similar(m, 2);
    const core::FinderWorkStats dbscan_work = dbscan.last_work();
    EXPECT_GE(dbscan_work.rows_processed, prev_dbscan.rows_processed) << rows;
    EXPECT_GE(dbscan_work.pairs_evaluated, prev_dbscan.pairs_evaluated) << rows;
    prev_dbscan = dbscan_work;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedAgreement,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace rolediet
