// Tests for periodic-run accumulation and the recall/precision metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <stdexcept>

#include "core/methods/approx.hpp"
#include "core/methods/cooccurrence.hpp"
#include "core/periodic.hpp"
#include "gen/matrix_generator.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

RoleGroups make_groups(std::vector<std::vector<std::size_t>> groups) {
  RoleGroups out;
  out.groups = std::move(groups);
  out.normalize();
  return out;
}

TEST(MergeRoleGroups, DisjointGroupsJuxtapose) {
  const RoleGroups merged =
      merge_role_groups(10, make_groups({{0, 1}}), make_groups({{5, 6}}));
  EXPECT_EQ(merged, make_groups({{0, 1}, {5, 6}}));
}

TEST(MergeRoleGroups, OverlapChainsTransitively) {
  const RoleGroups merged =
      merge_role_groups(10, make_groups({{0, 1}, {2, 3}}), make_groups({{1, 2}}));
  EXPECT_EQ(merged, make_groups({{0, 1, 2, 3}}));
}

TEST(MergeRoleGroups, IdempotentAndCommutative) {
  const RoleGroups a = make_groups({{0, 3}, {5, 7, 9}});
  const RoleGroups b = make_groups({{3, 5}});
  EXPECT_EQ(merge_role_groups(10, a, a), a);
  EXPECT_EQ(merge_role_groups(10, a, b), merge_role_groups(10, b, a));
}

TEST(MergeRoleGroups, EmptyIsIdentity) {
  const RoleGroups a = make_groups({{1, 2}});
  EXPECT_EQ(merge_role_groups(5, a, {}), a);
  EXPECT_EQ(merge_role_groups(5, {}, {}), RoleGroups{});
}

TEST(MergeRoleGroups, RejectsOutOfUniverse) {
  EXPECT_THROW(merge_role_groups(3, make_groups({{1, 7}}), {}), std::out_of_range);
}

TEST(PeriodicAccumulator, GrowsMonotonically) {
  PeriodicAccumulator acc(20);
  EXPECT_EQ(acc.runs_absorbed(), 0u);
  acc.absorb(make_groups({{0, 1}}));
  EXPECT_EQ(acc.current().roles_in_groups(), 2u);
  acc.absorb(make_groups({{2, 3}}));
  EXPECT_EQ(acc.current().roles_in_groups(), 4u);
  acc.absorb(make_groups({{1, 2}}));  // bridges the two groups
  EXPECT_EQ(acc.current(), make_groups({{0, 1, 2, 3}}));
  EXPECT_EQ(acc.runs_absorbed(), 3u);
}

TEST(PairwiseRecall, ExactMatchIsOne) {
  const RoleGroups truth = make_groups({{0, 1, 2}, {4, 5}});
  EXPECT_DOUBLE_EQ(pairwise_recall(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(pairwise_precision(truth, truth), 1.0);
}

TEST(PairwiseRecall, PartialFinding) {
  // Truth: {0,1,2} (3 pairs) + {4,5} (1 pair) = 4 pairs.
  // Found: {0,1} covers 1 of those pairs.
  const RoleGroups truth = make_groups({{0, 1, 2}, {4, 5}});
  const RoleGroups found = make_groups({{0, 1}});
  EXPECT_DOUBLE_EQ(pairwise_recall(truth, found), 0.25);
  EXPECT_DOUBLE_EQ(pairwise_precision(truth, found), 1.0);
}

TEST(PairwiseRecall, SplitGroupCountsWithinParts) {
  // Truth {0,1,2,3} (6 pairs); found splits it into {0,1} and {2,3}:
  // only those 2 pairs survive.
  const RoleGroups truth = make_groups({{0, 1, 2, 3}});
  const RoleGroups found = make_groups({{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(pairwise_recall(truth, found), 2.0 / 6.0);
}

TEST(PairwiseRecall, OverMergeHurtsPrecisionNotRecall) {
  const RoleGroups truth = make_groups({{0, 1}, {2, 3}});
  const RoleGroups found = make_groups({{0, 1, 2, 3}});
  EXPECT_DOUBLE_EQ(pairwise_recall(truth, found), 1.0);
  EXPECT_DOUBLE_EQ(pairwise_precision(truth, found), 2.0 / 6.0);
}

TEST(PairwiseRecall, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(pairwise_recall({}, make_groups({{0, 1}})), 1.0);
}

TEST(PeriodicAccumulator, AbsorbIsOrderIndependent) {
  // Property: absorbing the same runs in any permutation yields the same
  // canonical grouping — the set-union of co-membership pairs has no order.
  // This is the algebraic fact that makes partial results safe: a cancelled
  // run contributes a subset of its full pair set, and subsets union in
  // any order to the same closure.
  constexpr std::size_t kRoles = 64;
  std::mt19937_64 rng(0xACC0BDULL);
  for (int trial = 0; trial < 20; ++trial) {
    // A handful of random runs, each a few random small groups.
    std::vector<RoleGroups> runs;
    const std::size_t num_runs = 2 + rng() % 4;
    for (std::size_t r = 0; r < num_runs; ++r) {
      std::vector<std::vector<std::size_t>> groups;
      const std::size_t num_groups = 1 + rng() % 4;
      for (std::size_t g = 0; g < num_groups; ++g) {
        std::vector<std::size_t> members;
        const std::size_t size = 2 + rng() % 4;
        for (std::size_t m = 0; m < size; ++m) members.push_back(rng() % kRoles);
        groups.push_back(std::move(members));
      }
      runs.push_back(make_groups(std::move(groups)));
    }

    PeriodicAccumulator forward(kRoles);
    for (const RoleGroups& run : runs) forward.absorb(run);

    // Several random permutations of the same runs.
    std::vector<std::size_t> order(runs.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (int perm = 0; perm < 5; ++perm) {
      std::shuffle(order.begin(), order.end(), rng);
      PeriodicAccumulator shuffled(kRoles);
      for (std::size_t idx : order) shuffled.absorb(runs[idx]);
      EXPECT_EQ(shuffled.current(), forward.current()) << "trial " << trial;
    }
  }
}

TEST(PeriodicConvergence, HnswRunsConvergeToExactGroups) {
  // The paper's convergence claim in miniature: narrow-beam HNSW misses
  // groups in any single run, but unioning runs with different index seeds
  // converges toward the exact grouping.
  const gen::GeneratedMatrix workload =
      gen::generate_matrix({.roles = 800, .cols = 500, .seed = 99});
  const methods::RoleDietGroupFinder exact;
  const RoleGroups truth = exact.find_same(workload.matrix);
  ASSERT_GT(truth.roles_in_groups(), 0u);

  PeriodicAccumulator acc(workload.matrix.rows());
  double first_recall = 0.0;
  double last_recall = 0.0;
  for (std::uint64_t run = 0; run < 6; ++run) {
    methods::HnswGroupFinder::Options options;
    options.query_ef = 8;  // deliberately narrow: single runs must be lossy
    options.index.ef_search = 8;
    options.index.ef_construction = 40;
    options.index.seed = run * 1000 + 1;
    const methods::HnswGroupFinder approx(options);
    acc.absorb(approx.find_same(workload.matrix));
    const double recall = pairwise_recall(truth, acc.current());
    if (run == 0) first_recall = recall;
    last_recall = recall;
    // Union of true-positive-only runs never over-merges.
    EXPECT_DOUBLE_EQ(pairwise_precision(truth, acc.current()), 1.0);
  }
  EXPECT_LT(first_recall, 1.0) << "beam too wide: single run already exact, test is vacuous";
  EXPECT_GT(last_recall, first_recall);
  EXPECT_GT(last_recall, 0.9);
}

}  // namespace
}  // namespace rolediet::core
