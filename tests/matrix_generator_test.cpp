// Tests for the synthetic RUAM/RPAM generator (§IV-A workload).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/methods/cooccurrence.hpp"
#include "gen/matrix_generator.hpp"

namespace rolediet::gen {
namespace {

TEST(MatrixGenerator, ShapeMatchesParams) {
  const GeneratedMatrix g = generate_matrix({.roles = 200, .cols = 300, .seed = 3});
  EXPECT_EQ(g.matrix.rows(), 200u);
  EXPECT_EQ(g.matrix.cols(), 300u);
}

TEST(MatrixGenerator, DeterministicInSeed) {
  const MatrixGenParams params{.roles = 150, .cols = 100, .seed = 11};
  const GeneratedMatrix a = generate_matrix(params);
  const GeneratedMatrix b = generate_matrix(params);
  EXPECT_EQ(a.matrix, b.matrix);
  EXPECT_EQ(a.planted, b.planted);

  MatrixGenParams other = params;
  other.seed = 12;
  EXPECT_NE(generate_matrix(other).matrix, a.matrix);
}

TEST(MatrixGenerator, RowNormsWithinBounds) {
  const GeneratedMatrix g = generate_matrix(
      {.roles = 300, .cols = 200, .min_row_norm = 4, .max_row_norm = 9, .seed = 5});
  for (std::size_t r = 0; r < g.matrix.rows(); ++r) {
    // Perturbation is off, so every row norm is within the configured range.
    EXPECT_GE(g.matrix.row_size(r), 4u);
    EXPECT_LE(g.matrix.row_size(r), 9u);
  }
}

TEST(MatrixGenerator, ClusterQuotaApproximatelyMet) {
  const GeneratedMatrix g = generate_matrix(
      {.roles = 1000, .cols = 500, .clustered_fraction = 0.2, .max_cluster_size = 10, .seed = 7});
  const std::size_t planted_roles = g.planted.roles_in_groups();
  // Quota is 200; the planner stops within one cluster of it.
  EXPECT_GE(planted_roles, 190u);
  EXPECT_LE(planted_roles, 200u);
  for (const auto& group : g.planted.groups) {
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), 10u);
  }
}

TEST(MatrixGenerator, PlantedGroupsAreExactlyTheDuplicates) {
  const GeneratedMatrix g = generate_matrix({.roles = 500, .cols = 400, .seed = 13});
  const core::methods::RoleDietGroupFinder finder;
  // ensure_unique_rows makes planted clusters the only identical-row groups.
  EXPECT_EQ(finder.find_same(g.matrix), g.planted);
}

TEST(MatrixGenerator, ZeroClusteredFraction) {
  const GeneratedMatrix g =
      generate_matrix({.roles = 300, .cols = 300, .clustered_fraction = 0.0, .seed = 17});
  EXPECT_TRUE(g.planted.groups.empty());
  const core::methods::RoleDietGroupFinder finder;
  EXPECT_TRUE(finder.find_same(g.matrix).groups.empty());
}

TEST(MatrixGenerator, FullClusteredFraction) {
  const GeneratedMatrix g =
      generate_matrix({.roles = 100, .cols = 200, .clustered_fraction = 1.0, .seed = 19});
  EXPECT_GE(g.planted.roles_in_groups(), 98u);
}

TEST(MatrixGenerator, PerturbedClustersWithinThreshold) {
  const GeneratedMatrix g = generate_matrix({.roles = 400,
                                             .cols = 600,
                                             .min_row_norm = 5,
                                             .max_row_norm = 12,
                                             .perturb_bits = 1,
                                             .seed = 23});
  ASSERT_FALSE(g.planted.groups.empty());
  ASSERT_EQ(g.planted_bases.size(), g.planted.groups.size());
  // Every member is within Hamming distance 1 of its group's base row.
  for (std::size_t i = 0; i < g.planted.groups.size(); ++i) {
    for (std::size_t member : g.planted.groups[i]) {
      EXPECT_LE(g.matrix.row_hamming(g.planted_bases[i], member), 1u);
    }
  }
  // Perturbed members are mostly distinct from the base — a same-set search
  // must find strictly fewer duplicate roles than the planted similar roles.
  const core::methods::RoleDietGroupFinder finder;
  EXPECT_LT(finder.find_same(g.matrix).roles_in_groups(), g.planted.roles_in_groups());
  // A similar search at t = 1 recovers every planted group (each planted
  // group is contained in one detected group).
  const core::RoleGroups detected = finder.find_similar(g.matrix, 1);
  for (const auto& planted_group : g.planted.groups) {
    bool contained = false;
    for (const auto& found : detected.groups) {
      if (std::includes(found.begin(), found.end(), planted_group.begin(),
                        planted_group.end())) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "planted group starting at role " << planted_group.front()
                           << " not recovered";
  }
}

TEST(MatrixGenerator, ZipfNormsAreHeavyTailed) {
  MatrixGenParams params{.roles = 3'000, .cols = 500, .clustered_fraction = 0.0,
                         .min_row_norm = 1, .max_row_norm = 64, .seed = 41};
  // A heavy tail of norm-1 rows cannot all be distinct over 500 columns.
  params.ensure_unique_rows = false;
  params.norm_distribution = NormDistribution::kZipf;
  const GeneratedMatrix zipf = generate_matrix(params);
  params.norm_distribution = NormDistribution::kUniform;
  const GeneratedMatrix uniform = generate_matrix(params);

  auto median_and_max = [](const linalg::CsrMatrix& m) {
    std::vector<std::size_t> norms = m.row_sums();
    std::sort(norms.begin(), norms.end());
    return std::pair{norms[norms.size() / 2], norms.back()};
  };
  const auto [zipf_median, zipf_max] = median_and_max(zipf.matrix);
  const auto [uniform_median, uniform_max] = median_and_max(uniform.matrix);
  // Power law: most rows tiny, but the tail still reaches the cap.
  EXPECT_LE(zipf_median, 3u);
  EXPECT_GE(uniform_median, 20u);
  EXPECT_GE(zipf_max, 32u);
  EXPECT_EQ(uniform_max, 64u);
  // Norms stay within the configured bounds.
  for (std::size_t r = 0; r < zipf.matrix.rows(); ++r) {
    EXPECT_GE(zipf.matrix.row_size(r), 1u);
    EXPECT_LE(zipf.matrix.row_size(r), 64u);
  }
}

TEST(MatrixGenerator, ZipfDetectionStillExact) {
  // min norm 4 over 2,000 columns keeps unique noise rows feasible even
  // with the mass of the distribution at the minimum.
  MatrixGenParams params{.roles = 600, .cols = 2'000, .min_row_norm = 4,
                         .max_row_norm = 32, .seed = 43};
  params.norm_distribution = NormDistribution::kZipf;
  const GeneratedMatrix g = generate_matrix(params);
  const core::methods::RoleDietGroupFinder finder;
  EXPECT_EQ(finder.find_same(g.matrix), g.planted);
}

TEST(MatrixGenerator, ParameterValidation) {
  EXPECT_THROW(generate_matrix({.roles = 0}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.cols = 0}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.min_row_norm = 0}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.min_row_norm = 9, .max_row_norm = 3}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.cols = 10, .max_row_norm = 20}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.clustered_fraction = 1.5}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.clustered_fraction = -0.1}), std::invalid_argument);
  EXPECT_THROW(generate_matrix({.max_cluster_size = 1}), std::invalid_argument);
}

TEST(MatrixGenerator, GroupsInCanonicalForm) {
  const GeneratedMatrix g = generate_matrix({.roles = 400, .cols = 300, .seed = 29});
  core::RoleGroups copy = g.planted;
  copy.normalize();
  EXPECT_EQ(copy, g.planted);
}

TEST(MatrixGenerator, PaperScaleSmokeTest) {
  // The Fig. 3 extreme: 10,000 roles x 1,000 users generates in bounded time.
  const GeneratedMatrix g = generate_matrix({.roles = 10'000, .cols = 1'000, .seed = 31});
  EXPECT_EQ(g.matrix.rows(), 10'000u);
  EXPECT_GE(g.planted.roles_in_groups(), 1'990u);
}

}  // namespace
}  // namespace rolediet::gen
