// Kernel-parity tests for the density-adaptive RowStore backend.
//
// The contract (linalg/row_store.hpp): both backends compute identical
// integer values for every kernel, so any detection method produces
// byte-identical groups and counters whichever backend it runs on. These
// tests exercise every kernel pairwise on random matrices plus the edge
// shapes (empty rows, full rows, word boundaries).
#include <gtest/gtest.h>

#include "gen/matrix_generator.hpp"
#include "linalg/convert.hpp"
#include "linalg/row_store.hpp"
#include "test_helpers.hpp"

namespace rolediet::linalg {
namespace {

using rolediet::testing::csr_from_rows;

/// A sparse/dense pair viewing the same logical matrix.
struct BothBackends {
  CsrMatrix sparse;
  BitMatrix dense;
  RowStore sparse_view;
  RowStore dense_view;

  explicit BothBackends(CsrMatrix m)
      : sparse(std::move(m)), dense(to_dense(sparse)), sparse_view(sparse), dense_view(dense) {}
};

CsrMatrix random_matrix(std::uint64_t seed) {
  gen::MatrixGenParams params;
  params.roles = 60;
  params.cols = 130;  // straddles a word boundary (ceil(130/64) = 3 words)
  params.min_row_norm = 1;
  params.max_row_norm = 20;
  params.seed = seed;
  return gen::generate_matrix(params).matrix;
}

// ----------------------------------------------------------------- parity ---

TEST(RowStoreParity, AllKernelsAgreeOnRandomMatrices) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const BothBackends m(random_matrix(seed));
    const std::size_t n = m.sparse.rows();
    for (std::size_t a = 0; a < n; ++a) {
      EXPECT_EQ(m.sparse_view.row_size(a), m.dense_view.row_size(a));
      EXPECT_EQ(m.sparse_view.row_hash(a), m.dense_view.row_hash(a));
      for (std::size_t b = a; b < n; ++b) {
        EXPECT_EQ(m.sparse_view.hamming(a, b), m.dense_view.hamming(a, b))
            << "rows " << a << "," << b;
        EXPECT_EQ(m.sparse_view.intersection(a, b), m.dense_view.intersection(a, b));
        EXPECT_EQ(m.sparse_view.rows_equal(a, b), m.dense_view.rows_equal(a, b));
      }
    }
  }
}

TEST(RowStoreParity, BoundedHammingValuesAgreeExactly) {
  // The BOUNDED contract (util/bitops.hpp): the exact distance when it is
  // <= limit, and exactly limit + 1 otherwise — on *both* backends, so the
  // raw values (not just the <= limit verdicts) are interchangeable.
  const BothBackends m(random_matrix(7));
  const std::size_t n = m.sparse.rows();
  for (std::size_t limit : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{50}}) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        const std::size_t exact = m.dense_view.hamming(a, b);
        const std::size_t expected = exact <= limit ? exact : limit + 1;
        EXPECT_EQ(m.sparse_view.hamming_bounded(a, b, limit), expected)
            << "sparse, limit " << limit << ", rows " << a << "," << b;
        EXPECT_EQ(m.dense_view.hamming_bounded(a, b, limit), expected)
            << "dense, limit " << limit << ", rows " << a << "," << b;
      }
    }
  }
}

TEST(RowStoreParity, RowHashMatchesCsrDigest) {
  // The backend-invariant digest is defined to be CsrMatrix's fold; the dense
  // path must replay it bit for bit (BitMatrix::row_hash folds words and
  // would differ).
  const BothBackends m(csr_from_rows(130, {{}, {0}, {63, 64}, {0, 64, 129}, {5, 6, 7}}));
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(m.dense_view.row_hash(r), m.sparse.row_hash(r)) << "row " << r;
  }
}

TEST(RowStoreParity, ForEachSetVisitsSameColumnsInOrder) {
  const BothBackends m(csr_from_rows(130, {{0, 63, 64, 127, 128, 129}, {}, {1}}));
  for (std::size_t r = 0; r < 3; ++r) {
    std::vector<std::uint32_t> from_sparse;
    std::vector<std::uint32_t> from_dense;
    m.sparse_view.for_each_set(r, [&](std::uint32_t c) { from_sparse.push_back(c); });
    m.dense_view.for_each_set(r, [&](std::uint32_t c) { from_dense.push_back(c); });
    EXPECT_EQ(from_sparse, from_dense) << "row " << r;
    EXPECT_TRUE(std::is_sorted(from_dense.begin(), from_dense.end()));
  }
}

TEST(RowStoreParity, PackedQueryKernelsAgree) {
  const BothBackends m(random_matrix(11));
  const std::size_t n = m.sparse.rows();
  for (std::size_t q = 0; q < n; q += 7) {
    const auto packed = m.dense.row(q);  // row q as an external packed query
    for (std::size_t b = 0; b < n; ++b) {
      EXPECT_EQ(m.sparse_view.intersection_with_packed(packed, b),
                m.dense_view.intersection_with_packed(packed, b));
      EXPECT_EQ(m.sparse_view.hamming_with_packed(packed, b),
                m.dense_view.hamming_with_packed(packed, b));
      // And both match the in-store kernels when the query is an indexed row.
      EXPECT_EQ(m.dense_view.hamming_with_packed(packed, b), m.dense_view.hamming(q, b));
    }
  }
}

// ------------------------------------------------------------- accounting ---

TEST(RowStore, RowBytesReflectsBackendPayload) {
  const BothBackends m(csr_from_rows(130, {{1, 2, 3}, {}, {0, 129}}));
  // Dense: 3 words of 8 bytes per row regardless of content.
  EXPECT_EQ(m.dense_view.row_bytes(0), 24u);
  EXPECT_EQ(m.dense_view.row_bytes(1), 24u);
  // Sparse: 4 bytes per stored index.
  EXPECT_EQ(m.sparse_view.row_bytes(0), 12u);
  EXPECT_EQ(m.sparse_view.row_bytes(1), 0u);
  EXPECT_EQ(m.sparse_view.row_bytes(2), 8u);
  EXPECT_EQ(m.sparse_view.payload_bytes(), 20u);  // 5 indices
  EXPECT_EQ(m.dense_view.payload_bytes(), 72u);   // 3 rows x 3 words
}

// ---------------------------------------------------------------- selector ---

TEST(ChooseBackend, ExplicitRequestsPassThrough) {
  EXPECT_EQ(choose_backend(RowBackend::kDense, 10, 10, 1), RowBackend::kDense);
  EXPECT_EQ(choose_backend(RowBackend::kSparse, 10, 10, 100), RowBackend::kSparse);
}

TEST(ChooseBackend, AutoPicksByDensityThreshold) {
  // 1000 x 1000 cells: nnz 9'999 is 0.9999% (< 1% -> sparse), 10'000 is
  // exactly the threshold (not below -> dense).
  EXPECT_EQ(choose_backend(RowBackend::kAuto, 1000, 1000, 9'999), RowBackend::kSparse);
  EXPECT_EQ(choose_backend(RowBackend::kAuto, 1000, 1000, 10'000), RowBackend::kDense);
  EXPECT_EQ(choose_backend(RowBackend::kAuto, 10, 10, 50), RowBackend::kDense);
}

TEST(ChooseBackend, EmptyMatrixResolvesSparse) {
  EXPECT_EQ(choose_backend(RowBackend::kAuto, 0, 0, 0), RowBackend::kSparse);
  EXPECT_EQ(choose_backend(RowBackend::kAuto, 5, 0, 0), RowBackend::kSparse);
}

TEST(RowBackendNames, ToString) {
  EXPECT_EQ(to_string(RowBackend::kAuto), "auto");
  EXPECT_EQ(to_string(RowBackend::kDense), "dense");
  EXPECT_EQ(to_string(RowBackend::kSparse), "sparse");
}

// ------------------------------------------------------------- conversions ---

TEST(RowStore, ToCsrRoundTripsEitherBackend) {
  const BothBackends m(csr_from_rows(70, {{1, 2}, {}, {64, 69}}));
  EXPECT_EQ(m.sparse_view.to_csr(), m.sparse);
  EXPECT_EQ(m.dense_view.to_csr(), m.sparse);
  EXPECT_EQ(RowStore{}.to_csr(), CsrMatrix{});
}

TEST(RowStore, ShapeAccessors) {
  const BothBackends m(csr_from_rows(70, {{1}, {2, 3}}));
  for (const RowStore& view : {m.sparse_view, m.dense_view}) {
    EXPECT_EQ(view.rows(), 2u);
    EXPECT_EQ(view.cols(), 70u);
  }
  EXPECT_TRUE(m.sparse_view.is_sparse());
  EXPECT_FALSE(m.dense_view.is_sparse());
  EXPECT_EQ(RowStore{}.rows(), 0u);
  EXPECT_EQ(RowStore{}.cols(), 0u);
}

TEST(CsrMatrix, GatherRowsCopiesSelection) {
  const CsrMatrix m = csr_from_rows(50, {{1, 2}, {3}, {}, {4, 5, 6}});
  const std::vector<std::size_t> selected = {3, 0, 2};
  const CsrMatrix g = CsrMatrix::gather_rows(m, selected);
  ASSERT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 50u);
  EXPECT_EQ(g.nnz(), 5u);
  EXPECT_EQ(std::vector<std::uint32_t>(g.row(0).begin(), g.row(0).end()),
            (std::vector<std::uint32_t>{4, 5, 6}));
  EXPECT_EQ(std::vector<std::uint32_t>(g.row(1).begin(), g.row(1).end()),
            (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(g.row(2).empty());
}

}  // namespace
}  // namespace rolediet::linalg
