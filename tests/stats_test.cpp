// Tests for dataset shape statistics.
#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "gen/org_simulator.hpp"
#include "test_helpers.hpp"

namespace rolediet::core {
namespace {

TEST(DegreeSummary, EmptyInput) {
  const DegreeSummary s = DegreeSummary::from({});
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(DegreeSummary, KnownDistribution) {
  const DegreeSummary s = DegreeSummary::from({0, 3, 1, 2, 4, 0, 10, 5, 6, 7});
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 3.8);
  // Nearest-rank: sorted 0 0 1 2 3 4 5 6 7 10; p50 = ceil(0.5*10)-1 = index 4,
  // p90 = ceil(0.9*10)-1 = index 8 (the 9th value, not the maximum).
  EXPECT_EQ(s.p50, 3u);
  EXPECT_EQ(s.p90, 7u);
  EXPECT_EQ(s.zeros, 2u);
}

TEST(DegreeSummary, NearestRankPinned) {
  // n = 10: p90 is the 9th order statistic, never the max (the old
  // degrees[(9n)/10] indexing picked index 9 here).
  const DegreeSummary ten = DegreeSummary::from({1, 2, 3, 4, 5, 6, 7, 8, 9, 100});
  EXPECT_EQ(ten.p50, 5u);   // ceil(5) - 1 = index 4
  EXPECT_EQ(ten.p90, 9u);   // ceil(9) - 1 = index 8
  // n = 5: p90 = ceil(4.5) - 1 = index 4 (the max, legitimately).
  const DegreeSummary five = DegreeSummary::from({10, 20, 30, 40, 50});
  EXPECT_EQ(five.p50, 30u);  // ceil(2.5) - 1 = index 2
  EXPECT_EQ(five.p90, 50u);
  // n = 2: p50 is the lower of the two under nearest-rank.
  const DegreeSummary two = DegreeSummary::from({3, 9});
  EXPECT_EQ(two.p50, 3u);
  EXPECT_EQ(two.p90, 9u);
}

TEST(DegreeSummary, SingleValue) {
  const DegreeSummary s = DegreeSummary::from({7});
  EXPECT_EQ(s.min, 7u);
  EXPECT_EQ(s.max, 7u);
  EXPECT_EQ(s.p50, 7u);
  EXPECT_EQ(s.zeros, 0u);
}

TEST(DatasetStats, Figure1) {
  const RbacDataset d = rolediet::testing::figure1_dataset();
  const DatasetStats stats = compute_stats(d);
  EXPECT_EQ(stats.users, 4u);
  EXPECT_EQ(stats.roles, 5u);
  EXPECT_EQ(stats.permissions, 6u);
  EXPECT_EQ(stats.user_assignments, 6u);
  EXPECT_EQ(stats.permission_grants, 7u);
  EXPECT_DOUBLE_EQ(stats.ruam_density, 6.0 / 20.0);
  EXPECT_DOUBLE_EQ(stats.rpam_density, 7.0 / 30.0);
  // Users per role: R01..R05 have 1, 2, 0, 2, 1 users.
  EXPECT_EQ(stats.users_per_role.min, 0u);
  EXPECT_EQ(stats.users_per_role.max, 2u);
  EXPECT_DOUBLE_EQ(stats.users_per_role.mean, 1.2);
  EXPECT_EQ(stats.users_per_role.zeros, 1u);  // R03
  // P01 is granted to no role.
  EXPECT_EQ(stats.roles_per_permission.zeros, 1u);
}

TEST(DatasetStats, EmptyDataset) {
  const DatasetStats stats = compute_stats(RbacDataset{});
  EXPECT_EQ(stats.roles, 0u);
  EXPECT_EQ(stats.ruam_density, 0.0);
  EXPECT_FALSE(stats.to_text().empty());
}

TEST(DatasetStats, TextRendering) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  const std::string text = compute_stats(org.dataset).to_text();
  EXPECT_NE(text.find("dataset statistics:"), std::string::npos);
  EXPECT_NE(text.find("users/role"), std::string::npos);
  EXPECT_NE(text.find("density: RUAM"), std::string::npos);
  EXPECT_NE(text.find("memory: full adjacency"), std::string::npos);
}

TEST(DatasetStats, OrgShapeIsSane) {
  const gen::OrgDataset org = gen::generate_org(gen::OrgProfile::small());
  const DatasetStats stats = compute_stats(org.dataset);
  // Healthy roles carry 4..12 users; one-sided roles carry none.
  EXPECT_GE(stats.users_per_role.max, 4u);
  EXPECT_GT(stats.users_per_role.zeros, 0u);
  // Standalone permissions dominate the zero column counts.
  EXPECT_GE(stats.roles_per_permission.zeros, 1800u);
  // Sparse representation wins by a large margin at org shape.
  EXPECT_LT(stats.footprint.sparse_bytes, stats.footprint.sub_matrices_bytes);
}

}  // namespace
}  // namespace rolediet::core
