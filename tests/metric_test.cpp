// Tests for the distance metrics shared by all detection methods.
#include <gtest/gtest.h>

#include "cluster/metric.hpp"
#include "linalg/bit_matrix.hpp"

namespace rolediet::cluster {
namespace {

linalg::BitMatrix rows(std::size_t cols, const std::vector<std::vector<std::size_t>>& sets) {
  linalg::BitMatrix m(sets.size(), cols);
  for (std::size_t r = 0; r < sets.size(); ++r) {
    for (std::size_t c : sets[r]) m.set(r, c);
  }
  return m;
}

TEST(Metric, HammingAndManhattanCoincideOnBinary) {
  const auto m = rows(100, {{1, 2, 3}, {2, 3, 4, 5}});
  EXPECT_EQ(distance(MetricKind::kHamming, m.row(0), m.row(1)),
            distance(MetricKind::kManhattan, m.row(0), m.row(1)));
  EXPECT_EQ(distance(MetricKind::kHamming, m.row(0), m.row(1)), 3u);
}

TEST(Metric, JaccardScaledRange) {
  const auto m = rows(100, {{1, 2}, {1, 2}, {50, 51}, {}});
  // Identical sets -> 0.
  EXPECT_EQ(jaccard_scaled(m.row(0), m.row(1)), 0u);
  // Disjoint non-empty sets -> the full scale.
  EXPECT_EQ(jaccard_scaled(m.row(0), m.row(2)), kJaccardScale);
  // Two empty sets are identical -> 0.
  EXPECT_EQ(jaccard_scaled(m.row(3), m.row(3)), 0u);
  // Empty vs non-empty -> disjoint -> full scale.
  EXPECT_EQ(jaccard_scaled(m.row(3), m.row(0)), kJaccardScale);
}

TEST(Metric, JaccardScaledKnownValues) {
  const auto m = rows(100, {{1, 2, 3}, {2, 3, 4}});
  // intersection 2, union 4 -> dissimilarity 0.5.
  EXPECT_EQ(jaccard_scaled(m.row(0), m.row(1)), 500'000u);
}

TEST(Metric, CountFormulaMatchesDenseKernel) {
  const auto m = rows(200, {{1, 2, 3, 64, 65}, {2, 3, 64, 150}});
  const std::size_t g = 3;  // {2, 3, 64}
  EXPECT_EQ(jaccard_scaled(m.row(0), m.row(1)), jaccard_scaled_from_counts(5, 4, g));
}

TEST(Metric, JaccardZeroOnlyForIdenticalSets) {
  // Integer division must not round a near-identical large pair down to 0.
  const std::size_t big = 3'000'000;
  EXPECT_GT(jaccard_scaled_from_counts(big, big - 1, big - 1), 0u);
  EXPECT_EQ(jaccard_scaled_from_counts(big, big, big), 0u);
}

TEST(Metric, DispatchCoversAllKinds) {
  const auto m = rows(64, {{0, 1}, {1, 2}});
  EXPECT_EQ(distance(MetricKind::kHamming, m.row(0), m.row(1)), 2u);
  EXPECT_EQ(distance(MetricKind::kManhattan, m.row(0), m.row(1)), 2u);
  // intersection 1, union 3 -> 1 - 1/3 scaled with integer division.
  EXPECT_EQ(distance(MetricKind::kJaccard, m.row(0), m.row(1)),
            kJaccardScale - kJaccardScale / 3);
}

}  // namespace
}  // namespace rolediet::cluster
