// Durable audit engine: crash-safe snapshot + WAL store.
//
// EngineStore is the facade over snapshot.hpp and wal.hpp that gives
// core::AuditEngine the durability the in-memory engine lacks: every
// mutation batch is written to the WAL *before* it reaches the engine, and
// checkpoint() periodically collapses the log into an atomic snapshot. A
// store directory holds only two kinds of files —
//
//   snap-<N>.rdsnap   engine image with WAL records [0, N) applied
//   wal-<S>.log       mutation records [S, next segment's start)
//
// — and open() reconstructs the exact pre-crash engine from them:
//
//   1. pick the newest snapshot that reads and validates end-to-end (a
//      corrupt newest snapshot falls back to the previous one — retention
//      keeps two, plus every WAL segment the older one still needs);
//   2. build an AuditEngine from its dataset and restore the persistent
//      state (counters, dirty frontier, pair caches; caches are dropped when
//      the requested audit options' fingerprint differs);
//   3. replay WAL records >= N through AuditEngine::apply(), verifying
//      segment contiguity. A torn final record (crash mid-append) is
//      truncated away; a torn-header final segment (crash mid-creation)
//      is deleted; the same damage anywhere but the log tail is corruption
//      and fails the open.
//
// The recovered engine is then bit-for-bit the engine a clean process would
// have after applying the same committed prefix — the fault-injection suite
// (tests/store_fault_injection_test.cpp) asserts reaudit() byte-identity at
// every truncation point.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace rolediet::store {

class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct StoreOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryBatch;
  /// Rotation threshold for WAL segments.
  std::size_t wal_segment_bytes = 4u << 20;
  /// Snapshots retained by checkpoint(); >= 2 keeps a fallback for a corrupt
  /// newest snapshot. Values below 1 are treated as 1.
  std::size_t keep_snapshots = 2;
};

/// What open() had to do to bring the store back — surfaced so callers (the
/// CLI `recover` command, tests) can report and assert on it.
struct RecoveryInfo {
  std::filesystem::path snapshot_path;  ///< snapshot the engine was built from
  std::uint64_t snapshot_records = 0;   ///< WAL records baked into it
  std::uint64_t replayed_records = 0;   ///< WAL records replayed on top
  std::uint64_t total_records = 0;      ///< committed records after recovery
  std::uint64_t truncated_bytes = 0;    ///< torn-tail bytes discarded
  bool dropped_torn_segment = false;    ///< torn-header final segment deleted
  bool used_fallback_snapshot = false;  ///< newest snapshot was invalid
  bool caches_dropped = false;          ///< option fingerprint mismatch
};

class EngineStore {
 public:
  /// Initializes `dir` (created if missing, must not already hold a store)
  /// with the dataset's baseline snapshot at record 0 and an empty first WAL
  /// segment. Throws StoreError on an existing store or I/O failure.
  [[nodiscard]] static EngineStore create(const std::filesystem::path& dir,
                                          const core::RbacDataset& dataset,
                                          const core::AuditOptions& options,
                                          StoreOptions store_options = {});

  /// Recovers the engine from `dir` (see file comment for the algorithm)
  /// and reopens the WAL for appending. Throws StoreError when no valid
  /// snapshot exists or the surviving log is inconsistent (gaps, damage
  /// before the tail).
  [[nodiscard]] static EngineStore open(const std::filesystem::path& dir,
                                        const core::AuditOptions& options,
                                        StoreOptions store_options = {});

  EngineStore(EngineStore&&) = default;
  EngineStore& operator=(EngineStore&&) = delete;  // wal dir is part of identity
  EngineStore(const EngineStore&) = delete;
  EngineStore& operator=(const EngineStore&) = delete;

  /// Durably logs the batch, then applies it to the engine. The WAL-first
  /// order is the crash-safety invariant: a mutation the engine has seen is
  /// always in the log (under FsyncPolicy::kNone the OS may still lose the
  /// tail — then recovery yields the surviving prefix).
  void apply(const core::RbacDelta& delta);

  /// Full audit of the live engine with version publication enabled: the
  /// completed reaudit() publishes an immutable core::EngineVersion readers
  /// can pin concurrently (engine().published()), and the store remembers the
  /// WAL position the version corresponds to — the position checkpoint()
  /// snapshots from. Single-writer like every other mutation entry point.
  core::AuditReport reaudit();

  /// Writes an atomic snapshot, rotates the log, and prunes snapshots /
  /// segments no retained snapshot needs. Returns the snapshot path. On
  /// failure the store is still readable from the previous snapshot (nothing
  /// is pruned before the new snapshot is durable).
  ///
  /// Once reaudit() has published a version, the snapshot is captured from
  /// that *published* version at its publish-time WAL position — never from
  /// the live engine. That keeps checkpointing correct while a delta batch
  /// is in flight on the writer: capturing the live engine at the current
  /// WAL position would bake a half-applied batch into an image that claims
  /// the full log prefix, and recovery would resurrect the torn state. The
  /// WAL tail past the published position is replayed by open() as usual.
  /// Before any reaudit() (no version yet) the snapshot captures the live
  /// engine at the current position — the single-threaded bootstrap path.
  std::filesystem::path checkpoint();

  /// The live engine. Mutating it directly bypasses the WAL — use apply()
  /// for anything that must survive a crash; reaudit() and reads are fine.
  [[nodiscard]] core::AuditEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const core::AuditEngine& engine() const noexcept { return *engine_; }

  /// Committed WAL records so far.
  [[nodiscard]] std::uint64_t records() const noexcept { return wal_.next_record(); }

  /// WAL position of the last published version (what checkpoint() uses once
  /// a version exists); 0 before the first reaudit().
  [[nodiscard]] std::uint64_t published_records() const noexcept { return published_records_; }

  [[nodiscard]] const RecoveryInfo& recovery() const noexcept { return recovery_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  EngineStore(std::filesystem::path dir, StoreOptions store_options);

  std::filesystem::path dir_;
  StoreOptions store_options_;
  std::unique_ptr<core::AuditEngine> engine_;  // heap-held: stable address across store moves
  Wal wal_;
  RecoveryInfo recovery_;
  std::uint64_t published_records_ = 0;  ///< WAL position of engine().published()
};

}  // namespace rolediet::store
