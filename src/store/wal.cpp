#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <system_error>
#include <utility>

#include "core/version.hpp"
#include "io/journal.hpp"
#include "util/crc32.hpp"

namespace rolediet::store {

namespace fs = std::filesystem;

namespace {

constexpr std::array<char, 8> kWalMagic{'R', 'D', 'W', 'A', 'L', '1', '\n', '\0'};
constexpr std::size_t kHeaderBytes = kWalMagic.size() + 4 + 8;
/// A frame length beyond this is treated as tail corruption, not a record: a
/// single journal CSV record is a few names, never megabytes.
constexpr std::uint32_t kMaxRecordBytes = 1u << 24;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[noreturn]] void throw_errno(const std::string& what, const fs::path& file) {
  throw WalError(what + " " + file.string() + ": " + std::strerror(errno));
}

void fsync_fd(int fd, const fs::path& file) {
  if (::fsync(fd) != 0) throw_errno("wal: fsync failed for", file);
}

/// Makes a just-created/renamed/deleted directory entry durable. Best effort:
/// some filesystems refuse fsync on directories, which is not worth failing
/// the append for.
void fsync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void write_fully(int fd, const char* data, std::size_t size, const fs::path& file) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("wal: write failed for", file);
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string_view to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kEveryRecord: return "every-record";
    case FsyncPolicy::kEveryBatch: return "every-batch";
    case FsyncPolicy::kNone: return "none";
  }
  return "unknown";
}

std::string wal_segment_name(std::uint64_t start_record) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(start_record));
  return buf;
}

std::optional<std::uint64_t> wal_segment_start(const fs::path& file) {
  const std::string name = file.filename().string();
  // wal- + 20 digits + .log
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 || name.substr(24) != ".log")
    return std::nullopt;
  std::uint64_t start = 0;
  for (std::size_t i = 4; i < 24; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    start = start * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return start;
}

std::vector<fs::path> list_wal_segments(const fs::path& dir) {
  std::vector<fs::path> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (wal_segment_start(entry.path())) segments.push_back(entry.path());
  }
  if (ec) throw WalError("wal: cannot list directory " + dir.string() + ": " + ec.message());
  std::sort(segments.begin(), segments.end(),
            [](const fs::path& a, const fs::path& b) {
              return *wal_segment_start(a) < *wal_segment_start(b);
            });
  return segments;
}

// ---- WalSegmentReader ----

WalSegmentReader::WalSegmentReader(const fs::path& file)
    : in_(file, std::ios::binary), file_(file) {
  if (!in_.is_open()) throw WalError("wal: cannot open segment " + file.string());
  std::array<unsigned char, kHeaderBytes> header{};
  in_.read(reinterpret_cast<char*>(header.data()), static_cast<std::streamsize>(header.size()));
  if (in_.gcount() != static_cast<std::streamsize>(header.size())) {
    throw WalTornHeader("wal: torn segment header in " + file.string() + " (" +
                        std::to_string(in_.gcount()) + " of " + std::to_string(kHeaderBytes) +
                        " bytes)");
  }
  if (std::memcmp(header.data(), kWalMagic.data(), kWalMagic.size()) != 0)
    throw WalError("wal: bad magic in " + file.string());
  const std::uint32_t format = get_u32(header.data() + kWalMagic.size());
  if (format != core::kWalFormatVersion) {
    throw WalError("wal: segment " + file.string() + " has format version " +
                   std::to_string(format) + "; this build reads version " +
                   std::to_string(core::kWalFormatVersion));
  }
  start_record_ = get_u64(header.data() + kWalMagic.size() + 4);
  const auto named = wal_segment_start(file);
  if (named && *named != start_record_) {
    throw WalError("wal: segment " + file.string() + " header claims start record " +
                   std::to_string(start_record_));
  }
  good_offset_ = kHeaderBytes;
}

bool WalSegmentReader::next(std::string& payload) {
  std::array<unsigned char, 8> frame{};
  in_.read(reinterpret_cast<char*>(frame.data()), static_cast<std::streamsize>(frame.size()));
  const auto got = in_.gcount();
  if (got == 0 && in_.eof()) return false;  // clean end: exactly at a boundary
  if (got != static_cast<std::streamsize>(frame.size())) {
    throw WalTornTail("wal: torn frame header at offset " + std::to_string(good_offset_) +
                      " in " + file_.string());
  }
  const std::uint32_t length = get_u32(frame.data());
  const std::uint32_t crc = get_u32(frame.data() + 4);
  if (length > kMaxRecordBytes) {
    throw WalTornTail("wal: implausible record length " + std::to_string(length) +
                      " at offset " + std::to_string(good_offset_) + " in " + file_.string());
  }
  payload.resize(length);
  in_.read(payload.data(), static_cast<std::streamsize>(length));
  if (in_.gcount() != static_cast<std::streamsize>(length)) {
    throw WalTornTail("wal: torn record payload at offset " + std::to_string(good_offset_) +
                      " in " + file_.string());
  }
  if (util::crc32(payload.data(), payload.size()) != crc) {
    throw WalTornTail("wal: CRC mismatch at offset " + std::to_string(good_offset_) + " in " +
                      file_.string());
  }
  good_offset_ += 8 + length;
  ++count_;
  return true;
}

// ---- Wal ----

Wal::Wal(fs::path dir, FsyncPolicy policy, std::size_t segment_bytes)
    : dir_(std::move(dir)), policy_(policy), segment_bytes_(segment_bytes) {
  if (segment_bytes_ < kHeaderBytes + 16)
    throw WalError("wal: segment_bytes too small to hold any record");
}

Wal::~Wal() { close_active(); }

Wal::Wal(Wal&& other) noexcept
    : dir_(std::move(other.dir_)),
      policy_(other.policy_),
      segment_bytes_(other.segment_bytes_),
      fd_(std::exchange(other.fd_, -1)),
      active_path_(std::move(other.active_path_)),
      active_bytes_(other.active_bytes_),
      next_record_(other.next_record_) {}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    close_active();
    dir_ = std::move(other.dir_);
    policy_ = other.policy_;
    segment_bytes_ = other.segment_bytes_;
    fd_ = std::exchange(other.fd_, -1);
    active_path_ = std::move(other.active_path_);
    active_bytes_ = other.active_bytes_;
    next_record_ = other.next_record_;
  }
  return *this;
}

void Wal::close_active() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Wal::open_segment(std::uint64_t start_record) {
  close_active();
  active_path_ = dir_ / wal_segment_name(start_record);
  fd_ = ::open(active_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_errno("wal: cannot create segment", active_path_);
  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kWalMagic.data(), kWalMagic.size());
  put_u32(header, core::kWalFormatVersion);
  put_u64(header, start_record);
  write_fully(fd_, header.data(), header.size(), active_path_);
  active_bytes_ = header.size();
  if (policy_ != FsyncPolicy::kNone) {
    fsync_fd(fd_, active_path_);
    fsync_dir(dir_);
  }
}

void Wal::start(std::uint64_t next_record, const std::optional<fs::path>& resume,
                std::uint64_t resume_offset) {
  next_record_ = next_record;
  if (resume) {
    close_active();
    // Recovery already truncated the file to the last good boundary; reopen
    // for appending at exactly that offset.
    active_path_ = *resume;
    fd_ = ::open(active_path_.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) throw_errno("wal: cannot reopen segment", active_path_);
    active_bytes_ = resume_offset;
    return;
  }
  open_segment(next_record);
}

void Wal::append_payload(const std::string& payload, bool sync_now) {
  if (fd_ < 0) throw WalError("wal: append before start()");
  if (active_bytes_ >= segment_bytes_) open_segment(next_record_);
  std::string frame;
  frame.reserve(8 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, util::crc32(payload.data(), payload.size()));
  frame.append(payload);
  write_fully(fd_, frame.data(), frame.size(), active_path_);
  active_bytes_ += frame.size();
  ++next_record_;
  if (sync_now) fsync_fd(fd_, active_path_);
}

void Wal::append(const core::Mutation& mutation) {
  append_payload(io::format_journal_record(mutation), policy_ != FsyncPolicy::kNone);
}

void Wal::append_batch(const core::RbacDelta& delta) {
  for (const core::Mutation& mutation : delta.mutations)
    append_payload(io::format_journal_record(mutation), policy_ == FsyncPolicy::kEveryRecord);
  if (policy_ == FsyncPolicy::kEveryBatch && !delta.empty()) sync();
}

void Wal::append_raw(const std::string& payload) {
  append_payload(payload, policy_ != FsyncPolicy::kNone);
}

void Wal::append_raw_batch(std::span<const std::string> payloads) {
  for (const std::string& payload : payloads)
    append_payload(payload, policy_ == FsyncPolicy::kEveryRecord);
  if (policy_ == FsyncPolicy::kEveryBatch && !payloads.empty()) sync();
}

void Wal::sync() {
  if (fd_ >= 0) fsync_fd(fd_, active_path_);
}

void Wal::rotate() {
  if (fd_ >= 0 && policy_ != FsyncPolicy::kNone) fsync_fd(fd_, active_path_);
  open_segment(next_record_);
}

void Wal::prune_below(std::uint64_t record) {
  const std::vector<fs::path> segments = list_wal_segments(dir_);
  bool removed = false;
  for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i covers [start_i, start_{i+1}); prunable only when that whole
    // range is below the snapshot's record count.
    if (*wal_segment_start(segments[i + 1]) > record) break;
    if (segments[i] == active_path_) break;
    std::error_code ec;
    fs::remove(segments[i], ec);
    if (ec)
      throw WalError("wal: cannot prune segment " + segments[i].string() + ": " + ec.message());
    removed = true;
  }
  if (removed && policy_ != FsyncPolicy::kNone) fsync_dir(dir_);
}

}  // namespace rolediet::store
