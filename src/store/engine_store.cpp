#include "store/engine_store.hpp"

#include <algorithm>
#include <string>
#include <system_error>
#include <utility>

#include "io/csv.hpp"
#include "io/journal.hpp"

namespace rolediet::store {

namespace fs = std::filesystem;

EngineStore::EngineStore(fs::path dir, StoreOptions store_options)
    : dir_(std::move(dir)),
      store_options_(store_options),
      wal_(dir_, store_options.fsync, store_options.wal_segment_bytes) {}

EngineStore EngineStore::create(const fs::path& dir, const core::RbacDataset& dataset,
                                const core::AuditOptions& options, StoreOptions store_options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw StoreError("store: cannot create directory " + dir.string() + ": " + ec.message());
  if (!list_snapshots(dir).empty() || !list_wal_segments(dir).empty())
    throw StoreError("store: " + dir.string() + " already holds a store");

  EngineStore store(dir, store_options);
  store.engine_ = std::make_unique<core::AuditEngine>(dataset, options);
  store.recovery_.snapshot_path = SnapshotWriter(dir).write(capture_snapshot(*store.engine_, 0));
  store.wal_.start(0, std::nullopt, 0);
  return store;
}

EngineStore EngineStore::open(const fs::path& dir, const core::AuditOptions& options,
                              StoreOptions store_options) {
  if (!fs::is_directory(dir)) throw StoreError("store: no such directory " + dir.string());
  EngineStore store(dir, store_options);

  // 1. Newest snapshot that validates end to end.
  const std::vector<fs::path> snaps = list_snapshots(dir);
  if (snaps.empty()) throw StoreError("store: no snapshot in " + dir.string());
  std::optional<EngineSnapshot> snap;
  bool newest_failed = false;
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    try {
      snap = SnapshotReader(*it).read();
      store.recovery_.snapshot_path = *it;
      break;
    } catch (const std::exception&) {
      newest_failed = true;  // fall back to the previous snapshot
    }
  }
  if (!snap) throw StoreError("store: no readable snapshot in " + dir.string());
  store.recovery_.used_fallback_snapshot = newest_failed;
  store.recovery_.snapshot_records = snap->wal_records;
  const std::uint64_t n0 = snap->wal_records;

  // 2. Engine from the snapshot dataset + restored persistent state. A
  // different option fingerprint silently invalidates the cached verdicts
  // (they answer a different question) but keeps the dirty frontier.
  store.engine_ = std::make_unique<core::AuditEngine>(snap->dataset, options);
  core::EnginePersistentState state = std::move(snap->engine);
  if (!(OptionFingerprint::of(options) == snap->fingerprint)) {
    state.users.similar_valid = false;
    state.users.similar_pairs.clear();
    state.perms.similar_valid = false;
    state.perms.similar_pairs.clear();
    store.recovery_.caches_dropped = true;
  }
  try {
    store.engine_->restore_persistent_state(std::move(state));
  } catch (const std::invalid_argument& e) {
    throw StoreError("store: snapshot state does not fit its dataset: " + std::string(e.what()));
  }

  // 3. Scan the WAL in segment order, replaying records >= n0. Damage is
  // only survivable at the very tail of the log.
  const std::vector<fs::path> segments = list_wal_segments(dir);
  core::RbacDelta replay;
  std::optional<std::uint64_t> expected;
  std::optional<fs::path> resume;
  std::uint64_t resume_offset = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = i + 1 == segments.size();
    std::unique_ptr<WalSegmentReader> reader;
    try {
      reader = std::make_unique<WalSegmentReader>(segments[i]);
    } catch (const WalTornHeader& e) {
      if (!last) throw StoreError("store: WAL damage before the log tail: " + std::string(e.what()));
      // Crash during segment creation: the segment holds nothing committed.
      std::error_code ec;
      fs::remove(segments[i], ec);
      if (ec)
        throw StoreError("store: cannot drop torn segment " + segments[i].string() + ": " +
                         ec.message());
      store.recovery_.dropped_torn_segment = true;
      break;
    } catch (const WalError& e) {
      throw StoreError("store: " + std::string(e.what()));
    }

    if (expected && reader->start_record() != *expected) {
      throw StoreError("store: WAL gap: segment " + segments[i].string() +
                       " starts at record " + std::to_string(reader->start_record()) +
                       ", expected " + std::to_string(*expected));
    }
    if (!expected && reader->start_record() > n0) {
      throw StoreError("store: WAL is missing records " + std::to_string(n0) + ".." +
                       std::to_string(reader->start_record()) + " needed by snapshot " +
                       store.recovery_.snapshot_path.string());
    }

    std::string payload;
    while (true) {
      try {
        if (!reader->next(payload)) break;
      } catch (const WalTornTail& e) {
        if (!last)
          throw StoreError("store: WAL damage before the log tail: " + std::string(e.what()));
        // Crash mid-append: discard the torn bytes so the next append
        // continues from the last committed record boundary.
        std::error_code ec;
        const std::uintmax_t size = fs::file_size(segments[i], ec);
        if (!ec) fs::resize_file(segments[i], reader->offset(), ec);
        if (ec)
          throw StoreError("store: cannot truncate torn tail of " + segments[i].string() + ": " +
                           ec.message());
        store.recovery_.truncated_bytes = size - reader->offset();
        break;
      }
      if (reader->record_index() - 1 >= n0) {
        try {
          replay.mutations.push_back(io::parse_journal_record(payload));
        } catch (const io::CsvError& e) {
          // CRC-valid but unparseable payload: not a torn write, real damage.
          throw StoreError("store: corrupt WAL record " +
                           std::to_string(reader->record_index() - 1) + ": " +
                           std::string(e.what()));
        }
      }
    }
    expected = reader->record_index();
    resume = segments[i];
    resume_offset = reader->offset();
  }

  const std::uint64_t log_end = expected.value_or(n0);
  // Under FsyncPolicy::kNone the snapshot can be ahead of the surviving log;
  // the snapshot is authoritative (its records were applied by definition).
  const std::uint64_t total = std::max(n0, log_end);
  if (!replay.empty()) store.engine_->apply(replay);
  store.recovery_.replayed_records = replay.size();
  store.recovery_.total_records = total;

  // 4. Reopen for appending: continue the last surviving segment when it
  // ends exactly at the committed record count, else start a fresh one.
  if (resume && log_end == total) {
    store.wal_.start(total, resume, resume_offset);
  } else {
    store.wal_.start(total, std::nullopt, 0);
  }
  return store;
}

void EngineStore::apply(const core::RbacDelta& delta) {
  wal_.append_batch(delta);
  engine_->apply(delta);
}

core::AuditReport EngineStore::reaudit() {
  engine_->set_publish_versions(true);
  // Snapshot the position first: the version about to be published reflects
  // exactly the records applied so far (single writer, nothing lands during
  // the reaudit itself).
  const std::uint64_t records = wal_.next_record();
  core::AuditReport report = engine_->reaudit();
  published_records_ = records;
  return report;
}

fs::path EngineStore::checkpoint() {
  // Make sure everything the snapshot will claim as "in the log" is durable
  // before the snapshot that supersedes older segments exists.
  wal_.sync();
  const std::shared_ptr<const core::EngineVersion> version = engine_->published();
  const std::uint64_t records = version ? published_records_ : wal_.next_record();
  fs::path path;
  try {
    path = SnapshotWriter(dir_).write(version
                                          ? capture_snapshot(*version, engine_->options(), records)
                                          : capture_snapshot(*engine_, records));
  } catch (const SnapshotError& e) {
    throw StoreError("store: checkpoint failed: " + std::string(e.what()));
  }
  wal_.rotate();

  // Retention: keep the newest keep_snapshots snapshots and every WAL
  // segment the oldest kept one still needs for replay.
  const std::vector<fs::path> snaps = list_snapshots(dir_);
  const std::size_t keep = std::max<std::size_t>(1, store_options_.keep_snapshots);
  const std::size_t drop = snaps.size() > keep ? snaps.size() - keep : 0;
  for (std::size_t i = 0; i < drop; ++i) {
    std::error_code ec;
    fs::remove(snaps[i], ec);
    if (ec)
      throw StoreError("store: cannot prune snapshot " + snaps[i].string() + ": " + ec.message());
  }
  wal_.prune_below(*snapshot_records(snaps[drop]));
  return path;
}

}  // namespace rolediet::store
