#include "store/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <system_error>

#include "core/version.hpp"
#include "io/binary.hpp"

namespace rolediet::store {

namespace fs = std::filesystem;

namespace {

constexpr std::array<char, 8> kSnapMagic{'R', 'D', 'S', 'N', 'A', 'P', '1', '\0'};
/// Caps u64-prefixed list sizes read from disk before allocation; a snapshot
/// claiming more dirty flags or cached pairs than this is corrupt, not big.
constexpr std::uint64_t kSaneListLimit = 1ULL << 32;

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void write_axis(io::BinaryWriter& w, const core::EnginePersistentState::AxisState& axis) {
  w.u64(axis.dirty.size());
  if (!axis.dirty.empty()) w.payload(axis.dirty.data(), axis.dirty.size());
  w.u8(axis.similar_valid ? 1 : 0);
  if (axis.similar_valid) {
    w.u64(axis.similar_pairs.size());
    for (const auto& [a, b] : axis.similar_pairs) {
      w.u32(a);
      w.u32(b);
    }
  }
}

core::EnginePersistentState::AxisState read_axis(io::BinaryReader& r, const fs::path& file) {
  core::EnginePersistentState::AxisState axis;
  const std::uint64_t dirty_size = r.u64();
  if (dirty_size > kSaneListLimit)
    throw SnapshotError("snapshot: implausible dirty-flag count in " + file.string());
  axis.dirty.resize(dirty_size);
  if (dirty_size > 0) r.payload(axis.dirty.data(), dirty_size);
  axis.similar_valid = r.u8() != 0;
  if (axis.similar_valid) {
    const std::uint64_t pair_count = r.u64();
    if (pair_count > kSaneListLimit)
      throw SnapshotError("snapshot: implausible pair-cache size in " + file.string());
    axis.similar_pairs.reserve(pair_count);
    for (std::uint64_t i = 0; i < pair_count; ++i) {
      const std::uint32_t a = r.u32();
      const std::uint32_t b = r.u32();
      axis.similar_pairs.emplace_back(a, b);
    }
  }
  return axis;
}

/// Best-effort durability for a directory entry (create/rename/remove).
void fsync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void fsync_file(const fs::path& file) {
  const int fd = ::open(file.c_str(), O_RDONLY);
  if (fd < 0)
    throw SnapshotError("snapshot: cannot reopen " + file.string() + " for fsync: " +
                        std::strerror(errno));
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    throw SnapshotError("snapshot: fsync failed for " + file.string() + ": " +
                        std::strerror(errno));
}

}  // namespace

OptionFingerprint OptionFingerprint::of(const core::AuditOptions& options) {
  OptionFingerprint fp;
  fp.method = options.method;
  fp.detect_similar = options.detect_similar;
  fp.similarity_mode = options.similarity_mode;
  fp.similarity_threshold = options.similarity_threshold;
  fp.jaccard_dissimilarity = options.jaccard_dissimilarity;
  return fp;
}

EngineSnapshot capture_snapshot(const core::AuditEngine& engine, std::uint64_t wal_records) {
  EngineSnapshot snapshot;
  snapshot.wal_records = wal_records;
  snapshot.fingerprint = OptionFingerprint::of(engine.options());
  snapshot.dataset = engine.snapshot();
  snapshot.engine = engine.persistent_state();
  return snapshot;
}

EngineSnapshot capture_snapshot(const core::EngineVersion& version,
                                const core::AuditOptions& options, std::uint64_t wal_records) {
  EngineSnapshot snapshot;
  snapshot.wal_records = wal_records;
  snapshot.fingerprint = OptionFingerprint::of(options);
  snapshot.dataset = *version.dataset;
  snapshot.engine = version.state;
  return snapshot;
}

std::string snapshot_name(std::uint64_t wal_records) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snap-%020llu.rdsnap",
                static_cast<unsigned long long>(wal_records));
  return buf;
}

std::optional<std::uint64_t> snapshot_records(const fs::path& file) {
  const std::string name = file.filename().string();
  // snap- + 20 digits + .rdsnap
  if (name.size() != 32 || name.rfind("snap-", 0) != 0 || name.substr(25) != ".rdsnap")
    return std::nullopt;
  std::uint64_t records = 0;
  for (std::size_t i = 5; i < 25; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    records = records * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return records;
}

std::vector<fs::path> list_snapshots(const fs::path& dir) {
  std::vector<fs::path> snapshots;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (snapshot_records(entry.path())) snapshots.push_back(entry.path());
  }
  if (ec)
    throw SnapshotError("snapshot: cannot list directory " + dir.string() + ": " + ec.message());
  std::sort(snapshots.begin(), snapshots.end(),
            [](const fs::path& a, const fs::path& b) {
              return *snapshot_records(a) < *snapshot_records(b);
            });
  return snapshots;
}

fs::path SnapshotWriter::write(const EngineSnapshot& snapshot) const {
  const fs::path final_path = dir_ / snapshot_name(snapshot.wal_records);
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError("snapshot: cannot create " + tmp_path.string());
    io::BinaryWriter w(out);
    w.raw(kSnapMagic.data(), kSnapMagic.size());
    w.u32(core::kSnapshotFormatVersion);
    w.u64(snapshot.wal_records);

    const OptionFingerprint& fp = snapshot.fingerprint;
    w.u8(static_cast<std::uint8_t>(fp.method));
    w.u8(fp.detect_similar ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(fp.similarity_mode));
    w.u64(fp.similarity_threshold);
    w.u64(double_bits(fp.jaccard_dissimilarity));

    io::write_dataset_body(w, snapshot.dataset);

    w.u64(snapshot.engine.version);
    w.u64(snapshot.engine.audits);
    w.u8(snapshot.engine.audited_once ? 1 : 0);
    write_axis(w, snapshot.engine.users);
    write_axis(w, snapshot.engine.perms);

    try {
      w.finish();
    } catch (const io::BinaryError& e) {
      throw SnapshotError("snapshot: write failed for " + tmp_path.string() + ": " + e.what());
    }
  }
  // Durability order matters: the bytes must be stable before the rename
  // makes them visible under the real name, and the rename itself must be
  // stable before the caller prunes anything the new snapshot supersedes.
  fsync_file(tmp_path);
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw SnapshotError("snapshot: cannot rename " + tmp_path.string() + " into place");
  }
  fsync_dir(dir_);
  return final_path;
}

EngineSnapshot SnapshotReader::read() const {
  std::ifstream in(file_, std::ios::binary);
  if (!in) throw SnapshotError("snapshot: cannot open " + file_.string());
  io::BinaryReader r(in);

  std::array<char, 8> magic{};
  try {
    r.raw(magic.data(), magic.size());
  } catch (const io::BinaryError&) {
    throw SnapshotError("snapshot: truncated magic in " + file_.string());
  }
  if (std::memcmp(magic.data(), kSnapMagic.data(), kSnapMagic.size()) != 0)
    throw SnapshotError("snapshot: bad magic in " + file_.string());
  const std::uint32_t format = r.u32();
  if (format != core::kSnapshotFormatVersion) {
    throw SnapshotError("snapshot: " + file_.string() + " has format version " +
                        std::to_string(format) + "; this build reads version " +
                        std::to_string(core::kSnapshotFormatVersion));
  }

  EngineSnapshot snapshot;
  snapshot.wal_records = r.u64();
  const auto named = snapshot_records(file_);
  if (named && *named != snapshot.wal_records)
    throw SnapshotError("snapshot: " + file_.string() + " header claims record count " +
                        std::to_string(snapshot.wal_records));

  OptionFingerprint& fp = snapshot.fingerprint;
  fp.method = static_cast<core::Method>(r.u8());
  fp.detect_similar = r.u8() != 0;
  fp.similarity_mode = static_cast<core::SimilarityMode>(r.u8());
  fp.similarity_threshold = r.u64();
  fp.jaccard_dissimilarity = bits_double(r.u64());

  snapshot.dataset = io::read_dataset_body(r);

  snapshot.engine.version = r.u64();
  snapshot.engine.audits = r.u64();
  snapshot.engine.audited_once = r.u8() != 0;
  snapshot.engine.users = read_axis(r, file_);
  snapshot.engine.perms = read_axis(r, file_);

  try {
    r.verify_digest();
  } catch (const io::BinaryError& e) {
    throw SnapshotError(std::string("snapshot: ") + e.what());
  }
  return snapshot;
}

}  // namespace rolediet::store
