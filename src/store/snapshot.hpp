// Versioned binary engine snapshots — the checkpoint half of the durable
// store (engine_store.hpp pairs them with the WAL in wal.hpp).
//
// A snapshot is a complete, self-validating image of an AuditEngine at a WAL
// position: the interned dataset (names + edges), the engine's persistent
// state (version counters, dirty frontier, cached type-5 pair verdicts), and
// the fingerprint of the audit options the caches were computed under.
// Format (io/binary.hpp conventions: little-endian integers, trailing FNV-1a
// digest of everything after the magic):
//
//   magic   "RDSNAP1\0"                                   8 bytes
//   u32     format version (core::kSnapshotFormatVersion)
//   u64     WAL record count N (records [0, N) are baked into this image)
//   fingerprint: u8 method, u8 detect_similar, u8 similarity_mode,
//                u64 hamming threshold, u64 jaccard bits (IEEE-754)
//   dataset body (io/binary.hpp write_dataset_body)
//   engine  u64 version, u64 audits, u8 audited_once, then per axis
//           (users, perms): u64-prefixed dirty bytes, u8 similar_valid,
//           and when valid a u64-prefixed (u32, u32) matched-pair list
//   u64     FNV-1a digest
//
// Snapshot files are named snap-<N>.rdsnap (N zero-padded to 20 digits, so
// lexicographic order == WAL order) and written atomically: the bytes go to
// a .tmp file which is fsynced and then renamed over the final name. A crash
// mid-checkpoint leaves only a stale .tmp, never a half-written snapshot
// under the real name.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/engine.hpp"
#include "core/framework.hpp"
#include "core/model.hpp"

namespace rolediet::store {

class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The audit options that determine cache validity. Threads, backend, and
/// time budget are deliberately excluded: the engine contract makes findings
/// identical across them, so caches survive such changes. A fingerprint
/// mismatch on restore is not an error — the caches are simply dropped.
struct OptionFingerprint {
  core::Method method = core::Method::kRoleDiet;
  bool detect_similar = true;
  core::SimilarityMode similarity_mode = core::SimilarityMode::kHamming;
  std::uint64_t similarity_threshold = 1;
  double jaccard_dissimilarity = 0.1;

  [[nodiscard]] static OptionFingerprint of(const core::AuditOptions& options);
  [[nodiscard]] bool operator==(const OptionFingerprint&) const = default;
};

/// Everything one snapshot file carries.
struct EngineSnapshot {
  std::uint64_t wal_records = 0;  ///< WAL records already reflected in `dataset`
  OptionFingerprint fingerprint;
  core::RbacDataset dataset;
  core::EnginePersistentState engine;
};

/// Captures the live engine as a snapshot positioned at `wal_records`.
/// Single-writer only: the engine must not be mutated concurrently.
[[nodiscard]] EngineSnapshot capture_snapshot(const core::AuditEngine& engine,
                                              std::uint64_t wal_records);

/// Builds a snapshot from a published immutable version (engine_version.hpp).
/// Safe while the writer keeps mutating: the version is frozen, and
/// `wal_records` must be the WAL position the version was published at —
/// claiming a later position would overclaim records the image never saw.
[[nodiscard]] EngineSnapshot capture_snapshot(const core::EngineVersion& version,
                                              const core::AuditOptions& options,
                                              std::uint64_t wal_records);

/// Builds the snapshot file name for a WAL record count.
[[nodiscard]] std::string snapshot_name(std::uint64_t wal_records);

/// Parses N from a snapshot file name; nullopt for non-snapshot files
/// (including .tmp leftovers).
[[nodiscard]] std::optional<std::uint64_t> snapshot_records(const std::filesystem::path& file);

/// Snapshot files in `dir`, sorted by WAL record count (newest last).
[[nodiscard]] std::vector<std::filesystem::path> list_snapshots(const std::filesystem::path& dir);

/// Atomic snapshot emitter bound to a store directory.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::filesystem::path dir) : dir_(std::move(dir)) {}

  /// Writes snap-<wal_records>.rdsnap atomically (tmp + fsync + rename +
  /// directory fsync) and returns the final path. Throws SnapshotError on
  /// any I/O failure; the store is left readable either way.
  std::filesystem::path write(const EngineSnapshot& snapshot) const;

 private:
  std::filesystem::path dir_;
};

/// Loader for one snapshot file.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::filesystem::path file) : file_(std::move(file)) {}

  /// Reads and fully validates the snapshot (magic, format version, counts,
  /// digest). Throws SnapshotError (or io::BinaryError from the dataset
  /// body) on anything invalid — callers with an older snapshot on hand
  /// treat that as "fall back".
  [[nodiscard]] EngineSnapshot read() const;

 private:
  std::filesystem::path file_;
};

}  // namespace rolediet::store
