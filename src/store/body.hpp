// Mmap-backed read-only dataset body for sharded stores.
//
// A shard checkpoint freezes the shard's current rows into one `.rdbody`
// file that recovery maps back into the process with mmap(PROT_READ) and
// serves to the engine as linalg::CsrView spans — for shards larger than
// RAM the kernel pages rows in on demand instead of the store
// materializing every row up front (the copy-on-write overlay in
// core::ShardedEngine keeps mutations out of the mapping).
//
// File layout (numbers little-endian, host-endian mmap read-back — the body
// is a local cache format, not an interchange format):
//
//   magic    "RDBODY1\0"                          8 bytes
//   u32      format version (kBodyFormatVersion)
//   u32      axis count (always 2: users, perms)
//   u64      K   = role count
//   u64      users cols      u64  users nnz
//   u64      perms cols      u64  perms nnz
//   u64[K+1] users row_ptr   (8-aligned; reinterpreted as size_t spans)
//   u64[K+1] perms row_ptr
//   u32[K]   role gids (the shard's global role ids, increasing)
//   u32[nnz] users cols_idx
//   u32[nnz] perms cols_idx
//   pad to 8
//   u64      FNV-1a digest of every preceding byte
//
// write_body_file() writes tmp + fsync + rename (atomic replace); MmapBody
// validates magic, version, size arithmetic, row_ptr framing, and the
// trailing digest before exposing any span.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <stdexcept>

#include "core/model.hpp"
#include "linalg/csr_matrix.hpp"

namespace rolediet::store {

inline constexpr std::uint32_t kBodyFormatVersion = 1;

class BodyError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One axis of a shard as the writer consumes it.
struct BodyAxisData {
  std::span<const std::size_t> row_ptr;  ///< K+1 offsets
  std::span<const core::Id> cols_idx;    ///< nnz sorted-per-row indices
  std::uint64_t cols = 0;                ///< axis entity count at checkpoint
};

/// Writes the body atomically (tmp + fsync + rename + dir fsync). Throws
/// BodyError on I/O failure or inconsistent inputs.
void write_body_file(const std::filesystem::path& path, std::span<const core::Id> roles,
                     const BodyAxisData& users, const BodyAxisData& perms);

/// Read-only mapping of one body file. The CsrViews alias the mapping, so
/// the MmapBody must outlive every engine holding them.
class MmapBody {
 public:
  explicit MmapBody(const std::filesystem::path& path);
  ~MmapBody();
  MmapBody(MmapBody&& other) noexcept;
  MmapBody& operator=(MmapBody&& other) noexcept;
  MmapBody(const MmapBody&) = delete;
  MmapBody& operator=(const MmapBody&) = delete;

  [[nodiscard]] std::span<const core::Id> roles() const noexcept { return roles_; }
  [[nodiscard]] linalg::CsrView users() const noexcept { return users_; }
  [[nodiscard]] linalg::CsrView perms() const noexcept { return perms_; }

 private:
  void unmap() noexcept;

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::span<const core::Id> roles_;
  linalg::CsrView users_;
  linalg::CsrView perms_;
};

}  // namespace rolediet::store
