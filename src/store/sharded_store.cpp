#include "store/sharded_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <system_error>
#include <utility>

#include "core/digest.hpp"
#include "store/snapshot.hpp"

namespace rolediet::store {

namespace fs = std::filesystem;

namespace {

constexpr char kManifestMagic[8] = {'R', 'D', 'M', 'A', 'N', '1', '\0', '\0'};
constexpr char kNamesMagic[8] = {'R', 'D', 'N', 'A', 'M', 'E', '1', '\0'};
constexpr std::uint32_t kManifestFormatVersion = 1;
constexpr std::uint32_t kNamesFormatVersion = 1;

[[noreturn]] void fail(const std::string& what) { throw StoreError("sharded store: " + what); }

// ------------------------------------------------------------- file naming --

[[nodiscard]] std::string generation_suffix(std::uint64_t id) {
  std::string digits = std::to_string(id);
  return std::string(20 - std::min<std::size_t>(20, digits.size()), '0') + digits;
}

[[nodiscard]] std::string shard_dir_name(std::size_t s) {
  std::string digits = std::to_string(s);
  return "shard-" + std::string(3 - std::min<std::size_t>(3, digits.size()), '0') + digits;
}

[[nodiscard]] fs::path manifest_path(const fs::path& dir) { return dir / "MANIFEST"; }

[[nodiscard]] fs::path names_path(const fs::path& dir, std::uint64_t id) {
  return dir / ("names-" + generation_suffix(id) + ".rdnames");
}

[[nodiscard]] fs::path body_path(const fs::path& dir, std::size_t s, std::uint64_t id) {
  return dir / shard_dir_name(s) / ("body-" + generation_suffix(id) + ".rdbody");
}

// --------------------------------------------------- little-endian buffers --

void append_bytes(std::vector<char>& out, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  out.insert(out.end(), p, p + size);
}

void append_u32(std::vector<char>& out, std::uint32_t v) { append_bytes(out, &v, sizeof(v)); }
void append_u64(std::vector<char>& out, std::uint64_t v) { append_bytes(out, &v, sizeof(v)); }

void append_str(std::vector<char>& out, const std::string& s) {
  append_u64(out, s.size());
  append_bytes(out, s.data(), s.size());
}

/// Sequential reader over a digest-verified buffer; every accessor throws
/// StoreError past the end, so malformed files cannot walk out of bounds.
struct Cursor {
  const char* p;
  const char* end;
  std::string what;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) fail("truncated " + what);
  }
  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    std::memcpy(&v, p, sizeof(v));
    p += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    std::memcpy(&v, p, sizeof(v));
    p += 8;
    return v;
  }
  [[nodiscard]] std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(p, len);
    p += len;
    return s;
  }
};

/// tmp + fsync + rename, the same atomic-replace dance body.cpp does.
void write_file_atomic(const fs::path& path, const std::vector<char>& buf) {
  const fs::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open " + tmp.string() + ": " + std::strerror(errno));
  std::size_t written = 0;
  while (written < buf.size()) {
    const ::ssize_t n = ::write(fd, buf.data() + written, buf.size() - written);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      fail("write " + tmp.string() + ": " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    fail("fsync " + tmp.string() + ": " + std::strerror(err));
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fail("rename " + tmp.string() + " -> " + path.string() + ": " + ec.message());
  const int dir_fd = ::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

/// Reads the whole file, verifies the trailing FNV digest, and returns the
/// payload bytes (digest stripped).
[[nodiscard]] std::vector<char> read_digested_file(const fs::path& path, const char* what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(std::string("cannot open ") + what + " " + path.string());
  std::vector<char> buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (buf.size() < 8) fail(std::string("truncated ") + what + " " + path.string());
  core::ContentDigest digest;
  digest.bytes(buf.data(), buf.size() - 8);
  std::uint64_t recorded = 0;
  std::memcpy(&recorded, buf.data() + buf.size() - 8, 8);
  if (digest.value() != recorded) {
    fail(std::string("checksum mismatch in ") + what + " " + path.string());
  }
  buf.resize(buf.size() - 8);
  return buf;
}

// ------------------------------------------------------- manifest + names --

struct Manifest {
  std::uint32_t shards = 0;
  std::uint64_t initial_roles = 0;
  std::uint64_t checkpoint_id = 0;
  std::uint64_t engine_version = 0;
  std::uint64_t audits = 0;
  std::uint64_t num_users = 0;
  std::uint64_t num_roles = 0;
  std::uint64_t num_perms = 0;
  std::uint64_t coord_records = 0;
  std::vector<std::uint64_t> shard_records;
};

void write_manifest(const fs::path& dir, const Manifest& m) {
  std::vector<char> buf;
  append_bytes(buf, kManifestMagic, sizeof(kManifestMagic));
  append_u32(buf, kManifestFormatVersion);
  append_u32(buf, m.shards);
  append_u64(buf, m.initial_roles);
  append_u64(buf, m.checkpoint_id);
  append_u64(buf, m.engine_version);
  append_u64(buf, m.audits);
  append_u64(buf, m.num_users);
  append_u64(buf, m.num_roles);
  append_u64(buf, m.num_perms);
  append_u64(buf, m.coord_records);
  for (const std::uint64_t n : m.shard_records) append_u64(buf, n);
  core::ContentDigest digest;
  digest.bytes(buf.data(), buf.size());
  append_u64(buf, digest.value());
  write_file_atomic(manifest_path(dir), buf);
}

[[nodiscard]] Manifest read_manifest(const fs::path& dir) {
  const fs::path path = manifest_path(dir);
  if (!fs::is_regular_file(path)) fail("no manifest in " + dir.string());
  const std::vector<char> buf = read_digested_file(path, "manifest");
  Cursor cur{buf.data(), buf.data() + buf.size(), "manifest " + path.string()};
  cur.need(sizeof(kManifestMagic));
  if (std::memcmp(cur.p, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    fail("bad magic in manifest " + path.string());
  }
  cur.p += sizeof(kManifestMagic);
  if (cur.u32() != kManifestFormatVersion) {
    fail("unsupported manifest format in " + path.string());
  }
  Manifest m;
  m.shards = cur.u32();
  if (m.shards == 0) fail("manifest names zero shards in " + path.string());
  m.initial_roles = cur.u64();
  m.checkpoint_id = cur.u64();
  m.engine_version = cur.u64();
  m.audits = cur.u64();
  m.num_users = cur.u64();
  m.num_roles = cur.u64();
  m.num_perms = cur.u64();
  m.coord_records = cur.u64();
  m.shard_records.reserve(m.shards);
  for (std::uint32_t s = 0; s < m.shards; ++s) m.shard_records.push_back(cur.u64());
  if (cur.p != cur.end) fail("trailing bytes in manifest " + path.string());
  return m;
}

struct Names {
  std::vector<std::string> users;
  std::vector<std::string> roles;
  std::vector<std::string> perms;
};

void write_names(const fs::path& path, const core::ShardedEngine& engine) {
  std::vector<char> buf;
  append_bytes(buf, kNamesMagic, sizeof(kNamesMagic));
  append_u32(buf, kNamesFormatVersion);
  append_u32(buf, 0);  // reserved
  append_u64(buf, engine.num_users());
  append_u64(buf, engine.num_roles());
  append_u64(buf, engine.num_permissions());
  for (const std::string& name : engine.user_names()) append_str(buf, name);
  for (const std::string& name : engine.role_names()) append_str(buf, name);
  for (const std::string& name : engine.permission_names()) append_str(buf, name);
  core::ContentDigest digest;
  digest.bytes(buf.data(), buf.size());
  append_u64(buf, digest.value());
  write_file_atomic(path, buf);
}

[[nodiscard]] Names read_names(const fs::path& path) {
  const std::vector<char> buf = read_digested_file(path, "names file");
  Cursor cur{buf.data(), buf.data() + buf.size(), "names file " + path.string()};
  cur.need(sizeof(kNamesMagic));
  if (std::memcmp(cur.p, kNamesMagic, sizeof(kNamesMagic)) != 0) {
    fail("bad magic in names file " + path.string());
  }
  cur.p += sizeof(kNamesMagic);
  if (cur.u32() != kNamesFormatVersion) {
    fail("unsupported names format in " + path.string());
  }
  (void)cur.u32();  // reserved
  Names names;
  const std::uint64_t nu = cur.u64();
  const std::uint64_t nr = cur.u64();
  const std::uint64_t np = cur.u64();
  names.users.reserve(nu);
  names.roles.reserve(nr);
  names.perms.reserve(np);
  for (std::uint64_t i = 0; i < nu; ++i) names.users.push_back(cur.str());
  for (std::uint64_t i = 0; i < nr; ++i) names.roles.push_back(cur.str());
  for (std::uint64_t i = 0; i < np; ++i) names.perms.push_back(cur.str());
  if (cur.p != cur.end) fail("trailing bytes in names file " + path.string());
  return names;
}

// ---------------------------------------------------------- record grammar --

[[nodiscard]] bool parse_id(std::string_view text, core::Id* out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

[[nodiscard]] bool parse_u64_field(std::string_view text, std::uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

/// `c,<n0>,...,<nS-1>` — exactly `shards` absolute per-shard record counts.
[[nodiscard]] std::vector<std::uint64_t> parse_commit_marker(std::string_view payload,
                                                             std::size_t shards) {
  std::vector<std::uint64_t> cuts;
  cuts.reserve(shards);
  std::string_view rest = payload.substr(2);  // past "c,"
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view field = rest.substr(0, comma);
    std::uint64_t value = 0;
    if (!parse_u64_field(field, &value)) fail("corrupt commit marker: " + std::string(payload));
    cuts.push_back(value);
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  if (cuts.size() != shards) {
    fail("commit marker names " + std::to_string(cuts.size()) + " shards, store has " +
         std::to_string(shards));
  }
  return cuts;
}

struct EdgeRecord {
  enum class Op { kAssignUser, kRevokeUser, kGrantPermission, kRevokePermission } op;
  core::Id role = 0;
  core::Id entity = 0;
};

[[nodiscard]] EdgeRecord parse_edge_record(std::string_view payload) {
  EdgeRecord rec;
  if (payload.size() < 3 || payload[2] != ',') fail("corrupt edge record: " + std::string(payload));
  const std::string_view op = payload.substr(0, 2);
  if (op == "au") {
    rec.op = EdgeRecord::Op::kAssignUser;
  } else if (op == "ru") {
    rec.op = EdgeRecord::Op::kRevokeUser;
  } else if (op == "gp") {
    rec.op = EdgeRecord::Op::kGrantPermission;
  } else if (op == "rp") {
    rec.op = EdgeRecord::Op::kRevokePermission;
  } else {
    fail("unknown edge record: " + std::string(payload));
  }
  const std::string_view rest = payload.substr(3);
  const std::size_t comma = rest.find(',');
  if (comma == std::string_view::npos || !parse_id(rest.substr(0, comma), &rec.role) ||
      !parse_id(rest.substr(comma + 1), &rec.entity)) {
    fail("corrupt edge record: " + std::string(payload));
  }
  return rec;
}

// ---------------------------------------------------------------- log scan --

/// One WAL stream's surviving records at/after its manifest cut, plus where
/// each record starts on disk (for uncommitted-tail truncation) and where a
/// clean append could resume.
struct ScannedLog {
  fs::path dir;
  std::uint64_t base = 0;  ///< manifest cut: records below are baked into bodies
  std::uint64_t end = 0;   ///< one past the last surviving record
  std::vector<std::string> payloads;  ///< records [base, end)
  std::vector<std::pair<fs::path, std::uint64_t>> starts;  ///< per record: segment, offset
  std::optional<fs::path> resume;
  std::uint64_t resume_offset = 0;
};

/// EngineStore::open's segment walk, generalized: damage is survivable only
/// at the very tail (torn final record truncated, torn-header final segment
/// deleted); gaps or damage anywhere else fail the open.
[[nodiscard]] ScannedLog scan_log(const fs::path& dir, std::uint64_t base,
                                  ShardedRecoveryInfo& info) {
  ScannedLog log;
  log.dir = dir;
  log.base = base;
  const std::vector<fs::path> segments = list_wal_segments(dir);
  std::optional<std::uint64_t> expected;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const bool last = i + 1 == segments.size();
    std::unique_ptr<WalSegmentReader> reader;
    try {
      reader = std::make_unique<WalSegmentReader>(segments[i]);
    } catch (const WalTornHeader& e) {
      if (!last) fail("WAL damage before the log tail: " + std::string(e.what()));
      std::error_code ec;
      fs::remove(segments[i], ec);
      if (ec) fail("cannot drop torn segment " + segments[i].string() + ": " + ec.message());
      info.dropped_torn_segment = true;
      break;
    } catch (const WalError& e) {
      fail(std::string(e.what()));
    }

    if (expected && reader->start_record() != *expected) {
      fail("WAL gap: segment " + segments[i].string() + " starts at record " +
           std::to_string(reader->start_record()) + ", expected " + std::to_string(*expected));
    }
    if (!expected && reader->start_record() > base) {
      fail("WAL in " + dir.string() + " is missing records " + std::to_string(base) + ".." +
           std::to_string(reader->start_record()) + " needed by the manifest");
    }

    std::string payload;
    while (true) {
      const std::uint64_t record_start = reader->offset();
      try {
        if (!reader->next(payload)) break;
      } catch (const WalTornTail& e) {
        if (!last) fail("WAL damage before the log tail: " + std::string(e.what()));
        std::error_code ec;
        const std::uintmax_t size = fs::file_size(segments[i], ec);
        if (!ec) fs::resize_file(segments[i], reader->offset(), ec);
        if (ec) {
          fail("cannot truncate torn tail of " + segments[i].string() + ": " + ec.message());
        }
        info.truncated_bytes += size - reader->offset();
        break;
      }
      if (reader->record_index() - 1 >= base) {
        log.payloads.push_back(payload);
        log.starts.emplace_back(segments[i], record_start);
      }
    }
    expected = reader->record_index();
    log.resume = segments[i];
    log.resume_offset = reader->offset();
  }
  log.end = expected.value_or(base);
  if (log.end < base) {
    // The log lost records the bodies already contain (possible only under
    // FsyncPolicy::kNone); appends restart at the manifest cut.
    log.payloads.clear();
    log.starts.clear();
  }
  return log;
}

/// Drops records at/after `cut`: deletes whole segments past the cut point
/// and resizes the segment holding it. The records were part of batches
/// whose commit never became durable.
void truncate_uncommitted(ScannedLog& log, std::uint64_t cut, ShardedRecoveryInfo& info) {
  if (log.end <= cut) return;
  const std::size_t i = cut - log.base;
  const fs::path segment = log.starts[i].first;
  const std::uint64_t offset = log.starts[i].second;
  const std::optional<std::uint64_t> keep_start = wal_segment_start(segment);
  for (const fs::path& other : list_wal_segments(log.dir)) {
    const std::optional<std::uint64_t> start = wal_segment_start(other);
    if (!start || !keep_start || *start <= *keep_start) continue;
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(other, ec);
    if (!ec) info.truncated_bytes += size;
    fs::remove(other, ec);
    if (ec) fail("cannot drop uncommitted segment " + other.string() + ": " + ec.message());
  }
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(segment, ec);
  if (!ec) fs::resize_file(segment, offset, ec);
  if (ec) fail("cannot truncate uncommitted tail of " + segment.string() + ": " + ec.message());
  info.truncated_bytes += size - offset;
  info.discarded_records += log.end - cut;
  log.end = cut;
  log.payloads.resize(i);
  log.starts.resize(i);
  log.resume = segment;
  log.resume_offset = offset;
}

/// Reopens a stream for appending at record `next`, resuming the surviving
/// segment when it ends exactly there (else a fresh segment — including the
/// under-kNone case where the log lost its tail and next > end).
void start_wal_from(Wal& wal, const ScannedLog& log, std::uint64_t next) {
  if (log.resume && log.end == next) {
    wal.start(next, log.resume, log.resume_offset);
  } else {
    wal.start(next, std::nullopt, 0);
  }
}

// ------------------------------------------------------------------ replay --

void replay_intern(core::ShardedEngine& engine, std::string_view payload,
                   ShardedRecoveryInfo& info) {
  if (payload.size() < 3 || payload[2] != ',') {
    fail("corrupt coordinator record: " + std::string(payload));
  }
  std::string name(payload.substr(3));
  const std::string_view kind = payload.substr(0, 2);
  bool grew = false;
  if (kind == "nu") {
    const std::size_t before = engine.num_users();
    engine.add_user(std::move(name));
    grew = engine.num_users() == before + 1;
  } else if (kind == "nr") {
    const std::size_t before = engine.num_roles();
    engine.add_role(std::move(name));
    grew = engine.num_roles() == before + 1;
  } else if (kind == "np") {
    const std::size_t before = engine.num_permissions();
    engine.add_permission(std::move(name));
    grew = engine.num_permissions() == before + 1;
  } else {
    fail("unknown coordinator record: " + std::string(payload));
  }
  // An intern record was only written when the name was new; a collision
  // means the log and checkpoint disagree about interning history.
  if (!grew) fail("intern replay collision: " + std::string(payload));
  ++info.replayed_interns;
}

void replay_edge(core::ShardedEngine& engine, std::string_view payload,
                 ShardedRecoveryInfo& info) {
  const EdgeRecord rec = parse_edge_record(payload);
  try {
    switch (rec.op) {
      case EdgeRecord::Op::kAssignUser:
        engine.assign_user(rec.role, rec.entity);
        break;
      case EdgeRecord::Op::kRevokeUser:
        engine.revoke_user(rec.role, rec.entity);
        break;
      case EdgeRecord::Op::kGrantPermission:
        engine.grant_permission(rec.role, rec.entity);
        break;
      case EdgeRecord::Op::kRevokePermission:
        engine.revoke_permission(rec.role, rec.entity);
        break;
    }
  } catch (const std::out_of_range&) {
    fail("edge record references an id the store never interned: " + std::string(payload));
  }
  ++info.replayed_edges;
}

}  // namespace

// ----------------------------------------------------------- construction --

ShardedEngineStore::ShardedEngineStore(fs::path dir, StoreOptions store_options,
                                       std::size_t shards)
    : dir_(std::move(dir)),
      store_options_(store_options),
      coord_(dir_ / "coord", store_options.fsync, store_options.wal_segment_bytes) {
  shard_wals_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_wals_.emplace_back(dir_ / shard_dir_name(s), store_options.fsync,
                             store_options.wal_segment_bytes);
  }
}

bool ShardedEngineStore::is_sharded_store(const fs::path& dir) {
  std::error_code ec;
  return fs::is_regular_file(manifest_path(dir), ec);
}

ShardedEngineStore ShardedEngineStore::create(const fs::path& dir,
                                              const core::RbacDataset& dataset,
                                              std::size_t shards,
                                              const core::AuditOptions& options,
                                              StoreOptions store_options) {
  if (shards == 0) fail("shards must be >= 1");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) fail("cannot create directory " + dir.string() + ": " + ec.message());
  if (is_sharded_store(dir)) fail(dir.string() + " already holds a sharded store");
  if (!list_snapshots(dir).empty() || !list_wal_segments(dir).empty()) {
    fail(dir.string() + " already holds an unsharded store");
  }
  fs::create_directories(dir / "coord", ec);
  if (ec) fail("cannot create " + (dir / "coord").string() + ": " + ec.message());
  for (std::size_t s = 0; s < shards; ++s) {
    fs::create_directories(dir / shard_dir_name(s), ec);
    if (ec) fail("cannot create " + (dir / shard_dir_name(s)).string() + ": " + ec.message());
  }

  ShardedEngineStore store(dir, store_options, shards);
  store.engine_ = std::make_unique<core::ShardedEngine>(dataset, shards, options);
  store.write_checkpoint_files(0);
  store.checkpoint_id_ = 0;
  store.recovery_.checkpoint_id = 0;
  store.recovery_.manifest_shard_records.assign(shards, 0);
  store.coord_.start(0, std::nullopt, 0);
  for (Wal& wal : store.shard_wals_) wal.start(0, std::nullopt, 0);
  return store;
}

ShardedEngineStore ShardedEngineStore::open(const fs::path& dir,
                                            const core::AuditOptions& options,
                                            StoreOptions store_options) {
  if (!fs::is_directory(dir)) fail("no such directory " + dir.string());
  const Manifest manifest = read_manifest(dir);
  ShardedEngineStore store(dir, store_options, manifest.shards);
  store.checkpoint_id_ = manifest.checkpoint_id;
  ShardedRecoveryInfo& info = store.recovery_;
  info.checkpoint_id = manifest.checkpoint_id;
  info.manifest_coord_records = manifest.coord_records;
  info.manifest_shard_records = manifest.shard_records;

  // 1. Checkpoint image: names + one mmap'd body per shard.
  Names names = read_names(names_path(dir, manifest.checkpoint_id));
  if (names.users.size() != manifest.num_users || names.roles.size() != manifest.num_roles ||
      names.perms.size() != manifest.num_perms) {
    fail("names file does not match the manifest's entity counts");
  }
  std::vector<core::ShardedEngine::ShardImage> images;
  images.reserve(manifest.shards);
  store.bodies_.reserve(manifest.shards);
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    const fs::path body = body_path(dir, s, manifest.checkpoint_id);
    try {
      store.bodies_.emplace_back(body);
    } catch (const BodyError& e) {
      fail(std::string(e.what()));
    }
    const MmapBody& mapped = store.bodies_.back();
    images.push_back({{mapped.roles().begin(), mapped.roles().end()},
                      mapped.users(),
                      mapped.perms()});
  }
  try {
    store.engine_ = std::make_unique<core::ShardedEngine>(
        std::move(names.users), std::move(names.roles), std::move(names.perms),
        std::move(images), manifest.initial_roles, manifest.engine_version, manifest.audits,
        options);
  } catch (const std::invalid_argument& e) {
    fail("checkpoint does not restore: " + std::string(e.what()));
  }

  // 2. Surviving WAL tails of all S+1 streams.
  ScannedLog coord = scan_log(dir / "coord", manifest.coord_records, info);
  std::vector<ScannedLog> shards;
  shards.reserve(manifest.shards);
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    shards.push_back(scan_log(dir / shard_dir_name(s), manifest.shard_records[s], info));
  }

  // 3. Walk the coordinator log marker by marker. A batch is committed iff
  // its marker survives and every shard record the marker claims survives
  // too; cuts are monotone, so the first unsatisfiable marker ends replay.
  std::vector<std::uint64_t> applied = manifest.shard_records;
  std::uint64_t coord_applied = manifest.coord_records;
  std::size_t pending_begin = 0;
  for (std::size_t i = 0; i < coord.payloads.size(); ++i) {
    const std::string& payload = coord.payloads[i];
    if (payload.rfind("c,", 0) != 0) {
      if (payload.size() < 3 || payload[2] != ',' ||
          (payload.rfind("nu", 0) != 0 && payload.rfind("nr", 0) != 0 &&
           payload.rfind("np", 0) != 0)) {
        fail("unknown coordinator record: " + payload);
      }
      continue;  // intern: applied when its batch's marker proves committed
    }
    const std::vector<std::uint64_t> cuts = parse_commit_marker(payload, manifest.shards);
    bool satisfiable = true;
    for (std::size_t s = 0; s < cuts.size(); ++s) {
      if (cuts[s] < applied[s]) fail("commit marker cut goes backwards: " + payload);
      if (cuts[s] != applied[s] && cuts[s] > shards[s].end) {
        satisfiable = false;  // shard records lost before their marker synced
        break;
      }
    }
    if (!satisfiable) break;
    for (std::size_t j = pending_begin; j < i; ++j) {
      replay_intern(*store.engine_, coord.payloads[j], info);
    }
    for (std::size_t s = 0; s < cuts.size(); ++s) {
      for (std::uint64_t idx = applied[s]; idx < cuts[s]; ++idx) {
        replay_edge(*store.engine_, shards[s].payloads[idx - shards[s].base], info);
      }
      applied[s] = cuts[s];
    }
    pending_begin = i + 1;
    coord_applied = coord.base + i + 1;
    ++info.commits_applied;
  }

  // 4. Drop uncommitted tails and reopen every stream for appending.
  truncate_uncommitted(coord, coord_applied, info);
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    truncate_uncommitted(shards[s], applied[s], info);
  }
  start_wal_from(store.coord_, coord, std::max(coord.end, coord_applied));
  for (std::size_t s = 0; s < manifest.shards; ++s) {
    start_wal_from(store.shard_wals_[s], shards[s], std::max(shards[s].end, applied[s]));
  }
  return store;
}

// --------------------------------------------------------------- mutation --

void ShardedEngineStore::apply(const core::RbacDelta& delta) {
  core::ShardedEngine& engine = *engine_;
  std::vector<std::string> coord_records;
  std::vector<std::vector<std::string>> shard_records(shard_wals_.size());

  // The engine runs first so effectiveness (new name? effective edge?) is
  // decided once, by the engine itself; the captured records replay through
  // the same mutators, so recovery reaches the identical state and version.
  const auto intern_user = [&](const std::string& name) {
    const std::size_t before = engine.num_users();
    const core::Id id = engine.add_user(name);
    if (engine.num_users() != before) coord_records.push_back("nu," + name);
    return id;
  };
  const auto intern_role = [&](const std::string& name) {
    const std::size_t before = engine.num_roles();
    const core::Id id = engine.add_role(name);
    if (engine.num_roles() != before) coord_records.push_back("nr," + name);
    return id;
  };
  const auto intern_perm = [&](const std::string& name) {
    const std::size_t before = engine.num_permissions();
    const core::Id id = engine.add_permission(name);
    if (engine.num_permissions() != before) coord_records.push_back("np," + name);
    return id;
  };
  const auto route = [&](const char* op, core::Id role, core::Id entity) {
    shard_records[engine.owner_shard(role)].push_back(
        std::string(op) + "," + std::to_string(role) + "," + std::to_string(entity));
  };

  for (const core::Mutation& m : delta.mutations) {
    switch (m.kind) {
      case core::MutationKind::kAddUser:
        intern_user(m.entity);
        break;
      case core::MutationKind::kAddRole:
        intern_role(m.entity);
        break;
      case core::MutationKind::kAddPermission:
        intern_perm(m.entity);
        break;
      case core::MutationKind::kAssignUser: {
        const core::Id role = intern_role(m.role);
        const core::Id user = intern_user(m.entity);
        engine.assign_user(role, user);
        route("au", role, user);
        break;
      }
      case core::MutationKind::kGrantPermission: {
        const core::Id role = intern_role(m.role);
        const core::Id perm = intern_perm(m.entity);
        engine.grant_permission(role, perm);
        route("gp", role, perm);
        break;
      }
      case core::MutationKind::kRevokeUser: {
        const std::optional<core::Id> role = engine.find_role(m.role);
        const std::optional<core::Id> user = engine.find_user(m.entity);
        if (role && user) {
          engine.revoke_user(*role, *user);
          route("ru", *role, *user);
        }
        break;
      }
      case core::MutationKind::kRevokePermission: {
        const std::optional<core::Id> role = engine.find_role(m.role);
        const std::optional<core::Id> perm = engine.find_permission(m.entity);
        if (role && perm) {
          engine.revoke_permission(*role, *perm);
          route("rp", *role, *perm);
        }
        break;
      }
    }
  }

  bool any = !coord_records.empty();
  for (const auto& records : shard_records) any = any || !records.empty();
  if (!any) return;  // nothing effective: no durable state to record

  // Shard streams first, marker last: a durable marker implies its shard
  // records are durable too (append_raw_batch syncs under kEveryBatch).
  for (std::size_t s = 0; s < shard_records.size(); ++s) {
    if (!shard_records[s].empty()) shard_wals_[s].append_raw_batch(shard_records[s]);
  }
  std::string marker = "c";
  for (const Wal& wal : shard_wals_) marker += "," + std::to_string(wal.next_record());
  coord_records.push_back(std::move(marker));
  coord_.append_raw_batch(coord_records);
}

// ------------------------------------------------------------- checkpoint --

void ShardedEngineStore::write_checkpoint_files(std::uint64_t id) {
  for (std::size_t s = 0; s < shard_wals_.size(); ++s) {
    const core::ShardedEngine::ShardExport exported = engine_->export_shard(s);
    try {
      write_body_file(body_path(dir_, s, id), exported.roles,
                      {exported.users_row_ptr, exported.users_cols, engine_->num_users()},
                      {exported.perms_row_ptr, exported.perms_cols, engine_->num_permissions()});
    } catch (const BodyError& e) {
      fail("checkpoint failed: " + std::string(e.what()));
    }
  }
  write_names(names_path(dir_, id), *engine_);

  Manifest manifest;
  manifest.shards = static_cast<std::uint32_t>(shard_wals_.size());
  manifest.initial_roles = engine_->initial_roles();
  manifest.checkpoint_id = id;
  manifest.engine_version = engine_->version();
  manifest.audits = engine_->audits();
  manifest.num_users = engine_->num_users();
  manifest.num_roles = engine_->num_roles();
  manifest.num_perms = engine_->num_permissions();
  manifest.coord_records = coord_.next_record();
  manifest.shard_records.reserve(shard_wals_.size());
  for (const Wal& wal : shard_wals_) manifest.shard_records.push_back(wal.next_record());
  write_manifest(dir_, manifest);  // rename = the checkpoint's commit point
}

void ShardedEngineStore::prune_stale_checkpoints(std::uint64_t keep) {
  const auto prune_dir = [&](const fs::path& dir, const std::string& prefix,
                             const std::string& suffix) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind(prefix, 0) != 0) continue;
      if (name == prefix + generation_suffix(keep) + suffix) continue;
      std::error_code remove_ec;
      fs::remove(entry.path(), remove_ec);  // best effort: stale data only
    }
  };
  prune_dir(dir_, "names-", ".rdnames");
  for (std::size_t s = 0; s < shard_wals_.size(); ++s) {
    prune_dir(dir_ / shard_dir_name(s), "body-", ".rdbody");
  }
}

core::AuditReport ShardedEngineStore::reaudit() {
  engine_->set_publish_versions(true);
  return engine_->reaudit();
}

std::uint64_t ShardedEngineStore::checkpoint() {
  // Everything the manifest will claim as "in the log" must be durable
  // before the manifest that supersedes older checkpoints exists.
  for (Wal& wal : shard_wals_) wal.sync();
  coord_.sync();
  const std::uint64_t id = checkpoint_id_ + 1;
  write_checkpoint_files(id);
  checkpoint_id_ = id;

  coord_.rotate();
  coord_.prune_below(coord_.next_record());
  for (Wal& wal : shard_wals_) {
    wal.rotate();
    wal.prune_below(wal.next_record());
  }
  prune_stale_checkpoints(id);
  return id;
}

}  // namespace rolediet::store
