// Segmented write-ahead log of RBAC mutations.
//
// The durable store (engine_store.hpp) makes AuditEngine state crash-safe
// with the classic snapshot + WAL pair: every mutation is appended here
// *before* it is applied to the engine, so after a crash the engine is
// reconstructed as "newest snapshot + replay of the WAL tail". Record
// payloads are exactly the PR-4 journal records (io/journal.hpp,
// `assign-user,ROLE,USER` CSV) — the human-debuggable, name-based mutation
// format — wrapped in a binary frame that makes torn writes detectable:
//
//   segment file  wal-<START>.log   (START = global index of its first record,
//                                    20-digit zero-padded decimal, so
//                                    lexicographic order == record order)
//     magic   "RDWAL1\n\0"                              8 bytes
//     u32     format version (core::kWalFormatVersion)  little-endian
//     u64     START (echoed from the name)
//     records, each:
//       u32   payload byte length
//       u32   CRC32 of the payload (util/crc32.hpp)
//       raw   payload (one journal CSV record, no trailing newline)
//
// A segment is append-only and never rewritten; rotation starts a fresh
// segment once the active one exceeds `segment_bytes` (and at every
// checkpoint), and retention deletes segments made obsolete by a snapshot.
// Reading distinguishes three terminal states: clean end (segment ends at a
// record boundary), torn tail (trailing bytes that do not form a complete
// CRC-valid record — the expected result of a crash mid-append; recovery
// truncates them), and torn header (file shorter than the header — a crash
// during segment creation; the segment holds no committed records).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace rolediet::store {

class WalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The remaining bytes of a segment do not form a complete valid record.
/// WalSegmentReader::offset() points at the last good record boundary.
class WalTornTail : public WalError {
 public:
  using WalError::WalError;
};

/// The file is shorter than the segment header: a crash during segment
/// creation. No committed records.
class WalTornHeader : public WalError {
 public:
  using WalError::WalError;
};

/// When the OS is asked to flush appended records to stable storage.
enum class FsyncPolicy {
  kEveryRecord,  ///< fsync after every record: no committed record is ever lost
  kEveryBatch,   ///< fsync once per append_batch() / explicit sync()
  kNone,         ///< never fsync (tests, bulk loads); the OS decides
};

[[nodiscard]] std::string_view to_string(FsyncPolicy policy) noexcept;

/// Builds the segment file name for a given starting record index.
[[nodiscard]] std::string wal_segment_name(std::uint64_t start_record);

/// Parses START from a segment file name; nullopt for non-segment files.
[[nodiscard]] std::optional<std::uint64_t> wal_segment_start(const std::filesystem::path& file);

/// Segment files in `dir`, sorted by starting record index.
[[nodiscard]] std::vector<std::filesystem::path> list_wal_segments(
    const std::filesystem::path& dir);

/// Sequential reader over one segment. Construction validates the header
/// (WalTornHeader on a short file, WalError on wrong magic or format
/// version); next() yields payloads until the clean end of the segment or a
/// torn tail.
class WalSegmentReader {
 public:
  explicit WalSegmentReader(const std::filesystem::path& file);

  [[nodiscard]] std::uint64_t start_record() const noexcept { return start_record_; }

  /// Reads the next record payload; false at a clean end of the segment.
  /// Throws WalTornTail when the remaining bytes are not a complete valid
  /// record (offset() then marks the truncation point).
  bool next(std::string& payload);

  /// Byte offset just past the last successfully read record (the header
  /// for a fresh reader) — the safe truncation point after a torn tail.
  [[nodiscard]] std::uint64_t offset() const noexcept { return good_offset_; }

  /// Global index of the next record to be read.
  [[nodiscard]] std::uint64_t record_index() const noexcept { return start_record_ + count_; }

 private:
  std::ifstream in_;
  std::filesystem::path file_;
  std::uint64_t start_record_ = 0;
  std::uint64_t good_offset_ = 0;
  std::uint64_t count_ = 0;
};

/// Append side: owns the active segment. Move-only (holds a file handle).
class Wal {
 public:
  /// `segment_bytes` is the rotation threshold: an append that finds the
  /// active segment at or beyond it starts a new segment first.
  Wal(std::filesystem::path dir, FsyncPolicy policy, std::size_t segment_bytes);
  ~Wal();
  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens the active segment for appending at global record index
  /// `next_record`. When `resume` names an existing segment file whose
  /// committed content ends exactly at byte `resume_offset` (as reported by
  /// a WalSegmentReader that consumed it), appending resumes there;
  /// otherwise a fresh segment wal-<next_record>.log is created (truncating
  /// any stale file of that name).
  void start(std::uint64_t next_record, const std::optional<std::filesystem::path>& resume,
             std::uint64_t resume_offset);

  /// Appends one framed record and applies the fsync policy (kEveryRecord
  /// syncs; kEveryBatch treats a single record as a batch of one).
  void append(const core::Mutation& mutation);

  /// Appends the whole delta, syncing once at the end under kEveryBatch.
  void append_batch(const core::RbacDelta& delta);

  /// Appends one raw payload under the same CRC framing. The sharded store
  /// streams its own record grammar (shard-local id records, commit markers)
  /// through the identical segment format; the frame does not care what the
  /// payload says. Fsync policy applies as in append().
  void append_raw(const std::string& payload);

  /// Appends raw payloads as one batch: one fsync at the end under
  /// kEveryBatch, per-record under kEveryRecord.
  void append_raw_batch(std::span<const std::string> payloads);

  /// Explicit flush to stable storage regardless of policy.
  void sync();

  /// Closes the active segment and starts a fresh one at next_record().
  void rotate();

  /// Deletes segments whose records all precede `record` (their entire range
  /// is covered by a snapshot). The active segment is never deleted.
  void prune_below(std::uint64_t record);

  /// Global index of the next record to be appended == total records ever
  /// committed to this log.
  [[nodiscard]] std::uint64_t next_record() const noexcept { return next_record_; }

  [[nodiscard]] FsyncPolicy policy() const noexcept { return policy_; }

 private:
  void open_segment(std::uint64_t start_record);
  void append_payload(const std::string& payload, bool sync_now);
  void close_active() noexcept;

  std::filesystem::path dir_;
  FsyncPolicy policy_ = FsyncPolicy::kEveryBatch;
  std::size_t segment_bytes_ = 1 << 20;
  int fd_ = -1;
  std::filesystem::path active_path_;
  std::uint64_t active_bytes_ = 0;  ///< committed size of the active segment
  std::uint64_t next_record_ = 0;
};

}  // namespace rolediet::store
