// Durable sharded audit engine: per-shard WAL streams + mmap'd bodies tied
// together by one atomic manifest.
//
// ShardedEngineStore is to core::ShardedEngine what EngineStore is to
// core::AuditEngine, with the layout the sharded engine needs: every shard
// owns its own WAL stream and snapshot (body) lineage, and a thin
// coordinator log carries what is global — name interning and batch commit
// markers. A store directory looks like
//
//   MANIFEST                    atomic checkpoint descriptor (see below)
//   names-<C>.rdnames           interned user/role/permission names at C
//   coord/wal-<S>.log           coordinator records (interns + commits)
//   shard-NNN/body-<C>.rdbody   shard NNN's rows at checkpoint C (store/body.hpp)
//   shard-NNN/wal-<S>.log       shard NNN's edge records since its body
//
// Record grammar (payloads inside the store/wal.hpp CRC frame):
//
//   coordinator   nu,<name>   np,<name>   nr,<name>    intern (global order)
//                 c,<n0>,...,<nS-1>                    commit marker: absolute
//                                                      per-shard record counts
//   shard         au,<role>,<user>    ru,<role>,<user>
//                 gp,<role>,<perm>    rp,<role>,<perm> id-based edge mutations
//
// apply() routes a batch's edge records to the owning shards' WALs first,
// then appends the batch's interns plus one commit marker to the coordinator
// log. A batch is committed iff its marker is durable *and* every shard
// record the marker's cuts claim survives; recovery walks the coordinator
// log marker by marker, replays each satisfiable batch (interns, then each
// shard's records up to the marker's cut), and truncates everything after
// the last satisfiable commit as an uncommitted tail. Torn tails and
// torn-header segments are repaired exactly as in EngineStore — only at the
// tail of each log.
//
// checkpoint() freezes every shard's rows into a new body file, writes the
// names file, then atomically replaces MANIFEST (the commit point) before
// rotating and pruning all S+1 logs and deleting superseded bodies. The
// manifest records the WAL cut of every stream, so a crash anywhere in a
// checkpoint leaves either the old or the new checkpoint fully intact.
//
// Recovery builds the engine from the manifest's bodies via the
// ShardedEngine restore constructor — shard rows are served straight from
// the mmap'd bodies and only rows the replayed tail actually touches get
// materialized in the engine's copy-on-write overlay.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/sharded_engine.hpp"
#include "store/body.hpp"
#include "store/engine_store.hpp"  // StoreError, StoreOptions
#include "store/wal.hpp"

namespace rolediet::store {

/// What open() had to do to bring a sharded store back.
struct ShardedRecoveryInfo {
  std::uint64_t checkpoint_id = 0;          ///< manifest generation restored from
  std::uint64_t manifest_coord_records = 0; ///< coordinator records baked into it
  std::vector<std::uint64_t> manifest_shard_records;  ///< per-shard WAL cuts
  std::uint64_t commits_applied = 0;   ///< commit markers replayed on top
  std::uint64_t replayed_interns = 0;  ///< intern records replayed
  std::uint64_t replayed_edges = 0;    ///< shard edge records replayed
  std::uint64_t discarded_records = 0; ///< uncommitted tail records dropped
  std::uint64_t truncated_bytes = 0;   ///< torn/uncommitted bytes discarded
  bool dropped_torn_segment = false;   ///< torn-header tail segment deleted
};

class ShardedEngineStore {
 public:
  /// Initializes `dir` (created if missing; must not already hold a store)
  /// with checkpoint 0 of the dataset split into `shards` shards and empty
  /// WAL streams. Throws StoreError on an existing store or I/O failure.
  [[nodiscard]] static ShardedEngineStore create(const std::filesystem::path& dir,
                                                 const core::RbacDataset& dataset,
                                                 std::size_t shards,
                                                 const core::AuditOptions& options,
                                                 StoreOptions store_options = {});

  /// Recovers the engine from `dir` (see file comment) and reopens every WAL
  /// stream for appending. Throws StoreError on a missing/corrupt manifest,
  /// unreadable body, or log damage anywhere but the tails.
  [[nodiscard]] static ShardedEngineStore open(const std::filesystem::path& dir,
                                               const core::AuditOptions& options,
                                               StoreOptions store_options = {});

  /// True when `dir` holds a sharded store (a MANIFEST file) — the CLI's
  /// auto-detection between EngineStore and ShardedEngineStore layouts.
  [[nodiscard]] static bool is_sharded_store(const std::filesystem::path& dir);

  ShardedEngineStore(ShardedEngineStore&&) = default;
  ShardedEngineStore& operator=(ShardedEngineStore&&) = delete;  // dirs are identity
  ShardedEngineStore(const ShardedEngineStore&) = delete;
  ShardedEngineStore& operator=(const ShardedEngineStore&) = delete;

  /// Applies the batch to the engine while capturing its effective records,
  /// then makes it durable: shard WAL appends first, coordinator interns +
  /// commit marker last. If an append throws, the in-memory engine is ahead
  /// of the durable log — discard the store object and open() the directory
  /// again to get back to the last committed batch.
  void apply(const core::RbacDelta& delta);

  /// Full sharded audit with version publication enabled: the completed
  /// reaudit() publishes an immutable core::EngineVersion readers can pin
  /// concurrently via engine().published(). Single-writer like apply().
  core::AuditReport reaudit();

  /// Freezes the current state as the next checkpoint generation and prunes
  /// everything it supersedes. Returns the new checkpoint id.
  ///
  /// Asymmetry with EngineStore::checkpoint(): bodies are frozen from the
  /// *live* shard rows, not from a published version — rebuilding per-shard
  /// mmap bodies out of a flat dataset copy would forfeit the zero-copy
  /// recovery path. The consistency obligation moves to the caller instead:
  /// checkpoint() must run on the writer thread strictly between apply()
  /// batches (service::AuditService guarantees exactly that), where the live
  /// rows equal the committed WAL prefix by construction.
  std::uint64_t checkpoint();

  /// The live sharded engine. Mutating it directly bypasses the WALs — use
  /// apply() for anything that must survive a crash.
  [[nodiscard]] core::ShardedEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] const core::ShardedEngine& engine() const noexcept { return *engine_; }

  /// Committed coordinator records (interns + commit markers) so far.
  [[nodiscard]] std::uint64_t records() const noexcept { return coord_.next_record(); }
  /// Committed edge records in shard `s`'s WAL stream.
  [[nodiscard]] std::uint64_t shard_records(std::size_t s) const {
    return shard_wals_.at(s).next_record();
  }

  [[nodiscard]] std::size_t num_shards() const noexcept { return shard_wals_.size(); }
  [[nodiscard]] std::uint64_t checkpoint_id() const noexcept { return checkpoint_id_; }
  [[nodiscard]] const ShardedRecoveryInfo& recovery() const noexcept { return recovery_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  ShardedEngineStore(std::filesystem::path dir, StoreOptions store_options, std::size_t shards);
  /// Bodies + names + MANIFEST for generation `id` (the rename of MANIFEST
  /// is the commit point; nothing is pruned here).
  void write_checkpoint_files(std::uint64_t id);
  /// Deletes names/body files of generations other than `keep`.
  void prune_stale_checkpoints(std::uint64_t keep);

  std::filesystem::path dir_;
  StoreOptions store_options_;
  std::vector<MmapBody> bodies_;  ///< outlives engine_ (declared first)
  std::unique_ptr<core::ShardedEngine> engine_;
  Wal coord_;
  std::vector<Wal> shard_wals_;
  std::uint64_t checkpoint_id_ = 0;
  ShardedRecoveryInfo recovery_;
};

}  // namespace rolediet::store
