#include "store/body.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/digest.hpp"

namespace rolediet::store {

namespace {

// Row pointers are served straight out of the mapping as size_t spans.
static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
              "mmap body requires 64-bit size_t");
static_assert(sizeof(core::Id) == sizeof(std::uint32_t));

constexpr char kBodyMagic[8] = {'R', 'D', 'B', 'O', 'D', 'Y', '1', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 5 * 8;  // 56, already 8-aligned

void append_bytes(std::vector<char>& out, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  out.insert(out.end(), p, p + size);
}

void append_u32(std::vector<char>& out, std::uint32_t v) { append_bytes(out, &v, sizeof(v)); }
void append_u64(std::vector<char>& out, std::uint64_t v) { append_bytes(out, &v, sizeof(v)); }

[[noreturn]] void fail(const std::string& what) { throw BodyError("body: " + what); }

[[nodiscard]] std::uint64_t read_u64(const char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

[[nodiscard]] std::uint32_t read_u32(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void check_axis(const BodyAxisData& axis, std::size_t roles) {
  if (axis.row_ptr.size() != roles + 1 || axis.row_ptr.front() != 0 ||
      axis.row_ptr.back() != axis.cols_idx.size()) {
    fail("inconsistent axis arrays");
  }
}

void fsync_fd(int fd, const std::filesystem::path& path) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    fail("fsync " + path.string() + ": " + std::strerror(err));
  }
}

void fsync_dir(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort; rename already happened
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void write_body_file(const std::filesystem::path& path, std::span<const core::Id> roles,
                     const BodyAxisData& users, const BodyAxisData& perms) {
  check_axis(users, roles.size());
  check_axis(perms, roles.size());

  std::vector<char> buf;
  const std::size_t k = roles.size();
  buf.reserve(kHeaderBytes + (k + 1) * 16 + k * 4 +
              (users.cols_idx.size() + perms.cols_idx.size()) * 4 + 16);
  append_bytes(buf, kBodyMagic, sizeof(kBodyMagic));
  append_u32(buf, kBodyFormatVersion);
  append_u32(buf, 2);
  append_u64(buf, k);
  append_u64(buf, users.cols);
  append_u64(buf, users.cols_idx.size());
  append_u64(buf, perms.cols);
  append_u64(buf, perms.cols_idx.size());
  for (const std::size_t v : users.row_ptr) append_u64(buf, v);
  for (const std::size_t v : perms.row_ptr) append_u64(buf, v);
  append_bytes(buf, roles.data(), roles.size_bytes());
  append_bytes(buf, users.cols_idx.data(), users.cols_idx.size_bytes());
  append_bytes(buf, perms.cols_idx.data(), perms.cols_idx.size_bytes());
  while (buf.size() % 8 != 0) buf.push_back(0);
  core::ContentDigest digest;
  digest.bytes(buf.data(), buf.size());
  append_u64(buf, digest.value());

  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    const int err = errno;
    fail("open " + tmp.string() + ": " + std::strerror(err));
  }
  std::size_t written = 0;
  while (written < buf.size()) {
    const ::ssize_t n = ::write(fd, buf.data() + written, buf.size() - written);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      fail("write " + tmp.string() + ": " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  fsync_fd(fd, tmp);
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) fail("rename " + tmp.string() + " -> " + path.string() + ": " + ec.message());
  fsync_dir(path.parent_path());
}

MmapBody::MmapBody(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    const int err = errno;
    fail("open " + path.string() + ": " + std::strerror(err));
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail("stat " + path.string() + ": " + std::strerror(err));
  }
  map_size_ = static_cast<std::size_t>(st.st_size);
  if (map_size_ < kHeaderBytes + 8) {
    ::close(fd);
    fail("truncated body " + path.string());
  }
  map_ = ::mmap(nullptr, map_size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map_ == MAP_FAILED) {
    map_ = nullptr;
    fail("mmap " + path.string());
  }

  const char* base = static_cast<const char*>(map_);
  if (std::memcmp(base, kBodyMagic, sizeof(kBodyMagic)) != 0) {
    unmap();
    fail("bad magic in " + path.string());
  }
  if (read_u32(base + 8) != kBodyFormatVersion || read_u32(base + 12) != 2) {
    unmap();
    fail("unsupported body format in " + path.string());
  }
  const std::uint64_t k = read_u64(base + 16);
  const std::uint64_t users_cols = read_u64(base + 24);
  const std::uint64_t users_nnz = read_u64(base + 32);
  const std::uint64_t perms_cols = read_u64(base + 40);
  const std::uint64_t perms_nnz = read_u64(base + 48);

  std::size_t payload = kHeaderBytes + (k + 1) * 16 + k * 4 + (users_nnz + perms_nnz) * 4;
  payload = (payload + 7) / 8 * 8;
  if (payload + 8 != map_size_) {
    unmap();
    fail("size mismatch in " + path.string());
  }
  core::ContentDigest digest;
  digest.bytes(base, payload);
  if (digest.value() != read_u64(base + payload)) {
    unmap();
    fail("checksum mismatch in " + path.string());
  }

  const auto* users_ptr = reinterpret_cast<const std::size_t*>(base + kHeaderBytes);
  const auto* perms_ptr = users_ptr + (k + 1);
  const auto* roles_ptr = reinterpret_cast<const core::Id*>(perms_ptr + (k + 1));
  const auto* users_idx = roles_ptr + k;
  const auto* perms_idx = users_idx + users_nnz;

  // Framing checks: monotone row pointers ending at nnz, increasing gids.
  // Content validity of the column runs is re-checked by CsrMatrix::from_csr
  // whenever the engine rebuilds a matrix from these rows.
  auto check_ptrs = [&](const std::size_t* p, std::uint64_t nnz) {
    if (p[0] != 0 || p[k] != nnz) return false;
    for (std::uint64_t i = 0; i < k; ++i) {
      if (p[i] > p[i + 1]) return false;
    }
    return true;
  };
  if (!check_ptrs(users_ptr, users_nnz) || !check_ptrs(perms_ptr, perms_nnz)) {
    unmap();
    fail("bad row pointers in " + path.string());
  }
  for (std::uint64_t i = 1; i < k; ++i) {
    if (roles_ptr[i] <= roles_ptr[i - 1]) {
      unmap();
      fail("role ids not increasing in " + path.string());
    }
  }

  roles_ = {roles_ptr, static_cast<std::size_t>(k)};
  users_ = {{users_ptr, static_cast<std::size_t>(k + 1)},
            {users_idx, static_cast<std::size_t>(users_nnz)},
            static_cast<std::size_t>(users_cols)};
  perms_ = {{perms_ptr, static_cast<std::size_t>(k + 1)},
            {perms_idx, static_cast<std::size_t>(perms_nnz)},
            static_cast<std::size_t>(perms_cols)};
}

void MmapBody::unmap() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
  roles_ = {};
  users_ = {};
  perms_ = {};
}

MmapBody::~MmapBody() { unmap(); }

MmapBody::MmapBody(MmapBody&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_size_(std::exchange(other.map_size_, 0)),
      roles_(std::exchange(other.roles_, {})),
      users_(std::exchange(other.users_, {})),
      perms_(std::exchange(other.perms_, {})) {}

MmapBody& MmapBody::operator=(MmapBody&& other) noexcept {
  if (this != &other) {
    unmap();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    roles_ = std::exchange(other.roles_, {});
    users_ = std::exchange(other.users_, {});
    perms_ = std::exchange(other.perms_, {});
  }
  return *this;
}

}  // namespace rolediet::store
