// DBSCAN — Density-Based Spatial Clustering of Applications with Noise
// (Ester, Kriegel, Sander, Xu — KDD 1996).
//
// This is the paper's *exact clustering* baseline (§III-C). The paper uses
// scikit-learn's DBSCAN with:
//   min_samples = 2   (even two akin roles form a group),
//   metric      = Hamming,
//   eps         = 0 (+epsilon) for same-set roles, or the similarity
//                 threshold t for similar-set roles.
// We reproduce the classic algorithm faithfully: core points (>= min_pts
// neighbors including self), density-reachable cluster expansion via a seed
// queue, border points joining the first cluster that reaches them, and
// noise labels for everything else. Region queries are brute force over all
// points — the same behaviour sklearn exhibits on high-dimensional binary
// data, and the source of the quadratic growth visible in Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/metric.hpp"
#include "linalg/row_store.hpp"
#include "util/execution_context.hpp"

namespace rolediet::cluster {

/// How eps-neighborhoods are computed.
enum class RegionStrategy {
  /// Scan all points per query — the paper's baseline behaviour (sklearn on
  /// high-dimensional binary data) and the source of the quadratic cost.
  kBruteForce,
  /// Candidate generation through an inverted column -> rows index using the
  /// set identity d = |Ri| + |Rj| - 2g (Hamming metric only). An optimized
  /// exact DBSCAN for sparse data — the ablation that shows the role-diet
  /// method's win is algorithmic (one sweep, no clustering machinery), not
  /// merely brute force vs index.
  kInvertedIndex,
};

struct DbscanParams {
  /// Maximum distance between neighbors. Integer-valued; Hamming eps = 0
  /// means "identical rows" (the +epsilon in the paper only guards float
  /// comparisons, which integers do not need).
  std::size_t eps = 0;
  /// Minimum neighborhood size (including the point itself) for a core point.
  std::size_t min_pts = 2;
  MetricKind metric = MetricKind::kHamming;
  /// Worker threads for the region-query phase, under the library-wide knob
  /// convention documented in util/thread_pool.hpp (1 = sequential,
  /// 0 = shared default pool, N >= 2 = private pool of N workers).
  std::size_t threads = 1;
  /// kInvertedIndex requires the Hamming metric; throws otherwise.
  RegionStrategy region_strategy = RegionStrategy::kBruteForce;
};

struct DbscanResult {
  /// Cluster label per point: 0..n_clusters-1, or kNoise.
  std::vector<std::int32_t> labels;
  std::size_t n_clusters = 0;
  /// Work counters: how many eps-neighborhood scans ran and how many
  /// pairwise distances they evaluated. For brute-force region queries
  /// distance_evaluations == region_queries * n — the measurable footprint
  /// of the quadratic growth in Fig. 3.
  std::size_t region_queries = 0;
  std::size_t distance_evaluations = 0;

  static constexpr std::int32_t kNoise = -1;

  /// Points grouped by label (noise and unvisited excluded); group g holds
  /// the points with label g, in increasing point order.
  [[nodiscard]] std::vector<std::vector<std::size_t>> clusters() const;
};

/// Clusters the rows of `points` (a view over either matrix backend — a
/// BitMatrix or CsrMatrix converts implicitly). Deterministic: points are
/// seeded in index order, so label assignment is reproducible, and every
/// kernel returns the same integers on both backends, so labels and work
/// counters are backend-independent too.
///
/// `ctx` is checked once per region query: when it expires mid-run the scan
/// stops, unvisited points keep a negative label, and every cluster already
/// emitted contains only genuinely density-connected points (clusters are
/// grown one verified neighborhood at a time, so a truncated run never
/// fabricates a merge — it can only leave clusters unfinished).
[[nodiscard]] DbscanResult dbscan(const linalg::RowStore& points, const DbscanParams& params,
                                  const util::ExecutionContext& ctx);
[[nodiscard]] inline DbscanResult dbscan(const linalg::RowStore& points,
                                         const DbscanParams& params) {
  return dbscan(points, params, util::unlimited_context());
}

}  // namespace rolediet::cluster
