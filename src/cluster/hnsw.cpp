#include "cluster/hnsw.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <unordered_set>

#include "util/thread_pool.hpp"

namespace rolediet::cluster {

namespace {

/// Orders a max-heap of Neighbors by distance (furthest on top).
struct FurthestFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.dist < b.dist;
  }
};

/// Orders a min-heap of Neighbors by distance (nearest on top).
struct NearestFirst {
  bool operator()(const Neighbor& a, const Neighbor& b) const noexcept {
    return a.dist > b.dist;
  }
};

}  // namespace

HnswIndex::HnswIndex(linalg::RowStore points, HnswParams params)
    : points_(points),
      params_(params),
      level_mult_(1.0 / std::log(static_cast<double>(std::max<std::size_t>(2, params.m)))),
      rng_(params.seed),
      slot_of_id_(points.rows(), -1) {
  if (params_.m < 2) throw std::invalid_argument("HnswParams::m must be >= 2");
  nodes_.reserve(points.rows());
}

HnswIndex::HnswIndex(HnswIndex&& other) noexcept
    : points_(other.points_),
      params_(other.params_),
      level_mult_(other.level_mult_),
      rng_(other.rng_),
      nodes_(std::move(other.nodes_)),
      slot_of_id_(std::move(other.slot_of_id_)),
      entry_point_(other.entry_point_),
      max_level_(other.max_level_),
      distance_evals_(other.distance_evals_.load(std::memory_order_relaxed)) {}

HnswIndex& HnswIndex::operator=(HnswIndex&& other) noexcept {
  if (this == &other) return *this;
  points_ = other.points_;
  params_ = other.params_;
  level_mult_ = other.level_mult_;
  rng_ = other.rng_;
  nodes_ = std::move(other.nodes_);
  slot_of_id_ = std::move(other.slot_of_id_);
  entry_point_ = other.entry_point_;
  max_level_ = other.max_level_;
  distance_evals_.store(other.distance_evals_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return *this;
}

int HnswIndex::draw_level() noexcept {
  // Exponential distribution truncated to a sane ceiling; matches the
  // -ln(U) * mult draw from the paper.
  const double u = std::max(rng_.uniform01(), 1e-12);
  const int level = static_cast<int>(-std::log(u) * level_mult_);
  return std::min(level, 48);
}

void HnswIndex::dist_to_gather(const QueryRef& q, std::span<const std::uint32_t> ids,
                               std::size_t* out) const noexcept {
  distance_evals_.fetch_add(ids.size(), std::memory_order_relaxed);
  if (q.row >= 0) {
    distance_gather(params_.metric, points_, static_cast<std::size_t>(q.row), ids, out);
    return;
  }
  for (std::size_t k = 0; k < ids.size(); ++k)
    out[k] = distance_to_packed(params_.metric, points_, q.packed, ids[k]);
}

Neighbor HnswIndex::greedy_step(const QueryRef& q, Neighbor entry, int layer) const {
  bool improved = true;
  while (improved) {
    improved = false;
    const auto& links = nodes_[static_cast<std::size_t>(slot_of_id_[entry.id])]
                            .links[static_cast<std::size_t>(layer)];
    for (std::uint32_t nb_slot : links) {
      const std::size_t nb_id = nodes_[nb_slot].id;
      const std::size_t d = dist_to(q, nb_id);
      if (d < entry.dist) {
        entry = {nb_id, d};
        improved = true;
      }
    }
  }
  return entry;
}

std::vector<Neighbor> HnswIndex::search_layer(const QueryRef& q, Neighbor entry, std::size_t ef,
                                              int layer) const {
  std::unordered_set<std::size_t> visited;
  visited.insert(entry.id);

  // candidates: nearest first (to expand); results: furthest first (to prune).
  std::priority_queue<Neighbor, std::vector<Neighbor>, NearestFirst> candidates;
  std::priority_queue<Neighbor, std::vector<Neighbor>, FurthestFirst> results;
  candidates.push(entry);
  results.push(entry);

  // Per-expansion scratch: the unvisited neighbors of the current node are
  // gathered and scored in one batched kernel pass, then folded into the
  // heaps in the same order the per-link loop used — distances don't depend
  // on heap state, so the search trajectory is unchanged.
  std::vector<std::uint32_t> batch_ids;
  std::vector<std::size_t> batch_dist;

  while (!candidates.empty()) {
    const Neighbor current = candidates.top();
    candidates.pop();
    if (current.dist > results.top().dist && results.size() >= ef) break;

    const auto& links = nodes_[static_cast<std::size_t>(slot_of_id_[current.id])]
                            .links[static_cast<std::size_t>(layer)];
    batch_ids.clear();
    for (std::uint32_t nb_slot : links) {
      const std::size_t nb_id = nodes_[nb_slot].id;
      if (!visited.insert(nb_id).second) continue;
      batch_ids.push_back(static_cast<std::uint32_t>(nb_id));
    }
    if (batch_ids.empty()) continue;
    batch_dist.resize(batch_ids.size());
    dist_to_gather(q, batch_ids, batch_dist.data());
    for (std::size_t k = 0; k < batch_ids.size(); ++k) {
      const std::size_t nb_id = batch_ids[k];
      const std::size_t d = batch_dist[k];
      if (results.size() < ef || d < results.top().dist) {
        candidates.push({nb_id, d});
        results.push({nb_id, d});
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<Neighbor> out(results.size());
  for (std::size_t i = results.size(); i-- > 0;) {
    out[i] = results.top();
    results.pop();
  }
  return out;  // nearest first
}

std::vector<std::uint32_t> HnswIndex::select_neighbors(std::size_t /*node_id*/,
                                                       std::vector<Neighbor> candidates,
                                                       std::size_t m) const {
  // SELECT-NEIGHBORS-HEURISTIC (Alg. 4): accept a candidate only if it is
  // closer to the query node than to every already-accepted neighbor. This
  // keeps edges pointing in diverse directions, which is what makes the
  // small-world graph navigable. Rejected candidates are kept in discard
  // order and used to top up if too few survive (keepPrunedConnections).
  std::vector<Neighbor> accepted;
  std::vector<Neighbor> discarded;
  accepted.reserve(m);

  for (const Neighbor& cand : candidates) {  // candidates arrive nearest first
    if (accepted.size() >= m) break;
    bool diverse = true;
    for (const Neighbor& kept : accepted) {
      const std::size_t d_to_kept = dist(cand.id, kept.id);
      if (d_to_kept < cand.dist) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      accepted.push_back(cand);
    } else {
      discarded.push_back(cand);
    }
  }
  for (const Neighbor& cand : discarded) {
    if (accepted.size() >= m) break;
    accepted.push_back(cand);
  }

  std::vector<std::uint32_t> out;
  out.reserve(accepted.size());
  for (const Neighbor& nb : accepted)
    out.push_back(static_cast<std::uint32_t>(slot_of_id_[nb.id]));
  return out;
}

void HnswIndex::shrink_links(std::uint32_t node, int layer) {
  auto& links = nodes_[node].links[static_cast<std::size_t>(layer)];
  const std::size_t cap = layer_capacity(layer);
  if (links.size() <= cap) return;

  std::vector<Neighbor> candidates;
  candidates.reserve(links.size());
  for (std::uint32_t nb_slot : links)
    candidates.push_back({nodes_[nb_slot].id, dist(nodes_[node].id, nodes_[nb_slot].id)});
  std::sort(candidates.begin(), candidates.end(),
            [](const Neighbor& a, const Neighbor& b) { return a.dist < b.dist; });
  links = select_neighbors(nodes_[node].id, std::move(candidates), cap);

  // Re-attach anchor edges the heuristic dropped. Anchors form a spanning
  // tree of the layer-0 graph; keeping them (even slightly above the cap)
  // guarantees every node remains reachable from the entry point.
  if (layer == 0) {
    for (std::uint32_t anchor : nodes_[node].anchors) {
      if (std::find(links.begin(), links.end(), anchor) == links.end()) {
        links.push_back(anchor);
      }
    }
  }
}

void HnswIndex::add(std::size_t id) {
  if (id >= points_.rows()) throw std::out_of_range("HnswIndex::add: row id out of range");
  // The viewed matrix may have grown since construction (live engine index).
  if (slot_of_id_.size() < points_.rows()) slot_of_id_.resize(points_.rows(), -1);
  if (slot_of_id_[id] != -1) throw std::invalid_argument("HnswIndex::add: id already indexed");
  add_with_level(id, draw_level());
}

void HnswIndex::remove(std::size_t id) {
  if (id >= slot_of_id_.size() || slot_of_id_[id] < 0)
    throw std::out_of_range("HnswIndex::remove: id not indexed");
  // Tombstone only: links and anchors stay, so the node keeps routing and
  // layer-0 reachability of everything behind it is preserved.
  nodes_[static_cast<std::size_t>(slot_of_id_[id])].deleted = true;
}

bool HnswIndex::contains(std::size_t id) const noexcept {
  return id < slot_of_id_.size() && slot_of_id_[id] >= 0 &&
         !nodes_[static_cast<std::size_t>(slot_of_id_[id])].deleted;
}

void HnswIndex::reinsert(std::size_t id) {
  if (id >= slot_of_id_.size() || slot_of_id_[id] < 0)
    throw std::out_of_range("HnswIndex::reinsert: id not indexed");
  const auto slot = static_cast<std::uint32_t>(slot_of_id_[id]);
  nodes_[slot].deleted = false;
  if (nodes_.size() == 1) return;  // nothing to link against

  // Same two-phase descent as add_with_level(), against the node's *new* row
  // contents. The node is already in the graph, so the searches can (and
  // usually do) find it — it must be dropped from the candidate lists before
  // neighbor selection, or it would be its own nearest neighbor.
  const int level = nodes_[slot].level;
  const QueryRef q{static_cast<std::ptrdiff_t>(id), {}};
  Neighbor entry{nodes_[static_cast<std::size_t>(entry_point_)].id,
                 dist_to(q, nodes_[static_cast<std::size_t>(entry_point_)].id)};
  for (int layer = max_level_; layer > level; --layer) {
    entry = greedy_step(q, entry, layer);
  }
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<Neighbor> found = search_layer(q, entry, params_.ef_construction, layer);
    entry = found.front();  // self (dist 0) is a fine descent entry
    std::erase_if(found, [id](const Neighbor& nb) { return nb.id == id; });
    if (found.empty()) continue;

    // Append-and-dedupe instead of replacing: existing edges are still valid
    // graph edges (stale ones are harmless — consumers verify distances
    // exactly), and dropping them could orphan a neighbor whose only in-link
    // we were. shrink_links() re-prunes by the new distances.
    auto& my_links = nodes_[slot].links[static_cast<std::size_t>(layer)];
    for (std::uint32_t nb_slot : select_neighbors(id, std::move(found), params_.m)) {
      if (nb_slot == slot) continue;
      if (std::find(my_links.begin(), my_links.end(), nb_slot) == my_links.end())
        my_links.push_back(nb_slot);
      auto& their_links = nodes_[nb_slot].links[static_cast<std::size_t>(layer)];
      if (std::find(their_links.begin(), their_links.end(), slot) == their_links.end()) {
        their_links.push_back(slot);
        shrink_links(nb_slot, layer);
      }
    }
    shrink_links(slot, layer);
  }
}

void HnswIndex::add_with_level(std::size_t id, int level) {
  const auto slot = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.id = id;
  node.level = level;
  node.links.resize(static_cast<std::size_t>(level) + 1);
  nodes_.push_back(std::move(node));
  slot_of_id_[id] = static_cast<std::int32_t>(slot);

  if (entry_point_ < 0) {
    entry_point_ = static_cast<std::int32_t>(slot);
    max_level_ = level;
    return;
  }

  const QueryRef q{static_cast<std::ptrdiff_t>(id), {}};
  Neighbor entry{nodes_[static_cast<std::size_t>(entry_point_)].id,
                 dist_to(q, nodes_[static_cast<std::size_t>(entry_point_)].id)};

  // Phase 1: greedy descent through layers above the new node's level.
  for (int layer = max_level_; layer > level; --layer) {
    entry = greedy_step(q, entry, layer);
  }

  // Phase 2: at each layer from min(level, max_level_) down to 0, run a beam
  // search, link bidirectionally, and prune overfull neighbors.
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<Neighbor> found = search_layer(q, entry, params_.ef_construction, layer);
    entry = found.front();

    // Per the published algorithm the new node selects M connections; the
    // larger layer-0 cap (2M) applies only as the shrink limit for nodes
    // accumulating back-links.
    std::vector<std::uint32_t> selected = select_neighbors(id, found, params_.m);
    auto& my_links = nodes_[slot].links[static_cast<std::size_t>(layer)];
    my_links = selected;

    if (layer == 0) {
      // Spanning-tree anchor: permanently pair the new node with the nearest
      // node found at layer 0 (see Node::anchors).
      const auto anchor_slot = static_cast<std::uint32_t>(slot_of_id_[entry.id]);
      nodes_[slot].anchors.push_back(anchor_slot);
      nodes_[anchor_slot].anchors.push_back(slot);
      if (std::find(my_links.begin(), my_links.end(), anchor_slot) == my_links.end())
        my_links.push_back(anchor_slot);
    }

    for (std::uint32_t nb_slot : my_links) {
      nodes_[nb_slot].links[static_cast<std::size_t>(layer)].push_back(slot);
      shrink_links(nb_slot, layer);
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = static_cast<std::int32_t>(slot);
  }
}

void HnswIndex::add_all(const util::ExecutionContext& ctx) {
  for (std::size_t id = 0; id < points_.rows(); ++id) {
    if (ctx.expired()) break;
    add(id);
  }
}

void HnswIndex::add_all_parallel(std::size_t threads, std::size_t batch_size,
                                 const util::ExecutionContext& ctx) {
  if (!nodes_.empty())
    throw std::invalid_argument("HnswIndex::add_all_parallel: index must be empty");
  const std::size_t n = points_.rows();
  if (n == 0) return;
  batch_size = std::max<std::size_t>(1, batch_size);
  util::Parallelism par(threads);

  // Pre-draw every level in row order — the exact sequence add_all() draws.
  std::vector<int> levels(n);
  for (auto& level : levels) level = draw_level();

  // Seed the graph so every batch has a snapshot entry point.
  add_with_level(0, levels[0]);

  // Per batch member: the neighbor slots selected against the snapshot.
  struct Plan {
    std::vector<std::vector<std::uint32_t>> selected;  // [layer] -> slots
    std::uint32_t anchor_slot = 0;                     // nearest at layer 0
  };

  for (std::size_t next = 1; next < n; next += batch_size) {
    if (ctx.expired()) break;  // stop at a batch boundary; the graph is valid
    const std::size_t batch_end = std::min(n, next + batch_size);
    const std::size_t batch = batch_end - next;
    const int snapshot_max = max_level_;
    const std::size_t snapshot_entry = nodes_[static_cast<std::size_t>(entry_point_)].id;

    // Phase 1 — search: every member descends the frozen snapshot and picks
    // its neighbors. Read-only on the graph, so members split freely.
    std::vector<Plan> plans(batch);
    par.parallel_for(
        batch,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const std::size_t id = next + k;
            const int level = levels[id];
            const QueryRef q{static_cast<std::ptrdiff_t>(id), {}};
            Plan& plan = plans[k];
            plan.selected.resize(static_cast<std::size_t>(std::min(level, snapshot_max)) + 1);

            Neighbor entry{snapshot_entry, dist_to(q, snapshot_entry)};
            for (int layer = snapshot_max; layer > level; --layer) {
              entry = greedy_step(q, entry, layer);
            }
            for (int layer = std::min(level, snapshot_max); layer >= 0; --layer) {
              std::vector<Neighbor> found =
                  search_layer(q, entry, params_.ef_construction, layer);
              entry = found.front();
              plan.selected[static_cast<std::size_t>(layer)] =
                  select_neighbors(id, found, params_.m);
              if (layer == 0)
                plan.anchor_slot = static_cast<std::uint32_t>(slot_of_id_[entry.id]);
            }
          }
        },
        /*grain=*/1);  // each member runs full beam searches — chunk finely

    // Phase 2a — materialize the batch's nodes in row order (assigns slots;
    // no link vector reallocates after this point).
    int num_layers = 0;
    for (std::size_t k = 0; k < batch; ++k) {
      const std::size_t id = next + k;
      Node node;
      node.id = id;
      node.level = levels[id];
      node.links.resize(static_cast<std::size_t>(levels[id]) + 1);
      slot_of_id_[id] = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(std::move(node));
      num_layers = std::max(num_layers, static_cast<int>(plans[k].selected.size()));
    }

    // Phase 2b — link application, one worker per layer. Link lists at
    // different layers are disjoint, and each layer's lock serializes all
    // mutations of that layer (anchors belong to layer 0); within a layer,
    // members apply in row order, so the result is independent of how the
    // layers are distributed over threads.
    std::vector<std::mutex> layer_locks(static_cast<std::size_t>(std::max(num_layers, 1)));
    par.parallel_for(
        static_cast<std::size_t>(num_layers),
        [&](std::size_t layer_begin, std::size_t layer_end) {
          for (std::size_t l = layer_begin; l < layer_end; ++l) {
            std::scoped_lock lock(layer_locks[l]);
            const int layer = static_cast<int>(l);
            for (std::size_t k = 0; k < batch; ++k) {
              Plan& plan = plans[k];
              if (l >= plan.selected.size()) continue;
              const auto slot = static_cast<std::uint32_t>(slot_of_id_[next + k]);
              auto& my_links = nodes_[slot].links[l];
              my_links = plan.selected[l];
              if (layer == 0) {
                // Spanning-tree anchor, exactly as in add().
                nodes_[slot].anchors.push_back(plan.anchor_slot);
                nodes_[plan.anchor_slot].anchors.push_back(slot);
                if (std::find(my_links.begin(), my_links.end(), plan.anchor_slot) ==
                    my_links.end())
                  my_links.push_back(plan.anchor_slot);
              }
              for (std::uint32_t nb_slot : my_links) {
                nodes_[nb_slot].links[l].push_back(slot);
                shrink_links(nb_slot, layer);
              }
            }
          }
        },
        /*grain=*/1);

    // Phase 2c — entry-point promotion in row order, as add() would.
    for (std::size_t k = 0; k < batch; ++k) {
      if (levels[next + k] > max_level_) {
        max_level_ = levels[next + k];
        entry_point_ = slot_of_id_[next + k];
      }
    }
  }
}

std::optional<std::size_t> HnswIndex::entry_id() const noexcept {
  if (entry_point_ < 0) return std::nullopt;
  return nodes_[static_cast<std::size_t>(entry_point_)].id;
}

std::vector<std::size_t> HnswIndex::neighbors_of(std::size_t id, int layer) const {
  if (id >= slot_of_id_.size() || slot_of_id_[id] < 0)
    throw std::out_of_range("HnswIndex::neighbors_of: id not indexed");
  const Node& node = nodes_[static_cast<std::size_t>(slot_of_id_[id])];
  if (layer < 0 || layer > node.level) return {};
  std::vector<std::size_t> out;
  for (std::uint32_t nb_slot : node.links[static_cast<std::size_t>(layer)])
    out.push_back(nodes_[nb_slot].id);
  return out;
}

std::vector<Neighbor> HnswIndex::search_query(const QueryRef& q, std::size_t k) const {
  if (entry_point_ < 0) return {};
  Neighbor entry{nodes_[static_cast<std::size_t>(entry_point_)].id,
                 dist_to(q, nodes_[static_cast<std::size_t>(entry_point_)].id)};
  for (int layer = max_level_; layer > 0; --layer) {
    entry = greedy_step(q, entry, layer);
  }
  std::vector<Neighbor> found = search_layer(q, entry, std::max(params_.ef_search, k), 0);
  std::erase_if(found, [this](const Neighbor& nb) {
    return nodes_[static_cast<std::size_t>(slot_of_id_[nb.id])].deleted;
  });
  if (found.size() > k) found.resize(k);
  return found;
}

std::vector<Neighbor> HnswIndex::search_vector(std::span<const std::uint64_t> query,
                                               std::size_t k) const {
  return search_query(QueryRef{-1, query}, k);
}

std::vector<Neighbor> HnswIndex::search(std::size_t query_id, std::size_t k) const {
  if (query_id >= points_.rows())
    throw std::out_of_range("HnswIndex::search: row id out of range");
  return search_query(QueryRef{static_cast<std::ptrdiff_t>(query_id), {}}, k);
}

std::vector<Neighbor> HnswIndex::range_search(std::size_t query_id, std::size_t radius,
                                              std::size_t min_ef) const {
  if (query_id >= points_.rows())
    throw std::out_of_range("HnswIndex::range_search: row id out of range");
  if (entry_point_ < 0) return {};

  const QueryRef q{static_cast<std::ptrdiff_t>(query_id), {}};
  Neighbor entry{nodes_[static_cast<std::size_t>(entry_point_)].id,
                 dist_to(q, nodes_[static_cast<std::size_t>(entry_point_)].id)};
  for (int layer = max_level_; layer > 0; --layer) {
    entry = greedy_step(q, entry, layer);
  }
  std::vector<Neighbor> found =
      search_layer(q, entry, std::max(params_.ef_search, min_ef), 0);
  std::erase_if(found, [this, radius](const Neighbor& nb) {
    return nb.dist > radius ||
           nodes_[static_cast<std::size_t>(slot_of_id_[nb.id])].deleted;
  });
  return found;
}

}  // namespace rolediet::cluster
