// HNSW — Hierarchical Navigable Small World graphs for approximate nearest
// neighbor search (Malkov & Yashunin, 2018).
//
// This is the paper's *approximate clustering* baseline (§III-C): build an
// index over all role rows with Manhattan distance (== Hamming on binary
// data), then query each role for near neighbors. Approximate search trades
// recall for speed — the paper argues missed group members are acceptable
// because the cleanup job re-runs periodically.
//
// Full implementation of the published algorithm:
//  - exponentially distributed level assignment, mult = 1/ln(M);
//  - greedy single-entry descent through the upper layers (Alg. 2 with ef=1);
//  - beam search with dynamic candidate list of width ef at the target layer
//    (SEARCH-LAYER, Alg. 2);
//  - neighbor selection by the distance heuristic (SELECT-NEIGHBORS-HEURISTIC,
//    Alg. 4) which keeps diverse edges, with keep-pruned-connections;
//  - bidirectional linking with per-layer degree caps (M at layers >= 1,
//    2M at layer 0), pruned by the same heuristic.
//
// Determinism: level draws come from a seeded xoshiro PRNG, so index
// construction and therefore search results are reproducible.
//
// Steady-state maintenance (core::AuditEngine): remove() tombstones a node
// instead of unlinking it — the dead node keeps routing traffic as a graph
// waypoint but is filtered from results — and reinsert() revives a node in
// place after its row mutated, re-running the insertion searches against the
// row's new contents and appending the fresh edges. Tombstones make deletion
// O(1) and preserve the spanning-tree anchors; the cost is that dead nodes
// still pay distance evaluations during traversal, which is the right trade
// for audit workloads where revoked roles are a small minority per delta.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/metric.hpp"
#include "linalg/row_store.hpp"
#include "util/execution_context.hpp"
#include "util/prng.hpp"

namespace rolediet::cluster {

struct HnswParams {
  std::size_t m = 16;                ///< max out-degree per node on layers >= 1
  std::size_t ef_construction = 200; ///< beam width during insertion
  std::size_t ef_search = 64;        ///< beam width during queries
  std::uint64_t seed = 42;           ///< level-assignment PRNG seed
  /// Distance between rows. Hamming (== Manhattan on 0/1 data, the paper's
  /// setting) or scaled Jaccard for relative similarity.
  MetricKind metric = MetricKind::kHamming;
};

/// A search hit: point id and its distance to the query.
struct Neighbor {
  std::size_t id = 0;
  std::size_t dist = 0;

  [[nodiscard]] bool operator==(const Neighbor&) const noexcept = default;
};

/// HNSW index over the rows of a row store — either matrix backend (a
/// BitMatrix or CsrMatrix converts implicitly). The viewed matrix must
/// outlive the index (rows are referenced, not copied). Distances are
/// backend-invariant, so given the same seed both backends build the same
/// graph and return the same search results.
class HnswIndex {
 public:
  HnswIndex(linalg::RowStore points, HnswParams params);

  // Movable (the engine's HNSW artifact moves with its engine; the viewed
  // matrix is external, so the view survives). The distance counter is the
  // one non-default member: it carries over, single-owner at move time.
  HnswIndex(HnswIndex&& other) noexcept;
  HnswIndex& operator=(HnswIndex&& other) noexcept;
  HnswIndex(const HnswIndex&) = delete;
  HnswIndex& operator=(const HnswIndex&) = delete;

  /// Inserts point `id` (a row of the matrix). Each id may be added once;
  /// use reinsert() to refresh an id whose row contents changed, and
  /// remove() to retire one. If the viewed matrix has grown since the last
  /// insertion, the id map grows with it, so new rows can be added to a
  /// live index.
  void add(std::size_t id);

  /// Tombstones point `id`: it stops appearing in search results but stays
  /// in the graph as a routing waypoint (its links and anchors are kept, so
  /// layer-0 reachability is unaffected). Idempotent; throws only if `id`
  /// was never indexed.
  void remove(std::size_t id);

  /// Revives point `id` in place after its row contents changed (and/or
  /// after remove()): clears the tombstone, re-runs the insertion-time beam
  /// searches against the new row contents, and appends the freshly selected
  /// edges bidirectionally (existing edges are kept — stale links are
  /// harmless because callers verify distances exactly; overfull lists are
  /// re-pruned). Throws if `id` was never indexed.
  void reinsert(std::size_t id);

  /// True iff `id` is indexed and not tombstoned.
  [[nodiscard]] bool contains(std::size_t id) const noexcept;

  /// Builds the index over all rows in index order. `ctx` is checked once
  /// per insert: a cancelled build leaves a valid index over the rows added
  /// so far (searches simply cannot reach the missing rows).
  void add_all(const util::ExecutionContext& ctx = util::unlimited_context());

  /// Batch-synchronous parallel construction over all rows (index must be
  /// empty). Rows are inserted in fixed batches of `batch_size`; within a
  /// batch, the searches and neighbor selections run concurrently against
  /// the graph frozen at the batch boundary, then links are applied with one
  /// worker per layer, each guarded by that layer's lock (link lists at
  /// different layers are disjoint; within a layer, application follows row
  /// order). Levels are pre-drawn in row order, so they match add_all()'s
  /// draws exactly.
  ///
  /// Determinism: the graph depends only on (seed, batch_size) — never on
  /// `threads` (knob convention in util/thread_pool.hpp) — so any two thread
  /// counts build byte-identical indexes. It differs from add_all()'s graph,
  /// though, because batch members do not see one another during search;
  /// recall characteristics stay comparable (anchors still span the graph).
  ///
  /// `ctx` is checked once per batch; a cancelled build stops at the last
  /// completed batch boundary and leaves a valid index over those rows.
  void add_all_parallel(std::size_t threads, std::size_t batch_size = 64,
                        const util::ExecutionContext& ctx = util::unlimited_context());

  /// Number of graph nodes, *including* tombstones.
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// k approximate nearest neighbors of row `query_id`, nearest first.
  /// The query point itself is included if indexed (distance 0).
  /// Tombstoned points never appear in results (here or in the other
  /// search entry points), though they may have carried the beam.
  [[nodiscard]] std::vector<Neighbor> search(std::size_t query_id, std::size_t k) const;

  /// k approximate nearest neighbors of an external packed vector of
  /// util::words_for_bits(cols) words — works on either backend (sparse rows
  /// are probed against the packed query without densifying).
  [[nodiscard]] std::vector<Neighbor> search_vector(std::span<const std::uint64_t> query,
                                                    std::size_t k) const;

  /// All indexed points within `radius` of row `query_id` that the beam of
  /// width max(ef_search, min_ef) reaches. Approximate: recall < 1 possible.
  [[nodiscard]] std::vector<Neighbor> range_search(std::size_t query_id, std::size_t radius,
                                                   std::size_t min_ef = 0) const;

  /// Current top layer of the hierarchy (for diagnostics/tests).
  [[nodiscard]] int max_level() const noexcept { return max_level_; }

  /// Row id of the current entry point; nullopt while the index is empty.
  [[nodiscard]] std::optional<std::size_t> entry_id() const noexcept;

  /// Out-neighbors (row ids) of `id` at `layer`. Diagnostic/test hook.
  [[nodiscard]] std::vector<std::size_t> neighbors_of(std::size_t id, int layer) const;

  /// Total pairwise distance evaluations since construction (build + all
  /// queries; relaxed atomic, so concurrent searches count correctly).
  /// Contrast with DBSCAN's n-squared count to see where the Fig. 3
  /// crossover comes from.
  [[nodiscard]] std::size_t distance_evaluations() const noexcept {
    return distance_evals_.load(std::memory_order_relaxed);
  }

 private:
  struct Node {
    std::size_t id = 0;
    int level = 0;
    /// Tombstone: the node still routes searches (links/anchors intact) but
    /// is filtered from every result list. Cleared by reinsert().
    bool deleted = false;
    /// links[l] = neighbor slots at layer l, 0 <= l <= level.
    std::vector<std::vector<std::uint32_t>> links;
    /// Layer-0 anchor edges: one per adjacent spanning-tree edge. Anchors are
    /// permanent — shrink_links() never removes them — so the layer-0 graph
    /// always contains a spanning tree of bidirectional edges and every node
    /// stays reachable from the entry point. Without this, heavy distance
    /// ties (binary RBAC rows) let the diversity heuristic erode all in-links
    /// of non-hub nodes and whole regions become unsearchable.
    std::vector<std::uint32_t> anchors;
  };

  /// A query point: either an indexed row (row >= 0) or an external packed
  /// vector. Row queries go through the backend's row kernels; packed queries
  /// probe rows against the packed words directly.
  struct QueryRef {
    std::ptrdiff_t row = -1;
    std::span<const std::uint64_t> packed;
  };

  [[nodiscard]] std::size_t dist(std::size_t a, std::size_t b) const noexcept {
    distance_evals_.fetch_add(1, std::memory_order_relaxed);
    return distance(params_.metric, points_, a, b);
  }
  [[nodiscard]] std::size_t dist_to(const QueryRef& q, std::size_t b) const noexcept {
    distance_evals_.fetch_add(1, std::memory_order_relaxed);
    if (q.row >= 0)
      return distance(params_.metric, points_, static_cast<std::size_t>(q.row), b);
    return distance_to_packed(params_.metric, points_, q.packed, b);
  }

  /// Batched dist_to over a gathered id list: out[k] = dist_to(q, ids[k]),
  /// scored through the SIMD-dispatched gather kernels for row queries
  /// (identical integers, one distance_evals bump per id).
  void dist_to_gather(const QueryRef& q, std::span<const std::uint32_t> ids,
                      std::size_t* out) const noexcept;

  /// Greedy descent at one layer from `entry`, moving to any strictly closer
  /// neighbor until a local minimum (Alg. 2 specialized to ef = 1).
  [[nodiscard]] Neighbor greedy_step(const QueryRef& q, Neighbor entry, int layer) const;

  /// Beam search (SEARCH-LAYER): returns up to `ef` nearest candidates found
  /// from `entry` at `layer`, sorted nearest first.
  [[nodiscard]] std::vector<Neighbor> search_layer(const QueryRef& q, Neighbor entry,
                                                   std::size_t ef, int layer) const;

  /// Shared descent for search()/search_vector(): greedy through the upper
  /// layers, then a beam of width max(ef_search, k) at layer 0.
  [[nodiscard]] std::vector<Neighbor> search_query(const QueryRef& q, std::size_t k) const;

  /// SELECT-NEIGHBORS-HEURISTIC: picks up to `m` diverse neighbors from
  /// `candidates` (sorted nearest first).
  [[nodiscard]] std::vector<std::uint32_t> select_neighbors(std::size_t node_id,
                                                            std::vector<Neighbor> candidates,
                                                            std::size_t m) const;

  /// Re-prunes `node`'s link list at `layer` when it exceeds the cap.
  /// Anchor edges (layer 0) are always retained, even above the cap.
  void shrink_links(std::uint32_t node, int layer);

  [[nodiscard]] int draw_level() noexcept;
  [[nodiscard]] std::size_t layer_capacity(int layer) const noexcept {
    return layer == 0 ? 2 * params_.m : params_.m;
  }

  /// add() with the level already drawn (the batched builder pre-draws all
  /// levels in row order so they match the serial sequence).
  void add_with_level(std::size_t id, int level);

  linalg::RowStore points_;  // non-owning view over the caller's matrix
  HnswParams params_;
  double level_mult_;
  util::Xoshiro256 rng_;

  std::vector<Node> nodes_;               // dense, slot == insertion order
  std::vector<std::int32_t> slot_of_id_;  // row id -> node slot, -1 if absent
  std::int32_t entry_point_ = -1;         // slot of the top-layer entry node
  int max_level_ = -1;
  mutable std::atomic<std::size_t> distance_evals_{0};
};

}  // namespace rolediet::cluster
