// Distance metrics over packed binary row vectors.
//
// The paper's parameterization (§III-C):
//  - roles sharing the *same* users coincide in space, so any metric works
//    with eps = 0;
//  - roles sharing *similar* users need a metric that counts differing
//    coordinates — Hamming distance. On 0/1 vectors Manhattan (L1) distance
//    equals Hamming distance, which is why the paper's HNSW baseline uses
//    Manhattan; we expose both names over the same kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "linalg/row_store.hpp"
#include "util/bitops.hpp"

namespace rolediet::cluster {

enum class MetricKind {
  kHamming,    ///< number of differing coordinates
  kManhattan,  ///< L1; identical to Hamming on binary vectors
  kJaccard,    ///< 1 - |a∩b| / |a∪b|, scaled — see jaccard_scaled()
};

/// Hamming distance between packed rows.
[[nodiscard]] inline std::size_t hamming(std::span<const std::uint64_t> a,
                                         std::span<const std::uint64_t> b) noexcept {
  return util::hamming_words(a, b);
}

/// Fixed-point scale for Jaccard dissimilarity: distances are integers in
/// [0, kJaccardScale], where kJaccardScale means "disjoint sets".
inline constexpr std::size_t kJaccardScale = 1'000'000;

/// Jaccard dissimilarity from set sizes: kJaccardScale * (1 - g / union)
/// with union = |a| + |b| - g. Exposed so the sparse co-occurrence method
/// computes bit-identical values to the dense kernel below (both use the
/// same integer division).
[[nodiscard]] constexpr std::size_t jaccard_scaled_from_counts(std::size_t size_a,
                                                               std::size_t size_b,
                                                               std::size_t g) noexcept {
  const std::size_t uni = size_a + size_b - g;
  if (uni == 0) return 0;  // two empty sets are identical
  return kJaccardScale - (g * kJaccardScale) / uni;
}

/// Jaccard *dissimilarity* scaled to integer space over packed rows.
/// Integer-valued so all metrics share one comparison type.
[[nodiscard]] inline std::size_t jaccard_scaled(std::span<const std::uint64_t> a,
                                                std::span<const std::uint64_t> b) noexcept {
  const std::size_t inter = util::intersection_words(a, b);
  const std::size_t pop_a = util::popcount_span(a);
  const std::size_t pop_b = util::popcount_span(b);
  return jaccard_scaled_from_counts(pop_a, pop_b, inter);
}

/// Dispatches on the metric kind. Hamming and Manhattan share the kernel.
[[nodiscard]] inline std::size_t distance(MetricKind kind, std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return hamming(a, b);
    case MetricKind::kJaccard:
      return jaccard_scaled(a, b);
  }
  return 0;  // unreachable
}

/// Backend-neutral dispatch over RowStore rows. The sparse path derives
/// Jaccard from the same integer formula as jaccard_scaled(), so both
/// backends return bit-identical distances.
[[nodiscard]] inline std::size_t distance(MetricKind kind, const linalg::RowStore& rows,
                                          std::size_t a, std::size_t b) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return rows.hamming(a, b);
    case MetricKind::kJaccard:
      return jaccard_scaled_from_counts(rows.row_size(a), rows.row_size(b),
                                        rows.intersection(a, b));
  }
  return 0;  // unreachable
}

/// Threshold variant: for Hamming/Manhattan, may return any value > `limit`
/// once the running distance exceeds it (early exit); Jaccard has no cheap
/// running bound and computes the exact distance.
[[nodiscard]] inline std::size_t distance_bounded(MetricKind kind, const linalg::RowStore& rows,
                                                  std::size_t a, std::size_t b,
                                                  std::size_t limit) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return rows.hamming_bounded(a, b, limit);
    case MetricKind::kJaccard:
      return jaccard_scaled_from_counts(rows.row_size(a), rows.row_size(b),
                                        rows.intersection(a, b));
  }
  return 0;  // unreachable
}

/// Distance from a packed query vector (util::words_for_bits(rows.cols())
/// words) to a stored row — the out-of-index query path (HNSW search_vector).
[[nodiscard]] inline std::size_t distance_to_packed(MetricKind kind, const linalg::RowStore& rows,
                                                    std::span<const std::uint64_t> q,
                                                    std::size_t b) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return rows.hamming_with_packed(q, b);
    case MetricKind::kJaccard:
      return jaccard_scaled_from_counts(util::popcount_span(q), rows.row_size(b),
                                        rows.intersection_with_packed(q, b));
  }
  return 0;  // unreachable
}

}  // namespace rolediet::cluster
