// Distance metrics over packed binary row vectors.
//
// The paper's parameterization (§III-C):
//  - roles sharing the *same* users coincide in space, so any metric works
//    with eps = 0;
//  - roles sharing *similar* users need a metric that counts differing
//    coordinates — Hamming distance. On 0/1 vectors Manhattan (L1) distance
//    equals Hamming distance, which is why the paper's HNSW baseline uses
//    Manhattan; we expose both names over the same kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "linalg/row_store.hpp"
#include "util/bitops.hpp"

namespace rolediet::cluster {

enum class MetricKind {
  kHamming,    ///< number of differing coordinates
  kManhattan,  ///< L1; identical to Hamming on binary vectors
  kJaccard,    ///< 1 - |a∩b| / |a∪b|, scaled — see jaccard_scaled()
};

/// Hamming distance between packed rows.
[[nodiscard]] inline std::size_t hamming(std::span<const std::uint64_t> a,
                                         std::span<const std::uint64_t> b) noexcept {
  return util::hamming_words(a, b);
}

/// Fixed-point scale for Jaccard dissimilarity: distances are integers in
/// [0, kJaccardScale], where kJaccardScale means "disjoint sets".
inline constexpr std::size_t kJaccardScale = 1'000'000;

/// Jaccard dissimilarity from set sizes: kJaccardScale * (1 - g / union)
/// with union = |a| + |b| - g. Exposed so the sparse co-occurrence method
/// computes bit-identical values to the dense kernel below (both use the
/// same integer division).
[[nodiscard]] constexpr std::size_t jaccard_scaled_from_counts(std::size_t size_a,
                                                               std::size_t size_b,
                                                               std::size_t g) noexcept {
  const std::size_t uni = size_a + size_b - g;
  if (uni == 0) return 0;  // two empty sets are identical
  return kJaccardScale - (g * kJaccardScale) / uni;
}

/// Jaccard *dissimilarity* scaled to integer space over packed rows.
/// Integer-valued so all metrics share one comparison type.
[[nodiscard]] inline std::size_t jaccard_scaled(std::span<const std::uint64_t> a,
                                                std::span<const std::uint64_t> b) noexcept {
  const std::size_t inter = util::intersection_words(a, b);
  const std::size_t pop_a = util::popcount_span(a);
  const std::size_t pop_b = util::popcount_span(b);
  return jaccard_scaled_from_counts(pop_a, pop_b, inter);
}

/// Dispatches on the metric kind. Hamming and Manhattan share the kernel.
[[nodiscard]] inline std::size_t distance(MetricKind kind, std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return hamming(a, b);
    case MetricKind::kJaccard:
      return jaccard_scaled(a, b);
  }
  return 0;  // unreachable
}

/// Backend-neutral dispatch over RowStore rows. The sparse path derives
/// Jaccard from the same integer formula as jaccard_scaled(), so both
/// backends return bit-identical distances.
[[nodiscard]] inline std::size_t distance(MetricKind kind, const linalg::RowStore& rows,
                                          std::size_t a, std::size_t b) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return rows.hamming(a, b);
    case MetricKind::kJaccard:
      return jaccard_scaled_from_counts(rows.row_size(a), rows.row_size(b),
                                        rows.intersection(a, b));
  }
  return 0;  // unreachable
}

/// BOUNDED threshold variant — the result is only comparable against
/// `limit`. For Hamming/Manhattan the kernel early-exits and returns exactly
/// `limit + 1` once the running distance exceeds the limit (the
/// RowStore::hamming_bounded contract); Jaccard has no cheap running bound
/// and computes the exact distance.
[[nodiscard]] inline std::size_t distance_bounded(MetricKind kind, const linalg::RowStore& rows,
                                                  std::size_t a, std::size_t b,
                                                  std::size_t limit) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return rows.hamming_bounded(a, b, limit);
    case MetricKind::kJaccard:
      return jaccard_scaled_from_counts(rows.row_size(a), rows.row_size(b),
                                        rows.intersection(a, b));
  }
  return 0;  // unreachable
}

/// Batched distance_bounded over the contiguous rows [first, first + count):
/// out[k] = distance_bounded(kind, rows, a, first + k, limit), computed via
/// the SIMD-dispatched block kernels on the dense backend. Same bounded
/// contract (Hamming results past `limit` come back as limit + 1), same
/// integers as count single-pair calls on every backend and dispatch target.
inline void distance_bounded_block(MetricKind kind, const linalg::RowStore& rows, std::size_t a,
                                   std::size_t first, std::size_t count, std::size_t limit,
                                   std::size_t* out) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      rows.hamming_bounded_block(a, first, count, limit, out);
      return;
    case MetricKind::kJaccard: {
      // Jaccard derives from the batched co-occurrence counts; the division
      // is the same integer formula as the single-pair path.
      rows.intersection_block(a, first, count, out);
      const std::size_t na = rows.row_size(a);
      for (std::size_t k = 0; k < count; ++k)
        out[k] = jaccard_scaled_from_counts(na, rows.row_size(first + k), out[k]);
      return;
    }
  }
}

/// Batched distance_bounded over a gathered index list: out[k] =
/// distance_bounded(kind, rows, a, idx[k], limit), same bounded contract.
inline void distance_bounded_gather(MetricKind kind, const linalg::RowStore& rows, std::size_t a,
                                    std::span<const std::uint32_t> idx, std::size_t limit,
                                    std::size_t* out) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      rows.hamming_bounded_gather(a, idx, limit, out);
      return;
    case MetricKind::kJaccard: {
      rows.intersection_gather(a, idx, out);
      const std::size_t na = rows.row_size(a);
      for (std::size_t k = 0; k < idx.size(); ++k)
        out[k] = jaccard_scaled_from_counts(na, rows.row_size(idx[k]), out[k]);
      return;
    }
  }
}

/// Batched distance over a gathered index list: out[k] = distance(kind,
/// rows, a, idx[k]). Amortizes the kernel dispatch-table fetch over the
/// list; identical integers to idx.size() single-pair calls.
inline void distance_gather(MetricKind kind, const linalg::RowStore& rows, std::size_t a,
                            std::span<const std::uint32_t> idx, std::size_t* out) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      rows.hamming_gather(a, idx, out);
      return;
    case MetricKind::kJaccard: {
      rows.intersection_gather(a, idx, out);
      const std::size_t na = rows.row_size(a);
      for (std::size_t k = 0; k < idx.size(); ++k)
        out[k] = jaccard_scaled_from_counts(na, rows.row_size(idx[k]), out[k]);
      return;
    }
  }
}

/// Distance from a packed query vector (util::words_for_bits(rows.cols())
/// words) to a stored row — the out-of-index query path (HNSW search_vector).
[[nodiscard]] inline std::size_t distance_to_packed(MetricKind kind, const linalg::RowStore& rows,
                                                    std::span<const std::uint64_t> q,
                                                    std::size_t b) noexcept {
  switch (kind) {
    case MetricKind::kHamming:
    case MetricKind::kManhattan:
      return rows.hamming_with_packed(q, b);
    case MetricKind::kJaccard:
      return jaccard_scaled_from_counts(util::popcount_span(q), rows.row_size(b),
                                        rows.intersection_with_packed(q, b));
  }
  return 0;  // unreachable
}

}  // namespace rolediet::cluster
