#include "cluster/dbscan.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <optional>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace rolediet::cluster {

namespace {

/// Rows scored per batched region-scan kernel call (see distance_bounded_block).
constexpr std::size_t kRegionBlock = 256;

/// Brute-force region query: all points within eps of `center` (inclusive),
/// including `center` itself — matching the original paper's definition of
/// the eps-neighborhood. Scans in contiguous blocks through the
/// SIMD-dispatched batch kernel; the bounded contract keeps verdicts
/// identical to the old pair-at-a-time loop on every backend and target.
std::vector<std::size_t> region_query(const linalg::RowStore& points, std::size_t center,
                                      const DbscanParams& params) {
  std::vector<std::size_t> neighbors;
  std::size_t scores[kRegionBlock];
  for (std::size_t first = 0; first < points.rows(); first += kRegionBlock) {
    const std::size_t count = std::min(kRegionBlock, points.rows() - first);
    distance_bounded_block(params.metric, points, center, first, count, params.eps, scores);
    for (std::size_t k = 0; k < count; ++k) {
      if (scores[k] <= params.eps) neighbors.push_back(first + k);
    }
  }
  return neighbors;
}

/// Precomputes all neighborhoods in parallel. Memory is O(sum of neighborhood
/// sizes); used when params.threads != 1 to amortize the quadratic distance
/// phase across cores before the (inherently sequential) expansion phase.
std::vector<std::vector<std::size_t>> all_region_queries(const linalg::RowStore& points,
                                                         const DbscanParams& params,
                                                         const util::ExecutionContext& ctx,
                                                         std::size_t& queries_out) {
  std::vector<std::vector<std::size_t>> neighborhoods(points.rows());
  std::atomic<std::size_t> queries{0};
  util::Parallelism par(params.threads);
  par.parallel_for(
      points.rows(),
      [&](std::size_t begin, std::size_t end) {
        std::size_t done = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (ctx.expired()) break;
          neighborhoods[i] = region_query(points, i, params);
          ++done;
        }
        queries.fetch_add(done, std::memory_order_relaxed);
      },
      /*grain=*/64);  // each item is an O(n) scan; fine-grained chunks pay off
  queries_out = queries.load();
  return neighborhoods;
}

/// Inverted-index region queries (Hamming metric): candidates sharing at
/// least one column are enumerated through the transpose with co-occurrence
/// counts, then filtered by d = |Ri| + |Rj| - 2g; disjoint rows within eps
/// (d = |Ri| + |Rj|) come from a norm-sorted sweep. Exact, like brute force.
class InvertedIndexQuerier {
 public:
  InvertedIndexQuerier(const linalg::RowStore& points, std::size_t eps)
      // A CsrMatrix-backed store is used in place; dense and view-backed
      // stores convert/copy once here (the same conversion the old
      // BitMatrix-only path always paid).
      : owned_(points.sparse_matrix() != nullptr ? linalg::CsrMatrix() : points.to_csr()),
        sparse_(points.sparse_matrix() != nullptr ? *points.sparse_matrix() : owned_),
        transpose_(sparse_.transpose()),
        eps_(eps),
        count_(points.rows(), 0) {
    for (std::size_t r = 0; r < sparse_.rows(); ++r) {
      const std::size_t norm = sparse_.row_size(r);
      // Disjoint pairs satisfy d = |Ri| + |Rj| <= eps, so any row with
      // |Rj| <= eps (including empty rows) can qualify.
      if (norm <= eps_) tiny_.emplace_back(norm, r);
    }
    std::sort(tiny_.begin(), tiny_.end());
  }

  /// Not thread-safe (scratch counters); used from the sequential path.
  std::vector<std::size_t> query(std::size_t i, std::size_t& evals) {
    std::vector<std::size_t> neighbors{i};  // the point itself
    const std::size_t norm_i = sparse_.row_size(i);

    for (std::uint32_t col : sparse_.row(i)) {
      for (std::uint32_t j : transpose_.row(col)) {
        if (static_cast<std::size_t>(j) == i) continue;
        if (count_[j] == 0) touched_.push_back(j);
        ++count_[j];
      }
    }
    evals += touched_.size();
    for (std::uint32_t j : touched_) {
      const std::size_t d = norm_i + sparse_.row_size(j) - 2 * count_[j];
      if (d <= eps_) neighbors.push_back(j);
      count_[j] = 0;
    }
    touched_.clear();

    // Disjoint rows: d = |Ri| + |Rj| <= eps. Tiny rows are norm-sorted, so
    // the scan stops at the first row too large to qualify; rows that do
    // share a column were already added above and must be skipped — they
    // carry d < |Ri| + |Rj|, so a duplicate entry would be wrong only in
    // being listed twice; dedup at the end handles it.
    if (norm_i <= eps_) {
      for (const auto& [norm_j, j] : tiny_) {
        if (norm_i + norm_j > eps_) break;
        if (j != i) neighbors.push_back(j);
      }
    }
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()), neighbors.end());
    return neighbors;
  }

 private:
  linalg::CsrMatrix owned_;
  const linalg::CsrMatrix& sparse_;
  linalg::CsrMatrix transpose_;
  std::size_t eps_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> touched_;
  std::vector<std::pair<std::size_t, std::size_t>> tiny_;  // (norm, row)
};

}  // namespace

std::vector<std::vector<std::size_t>> DbscanResult::clusters() const {
  std::vector<std::vector<std::size_t>> out(n_clusters);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // >= 0 also skips unvisited points (-2), left behind by a cancelled run.
    if (labels[i] >= 0) out[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  return out;
}

DbscanResult dbscan(const linalg::RowStore& points, const DbscanParams& params,
                    const util::ExecutionContext& ctx) {
  const std::size_t n = points.rows();
  constexpr std::int32_t kUnvisited = -2;

  DbscanResult result;
  result.labels.assign(n, kUnvisited);

  const bool indexed = params.region_strategy == RegionStrategy::kInvertedIndex;
  if (indexed && params.metric == MetricKind::kJaccard)
    throw std::invalid_argument("dbscan: inverted-index regions require the Hamming metric");

  // Optional precomputation of all neighborhoods (parallel mode, brute only).
  std::vector<std::vector<std::size_t>> precomputed;
  const bool use_precomputed = !indexed && params.threads != 1;
  if (use_precomputed) {
    precomputed = all_region_queries(points, params, ctx, result.region_queries);
  }

  std::optional<InvertedIndexQuerier> index;
  if (indexed) index.emplace(points, params.eps);

  std::size_t indexed_evals = 0;
  auto neighbors_of = [&](std::size_t p) -> std::vector<std::size_t> {
    if (use_precomputed) return precomputed[p];
    ++result.region_queries;
    if (indexed) return index->query(p, indexed_evals);
    return region_query(points, p, params);
  };

  std::int32_t next_label = 0;
  std::deque<std::size_t> seeds;

  for (std::size_t p = 0; p < n; ++p) {
    if (ctx.expired()) break;
    if (result.labels[p] != kUnvisited) continue;

    std::vector<std::size_t> neighborhood = neighbors_of(p);
    if (neighborhood.size() < params.min_pts) {
      result.labels[p] = DbscanResult::kNoise;
      continue;
    }

    // p is a core point: start a new cluster and expand it.
    const std::int32_t cluster = next_label++;
    result.labels[p] = cluster;
    seeds.assign(neighborhood.begin(), neighborhood.end());

    while (!seeds.empty()) {
      if (ctx.expired()) break;  // cluster stays partial — never a false merge
      const std::size_t q = seeds.front();
      seeds.pop_front();

      if (result.labels[q] == DbscanResult::kNoise) {
        result.labels[q] = cluster;  // former noise becomes a border point
        continue;
      }
      if (result.labels[q] != kUnvisited) continue;

      result.labels[q] = cluster;
      std::vector<std::size_t> q_neighborhood = neighbors_of(q);
      if (q_neighborhood.size() >= params.min_pts) {
        // q is itself core: its neighborhood is density-reachable.
        seeds.insert(seeds.end(), q_neighborhood.begin(), q_neighborhood.end());
      }
    }
  }

  result.n_clusters = static_cast<std::size_t>(next_label);
  result.distance_evaluations = indexed ? indexed_evals : result.region_queries * n;
  return result;
}

}  // namespace rolediet::cluster
