// Disjoint-set forest with union by size and path halving.
//
// Groups of equivalent/similar roles are built by unioning pairwise matches;
// near-constant amortized find keeps grouping linear in the number of
// matched pairs.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace rolediet::cluster {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

  /// Representative of x's set, with path halving.
  [[nodiscard]] std::size_t find(std::size_t x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true when they were distinct.
  bool unite(std::size_t a, std::size_t b) noexcept {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  [[nodiscard]] bool connected(std::size_t a, std::size_t b) noexcept {
    return find(a) == find(b);
  }

  /// Size of the set containing x.
  [[nodiscard]] std::size_t set_size(std::size_t x) noexcept { return size_[find(x)]; }

  /// All sets with at least `min_size` members. Each group lists member
  /// indices in increasing order; groups are ordered by their smallest member.
  [[nodiscard]] std::vector<std::vector<std::size_t>> groups(std::size_t min_size = 2);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

inline std::vector<std::vector<std::size_t>> UnionFind::groups(std::size_t min_size) {
  // Map each root to a dense group slot in order of first appearance, which
  // (scanning indices in increasing order) orders groups by smallest member.
  std::vector<std::size_t> slot(parent_.size(), static_cast<std::size_t>(-1));
  std::vector<std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    const std::size_t root = find(i);
    if (size_[root] < min_size) continue;
    if (slot[root] == static_cast<std::size_t>(-1)) {
      slot[root] = out.size();
      out.emplace_back();
      out.back().reserve(size_[root]);
    }
    out[slot[root]].push_back(i);
  }
  return out;
}

}  // namespace rolediet::cluster
