#include "cluster/minhash.hpp"

#include <algorithm>
#include <limits>

#include "util/thread_pool.hpp"

namespace rolediet::cluster {

namespace {

constexpr std::uint64_t kEmptySlot = std::numeric_limits<std::uint64_t>::max();

/// h_i(x): one draw from a 2-independent-ish family keyed per slot.
std::uint64_t slot_hash(std::uint64_t slot_key, std::uint32_t element) noexcept {
  return util::mix64(slot_key ^ util::mix64(element + 0x9E3779B97F4A7C15ULL));
}

}  // namespace

MinHashLsh::MinHashLsh(const linalg::RowStore& rows, MinHashParams params,
                       const util::ExecutionContext& ctx)
    : params_(params) {
  const std::size_t k = params_.signature_size();

  // Per-slot keys derived from the seed.
  std::vector<std::uint64_t> slot_keys(k);
  util::Xoshiro256 rng(params_.seed);
  for (auto& key : slot_keys) key = rng();

  util::Parallelism par(params_.threads);

  // Signatures are per-row independent (disjoint output slots), so the row
  // range splits freely — this O(nnz * k) loop dominates index construction.
  signatures_.resize(rows.rows());
  par.parallel_for(
      rows.rows(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          if (ctx.expired()) break;  // unsigned rows stay empty; banding skips them
          auto& sig = signatures_[r];
          sig.assign(k, kEmptySlot);
          rows.for_each_set(r, [&](std::uint32_t element) {
            for (std::size_t i = 0; i < k; ++i) {
              sig[i] = std::min(sig[i], slot_hash(slot_keys[i], element));
            }
          });
        }
      },
      /*grain=*/64);

  // Band buckets: digest each band's slot run. Empty rows (all slots are the
  // sentinel) are excluded — empty roles are type-2 findings, not duplicates.
  // Parallel over *bands*: each band's bucket list is filled by exactly one
  // chunk iterating rows in index order and then sorted, so the buckets are
  // identical no matter how the bands are distributed.
  band_buckets_.resize(params_.bands);
  par.parallel_for(
      params_.bands,
      [&](std::size_t band_begin, std::size_t band_end) {
        for (std::size_t band = band_begin; band < band_end; ++band) {
          if (ctx.expired()) break;  // drop whole bands: fewer candidates, never wrong ones
          auto& bucket = band_buckets_[band];
          for (std::size_t r = 0; r < rows.rows(); ++r) {
            if (rows.row_size(r) == 0) continue;
            const auto& sig = signatures_[r];
            if (sig.size() < k) continue;  // row skipped by a cancelled signature pass
            std::uint64_t digest = 0x243F6A8885A308D3ULL ^ util::mix64(band);
            for (std::size_t i = 0; i < params_.rows_per_band; ++i) {
              digest ^= util::mix64(sig[band * params_.rows_per_band + i] + i);
              digest *= 0x100000001B3ULL;
            }
            bucket.emplace_back(digest, static_cast<std::uint32_t>(r));
          }
          std::sort(bucket.begin(), bucket.end());
        }
      },
      /*grain=*/1);
}

double MinHashLsh::estimate_similarity(std::size_t a, std::size_t b) const {
  const auto& sa = signatures_.at(a);
  const auto& sb = signatures_.at(b);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) matches += (sa[i] == sb[i]);
  return sa.empty() ? 1.0 : static_cast<double>(matches) / static_cast<double>(sa.size());
}

std::vector<std::pair<std::size_t, std::size_t>> MinHashLsh::candidate_pairs() const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& bucket : band_buckets_) {
    // Equal digests are adjacent after sorting; emit all pairs per run.
    std::size_t run_begin = 0;
    for (std::size_t i = 1; i <= bucket.size(); ++i) {
      if (i == bucket.size() || bucket[i].first != bucket[run_begin].first) {
        for (std::size_t x = run_begin; x < i; ++x) {
          for (std::size_t y = x + 1; y < i; ++y) {
            pairs.emplace_back(bucket[x].second, bucket[y].second);
          }
        }
        run_begin = i;
      }
    }
  }
  for (auto& [a, b] : pairs) {
    if (a > b) std::swap(a, b);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace rolediet::cluster
