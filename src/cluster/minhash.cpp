#include "cluster/minhash.hpp"

#include <algorithm>
#include <limits>

#include "util/thread_pool.hpp"

namespace rolediet::cluster {

// The hash family, signature, and band-digest formulas below are shared by
// the one-shot MinHashLsh and the maintained MinHashBandIndex; keeping them
// in one place is what makes the two indexes candidate-set-equivalent (the
// engine's delta re-audits rely on that — see core/engine.hpp).
namespace {

constexpr std::uint64_t kEmptySlot = std::numeric_limits<std::uint64_t>::max();

/// h_i(x): one draw from a 2-independent-ish family keyed per slot.
std::uint64_t slot_hash(std::uint64_t slot_key, std::uint32_t element) noexcept {
  return util::mix64(slot_key ^ util::mix64(element + 0x9E3779B97F4A7C15ULL));
}

/// Per-slot keys derived from the seed.
std::vector<std::uint64_t> draw_slot_keys(const MinHashParams& params) {
  std::vector<std::uint64_t> keys(params.signature_size());
  util::Xoshiro256 rng(params.seed);
  for (auto& key : keys) key = rng();
  return keys;
}

/// sig_i(row) = min over elements of h_i; empty rows stay all-sentinel.
void sign_row(const linalg::RowStore& rows, std::size_t r,
              const std::vector<std::uint64_t>& slot_keys, std::vector<std::uint64_t>& sig) {
  sig.assign(slot_keys.size(), kEmptySlot);
  rows.for_each_set(r, [&](std::uint32_t element) {
    for (std::size_t i = 0; i < slot_keys.size(); ++i) {
      sig[i] = std::min(sig[i], slot_hash(slot_keys[i], element));
    }
  });
}

/// Digest of one band's slot run of a signature.
std::uint64_t band_digest(const std::vector<std::uint64_t>& sig, std::size_t band,
                          std::size_t rows_per_band) noexcept {
  std::uint64_t digest = 0x243F6A8885A308D3ULL ^ util::mix64(band);
  for (std::size_t i = 0; i < rows_per_band; ++i) {
    digest ^= util::mix64(sig[band * rows_per_band + i] + i);
    digest *= 0x100000001B3ULL;
  }
  return digest;
}

}  // namespace

MinHashSigner::MinHashSigner(MinHashParams params)
    : params_(params), slot_keys_(draw_slot_keys(params)) {}

std::vector<std::uint64_t> MinHashSigner::band_digests(const linalg::RowStore& rows,
                                                       std::size_t r) const {
  if (rows.row_size(r) == 0) return {};  // empty rows are never banded
  std::vector<std::uint64_t> sig;
  sign_row(rows, r, slot_keys_, sig);
  std::vector<std::uint64_t> digests(params_.bands);
  for (std::size_t band = 0; band < params_.bands; ++band) {
    digests[band] = band_digest(sig, band, params_.rows_per_band);
  }
  return digests;
}

MinHashLsh::MinHashLsh(const linalg::RowStore& rows, MinHashParams params,
                       const util::ExecutionContext& ctx)
    : params_(params) {
  const std::size_t k = params_.signature_size();
  const std::vector<std::uint64_t> slot_keys = draw_slot_keys(params_);

  util::Parallelism par(params_.threads);

  // Signatures are per-row independent (disjoint output slots), so the row
  // range splits freely — this O(nnz * k) loop dominates index construction.
  signatures_.resize(rows.rows());
  par.parallel_for(
      rows.rows(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          if (ctx.expired()) break;  // unsigned rows stay empty; banding skips them
          sign_row(rows, r, slot_keys, signatures_[r]);
        }
      },
      /*grain=*/64);

  // Band buckets: digest each band's slot run. Empty rows (all slots are the
  // sentinel) are excluded — empty roles are type-2 findings, not duplicates.
  // Parallel over *bands*: each band's bucket list is filled by exactly one
  // chunk iterating rows in index order and then sorted, so the buckets are
  // identical no matter how the bands are distributed.
  band_buckets_.resize(params_.bands);
  par.parallel_for(
      params_.bands,
      [&](std::size_t band_begin, std::size_t band_end) {
        for (std::size_t band = band_begin; band < band_end; ++band) {
          if (ctx.expired()) break;  // drop whole bands: fewer candidates, never wrong ones
          auto& bucket = band_buckets_[band];
          for (std::size_t r = 0; r < rows.rows(); ++r) {
            if (rows.row_size(r) == 0) continue;
            const auto& sig = signatures_[r];
            if (sig.size() < k) continue;  // row skipped by a cancelled signature pass
            bucket.emplace_back(band_digest(sig, band, params_.rows_per_band),
                                static_cast<std::uint32_t>(r));
          }
          std::sort(bucket.begin(), bucket.end());
        }
      },
      /*grain=*/1);
}

double MinHashLsh::estimate_similarity(std::size_t a, std::size_t b) const {
  const auto& sa = signatures_.at(a);
  const auto& sb = signatures_.at(b);
  std::size_t matches = 0;
  for (std::size_t i = 0; i < sa.size(); ++i) matches += (sa[i] == sb[i]);
  return sa.empty() ? 1.0 : static_cast<double>(matches) / static_cast<double>(sa.size());
}

std::vector<std::pair<std::size_t, std::size_t>> MinHashLsh::candidate_pairs() const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& bucket : band_buckets_) {
    // Equal digests are adjacent after sorting; emit all pairs per run.
    std::size_t run_begin = 0;
    for (std::size_t i = 1; i <= bucket.size(); ++i) {
      if (i == bucket.size() || bucket[i].first != bucket[run_begin].first) {
        for (std::size_t x = run_begin; x < i; ++x) {
          for (std::size_t y = x + 1; y < i; ++y) {
            pairs.emplace_back(bucket[x].second, bucket[y].second);
          }
        }
        run_begin = i;
      }
    }
  }
  for (auto& [a, b] : pairs) {
    if (a > b) std::swap(a, b);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

// ------------------------------------------------------ MinHashBandIndex ---

MinHashBandIndex::MinHashBandIndex(MinHashParams params)
    : params_(params), slot_keys_(draw_slot_keys(params)), buckets_(params.bands) {}

void MinHashBandIndex::update_row(const linalg::RowStore& rows, std::size_t r) {
  if (r >= band_digests_.size()) band_digests_.resize(r + 1);
  remove_row(r);
  if (rows.row_size(r) == 0) return;  // empty rows stay unbanded

  std::vector<std::uint64_t> sig;
  sign_row(rows, r, slot_keys_, sig);
  auto& digests = band_digests_[r];
  digests.resize(params_.bands);
  for (std::size_t band = 0; band < params_.bands; ++band) {
    digests[band] = band_digest(sig, band, params_.rows_per_band);
    buckets_[band][digests[band]].push_back(static_cast<std::uint32_t>(r));
  }
}

void MinHashBandIndex::remove_row(std::size_t r) {
  if (r >= band_digests_.size()) return;
  auto& digests = band_digests_[r];
  if (digests.empty()) return;
  for (std::size_t band = 0; band < params_.bands; ++band) {
    auto it = buckets_[band].find(digests[band]);
    if (it == buckets_[band].end()) continue;
    std::erase(it->second, static_cast<std::uint32_t>(r));
    if (it->second.empty()) buckets_[band].erase(it);
  }
  digests.clear();
}

std::vector<std::uint32_t> MinHashBandIndex::partners(std::size_t r) const {
  std::vector<std::uint32_t> out;
  if (r >= band_digests_.size() || band_digests_[r].empty()) return out;
  const auto& digests = band_digests_[r];
  for (std::size_t band = 0; band < params_.bands; ++band) {
    auto it = buckets_[band].find(digests[band]);
    if (it == buckets_[band].end()) continue;
    for (std::uint32_t member : it->second) {
      if (member != static_cast<std::uint32_t>(r)) out.push_back(member);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> MinHashBandIndex::candidate_pairs() const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const auto& band : buckets_) {
    for (const auto& [digest, members] : band) {
      for (std::size_t x = 0; x < members.size(); ++x) {
        for (std::size_t y = x + 1; y < members.size(); ++y) {
          pairs.emplace_back(members[x], members[y]);
        }
      }
    }
  }
  for (auto& [a, b] : pairs) {
    if (a > b) std::swap(a, b);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

}  // namespace rolediet::cluster
