// MinHash signatures + Locality-Sensitive Hashing over sparse sets.
//
// The paper's approximate baseline uses the *datasketch* library, whose
// primary machinery is MinHash/LSH (the authors picked its HNSW index; this
// module implements the library's other signature method as an additional
// approximate baseline). Standard construction:
//
//  - signature: k independent hash functions h_i; sig_i(S) = min over x in S
//    of h_i(x). Pr[sig_i(A) = sig_i(B)] equals the Jaccard similarity of A
//    and B, so the fraction of matching signature slots estimates J.
//  - banding: the k slots split into b bands of r rows (k = b*r); two sets
//    are *candidates* iff some band matches exactly. A pair with Jaccard
//    similarity s becomes a candidate with probability 1 - (1 - s^r)^b — an
//    S-curve with threshold ~ (1/b)^(1/r).
//
// Guarantees relevant to role-group detection:
//  - identical sets have identical signatures, so every band matches:
//    duplicate detection has recall 1 (deterministic), and candidate
//    verification keeps precision 1;
//  - near-duplicate pairs (high Jaccard) are candidates with high
//    probability; low-overlap pairs are genuinely likely to be missed —
//    the recall trade-off the paper accepts for periodic jobs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/row_store.hpp"
#include "util/execution_context.hpp"
#include "util/prng.hpp"

namespace rolediet::cluster {

struct MinHashParams {
  std::size_t bands = 32;
  std::size_t rows_per_band = 4;  ///< signature size = bands * rows_per_band
  std::uint64_t seed = 1234;      ///< hash-family seed
  /// Worker threads for signature computation and band bucketing, under the
  /// library-wide knob convention in util/thread_pool.hpp. Signatures are
  /// per-row independent and each band's bucket list is built by a single
  /// chunk in row order, so the index is byte-identical for every value.
  std::size_t threads = 1;

  [[nodiscard]] std::size_t signature_size() const noexcept { return bands * rows_per_band; }
};

/// MinHash/LSH index over the rows of a row store (either matrix backend —
/// a BitMatrix or CsrMatrix converts implicitly; signatures depend only on
/// the column *sets*, so both backends build identical indexes).
class MinHashLsh {
 public:
  /// Computes all signatures and the band buckets. O(nnz * signature_size).
  /// `ctx` is checked per row (signatures) and per band (bucketing): a
  /// cancelled build indexes fewer rows/bands, which can only shrink the
  /// candidate set — never corrupt it.
  MinHashLsh(const linalg::RowStore& rows, MinHashParams params,
             const util::ExecutionContext& ctx = util::unlimited_context());

  [[nodiscard]] std::size_t size() const noexcept { return signatures_.size(); }
  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }

  /// Estimated Jaccard *similarity* of two indexed rows from their
  /// signatures: fraction of matching slots. In [0, 1].
  [[nodiscard]] double estimate_similarity(std::size_t a, std::size_t b) const;

  /// All candidate pairs (a < b): rows sharing at least one band bucket.
  /// Empty rows are never candidates (their signatures are a sentinel that
  /// is excluded from banding). Pairs are unique and sorted.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> candidate_pairs() const;

 private:
  MinHashParams params_;
  /// signatures_[row] = signature_size() min-hash slots.
  std::vector<std::vector<std::uint64_t>> signatures_;
  /// band_buckets_[band]: bucket digest -> member rows.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> band_buckets_;
};

}  // namespace rolediet::cluster
