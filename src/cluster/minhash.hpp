// MinHash signatures + Locality-Sensitive Hashing over sparse sets.
//
// The paper's approximate baseline uses the *datasketch* library, whose
// primary machinery is MinHash/LSH (the authors picked its HNSW index; this
// module implements the library's other signature method as an additional
// approximate baseline). Standard construction:
//
//  - signature: k independent hash functions h_i; sig_i(S) = min over x in S
//    of h_i(x). Pr[sig_i(A) = sig_i(B)] equals the Jaccard similarity of A
//    and B, so the fraction of matching signature slots estimates J.
//  - banding: the k slots split into b bands of r rows (k = b*r); two sets
//    are *candidates* iff some band matches exactly. A pair with Jaccard
//    similarity s becomes a candidate with probability 1 - (1 - s^r)^b — an
//    S-curve with threshold ~ (1/b)^(1/r).
//
// Guarantees relevant to role-group detection:
//  - identical sets have identical signatures, so every band matches:
//    duplicate detection has recall 1 (deterministic), and candidate
//    verification keeps precision 1;
//  - near-duplicate pairs (high Jaccard) are candidates with high
//    probability; low-overlap pairs are genuinely likely to be missed —
//    the recall trade-off the paper accepts for periodic jobs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "linalg/row_store.hpp"
#include "util/execution_context.hpp"
#include "util/prng.hpp"

namespace rolediet::cluster {

struct MinHashParams {
  std::size_t bands = 32;
  std::size_t rows_per_band = 4;  ///< signature size = bands * rows_per_band
  std::uint64_t seed = 1234;      ///< hash-family seed
  /// Worker threads for signature computation and band bucketing, under the
  /// library-wide knob convention in util/thread_pool.hpp. Signatures are
  /// per-row independent and each band's bucket list is built by a single
  /// chunk in row order, so the index is byte-identical for every value.
  std::size_t threads = 1;

  [[nodiscard]] std::size_t signature_size() const noexcept { return bands * rows_per_band; }
};

/// Stateless signer exposing the shared hash family: per-row LSH band
/// digests, computed with exactly the formulas MinHashLsh/MinHashBandIndex
/// bucket by. The sharded engine's cross-shard candidate exchange ships these
/// digests between shards — two rows land in the same (band, digest) bucket
/// here iff they would share that band bucket in a global MinHashLsh over the
/// union of the rows, which is what makes the exchanged candidate set exactly
/// the global LSH candidate set restricted to cross-shard pairs.
class MinHashSigner {
 public:
  explicit MinHashSigner(MinHashParams params);

  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }

  /// One digest per band for row r of `rows`; empty for empty rows (which
  /// MinHashLsh never bands — empty roles are type-2 findings).
  [[nodiscard]] std::vector<std::uint64_t> band_digests(const linalg::RowStore& rows,
                                                        std::size_t r) const;

 private:
  MinHashParams params_;
  std::vector<std::uint64_t> slot_keys_;
};

/// MinHash/LSH index over the rows of a row store (either matrix backend —
/// a BitMatrix or CsrMatrix converts implicitly; signatures depend only on
/// the column *sets*, so both backends build identical indexes).
class MinHashLsh {
 public:
  /// Computes all signatures and the band buckets. O(nnz * signature_size).
  /// `ctx` is checked per row (signatures) and per band (bucketing): a
  /// cancelled build indexes fewer rows/bands, which can only shrink the
  /// candidate set — never corrupt it.
  MinHashLsh(const linalg::RowStore& rows, MinHashParams params,
             const util::ExecutionContext& ctx = util::unlimited_context());

  [[nodiscard]] std::size_t size() const noexcept { return signatures_.size(); }
  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }

  /// Estimated Jaccard *similarity* of two indexed rows from their
  /// signatures: fraction of matching slots. In [0, 1].
  [[nodiscard]] double estimate_similarity(std::size_t a, std::size_t b) const;

  /// All candidate pairs (a < b): rows sharing at least one band bucket.
  /// Empty rows are never candidates (their signatures are a sentinel that
  /// is excluded from banding). Pairs are unique and sorted.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> candidate_pairs() const;

 private:
  MinHashParams params_;
  /// signatures_[row] = signature_size() min-hash slots.
  std::vector<std::vector<std::uint64_t>> signatures_;
  /// band_buckets_[band]: bucket digest -> member rows.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> band_buckets_;
};

/// Mutable MinHash/LSH band index, maintained row-by-row across dataset
/// versions (the steady-state counterpart of MinHashLsh, which is built once
/// and discarded). Shares the exact hash family, signature, and band-digest
/// formulas with MinHashLsh — for any row contents and seed, the candidate
/// pair *set* of a fully-updated MinHashBandIndex equals
/// MinHashLsh::candidate_pairs() on the same rows (pinned by minhash_test).
///
/// core/engine.hpp keeps one per matrix axis: after a delta it re-signs only
/// the mutated rows (O(row_nnz * signature_size) each) and asks for their
/// band partners instead of re-banding the whole matrix.
class MinHashBandIndex {
 public:
  explicit MinHashBandIndex(MinHashParams params);

  [[nodiscard]] const MinHashParams& params() const noexcept { return params_; }

  /// Rows the index has capacity for (update_row grows it on demand).
  [[nodiscard]] std::size_t rows() const noexcept { return band_digests_.size(); }

  /// Recomputes row r's signature from `rows` and rebuckets it, replacing any
  /// previous banding. Empty rows are unbanded (duplicate-empty roles are
  /// type-2 findings, not candidates), matching MinHashLsh.
  void update_row(const linalg::RowStore& rows, std::size_t r);

  /// Drops row r from every band bucket (no-op when unbanded).
  void remove_row(std::size_t r);

  /// Rows sharing at least one band bucket with r, sorted, unique, excluding
  /// r itself. Empty when r is unbanded.
  [[nodiscard]] std::vector<std::uint32_t> partners(std::size_t r) const;

  /// All candidate pairs (a < b, sorted, unique) — the batch-equivalence
  /// surface: equals MinHashLsh::candidate_pairs() over the same row
  /// contents and params.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> candidate_pairs() const;

 private:
  MinHashParams params_;
  std::vector<std::uint64_t> slot_keys_;
  /// band_digests_[row]: one digest per band; empty vector = row unbanded.
  std::vector<std::vector<std::uint64_t>> band_digests_;
  /// buckets_[band]: digest -> member rows (insertion order; order never
  /// affects the candidate *set*).
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>> buckets_;
};

}  // namespace rolediet::cluster
