// Density-adaptive row-kernel interface over the dense and sparse matrices.
//
// Every detection method ultimately runs the same handful of row kernels —
// Hamming distance, co-occurrence (intersection), equality, popcount, hash.
// BitMatrix serves them word-parallel (XOR/AND + popcount over packed words);
// CsrMatrix serves them as sorted-merge scans over the stored column indices,
// never materializing a dense row. At the paper's real-org scale (§III-B:
// ~50k roles x ~90k users, <1% dense) a packed RUAM row costs ~11 KB of
// mostly zeros per distance evaluation, while the CSR row touches only the
// few hundred stored indices — the sparse path wins exactly where the paper
// says real data lives.
//
// RowStore is a non-owning *view* selecting one backend. The sparse backend
// runs off a CsrView — raw row_ptr/cols_idx spans — so the same merge kernels
// serve an owning CsrMatrix, an mmap'd read-only dataset body (store/body.hpp)
// paging rows in on demand, or any other CSR-shaped storage. All backends
// compute identical integer values for every kernel, so groups, reports, and
// FinderWorkStats are byte-identical whichever backend runs — the
// differential suite locks this down.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "linalg/bit_matrix.hpp"
#include "linalg/csr_matrix.hpp"
#include "util/bitops.hpp"

namespace rolediet::linalg {

/// Which row-kernel backend a method should run on.
enum class RowBackend {
  kAuto,    ///< Pick by density: sparse below kSparseDensityThreshold.
  kDense,   ///< Force packed-word kernels over BitMatrix rows.
  kSparse,  ///< Force merge kernels over CsrMatrix index runs.
};

[[nodiscard]] std::string to_string(RowBackend backend);

/// Density below which kAuto resolves to the sparse backend. At density d a
/// merge kernel touches ~8*d*cols bytes per row pair versus cols/4 bytes for
/// the packed pair, so the byte break-even sits at d = 1/32; the threshold
/// stays a factor below that because merge steps cost more per byte than
/// word-parallel popcounts. Real-world UPA matrices are routinely <1% dense,
/// which lands them firmly on the sparse side.
inline constexpr double kSparseDensityThreshold = 0.01;

/// Resolves a requested backend: kDense/kSparse pass through, kAuto picks by
/// the matrix density nnz / (rows * cols). Empty matrices resolve sparse.
[[nodiscard]] RowBackend choose_backend(RowBackend requested, std::size_t rows, std::size_t cols,
                                        std::size_t nnz) noexcept;

class RowStore {
 public:
  /// Empty view (0x0, dense). Reassign before use.
  RowStore() = default;

  /// View over a dense matrix. Non-owning: `dense` must outlive the view.
  RowStore(const BitMatrix& dense) noexcept : dense_(&dense) {}  // NOLINT(google-explicit-constructor)

  /// View over a sparse matrix. Non-owning: `sparse` must outlive the view.
  /// Reads go through the pointer on every access, so the view stays valid
  /// across mutations of the matrix (the HNSW artifact copy-assigns its
  /// points matrix under a live index view and relies on this).
  RowStore(const CsrMatrix& sparse) noexcept : sparse_(&sparse) {}  // NOLINT(google-explicit-constructor)

  /// View over raw CSR arrays (e.g. an mmap'd dataset body). Non-owning: the
  /// storage behind the spans must outlive the view.
  explicit RowStore(const CsrView& view) noexcept : span_(view) {}

  // A view over a temporary would dangle immediately.
  RowStore(BitMatrix&&) = delete;
  RowStore(CsrMatrix&&) = delete;

  [[nodiscard]] bool is_sparse() const noexcept {
    return dense_ == nullptr && (sparse_ != nullptr || !span_.row_ptr.empty());
  }

  [[nodiscard]] std::size_t rows() const noexcept {
    return dense_ != nullptr ? dense_->rows() : sview().rows();
  }

  [[nodiscard]] std::size_t cols() const noexcept {
    return dense_ != nullptr ? dense_->cols() : sview().cols;
  }

  /// Role norm |R^r|: popcount (dense) or stored-entry count (sparse, O(1)).
  [[nodiscard]] std::size_t row_size(std::size_t r) const noexcept {
    return dense_ != nullptr ? dense_->row_popcount(r) : sview().row_size(r);
  }

  /// Hamming distance between rows a and b.
  [[nodiscard]] std::size_t hamming(std::size_t a, std::size_t b) const noexcept {
    if (dense_ != nullptr) return dense_->row_hamming(a, b);
    const CsrView v = sview();
    return v.row_size(a) + v.row_size(b) - 2 * csr_intersection(v.row(a), v.row(b));
  }

  /// BOUNDED Hamming distance (util::hamming_words_bounded contract): the
  /// exact distance when <= `limit`, exactly `limit + 1` otherwise — callers
  /// may only compare the result against `limit`. Both backends and every
  /// kernel dispatch target return the same normalized values.
  [[nodiscard]] std::size_t hamming_bounded(std::size_t a, std::size_t b,
                                            std::size_t limit) const noexcept;

  /// Co-occurrence count g(Ra, Rb).
  [[nodiscard]] std::size_t intersection(std::size_t a, std::size_t b) const noexcept {
    if (dense_ != nullptr) return dense_->row_intersection(a, b);
    const CsrView v = sview();
    return csr_intersection(v.row(a), v.row(b));
  }

  [[nodiscard]] bool rows_equal(std::size_t a, std::size_t b) const noexcept {
    if (dense_ != nullptr) return dense_->rows_equal(a, b);
    const CsrView v = sview();
    return csr_rows_equal(v.row(a), v.row(b));
  }

  /// Backend-invariant 64-bit digest of row r's column *set* (the CsrMatrix
  /// fold over sorted indices; the dense path walks set bits in the same
  /// order). BitMatrix::row_hash folds packed words instead and would give a
  /// different digest, so RowStore deliberately does not delegate to it.
  [[nodiscard]] std::uint64_t row_hash(std::size_t r) const noexcept;

  // ---- Batch entry points (SIMD-dispatched on the dense backend) ----------
  //
  // Score row q against many rows per call. On the dense backend these feed
  // the active linalg/kernels dispatch target: block variants hand the
  // kernel a contiguous [first, first + count) slab of packed rows so it can
  // register-tile them against the query; gather variants amortize the
  // dispatch-table lookup over an arbitrary index list. On the sparse
  // backend they loop the merge kernels. All variants produce exactly the
  // integers the corresponding single-pair kernel produces.

  /// out[k] = hamming(q, first + k) for k in [0, count).
  void hamming_block(std::size_t q, std::size_t first, std::size_t count,
                     std::size_t* out) const noexcept;

  /// out[k] = hamming_bounded(q, first + k, limit) for k in [0, count),
  /// under the bounded contract (exact when <= limit, limit + 1 otherwise).
  void hamming_bounded_block(std::size_t q, std::size_t first, std::size_t count,
                             std::size_t limit, std::size_t* out) const noexcept;

  /// out[k] = intersection(q, first + k) for k in [0, count).
  void intersection_block(std::size_t q, std::size_t first, std::size_t count,
                          std::size_t* out) const noexcept;

  /// out[k] = hamming(q, idx[k]) for k in [0, idx.size()).
  void hamming_gather(std::size_t q, std::span<const std::uint32_t> idx,
                      std::size_t* out) const noexcept;

  /// out[k] = hamming_bounded(q, idx[k], limit) for k in [0, idx.size()).
  void hamming_bounded_gather(std::size_t q, std::span<const std::uint32_t> idx,
                              std::size_t limit, std::size_t* out) const noexcept;

  /// out[k] = intersection(q, idx[k]) for k in [0, idx.size()).
  void intersection_gather(std::size_t q, std::span<const std::uint32_t> idx,
                           std::size_t* out) const noexcept;

  /// out[k] = intersection(pairs[k].first, pairs[k].second): the gathered
  /// candidate-pair shape LSH verification produces, where both endpoints
  /// vary per element.
  void intersection_pairs(std::span<const std::pair<std::size_t, std::size_t>> pairs,
                          std::size_t* out) const noexcept;

  /// Calls `fn(col)` for every set column of row r in ascending order.
  template <typename Fn>
  void for_each_set(std::size_t r, Fn&& fn) const {
    if (dense_ == nullptr) {
      for (std::uint32_t c : sview().row(r)) fn(c);
      return;
    }
    const auto words = dense_->row(r);
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        fn(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(bit)));
        bits &= bits - 1;
      }
    }
  }

  /// Payload bytes a kernel streams when it scans row r once: packed words
  /// (dense) or stored indices (sparse). The density-sweep bench multiplies
  /// this by the evaluation count instead of instrumenting the hot path.
  [[nodiscard]] std::size_t row_bytes(std::size_t r) const noexcept {
    return dense_ != nullptr ? dense_->words_per_row() * sizeof(std::uint64_t)
                             : sview().row_size(r) * sizeof(std::uint32_t);
  }

  /// Total row-payload bytes across the store (excludes row_ptr overhead).
  [[nodiscard]] std::size_t payload_bytes() const noexcept;

  /// Intersection of a packed query vector (words_for_bits(cols()) words)
  /// with row b. Serves HNSW's search_vector on either backend.
  [[nodiscard]] std::size_t intersection_with_packed(std::span<const std::uint64_t> q,
                                                     std::size_t b) const noexcept;

  /// Hamming distance of a packed query vector against row b.
  [[nodiscard]] std::size_t hamming_with_packed(std::span<const std::uint64_t> q,
                                                std::size_t b) const noexcept;

  /// CSR copy of the viewed matrix (conversion when dense, deep copy when
  /// view-backed). Lets consumers that are natively sparse (inverted indexes)
  /// run off any backend.
  [[nodiscard]] CsrMatrix to_csr() const;

  /// Underlying matrices; null for the backend not in use. A view-backed
  /// store has no CsrMatrix, so sparse_matrix() is null there — use
  /// csr_view() (or to_csr()) when the raw arrays are all that's needed.
  [[nodiscard]] const BitMatrix* dense_matrix() const noexcept { return dense_; }
  [[nodiscard]] const CsrMatrix* sparse_matrix() const noexcept { return sparse_; }

  /// Raw CSR spans of the sparse backend (empty spans on the dense backend).
  /// Valid only until the next mutation of the underlying storage.
  [[nodiscard]] CsrView csr_view() const noexcept { return dense_ != nullptr ? CsrView{} : sview(); }

 private:
  /// Sparse-shaped arrays: re-derived through the matrix pointer on every
  /// access (mutation-tolerant), or the captured spans for view backends.
  [[nodiscard]] CsrView sview() const noexcept {
    return sparse_ != nullptr ? sparse_->view() : span_;
  }

  const BitMatrix* dense_ = nullptr;
  const CsrMatrix* sparse_ = nullptr;  // set only when constructed from one
  CsrView span_;                       // engaged for view-backed stores
};

}  // namespace rolediet::linalg
