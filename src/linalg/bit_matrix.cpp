#include "linalg/bit_matrix.hpp"

#include <algorithm>

#include "util/prng.hpp"

namespace rolediet::linalg {

BitMatrix::BitMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_(util::words_for_bits(cols)),
      data_(rows * words_per_row_, 0) {}

std::uint64_t BitMatrix::row_hash(std::size_t r) const noexcept {
  // FNV-style fold of splitmix-mixed words: cheap, and collisions are
  // harmless because callers verify candidate buckets with rows_equal().
  std::uint64_t h = 0x243F6A8885A308D3ULL;  // pi fractional bits
  for (std::uint64_t w : row(r)) {
    h ^= util::mix64(w + 0x9E3779B97F4A7C15ULL);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::vector<std::size_t> BitMatrix::column_sums() const {
  std::vector<std::size_t> sums(cols_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto words = row(r);
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        sums[w * 64 + static_cast<std::size_t>(bit)] += 1;
        bits &= bits - 1;
      }
    }
  }
  return sums;
}

std::vector<std::size_t> BitMatrix::row_sums() const {
  std::vector<std::size_t> sums(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) sums[r] = row_popcount(r);
  return sums;
}

void BitMatrix::clear() noexcept { std::fill(data_.begin(), data_.end(), 0); }

}  // namespace rolediet::linalg
