// Sparse boolean matrix in Compressed Sparse Row form.
//
// Real-world RUAM/RPAM matrices are extremely sparse (the paper's real org
// has ~50,000 roles x ~90,000 users but each role carries only a handful of
// users), so the framework stores assignments sparsely and only densifies
// when a method needs packed rows (DBSCAN/HNSW distance kernels on small
// synthetic matrices). §III-B explicitly calls out sparse representation as
// the memory optimization for the two sub-matrices.
//
// Invariants:
//  - row_ptr.size() == rows()+1, row_ptr.front() == 0, row_ptr.back() == nnz;
//  - column indices within each row are strictly increasing (set semantics —
//    duplicate assignment edges collapse to one entry);
//  - every column index < cols().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace rolediet::linalg {

// ---- span-level CSR row kernels --------------------------------------------
//
// The merge kernels over sorted index runs, factored out of CsrMatrix so any
// CSR-shaped storage — an owning CsrMatrix, an mmap'd read-only dataset body
// (store/body.hpp), a scratch view — computes the same integers through the
// same code. CsrMatrix and the RowStore view backend both delegate here.

/// Co-occurrence count |a ∩ b| of two strictly-increasing index runs.
[[nodiscard]] std::size_t csr_intersection(std::span<const std::uint32_t> a,
                                           std::span<const std::uint32_t> b) noexcept;

/// Exact set equality of two strictly-increasing index runs.
[[nodiscard]] bool csr_rows_equal(std::span<const std::uint32_t> a,
                                  std::span<const std::uint32_t> b) noexcept;

/// 64-bit digest of a strictly-increasing index run (the CsrMatrix::row_hash
/// fold: order-sensitive over the sorted indices + length, so equal sets hash
/// equal on every storage backend).
[[nodiscard]] std::uint64_t csr_row_digest(std::span<const std::uint32_t> row) noexcept;

/// Non-owning view of CSR arrays: the storage-agnostic face of a sparse
/// boolean matrix. Everything RowStore's sparse kernels need — row extents
/// and sorted column indices — without requiring the arrays to live in a
/// CsrMatrix's vectors; the mmap'd dataset body serves its pages through
/// exactly this shape. Invariants mirror CsrMatrix (see file comment).
struct CsrView {
  std::span<const std::size_t> row_ptr;     ///< rows()+1 offsets, front()==0
  std::span<const std::uint32_t> cols_idx;  ///< nnz sorted-per-row indices
  std::size_t cols = 0;

  [[nodiscard]] std::size_t rows() const noexcept {
    return row_ptr.empty() ? 0 : row_ptr.size() - 1;
  }
  [[nodiscard]] std::size_t nnz() const noexcept { return cols_idx.size(); }
  [[nodiscard]] std::span<const std::uint32_t> row(std::size_t r) const noexcept {
    return cols_idx.subspan(row_ptr[r], row_ptr[r + 1] - row_ptr[r]);
  }
  [[nodiscard]] std::size_t row_size(std::size_t r) const noexcept {
    return row_ptr[r + 1] - row_ptr[r];
  }
};

class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// rows x cols matrix with no stored entries.
  CsrMatrix(std::size_t rows, std::size_t cols);

  /// Builds from (row, col) pairs. Duplicates are collapsed; out-of-range
  /// pairs throw std::out_of_range. The input need not be sorted.
  [[nodiscard]] static CsrMatrix from_pairs(std::size_t rows, std::size_t cols,
                                            std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs);

  /// Adopts already-built CSR arrays (row_ptr.size() == rows+1, sorted unique
  /// indices per row). Validates the structural invariants and throws
  /// std::invalid_argument on violation — the O(rows + nnz) check is cheap
  /// next to anything a caller will do with the matrix.
  [[nodiscard]] static CsrMatrix from_csr(std::size_t cols, std::vector<std::size_t> row_ptr,
                                          std::vector<std::uint32_t> cols_idx);

  /// Deep copy of a view (e.g. rows served from an mmap'd body) with an
  /// optional wider column count — sharded audits stamp the *current* global
  /// entity count onto matrices rebuilt from an older body image.
  [[nodiscard]] static CsrMatrix copy_of(const CsrView& view, std::size_t cols_override = 0);

  /// Non-owning view of this matrix's arrays (valid until the next mutation).
  [[nodiscard]] CsrView view() const noexcept { return {row_ptr_, cols_idx_, cols_}; }

  [[nodiscard]] std::size_t rows() const noexcept { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return cols_idx_.size(); }

  /// Column indices of row r, strictly increasing.
  [[nodiscard]] std::span<const std::uint32_t> row(std::size_t r) const noexcept {
    return {cols_idx_.data() + row_ptr_[r], row_ptr_[r + 1] - row_ptr_[r]};
  }

  /// Number of stored entries in row r — the role norm |R^i|.
  [[nodiscard]] std::size_t row_size(std::size_t r) const noexcept {
    return row_ptr_[r + 1] - row_ptr_[r];
  }

  /// Membership test via binary search: O(log row_size).
  [[nodiscard]] bool get(std::size_t r, std::size_t c) const noexcept;

  /// Co-occurrence count g(Ra, Rb) via sorted-merge intersection.
  [[nodiscard]] std::size_t row_intersection(std::size_t a, std::size_t b) const noexcept;

  /// Hamming distance between rows a and b: |Ra| + |Rb| - 2 g(Ra, Rb).
  [[nodiscard]] std::size_t row_hamming(std::size_t a, std::size_t b) const noexcept {
    const std::size_t g = row_intersection(a, b);
    return row_size(a) + row_size(b) - 2 * g;
  }

  /// True when rows a and b store identical column sets.
  [[nodiscard]] bool rows_equal(std::size_t a, std::size_t b) const noexcept;

  /// 64-bit digest of row r's column set (order-sensitive fold of the sorted
  /// indices, so equal sets hash equal).
  [[nodiscard]] std::uint64_t row_hash(std::size_t r) const noexcept;

  /// Per-column entry counts (degree of each user/permission node).
  [[nodiscard]] std::vector<std::size_t> column_sums() const;

  /// Per-row entry counts.
  [[nodiscard]] std::vector<std::size_t> row_sums() const;

  /// Transpose (cols x rows). Used to build the inverted user -> roles index
  /// that drives the co-occurrence method.
  [[nodiscard]] CsrMatrix transpose() const;

  /// Copies the listed source rows (in the given order) into a new matrix
  /// with the same column count — the sparse counterpart of densifying a
  /// row selection. Preconditions: every listed row < source.rows().
  [[nodiscard]] static CsrMatrix gather_rows(const CsrMatrix& source,
                                             std::span<const std::size_t> selected);

  /// Raw CSR arrays, for algorithms that iterate the structure directly.
  [[nodiscard]] std::span<const std::size_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const std::uint32_t> col_idx() const noexcept { return cols_idx_; }

  [[nodiscard]] bool operator==(const CsrMatrix& other) const noexcept = default;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::uint32_t> cols_idx_;
};

}  // namespace rolediet::linalg
