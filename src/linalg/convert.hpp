// Conversions between the dense and sparse assignment-matrix forms.
//
// The framework keeps datasets sparse; methods that need packed rows
// (DBSCAN / HNSW distance kernels) densify on entry. §III-B notes that the
// choice of representation should weigh conversion time — the ablation bench
// measures exactly this trade-off.
#pragma once

#include "linalg/bit_matrix.hpp"
#include "linalg/csr_matrix.hpp"

namespace rolediet::linalg {

/// Densifies a sparse matrix. Memory: rows * ceil(cols/64) * 8 bytes.
[[nodiscard]] BitMatrix to_dense(const CsrMatrix& sparse);

/// Sparsifies a dense matrix (entries in row-major order).
[[nodiscard]] CsrMatrix to_sparse(const BitMatrix& dense);

}  // namespace rolediet::linalg
