// Dense packed boolean matrix.
//
// This is the in-memory form of the paper's RUAM (Role-User Assignment
// Matrix) and RPAM (Role-Permission Assignment Matrix): rows are roles,
// columns are users (or permissions), entry (i, j) == 1 iff role i is
// assigned user/permission j (§III-B of the paper).
//
// Rows are packed 64 bits per word, so Hamming distance / co-occurrence
// between two roles costs ceil(cols/64) XOR/AND+popcount operations — the
// kernel on which all three detection methods run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitops.hpp"

namespace rolediet::linalg {

class BitMatrix {
 public:
  /// Empty 0x0 matrix.
  BitMatrix() = default;

  /// rows x cols matrix of zeros.
  BitMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_per_row_; }

  /// Read entry (r, c). Preconditions: r < rows(), c < cols().
  [[nodiscard]] bool get(std::size_t r, std::size_t c) const noexcept {
    return (data_[r * words_per_row_ + c / 64] >> (c % 64)) & 1U;
  }

  /// Set entry (r, c) to `value`. Preconditions: r < rows(), c < cols().
  void set(std::size_t r, std::size_t c, bool value = true) noexcept {
    std::uint64_t& word = data_[r * words_per_row_ + c / 64];
    const std::uint64_t bit = std::uint64_t{1} << (c % 64);
    if (value) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  }

  /// Packed words of row r (read-only view).
  [[nodiscard]] std::span<const std::uint64_t> row(std::size_t r) const noexcept {
    return {data_.data() + r * words_per_row_, words_per_row_};
  }

  /// Packed words of row r (mutable view). Bits >= cols() in the final word
  /// must stay zero — use set() unless bulk-filling whole words.
  [[nodiscard]] std::span<std::uint64_t> row_mut(std::size_t r) noexcept {
    return {data_.data() + r * words_per_row_, words_per_row_};
  }

  /// Number of set bits in row r — the role "norm" |R^i| from the paper.
  [[nodiscard]] std::size_t row_popcount(std::size_t r) const noexcept {
    return util::popcount_span(row(r));
  }

  /// Hamming distance between rows a and b.
  [[nodiscard]] std::size_t row_hamming(std::size_t a, std::size_t b) const noexcept {
    return util::hamming_words(row(a), row(b));
  }

  /// Hamming distance with early exit past `limit` (see bitops.hpp).
  [[nodiscard]] std::size_t row_hamming_bounded(std::size_t a, std::size_t b,
                                                std::size_t limit) const noexcept {
    return util::hamming_words_bounded(row(a), row(b), limit);
  }

  /// Co-occurrence count g(Ra, Rb): positions set in both rows.
  [[nodiscard]] std::size_t row_intersection(std::size_t a, std::size_t b) const noexcept {
    return util::intersection_words(row(a), row(b));
  }

  /// True when rows a and b are identical.
  [[nodiscard]] bool rows_equal(std::size_t a, std::size_t b) const noexcept {
    return util::equal_words(row(a), row(b));
  }

  /// 64-bit digest of row r. Equal rows hash equal; used as a grouping
  /// prefilter (buckets are verified bit-for-bit afterwards).
  [[nodiscard]] std::uint64_t row_hash(std::size_t r) const noexcept;

  /// Column sums — per-column popcounts. A zero entry marks a standalone
  /// user/permission node (inefficiency type 1 in the taxonomy).
  [[nodiscard]] std::vector<std::size_t> column_sums() const;

  /// Row sums — per-role norms in one pass.
  [[nodiscard]] std::vector<std::size_t> row_sums() const;

  /// Clears all bits, keeping the shape.
  void clear() noexcept;

  [[nodiscard]] bool operator==(const BitMatrix& other) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace rolediet::linalg
