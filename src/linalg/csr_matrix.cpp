#include "linalg/csr_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/prng.hpp"

namespace rolediet::linalg {

std::size_t csr_intersection(std::span<const std::uint32_t> a,
                             std::span<const std::uint32_t> b) noexcept {
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool csr_rows_equal(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) noexcept {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

std::uint64_t csr_row_digest(std::span<const std::uint32_t> row) noexcept {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  for (std::uint32_t c : row) {
    h ^= util::mix64(static_cast<std::uint64_t>(c) + 0x9E3779B97F4A7C15ULL);
    h *= 0x100000001B3ULL;
  }
  // Fold the length so prefix sets do not collide trivially.
  h ^= util::mix64(row.size());
  return h;
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols)
    : cols_(cols), row_ptr_(rows + 1, 0) {}

CsrMatrix CsrMatrix::from_pairs(std::size_t rows, std::size_t cols,
                                std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs) {
  for (const auto& [r, c] : pairs) {
    if (r >= rows || c >= cols)
      throw std::out_of_range("CsrMatrix::from_pairs: entry (" + std::to_string(r) + ", " +
                              std::to_string(c) + ") outside " + std::to_string(rows) + "x" +
                              std::to_string(cols));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  CsrMatrix m(rows, cols);
  m.cols_idx_.reserve(pairs.size());
  std::size_t next_pair = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (next_pair < pairs.size() && pairs[next_pair].first == r) {
      m.cols_idx_.push_back(pairs[next_pair].second);
      ++next_pair;
    }
    m.row_ptr_[r + 1] = m.cols_idx_.size();
  }
  return m;
}

CsrMatrix CsrMatrix::from_csr(std::size_t cols, std::vector<std::size_t> row_ptr,
                              std::vector<std::uint32_t> cols_idx) {
  if (row_ptr.empty() || row_ptr.front() != 0 || row_ptr.back() != cols_idx.size())
    throw std::invalid_argument("CsrMatrix::from_csr: row_ptr does not frame the index array");
  for (std::size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    if (row_ptr[r] > row_ptr[r + 1])
      throw std::invalid_argument("CsrMatrix::from_csr: row_ptr not monotone at row " +
                                  std::to_string(r));
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (cols_idx[k] >= cols || (k > row_ptr[r] && cols_idx[k - 1] >= cols_idx[k]))
        throw std::invalid_argument("CsrMatrix::from_csr: row " + std::to_string(r) +
                                    " is not strictly increasing within bounds");
    }
  }
  CsrMatrix m;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.cols_idx_ = std::move(cols_idx);
  return m;
}

CsrMatrix CsrMatrix::copy_of(const CsrView& view, std::size_t cols_override) {
  CsrMatrix m(view.rows(), cols_override != 0 ? cols_override : view.cols);
  m.row_ptr_.assign(view.row_ptr.begin(), view.row_ptr.end());
  if (m.row_ptr_.empty()) m.row_ptr_.push_back(0);
  m.cols_idx_.assign(view.cols_idx.begin(), view.cols_idx.end());
  return m;
}

bool CsrMatrix::get(std::size_t r, std::size_t c) const noexcept {
  const auto cells = row(r);
  return std::binary_search(cells.begin(), cells.end(), static_cast<std::uint32_t>(c));
}

std::size_t CsrMatrix::row_intersection(std::size_t a, std::size_t b) const noexcept {
  return csr_intersection(row(a), row(b));
}

bool CsrMatrix::rows_equal(std::size_t a, std::size_t b) const noexcept {
  return csr_rows_equal(row(a), row(b));
}

std::uint64_t CsrMatrix::row_hash(std::size_t r) const noexcept { return csr_row_digest(row(r)); }

CsrMatrix CsrMatrix::gather_rows(const CsrMatrix& source, std::span<const std::size_t> selected) {
  CsrMatrix out(selected.size(), source.cols());
  std::size_t total = 0;
  for (std::size_t r : selected) total += source.row_size(r);
  out.cols_idx_.reserve(total);
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const auto cells = source.row(selected[i]);
    out.cols_idx_.insert(out.cols_idx_.end(), cells.begin(), cells.end());
    out.row_ptr_[i + 1] = out.cols_idx_.size();
  }
  return out;
}

std::vector<std::size_t> CsrMatrix::column_sums() const {
  std::vector<std::size_t> sums(cols_, 0);
  for (std::uint32_t c : cols_idx_) sums[c] += 1;
  return sums;
}

std::vector<std::size_t> CsrMatrix::row_sums() const {
  std::vector<std::size_t> sums(rows());
  for (std::size_t r = 0; r < rows(); ++r) sums[r] = row_size(r);
  return sums;
}

CsrMatrix CsrMatrix::transpose() const {
  const std::size_t n_rows = rows();
  CsrMatrix t(cols_, n_rows);
  t.cols_idx_.resize(nnz());

  // Counting pass: entries per output row (= input column).
  std::vector<std::size_t> counts(cols_, 0);
  for (std::uint32_t c : cols_idx_) counts[c] += 1;
  for (std::size_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] = t.row_ptr_[c] + counts[c];

  // Scatter pass; input rows are visited in increasing order, so the column
  // indices written into each output row come out already sorted.
  std::vector<std::size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::uint32_t c : row(r)) {
      t.cols_idx_[cursor[c]++] = static_cast<std::uint32_t>(r);
    }
  }
  return t;
}

}  // namespace rolediet::linalg
