// AVX2 kernel target: 256-bit XOR/AND with Mula's vpshufb nibble-count
// popcount (AVX2 has no per-word popcount instruction). Compiled with -mavx2
// for this file only; the dispatcher calls in here only after
// __builtin_cpu_supports("avx2") says the host can run it.
//
// Identical-integers contract: the nibble-LUT popcount is an exact bit
// count, and the bounded kernel normalizes its over-limit return to
// limit + 1 exactly like the scalar reference, so every value leaving this
// TU matches kernels.cpp bit for bit.
#if defined(ROLEDIET_KERNELS_AVX2)

#include <immintrin.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "linalg/kernels/kernels.hpp"

namespace rolediet::linalg::kernels {

namespace {

/// Per-byte popcount of v via two 16-entry nibble lookups (Mula), then
/// widened to four 64-bit lane sums with SAD against zero.
inline __m256i popcount_epi64(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                                          0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts =
      _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo), _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t horizontal_sum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

std::size_t avx2_popcount(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount_epi64(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i))));
  }
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i]));
  return total;
}

std::size_t avx2_hamming(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_xor_si256(va, vb)));
  }
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

std::size_t avx2_hamming_bounded(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                                 std::size_t limit) {
  // Early exit at 4-word chunk granularity; coarser than the scalar kernel's
  // per-word check, but the normalized over-limit return (limit + 1) makes
  // the result identical regardless of where the scan stops.
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    total += horizontal_sum(popcount_epi64(_mm256_xor_si256(va, vb)));
    if (total > limit) return limit + 1;
  }
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    if (total > limit) return limit + 1;
  }
  return total;
}

std::size_t avx2_intersection(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount_epi64(_mm256_and_si256(va, vb)));
  }
  std::size_t total = horizontal_sum(acc);
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

bool avx2_equal(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi64(va, vb)) != -1) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

/// Register-blocked batch core: 4 candidate rows share every loaded query
/// chunk, so the query streams once per chunk and the four accumulators live
/// in registers across the whole word loop — GEMM-style tiling with rows as
/// the register-blocked dimension.
template <typename Combine, typename ScalarCombine>
inline void block4(const std::uint64_t* q, const std::uint64_t* r0, const std::uint64_t* r1,
                   const std::uint64_t* r2, const std::uint64_t* r3, std::size_t n,
                   std::size_t* out, Combine&& combine, ScalarCombine&& scalar_combine) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vq = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    acc0 = _mm256_add_epi64(
        acc0, popcount_epi64(combine(
                  vq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r0 + i)))));
    acc1 = _mm256_add_epi64(
        acc1, popcount_epi64(combine(
                  vq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r1 + i)))));
    acc2 = _mm256_add_epi64(
        acc2, popcount_epi64(combine(
                  vq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r2 + i)))));
    acc3 = _mm256_add_epi64(
        acc3, popcount_epi64(combine(
                  vq, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(r3 + i)))));
  }
  out[0] = horizontal_sum(acc0);
  out[1] = horizontal_sum(acc1);
  out[2] = horizontal_sum(acc2);
  out[3] = horizontal_sum(acc3);
  for (; i < n; ++i) {
    out[0] += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r0[i])));
    out[1] += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r1[i])));
    out[2] += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r2[i])));
    out[3] += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r3[i])));
  }
}

void avx2_hamming_block(const std::uint64_t* q, const std::uint64_t* rows, std::size_t stride,
                        std::size_t count, std::size_t n, std::size_t* out) {
  std::size_t r = 0;
  const auto xor_combine = [](__m256i x, __m256i y) { return _mm256_xor_si256(x, y); };
  const auto xor_scalar = [](std::uint64_t x, std::uint64_t y) { return x ^ y; };
  for (; r + 4 <= count; r += 4) {
    const std::uint64_t* base = rows + r * stride;
    block4(q, base, base + stride, base + 2 * stride, base + 3 * stride, n, out + r,
           xor_combine, xor_scalar);
  }
  for (; r < count; ++r) out[r] = avx2_hamming(q, rows + r * stride, n);
}

void avx2_hamming_bounded_block(const std::uint64_t* q, const std::uint64_t* rows,
                                std::size_t stride, std::size_t count, std::size_t n,
                                std::size_t limit, std::size_t* out) {
  // Bounded scoring early-exits per row, so rows are processed one at a time
  // with the word-chunked bounded kernel (the query stays hot in cache across
  // the whole block regardless).
  for (std::size_t r = 0; r < count; ++r)
    out[r] = avx2_hamming_bounded(q, rows + r * stride, n, limit);
}

void avx2_intersection_block(const std::uint64_t* q, const std::uint64_t* rows,
                             std::size_t stride, std::size_t count, std::size_t n,
                             std::size_t* out) {
  std::size_t r = 0;
  const auto and_combine = [](__m256i x, __m256i y) { return _mm256_and_si256(x, y); };
  const auto and_scalar = [](std::uint64_t x, std::uint64_t y) { return x & y; };
  for (; r + 4 <= count; r += 4) {
    const std::uint64_t* base = rows + r * stride;
    block4(q, base, base + stride, base + 2 * stride, base + 3 * stride, n, out + r,
           and_combine, and_scalar);
  }
  for (; r < count; ++r) out[r] = avx2_intersection(q, rows + r * stride, n);
}

constexpr KernelOps kAvx2Ops = {
    .popcount = avx2_popcount,
    .hamming = avx2_hamming,
    .hamming_bounded = avx2_hamming_bounded,
    .intersection = avx2_intersection,
    .equal = avx2_equal,
    .hamming_block = avx2_hamming_block,
    .hamming_bounded_block = avx2_hamming_bounded_block,
    .intersection_block = avx2_intersection_block,
};

}  // namespace

const KernelOps& avx2_ops() noexcept { return kAvx2Ops; }

}  // namespace rolediet::linalg::kernels

#endif  // ROLEDIET_KERNELS_AVX2
