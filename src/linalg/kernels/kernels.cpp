// Scalar reference kernels + runtime dispatch for the kernel layer.
//
// The scalar table is the portable contract: every other target must compute
// the same integers (kernels.hpp). Dispatch resolves once, at first use, and
// is overridable for testing via ROLEDIET_KERNEL / set_active_isa().
#include "linalg/kernels/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace rolediet::linalg::kernels {

namespace {

// ---- Scalar reference implementations (bit-for-bit util/bitops.hpp) -------

std::size_t scalar_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i]));
  return total;
}

std::size_t scalar_hamming(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

std::size_t scalar_hamming_bounded(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                                   std::size_t limit) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    if (total > limit) return limit + 1;  // normalized over-limit return
  }
  return total;
}

std::size_t scalar_intersection(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i)
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

bool scalar_equal(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

void scalar_hamming_block(const std::uint64_t* q, const std::uint64_t* rows, std::size_t stride,
                          std::size_t count, std::size_t n, std::size_t* out) {
  for (std::size_t r = 0; r < count; ++r) out[r] = scalar_hamming(q, rows + r * stride, n);
}

void scalar_hamming_bounded_block(const std::uint64_t* q, const std::uint64_t* rows,
                                  std::size_t stride, std::size_t count, std::size_t n,
                                  std::size_t limit, std::size_t* out) {
  for (std::size_t r = 0; r < count; ++r)
    out[r] = scalar_hamming_bounded(q, rows + r * stride, n, limit);
}

void scalar_intersection_block(const std::uint64_t* q, const std::uint64_t* rows,
                               std::size_t stride, std::size_t count, std::size_t n,
                               std::size_t* out) {
  for (std::size_t r = 0; r < count; ++r) out[r] = scalar_intersection(q, rows + r * stride, n);
}

constexpr KernelOps kScalarOps = {
    .popcount = scalar_popcount,
    .hamming = scalar_hamming,
    .hamming_bounded = scalar_hamming_bounded,
    .intersection = scalar_intersection,
    .equal = scalar_equal,
    .hamming_block = scalar_hamming_block,
    .hamming_bounded_block = scalar_hamming_bounded_block,
    .intersection_block = scalar_intersection_block,
};

}  // namespace

const KernelOps& scalar_ops() noexcept { return kScalarOps; }

// Tables compiled in separate TUs with per-file -m flags; only referenced
// when the matching macro is on, and only called after runtime detection.
#if defined(ROLEDIET_KERNELS_AVX2)
const KernelOps& avx2_ops() noexcept;  // kernels_avx2.cpp
#endif
#if defined(ROLEDIET_KERNELS_AVX512)
const KernelOps& avx512_ops() noexcept;  // kernels_avx512.cpp
#endif
#if defined(ROLEDIET_KERNELS_NEON)
const KernelOps& neon_ops() noexcept;  // kernels_neon.cpp
#endif

std::string_view to_string(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kAuto: return "auto";
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
    case KernelIsa::kNeon: return "neon";
  }
  return "?";
}

std::optional<KernelIsa> parse_kernel_isa(std::string_view name) noexcept {
  if (name == "auto") return KernelIsa::kAuto;
  if (name == "scalar") return KernelIsa::kScalar;
  if (name == "avx2") return KernelIsa::kAvx2;
  if (name == "avx512") return KernelIsa::kAvx512;
  if (name == "neon") return KernelIsa::kNeon;
  return std::nullopt;
}

bool isa_supported(KernelIsa isa) noexcept {
  switch (isa) {
    case KernelIsa::kAuto:
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kAvx2:
#if defined(ROLEDIET_KERNELS_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelIsa::kAvx512:
#if defined(ROLEDIET_KERNELS_AVX512)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
      return false;
#endif
    case KernelIsa::kNeon:
#if defined(ROLEDIET_KERNELS_NEON)
      return true;  // NEON is baseline on aarch64
#else
      return false;
#endif
  }
  return false;
}

KernelIsa detect_isa() noexcept {
  if (isa_supported(KernelIsa::kAvx512)) return KernelIsa::kAvx512;
  if (isa_supported(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
  if (isa_supported(KernelIsa::kNeon)) return KernelIsa::kNeon;
  return KernelIsa::kScalar;
}

std::string capability_string() {
  std::string caps = "scalar";
  for (KernelIsa isa : {KernelIsa::kNeon, KernelIsa::kAvx2, KernelIsa::kAvx512}) {
    if (isa_supported(isa)) {
      caps += ',';
      caps += to_string(isa);
    }
  }
  return caps;
}

const KernelOps& ops_for(KernelIsa isa) noexcept {
  switch (isa) {
#if defined(ROLEDIET_KERNELS_AVX2)
    case KernelIsa::kAvx2:
      return avx2_ops();
#endif
#if defined(ROLEDIET_KERNELS_AVX512)
    case KernelIsa::kAvx512:
      return avx512_ops();
#endif
#if defined(ROLEDIET_KERNELS_NEON)
    case KernelIsa::kNeon:
      return neon_ops();
#endif
    default:
      return kScalarOps;
  }
}

namespace {

/// Resolves the startup default: ROLEDIET_KERNEL when runnable, else
/// detection. Never fails — a bad env value is a warning, not an abort, so a
/// pinned CI job can export one value across heterogeneous hosts.
KernelIsa resolve_default_isa() noexcept {
  if (const char* env = std::getenv("ROLEDIET_KERNEL"); env != nullptr && env[0] != '\0') {
    const std::optional<KernelIsa> requested = parse_kernel_isa(env);
    if (!requested.has_value()) {
      std::fprintf(stderr,
                   "rolediet: ignoring unknown ROLEDIET_KERNEL='%s' "
                   "(expected auto, scalar, avx2, avx512, or neon)\n",
                   env);
    } else if (*requested != KernelIsa::kAuto && !isa_supported(*requested)) {
      std::fprintf(stderr,
                   "rolediet: ROLEDIET_KERNEL='%s' is not runnable on this host "
                   "(capabilities: %s); falling back to auto-detection\n",
                   env, capability_string().c_str());
    } else if (*requested != KernelIsa::kAuto) {
      return *requested;
    }
  }
  return detect_isa();
}

/// The resolved active target. kAuto doubles as "not yet resolved"; the
/// first reader resolves it. Identical-integers makes the benign race here
/// harmless: two resolvers compute the same value.
std::atomic<KernelIsa> g_active_isa{KernelIsa::kAuto};

}  // namespace

KernelIsa active_isa() noexcept {
  KernelIsa isa = g_active_isa.load(std::memory_order_acquire);
  if (isa == KernelIsa::kAuto) {
    isa = resolve_default_isa();
    g_active_isa.store(isa, std::memory_order_release);
  }
  return isa;
}

const KernelOps& active() noexcept { return ops_for(active_isa()); }

void set_active_isa(KernelIsa isa) {
  if (isa == KernelIsa::kAuto) {
    g_active_isa.store(resolve_default_isa(), std::memory_order_release);
    return;
  }
  if (!isa_supported(isa)) {
    throw std::invalid_argument("kernel target '" + std::string(to_string(isa)) +
                                "' is not runnable on this host (capabilities: " +
                                capability_string() + ")");
  }
  g_active_isa.store(isa, std::memory_order_release);
}

}  // namespace rolediet::linalg::kernels
