// NEON kernel target (aarch64): 128-bit XOR/AND with vcnt byte counts
// widened via paired-add to 64-bit lane sums. NEON is baseline on aarch64 so
// no runtime feature check is needed — the macro alone gates compilation.
//
// Identical-integers contract: vcnt is an exact per-byte popcount and the
// bounded kernel normalizes its over-limit return to limit + 1, so every
// value leaving this TU matches the scalar reference bit for bit.
#if defined(ROLEDIET_KERNELS_NEON)

#include <arm_neon.h>

#include <bit>
#include <cstddef>
#include <cstdint>

#include "linalg/kernels/kernels.hpp"

namespace rolediet::linalg::kernels {

namespace {

/// Popcount of both 64-bit lanes of v, summed.
inline std::uint64_t popcount_u64x2(uint64x2_t v) {
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(v));
  return vaddvq_u8(bytes);  // sums 16 byte-counts (max 128) into one scalar
}

std::size_t neon_popcount(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) total += popcount_u64x2(vld1q_u64(a + i));
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i]));
  return total;
}

std::size_t neon_hamming(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    total += popcount_u64x2(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  return total;
}

std::size_t neon_hamming_bounded(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                                 std::size_t limit) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    total += popcount_u64x2(veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    if (total > limit) return limit + 1;
  }
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    if (total > limit) return limit + 1;
  }
  return total;
}

std::size_t neon_intersection(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    total += popcount_u64x2(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  for (; i < n; ++i) total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  return total;
}

bool neon_equal(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t x = veorq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    if ((vgetq_lane_u64(x, 0) | vgetq_lane_u64(x, 1)) != 0) return false;
  }
  for (; i < n; ++i)
    if (a[i] != b[i]) return false;
  return true;
}

/// Register-blocked batch core: 4 candidate rows reuse each loaded query
/// chunk; per-row byte-count accumulators stay in registers.
template <typename Combine, typename ScalarCombine>
inline void block4(const std::uint64_t* q, const std::uint64_t* r0, const std::uint64_t* r1,
                   const std::uint64_t* r2, const std::uint64_t* r3, std::size_t n,
                   std::size_t* out, Combine&& combine, ScalarCombine&& scalar_combine) {
  std::size_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vq = vld1q_u64(q + i);
    t0 += popcount_u64x2(combine(vq, vld1q_u64(r0 + i)));
    t1 += popcount_u64x2(combine(vq, vld1q_u64(r1 + i)));
    t2 += popcount_u64x2(combine(vq, vld1q_u64(r2 + i)));
    t3 += popcount_u64x2(combine(vq, vld1q_u64(r3 + i)));
  }
  for (; i < n; ++i) {
    t0 += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r0[i])));
    t1 += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r1[i])));
    t2 += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r2[i])));
    t3 += static_cast<std::size_t>(std::popcount(scalar_combine(q[i], r3[i])));
  }
  out[0] = t0;
  out[1] = t1;
  out[2] = t2;
  out[3] = t3;
}

void neon_hamming_block(const std::uint64_t* q, const std::uint64_t* rows, std::size_t stride,
                        std::size_t count, std::size_t n, std::size_t* out) {
  std::size_t r = 0;
  const auto xor_combine = [](uint64x2_t x, uint64x2_t y) { return veorq_u64(x, y); };
  const auto xor_scalar = [](std::uint64_t x, std::uint64_t y) { return x ^ y; };
  for (; r + 4 <= count; r += 4) {
    const std::uint64_t* base = rows + r * stride;
    block4(q, base, base + stride, base + 2 * stride, base + 3 * stride, n, out + r,
           xor_combine, xor_scalar);
  }
  for (; r < count; ++r) out[r] = neon_hamming(q, rows + r * stride, n);
}

void neon_hamming_bounded_block(const std::uint64_t* q, const std::uint64_t* rows,
                                std::size_t stride, std::size_t count, std::size_t n,
                                std::size_t limit, std::size_t* out) {
  for (std::size_t r = 0; r < count; ++r)
    out[r] = neon_hamming_bounded(q, rows + r * stride, n, limit);
}

void neon_intersection_block(const std::uint64_t* q, const std::uint64_t* rows,
                             std::size_t stride, std::size_t count, std::size_t n,
                             std::size_t* out) {
  std::size_t r = 0;
  const auto and_combine = [](uint64x2_t x, uint64x2_t y) { return vandq_u64(x, y); };
  const auto and_scalar = [](std::uint64_t x, std::uint64_t y) { return x & y; };
  for (; r + 4 <= count; r += 4) {
    const std::uint64_t* base = rows + r * stride;
    block4(q, base, base + stride, base + 2 * stride, base + 3 * stride, n, out + r,
           and_combine, and_scalar);
  }
  for (; r < count; ++r) out[r] = neon_intersection(q, rows + r * stride, n);
}

constexpr KernelOps kNeonOps = {
    .popcount = neon_popcount,
    .hamming = neon_hamming,
    .hamming_bounded = neon_hamming_bounded,
    .intersection = neon_intersection,
    .equal = neon_equal,
    .hamming_block = neon_hamming_block,
    .hamming_bounded_block = neon_hamming_bounded_block,
    .intersection_block = neon_intersection_block,
};

}  // namespace

const KernelOps& neon_ops() noexcept { return kNeonOps; }

}  // namespace rolediet::linalg::kernels

#endif  // ROLEDIET_KERNELS_NEON
