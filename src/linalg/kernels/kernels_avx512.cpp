// AVX-512 kernel target: 512-bit XOR/AND plus the VPOPCNTDQ per-word
// popcount instruction — the widest path, one instruction per 8-word
// popcount, masked loads for the tail so no scalar cleanup loop is needed.
// Compiled with -mavx512f -mavx512vpopcntdq -mavx512bw for this file only;
// dispatch requires both avx512f and avx512vpopcntdq at runtime.
//
// Identical-integers contract: VPOPCNTQ is an exact per-word popcount and the
// bounded kernel normalizes its over-limit return to limit + 1, so every
// value leaving this TU matches the scalar reference bit for bit.
#if defined(ROLEDIET_KERNELS_AVX512)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "linalg/kernels/kernels.hpp"

namespace rolediet::linalg::kernels {

namespace {

/// Load mask covering the k < 8 tail words of a span.
inline __mmask8 tail_load_mask(std::size_t k) {
  return static_cast<__mmask8>((1u << k) - 1u);
}

std::size_t avx512_popcount(const std::uint64_t* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  if (i < n) {
    const __mmask8 m = tail_load_mask(n - i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(m, a + i)));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

std::size_t avx512_hamming(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (i < n) {
    const __mmask8 m = tail_load_mask(n - i);
    const __m512i x = _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

std::size_t avx512_hamming_bounded(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                                   std::size_t limit) {
  // Early exit at 8-word chunk granularity; the normalized limit + 1 return
  // makes the result identical to the scalar per-word early exit.
  std::size_t total = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    total += static_cast<std::size_t>(_mm512_reduce_add_epi64(_mm512_popcnt_epi64(x)));
    if (total > limit) return limit + 1;
  }
  if (i < n) {
    const __mmask8 m = tail_load_mask(n - i);
    const __m512i x = _mm512_xor_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    total += static_cast<std::size_t>(_mm512_reduce_add_epi64(_mm512_popcnt_epi64(x)));
    if (total > limit) return limit + 1;
  }
  return total;
}

std::size_t avx512_intersection(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i x = _mm512_and_si512(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  if (i < n) {
    const __mmask8 m = tail_load_mask(n - i);
    const __m512i x = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, a + i),
                                       _mm512_maskz_loadu_epi64(m, b + i));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  return static_cast<std::size_t>(_mm512_reduce_add_epi64(acc));
}

bool avx512_equal(const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __mmask8 eq =
        _mm512_cmpeq_epi64_mask(_mm512_loadu_si512(a + i), _mm512_loadu_si512(b + i));
    if (eq != 0xff) return false;
  }
  if (i < n) {
    const __mmask8 m = tail_load_mask(n - i);
    const __mmask8 eq = _mm512_mask_cmpeq_epi64_mask(m, _mm512_maskz_loadu_epi64(m, a + i),
                                                     _mm512_maskz_loadu_epi64(m, b + i));
    if (eq != m) return false;
  }
  return true;
}

/// Register-blocked batch core: 4 candidate rows reuse each loaded query
/// chunk, accumulators stay in zmm registers across the whole word loop.
/// Masked tail loads fold the <8-word tail into the same vector path.
template <typename Combine>
inline void block4(const std::uint64_t* q, const std::uint64_t* r0, const std::uint64_t* r1,
                   const std::uint64_t* r2, const std::uint64_t* r3, std::size_t n,
                   std::size_t* out, Combine&& combine) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  __m512i acc2 = _mm512_setzero_si512();
  __m512i acc3 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vq = _mm512_loadu_si512(q + i);
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(combine(vq, _mm512_loadu_si512(r0 + i))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(combine(vq, _mm512_loadu_si512(r1 + i))));
    acc2 = _mm512_add_epi64(
        acc2, _mm512_popcnt_epi64(combine(vq, _mm512_loadu_si512(r2 + i))));
    acc3 = _mm512_add_epi64(
        acc3, _mm512_popcnt_epi64(combine(vq, _mm512_loadu_si512(r3 + i))));
  }
  if (i < n) {
    const __mmask8 m = tail_load_mask(n - i);
    const __m512i vq = _mm512_maskz_loadu_epi64(m, q + i);
    acc0 = _mm512_add_epi64(
        acc0, _mm512_popcnt_epi64(combine(vq, _mm512_maskz_loadu_epi64(m, r0 + i))));
    acc1 = _mm512_add_epi64(
        acc1, _mm512_popcnt_epi64(combine(vq, _mm512_maskz_loadu_epi64(m, r1 + i))));
    acc2 = _mm512_add_epi64(
        acc2, _mm512_popcnt_epi64(combine(vq, _mm512_maskz_loadu_epi64(m, r2 + i))));
    acc3 = _mm512_add_epi64(
        acc3, _mm512_popcnt_epi64(combine(vq, _mm512_maskz_loadu_epi64(m, r3 + i))));
  }
  out[0] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc0));
  out[1] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc1));
  out[2] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc2));
  out[3] = static_cast<std::size_t>(_mm512_reduce_add_epi64(acc3));
}

void avx512_hamming_block(const std::uint64_t* q, const std::uint64_t* rows, std::size_t stride,
                          std::size_t count, std::size_t n, std::size_t* out) {
  std::size_t r = 0;
  const auto xor_combine = [](__m512i x, __m512i y) { return _mm512_xor_si512(x, y); };
  for (; r + 4 <= count; r += 4) {
    const std::uint64_t* base = rows + r * stride;
    block4(q, base, base + stride, base + 2 * stride, base + 3 * stride, n, out + r,
           xor_combine);
  }
  for (; r < count; ++r) out[r] = avx512_hamming(q, rows + r * stride, n);
}

void avx512_hamming_bounded_block(const std::uint64_t* q, const std::uint64_t* rows,
                                  std::size_t stride, std::size_t count, std::size_t n,
                                  std::size_t limit, std::size_t* out) {
  // Bounded scoring early-exits per row; rows go one at a time through the
  // chunked bounded kernel with the query hot in cache across the block.
  for (std::size_t r = 0; r < count; ++r)
    out[r] = avx512_hamming_bounded(q, rows + r * stride, n, limit);
}

void avx512_intersection_block(const std::uint64_t* q, const std::uint64_t* rows,
                               std::size_t stride, std::size_t count, std::size_t n,
                               std::size_t* out) {
  std::size_t r = 0;
  const auto and_combine = [](__m512i x, __m512i y) { return _mm512_and_si512(x, y); };
  for (; r + 4 <= count; r += 4) {
    const std::uint64_t* base = rows + r * stride;
    block4(q, base, base + stride, base + 2 * stride, base + 3 * stride, n, out + r,
           and_combine);
  }
  for (; r < count; ++r) out[r] = avx512_intersection(q, rows + r * stride, n);
}

constexpr KernelOps kAvx512Ops = {
    .popcount = avx512_popcount,
    .hamming = avx512_hamming,
    .hamming_bounded = avx512_hamming_bounded,
    .intersection = avx512_intersection,
    .equal = avx512_equal,
    .hamming_block = avx512_hamming_block,
    .hamming_bounded_block = avx512_hamming_bounded_block,
    .intersection_block = avx512_intersection_block,
};

}  // namespace

const KernelOps& avx512_ops() noexcept { return kAvx512Ops; }

}  // namespace rolediet::linalg::kernels

#endif  // ROLEDIET_KERNELS_AVX512
