// SIMD-dispatched batch verification kernels.
//
// Every detection method bottoms out in a handful of integer kernels over
// packed 64-bit words (util/bitops.hpp): Hamming distance, bounded Hamming,
// intersection (co-occurrence), equality, popcount. This layer provides the
// same five operations — plus *batch* entry points that score one query row
// against a whole block of rows per memory pass — compiled for several
// instruction sets and selected once at startup by runtime CPU detection:
//
//   scalar   portable fallback, bit-for-bit the util/bitops.hpp loops;
//   avx2     256-bit XOR/AND + Mula's vpshufb nibble-count popcount;
//   avx512   512-bit lanes + the VPOPCNTDQ per-word popcount instruction;
//   neon     128-bit lanes + vcnt byte counts (aarch64 builds only).
//
// The contract every target must honor: ALL dispatch targets compute
// IDENTICAL INTEGERS for every operation on every input. Popcounts are exact
// in any lane width, so this holds by construction for hamming /
// intersection / equality / popcount; for the bounded kernel the over-limit
// return is normalized to exactly `limit + 1` (see hamming_bounded below) so
// even its raw values — not just its verdicts — agree across targets.
// Groups, reports, and FinderWorkStats therefore stay byte-identical
// whichever target runs; the differential suite pins every target available
// on the host against the scalar reference.
//
// Batch shape (the way marian-lite blocks its batched integer GEMM): the
// query row's words are streamed once per word-chunk and reused across a
// register block of candidate rows, so scoring B rows costs one pass over
// the block plus one hot-in-register query instead of B separate two-row
// passes. Candidate rows must be consecutive (BitMatrix rows are contiguous
// at a fixed word stride); gathered candidate lists go through the *_gather
// wrappers in linalg/row_store.hpp, which amortize the dispatch lookup but
// stream pairs one at a time.
//
// Selection: `active()` resolves once, at first use, to the best target the
// CPU supports, overridable by the ROLEDIET_KERNEL environment variable or
// the CLI `--kernel` flag (set_active_isa). Forcing a target the host cannot
// run is an error, never a crash: set_active_isa throws, and an unsupported
// env value falls back to auto-detection with a warning on stderr.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rolediet::linalg::kernels {

/// Dispatch targets. kAuto is a request ("best supported"), never a resolved
/// target: active_isa() always reports one of the four concrete ISAs.
enum class KernelIsa {
  kAuto,
  kScalar,
  kAvx2,
  kAvx512,  ///< AVX-512F + VPOPCNTDQ
  kNeon,
};

[[nodiscard]] std::string_view to_string(KernelIsa isa) noexcept;

/// Parses "auto" / "scalar" / "avx2" / "avx512" / "neon"; nullopt otherwise.
[[nodiscard]] std::optional<KernelIsa> parse_kernel_isa(std::string_view name) noexcept;

/// One dispatch target's kernel table. All function pointers are non-null in
/// every table; `n` is the word count of each span.
struct KernelOps {
  /// Total set bits across `a[0..n)`.
  std::size_t (*popcount)(const std::uint64_t* a, std::size_t n);

  /// Hamming distance (differing bits) between `a` and `b`.
  std::size_t (*hamming)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);

  /// Bounded Hamming distance. Contract (identical for every target): the
  /// exact distance when it is <= `limit`, and exactly `limit + 1` when the
  /// distance exceeds `limit` — the kernel may stop scanning as soon as the
  /// running count passes the limit. Callers must only ever compare the
  /// result against `limit`; it is NOT the true distance past the limit.
  std::size_t (*hamming_bounded)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n,
                                 std::size_t limit);

  /// Bits set in both spans — the co-occurrence count g(Ri, Rj).
  std::size_t (*intersection)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);

  /// True when the spans are bit-for-bit identical.
  bool (*equal)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);

  // ---- Batch entry points: one query row vs a block of consecutive rows.
  // Row r of the block starts at rows + r * stride (stride >= n words);
  // out[r] receives the score of (q, row r).

  /// out[r] = hamming(q, row r) for r in [0, count).
  void (*hamming_block)(const std::uint64_t* q, const std::uint64_t* rows, std::size_t stride,
                        std::size_t count, std::size_t n, std::size_t* out);

  /// out[r] = bounded hamming(q, row r) under the hamming_bounded contract:
  /// exact when <= limit, exactly limit + 1 otherwise.
  void (*hamming_bounded_block)(const std::uint64_t* q, const std::uint64_t* rows,
                                std::size_t stride, std::size_t count, std::size_t n,
                                std::size_t limit, std::size_t* out);

  /// out[r] = intersection(q, row r) for r in [0, count).
  void (*intersection_block)(const std::uint64_t* q, const std::uint64_t* rows,
                             std::size_t stride, std::size_t count, std::size_t n,
                             std::size_t* out);
};

/// The portable reference table (bit-for-bit the util/bitops.hpp loops).
[[nodiscard]] const KernelOps& scalar_ops() noexcept;

/// True when this process can run `isa` (compiled in AND supported by the
/// CPU). kAuto and kScalar are always supported.
[[nodiscard]] bool isa_supported(KernelIsa isa) noexcept;

/// Best target the host supports: avx512 > avx2 > neon > scalar.
[[nodiscard]] KernelIsa detect_isa() noexcept;

/// Comma-separated list of the targets this process can run, best last
/// (e.g. "scalar,avx2,avx512") — lets a scalar-only host explain itself in
/// bench output and reports.
[[nodiscard]] std::string capability_string();

/// Kernel table for a *supported* resolved target. Precondition:
/// isa_supported(isa) && isa != kAuto.
[[nodiscard]] const KernelOps& ops_for(KernelIsa isa) noexcept;

/// The process-wide active target, resolved on first use: ROLEDIET_KERNEL if
/// set to a runnable target (an unrunnable or unknown value warns on stderr
/// and falls back), else detect_isa(). Never returns kAuto.
[[nodiscard]] KernelIsa active_isa() noexcept;

/// Kernel table of active_isa(). Fetch once per batch, not per pair.
[[nodiscard]] const KernelOps& active() noexcept;

/// Forces the active target (CLI --kernel, differential tests). kAuto
/// re-resolves via env/detection. Throws std::invalid_argument when the host
/// cannot run `isa`. Safe to call between audits; concurrent readers see
/// either the old or the new table — both compute identical integers, so
/// results are unaffected either way.
void set_active_isa(KernelIsa isa);

}  // namespace rolediet::linalg::kernels
