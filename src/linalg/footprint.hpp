// Memory-footprint accounting for the representation claim in §III-B:
// storing RUAM + RPAM needs r*(u+p) cells instead of the (r+u+p)^2 cells of
// the full tripartite adjacency matrix, and sparse storage shrinks that
// further. These helpers make the claim checkable and let the ablation bench
// print real numbers.
#pragma once

#include <cstddef>

#include "linalg/bit_matrix.hpp"
#include "linalg/csr_matrix.hpp"

namespace rolediet::linalg {

/// Bytes of heap payload a dense packed matrix of the given shape needs.
[[nodiscard]] constexpr std::size_t dense_bytes(std::size_t rows, std::size_t cols) noexcept {
  return rows * util::words_for_bits(cols) * sizeof(std::uint64_t);
}

/// Bytes of heap payload a CSR matrix with the given shape and nnz needs
/// (row_ptr of size_t + column indices of uint32).
[[nodiscard]] constexpr std::size_t csr_bytes(std::size_t rows, std::size_t nnz) noexcept {
  return (rows + 1) * sizeof(std::size_t) + nnz * sizeof(std::uint32_t);
}

/// The three representations §III-B compares, for a dataset with `roles`,
/// `users`, `permissions`, and the given edge counts.
struct RepresentationFootprint {
  std::size_t full_adjacency_bytes = 0;  ///< (r+u+p)^2 bits, packed
  std::size_t sub_matrices_bytes = 0;    ///< r*(u+p) bits, packed (RUAM + RPAM)
  std::size_t sparse_bytes = 0;          ///< CSR RUAM + CSR RPAM
};

[[nodiscard]] constexpr RepresentationFootprint
representation_footprint(std::size_t roles, std::size_t users, std::size_t permissions,
                         std::size_t ruam_nnz, std::size_t rpam_nnz) noexcept {
  RepresentationFootprint f;
  const std::size_t all_nodes = roles + users + permissions;
  f.full_adjacency_bytes = dense_bytes(all_nodes, all_nodes);
  f.sub_matrices_bytes = dense_bytes(roles, users) + dense_bytes(roles, permissions);
  f.sparse_bytes = csr_bytes(roles, ruam_nnz) + csr_bytes(roles, rpam_nnz);
  return f;
}

/// Actual heap payload of a live matrix.
[[nodiscard]] inline std::size_t memory_bytes(const BitMatrix& m) noexcept {
  return dense_bytes(m.rows(), m.cols());
}
[[nodiscard]] inline std::size_t memory_bytes(const CsrMatrix& m) noexcept {
  return csr_bytes(m.rows(), m.nnz());
}

}  // namespace rolediet::linalg
