#include "linalg/row_store.hpp"

#include "linalg/convert.hpp"
#include "linalg/kernels/kernels.hpp"
#include "util/prng.hpp"

namespace rolediet::linalg {

std::string to_string(RowBackend backend) {
  switch (backend) {
    case RowBackend::kAuto:
      return "auto";
    case RowBackend::kDense:
      return "dense";
    case RowBackend::kSparse:
      return "sparse";
  }
  return "?";
}

RowBackend choose_backend(RowBackend requested, std::size_t rows, std::size_t cols,
                          std::size_t nnz) noexcept {
  if (requested != RowBackend::kAuto) return requested;
  const std::size_t cells = rows * cols;
  if (cells == 0) return RowBackend::kSparse;
  const double density = static_cast<double>(nnz) / static_cast<double>(cells);
  return density < kSparseDensityThreshold ? RowBackend::kSparse : RowBackend::kDense;
}

std::size_t RowStore::hamming_bounded(std::size_t a, std::size_t b,
                                      std::size_t limit) const noexcept {
  if (dense_ != nullptr) return dense_->row_hamming_bounded(a, b, limit);
  // Merge the two sorted index runs counting symmetric-difference entries;
  // the over-limit return is normalized to limit + 1 (the bounded contract,
  // util::hamming_words_bounded) so the raw values — not just the verdicts —
  // match the dense backend and every kernel dispatch target.
  const CsrView v = sview();
  const auto ra = v.row(a);
  const auto rb = v.row(b);
  std::size_t diff = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ra.size() && j < rb.size()) {
    if (ra[i] < rb[j]) {
      ++i;
      ++diff;
    } else if (ra[i] > rb[j]) {
      ++j;
      ++diff;
    } else {
      ++i;
      ++j;
    }
    if (diff > limit) return limit + 1;
  }
  diff += (ra.size() - i) + (rb.size() - j);
  return diff > limit ? limit + 1 : diff;
}

void RowStore::hamming_block(std::size_t q, std::size_t first, std::size_t count,
                             std::size_t* out) const noexcept {
  if (count == 0) return;
  if (dense_ != nullptr) {
    // BitMatrix rows are contiguous at a fixed word stride, so the block is
    // one slab the kernel can register-tile against the query.
    const auto& ops = kernels::active();
    ops.hamming_block(dense_->row(q).data(), dense_->row(first).data(),
                      dense_->words_per_row(), count, dense_->words_per_row(), out);
    return;
  }
  for (std::size_t k = 0; k < count; ++k) out[k] = hamming(q, first + k);
}

void RowStore::hamming_bounded_block(std::size_t q, std::size_t first, std::size_t count,
                                     std::size_t limit, std::size_t* out) const noexcept {
  if (count == 0) return;
  if (dense_ != nullptr) {
    const auto& ops = kernels::active();
    ops.hamming_bounded_block(dense_->row(q).data(), dense_->row(first).data(),
                              dense_->words_per_row(), count, dense_->words_per_row(), limit,
                              out);
    return;
  }
  for (std::size_t k = 0; k < count; ++k) out[k] = hamming_bounded(q, first + k, limit);
}

void RowStore::intersection_block(std::size_t q, std::size_t first, std::size_t count,
                                  std::size_t* out) const noexcept {
  if (count == 0) return;
  if (dense_ != nullptr) {
    const auto& ops = kernels::active();
    ops.intersection_block(dense_->row(q).data(), dense_->row(first).data(),
                           dense_->words_per_row(), count, dense_->words_per_row(), out);
    return;
  }
  const CsrView v = sview();
  for (std::size_t k = 0; k < count; ++k) out[k] = csr_intersection(v.row(q), v.row(first + k));
}

void RowStore::hamming_gather(std::size_t q, std::span<const std::uint32_t> idx,
                              std::size_t* out) const noexcept {
  if (dense_ != nullptr) {
    const auto& ops = kernels::active();
    const auto qr = dense_->row(q);
    const std::size_t n = dense_->words_per_row();
    for (std::size_t k = 0; k < idx.size(); ++k)
      out[k] = ops.hamming(qr.data(), dense_->row(idx[k]).data(), n);
    return;
  }
  for (std::size_t k = 0; k < idx.size(); ++k) out[k] = hamming(q, idx[k]);
}

void RowStore::hamming_bounded_gather(std::size_t q, std::span<const std::uint32_t> idx,
                                      std::size_t limit, std::size_t* out) const noexcept {
  if (dense_ != nullptr) {
    const auto& ops = kernels::active();
    const auto qr = dense_->row(q);
    const std::size_t n = dense_->words_per_row();
    for (std::size_t k = 0; k < idx.size(); ++k)
      out[k] = ops.hamming_bounded(qr.data(), dense_->row(idx[k]).data(), n, limit);
    return;
  }
  for (std::size_t k = 0; k < idx.size(); ++k) out[k] = hamming_bounded(q, idx[k], limit);
}

void RowStore::intersection_gather(std::size_t q, std::span<const std::uint32_t> idx,
                                   std::size_t* out) const noexcept {
  if (dense_ != nullptr) {
    const auto& ops = kernels::active();
    const auto qr = dense_->row(q);
    const std::size_t n = dense_->words_per_row();
    for (std::size_t k = 0; k < idx.size(); ++k)
      out[k] = ops.intersection(qr.data(), dense_->row(idx[k]).data(), n);
    return;
  }
  const CsrView v = sview();
  const auto qr = v.row(q);
  for (std::size_t k = 0; k < idx.size(); ++k) out[k] = csr_intersection(qr, v.row(idx[k]));
}

void RowStore::intersection_pairs(std::span<const std::pair<std::size_t, std::size_t>> pairs,
                                  std::size_t* out) const noexcept {
  if (dense_ != nullptr) {
    const auto& ops = kernels::active();
    const std::size_t n = dense_->words_per_row();
    for (std::size_t k = 0; k < pairs.size(); ++k)
      out[k] = ops.intersection(dense_->row(pairs[k].first).data(),
                                dense_->row(pairs[k].second).data(), n);
    return;
  }
  const CsrView v = sview();
  for (std::size_t k = 0; k < pairs.size(); ++k)
    out[k] = csr_intersection(v.row(pairs[k].first), v.row(pairs[k].second));
}

std::uint64_t RowStore::row_hash(std::size_t r) const noexcept {
  if (dense_ == nullptr) return csr_row_digest(sview().row(r));
  // Same fold as CsrMatrix::row_hash over the set bits in ascending order,
  // so digests agree across backends.
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  std::size_t count = 0;
  for_each_set(r, [&](std::uint32_t c) {
    h ^= util::mix64(static_cast<std::uint64_t>(c) + 0x9E3779B97F4A7C15ULL);
    h *= 0x100000001B3ULL;
    ++count;
  });
  h ^= util::mix64(count);
  return h;
}

std::size_t RowStore::payload_bytes() const noexcept {
  if (dense_ != nullptr) return dense_->rows() * dense_->words_per_row() * sizeof(std::uint64_t);
  return sview().nnz() * sizeof(std::uint32_t);
}

std::size_t RowStore::intersection_with_packed(std::span<const std::uint64_t> q,
                                               std::size_t b) const noexcept {
  if (dense_ != nullptr) return util::intersection_words(q, dense_->row(b));
  std::size_t count = 0;
  for (std::uint32_t c : sview().row(b)) {
    count += (q[c / 64] >> (c % 64)) & 1U;
  }
  return count;
}

std::size_t RowStore::hamming_with_packed(std::span<const std::uint64_t> q,
                                          std::size_t b) const noexcept {
  if (dense_ != nullptr) return util::hamming_words(q, dense_->row(b));
  const std::size_t g = intersection_with_packed(q, b);
  return util::popcount_span(q) + sview().row_size(b) - 2 * g;
}

CsrMatrix RowStore::to_csr() const {
  if (sparse_ != nullptr) return *sparse_;
  if (dense_ != nullptr) return to_sparse(*dense_);
  return CsrMatrix::copy_of(sview());
}

}  // namespace rolediet::linalg
