#include "linalg/convert.hpp"

#include <bit>

namespace rolediet::linalg {

BitMatrix to_dense(const CsrMatrix& sparse) {
  BitMatrix dense(sparse.rows(), sparse.cols());
  for (std::size_t r = 0; r < sparse.rows(); ++r) {
    auto words = dense.row_mut(r);
    for (std::uint32_t c : sparse.row(r)) {
      words[c / 64] |= std::uint64_t{1} << (c % 64);
    }
  }
  return dense;
}

CsrMatrix to_sparse(const BitMatrix& dense) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    const auto words = dense.row(r);
    for (std::size_t w = 0; w < words.size(); ++w) {
      std::uint64_t bits = words[w];
      while (bits != 0) {
        const auto c = static_cast<std::uint32_t>(w * 64 +
                                                  static_cast<std::size_t>(std::countr_zero(bits)));
        pairs.emplace_back(static_cast<std::uint32_t>(r), c);
        bits &= bits - 1;
      }
    }
  }
  return CsrMatrix::from_pairs(dense.rows(), dense.cols(), std::move(pairs));
}

}  // namespace rolediet::linalg
