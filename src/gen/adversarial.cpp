#include "gen/adversarial.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace rolediet::gen {

using core::Id;
using core::RbacDataset;

std::string_view to_string(AdversarialScenario scenario) noexcept {
  switch (scenario) {
    case AdversarialScenario::kSimilarityWall: return "similarity-wall";
    case AdversarialScenario::kHubPermissions: return "hub-permissions";
    case AdversarialScenario::kCloneChains: return "clone-chains";
    case AdversarialScenario::kHostileNames: return "hostile-names";
    case AdversarialScenario::kStandaloneStorm: return "standalone-storm";
  }
  return "?";
}

AdversarialScenario parse_adversarial_scenario(std::string_view name) {
  for (AdversarialScenario scenario : kAllAdversarialScenarios) {
    if (name == to_string(scenario)) return scenario;
  }
  throw std::invalid_argument("unknown adversarial scenario '" + std::string(name) + "'");
}

namespace {

/// Grants `count` fresh private permissions to `role` — a perm-axis
/// signature far from every other role's, so wall/chain assertions on the
/// user axis are never polluted by accidental permission-side groups.
void private_perms(RbacDataset& d, Id role, const std::string& tag, std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    d.grant_permission(role, d.add_permission(tag + "-p" + std::to_string(k)));
  }
}

/// Role pairs straddling the similarity thresholds. For every pair index i a
/// disjoint block of base users is shared by roles `wall-(h|j)<d>-<i>-a/b`;
/// the pair's Hamming distance cycles t-1 / t / t+1 ("lo" / "at" / "hi" in
/// the name), and a second family does the same around the Jaccard wall.
/// Contract the corpus test pins: lo and at pairs group at threshold t, hi
/// pairs do not (their base blocks are disjoint, so no transitive bridge
/// exists).
RbacDataset similarity_wall(const AdversarialParams& params) {
  RbacDataset d;
  const std::size_t t = params.similarity_threshold;
  const std::size_t pairs = params.scale;
  std::size_t next_user = 0;
  auto fresh_user = [&] { return d.add_user("wu" + std::to_string(next_user++)); };

  static const char* const kBand[3] = {"lo", "at", "hi"};
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::size_t band = i % 3;  // 0: t-1, 1: t, 2: t+1
    const std::size_t distance = (t == 0 ? 0 : t - 1) + band;
    const std::string stem = "wall-h" + std::string(kBand[band]) + "-" + std::to_string(i);
    const Id a = d.add_role(stem + "-a");
    const Id b = d.add_role(stem + "-b");
    const std::size_t base = t + 6;
    for (std::size_t k = 0; k < base; ++k) {
      const Id u = fresh_user();
      d.assign_user(a, u);
      d.assign_user(b, u);
    }
    // Split the differing users across both sides so neither is a subset.
    for (std::size_t k = 0; k < distance; ++k)
      d.assign_user(k % 2 == 0 ? a : b, fresh_user());
    private_perms(d, a, stem + "-a", 4);
    private_perms(d, b, stem + "-b", 4);
  }

  // Jaccard wall: dissimilarity e / (s + e) just below / at / just above
  // params.jaccard_dissimilarity, with s chosen so the band is one user wide.
  const double j = params.jaccard_dissimilarity;
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::size_t band = i % 3;
    const std::string stem = "wall-j" + std::string(kBand[band]) + "-" + std::to_string(i);
    const Id a = d.add_role(stem + "-a");
    const Id b = d.add_role(stem + "-b");
    // Pick extras e so e/(s+e) lands in the band around j (s fixed at 14).
    const std::size_t s = 14;
    const auto at = static_cast<std::size_t>(j * s / (1.0 - j) + 0.5);
    const std::size_t extras = band == 0 ? (at > 0 ? at - 1 : 0) : band == 1 ? at : at + 2;
    for (std::size_t k = 0; k < s; ++k) {
      const Id u = fresh_user();
      d.assign_user(a, u);
      d.assign_user(b, u);
    }
    for (std::size_t k = 0; k < extras; ++k) d.assign_user(a, fresh_user());
    private_perms(d, a, stem + "-a", 4);
    private_perms(d, b, stem + "-b", 4);
  }
  return d;
}

/// A few hub permissions granted to 70% of all roles (and two hub users
/// assigned to most roles): candidate generation sees giant co-occurrence
/// columns and crowded LSH bands while the true similar groups stay tiny.
RbacDataset hub_permissions(const AdversarialParams& params) {
  RbacDataset d;
  util::Xoshiro256 rng(params.seed);
  const std::size_t roles = params.scale * 2;
  const std::size_t hubs = 4;
  const std::size_t pool = params.scale * 4;

  std::vector<Id> hub_perms;
  for (std::size_t h = 0; h < hubs; ++h)
    hub_perms.push_back(d.add_permission("hub-perm" + std::to_string(h)));
  const Id hub_user0 = d.add_user("hub-user0");
  const Id hub_user1 = d.add_user("hub-user1");
  d.add_users(pool, "hu");
  d.add_permissions(pool, "hp");

  for (std::size_t r = 0; r < roles; ++r) {
    const Id role = d.add_role("hubrole" + std::to_string(r));
    for (Id hub : hub_perms)
      if (rng.bernoulli(0.7)) d.grant_permission(role, hub);
    if (rng.bernoulli(0.6)) d.assign_user(role, hub_user0);
    if (rng.bernoulli(0.6)) d.assign_user(role, hub_user1);
    // Long random tails keep most pairs dissimilar despite the shared hubs.
    const std::size_t perms = 4 + rng.bounded(4);
    for (std::size_t k = 0; k < perms; ++k)
      d.grant_permission(role, static_cast<Id>(hubs + rng.bounded(pool)));
    const std::size_t users = 3 + rng.bounded(4);
    for (std::size_t k = 0; k < users; ++k)
      d.assign_user(role, static_cast<Id>(2 + rng.bounded(pool)));
  }
  return d;
}

/// Chains r_0..r_L where each link drops exactly one user of its
/// predecessor: every consecutive pair is at Hamming distance 1, so at any
/// threshold >= 1 the whole chain is one transitive group even though the
/// endpoints differ in L users. Maximum-depth merge paths for union-find
/// and the engine's pair cache.
RbacDataset clone_chains(const AdversarialParams& params) {
  RbacDataset d;
  const std::size_t chains = std::max<std::size_t>(1, params.scale / 16);
  const std::size_t length = std::max<std::size_t>(3, params.scale / 4);
  std::size_t next_user = 0;
  for (std::size_t c = 0; c < chains; ++c) {
    std::vector<Id> members;
    for (std::size_t k = 0; k < length + 1; ++k)
      members.push_back(d.add_user("cu" + std::to_string(next_user++)));
    for (std::size_t k = 0; k < length; ++k) {
      const std::string stem = "chain" + std::to_string(c) + "-" + std::to_string(k);
      const Id role = d.add_role(stem);
      // Link k keeps members [k, length]: one fewer than link k-1.
      for (std::size_t m = k; m < members.size(); ++m) d.assign_user(role, members[m]);
      private_perms(d, role, stem, 3);
    }
  }
  return d;
}

/// Every quoting/framing hazard the CSV/journal/WAL layers must survive, as
/// entity names: commas, RFC-4180 quotes, CR/LF/CRLF, tabs, UTF-8 (CJK,
/// emoji, combining marks), journal-tag look-alikes, padding spaces, and one
/// empty user name. Structure plants one duplicate pair and one similar
/// pair so detection has findings to report through the hostile names.
RbacDataset hostile_names(const AdversarialParams& params) {
  RbacDataset d;
  util::Xoshiro256 rng(params.seed);
  const std::vector<std::string> fragments{
      "comma,name",
      "quo\"te",
      "\"fully quoted\"",
      "line\nbreak",
      "carriage\rreturn",
      "crlf\r\nname",
      "tab\tname",
      "trailing space ",
      " leading space",
      "add-user",       // journal-tag look-alike
      "revoke-user",    // journal-tag look-alike
      "ロール管理者",    // CJK
      "rôle–πerm✓",     // Latin-1 supplement + dash + Greek + dingbat
      "😀🔑",            // emoji
      "áccent",   // combining acute
      ",,,",
      "\"\"",
      "=cmd|' /C calc'!A0",  // spreadsheet-injection shape
  };
  std::vector<Id> users;
  users.push_back(d.add_user(""));  // the empty name, exactly once
  for (std::size_t i = 0; i < params.scale; ++i) {
    const std::string& frag = fragments[i % fragments.size()];
    users.push_back(d.add_user(frag + "#u" + std::to_string(i)));
    d.add_permission(frag + "#p" + std::to_string(i));
  }
  for (std::size_t r = 0; r + 1 < params.scale / 2; ++r) {
    const std::string& frag = fragments[(r * 7 + 3) % fragments.size()];
    const Id role = d.add_role(frag + "#r" + std::to_string(r));
    const std::size_t members = 2 + rng.bounded(4);
    for (std::size_t k = 0; k < members; ++k)
      d.assign_user(role, users[rng.bounded(users.size())]);
    const std::size_t grants = 1 + rng.bounded(3);
    for (std::size_t k = 0; k < grants; ++k)
      d.grant_permission(role, static_cast<Id>(rng.bounded(d.num_permissions())));
  }
  // Planted findings, hostile-named: an exact same-users duplicate and a
  // distance-1 similar pair.
  const Id dup_a = d.add_role("dup\"a\",role");
  const Id dup_b = d.add_role("dup\nb,role");
  const Id sim_a = d.add_role("sim🧨a");
  const Id sim_b = d.add_role("sim🧨b");
  for (std::size_t k = 0; k < 4; ++k) {
    d.assign_user(dup_a, users[k]);
    d.assign_user(dup_b, users[k]);
    d.assign_user(sim_a, users[k + 4]);
    d.assign_user(sim_b, users[k + 4]);
  }
  d.assign_user(sim_a, users[9]);
  private_perms(d, dup_a, "dup-a", 2);
  private_perms(d, dup_b, "dup-b", 2);
  private_perms(d, sim_a, "sim-a", 2);
  private_perms(d, sim_b, "sim-b", 2);
  return d;
}

/// Standalone/one-sided storms: `scale` standalone users and permissions,
/// `scale` fully empty roles, plus users-only, permissions-only, and
/// single-assignment roles — the structural detectors and the empty-row
/// paths of every finder at adversarial density, with only a sliver of
/// healthy structure.
RbacDataset standalone_storm(const AdversarialParams& params) {
  RbacDataset d;
  util::Xoshiro256 rng(params.seed);
  const std::size_t s = params.scale;
  d.add_users(s, "lone-u");
  d.add_permissions(s, "lone-p");
  for (std::size_t r = 0; r < s; ++r) (void)d.add_role("empty-r" + std::to_string(r));

  const Id member0 = d.add_user("member0");
  const Id member1 = d.add_user("member1");
  const Id granted0 = d.add_permission("granted0");
  const Id granted1 = d.add_permission("granted1");
  for (std::size_t r = 0; r < s / 2; ++r) {
    const Id users_only = d.add_role("users-only" + std::to_string(r));
    d.assign_user(users_only, member0);
    if (rng.bernoulli(0.5)) d.assign_user(users_only, member1);
    const Id perms_only = d.add_role("perms-only" + std::to_string(r));
    d.grant_permission(perms_only, granted0);
    if (rng.bernoulli(0.5)) d.grant_permission(perms_only, granted1);
  }
  for (std::size_t r = 0; r < s / 4; ++r) {
    const Id single = d.add_role("single" + std::to_string(r));
    d.assign_user(single, r % 2 == 0 ? member0 : member1);
    d.grant_permission(single, r % 2 == 0 ? granted0 : granted1);
  }
  // A sliver of health so the dataset is not a pure pathology.
  const Id healthy = d.add_role("healthy");
  d.assign_user(healthy, member0);
  d.assign_user(healthy, member1);
  d.grant_permission(healthy, granted0);
  d.grant_permission(healthy, granted1);
  return d;
}

}  // namespace

RbacDataset make_adversarial(AdversarialScenario scenario, const AdversarialParams& params) {
  switch (scenario) {
    case AdversarialScenario::kSimilarityWall: return similarity_wall(params);
    case AdversarialScenario::kHubPermissions: return hub_permissions(params);
    case AdversarialScenario::kCloneChains: return clone_chains(params);
    case AdversarialScenario::kHostileNames: return hostile_names(params);
    case AdversarialScenario::kStandaloneStorm: return standalone_storm(params);
  }
  throw std::invalid_argument("unknown adversarial scenario");
}

core::RbacDelta dataset_as_delta(const RbacDataset& dataset) {
  core::RbacDelta delta;
  for (std::size_t u = 0; u < dataset.num_users(); ++u)
    delta.add_user(dataset.user_name(static_cast<Id>(u)));
  for (std::size_t r = 0; r < dataset.num_roles(); ++r)
    delta.add_role(dataset.role_name(static_cast<Id>(r)));
  for (std::size_t p = 0; p < dataset.num_permissions(); ++p)
    delta.add_permission(dataset.permission_name(static_cast<Id>(p)));
  for (std::size_t r = 0; r < dataset.num_roles(); ++r) {
    const auto role = static_cast<Id>(r);
    for (std::uint32_t u : dataset.ruam().row(r))
      delta.assign_user(dataset.role_name(role), dataset.user_name(u));
    for (std::uint32_t p : dataset.rpam().row(r))
      delta.grant_permission(dataset.role_name(role), dataset.permission_name(p));
  }
  return delta;
}

}  // namespace rolediet::gen
