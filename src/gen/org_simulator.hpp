// Synthetic large-organization RBAC dataset (§IV-B substitution).
//
// The paper evaluates its framework on a proprietary dataset from a >60,000-
// employee organization (~90,000 users, ~350,000 permissions, ~50,000 roles)
// and reports, per inefficiency type, roughly:
//   standalone users ~500, standalone permissions ~180,000,
//   roles without users ~12,000, roles without permissions ~1,000,
//   single-user roles ~4,000, single-permission roles ~21,000,
//   roles in same-users groups ~8,000, same-permissions ~2,000,
//   roles sharing all-but-one user ~6,000, all-but-one permission ~4,000.
//
// We cannot obtain that dataset, so this module generates a structurally
// analogous one: a department-partitioned org in which "healthy" roles draw
// users and permissions from their department's pools, and each inefficiency
// class is planted at a configurable count (paper-scale defaults above).
// The detectors consume only the RUAM/RPAM structure, so matching the
// shape, sparsity, and per-type counts preserves both the computational
// load and the expected findings — which is what the real-data experiment
// demonstrates.
//
// Planted classes are kept disjoint by construction where the paper treats
// them as distinct (e.g. a planted similar-pair variant keeps >= 2 users so
// it does not leak into single-user counts); see org_simulator.cpp for the
// per-class construction rules.
#pragma once

#include <cstdint>

#include "core/model.hpp"

namespace rolediet::gen {

struct OrgProfile {
  std::uint64_t seed = 7;

  std::size_t departments = 200;

  // Entity pools.
  std::size_t connected_users = 89'500;
  std::size_t standalone_users = 500;
  std::size_t connected_permissions = 170'000;
  std::size_t standalone_permissions = 180'000;

  // Role population by class.
  std::size_t healthy_roles = 12'000;           ///< >=3 users, >=3 permissions
  std::size_t roles_without_users = 12'000;     ///< permissions only (type 2)
  std::size_t roles_without_permissions = 1'000;///< users only (type 2)
  std::size_t standalone_roles = 0;             ///< no edges at all (type 1)
  std::size_t single_user_roles = 4'000;        ///< exactly 1 user, >=2 perms (type 3)
  std::size_t single_permission_roles = 21'000; ///< >=2 users, exactly 1 perm (type 3)
  std::size_t same_user_pairs = 4'000;          ///< +1 duplicate role per pair (type 4)
  std::size_t same_permission_pairs = 1'000;    ///< +1 duplicate role per pair (type 4)
  std::size_t similar_user_pairs = 3'000;       ///< +1 variant role per pair (type 5, d=1)
  std::size_t similar_permission_pairs = 2'000; ///< +1 variant role per pair (type 5, d=1)

  // Healthy-role shape (uniform draws from the department pools).
  // Minimum 4: similar-pair variants drop one element and must keep >= 3
  // entries, staying at Hamming distance >= 2 from every single-user /
  // single-permission role so they never pollute those groups at t = 1.
  std::size_t min_users_per_role = 4;
  std::size_t max_users_per_role = 30;
  std::size_t min_perms_per_role = 4;
  std::size_t max_perms_per_role = 15;

  /// Paper-scale defaults (the values above): ~90k users, ~350k permissions,
  /// ~60k roles total. Runs in seconds with the role-diet method; the
  /// baselines need an explicit time budget.
  [[nodiscard]] static OrgProfile paper_scale() { return {}; }

  /// 1:100 scale-down for tests and the quickstart example.
  [[nodiscard]] static OrgProfile small(std::uint64_t seed = 7);

  /// Total number of roles the profile will create.
  [[nodiscard]] std::size_t total_roles() const noexcept {
    return healthy_roles + roles_without_users + roles_without_permissions + standalone_roles +
           single_user_roles + single_permission_roles + same_user_pairs +
           same_permission_pairs + similar_user_pairs + similar_permission_pairs;
  }
};

/// Expected detection counts implied by a profile — the planted ground truth
/// that the audit should recover (>=; random healthy roles can add
/// coincidental findings, which at org sparsity is vanishingly rare).
struct PlantedTruth {
  std::size_t standalone_users = 0;
  std::size_t standalone_permissions = 0;
  std::size_t standalone_roles = 0;
  std::size_t roles_without_users = 0;
  std::size_t roles_without_permissions = 0;
  std::size_t single_user_roles = 0;
  std::size_t single_permission_roles = 0;
  std::size_t roles_in_same_user_groups = 0;        ///< 2 per planted pair
  std::size_t roles_in_same_permission_groups = 0;  ///< 2 per planted pair
  std::size_t roles_in_similar_user_groups = 0;     ///< 2 per planted pair (d = 1)
  std::size_t roles_in_similar_permission_groups = 0;
};

struct OrgDataset {
  core::RbacDataset dataset;
  PlantedTruth truth;
};

/// Generates the org. Deterministic in profile.seed.
/// Throws std::invalid_argument when pool sizes cannot satisfy the profile
/// (e.g. fewer connected users than distinct single-user roles need).
[[nodiscard]] OrgDataset generate_org(const OrgProfile& profile);

}  // namespace rolediet::gen
