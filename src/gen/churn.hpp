// Long-horizon organization churn: multi-year mutation streams for the
// steady-state engine and the durable store.
//
// The paper's premise is temporal — inefficiencies "accumulate over time"
// under manual administration — and gen/evolution simulates that decay one
// event at a time against a live auditor. What it cannot produce is the
// *input* of the operational pipeline: a years-long io/journal mutation
// stream that an AuditEngine / EngineStore replays with periodic re-audits
// and checkpoints. ChurnSimulator closes that gap. It composes the OrgEvent
// vocabulary into a calendar-driven phase model and emits one RbacDelta per
// simulated day, starting from an *empty* dataset (day 0 bootstraps the
// initial org), so the entire history is journal-replayable from scratch:
//
//   steady state     daily hires (org-proportional), attrition departures,
//                    transfers, and permission-sprawl drift (provisions
//                    accumulate, decommissions lag far behind)
//   reorg bursts     a window of days at each quarter boundary with
//                    elevated clone/fork/shadow-role and transfer activity —
//                    the "fragmented landscape of independent role owners"
//   onboarding waves a few times a year a tenant arrives: a prefixed block
//                    of users/roles/permissions created and wired in bulk
//   layoff events    once a year a fixed fraction of assigned employees
//                    departs in a single day (a huge delta, the dirty-
//                    frontier stress case)
//
// Streams are bit-reproducible from (config, seed): the simulator owns an
// IncrementalAuditor as ground truth and every emitted mutation is applied
// to it, so emitted revocations always name real edges and the stream
// replays through AuditEngine::apply() without no-ops (journal semantics
// stay idempotent regardless). tests/churn_replay_test.cpp replays compact
// configs through EngineStore across every method/backend/thread count;
// bench_churn charts findings drift and re-audit cost over simulated years
// at 60k+ employees.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string_view>
#include <vector>

#include "core/engine.hpp"
#include "core/incremental.hpp"
#include "util/prng.hpp"

namespace rolediet::gen {

/// Which calendar phase a simulated day belongs to (layoff and onboarding
/// take precedence over an overlapping reorg window).
enum class ChurnPhase {
  kBootstrap,       ///< day 0: initial org creation
  kSteady,          ///< baseline hiring/attrition/transfer/sprawl
  kReorgBurst,      ///< quarter-boundary reorganization window
  kOnboardingWave,  ///< tenant onboarding day
  kLayoff,          ///< annual layoff day
};

[[nodiscard]] std::string_view to_string(ChurnPhase phase) noexcept;

/// Calendar + intensity knobs. Defaults model a fast-growing 60k-employee
/// org over three years; tests shrink initial_employees (all rates are
/// org-proportional, so the same config shape works at any scale).
struct ChurnConfig {
  std::uint64_t seed = 1;
  std::size_t initial_employees = 60'000;
  std::size_t years = 3;
  std::size_t days_per_year = 365;

  /// Org shape: entities created per employee at bootstrap (and implicitly
  /// maintained by role/permission-creating events afterwards).
  double roles_per_employee = 0.05;
  double permissions_per_employee = 0.10;

  // ---- steady state (daily rates, fractions of the current employee or
  // role count; fractional expectations accumulate across days) ----------
  double daily_hire_rate = 0.0008;       ///< ~30% growth/year before attrition
  double daily_attrition_rate = 0.0005;  ///< ~17% departures/year
  double daily_transfer_rate = 0.0008;
  /// Permission-sprawl drift: new grants per role per day; a tenth of them
  /// mint a brand-new permission, and decommissions run at a quarter of the
  /// sprawl rate, so grants accumulate monotonically in expectation.
  double daily_sprawl_rate = 0.002;

  // ---- reorg bursts -----------------------------------------------------
  std::size_t reorg_burst_days = 10;  ///< window length at each quarter end
  /// Clone/fork/shadow events per day in a burst, as a fraction of roles.
  double reorg_intensity = 0.01;

  // ---- onboarding waves -------------------------------------------------
  std::size_t onboarding_waves_per_year = 2;
  double onboarding_wave_fraction = 0.01;  ///< tenant size vs current employees

  // ---- layoffs ----------------------------------------------------------
  double layoff_fraction = 0.04;  ///< assigned employees departing; 0 disables
};

/// Event totals of a finished (or in-flight) stream.
struct ChurnStats {
  std::size_t days = 0;
  std::size_t mutations = 0;
  std::size_t hires = 0;
  std::size_t departures = 0;
  std::size_t transfers = 0;
  std::size_t provisions = 0;
  std::size_t decommissions = 0;
  std::size_t role_clones = 0;
  std::size_t role_forks = 0;
  std::size_t shadow_roles = 0;
  std::size_t tenants_onboarded = 0;
  std::size_t layoff_days = 0;
};

class ChurnSimulator {
 public:
  explicit ChurnSimulator(ChurnConfig config);

  /// The mutation batch of the next simulated day. Day 0 is the bootstrap
  /// delta creating the initial org. Precondition: !done().
  [[nodiscard]] core::RbacDelta next_day();

  [[nodiscard]] bool done() const noexcept { return day_ >= days_total(); }
  [[nodiscard]] std::size_t day() const noexcept { return day_; }
  [[nodiscard]] std::size_t days_total() const noexcept {
    return config_.years * config_.days_per_year + 1;  // +1: bootstrap day
  }
  /// Calendar phase of a given day (what next_day() will do on it).
  [[nodiscard]] ChurnPhase phase_of(std::size_t day) const noexcept;

  [[nodiscard]] const ChurnStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ChurnConfig& config() const noexcept { return config_; }
  /// Ground-truth org state (everything emitted so far, applied).
  [[nodiscard]] const core::IncrementalAuditor& state() const noexcept { return org_; }

 private:
  // Emission helpers: apply to the ground-truth org AND append the
  // journal-visible mutation to the current day's delta. Edge emitters
  // assume the edge state actually changes (callers draw from live state).
  core::Id emit_user();
  core::Id emit_role();
  core::Id emit_permission();
  void emit_assign(core::Id role, core::Id user);
  void emit_revoke(core::Id role, core::Id user);
  void emit_grant(core::Id role, core::Id perm);
  void emit_revoke_grant(core::Id role, core::Id perm);

  void bootstrap();
  void steady_day();
  void reorg_day();
  void onboarding_day();
  void layoff_day();

  void hire();
  bool depart(core::Id user);
  void depart_random();
  void transfer();
  void sprawl_step();
  void decommission_step();
  void clone_role();
  void fork_role();
  void shadow_role();

  /// How many events a fractional daily expectation yields today (floor +
  /// carried remainder, deterministic).
  [[nodiscard]] std::size_t quota(double expectation, double& carry);

  [[nodiscard]] std::optional<core::Id> random_role(std::size_t min_users,
                                                    std::size_t min_perms);
  [[nodiscard]] std::optional<core::Id> random_assigned_user();

  ChurnConfig config_;
  util::Xoshiro256 rng_;
  core::IncrementalAuditor org_;
  core::RbacDelta* delta_ = nullptr;  ///< the day under construction
  ChurnStats stats_;
  std::size_t day_ = 0;
  std::size_t next_user_ = 0;
  std::size_t next_role_ = 0;
  std::size_t next_perm_ = 0;
  std::size_t next_tenant_ = 0;
  double hire_carry_ = 0.0;
  double attrition_carry_ = 0.0;
  double transfer_carry_ = 0.0;
  double sprawl_carry_ = 0.0;
  double decommission_carry_ = 0.0;
  double reorg_carry_ = 0.0;
  /// Role memberships per user and grant lists per permission, maintained so
  /// departures/decommissions revoke exactly the live edges (the auditor
  /// only exposes the role->entity direction).
  std::vector<std::vector<core::Id>> user_roles_;
  std::vector<std::vector<core::Id>> perm_roles_;
};

/// Streams a whole configured history as io/journal records into `out`
/// (one record per mutation, day batches concatenated in calendar order).
/// Returns the final stats. Throws io::CsvError on write failure.
ChurnStats write_churn_journal(std::ostream& out, const ChurnConfig& config);

}  // namespace rolediet::gen
