#include "gen/matrix_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace rolediet::gen {

namespace {

/// Sorted set of `norm` distinct column indices in [0, cols).
std::vector<std::uint32_t> random_row(util::Xoshiro256& rng, std::size_t cols, std::size_t norm) {
  std::vector<std::size_t> picks = rng.sample_indices(cols, norm);
  std::vector<std::uint32_t> row(picks.begin(), picks.end());
  std::sort(row.begin(), row.end());
  return row;
}

/// Order-independent digest of a sorted row, for uniqueness checks.
std::uint64_t row_digest(const std::vector<std::uint32_t>& row) {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  for (std::uint32_t c : row) {
    h ^= util::mix64(static_cast<std::uint64_t>(c) + 0x9E3779B97F4A7C15ULL);
    h *= 0x100000001B3ULL;
  }
  return h ^ util::mix64(row.size());
}

/// Copy of `base` with exactly `flips` random bit flips (set->clear or
/// clear->set, chosen uniformly among all positions), kept non-empty.
std::vector<std::uint32_t> perturb_row(util::Xoshiro256& rng, std::vector<std::uint32_t> base,
                                       std::size_t cols, std::size_t flips) {
  for (std::size_t f = 0; f < flips; ++f) {
    const std::uint32_t pos = static_cast<std::uint32_t>(rng.bounded(cols));
    auto it = std::lower_bound(base.begin(), base.end(), pos);
    const bool present = it != base.end() && *it == pos;
    if (present && base.size() > 1) {
      base.erase(it);
    } else if (!present) {
      base.insert(it, pos);
    }
    // present && size == 1: skip the flip rather than empty the row; the
    // member stays within `flips` of the base either way.
  }
  return base;
}

}  // namespace

GeneratedMatrix generate_matrix(const MatrixGenParams& params) {
  if (params.roles == 0 || params.cols == 0)
    throw std::invalid_argument("generate_matrix: roles and cols must be positive");
  if (params.min_row_norm == 0 || params.min_row_norm > params.max_row_norm ||
      params.max_row_norm > params.cols)
    throw std::invalid_argument("generate_matrix: need 1 <= min_row_norm <= max_row_norm <= cols");
  if (params.clustered_fraction < 0.0 || params.clustered_fraction > 1.0)
    throw std::invalid_argument("generate_matrix: clustered_fraction outside [0, 1]");
  if (params.max_cluster_size < 2)
    throw std::invalid_argument("generate_matrix: max_cluster_size must be >= 2");

  util::Xoshiro256 rng(params.seed);
  std::unordered_set<std::uint64_t> seen_digests;

  auto draw_unique_row = [&](std::size_t norm) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      std::vector<std::uint32_t> row = random_row(rng, params.cols, norm);
      if (!params.ensure_unique_rows) return row;
      if (seen_digests.insert(row_digest(row)).second) return row;
    }
    throw std::runtime_error(
        "generate_matrix: could not draw a unique row; matrix too dense for uniqueness");
  };
  auto draw_norm = [&]() -> std::size_t {
    const std::size_t span = params.max_row_norm - params.min_row_norm + 1;
    if (params.norm_distribution == NormDistribution::kUniform || span == 1) {
      return params.min_row_norm + rng.bounded(span);
    }
    // Zipf over the offsets 1..span via inverse-CDF rejection on the
    // continuous Pareto envelope (exponent s), clamped to the range.
    constexpr double kExponent = 1.5;
    for (;;) {
      const double u = std::max(rng.uniform01(), 1e-12);
      const double draw = std::pow(u, -1.0 / (kExponent - 1.0));  // Pareto(1, s-1)
      if (draw <= static_cast<double>(span)) {
        return params.min_row_norm + static_cast<std::size_t>(draw) - 1;
      }
    }
  };

  // Plan clusters until the clustered-role quota is met. The final cluster
  // is clamped so the total never exceeds the quota (minimum size 2 still
  // holds because the quota itself is >= 2 whenever any cluster is planned).
  const auto quota = static_cast<std::size_t>(
      static_cast<double>(params.roles) * params.clustered_fraction + 0.5);
  std::vector<std::size_t> cluster_sizes;
  std::size_t planned = 0;
  while (planned + 2 <= quota) {
    std::size_t size = 2 + rng.bounded(params.max_cluster_size - 1);  // [2, max]
    size = std::min(size, quota - planned);
    if (size < 2) break;
    cluster_sizes.push_back(size);
    planned += size;
  }

  // Build all rows (cluster members first, then noise), tracking which
  // pre-shuffle slot belongs to which cluster.
  std::vector<std::vector<std::uint32_t>> rows;
  rows.reserve(params.roles);
  std::vector<std::vector<std::size_t>> cluster_slots;
  cluster_slots.reserve(cluster_sizes.size());

  for (std::size_t size : cluster_sizes) {
    std::vector<std::uint32_t> base = draw_unique_row(draw_norm());
    std::vector<std::size_t>& slots = cluster_slots.emplace_back();
    slots.push_back(rows.size());
    rows.push_back(base);
    for (std::size_t member = 1; member < size; ++member) {
      slots.push_back(rows.size());
      if (params.perturb_bits == 0) {
        rows.push_back(base);
      } else {
        std::vector<std::uint32_t> perturbed =
            perturb_row(rng, base, params.cols, params.perturb_bits);
        // Register the member's digest too, so later noise rows cannot
        // accidentally duplicate a perturbed member.
        if (params.ensure_unique_rows) seen_digests.insert(row_digest(perturbed));
        rows.push_back(std::move(perturbed));
      }
    }
  }
  while (rows.size() < params.roles) {
    rows.push_back(draw_unique_row(draw_norm()));
  }

  // Shuffle row order via a random permutation; slot s lands at position[s].
  std::vector<std::size_t> position(params.roles);
  for (std::size_t i = 0; i < position.size(); ++i) position[i] = i;
  rng.shuffle(std::span<std::size_t>(position));

  std::vector<std::pair<std::uint32_t, std::uint32_t>> entries;
  for (std::size_t slot = 0; slot < rows.size(); ++slot) {
    const auto r = static_cast<std::uint32_t>(position[slot]);
    for (std::uint32_t c : rows[slot]) entries.emplace_back(r, c);
  }

  GeneratedMatrix out;
  out.matrix = linalg::CsrMatrix::from_pairs(params.roles, params.cols, std::move(entries));

  // Canonicalize groups while keeping each group's base row aligned:
  // members sorted ascending, groups ordered by smallest member.
  std::vector<std::pair<std::vector<std::size_t>, std::size_t>> tagged;
  tagged.reserve(cluster_slots.size());
  for (const auto& slots : cluster_slots) {
    std::vector<std::size_t> group;
    group.reserve(slots.size());
    for (std::size_t slot : slots) group.push_back(position[slot]);
    const std::size_t base = position[slots.front()];  // slot 0 held the base row
    std::sort(group.begin(), group.end());
    tagged.emplace_back(std::move(group), base);
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first.front() < b.first.front(); });
  out.planted.groups.reserve(tagged.size());
  out.planted_bases.reserve(tagged.size());
  for (auto& [group, base] : tagged) {
    out.planted.groups.push_back(std::move(group));
    out.planted_bases.push_back(base);
  }
  return out;
}

}  // namespace rolediet::gen
