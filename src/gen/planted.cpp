#include "gen/planted.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/prng.hpp"

namespace rolediet::gen {

PlantedDataset generate_planted(const PlantedParams& params) {
  if (params.roles == 0 || params.perms_per_role == 0 || params.roles_per_user == 0 ||
      params.duplicates_per_role == 0) {
    throw std::invalid_argument("generate_planted: size parameters must be >= 1");
  }
  if (params.users < params.roles) {
    throw std::invalid_argument("generate_planted: need users >= roles (one seed user per role)");
  }
  if (params.noise_users > params.users - params.roles) {
    throw std::invalid_argument(
        "generate_planted: noise users must fit outside the seed users");
  }

  PlantedDataset out;
  out.planted_roles = params.roles;
  out.noise_roles = params.noise_users;
  core::RbacDataset& dataset = out.dataset;
  util::Xoshiro256 rng(params.seed);

  dataset.add_users(params.users);
  const core::Id perm_base = dataset.add_permissions(params.roles * params.perms_per_role);

  // K * duplicates_per_role dataset roles; copy d of true role k carries
  // exactly block k's permissions.
  const std::size_t dup = params.duplicates_per_role;
  std::vector<core::Id> role_copy(params.roles * dup);
  for (std::size_t k = 0; k < params.roles; ++k) {
    for (std::size_t d = 0; d < dup; ++d) {
      const core::Id role =
          dataset.add_role("role-" + std::to_string(k) + "-" + std::to_string(d));
      role_copy[k * dup + d] = role;
      for (std::size_t p = 0; p < params.perms_per_role; ++p) {
        dataset.grant_permission(role,
                                 perm_base + static_cast<core::Id>(k * params.perms_per_role + p));
      }
    }
  }
  const auto assign = [&](core::Id user, std::size_t true_role) {
    dataset.assign_user(role_copy[true_role * dup + user % dup], user);
  };

  // Seed users: user k holds exactly true role k, so its effective row IS
  // block k — the closed set the enumerator needs, at the lowest user ids.
  for (std::size_t k = 0; k < params.roles; ++k) {
    assign(static_cast<core::Id>(k), k);
  }

  // Remaining users draw 1..roles_per_user distinct true roles.
  for (std::size_t u = params.roles; u < params.users; ++u) {
    const std::size_t count = 1 + rng.bounded(params.roles_per_user);
    std::vector<std::size_t> chosen;
    chosen.reserve(count);
    while (chosen.size() < count && chosen.size() < params.roles) {
      const std::size_t k = rng.bounded(params.roles);
      bool seen = false;
      for (const std::size_t c : chosen) seen = seen || c == k;
      if (!seen) chosen.push_back(k);
    }
    for (const std::size_t k : chosen) assign(static_cast<core::Id>(u), k);
  }

  // Noise: the top noise_users user ids each get one personal permission
  // through one personal role — unavoidable extra roles in any equivalent
  // decomposition, and exactly countable.
  for (std::size_t j = 0; j < params.noise_users; ++j) {
    const core::Id user = static_cast<core::Id>(params.users - params.noise_users + j);
    const core::Id perm = dataset.add_permission("noise-perm-" + std::to_string(j));
    const core::Id role = dataset.add_role("noise-" + std::to_string(j));
    dataset.grant_permission(role, perm);
    dataset.assign_user(role, user);
  }
  return out;
}

}  // namespace rolediet::gen
