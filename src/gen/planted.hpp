// Planted-decomposition generator: a dataset synthesized from a known
// ground-truth role set, for asserting miner recovery bounds.
//
// The generator builds K "true" roles over pairwise-disjoint permission
// blocks and assigns every user a random subset of them, then re-encodes
// those memberships as the dataset's roles — optionally inflated with
// duplicate and fragmented role copies so the *dataset* role count is far
// above K while the underlying decomposition stays exactly K roles.
//
// Recoverability by construction:
//  - each true role k has one exclusive seed user (the K lowest user ids)
//    whose effective permission set is exactly role k's block, so every true
//    role's permission set is a user row — a closed set the biclique
//    enumerator emits as a seed candidate, ordered before any mixed row;
//  - noise users carry one personal noise permission each on top of their
//    role blocks, so each noise permission needs one extra (deduplicated
//    single-permission) role in any equivalent decomposition.
//
// The documented slack: a miner run with an untruncated candidate pool
// recovers at most `planted_roles + noise_roles` roles on these datasets
// (the tests and bench_mining assert exactly this bound).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/model.hpp"

namespace rolediet::gen {

struct PlantedParams {
  std::size_t roles = 20;           ///< K ground-truth roles
  std::size_t users = 500;          ///< total users (>= roles)
  std::size_t perms_per_role = 8;   ///< block size of each true role
  std::size_t roles_per_user = 3;   ///< each non-seed user draws 1..this many roles
  /// Users that additionally hold one personal noise permission (each adds
  /// exactly one unavoidable role to any equivalent decomposition).
  std::size_t noise_users = 0;
  /// Dataset-side inflation: every true-role membership is re-encoded as one
  /// of `duplicates_per_role` identical role copies (round-robin per user),
  /// so the dataset carries K * duplicates_per_role roles that all collapse
  /// to the same K-role ground truth. 1 = no inflation.
  std::size_t duplicates_per_role = 4;
  std::uint64_t seed = 1;
};

struct PlantedDataset {
  core::RbacDataset dataset;
  std::size_t planted_roles = 0;  ///< K
  std::size_t noise_roles = 0;    ///< one per noise user

  /// The documented recovery bound: an untruncated mining run emits at most
  /// this many roles.
  [[nodiscard]] std::size_t recoverable_bound() const noexcept {
    return planted_roles + noise_roles;
  }
};

/// Deterministic for a fixed seed. Throws std::invalid_argument when
/// users < roles or a size parameter is zero where the construction needs it.
[[nodiscard]] PlantedDataset generate_planted(const PlantedParams& params);

}  // namespace rolediet::gen
