#include "gen/evolution.hpp"

#include <array>
#include <string>

namespace rolediet::gen {

using core::Id;

std::string_view to_string(OrgEvent event) noexcept {
  switch (event) {
    case OrgEvent::kHire: return "hire";
    case OrgEvent::kDeparture: return "departure";
    case OrgEvent::kTransfer: return "transfer";
    case OrgEvent::kProvision: return "provision";
    case OrgEvent::kDecommission: return "decommission";
    case OrgEvent::kCloneRole: return "clone-role";
    case OrgEvent::kForkRole: return "fork-role";
    case OrgEvent::kShadowRole: return "shadow-role";
  }
  return "?";
}

OrgEvolution::OrgEvolution(core::IncrementalAuditor& auditor, std::uint64_t seed,
                           std::size_t initial_users, std::size_t initial_roles,
                           std::size_t initial_permissions, EvolutionMix mix)
    : auditor_(auditor), rng_(seed), mix_(mix) {
  for (std::size_t u = 0; u < initial_users; ++u) {
    auditor_.add_user("emp" + std::to_string(next_user_++));
  }
  for (std::size_t p = 0; p < initial_permissions; ++p) {
    auditor_.add_permission("perm" + std::to_string(next_perm_++));
  }
  for (std::size_t r = 0; r < initial_roles; ++r) {
    const Id role = auditor_.add_role("role" + std::to_string(next_role_++));
    // Degenerate starting orgs are legal: with no users (or permissions) to
    // draw from, roles are seeded empty on that axis instead of assigning
    // out-of-range ids.
    if (initial_users > 0) {
      const std::size_t users = 3 + rng_.bounded(6);
      for (std::size_t k = 0; k < users; ++k) {
        auditor_.assign_user(role, static_cast<Id>(rng_.bounded(initial_users)));
      }
    }
    if (initial_permissions > 0) {
      const std::size_t perms = 3 + rng_.bounded(4);
      for (std::size_t k = 0; k < perms; ++k) {
        auditor_.grant_permission(role, static_cast<Id>(rng_.bounded(initial_permissions)));
      }
    }
  }
}

OrgEvent OrgEvolution::draw_event() {
  const std::array<std::pair<OrgEvent, double>, 8> weighted{{
      {OrgEvent::kHire, mix_.hire},
      {OrgEvent::kDeparture, mix_.departure},
      {OrgEvent::kTransfer, mix_.transfer},
      {OrgEvent::kProvision, mix_.provision},
      {OrgEvent::kDecommission, mix_.decommission},
      {OrgEvent::kCloneRole, mix_.clone_role},
      {OrgEvent::kForkRole, mix_.fork_role},
      {OrgEvent::kShadowRole, mix_.shadow_role},
  }};
  double total = 0.0;
  for (const auto& [event, weight] : weighted) total += weight;
  double roll = rng_.uniform01() * total;
  for (const auto& [event, weight] : weighted) {
    roll -= weight;
    if (roll <= 0.0) return event;
  }
  return OrgEvent::kHire;
}

OrgEvent OrgEvolution::step() {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const OrgEvent event = draw_event();
    if (apply(event)) {
      ++events_;
      return event;
    }
  }
  (void)do_hire();  // always succeeds
  ++events_;
  return OrgEvent::kHire;
}

bool OrgEvolution::apply(OrgEvent event) {
  switch (event) {
    case OrgEvent::kHire: return do_hire();
    case OrgEvent::kDeparture: return do_departure();
    case OrgEvent::kTransfer: return do_transfer();
    case OrgEvent::kProvision: return do_provision();
    case OrgEvent::kDecommission: return do_decommission();
    case OrgEvent::kCloneRole: return do_clone_role();
    case OrgEvent::kForkRole: return do_fork_role();
    case OrgEvent::kShadowRole: return do_shadow_role();
  }
  return false;
}

std::optional<Id> OrgEvolution::pick_role(std::size_t min_users, std::size_t min_perms) {
  const std::size_t n = auditor_.num_roles();
  if (n == 0) return std::nullopt;
  const std::size_t start = rng_.bounded(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Id role = static_cast<Id>((start + k) % n);
    if (auditor_.users_of_role(role).size() >= min_users &&
        auditor_.permissions_of_role(role).size() >= min_perms) {
      return role;
    }
  }
  return std::nullopt;
}

bool OrgEvolution::do_hire() {
  const Id user = auditor_.add_user("emp" + std::to_string(next_user_++));
  // New hires land in one or two existing roles.
  const std::size_t memberships = 1 + rng_.bounded(2);
  for (std::size_t k = 0; k < memberships; ++k) {
    if (const auto role = pick_role(1, 0)) auditor_.assign_user(*role, user);
  }
  return true;
}

bool OrgEvolution::do_departure() {
  // Pick an assigned user and revoke everything; the user entity remains —
  // exactly the paper's "user no longer working in the organization" case.
  const std::size_t n = auditor_.num_users();
  if (n == 0) return false;
  const std::size_t start = rng_.bounded(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Id user = static_cast<Id>((start + k) % n);
    if (auditor_.user_degree(user) == 0) continue;
    for (std::size_t r = 0; r < auditor_.num_roles(); ++r) {
      auditor_.revoke_user(static_cast<Id>(r), user);
    }
    return true;
  }
  return false;
}

bool OrgEvolution::do_transfer() {
  const auto from = pick_role(2, 0);  // keep at least one user behind
  const auto to = pick_role(1, 0);
  if (!from || !to || *from == *to) return false;
  const auto& users = auditor_.users_of_role(*from);
  const Id user = users[rng_.bounded(users.size())];
  auditor_.revoke_user(*from, user);
  auditor_.assign_user(*to, user);
  return true;
}

bool OrgEvolution::do_provision() {
  const Id perm = auditor_.add_permission("perm" + std::to_string(next_perm_++));
  if (const auto role = pick_role(0, 1)) {
    auditor_.grant_permission(*role, perm);
    return true;
  }
  // No role to attach to: the new permission is born standalone.
  return true;
}

bool OrgEvolution::do_decommission() {
  const std::size_t n = auditor_.num_permissions();
  if (n == 0) return false;
  const std::size_t start = rng_.bounded(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Id perm = static_cast<Id>((start + k) % n);
    if (auditor_.permission_degree(perm) == 0) continue;
    for (std::size_t r = 0; r < auditor_.num_roles(); ++r) {
      auditor_.revoke_permission(static_cast<Id>(r), perm);
    }
    return true;
  }
  return false;
}

bool OrgEvolution::do_clone_role() {
  const auto source = pick_role(1, 1);
  if (!source) return false;
  const Id clone = auditor_.add_role("role" + std::to_string(next_role_++));
  // Half the clones copy the user set (same-users duplicate), half the
  // permission set (same-permissions duplicate); the other axis gets a
  // partial copy, mimicking an admin adapting a template.
  const bool copy_users = rng_.bernoulli(0.5);
  const auto users = auditor_.users_of_role(*source);
  const auto perms = auditor_.permissions_of_role(*source);
  if (copy_users) {
    for (Id u : users) auditor_.assign_user(clone, u);
    for (Id p : perms) {
      if (rng_.bernoulli(0.7)) auditor_.grant_permission(clone, p);
    }
    if (auditor_.permissions_of_role(clone).empty() && !perms.empty())
      auditor_.grant_permission(clone, perms.front());
  } else {
    for (Id p : perms) auditor_.grant_permission(clone, p);
    for (Id u : users) {
      if (rng_.bernoulli(0.7)) auditor_.assign_user(clone, u);
    }
    if (auditor_.users_of_role(clone).empty() && !users.empty())
      auditor_.assign_user(clone, users.front());
  }
  return true;
}

bool OrgEvolution::do_fork_role() {
  const auto source = pick_role(2, 1);
  if (!source) return false;
  const Id fork = auditor_.add_role("role" + std::to_string(next_role_++));
  // Copy the user set, then drop exactly one member: a similar-users pair.
  const std::vector<Id> users = auditor_.users_of_role(*source);
  const std::size_t skip = rng_.bounded(users.size());
  for (std::size_t k = 0; k < users.size(); ++k) {
    if (k != skip) auditor_.assign_user(fork, users[k]);
  }
  for (Id p : auditor_.permissions_of_role(*source)) {
    if (rng_.bernoulli(0.5)) auditor_.grant_permission(fork, p);
  }
  if (auditor_.permissions_of_role(fork).empty()) {
    const Id perm = auditor_.add_permission("perm" + std::to_string(next_perm_++));
    auditor_.grant_permission(fork, perm);
  }
  return true;
}

bool OrgEvolution::do_shadow_role() {
  const Id role = auditor_.add_role("role" + std::to_string(next_role_++));
  // One third fully disconnected, one third permissions-only, one third
  // users-only — the three flavours of type-1/2 role findings.
  switch (rng_.bounded(3)) {
    case 0:
      break;
    case 1: {
      if (const auto donor = pick_role(0, 1)) {
        for (Id p : auditor_.permissions_of_role(*donor)) {
          if (rng_.bernoulli(0.5)) auditor_.grant_permission(role, p);
        }
      }
      break;
    }
    case 2: {
      if (const auto donor = pick_role(1, 0)) {
        for (Id u : auditor_.users_of_role(*donor)) {
          if (rng_.bernoulli(0.5)) auditor_.assign_user(role, u);
        }
      }
      break;
    }
  }
  return true;
}

}  // namespace rolediet::gen
