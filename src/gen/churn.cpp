#include "gen/churn.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>

#include "io/journal.hpp"

namespace rolediet::gen {

using core::Id;

std::string_view to_string(ChurnPhase phase) noexcept {
  switch (phase) {
    case ChurnPhase::kBootstrap: return "bootstrap";
    case ChurnPhase::kSteady: return "steady";
    case ChurnPhase::kReorgBurst: return "reorg-burst";
    case ChurnPhase::kOnboardingWave: return "onboarding-wave";
    case ChurnPhase::kLayoff: return "layoff";
  }
  return "?";
}

ChurnSimulator::ChurnSimulator(ChurnConfig config)
    : config_(config), rng_(config.seed) {}

ChurnPhase ChurnSimulator::phase_of(std::size_t day) const noexcept {
  if (day == 0) return ChurnPhase::kBootstrap;
  const std::size_t year_len = config_.days_per_year;
  const std::size_t day_of_year = (day - 1) % year_len;

  // Layoff: one fixed day late in each year (11/12ths in), if enabled.
  if (config_.layoff_fraction > 0.0 && day_of_year == (year_len * 11) / 12)
    return ChurnPhase::kLayoff;

  // Onboarding waves: evenly spaced through the year.
  if (config_.onboarding_waves_per_year > 0) {
    const std::size_t spacing = year_len / (config_.onboarding_waves_per_year + 1);
    if (spacing > 0 && day_of_year > 0 && day_of_year % spacing == 0 &&
        day_of_year / spacing <= config_.onboarding_waves_per_year)
      return ChurnPhase::kOnboardingWave;
  }

  // Reorg bursts: a window ending at each quarter boundary.
  const std::size_t quarter = year_len / 4;
  if (quarter > 0 && config_.reorg_burst_days > 0) {
    const std::size_t in_quarter = day_of_year % quarter;
    const std::size_t window =
        std::min(config_.reorg_burst_days, quarter);  // degenerate tiny years
    if (in_quarter >= quarter - window) return ChurnPhase::kReorgBurst;
  }
  return ChurnPhase::kSteady;
}

core::RbacDelta ChurnSimulator::next_day() {
  core::RbacDelta delta;
  delta_ = &delta;
  switch (phase_of(day_)) {
    case ChurnPhase::kBootstrap: bootstrap(); break;
    case ChurnPhase::kSteady: steady_day(); break;
    case ChurnPhase::kReorgBurst: reorg_day(); break;
    case ChurnPhase::kOnboardingWave: onboarding_day(); break;
    case ChurnPhase::kLayoff: layoff_day(); break;
  }
  delta_ = nullptr;
  ++day_;
  ++stats_.days;
  stats_.mutations += delta.size();
  return delta;
}

// ------------------------------------------------------------ emission ---

Id ChurnSimulator::emit_user() {
  const std::string name = "emp" + std::to_string(next_user_++);
  const Id id = org_.add_user(name);
  if (id == user_roles_.size()) user_roles_.emplace_back();
  delta_->add_user(name);
  return id;
}

Id ChurnSimulator::emit_role() {
  const std::string name = "role" + std::to_string(next_role_++);
  const Id id = org_.add_role(name);
  delta_->add_role(name);
  return id;
}

Id ChurnSimulator::emit_permission() {
  const std::string name = "perm" + std::to_string(next_perm_++);
  const Id id = org_.add_permission(name);
  if (id == perm_roles_.size()) perm_roles_.emplace_back();
  delta_->add_permission(name);
  return id;
}

void ChurnSimulator::emit_assign(Id role, Id user) {
  if (!org_.assign_user(role, user)) return;  // already a member: nothing to say
  user_roles_[user].push_back(role);
  delta_->assign_user(org_.role_name(role), org_.user_name(user));
}

void ChurnSimulator::emit_revoke(Id role, Id user) {
  if (!org_.revoke_user(role, user)) return;
  std::erase(user_roles_[user], role);
  delta_->revoke_user(org_.role_name(role), org_.user_name(user));
}

void ChurnSimulator::emit_grant(Id role, Id perm) {
  if (!org_.grant_permission(role, perm)) return;
  perm_roles_[perm].push_back(role);
  delta_->grant_permission(org_.role_name(role), org_.permission_name(perm));
}

void ChurnSimulator::emit_revoke_grant(Id role, Id perm) {
  if (!org_.revoke_permission(role, perm)) return;
  std::erase(perm_roles_[perm], role);
  delta_->revoke_permission(org_.role_name(role), org_.permission_name(perm));
}

// --------------------------------------------------------------- draws ---

std::size_t ChurnSimulator::quota(double expectation, double& carry) {
  carry += expectation;
  const double whole = std::floor(carry);
  carry -= whole;
  return static_cast<std::size_t>(whole);
}

std::optional<Id> ChurnSimulator::random_role(std::size_t min_users, std::size_t min_perms) {
  const std::size_t n = org_.num_roles();
  if (n == 0) return std::nullopt;
  const std::size_t start = rng_.bounded(n);
  // Bounded probe: at churn scale a full scan per draw would dominate, and
  // qualifying roles are dense in practice.
  const std::size_t probes = std::min<std::size_t>(n, 64);
  for (std::size_t k = 0; k < probes; ++k) {
    const Id role = static_cast<Id>((start + k) % n);
    if (org_.users_of_role(role).size() >= min_users &&
        org_.permissions_of_role(role).size() >= min_perms)
      return role;
  }
  return std::nullopt;
}

std::optional<Id> ChurnSimulator::random_assigned_user() {
  const std::size_t n = org_.num_users();
  if (n == 0) return std::nullopt;
  const std::size_t start = rng_.bounded(n);
  const std::size_t probes = std::min<std::size_t>(n, 256);
  for (std::size_t k = 0; k < probes; ++k) {
    const Id user = static_cast<Id>((start + k) % n);
    if (!user_roles_[user].empty()) return user;
  }
  return std::nullopt;
}

// -------------------------------------------------------------- phases ---

void ChurnSimulator::bootstrap() {
  const std::size_t employees = config_.initial_employees;
  const auto roles = static_cast<std::size_t>(
      std::ceil(static_cast<double>(employees) * config_.roles_per_employee));
  const auto perms = static_cast<std::size_t>(
      std::ceil(static_cast<double>(employees) * config_.permissions_per_employee));

  for (std::size_t u = 0; u < employees; ++u) (void)emit_user();
  for (std::size_t p = 0; p < perms; ++p) (void)emit_permission();
  for (std::size_t r = 0; r < roles; ++r) {
    const Id role = emit_role();
    if (perms > 0) {
      const std::size_t grants = 3 + rng_.bounded(4);
      for (std::size_t k = 0; k < grants; ++k)
        emit_grant(role, static_cast<Id>(rng_.bounded(perms)));
    }
  }
  // Everyone joins 1-3 roles; teams are locality-biased (consecutive hires
  // land near the same roles) so realistic same/similar structure exists
  // from day one.
  if (roles > 0) {
    for (std::size_t u = 0; u < employees; ++u) {
      const std::size_t home = (u * roles) / std::max<std::size_t>(employees, 1);
      const std::size_t memberships = 1 + rng_.bounded(3);
      for (std::size_t k = 0; k < memberships; ++k) {
        const std::size_t jitter = rng_.bounded(5);
        emit_assign(static_cast<Id>((home + jitter) % roles), static_cast<Id>(u));
      }
    }
  }
}

void ChurnSimulator::steady_day() {
  const auto employees = static_cast<double>(org_.num_users());
  const auto roles = static_cast<double>(org_.num_roles());
  const std::size_t hires = quota(employees * config_.daily_hire_rate, hire_carry_);
  const std::size_t departures =
      quota(employees * config_.daily_attrition_rate, attrition_carry_);
  const std::size_t transfers =
      quota(employees * config_.daily_transfer_rate, transfer_carry_);
  const std::size_t sprawl = quota(roles * config_.daily_sprawl_rate, sprawl_carry_);
  const std::size_t decommissions =
      quota(roles * config_.daily_sprawl_rate * 0.25, decommission_carry_);

  for (std::size_t k = 0; k < hires; ++k) hire();
  for (std::size_t k = 0; k < departures; ++k) depart_random();
  for (std::size_t k = 0; k < transfers; ++k) transfer();
  for (std::size_t k = 0; k < sprawl; ++k) sprawl_step();
  for (std::size_t k = 0; k < decommissions; ++k) decommission_step();
}

void ChurnSimulator::reorg_day() {
  steady_day();  // the org keeps living through a reorg
  const std::size_t events = quota(
      static_cast<double>(org_.num_roles()) * config_.reorg_intensity, reorg_carry_);
  for (std::size_t k = 0; k < events; ++k) {
    switch (rng_.bounded(4)) {
      case 0: clone_role(); break;
      case 1: fork_role(); break;
      case 2: shadow_role(); break;
      default: transfer(); break;
    }
  }
}

void ChurnSimulator::onboarding_day() {
  steady_day();
  const std::size_t tenant = next_tenant_++;
  const auto size = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(org_.num_users()) *
                                  config_.onboarding_wave_fraction));
  const std::string prefix = "tenant" + std::to_string(tenant) + "/";

  // A tenant arrives as a prefixed block: its own permissions and roles,
  // plus `size` employees wired into them in bulk.
  std::vector<Id> tenant_perms;
  for (std::size_t p = 0; p < std::max<std::size_t>(2, size / 8); ++p) {
    const std::string name = prefix + "perm" + std::to_string(p);
    const Id id = org_.add_permission(name);
    if (id == perm_roles_.size()) perm_roles_.emplace_back();
    delta_->add_permission(name);
    tenant_perms.push_back(id);
  }
  std::vector<Id> tenant_roles;
  for (std::size_t r = 0; r < std::max<std::size_t>(2, size / 10); ++r) {
    const std::string name = prefix + "role" + std::to_string(r);
    const Id id = org_.add_role(name);
    delta_->add_role(name);
    tenant_roles.push_back(id);
    const std::size_t grants = 1 + rng_.bounded(tenant_perms.size());
    for (std::size_t k = 0; k < grants; ++k)
      emit_grant(id, tenant_perms[rng_.bounded(tenant_perms.size())]);
  }
  for (std::size_t u = 0; u < size; ++u) {
    const std::string name = prefix + "emp" + std::to_string(u);
    const Id id = org_.add_user(name);
    if (id == user_roles_.size()) user_roles_.emplace_back();
    delta_->add_user(name);
    emit_assign(tenant_roles[rng_.bounded(tenant_roles.size())], id);
    if (rng_.bernoulli(0.3))
      emit_assign(tenant_roles[rng_.bounded(tenant_roles.size())], id);
  }
  ++stats_.tenants_onboarded;
}

void ChurnSimulator::layoff_day() {
  const auto target = static_cast<std::size_t>(
      static_cast<double>(org_.num_users()) * config_.layoff_fraction);
  std::size_t cut = 0;
  const std::size_t n = org_.num_users();
  const std::size_t start = n == 0 ? 0 : rng_.bounded(n);
  for (std::size_t k = 0; k < n && cut < target; ++k) {
    const Id user = static_cast<Id>((start + k) % n);
    if (depart(user)) ++cut;
  }
  ++stats_.layoff_days;
}

// -------------------------------------------------------------- events ---

void ChurnSimulator::hire() {
  const Id user = emit_user();
  const std::size_t memberships = 1 + rng_.bounded(2);
  for (std::size_t k = 0; k < memberships; ++k) {
    if (const auto role = random_role(1, 0)) emit_assign(*role, user);
  }
  ++stats_.hires;
}

bool ChurnSimulator::depart(Id user) {
  if (user_roles_[user].empty()) return false;
  // Revoke exactly the live memberships; the user entity lingers — the
  // paper's standalone-user inefficiency, at stream scale.
  const std::vector<Id> memberships = user_roles_[user];
  for (Id role : memberships) emit_revoke(role, user);
  ++stats_.departures;
  return true;
}

void ChurnSimulator::depart_random() {
  if (const auto user = random_assigned_user()) (void)depart(*user);
}

void ChurnSimulator::transfer() {
  const auto from = random_role(2, 0);
  const auto to = random_role(1, 0);
  if (!from || !to || *from == *to) return;
  const auto& users = org_.users_of_role(*from);
  const Id user = users[rng_.bounded(users.size())];
  emit_revoke(*from, user);
  emit_assign(*to, user);
  ++stats_.transfers;
}

void ChurnSimulator::sprawl_step() {
  const auto role = random_role(0, 0);
  if (!role) return;
  // Sprawl: mostly re-granting existing permissions ever wider; a tenth of
  // the drift mints a brand-new permission.
  if (org_.num_permissions() == 0 || rng_.bernoulli(0.1)) {
    emit_grant(*role, emit_permission());
  } else {
    emit_grant(*role, static_cast<Id>(rng_.bounded(org_.num_permissions())));
  }
  ++stats_.provisions;
}

void ChurnSimulator::decommission_step() {
  const std::size_t n = org_.num_permissions();
  if (n == 0) return;
  const std::size_t start = rng_.bounded(n);
  const std::size_t probes = std::min<std::size_t>(n, 64);
  for (std::size_t k = 0; k < probes; ++k) {
    const Id perm = static_cast<Id>((start + k) % n);
    if (perm_roles_[perm].empty()) continue;
    const std::vector<Id> grants = perm_roles_[perm];
    for (Id role : grants) emit_revoke_grant(role, perm);
    ++stats_.decommissions;
    return;
  }
}

void ChurnSimulator::clone_role() {
  const auto source = random_role(1, 1);
  if (!source) return;
  const Id clone = emit_role();
  const std::vector<Id> users = org_.users_of_role(*source);
  const std::vector<Id> perms = org_.permissions_of_role(*source);
  // Same split as gen/evolution: half the clones duplicate the user set,
  // half the permission set; the other axis is a partial copy.
  if (rng_.bernoulli(0.5)) {
    for (Id u : users) emit_assign(clone, u);
    for (Id p : perms)
      if (rng_.bernoulli(0.7)) emit_grant(clone, p);
  } else {
    for (Id p : perms) emit_grant(clone, p);
    for (Id u : users)
      if (rng_.bernoulli(0.7)) emit_assign(clone, u);
  }
  ++stats_.role_clones;
}

void ChurnSimulator::fork_role() {
  const auto source = random_role(2, 1);
  if (!source) return;
  const Id fork = emit_role();
  const std::vector<Id> users = org_.users_of_role(*source);
  const std::size_t skip = rng_.bounded(users.size());
  for (std::size_t k = 0; k < users.size(); ++k) {
    if (k != skip) emit_assign(fork, users[k]);
  }
  for (Id p : org_.permissions_of_role(*source))
    if (rng_.bernoulli(0.5)) emit_grant(fork, p);
  ++stats_.role_forks;
}

void ChurnSimulator::shadow_role() {
  const Id role = emit_role();
  if (rng_.bernoulli(0.5)) {
    if (const auto donor = random_role(0, 1)) {
      for (Id p : org_.permissions_of_role(*donor))
        if (rng_.bernoulli(0.5)) emit_grant(role, p);
    }
  }
  ++stats_.shadow_roles;
}

// ------------------------------------------------------------- journal ---

ChurnStats write_churn_journal(std::ostream& out, const ChurnConfig& config) {
  ChurnSimulator sim(config);
  while (!sim.done()) io::write_journal(out, sim.next_day());
  return sim.stats();
}

}  // namespace rolediet::gen
