// Synthetic assignment-matrix generator (§IV-A).
//
// Reproduces the paper's workload generator: "creates a matrix resembling
// RUAM/RPAM with predefined properties … the number of roles (rows), the
// number of users (columns), the proportion of the number of roles in
// clusters relative to the total number of roles, and the maximum number of
// identical roles within a cluster." The paper's evaluation fixes the
// proportion at 0.2 and the maximum cluster size at 10.
//
// Extension for type-5 evaluation: `perturb_bits` > 0 plants *similar*
// clusters instead of identical ones — every member lies within Hamming
// distance perturb_bits of the cluster's base row (the base row is member 0),
// so the whole cluster is one connected group at threshold t >= perturb_bits.
//
// Ground truth: the planted clusters are returned in canonical RoleGroups
// order so tests and benches can check recall exactly.
#pragma once

#include <cstdint>

#include "core/taxonomy.hpp"
#include "linalg/csr_matrix.hpp"
#include "util/prng.hpp"

namespace rolediet::gen {

/// Row-size (role-norm) distribution.
enum class NormDistribution {
  kUniform,  ///< uniform over [min_row_norm, max_row_norm]
  kZipf,     ///< power law (exponent ~1.5) over the same range — real orgs
             ///< have many small roles and a heavy tail of large ones
};

struct MatrixGenParams {
  std::size_t roles = 1000;  ///< rows
  std::size_t cols = 1000;   ///< users (RUAM) or permissions (RPAM)
  /// Fraction of rows that belong to planted clusters (paper: 0.2).
  double clustered_fraction = 0.2;
  /// Cluster sizes are drawn uniformly from [2, max_cluster_size] (paper: 10).
  std::size_t max_cluster_size = 10;
  /// Per-row entry count, drawn from [min_row_norm, max_row_norm].
  std::size_t min_row_norm = 1;
  std::size_t max_row_norm = 16;
  NormDistribution norm_distribution = NormDistribution::kUniform;
  /// 0 = identical cluster members (type-4 workload); k > 0 = members within
  /// Hamming distance k of the base row (type-5 workload).
  std::size_t perturb_bits = 0;
  /// Re-draw noise/base rows whose content collides with an existing row, so
  /// the planted clusters are the only identical-row groups.
  bool ensure_unique_rows = true;
  std::uint64_t seed = 1;
};

struct GeneratedMatrix {
  linalg::CsrMatrix matrix;
  /// Planted clusters in canonical form (row indices after shuffling).
  core::RoleGroups planted;
  /// planted_bases[i] = the base row of planted.groups[i]. With
  /// perturb_bits = 0 every member equals the base; with perturb_bits = k
  /// every member is within Hamming distance k of the base (so members may
  /// be up to 2k apart from each other).
  std::vector<std::size_t> planted_bases;
};

/// Generates a matrix per the parameters. Row order is shuffled so planted
/// cluster members are not adjacent. Deterministic in `seed`.
/// Throws std::invalid_argument on inconsistent parameters (norms > cols,
/// max_cluster_size < 2, fraction outside [0, 1]).
[[nodiscard]] GeneratedMatrix generate_matrix(const MatrixGenParams& params);

}  // namespace rolediet::gen
