// Organization evolution — simulating how RBAC inefficiencies accumulate.
//
// The paper's premise is temporal: "the primarily manual nature of data
// management in RBAC systems, coupled with a lack of oversight, can lead to
// various inefficiencies over time" (§I). This module simulates that decay:
// starting from a healthy org, a stream of realistic administrative events
// mutates the dataset through an IncrementalAuditor —
//
//   hire            new user assigned to existing roles
//   departure       user's assignments revoked (the user entity lingers ->
//                   standalone user, the paper's exact example)
//   transfer        user swapped from one role's user set to another's
//   provision       new permission granted to a role
//   decommission    permission's grants revoked (entity lingers -> standalone
//                   permission, "permissions linked to decommissioned assets")
//   clone_role      admin copies an existing role instead of reusing it
//                   (-> same-users or same-permissions duplicates, the
//                   "fragmented landscape of independent role owners")
//   fork_role       copy then tweak one entry (-> similar roles)
//   shadow_role     new role created but never wired up (-> type 1/2 roles)
//
// Event mix is configurable; each event draws from the PRNG so histories are
// reproducible. The drift_monitor example and evolution tests use this to
// show inefficiency counts rising monotonically under neglect and being
// reset by a diet.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/incremental.hpp"
#include "util/prng.hpp"

namespace rolediet::gen {

enum class OrgEvent {
  kHire,
  kDeparture,
  kTransfer,
  kProvision,
  kDecommission,
  kCloneRole,
  kForkRole,
  kShadowRole,
};

[[nodiscard]] std::string_view to_string(OrgEvent event) noexcept;

/// Relative weights of the event mix (need not sum to anything particular).
struct EvolutionMix {
  double hire = 4.0;
  double departure = 2.0;
  double transfer = 6.0;
  double provision = 3.0;
  double decommission = 2.0;
  double clone_role = 1.0;
  double fork_role = 1.0;
  double shadow_role = 0.5;
};

/// Drives an IncrementalAuditor through a stream of administrative events.
class OrgEvolution {
 public:
  /// Seeds a small healthy organization directly into `auditor` (roles with
  /// 3-8 users and 3-6 permissions each) and prepares the event stream.
  /// Degenerate starting orgs (zero users, roles, or permissions) are legal:
  /// roles are seeded empty on an axis with no entities to draw from.
  OrgEvolution(core::IncrementalAuditor& auditor, std::uint64_t seed,
               std::size_t initial_users = 200, std::size_t initial_roles = 60,
               std::size_t initial_permissions = 150, EvolutionMix mix = {});

  /// Applies one random event; returns which kind ran. Events that need a
  /// precondition retry with a different draw a few times and fall back to
  /// kHire (which always succeeds — with no roles to join, the hire lands
  /// unassigned). Precondition failures are silent no-ops, never throws: a
  /// departure/decommission drawn against an org with no assigned user /
  /// granted permission left simply reports false internally and the next
  /// draw runs, so any mix is safe on any org, including empty ones.
  OrgEvent step();

  /// Applies `n` events.
  void run(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) (void)step();
  }

  [[nodiscard]] std::size_t events_applied() const noexcept { return events_; }

 private:
  [[nodiscard]] OrgEvent draw_event();
  bool apply(OrgEvent event);

  // Event implementations; return false when preconditions failed.
  bool do_hire();
  bool do_departure();
  bool do_transfer();
  bool do_provision();
  bool do_decommission();
  bool do_clone_role();
  bool do_fork_role();
  bool do_shadow_role();

  /// Random existing role with at least `min_users` users (or nullopt).
  [[nodiscard]] std::optional<core::Id> pick_role(std::size_t min_users,
                                                  std::size_t min_perms);

  core::IncrementalAuditor& auditor_;
  util::Xoshiro256 rng_;
  EvolutionMix mix_;
  std::size_t events_ = 0;
  std::size_t next_user_ = 0;
  std::size_t next_role_ = 0;
  std::size_t next_perm_ = 0;
};

}  // namespace rolediet::gen
