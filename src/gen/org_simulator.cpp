#include "gen/org_simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/prng.hpp"

namespace rolediet::gen {

OrgProfile OrgProfile::small(std::uint64_t seed) {
  OrgProfile p;
  p.seed = seed;
  p.departments = 8;
  p.connected_users = 900;
  p.standalone_users = 5;
  p.connected_permissions = 1'700;
  p.standalone_permissions = 1'800;
  p.healthy_roles = 120;
  p.roles_without_users = 120;
  p.roles_without_permissions = 10;
  p.standalone_roles = 4;
  p.single_user_roles = 40;
  p.single_permission_roles = 210;
  p.same_user_pairs = 40;
  p.same_permission_pairs = 10;
  p.similar_user_pairs = 30;
  p.similar_permission_pairs = 20;
  p.min_users_per_role = 4;
  p.max_users_per_role = 12;
  p.min_perms_per_role = 4;
  p.max_perms_per_role = 8;
  return p;
}

namespace {

using core::Id;
using core::RbacDataset;

/// Order-independent digest of a sorted id set (same scheme as the matrix
/// generator; used to keep unintended duplicate sets out of the org).
std::uint64_t set_digest(const std::vector<Id>& ids) {
  std::uint64_t h = 0x243F6A8885A308D3ULL;
  for (Id c : ids) {
    h ^= util::mix64(static_cast<std::uint64_t>(c) + 0x9E3779B97F4A7C15ULL);
    h *= 0x100000001B3ULL;
  }
  return h ^ util::mix64(ids.size());
}

/// Builder state shared by the per-class construction routines.
struct OrgBuilder {
  const OrgProfile& profile;
  util::Xoshiro256 rng;
  RbacDataset data;
  std::unordered_set<std::uint64_t> user_set_digests;
  std::unordered_set<std::uint64_t> perm_set_digests;
  std::size_t next_dept = 0;

  explicit OrgBuilder(const OrgProfile& p) : profile(p), rng(p.seed) {}

  [[nodiscard]] std::size_t dept_user_span() const {
    return profile.connected_users / profile.departments;
  }
  [[nodiscard]] std::size_t dept_perm_span() const {
    return profile.connected_permissions / profile.departments;
  }

  /// Next department in round-robin order.
  std::size_t take_dept() { return next_dept++ % profile.departments; }

  /// `count` distinct ids from [base, base + span), sorted.
  std::vector<Id> draw_from(std::size_t base, std::size_t span, std::size_t count) {
    std::vector<std::size_t> picks = rng.sample_indices(span, count);
    std::vector<Id> ids;
    ids.reserve(count);
    for (std::size_t p : picks) ids.push_back(static_cast<Id>(base + p));
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Draws a user set of random size in [lo, hi] from `dept`'s pool whose
  /// digest is not yet taken; registers the digest.
  std::vector<Id> unique_user_set(std::size_t dept, std::size_t lo, std::size_t hi) {
    return unique_set(dept * dept_user_span(), dept_user_span(), lo, hi, user_set_digests);
  }
  std::vector<Id> unique_perm_set(std::size_t dept, std::size_t lo, std::size_t hi) {
    return unique_set(dept * dept_perm_span(), dept_perm_span(), lo, hi, perm_set_digests);
  }

  std::vector<Id> unique_set(std::size_t base, std::size_t span, std::size_t lo, std::size_t hi,
                             std::unordered_set<std::uint64_t>& digests) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t count = lo + rng.bounded(hi - lo + 1);
      std::vector<Id> ids = draw_from(base, span, count);
      if (digests.insert(set_digest(ids)).second) return ids;
    }
    throw std::runtime_error("generate_org: department pool too small for unique sets");
  }

  void assign_users(Id role, const std::vector<Id>& users) {
    for (Id u : users) data.assign_user(role, u);
  }
  void grant_perms(Id role, const std::vector<Id>& perms) {
    for (Id p : perms) data.grant_permission(role, p);
  }
};

void validate(const OrgProfile& p) {
  auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("generate_org: ") + what);
  };
  if (p.departments == 0) fail("departments must be positive");
  if (p.min_users_per_role < 4)
    fail("min_users_per_role must be >= 4 (similar variants keep >= 3 users)");
  if (p.min_perms_per_role < 4)
    fail("min_perms_per_role must be >= 4 (similar variants keep >= 3 permissions)");
  if (p.min_users_per_role > p.max_users_per_role) fail("user norms inverted");
  if (p.min_perms_per_role > p.max_perms_per_role) fail("permission norms inverted");
  if (p.connected_users / p.departments < p.max_users_per_role * 2)
    fail("department user pools too small for the role shapes");
  if (p.connected_permissions / p.departments < p.max_perms_per_role * 2)
    fail("department permission pools too small for the role shapes");
  if (p.single_user_roles > p.connected_users)
    fail("more single-user roles than connected users");
  if (p.single_permission_roles > p.connected_permissions)
    fail("more single-permission roles than connected permissions");
  const std::size_t bases_needed = p.same_user_pairs + p.same_permission_pairs +
                                   p.similar_user_pairs + p.similar_permission_pairs;
  if (bases_needed > p.healthy_roles)
    fail("healthy_roles must cover all duplicate/similar pair bases");
}

}  // namespace

OrgDataset generate_org(const OrgProfile& profile) {
  validate(profile);
  OrgBuilder b(profile);

  // Entity pools. Connected entities come first; the standalone tail is never
  // referenced by any edge, which is precisely what makes it standalone.
  b.data.add_users(profile.connected_users + profile.standalone_users, "U");
  b.data.add_permissions(profile.connected_permissions + profile.standalone_permissions, "P");

  // -- healthy roles (also the base pool for planted pairs) -----------------
  struct HealthyRole {
    Id id;
    std::size_t dept;
    std::vector<Id> users;
    std::vector<Id> perms;
  };
  std::vector<HealthyRole> healthy;
  healthy.reserve(profile.healthy_roles);
  for (std::size_t i = 0; i < profile.healthy_roles; ++i) {
    const std::size_t dept = b.take_dept();
    const Id role = b.data.add_role("R_healthy_" + std::to_string(i));
    HealthyRole h{role, dept,
                  b.unique_user_set(dept, profile.min_users_per_role, profile.max_users_per_role),
                  b.unique_perm_set(dept, profile.min_perms_per_role, profile.max_perms_per_role)};
    b.assign_users(role, h.users);
    b.grant_perms(role, h.perms);
    healthy.push_back(std::move(h));
  }

  // -- type 2: roles with only one side connected ---------------------------
  std::vector<Id> nousers_ids;
  for (std::size_t i = 0; i < profile.roles_without_users; ++i) {
    const std::size_t dept = b.take_dept();
    const Id role = b.data.add_role("R_nousers_" + std::to_string(i));
    b.grant_perms(role, b.unique_perm_set(dept, profile.min_perms_per_role,
                                          profile.max_perms_per_role));
    nousers_ids.push_back(role);
  }
  std::vector<Id> noperms_ids;
  for (std::size_t i = 0; i < profile.roles_without_permissions; ++i) {
    const std::size_t dept = b.take_dept();
    const Id role = b.data.add_role("R_noperms_" + std::to_string(i));
    b.assign_users(role, b.unique_user_set(dept, profile.min_users_per_role,
                                           profile.max_users_per_role));
    noperms_ids.push_back(role);
  }

  // -- type 1: fully disconnected roles -------------------------------------
  for (std::size_t i = 0; i < profile.standalone_roles; ++i) {
    b.data.add_role("R_standalone_" + std::to_string(i));
  }

  // -- type 3: single-user / single-permission roles ------------------------
  // Each single-user role gets a *distinct* user so no two of them share the
  // same {u} set (which would leak into the type-4 counts); same for
  // single-permission roles and their permission.
  std::vector<Id> oneuser_ids;
  for (std::size_t i = 0; i < profile.single_user_roles; ++i) {
    const std::size_t dept = b.take_dept();
    const Id role = b.data.add_role("R_oneuser_" + std::to_string(i));
    b.data.assign_user(role, static_cast<Id>(i));
    b.grant_perms(role, b.unique_perm_set(dept, profile.min_perms_per_role,
                                          profile.max_perms_per_role));
    oneuser_ids.push_back(role);
  }
  std::vector<Id> oneperm_ids;
  for (std::size_t i = 0; i < profile.single_permission_roles; ++i) {
    const std::size_t dept = b.take_dept();
    const Id role = b.data.add_role("R_oneperm_" + std::to_string(i));
    b.assign_users(role, b.unique_user_set(dept, profile.min_users_per_role,
                                           profile.max_users_per_role));
    b.data.grant_permission(role, static_cast<Id>(i));
    oneperm_ids.push_back(role);
  }

  // -- type 4: duplicate pairs ----------------------------------------------
  // Bases are taken from disjoint slices of the healthy pool so no healthy
  // role anchors two planted pairs.
  std::size_t next_base = 0;
  for (std::size_t i = 0; i < profile.same_user_pairs; ++i) {
    const HealthyRole& base = healthy[next_base++];
    const Id dup = b.data.add_role("R_dupusers_" + std::to_string(i));
    b.assign_users(dup, base.users);  // identical user set — the finding
    b.grant_perms(dup, b.unique_perm_set(base.dept, profile.min_perms_per_role,
                                         profile.max_perms_per_role));
  }
  for (std::size_t i = 0; i < profile.same_permission_pairs; ++i) {
    const HealthyRole& base = healthy[next_base++];
    const Id dup = b.data.add_role("R_dupperms_" + std::to_string(i));
    b.assign_users(dup, b.unique_user_set(base.dept, profile.min_users_per_role,
                                          profile.max_users_per_role));
    b.grant_perms(dup, base.perms);  // identical permission set
  }

  // -- type 5: similar pairs (Hamming distance exactly 1) -------------------
  auto drop_one = [&](const std::vector<Id>& set,
                      std::unordered_set<std::uint64_t>& digests) {
    // Remove one element such that the reduced set is not already taken;
    // try every position starting from a random one.
    const std::size_t n = set.size();
    const std::size_t start = b.rng.bounded(n);
    for (std::size_t k = 0; k < n; ++k) {
      std::vector<Id> reduced = set;
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>((start + k) % n));
      if (digests.insert(set_digest(reduced)).second) return reduced;
    }
    throw std::runtime_error("generate_org: cannot build a unique similar variant");
  };
  for (std::size_t i = 0; i < profile.similar_user_pairs; ++i) {
    const HealthyRole& base = healthy[next_base++];
    const Id variant = b.data.add_role("R_simusers_" + std::to_string(i));
    b.assign_users(variant, drop_one(base.users, b.user_set_digests));
    b.grant_perms(variant, b.unique_perm_set(base.dept, profile.min_perms_per_role,
                                             profile.max_perms_per_role));
  }
  for (std::size_t i = 0; i < profile.similar_permission_pairs; ++i) {
    const HealthyRole& base = healthy[next_base++];
    const Id variant = b.data.add_role("R_simperms_" + std::to_string(i));
    b.assign_users(variant, b.unique_user_set(base.dept, profile.min_users_per_role,
                                              profile.max_users_per_role));
    b.grant_perms(variant, drop_one(base.perms, b.perm_set_digests));
  }

  // -- coverage pass ---------------------------------------------------------
  // Random draws leave some connected users/permissions untouched; without
  // edges they would surface as extra standalone nodes and distort the
  // type-1 counts. Attach each leftover to a sink role of a class whose
  // membership the extra edge cannot change: single-permission roles (extra
  // *user* keeps the permission count at 1), roles-without-permissions, or
  // unused healthy roles — and symmetrically for permissions.
  {
    std::vector<Id> user_sinks = oneperm_ids;
    user_sinks.insert(user_sinks.end(), noperms_ids.begin(), noperms_ids.end());
    for (std::size_t h = next_base; h < healthy.size(); ++h)
      user_sinks.push_back(healthy[h].id);
    std::vector<Id> perm_sinks = nousers_ids;
    perm_sinks.insert(perm_sinks.end(), oneuser_ids.begin(), oneuser_ids.end());
    for (std::size_t h = next_base; h < healthy.size(); ++h)
      perm_sinks.push_back(healthy[h].id);

    const std::vector<std::size_t> user_degree = b.data.ruam().column_sums();
    std::size_t next_user_sink = 0;
    for (std::size_t u = 0; u < profile.connected_users; ++u) {
      if (user_degree[u] != 0) continue;
      if (user_sinks.empty())
        throw std::invalid_argument(
            "generate_org: leftover connected users but no sink roles "
            "(need single-permission, no-permission, or spare healthy roles)");
      b.data.assign_user(user_sinks[next_user_sink++ % user_sinks.size()],
                         static_cast<Id>(u));
    }
    const std::vector<std::size_t> perm_degree = b.data.rpam().column_sums();
    std::size_t next_perm_sink = 0;
    for (std::size_t p = 0; p < profile.connected_permissions; ++p) {
      if (perm_degree[p] != 0) continue;
      if (perm_sinks.empty())
        throw std::invalid_argument(
            "generate_org: leftover connected permissions but no sink roles "
            "(need no-user, single-user, or spare healthy roles)");
      b.data.grant_permission(perm_sinks[next_perm_sink++ % perm_sinks.size()],
                              static_cast<Id>(p));
    }
  }

  OrgDataset out;
  out.dataset = std::move(b.data);
  out.truth.standalone_users = profile.standalone_users;
  out.truth.standalone_permissions = profile.standalone_permissions;
  out.truth.standalone_roles = profile.standalone_roles;
  out.truth.roles_without_users = profile.roles_without_users;
  out.truth.roles_without_permissions = profile.roles_without_permissions;
  out.truth.single_user_roles = profile.single_user_roles;
  out.truth.single_permission_roles = profile.single_permission_roles;
  out.truth.roles_in_same_user_groups = 2 * profile.same_user_pairs;
  out.truth.roles_in_same_permission_groups = 2 * profile.same_permission_pairs;
  out.truth.roles_in_similar_user_groups = 2 * profile.similar_user_pairs;
  out.truth.roles_in_similar_permission_groups = 2 * profile.similar_permission_pairs;
  return out;
}

}  // namespace rolediet::gen
