// Adversarial dataset generators — the standing stress corpus.
//
// Role-mining literature (Tripunitara 2024; Blundo & Cimato) shows detection
// quality and performance degrade first on *pathological* permission
// structures, not on average orgs. Each generator here builds one hostile
// shape, deterministically from a seed, as a plain RbacDataset so the same
// corpus drives batch audits, engine replays (via dataset_as_delta), journal
// round-trips, and the durable store. tests/adversarial_corpus_test.cpp
// replays a compact instance of every scenario through all four methods ×
// dense/sparse × 1/8 threads, and CI reruns that suite under ASan/UBSan on
// every push.
//
//   similarity-wall    role pairs straddling the Hamming threshold t and the
//                      Jaccard wall: distances t-1 / t / t+1 on disjoint
//                      base sets, so candidate generation sees a dense wall
//                      of near-misses and verification decides every pair
//   hub-permissions    a few permissions granted to most roles (>50%):
//                      co-occurrence columns and LSH bands blow up while the
//                      true groups stay tiny
//   clone-chains       deep chains r_0..r_k, each dropping one user of its
//                      predecessor: at threshold 1 the chain is one long
//                      transitive group; pair caches and union-find see
//                      maximum-depth merge paths
//   hostile-names      entity names with commas, quotes, CR/LF, UTF-8,
//                      journal-tag look-alikes, and an empty name — the
//                      quoting/framing gauntlet for journal, WAL, and CSV
//   standalone-storm   storms of standalone users/permissions, empty roles,
//                      and one-sided roles: structural detectors and the
//                      type-1/2/3 paths at adversarial density
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "core/engine.hpp"
#include "core/model.hpp"

namespace rolediet::gen {

enum class AdversarialScenario {
  kSimilarityWall,
  kHubPermissions,
  kCloneChains,
  kHostileNames,
  kStandaloneStorm,
};

inline constexpr std::array<AdversarialScenario, 5> kAllAdversarialScenarios{
    AdversarialScenario::kSimilarityWall, AdversarialScenario::kHubPermissions,
    AdversarialScenario::kCloneChains, AdversarialScenario::kHostileNames,
    AdversarialScenario::kStandaloneStorm,
};

/// CLI-facing name ("similarity-wall", ...).
[[nodiscard]] std::string_view to_string(AdversarialScenario scenario) noexcept;

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] AdversarialScenario parse_adversarial_scenario(std::string_view name);

struct AdversarialParams {
  std::uint64_t seed = 1;
  /// Rough size knob; each scenario documents its meaning (wall pairs, hub
  /// roles, chain length x count, name count, storm width).
  std::size_t scale = 48;
  /// The wall straddles this Hamming threshold...
  std::size_t similarity_threshold = 2;
  /// ...and this Jaccard dissimilarity (used by the Jaccard wall family).
  double jaccard_dissimilarity = 0.3;
};

/// Builds one scenario. Deterministic in (scenario, params).
[[nodiscard]] core::RbacDataset make_adversarial(AdversarialScenario scenario,
                                                 const AdversarialParams& params = {});

/// The dataset as one creation delta — entities in id order, then edges —
/// so replaying it through AuditEngine::apply() on an empty engine
/// reproduces the dataset with identical ids. This is how the corpus flows
/// through the journal, the engine, and the durable store.
[[nodiscard]] core::RbacDelta dataset_as_delta(const core::RbacDataset& dataset);

}  // namespace rolediet::gen
