#include "mining/miner.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>
#include <span>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/consolidation.hpp"
#include "mining/biclique.hpp"
#include "mining/upa.hpp"
#include "util/bitops.hpp"
#include "util/execution_context.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace rolediet::mining {

namespace {

/// A candidate role with its supporting classes.
struct Candidate {
  std::vector<core::Id> perms;         ///< sorted permission ids
  std::vector<std::uint32_t> support;  ///< classes whose row contains perms, ascending
  bool usable = false;                 ///< support fully computed (no deadline cut)
};

/// Marginal effect of selecting a candidate in the current coverage state.
struct Marginal {
  std::uint64_t gain = 0;   ///< newly covered UPA cells (class-weighted)
  std::uint64_t users = 0;  ///< users the role would be assigned to now
};

/// A role of the draft decomposition under construction.
struct DraftRole {
  std::vector<core::Id> perms;
  std::vector<std::uint32_t> classes;  ///< assigned classes, in assignment order
};

/// Max-heap entry for the lazy-greedy loop: highest score first, then lowest
/// candidate index — the deterministic tie-break.
struct HeapEntry {
  double score;
  std::uint32_t idx;
  bool operator<(const HeapEntry& other) const noexcept {
    if (score != other.score) return score < other.score;
    return idx > other.idx;
  }
};

std::uint64_t combined_digest(std::span<const std::uint32_t> perms,
                              std::span<const std::uint32_t> users) {
  return linalg::csr_row_digest(perms) * 0x9E3779B97F4A7C15ULL ^ linalg::csr_row_digest(users);
}

}  // namespace

MiningPlan plan_mining(const core::RbacDataset& dataset, const MiningOptions& options) {
  if (options.role_weight < 0.0 || options.edge_weight < 0.0 ||
      options.role_weight + options.edge_weight <= 0.0) {
    throw std::invalid_argument("mining: cost weights must be >= 0 and not both 0");
  }
  const std::size_t perm_cap = options.max_perms_per_role;
  const std::size_t role_cap = options.max_roles_per_user;
  // Roles needed to cover n permissions under the perms-per-role cap.
  const auto chunks_needed = [perm_cap](std::size_t n) -> std::size_t {
    if (n == 0) return 0;
    return perm_cap == 0 ? 1 : (n + perm_cap - 1) / perm_cap;
  };

  MiningPlan plan;
  plan.options = options;
  plan.stats.users = dataset.num_users();
  plan.stats.permissions = dataset.num_permissions();
  plan.stats.roles_before = dataset.num_roles();
  plan.stats.assignments_before = dataset.ruam().nnz();
  plan.stats.grants_before = dataset.rpam().nnz();

  const util::ExecutionContext ctx(options.time_budget_s);
  util::Stopwatch watch;

  const UpaClasses upa = build_upa_classes(dataset, options.backend);
  plan.stats.user_classes = upa.num_classes();
  plan.stats.upa_cells = upa.cells;
  const std::size_t num_classes = upa.num_classes();

  // Up-front cap feasibility: every class row must fit in the role budget.
  if (role_cap != 0) {
    for (std::size_t cls = 0; cls < num_classes; ++cls) {
      const std::size_t need = chunks_needed(upa.rows.row_size(cls));
      if (need > role_cap) {
        throw std::invalid_argument(
            "mining: user '" + dataset.user_name(upa.members[cls].front()) + "' needs " +
            std::to_string(need) + " roles to cover " +
            std::to_string(upa.rows.row_size(cls)) + " permissions under --max-perms-per-role " +
            std::to_string(perm_cap) + ", but --max-roles-per-user is " +
            std::to_string(role_cap));
      }
    }
  }

  // ---- 1. candidate enumeration -------------------------------------------
  BicliqueOptions biclique_options;
  biclique_options.max_candidates = options.max_candidates;
  biclique_options.threads = options.threads;
  const CandidateSet closed = enumerate_closed_sets(upa, biclique_options, ctx);
  plan.stats.candidates = closed.permission_sets.size();
  plan.stats.enumeration_rounds = closed.rounds;
  plan.stats.enumeration_truncated = closed.truncated;

  // ---- 2. cap-chunking + dedup into the selection pool --------------------
  std::vector<Candidate> pool;
  {
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> dedup;
    auto add_chunk = [&](std::vector<core::Id>&& chunk) {
      const std::uint64_t digest = linalg::csr_row_digest(chunk);
      std::vector<std::uint32_t>& bucket = dedup[digest];
      for (const std::uint32_t idx : bucket) {
        if (linalg::csr_rows_equal(pool[idx].perms, chunk)) return;
      }
      bucket.push_back(static_cast<std::uint32_t>(pool.size()));
      pool.push_back(Candidate{std::move(chunk), {}, false});
    };
    const auto add_set = [&](std::span<const core::Id> set) {
      if (perm_cap == 0 || set.size() <= perm_cap) {
        add_chunk(std::vector<core::Id>(set.begin(), set.end()));
        return;
      }
      for (std::size_t begin = 0; begin < set.size(); begin += perm_cap) {
        const std::size_t end = std::min(begin + perm_cap, set.size());
        add_chunk(std::vector<core::Id>(set.begin() + static_cast<std::ptrdiff_t>(begin),
                                        set.begin() + static_cast<std::ptrdiff_t>(end)));
      }
    };
    for (const std::vector<core::Id>& set : closed.permission_sets) add_set(set);
    // Seed the pool with the dataset's own role permission sets too: on
    // workloads with little biclique structure the closed sets alone can be
    // a worse vocabulary than the decomposition that already exists, and
    // these sets let the greedy pass reconstruct it (dedup drops the many
    // duplicates; support computation treats them like any candidate).
    for (core::Id r = 0; r < static_cast<core::Id>(dataset.num_roles()); ++r) {
      const auto set = dataset.permissions_of_role(r);
      if (!set.empty()) add_set(set);
    }
  }
  plan.stats.candidate_pool = pool.size();

  // ---- 3. support computation (RowStore containment kernels) --------------
  // support(K) = classes whose row contains K. The inverted index narrows
  // the search to the classes holding K's rarest permission; the packed
  // containment check |K ∩ row| == |K| runs on the shared RowStore backend,
  // which dispatches the PR 7 batch kernels on the dense path.
  std::vector<std::vector<std::uint32_t>> perm_classes(upa.num_permissions);
  for (std::size_t cls = 0; cls < num_classes; ++cls) {
    for (const std::uint32_t perm : upa.rows.row(cls)) {
      perm_classes[perm].push_back(static_cast<std::uint32_t>(cls));
    }
  }
  const linalg::RowStore store = upa.store();
  const std::size_t packed_words = util::words_for_bits(upa.num_permissions);
  util::Parallelism exec(options.threads);
  exec.parallel_for(
      pool.size(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint64_t> packed(packed_words, 0);
        for (std::size_t i = begin; i < end; ++i) {
          if ((i - begin) % 64 == 0 && ctx.expired()) return;  // rest stay unusable
          Candidate& cand = pool[i];
          const std::vector<core::Id>& perms = cand.perms;
          std::uint32_t rarest = perms.front();
          for (const std::uint32_t perm : perms) {
            if (perm_classes[perm].size() < perm_classes[rarest].size()) rarest = perm;
          }
          for (const std::uint32_t perm : perms) packed[perm / 64] |= 1ull << (perm % 64);
          for (const std::uint32_t cls : perm_classes[rarest]) {
            if (store.intersection_with_packed(packed, cls) == perms.size()) {
              cand.support.push_back(cls);
            }
          }
          for (const std::uint32_t perm : perms) packed[perm / 64] = 0;
          cand.usable = true;
        }
      },
      /*grain=*/64);
  plan.stats.enumerate_seconds = watch.seconds();
  watch.restart();

  const std::span<const std::size_t> row_ptr = upa.rows.row_ptr();

  // Position of permission `perm` within class row `cls` (must be present).
  const auto position_of = [&](std::size_t cls, std::uint32_t perm) -> std::size_t {
    const auto row = upa.rows.row(cls);
    const auto it = std::lower_bound(row.begin(), row.end(), perm);
    return row_ptr[cls] + static_cast<std::size_t>(it - row.begin());
  };

  struct SelectionResult {
    std::vector<DraftRole> draft;
    std::vector<std::vector<std::uint32_t>> final_classes;  ///< per draft role
    std::size_t selected = 0;
    std::size_t mopup = 0;
    std::size_t pruned_assignments = 0;
    std::size_t pruned_roles = 0;
    bool truncated = false;
    std::size_t roles = 0;        ///< non-empty roles after pruning
    std::size_t assignments = 0;  ///< user->role edges after pruning
    std::size_t grants = 0;       ///< role->permission edges after pruning
  };

  // ---- 4. one constrained greedy pass, parameterized by the edge emphasis -
  // Covers steps 4-6 of the pipeline: lazy-greedy set cover, mop-up, pruning.
  // `edge_ratio` is the internal score denominator weight: cells covered per
  // unit of 1 + edge_ratio * (assignments + grants the role adds NOW).
  const auto run_selection = [&](double edge_ratio) -> SelectionResult {
    SelectionResult res;

    // Coverage state, flat over the class matrix cells.
    std::vector<char> covered(upa.rows.nnz(), 0);
    std::vector<std::size_t> uncovered(num_classes);
    std::vector<std::size_t> used_roles(num_classes, 0);
    std::size_t total_uncovered = 0;
    for (std::size_t cls = 0; cls < num_classes; ++cls) {
      uncovered[cls] = upa.rows.row_size(cls);
      total_uncovered += uncovered[cls];
    }

    // Feasibility guard (Blundo & Cimato): assigning one more role to `cls`
    // must leave enough budget for the worst-case residual cover.
    const auto cap_ok = [&](std::uint32_t cls, std::size_t newly) -> bool {
      if (role_cap == 0) return true;
      const std::size_t used_after = used_roles[cls] + 1;
      if (used_after > role_cap) return false;
      return chunks_needed(uncovered[cls] - newly) <= role_cap - used_after;
    };

    // Marginal effect: newly covered UPA cells (class-weighted) over the
    // classes this candidate may still be assigned to, plus the users those
    // assignments would touch.
    const auto marginal_of = [&](const Candidate& cand) -> Marginal {
      Marginal m;
      for (const std::uint32_t cls : cand.support) {
        if (uncovered[cls] == 0) continue;
        std::size_t newly = 0;
        for (const std::uint32_t perm : cand.perms) {
          if (covered[position_of(cls, perm)] == 0) ++newly;
        }
        if (newly != 0 && cap_ok(cls, newly)) {
          m.gain += static_cast<std::uint64_t>(upa.weight(cls)) * newly;
          m.users += upa.weight(cls);
        }
      }
      return m;
    };
    const auto score_of = [&](const Candidate& cand, const Marginal& m) -> double {
      const double cost = 1.0 + edge_ratio * static_cast<double>(m.users + cand.perms.size());
      return static_cast<double>(m.gain) / cost;
    };

    std::priority_queue<HeapEntry> heap;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (!pool[i].usable || pool[i].support.empty()) continue;
      const Marginal m = marginal_of(pool[i]);
      if (m.gain != 0) {
        heap.push({score_of(pool[i], m), static_cast<std::uint32_t>(i)});
      }
    }

    std::vector<DraftRole>& draft = res.draft;
    while (!heap.empty() && total_uncovered != 0) {
      if (ctx.expired()) {
        res.truncated = true;
        break;
      }
      const HeapEntry top = heap.top();
      heap.pop();
      const Candidate& cand = pool[top.idx];
      const Marginal m = marginal_of(cand);
      if (m.gain == 0) continue;
      const double score = score_of(cand, m);
      if (!heap.empty()) {
        const HeapEntry& next = heap.top();
        // Lazy re-evaluation. Marginal gains mostly shrink as coverage grows,
        // so the re-push usually reproduces eager greedy exactly; a
        // roles-per-user cap or the dynamic edge term can let a score recover,
        // making the pick heuristic there — still deterministic, still safe,
        // just not provably the eager choice.
        if (score < next.score || (score == next.score && top.idx > next.idx)) {
          heap.push({score, top.idx});
          continue;
        }
      }
      DraftRole role;
      role.perms = cand.perms;
      for (const std::uint32_t cls : cand.support) {
        if (uncovered[cls] == 0) continue;
        std::size_t newly = 0;
        for (const std::uint32_t perm : cand.perms) {
          if (covered[position_of(cls, perm)] == 0) ++newly;
        }
        if (newly == 0 || !cap_ok(cls, newly)) continue;
        for (const std::uint32_t perm : cand.perms) covered[position_of(cls, perm)] = 1;
        uncovered[cls] -= newly;
        total_uncovered -= newly;
        ++used_roles[cls];
        role.classes.push_back(cls);
      }
      draft.push_back(std::move(role));
      ++res.selected;
    }

    // ---- 5. mop-up: complete coverage with deduplicated residual roles ----
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> role_by_perms;
    for (std::size_t r = 0; r < draft.size(); ++r) {
      role_by_perms[linalg::csr_row_digest(draft[r].perms)].push_back(
          static_cast<std::uint32_t>(r));
    }
    for (std::uint32_t cls = 0; cls < static_cast<std::uint32_t>(num_classes); ++cls) {
      if (uncovered[cls] == 0) continue;
      const auto row = upa.rows.row(cls);
      std::vector<core::Id> residual;
      residual.reserve(uncovered[cls]);
      for (std::size_t k = 0; k < row.size(); ++k) {
        if (covered[row_ptr[cls] + k] == 0) residual.push_back(row[k]);
      }
      for (std::size_t begin = 0; begin < residual.size();
           begin += perm_cap == 0 ? residual.size() : perm_cap) {
        const std::size_t end =
            perm_cap == 0 ? residual.size() : std::min(begin + perm_cap, residual.size());
        std::vector<core::Id> chunk(residual.begin() + static_cast<std::ptrdiff_t>(begin),
                                    residual.begin() + static_cast<std::ptrdiff_t>(end));
        const std::uint64_t digest = linalg::csr_row_digest(chunk);
        std::vector<std::uint32_t>& bucket = role_by_perms[digest];
        std::uint32_t target = static_cast<std::uint32_t>(draft.size());
        for (const std::uint32_t r : bucket) {
          if (linalg::csr_rows_equal(draft[r].perms, chunk)) {
            target = r;
            break;
          }
        }
        if (target == draft.size()) {
          bucket.push_back(target);
          draft.push_back(DraftRole{std::move(chunk), {cls}});
          ++res.mopup;
        } else {
          draft[target].classes.push_back(cls);
        }
        ++used_roles[cls];
      }
      total_uncovered -= uncovered[cls];
      for (std::size_t k = 0; k < row.size(); ++k) covered[row_ptr[cls] + k] = 1;
      uncovered[cls] = 0;
    }

    // ---- 6. pruning: redundant assignments (reverse order), empty roles ---
    std::vector<std::vector<std::uint32_t>> class_roles(num_classes);
    for (std::size_t r = 0; r < draft.size(); ++r) {
      for (const std::uint32_t cls : draft[r].classes) {
        class_roles[cls].push_back(static_cast<std::uint32_t>(r));
      }
    }
    std::vector<std::uint32_t> cover_count(upa.rows.nnz(), 0);
    for (std::size_t cls = 0; cls < num_classes; ++cls) {
      for (const std::uint32_t r : class_roles[cls]) {
        for (const std::uint32_t perm : draft[r].perms) ++cover_count[position_of(cls, perm)];
      }
    }
    res.final_classes.resize(draft.size());
    for (std::size_t cls = 0; cls < num_classes; ++cls) {
      std::vector<std::uint32_t>& roles = class_roles[cls];
      std::vector<char> keep(roles.size(), 1);
      for (std::size_t k = roles.size(); k-- > 0;) {
        const std::uint32_t r = roles[k];
        bool redundant = true;
        for (const std::uint32_t perm : draft[r].perms) {
          if (cover_count[position_of(cls, perm)] < 2) {
            redundant = false;
            break;
          }
        }
        if (!redundant) continue;
        for (const std::uint32_t perm : draft[r].perms) --cover_count[position_of(cls, perm)];
        keep[k] = 0;
        ++res.pruned_assignments;
      }
      for (std::size_t k = 0; k < roles.size(); ++k) {
        if (keep[k] != 0) res.final_classes[roles[k]].push_back(static_cast<std::uint32_t>(cls));
      }
    }

    for (std::size_t r = 0; r < draft.size(); ++r) {
      if (res.final_classes[r].empty()) {
        ++res.pruned_roles;
        continue;
      }
      ++res.roles;
      for (const std::uint32_t cls : res.final_classes[r]) res.assignments += upa.weight(cls);
      res.grants += draft[r].perms.size();
    }
    return res;
  };

  // ---- 7. portfolio scalarization -----------------------------------------
  // One greedy pass per fixed edge-emphasis ratio; the user's weights pick
  // the winner by minimizing role_weight * roles + edge_weight * edges.
  // Because the argmin runs over a FIXED portfolio (the ladder never depends
  // on the user's weights), the knob is provably monotone: for w2 > w1 the
  // two optimality inequalities sum to (w2 - w1) * (E2 - E1) <= 0, so raising
  // edge_weight never increases the winning plan's edge count.
  static constexpr double kEdgeRatios[] = {0.0, 0.0625, 0.25, 1.0, 4.0};
  std::vector<SelectionResult> portfolio;
  for (const double ratio : kEdgeRatios) {
    // Always produce the first (complete, mopped-up) plan; a fired deadline
    // only shrinks the rest of the ladder.
    if (!portfolio.empty() && ctx.expired()) break;
    portfolio.push_back(run_selection(ratio));
  }
  const auto objective = [&](const SelectionResult& r) -> double {
    return options.role_weight * static_cast<double>(r.roles) +
           options.edge_weight * static_cast<double>(r.assignments + r.grants);
  };
  std::size_t best = 0;
  for (std::size_t i = 1; i < portfolio.size(); ++i) {
    const double delta = objective(portfolio[i]) - objective(portfolio[best]);
    const bool fewer_edges = portfolio[i].assignments + portfolio[i].grants <
                             portfolio[best].assignments + portfolio[best].grants;
    if (delta < 0.0 || (delta == 0.0 && fewer_edges)) best = i;
  }
  SelectionResult& sel = portfolio[best];
  const std::vector<DraftRole>& draft = sel.draft;
  const std::vector<std::vector<std::uint32_t>>& final_classes = sel.final_classes;
  plan.stats.portfolio_plans = portfolio.size();
  plan.stats.selected_candidates = sel.selected;
  plan.stats.mopup_roles = sel.mopup;
  plan.stats.pruned_assignments = sel.pruned_assignments;
  plan.stats.pruned_roles = sel.pruned_roles;
  plan.stats.selection_truncated = sel.truncated;

  // ---- 7b. duplicate-merge fallback ---------------------------------------
  // The consolidation of the input (the paper's safe cleanup) competes in
  // the same scalarized argmin whenever it satisfies the caps. On workloads
  // with little biclique structure the rebuilt decomposition can be worse
  // than the one that exists; this entry makes the emitted plan provably no
  // worse than the duplicate-merge baseline under the user's weights. The
  // entry does not depend on the weights, so the monotonicity argument above
  // is unchanged.
  if (!ctx.expired()) {
    const core::RbacDataset merged = core::consolidate_duplicates(dataset);
    bool fallback_fits_caps = true;
    if (perm_cap != 0) {
      for (core::Id r = 0; r < static_cast<core::Id>(merged.num_roles()); ++r) {
        if (merged.permissions_of_role(r).size() > perm_cap) {
          fallback_fits_caps = false;
          break;
        }
      }
    }
    if (fallback_fits_caps && role_cap != 0) {
      std::vector<std::size_t> roles_held(merged.num_users(), 0);
      for (core::Id r = 0; r < static_cast<core::Id>(merged.num_roles()); ++r) {
        for (const core::Id user : merged.users_of_role(r)) ++roles_held[user];
      }
      for (const std::size_t held : roles_held) {
        if (held > role_cap) {
          fallback_fits_caps = false;
          break;
        }
      }
    }
    if (fallback_fits_caps) {
      const double fallback_objective =
          options.role_weight * static_cast<double>(merged.num_roles()) +
          options.edge_weight * static_cast<double>(merged.ruam().nnz() + merged.rpam().nnz());
      if (fallback_objective < objective(sel)) {
        plan.stats.used_duplicate_merge_fallback = true;
        for (core::Id r = 0; r < static_cast<core::Id>(merged.num_roles()); ++r) {
          MinedRole role;
          role.name = merged.role_name(r);
          const auto perms = merged.permissions_of_role(r);
          const auto users = merged.users_of_role(r);
          role.permissions.assign(perms.begin(), perms.end());
          role.users.assign(users.begin(), users.end());
          plan.stats.assignments_after += role.users.size();
          plan.stats.grants_after += role.permissions.size();
          plan.roles.push_back(std::move(role));
        }
        plan.stats.roles_after = plan.roles.size();
        plan.stats.select_seconds = watch.seconds();
        return plan;
      }
    }
  }

  // ---- 8. emit roles, reusing original names for unchanged roles ----------
  std::unordered_map<std::uint64_t, std::vector<core::Id>> original_by_content;
  for (core::Id r = 0; r < static_cast<core::Id>(dataset.num_roles()); ++r) {
    original_by_content[combined_digest(dataset.permissions_of_role(r), dataset.users_of_role(r))]
        .push_back(r);
  }
  std::vector<char> original_taken(dataset.num_roles(), 0);
  std::vector<std::size_t> synthetic;  // plan indices needing a generated name
  std::unordered_map<std::string, char> reused_names;
  for (std::size_t r = 0; r < draft.size(); ++r) {
    if (final_classes[r].empty()) continue;
    MinedRole role;
    role.permissions = draft[r].perms;
    std::size_t user_count = 0;
    for (const std::uint32_t cls : final_classes[r]) user_count += upa.weight(cls);
    role.users.reserve(user_count);
    for (const std::uint32_t cls : final_classes[r]) {
      role.users.insert(role.users.end(), upa.members[cls].begin(), upa.members[cls].end());
    }
    std::sort(role.users.begin(), role.users.end());
    // A role identical to an original (same permissions AND same users)
    // keeps its name; everything else gets a synthetic one below.
    const auto hit = original_by_content.find(combined_digest(role.permissions, role.users));
    if (hit != original_by_content.end()) {
      for (const core::Id orig : hit->second) {
        if (original_taken[orig] != 0) continue;
        if (!linalg::csr_rows_equal(dataset.permissions_of_role(orig), role.permissions) ||
            !linalg::csr_rows_equal(dataset.users_of_role(orig), role.users)) {
          continue;
        }
        original_taken[orig] = 1;
        role.name = dataset.role_name(orig);
        reused_names.emplace(role.name, 1);
        break;
      }
    }
    if (role.name.empty()) synthetic.push_back(plan.roles.size());
    plan.stats.assignments_after += role.users.size();
    plan.stats.grants_after += role.permissions.size();
    plan.roles.push_back(std::move(role));
  }
  std::size_t counter = 0;
  for (const std::size_t plan_idx : synthetic) {
    std::string name = "mined-" + std::to_string(counter++);
    while (reused_names.contains(name)) name = "mined-" + std::to_string(counter++);
    plan.roles[plan_idx].name = std::move(name);
  }
  plan.stats.roles_after = plan.roles.size();
  plan.stats.select_seconds = watch.seconds();
  return plan;
}

std::string MiningPlan::to_text() const {
  std::ostringstream out;
  char buffer[160];
  std::snprintf(buffer, sizeof buffer, "role mining plan: %zu -> %zu roles (%.1f%% reduction)\n",
                stats.roles_before, stats.roles_after, stats.role_reduction() * 100.0);
  out << buffer;
  out << "  upa: " << stats.users << " users (" << stats.user_classes << " classes), "
      << stats.permissions << " permissions, " << stats.upa_cells << " cells\n";
  out << "  candidates: " << stats.candidates << " closed sets in " << stats.enumeration_rounds
      << " rounds (pool " << stats.candidate_pool << ")"
      << (stats.enumeration_truncated ? ", truncated" : "") << "\n";
  out << "  roles: " << stats.selected_candidates << " selected + " << stats.mopup_roles
      << " mop-up (best of " << stats.portfolio_plans << "-plan portfolio)"
      << (stats.selection_truncated ? " (selection cut by budget)" : "") << "; pruned "
      << stats.pruned_assignments << " assignments, " << stats.pruned_roles << " roles\n";
  out << "  edges: " << stats.assignments_before << " assignments + " << stats.grants_before
      << " grants -> " << stats.assignments_after << " + " << stats.grants_after << "\n";
  if (stats.used_duplicate_merge_fallback) {
    out << "  plan: duplicate-merge fallback (every greedy pass was worse under this cost)\n";
  }
  out << "  constraints: roles/user";
  if (options.max_roles_per_user != 0) {
    out << " <= " << options.max_roles_per_user;
  } else {
    out << " unlimited";
  }
  out << ", perms/role";
  if (options.max_perms_per_role != 0) {
    out << " <= " << options.max_perms_per_role;
  } else {
    out << " unlimited";
  }
  std::snprintf(buffer, sizeof buffer, "; cost %g:%g\n", options.role_weight,
                options.edge_weight);
  out << buffer;
  return out.str();
}

core::RbacDataset apply_mining(const core::RbacDataset& dataset, const MiningPlan& plan) {
  core::RbacDataset out;
  // Users and permissions verbatim, in id order, so ids are preserved and
  // verify_equivalence can compare per-user permission sets directly.
  for (core::Id u = 0; u < static_cast<core::Id>(dataset.num_users()); ++u) {
    out.add_user(dataset.user_name(u));
  }
  for (core::Id p = 0; p < static_cast<core::Id>(dataset.num_permissions()); ++p) {
    out.add_permission(dataset.permission_name(p));
  }
  for (const MinedRole& role : plan.roles) {
    const core::Id r = out.add_role(role.name);
    for (const core::Id perm : role.permissions) out.grant_permission(r, perm);
    for (const core::Id user : role.users) out.assign_user(r, user);
  }
  return out;
}

MiningOutcome mine(const core::RbacDataset& dataset, const MiningOptions& options) {
  MiningOutcome outcome;
  outcome.plan = plan_mining(dataset, options);
  outcome.migrated = apply_mining(dataset, outcome.plan);
  util::Stopwatch watch;
  outcome.verified = core::verify_equivalence(dataset, outcome.migrated);
  outcome.plan.stats.verify_seconds = watch.seconds();
  return outcome;
}

}  // namespace rolediet::mining
