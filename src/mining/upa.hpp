// User-permission access (UPA) matrix, deduplicated into user classes.
//
// Role mining works on the *effective* user-permission relation — which
// permissions each user can reach through any role — not on the role
// decomposition that happens to encode it today. The model never materializes
// that relation (the tripartite graph stores RUAM and RPAM only), so mining
// starts by computing each user's reachable permission set and collapsing
// users with identical sets into one weighted *class*: real organizations
// assign whole teams the same access, so the class count is typically orders
// of magnitude below the user count, and every algorithm downstream of this
// header runs on classes, never raw users.
//
// The class rows are stored CSR-first with an optional packed-dense mirror,
// selected by the same density rule as every detection method
// (linalg::choose_backend), and served to the mining kernels through the
// shared RowStore view — the biclique enumerator and the set-cover support
// checks run the identical batch kernels the finders use.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/model.hpp"
#include "linalg/bit_matrix.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/row_store.hpp"

namespace rolediet::mining {

/// Distinct user permission sets ("classes") with their member users.
struct UpaClasses {
  /// Class rows: class index -> sorted permission ids. Rows are pairwise
  /// distinct and non-empty; classes are ordered by their smallest member
  /// user id (ascending), which makes every consumer deterministic.
  linalg::CsrMatrix rows;

  /// Member user ids per class, ascending. Parallel to `rows`.
  std::vector<std::vector<core::Id>> members;

  /// Dense mirror of `rows`, engaged when the resolved backend is dense.
  std::optional<linalg::BitMatrix> dense;

  /// The backend `store()` serves (resolved, never kAuto).
  linalg::RowBackend backend = linalg::RowBackend::kSparse;

  std::size_t num_users = 0;        ///< dataset user count (incl. permissionless)
  std::size_t num_permissions = 0;  ///< dataset permission count
  std::size_t covered_users = 0;    ///< users with at least one permission
  std::size_t cells = 0;            ///< UPA cells: sum over classes of |members| * |row|

  [[nodiscard]] std::size_t num_classes() const noexcept { return members.size(); }

  /// Class weight: how many users share this permission set.
  [[nodiscard]] std::size_t weight(std::size_t cls) const noexcept {
    return members[cls].size();
  }

  /// RowStore view over the class rows on the resolved backend. Non-owning:
  /// valid while this object is alive and unmoved.
  [[nodiscard]] linalg::RowStore store() const noexcept {
    if (dense.has_value()) return linalg::RowStore(*dense);
    return linalg::RowStore(rows);
  }
};

/// Computes every user's effective permission set and groups users with
/// identical sets. `requested` follows the RowBackend convention (kAuto picks
/// by class-matrix density); the choice affects kernel throughput only, never
/// the classes.
[[nodiscard]] UpaClasses build_upa_classes(const core::RbacDataset& dataset,
                                           linalg::RowBackend requested = linalg::RowBackend::kAuto);

}  // namespace rolediet::mining
